module fireflyrpc

go 1.22
