package fireflyrpc

import (
	"context"
	"sync"
	"testing"

	"fireflyrpc/internal/proto"
	"fireflyrpc/internal/testsvc"
	"fireflyrpc/internal/transport"
)

// nullAllocBudget is the regression ceiling for heap allocations per
// single-packet Call over the in-process exchange, measured across the
// whole process (caller stub, protocol, transport, server stub). The fast
// path currently performs 1 allocation per call — the completion channel —
// so the budget has headroom for runtime noise (GC-cycle pool clears)
// without letting a per-call allocation regression slip through.
const nullAllocBudget = 8

// TestNullAllocBudget pins the single-packet fast path's allocation count:
// the Go analogue of the paper's §4.2 fast-path accounting, where every
// instruction on the Null() path was audited.
func TestNullAllocBudget(t *testing.T) {
	ex := transport.NewExchange()
	server := NewNode(ex.Port("server"), proto.DefaultConfig())
	caller := NewNode(ex.Port("caller"), proto.DefaultConfig())
	defer server.Close()
	defer caller.Close()
	server.Export(testsvc.ExportTest(benchImpl{}))
	client := testsvc.NewTestClient(caller.Bind(server.Addr(), testsvc.TestName, testsvc.TestVersion))

	// Warm the pools (frames, outCalls, server activity state, argument
	// buffers) so steady state is measured, not first-call setup.
	for i := 0; i < 100; i++ {
		if err := client.Null(); err != nil {
			t.Fatal(err)
		}
	}

	avg := testing.AllocsPerRun(200, func() {
		if err := client.Null(); err != nil {
			t.Fatal(err)
		}
	})
	if avg > nullAllocBudget {
		t.Fatalf("Null() allocates %.1f objects/call, budget is %d", avg, nullAllocBudget)
	}
	t.Logf("Null() allocates %.1f objects/call (budget %d)", avg, nullAllocBudget)
}

// TestAsyncNullAllocBudget pins the asynchronous fast path to the same
// allocation budget as the blocking one: Client.Go + Pending.Await over
// pooled slots must not cost more objects per call than Client.Call, or
// fan-out callers pay a hidden per-call tax the blocking path doesn't.
func TestAsyncNullAllocBudget(t *testing.T) {
	ex := transport.NewExchange()
	server := NewNode(ex.Port("server"), proto.DefaultConfig())
	caller := NewNode(ex.Port("caller"), proto.DefaultConfig())
	defer server.Close()
	defer caller.Close()
	server.Export(testsvc.ExportTest(benchImpl{}))
	client := caller.Bind(server.Addr(), testsvc.TestName, testsvc.TestVersion).NewClient()
	ctx := context.Background()

	const fanout = 8
	pendings := make([]*Pending, fanout)
	// Warm the pools: slots, activities, frames, outCalls, server state.
	for round := 0; round < 30; round++ {
		for i := range pendings {
			p, err := client.Go(ctx, testsvc.TestProcNull, 0, nil)
			if err != nil {
				t.Fatal(err)
			}
			pendings[i] = p
		}
		for _, p := range pendings {
			if err := p.Await(ctx, nil); err != nil {
				t.Fatal(err)
			}
		}
	}

	perBatch := testing.AllocsPerRun(100, func() {
		for i := range pendings {
			p, err := client.Go(ctx, testsvc.TestProcNull, 0, nil)
			if err != nil {
				t.Fatal(err)
			}
			pendings[i] = p
		}
		for _, p := range pendings {
			if err := p.Await(ctx, nil); err != nil {
				t.Fatal(err)
			}
		}
	})
	perCall := perBatch / fanout
	if perCall > nullAllocBudget {
		t.Fatalf("async Null() allocates %.1f objects/call, budget is %d (blocking budget)", perCall, nullAllocBudget)
	}
	t.Logf("async Null() allocates %.1f objects/call with %d outstanding (budget %d)", perCall, fanout, nullAllocBudget)
}

// TestAsyncResultsCorrect sanity-checks the async API end to end through
// generated-stub marshalling: interleaved Go calls with distinct payloads
// come back to the right Await.
func TestAsyncResultsCorrect(t *testing.T) {
	ex := transport.NewExchange()
	server := NewNode(ex.Port("server"), proto.DefaultConfig())
	caller := NewNode(ex.Port("caller"), proto.DefaultConfig())
	defer server.Close()
	defer caller.Close()
	server.Export(testsvc.ExportTest(benchImpl{}))
	client := caller.Bind(server.Addr(), testsvc.TestName, testsvc.TestVersion).NewClient()
	ctx := context.Background()

	const fanout = 16
	for round := 0; round < 20; round++ {
		pendings := make([]*Pending, fanout)
		for i := 0; i < fanout; i++ {
			a, b := int32(round), int32(i)
			p, err := client.Go(ctx, testsvc.TestProcAdd4, 16, func(e *Enc) {
				e.PutInt32(a)
				e.PutInt32(b)
				e.PutInt32(10)
				e.PutInt32(100)
			})
			if err != nil {
				t.Fatal(err)
			}
			pendings[i] = p
		}
		for i, p := range pendings {
			var got int32
			if err := p.Await(ctx, func(d *Dec) { got = d.Int32() }); err != nil {
				t.Fatal(err)
			}
			want := int32(round) + int32(i) + 110
			if got != want {
				t.Fatalf("round %d call %d: Add4 = %d, want %d", round, i, got, want)
			}
		}
	}
}

// TestConcurrentClientsStress exercises the sharded-lock fast path from 8
// concurrent clients on one caller Conn — each its own activity, as the
// Firefly gave each thread its own call-table entry — mixed with Pings and
// Stats reads. Run with -race, this is the regression test for the lock
// split (calls/acts/pings) and the atomic stats conversion.
func TestConcurrentClientsStress(t *testing.T) {
	cfg := proto.DefaultConfig()
	cfg.Workers = 16
	ex := transport.NewExchange()
	server := NewNode(ex.Port("server"), cfg)
	caller := NewNode(ex.Port("caller"), cfg)
	defer server.Close()
	defer caller.Close()
	server.Export(testsvc.ExportTest(benchImpl{}))
	binding := caller.Bind(server.Addr(), testsvc.TestName, testsvc.TestVersion)

	const clients = 8
	calls := 300
	if testing.Short() {
		calls = 50
	}
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			cl := testsvc.NewTestClient(binding)
			buf := make([]byte, 1440)
			for j := 0; j < calls; j++ {
				var err error
				switch j % 3 {
				case 0:
					err = cl.Null()
				case 1:
					err = cl.MaxArg(buf)
				default:
					err = cl.MaxResult(buf)
				}
				if err != nil {
					errs <- err
					return
				}
			}
		}(i)
	}
	// Concurrent control-plane traffic against the same Conn.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			caller.Conn().Stats()
			server.Conn().Stats()
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := server.Conn().Stats()
	if st.CallsServed < int64(clients*calls) {
		t.Fatalf("served %d calls, want >= %d", st.CallsServed, clients*calls)
	}
}
