package fireflyrpc

import (
	"sync"
	"testing"
	"time"

	"fireflyrpc/internal/costmodel"
	"fireflyrpc/internal/exper"
	"fireflyrpc/internal/marshal"
	"fireflyrpc/internal/proto"
	"fireflyrpc/internal/simstack"
	"fireflyrpc/internal/testsvc"
	"fireflyrpc/internal/transport"
	"fireflyrpc/internal/wire"
)

// ---------------------------------------------------------------------------
// Simulated-testbed benchmarks: one per paper table. Each op is one
// simulated RPC (wall time measures the simulator); the reproduced paper
// quantity is attached as a custom metric.
// ---------------------------------------------------------------------------

// simBench runs b.N simulated calls and reports the paper-facing metrics.
func simBench(b *testing.B, cfg *costmodel.Config, spec *simstack.ProcSpec, threads int) simstack.RunResult {
	b.Helper()
	n := b.N
	if n < threads*25 {
		n = threads * 25 // enough calls for a steady-state window
	}
	w := simstack.NewWorld(cfg, 1)
	b.ResetTimer()
	r := w.Run(spec, threads, n)
	b.StopTimer()
	if r.Errors > 0 {
		b.Fatalf("%d simulated calls failed", r.Errors)
	}
	return r
}

// BenchmarkTableI_Null1 reproduces Table I row 1: 1 thread calling Null().
// Paper: 2661 µs/call.
func BenchmarkTableI_Null1(b *testing.B) {
	cfg := costmodel.NewConfig()
	r := simBench(b, &cfg, simstack.NullSpec(&cfg), 1)
	b.ReportMetric(r.LatencyMicros(), "simµs/call")
}

// BenchmarkTableI_Null7 reproduces Table I's Null() saturation row.
// Paper: 741 calls/second at 7 threads.
func BenchmarkTableI_Null7(b *testing.B) {
	cfg := costmodel.NewConfig()
	r := simBench(b, &cfg, simstack.NullSpec(&cfg), 7)
	b.ReportMetric(r.CallsPerSecond(), "simcalls/s")
}

// BenchmarkTableI_MaxResult4 reproduces Table I's throughput row.
// Paper: 4.65 Mb/s at 4 threads; ~1.2 caller CPUs.
func BenchmarkTableI_MaxResult4(b *testing.B) {
	cfg := costmodel.NewConfig()
	r := simBench(b, &cfg, simstack.MaxResultSpec(&cfg), 4)
	b.ReportMetric(r.MegabitsPerSecond(wire.MaxSinglePacketPayload), "simMb/s")
	b.ReportMetric(r.CallerCPU, "simcallerCPUs")
}

// benchLocalIncrement measures a Table II–V marshalling increment over the
// simulated local transport. Paper values are the table entries.
func benchLocalIncrement(b *testing.B, make func(cfg *costmodel.Config) *simstack.ProcSpec) {
	b.Helper()
	calls := b.N
	if calls < 200 {
		calls = 200
	}
	base := costmodel.NewConfig()
	base.TimingJitter = 0
	wb := simstack.NewWorld(&base, 1)
	wb.RegisterLocal(2)
	baseLat := wb.RunLocal(simstack.NullSpec(&base), 1, calls).LatencyMicros()

	cfg := costmodel.NewConfig()
	cfg.TimingJitter = 0
	w := simstack.NewWorld(&cfg, 1)
	w.RegisterLocal(2)
	spec := make(&cfg)
	w.RegisterProc(spec)
	b.ResetTimer()
	lat := w.RunLocal(spec, 1, calls).LatencyMicros()
	b.StopTimer()
	b.ReportMetric(lat-baseLat, "simµs/increment")
}

// BenchmarkTableII_Ints4 reproduces Table II's 4-integer row (paper: 32 µs).
func BenchmarkTableII_Ints4(b *testing.B) {
	benchLocalIncrement(b, func(cfg *costmodel.Config) *simstack.ProcSpec {
		return simstack.IntArgsSpec(cfg, 4)
	})
}

// BenchmarkTableIII_Fixed400 reproduces Table III's 400-byte row (140 µs).
func BenchmarkTableIII_Fixed400(b *testing.B) {
	benchLocalIncrement(b, func(cfg *costmodel.Config) *simstack.ProcSpec {
		return simstack.FixedArrayOutSpec(cfg, 400)
	})
}

// BenchmarkTableIV_Var1440 reproduces Table IV's 1440-byte row (550 µs).
func BenchmarkTableIV_Var1440(b *testing.B) {
	benchLocalIncrement(b, func(cfg *costmodel.Config) *simstack.ProcSpec {
		return simstack.VarArrayOutSpec(cfg, 1440)
	})
}

// BenchmarkTableV_Text128 reproduces Table V's 128-byte row (659 µs).
func BenchmarkTableV_Text128(b *testing.B) {
	benchLocalIncrement(b, func(cfg *costmodel.Config) *simstack.ProcSpec {
		return simstack.TextArgSpec(cfg, 128, false)
	})
}

// BenchmarkTableVI_SendReceive evaluates the send+receive model for both
// packet sizes (paper totals: 954 and 4414 µs).
func BenchmarkTableVI_SendReceive(b *testing.B) {
	cfg := costmodel.NewConfig()
	var t74, t1514 time.Duration
	for i := 0; i < b.N; i++ {
		t74 = cfg.SendReceiveTotal(74)
		t1514 = cfg.SendReceiveTotal(1514)
	}
	b.ReportMetric(float64(t74)/1e3, "simµs/74B")
	b.ReportMetric(float64(t1514)/1e3, "simµs/1514B")
}

// BenchmarkTableVII_StubsRuntime evaluates the Table VII model (606 µs).
func BenchmarkTableVII_StubsRuntime(b *testing.B) {
	cfg := costmodel.NewConfig()
	var t time.Duration
	for i := 0; i < b.N; i++ {
		t = cfg.StubRuntimeTotal()
	}
	b.ReportMetric(float64(t)/1e3, "simµs")
}

// BenchmarkTableVIII_Accounting runs the composition check: simulated
// end-to-end Null() vs the 2514 µs model (paper measured 2645).
func BenchmarkTableVIII_Accounting(b *testing.B) {
	cfg := costmodel.NewConfig()
	r := simBench(b, &cfg, simstack.NullSpec(&cfg), 1)
	model := float64(cfg.StubRuntimeTotal()+2*cfg.SendReceiveTotal(74)) / 1e3
	b.ReportMetric(r.LatencyMicros(), "simµs/measured")
	b.ReportMetric(r.LatencyMicros()-model, "simµs/unaccounted")
}

// BenchmarkTableIX_ModulaInterrupt measures Null() under the original
// Modula-2+ interrupt routine (paper: 758 µs/interrupt vs 177 assembly).
func BenchmarkTableIX_ModulaInterrupt(b *testing.B) {
	cfg := costmodel.NewConfig()
	cfg.Interrupt = costmodel.InterruptOriginalModula
	r := simBench(b, &cfg, simstack.NullSpec(&cfg), 1)
	b.ReportMetric(r.LatencyMicros(), "simµs/call")
}

// BenchmarkTableX_Uniprocessor measures the 1/1-processor Exerciser
// configuration (paper: 4.81 s per 1000 calls).
func BenchmarkTableX_Uniprocessor(b *testing.B) {
	cfg := costmodel.NewConfig()
	cfg.CallerCPUs, cfg.ServerCPUs = 1, 1
	cfg.ExerciserStubs = true
	cfg.SwappedLines = true
	r := simBench(b, &cfg, simstack.NullSpec(&cfg), 1)
	b.ReportMetric(r.SecondsPer(1000), "sims/1000calls")
}

// BenchmarkTableXI_UniprocThroughput measures 1/1 processors, 4 threads
// (paper: 2.5 Mb/s).
func BenchmarkTableXI_UniprocThroughput(b *testing.B) {
	cfg := costmodel.NewConfig()
	cfg.CallerCPUs, cfg.ServerCPUs = 1, 1
	cfg.ExerciserStubs = true
	cfg.SwappedLines = true
	r := simBench(b, &cfg, simstack.MaxResultSpec(&cfg), 4)
	b.ReportMetric(r.MegabitsPerSecond(wire.MaxSinglePacketPayload), "simMb/s")
}

// BenchmarkTableXII_Firefly5x1 measures the cross-system comparison's 5x1
// Firefly row (paper: 2.7 ms latency).
func BenchmarkTableXII_Firefly5x1(b *testing.B) {
	cfg := costmodel.NewConfig()
	cfg.ExerciserStubs = true
	cfg.SwappedLines = true
	r := simBench(b, &cfg, simstack.NullSpec(&cfg), 1)
	b.ReportMetric(r.LatencyMicros()/1000, "simms/call")
}

// BenchmarkImprovement_BusyWait re-simulates §4.2.7 (paper: saves ~440 µs).
func BenchmarkImprovement_BusyWait(b *testing.B) {
	std := costmodel.NewConfig()
	rs := simBench(b, &std, simstack.NullSpec(&std), 1)
	bw := costmodel.NewConfig()
	bw.BusyWait = true
	w := simstack.NewWorld(&bw, 1)
	rb := w.Run(simstack.NullSpec(&bw), 1, 500)
	b.ReportMetric(rs.LatencyMicros()-rb.LatencyMicros(), "simµs/saved")
}

// BenchmarkExperimentTableI runs the full Table I experiment end to end at
// reduced quality, as cmd/fireflybench does.
func BenchmarkExperimentTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exper.TableI(exper.Options{Quality: 0.05, Seed: 1})
	}
}

// ---------------------------------------------------------------------------
// Real-stack benchmarks: the modern-hardware analogue of Table I over the
// in-process exchange and real UDP loopback.
// ---------------------------------------------------------------------------

func realPair(b *testing.B, overUDP bool) (*testsvc.TestClient, func()) {
	b.Helper()
	cfg := proto.DefaultConfig()
	var callerTr, serverTr transport.Transport
	if overUDP {
		var err error
		serverTr, err = transport.ListenUDP("127.0.0.1:0")
		if err != nil {
			b.Skip("no loopback UDP:", err)
		}
		callerTr, err = transport.ListenUDP("127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
	} else {
		ex := transport.NewExchange()
		serverTr = ex.Port("server")
		callerTr = ex.Port("caller")
	}
	server := NewNode(serverTr, cfg)
	caller := NewNode(callerTr, cfg)
	server.Export(testsvc.ExportTest(benchImpl{}))
	client := testsvc.NewTestClient(caller.Bind(server.Addr(), testsvc.TestName, testsvc.TestVersion))
	return client, func() { caller.Close(); server.Close() }
}

type benchImpl struct{}

func (benchImpl) Null() error { return nil }
func (benchImpl) MaxResult(buffer []byte) error {
	for i := range buffer {
		buffer[i] = byte(i)
	}
	return nil
}
func (benchImpl) MaxArg(buffer []byte) error             { return nil }
func (benchImpl) Add4(a, b, c, d int32) (int32, error)   { return a + b + c + d, nil }
func (benchImpl) Reverse(data []byte, out *[]byte) error { *out = data; return nil }
func (benchImpl) Increment(counter *uint32) error        { *counter++; return nil }
func (benchImpl) Greet(n *marshal.Text) (*marshal.Text, error) {
	return marshal.NewText("hi " + n.String()), nil
}

// BenchmarkRealNull_Mem is a Null() call over the in-process exchange —
// the single-packet fast path this stack optimizes for. The allocation
// budget for this benchmark is enforced by TestNullAllocBudget.
func BenchmarkRealNull_Mem(b *testing.B) {
	client, done := realPair(b, false)
	defer done()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := client.Null(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRealNull_UDP is a Null() call over real loopback UDP.
func BenchmarkRealNull_UDP(b *testing.B) {
	client, done := realPair(b, true)
	defer done()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := client.Null(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRealMaxArg_Mem is the 1440-byte VAR IN argument over the exchange.
func BenchmarkRealMaxArg_Mem(b *testing.B) {
	client, done := realPair(b, false)
	defer done()
	buf := make([]byte, 1440)
	b.ReportAllocs()
	b.SetBytes(1440)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := client.MaxArg(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRealMaxResult_Mem is the 1440-byte VAR OUT result over the exchange.
func BenchmarkRealMaxResult_Mem(b *testing.B) {
	client, done := realPair(b, false)
	defer done()
	buf := make([]byte, 1440)
	b.ReportAllocs()
	b.SetBytes(1440)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := client.MaxResult(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRealMaxResult_UDP is the 1440-byte VAR OUT result over UDP.
func BenchmarkRealMaxResult_UDP(b *testing.B) {
	client, done := realPair(b, true)
	defer done()
	buf := make([]byte, 1440)
	b.ReportAllocs()
	b.SetBytes(1440)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := client.MaxResult(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// benchRealThreads splits b.N Null() calls across exactly `threads` caller
// goroutines, one Client (activity) per thread as on the Firefly — the
// Table I thread-scaling shape on the real stack.
func benchRealThreads(b *testing.B, overUDP bool, threads int) {
	b.Helper()
	cfg := proto.DefaultConfig()
	if 2*threads > cfg.Workers {
		cfg.Workers = 2 * threads
	}
	var callerTr, serverTr transport.Transport
	if overUDP {
		var err error
		serverTr, err = transport.ListenUDP("127.0.0.1:0")
		if err != nil {
			b.Skip("no loopback UDP:", err)
		}
		callerTr, err = transport.ListenUDP("127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
	} else {
		ex := transport.NewExchange()
		serverTr = ex.Port("server")
		callerTr = ex.Port("caller")
	}
	server := NewNode(serverTr, cfg)
	caller := NewNode(callerTr, cfg)
	defer server.Close()
	defer caller.Close()
	server.Export(testsvc.ExportTest(benchImpl{}))
	binding := caller.Bind(server.Addr(), testsvc.TestName, testsvc.TestVersion)
	clients := make([]*testsvc.TestClient, threads)
	for i := range clients {
		clients[i] = testsvc.NewTestClient(binding)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	for t := 0; t < threads; t++ {
		n := b.N / threads
		if t < b.N%threads {
			n++
		}
		wg.Add(1)
		go func(cl *testsvc.TestClient, n int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				if err := cl.Null(); err != nil {
					b.Error(err)
					return
				}
			}
		}(clients[t], n)
	}
	wg.Wait()
}

func BenchmarkRealNullThreads_Mem1(b *testing.B) { benchRealThreads(b, false, 1) }
func BenchmarkRealNullThreads_Mem2(b *testing.B) { benchRealThreads(b, false, 2) }
func BenchmarkRealNullThreads_Mem4(b *testing.B) { benchRealThreads(b, false, 4) }
func BenchmarkRealNullThreads_Mem8(b *testing.B) { benchRealThreads(b, false, 8) }
func BenchmarkRealNullThreads_UDP8(b *testing.B) { benchRealThreads(b, true, 8) }

// BenchmarkRealFragmented_UDP pushes a 100 KiB argument through the
// fragmentation path over UDP.
func BenchmarkRealFragmented_UDP(b *testing.B) {
	client, done := realPair(b, true)
	defer done()
	data := make([]byte, 100*1024)
	var out []byte
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := client.Reverse(data, &out); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(data)))
}

// BenchmarkRealParallel_Mem is the Table I shape on modern hardware: 8
// caller goroutines in parallel over the exchange.
func BenchmarkRealParallel_Mem(b *testing.B) {
	cfg := proto.DefaultConfig()
	cfg.Workers = 16
	ex := transport.NewExchange()
	server := NewNode(ex.Port("server"), cfg)
	caller := NewNode(ex.Port("caller"), cfg)
	defer server.Close()
	defer caller.Close()
	server.Export(testsvc.ExportTest(benchImpl{}))
	binding := caller.Bind(server.Addr(), testsvc.TestName, testsvc.TestVersion)
	b.SetParallelism(8)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		client := testsvc.NewTestClient(binding)
		for pb.Next() {
			if err := client.Null(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---------------------------------------------------------------------------
// Substrate micro-benchmarks.
// ---------------------------------------------------------------------------

// BenchmarkChecksum1514 measures the real UDP checksum over a maximum frame.
func BenchmarkChecksum1514(b *testing.B) {
	frame := make([]byte, 1514)
	for i := range frame {
		frame[i] = byte(i)
	}
	b.SetBytes(1514)
	for i := 0; i < b.N; i++ {
		wire.Checksum(frame)
	}
}

// BenchmarkBuildParsePacket measures full frame assembly and validation.
func BenchmarkBuildParsePacket(b *testing.B) {
	src := wire.Endpoint{MAC: wire.MACForHost(1), IP: wire.IPForHost(1), Port: wire.RPCPort}
	dst := wire.Endpoint{MAC: wire.MACForHost(2), IP: wire.IPForHost(2), Port: wire.RPCPort}
	payload := make([]byte, wire.MaxSinglePacketPayload)
	buf := make([]byte, wire.PacketLen(len(payload)))
	h := wire.RPCHeader{Type: wire.TypeResult, FragCount: 1, Flags: wire.FlagLastFrag}
	b.SetBytes(int64(len(buf)))
	for i := 0; i < b.N; i++ {
		if err := wire.BuildPacketInto(buf, src, dst, h, payload, true); err != nil {
			b.Fatal(err)
		}
		if _, err := wire.ParsePacket(buf, true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMarshalRoundTrip measures the Enc/Dec layer.
func BenchmarkMarshalRoundTrip(b *testing.B) {
	buf := make([]byte, 64)
	for i := 0; i < b.N; i++ {
		e := marshal.NewEnc(buf)
		e.PutInt32(1)
		e.PutUint64(2)
		e.PutBool(true)
		e.PutString("hello")
		d := marshal.NewDec(e.Bytes())
		d.Int32()
		d.Uint64()
		d.Bool()
		if s := d.String(); s != "hello" || d.Err() != nil {
			b.Fatal("round trip failed")
		}
	}
}
