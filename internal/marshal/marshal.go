// Package marshal implements argument and result marshalling with the
// passing-mode semantics of the Firefly's Modula-2+ stubs.
//
// Arguments are classified by mode:
//
//   - By-value scalars are copied into the call packet by the caller stub
//     and copied out onto the server's stack by the server stub; they do not
//     appear in the result packet (Table II).
//   - VAR OUT arguments travel only in the result packet. The caller stub
//     does not copy them into the call packet; the server stub hands the
//     server procedure a slice aliasing the result packet buffer so the
//     server writes the value in place; the single copy happens when the
//     caller stub moves the value from the result packet into the caller's
//     variable (Tables III, IV).
//   - VAR IN arguments travel only in the call packet, mutatis mutandis.
//   - VAR INOUT arguments travel in both.
//   - Text.T values are immutable garbage-collected strings: the caller stub
//     copies the string into the call packet and the server stub must
//     allocate a fresh Text.T and copy into it (Table V).
//
// Generated stubs use the Enc/Dec primitives as "direct assignment
// statements"; complex types (Text.T) go through the library procedures
// PutText/GetText, as on the Firefly.
package marshal

import (
	"errors"
	"fmt"
)

// Mode says which packets carry an argument.
type Mode uint8

const (
	// ByValue arguments are copied into the call packet only.
	ByValue Mode = iota
	// VarIn arguments travel only in the call packet.
	VarIn
	// VarOut arguments travel only in the result packet.
	VarOut
	// VarInOut arguments travel in both packets.
	VarInOut
)

// String names the mode in Modula-2+ terms.
func (m Mode) String() string {
	switch m {
	case ByValue:
		return "by-value"
	case VarIn:
		return "VAR IN"
	case VarOut:
		return "VAR OUT"
	case VarInOut:
		return "VAR INOUT"
	default:
		return fmt.Sprintf("mode(%d)", uint8(m))
	}
}

// InCall reports whether an argument with this mode appears in the call packet.
func (m Mode) InCall() bool { return m == ByValue || m == VarIn || m == VarInOut }

// InResult reports whether an argument with this mode appears in the result packet.
func (m Mode) InResult() bool { return m == VarOut || m == VarInOut }

// Errors.
var (
	ErrShort    = errors.New("marshal: packet too short")
	ErrOverflow = errors.New("marshal: value exceeds packet capacity")
	ErrBadTag   = errors.New("marshal: bad type tag")
)

// Enc writes values into a packet payload buffer. The zero value encodes
// into a fresh internal buffer; NewEncAt encodes into caller-owned space
// (a pooled packet buffer) without allocating.
type Enc struct {
	buf []byte
	off int
	err error
}

// NewEnc returns an encoder writing into buf[0:], which must be large enough
// for everything encoded; overflow is recorded as an error, not a panic.
func NewEnc(buf []byte) *Enc { return &Enc{buf: buf} }

// Reset rewinds the encoder onto buf, clearing any error. It lets a caller
// that owns a long-lived Enc (one per calling thread, like a Firefly packet
// buffer) marshal every call without allocating an encoder.
func (e *Enc) Reset(buf []byte) { e.buf, e.off, e.err = buf, 0, nil }

// Len returns the number of bytes encoded so far.
func (e *Enc) Len() int { return e.off }

// Err returns the first error encountered, if any.
func (e *Enc) Err() error { return e.err }

// Bytes returns the encoded payload.
func (e *Enc) Bytes() []byte { return e.buf[:e.off] }

func (e *Enc) room(n int) []byte {
	if e.err != nil {
		return nil
	}
	if e.off+n > len(e.buf) {
		e.err = ErrOverflow
		return nil
	}
	b := e.buf[e.off : e.off+n]
	e.off += n
	return b
}

// PutByte encodes a single byte.
func (e *Enc) PutByte(v byte) {
	if b := e.room(1); b != nil {
		b[0] = v
	}
}

// PutBool encodes a BOOLEAN.
func (e *Enc) PutBool(v bool) {
	var x byte
	if v {
		x = 1
	}
	e.PutByte(x)
}

// PutInt16 encodes a 16-bit integer.
func (e *Enc) PutInt16(v int16) { e.PutUint16(uint16(v)) }

// PutUint16 encodes a 16-bit cardinal.
func (e *Enc) PutUint16(v uint16) {
	if b := e.room(2); b != nil {
		b[0], b[1] = byte(v>>8), byte(v)
	}
}

// PutInt32 encodes a 4-byte INTEGER — the paper's canonical by-value
// argument (Table II).
func (e *Enc) PutInt32(v int32) { e.PutUint32(uint32(v)) }

// PutUint32 encodes a 4-byte CARDINAL.
func (e *Enc) PutUint32(v uint32) {
	if b := e.room(4); b != nil {
		b[0], b[1], b[2], b[3] = byte(v>>24), byte(v>>16), byte(v>>8), byte(v)
	}
}

// PutInt64 encodes an 8-byte integer.
func (e *Enc) PutInt64(v int64) { e.PutUint64(uint64(v)) }

// PutUint64 encodes an 8-byte cardinal.
func (e *Enc) PutUint64(v uint64) {
	e.PutUint32(uint32(v >> 32))
	e.PutUint32(uint32(v))
}

// PutFloat64 encodes a REAL as IEEE-754 bits.
func (e *Enc) PutFloat64(v float64) { e.PutUint64(f64bits(v)) }

// PutFixedBytes encodes a fixed-length array. The length is part of the
// interface type, so no length prefix travels on the wire (Table III).
func (e *Enc) PutFixedBytes(v []byte) {
	if b := e.room(len(v)); b != nil {
		copy(b, v)
	}
}

// PutVarBytes encodes a variable-length array: a 4-byte length then the
// bytes (Table IV).
func (e *Enc) PutVarBytes(v []byte) {
	e.PutUint32(uint32(len(v)))
	e.PutFixedBytes(v)
}

// PutString encodes a Go string as a variable-length array.
func (e *Enc) PutString(s string) {
	e.PutUint32(uint32(len(s)))
	if b := e.room(len(s)); b != nil {
		copy(b, s)
	}
}

// AliasFixed reserves n bytes in the packet and returns a slice aliasing
// them. This is how a VAR OUT argument is produced without copying at the
// server: the server procedure writes directly into the result packet.
func (e *Enc) AliasFixed(n int) []byte {
	return e.room(n)
}

// Dec reads values from a packet payload.
type Dec struct {
	buf []byte
	off int
	err error
}

// NewDec returns a decoder over payload.
func NewDec(payload []byte) *Dec { return &Dec{buf: payload} }

// Reset rewinds the decoder onto payload, clearing any error, so a
// long-lived Dec can be reused across calls without allocating.
func (d *Dec) Reset(payload []byte) { d.buf, d.off, d.err = payload, 0, nil }

// Err returns the first error encountered, if any.
func (d *Dec) Err() error { return d.err }

// Remaining returns the number of unread bytes.
func (d *Dec) Remaining() int { return len(d.buf) - d.off }

func (d *Dec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.off+n > len(d.buf) {
		d.err = ErrShort
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// Byte decodes a single byte.
func (d *Dec) Byte() byte {
	if b := d.take(1); b != nil {
		return b[0]
	}
	return 0
}

// Bool decodes a BOOLEAN.
func (d *Dec) Bool() bool { return d.Byte() != 0 }

// Int16 decodes a 16-bit integer.
func (d *Dec) Int16() int16 { return int16(d.Uint16()) }

// Uint16 decodes a 16-bit cardinal.
func (d *Dec) Uint16() uint16 {
	if b := d.take(2); b != nil {
		return uint16(b[0])<<8 | uint16(b[1])
	}
	return 0
}

// Int32 decodes a 4-byte INTEGER.
func (d *Dec) Int32() int32 { return int32(d.Uint32()) }

// Uint32 decodes a 4-byte CARDINAL.
func (d *Dec) Uint32() uint32 {
	if b := d.take(4); b != nil {
		return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
	}
	return 0
}

// Int64 decodes an 8-byte integer.
func (d *Dec) Int64() int64 { return int64(d.Uint64()) }

// Uint64 decodes an 8-byte cardinal.
func (d *Dec) Uint64() uint64 {
	hi := uint64(d.Uint32())
	return hi<<32 | uint64(d.Uint32())
}

// Float64 decodes a REAL.
func (d *Dec) Float64() float64 { return f64frombits(d.Uint64()) }

// FixedBytes copies an n-byte fixed array out of the packet into dst.
func (d *Dec) FixedBytes(dst []byte) {
	if b := d.take(len(dst)); b != nil {
		copy(dst, b)
	}
}

// AliasFixed returns an n-byte slice aliasing the packet — zero-copy access
// for a VAR IN argument at the server.
func (d *Dec) AliasFixed(n int) []byte { return d.take(n) }

// VarBytes decodes a variable-length array, copying it into fresh storage.
func (d *Dec) VarBytes() []byte {
	n := int(d.Uint32())
	b := d.take(n)
	if b == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}

// AliasVarBytes decodes a variable-length array without copying.
func (d *Dec) AliasVarBytes() []byte {
	n := int(d.Uint32())
	return d.take(n)
}

// VarBytesInto decodes a variable-length array into dst and returns the
// number of bytes written; this is the caller-stub side of a VAR OUT array,
// where the single copy lands in the caller's variable.
func (d *Dec) VarBytesInto(dst []byte) int {
	n := int(d.Uint32())
	b := d.take(n)
	if b == nil {
		return 0
	}
	if n > len(dst) {
		d.err = ErrOverflow
		return 0
	}
	copy(dst, b)
	return n
}

// String decodes a string.
func (d *Dec) String() string {
	n := int(d.Uint32())
	b := d.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}
