package marshal

import "math"

func f64bits(v float64) uint64     { return math.Float64bits(v) }
func f64frombits(b uint64) float64 { return math.Float64frombits(b) }

// Text mirrors Modula-2+'s Text.T: an immutable text string allocated in
// garbage-collected storage. A nil *Text is the NIL text, distinct from the
// empty text. The caller stub copies the string into the call packet; the
// server stub allocates a fresh Text and copies into it, so the server never
// aliases packet memory for a Text (Table V).
type Text struct {
	s string
}

// NewText allocates a Text holding s.
func NewText(s string) *Text { return &Text{s: s} }

// String returns the text's contents. The NIL text renders as "".
func (t *Text) String() string {
	if t == nil {
		return ""
	}
	return t.s
}

// Len returns the text length in bytes; 0 for NIL.
func (t *Text) Len() int {
	if t == nil {
		return 0
	}
	return len(t.s)
}

// IsNil reports whether the reference is NIL.
func (t *Text) IsNil() bool { return t == nil }

// Equal reports content equality, with NIL equal only to NIL.
func (t *Text) Equal(u *Text) bool {
	if t == nil || u == nil {
		return t == nil && u == nil
	}
	return t.s == u.s
}

// Wire tags for Text values.
const (
	textTagNil    = 0
	textTagString = 1
)

// PutText encodes a Text reference: a tag byte, then for non-NIL a
// variable-length byte array. This is a "library marshalling procedure" in
// the paper's terms.
func (e *Enc) PutText(t *Text) {
	if t == nil {
		e.PutByte(textTagNil)
		return
	}
	e.PutByte(textTagString)
	e.PutString(t.s)
}

// GetText decodes a Text reference, allocating fresh garbage-collected
// storage for the contents as the Firefly server stub must.
func (d *Dec) GetText() *Text {
	switch tag := d.Byte(); tag {
	case textTagNil:
		return nil
	case textTagString:
		return &Text{s: d.String()}
	default:
		if d.err == nil {
			d.err = ErrBadTag
		}
		return nil
	}
}

// TextWireSize returns the encoded size of a Text, for stubs sizing packets.
func TextWireSize(t *Text) int {
	if t == nil {
		return 1
	}
	return 1 + 4 + t.Len()
}
