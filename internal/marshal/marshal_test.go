package marshal

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestScalarRoundTrip(t *testing.T) {
	buf := make([]byte, 256)
	e := NewEnc(buf)
	e.PutByte(0xab)
	e.PutBool(true)
	e.PutBool(false)
	e.PutInt16(-12345)
	e.PutUint16(54321)
	e.PutInt32(-7)
	e.PutUint32(0xdeadbeef)
	e.PutInt64(-1 << 40)
	e.PutUint64(0x0123456789abcdef)
	e.PutFloat64(3.14159)
	if e.Err() != nil {
		t.Fatal(e.Err())
	}

	d := NewDec(e.Bytes())
	if d.Byte() != 0xab || d.Bool() != true || d.Bool() != false {
		t.Fatal("byte/bool mismatch")
	}
	if d.Int16() != -12345 || d.Uint16() != 54321 {
		t.Fatal("16-bit mismatch")
	}
	if d.Int32() != -7 || d.Uint32() != 0xdeadbeef {
		t.Fatal("32-bit mismatch")
	}
	if d.Int64() != -1<<40 || d.Uint64() != 0x0123456789abcdef {
		t.Fatal("64-bit mismatch")
	}
	if d.Float64() != 3.14159 {
		t.Fatal("float mismatch")
	}
	if d.Err() != nil {
		t.Fatal(d.Err())
	}
	if d.Remaining() != 0 {
		t.Fatalf("%d bytes left over", d.Remaining())
	}
}

func TestInt32IsFourBytes(t *testing.T) {
	// The paper's Table II marshals 4-byte integers by value.
	e := NewEnc(make([]byte, 16))
	e.PutInt32(1)
	if e.Len() != 4 {
		t.Fatalf("PutInt32 encoded %d bytes, want 4", e.Len())
	}
}

func TestFixedBytesNoLengthPrefix(t *testing.T) {
	// Fixed-length arrays carry no length on the wire (Table III).
	e := NewEnc(make([]byte, 16))
	e.PutFixedBytes([]byte{1, 2, 3, 4})
	if e.Len() != 4 {
		t.Fatalf("fixed 4-byte array encoded as %d bytes, want 4", e.Len())
	}
	d := NewDec(e.Bytes())
	out := make([]byte, 4)
	d.FixedBytes(out)
	if !bytes.Equal(out, []byte{1, 2, 3, 4}) {
		t.Fatal("fixed bytes mismatch")
	}
}

func TestVarBytesHasLengthPrefix(t *testing.T) {
	// Variable-length arrays carry a 4-byte length (Table IV).
	e := NewEnc(make([]byte, 16))
	e.PutVarBytes([]byte{9, 8})
	if e.Len() != 6 {
		t.Fatalf("var 2-byte array encoded as %d bytes, want 6", e.Len())
	}
	d := NewDec(e.Bytes())
	if got := d.VarBytes(); !bytes.Equal(got, []byte{9, 8}) {
		t.Fatalf("VarBytes = %v", got)
	}
}

func TestAliasFixedZeroCopy(t *testing.T) {
	// Server-side VAR OUT: the alias writes through to the packet.
	buf := make([]byte, 8)
	e := NewEnc(buf)
	alias := e.AliasFixed(4)
	copy(alias, "abcd")
	if string(e.Bytes()) != "abcd" {
		t.Fatal("AliasFixed did not write through to packet")
	}
	// Server-side VAR IN: decode alias shares memory with payload.
	d := NewDec(buf)
	a := d.AliasFixed(4)
	buf[0] = 'z'
	if a[0] != 'z' {
		t.Fatal("Dec.AliasFixed copied instead of aliasing")
	}
}

func TestVarBytesInto(t *testing.T) {
	e := NewEnc(make([]byte, 64))
	e.PutVarBytes([]byte("firefly"))
	dst := make([]byte, 16)
	d := NewDec(e.Bytes())
	n := d.VarBytesInto(dst)
	if n != 7 || string(dst[:n]) != "firefly" {
		t.Fatalf("VarBytesInto = %d, %q", n, dst[:n])
	}
}

func TestVarBytesIntoTooSmall(t *testing.T) {
	e := NewEnc(make([]byte, 64))
	e.PutVarBytes([]byte("firefly"))
	d := NewDec(e.Bytes())
	if n := d.VarBytesInto(make([]byte, 3)); n != 0 {
		t.Fatalf("overflowing VarBytesInto returned %d", n)
	}
	if d.Err() != ErrOverflow {
		t.Fatalf("err = %v, want ErrOverflow", d.Err())
	}
}

func TestEncOverflowSticky(t *testing.T) {
	e := NewEnc(make([]byte, 3))
	e.PutInt32(1)
	if e.Err() != ErrOverflow {
		t.Fatalf("err = %v, want ErrOverflow", e.Err())
	}
	e.PutByte(1) // must not write after error
	if e.Len() != 0 {
		t.Fatalf("encoder advanced %d bytes after error", e.Len())
	}
}

func TestDecShortSticky(t *testing.T) {
	d := NewDec([]byte{1, 2})
	if d.Uint32() != 0 {
		t.Fatal("short read returned data")
	}
	if d.Err() != ErrShort {
		t.Fatalf("err = %v, want ErrShort", d.Err())
	}
	if d.Byte() != 0 {
		t.Fatal("read succeeded after sticky error")
	}
}

func TestStringRoundTrip(t *testing.T) {
	e := NewEnc(make([]byte, 64))
	e.PutString("héllo")
	d := NewDec(e.Bytes())
	if got := d.String(); got != "héllo" {
		t.Fatalf("String = %q", got)
	}
}

func TestTextNil(t *testing.T) {
	e := NewEnc(make([]byte, 8))
	e.PutText(nil)
	if e.Len() != 1 {
		t.Fatalf("NIL text encoded as %d bytes, want 1", e.Len())
	}
	d := NewDec(e.Bytes())
	got := d.GetText()
	if !got.IsNil() {
		t.Fatal("NIL text did not round-trip")
	}
	if TextWireSize(nil) != 1 {
		t.Fatal("TextWireSize(nil) != 1")
	}
}

func TestTextRoundTripAllocatesFresh(t *testing.T) {
	src := NewText("garbage collected")
	e := NewEnc(make([]byte, 64))
	e.PutText(src)
	if e.Len() != TextWireSize(src) {
		t.Fatalf("encoded %d bytes, TextWireSize says %d", e.Len(), TextWireSize(src))
	}
	d := NewDec(e.Bytes())
	got := d.GetText()
	if !got.Equal(src) {
		t.Fatalf("text round-trip: %q", got.String())
	}
	if got == src {
		t.Fatal("decoder returned the same object; must allocate fresh")
	}
}

func TestTextBadTag(t *testing.T) {
	d := NewDec([]byte{7})
	if d.GetText() != nil || d.Err() != ErrBadTag {
		t.Fatalf("bad tag: err = %v", d.Err())
	}
}

func TestTextEqual(t *testing.T) {
	if !NewText("a").Equal(NewText("a")) {
		t.Fatal("equal texts unequal")
	}
	if NewText("a").Equal(nil) || (*Text)(nil).Equal(NewText("")) {
		t.Fatal("NIL must equal only NIL")
	}
	if !(*Text)(nil).Equal(nil) {
		t.Fatal("NIL != NIL")
	}
	if (*Text)(nil).Len() != 0 || (*Text)(nil).String() != "" {
		t.Fatal("NIL accessors broken")
	}
}

func TestModeSemantics(t *testing.T) {
	cases := []struct {
		m                Mode
		inCall, inResult bool
		s                string
	}{
		{ByValue, true, false, "by-value"},
		{VarIn, true, false, "VAR IN"},
		{VarOut, false, true, "VAR OUT"},
		{VarInOut, true, true, "VAR INOUT"},
	}
	for _, c := range cases {
		if c.m.InCall() != c.inCall || c.m.InResult() != c.inResult {
			t.Errorf("%v: InCall=%v InResult=%v", c.m, c.m.InCall(), c.m.InResult())
		}
		if c.m.String() != c.s {
			t.Errorf("%v.String() = %q, want %q", c.m, c.m.String(), c.s)
		}
	}
	if Mode(9).String() != "mode(9)" {
		t.Fatal("unknown mode string")
	}
}

// Property: arbitrary scalar sequences round-trip.
func TestQuickScalars(t *testing.T) {
	f := func(a int32, b uint32, c int64, d uint64, e16 int16, f64 float64, bl bool) bool {
		if math.IsNaN(f64) {
			f64 = 0
		}
		buf := make([]byte, 64)
		e := NewEnc(buf)
		e.PutInt32(a)
		e.PutUint32(b)
		e.PutInt64(c)
		e.PutUint64(d)
		e.PutInt16(e16)
		e.PutFloat64(f64)
		e.PutBool(bl)
		if e.Err() != nil {
			return false
		}
		dec := NewDec(e.Bytes())
		ok := dec.Int32() == a && dec.Uint32() == b && dec.Int64() == c &&
			dec.Uint64() == d && dec.Int16() == e16 && dec.Float64() == f64 &&
			dec.Bool() == bl
		return ok && dec.Err() == nil && dec.Remaining() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: var arrays and texts of arbitrary contents round-trip.
func TestQuickArraysAndText(t *testing.T) {
	f := func(arr []byte, s string, useNil bool) bool {
		buf := make([]byte, 16+len(arr)+2*len(s)+32)
		e := NewEnc(buf)
		e.PutVarBytes(arr)
		var txt *Text
		if !useNil {
			txt = NewText(s)
		}
		e.PutText(txt)
		if e.Err() != nil {
			return false
		}
		d := NewDec(e.Bytes())
		gotArr := d.VarBytes()
		gotTxt := d.GetText()
		if d.Err() != nil {
			return false
		}
		return bytes.Equal(gotArr, arr) && gotTxt.Equal(txt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
