// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel maintains a virtual clock and an event queue ordered by
// (time, sequence). Simulated threads are real goroutines, but the kernel
// enforces strictly one-at-a-time execution with an explicit handoff, so a
// simulation run with a fixed seed and configuration is fully deterministic:
// two runs produce identical event traces, timings, and results.
//
// Everything in this package counts virtual time; no wall-clock time is
// consumed while a simulated thread "sleeps".
package sim

import (
	"container/heap"
	"fmt"
	"sync"
	"time"
)

// Time is an instant of virtual time, in nanoseconds since the start of the
// simulation.
type Time int64

// Duration re-exports time.Duration for virtual durations, so callers can use
// the familiar constants (time.Microsecond etc.) without importing both
// packages everywhere.
type Duration = time.Duration

// Micros returns a Duration of n microseconds. The Firefly cost model is
// expressed in microseconds, so this is the most common constructor.
func Micros(n int64) Duration { return Duration(n) * time.Microsecond }

// MicrosF returns a Duration of n fractional microseconds.
func MicrosF(n float64) Duration { return Duration(n * float64(time.Microsecond)) }

// Seconds converts a virtual instant into seconds as a float.
func (t Time) Seconds() float64 { return float64(t) / float64(time.Second) }

// Micros converts a virtual instant into microseconds as a float.
func (t Time) Micros() float64 { return float64(t) / float64(time.Microsecond) }

// Add returns the instant d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration between two instants.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// event is a scheduled callback. Events with equal times fire in the order
// they were scheduled (seq breaks ties), which is what makes runs
// reproducible.
type event struct {
	at       Time
	seq      uint64
	fn       func()
	canceled bool
	index    int // heap index, -1 when popped
}

// Timer is a handle to a scheduled event that can be canceled.
type Timer struct{ ev *event }

// Cancel prevents the timer's callback from running. It is safe to cancel a
// timer that has already fired or been canceled; Cancel reports whether this
// call prevented the callback.
func (t *Timer) Cancel() bool {
	if t == nil || t.ev == nil || t.ev.canceled {
		return false
	}
	if t.ev.index < 0 { // already popped (fired or firing)
		return false
	}
	t.ev.canceled = true
	return true
}

// Active reports whether the timer is still pending.
func (t *Timer) Active() bool {
	return t != nil && t.ev != nil && !t.ev.canceled && t.ev.index >= 0
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Kernel is the simulation engine. The zero value is not usable; construct
// with NewKernel.
type Kernel struct {
	now     Time
	seq     uint64
	queue   eventHeap
	threads int // live thread count, for leak detection
	nextID  int
	rng     *RNG

	// handoff carries control back from a running simulated thread to the
	// kernel loop. Exactly one goroutine (the kernel or a single thread) is
	// runnable at any moment.
	handoff chan struct{}

	running bool
	stopped bool
	trace   func(t Time, format string, args ...any)

	// tracer receives structural events (thread transitions, event fires,
	// resource occupancy); nil when tracing is off. See trace.go.
	tracer Tracer

	// resources lists every Resource created on the kernel, in creation
	// order, so reports can enumerate them without the model wiring each one
	// through by hand.
	resources []*Resource

	// stepMu serializes event execution against Inspect: the kernel holds it
	// across each event (including any simulated-thread execution the event
	// hands control to), so an inspector between events observes quiescent
	// state. Uncontended it costs one lock/unlock per event and nothing in
	// virtual time.
	stepMu sync.Mutex
}

// NewKernel returns a kernel with its clock at zero and the given RNG seed.
func NewKernel(seed uint64) *Kernel {
	return &Kernel{
		handoff: make(chan struct{}),
		rng:     NewRNG(seed),
	}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// RNG returns the kernel's deterministic random number generator.
func (k *Kernel) RNG() *RNG { return k.rng }

// SetTrace installs a trace function invoked for kernel-level events.
// Passing nil disables tracing.
func (k *Kernel) SetTrace(fn func(t Time, format string, args ...any)) { k.trace = fn }

func (k *Kernel) tracef(format string, args ...any) {
	if k.trace != nil {
		k.trace(k.now, format, args...)
	}
}

// At schedules fn to run at the given absolute virtual time, which must not
// be in the past. It returns a cancelable Timer.
func (k *Kernel) At(at Time, fn func()) *Timer {
	if at < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, k.now))
	}
	ev := &event{at: at, seq: k.seq, fn: fn}
	k.seq++
	heap.Push(&k.queue, ev)
	if k.tracer != nil {
		k.tracer.EventScheduled(k.now, at, ev.seq)
	}
	return &Timer{ev: ev}
}

// After schedules fn to run d from now.
func (k *Kernel) After(d Duration, fn func()) *Timer {
	if d < 0 {
		panic("sim: negative delay")
	}
	return k.At(k.now.Add(d), fn)
}

// Pending returns the number of events in the queue (including canceled ones
// not yet discarded).
func (k *Kernel) Pending() int { return len(k.queue) }

// Stop makes Run return after the current event completes.
func (k *Kernel) Stop() { k.stopped = true }

// Step executes the single next event, advancing the clock. It returns false
// when the queue is empty.
func (k *Kernel) Step() bool {
	k.stepMu.Lock()
	defer k.stepMu.Unlock()
	return k.step()
}

// step is Step's body; callers hold stepMu.
func (k *Kernel) step() bool {
	for len(k.queue) > 0 {
		ev := heap.Pop(&k.queue).(*event)
		if ev.canceled {
			continue
		}
		if ev.at < k.now {
			panic("sim: time went backwards")
		}
		k.now = ev.at
		if k.tracer != nil {
			k.tracer.EventFired(k.now, ev.seq)
		}
		ev.fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty or Stop is called. It panics
// if called reentrantly. Between events the kernel releases its inspection
// lock, so Kernel.Inspect from another goroutine observes quiescent state.
func (k *Kernel) Run() {
	if k.running {
		panic("sim: Kernel.Run called reentrantly")
	}
	k.running = true
	k.stopped = false
	defer func() { k.running = false }()
	for !k.stopped && k.Step() {
	}
}

// RunUntil executes events with time ≤ deadline, leaving later events queued.
// The clock is advanced to the deadline even if the queue drains early.
func (k *Kernel) RunUntil(deadline Time) {
	if k.running {
		panic("sim: Kernel.RunUntil called reentrantly")
	}
	k.running = true
	k.stopped = false
	defer func() { k.running = false }()
	for !k.stopped {
		k.stepMu.Lock()
		// Peek for the next runnable event within the deadline.
		for len(k.queue) > 0 && k.queue[0].canceled {
			heap.Pop(&k.queue)
		}
		if len(k.queue) == 0 || k.queue[0].at > deadline {
			k.stepMu.Unlock()
			break
		}
		k.step()
		k.stepMu.Unlock()
	}
	k.stepMu.Lock()
	if k.now < deadline {
		k.now = deadline
	}
	k.stepMu.Unlock()
}
