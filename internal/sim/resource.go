package sim

import (
	"math"

	"fireflyrpc/internal/stats"
)

// mathLog is split into its own file-level indirection point so tests can
// confirm RNG determinism does not depend on platform math quirks for the
// values we use.
func mathLog(x float64) float64 { return math.Log(x) }

// Resource is a FIFO-served resource with a fixed number of identical
// servers. It models things like a bus, a network medium, or a DMA engine:
// callers occupy one server for a stated duration and queue in arrival order
// when all servers are busy.
//
// Resource may be used both from thread context (blocking Use) and from
// event context (asynchronous Submit).
//
// Every resource continuously integrates busy server-time and queue depth
// against the virtual clock and folds each request's queueing delay into a
// wait-time histogram, so a finished (or in-flight — the integrals are
// brought up to Now on every read) run can report utilization, mean queue
// depth, and wait quantiles without any extra instrumentation.
type Resource struct {
	k       *Kernel
	name    string
	servers int
	busy    int
	queue   []*resReq

	// accounting
	busyTime   Duration // integrated busy server-time
	queueTime  Duration // integrated queue depth (request-time spent waiting)
	lastChange Time
	served     int64
	maxQueue   int
	waits      stats.Hist // queueing delay per request (zero for immediate starts)
}

type resReq struct {
	dur  Duration
	done func()
	enq  Time // arrival, for wait-time accounting
}

// NewResource creates a resource with the given number of servers and
// registers it on the kernel (see Kernel.Resources).
func NewResource(k *Kernel, name string, servers int) *Resource {
	if servers <= 0 {
		panic("sim: resource needs at least one server")
	}
	r := &Resource{k: k, name: name, servers: servers, lastChange: k.Now()}
	k.resources = append(k.resources, r)
	return r
}

// Name returns the resource's name.
func (r *Resource) Name() string { return r.name }

// Servers returns the number of identical servers.
func (r *Resource) Servers() int { return r.servers }

// Busy returns the number of busy servers.
func (r *Resource) Busy() int { return r.busy }

// QueueLen returns the number of queued requests.
func (r *Resource) QueueLen() int { return len(r.queue) }

// account integrates busy server-time and queue depth up to the current
// instant. It must run before every change to busy or the queue — and
// before every read of the integrals, so a sample taken mid-hold already
// includes the in-progress occupancy (the mid-hold read contract
// TestResourceUtilizationMidHold pins).
func (r *Resource) account() {
	now := r.k.Now()
	dt := int64(now - r.lastChange)
	r.busyTime += Duration(dt * int64(r.busy))
	r.queueTime += Duration(dt * int64(len(r.queue)))
	r.lastChange = now
}

// Utilization returns the fraction of total server capacity that has been
// busy since the start of the run, in [0, 1]. Sampling mid-hold is exact:
// the in-progress occupancy is integrated up to Now before reading.
func (r *Resource) Utilization() float64 {
	r.account()
	total := Duration(r.k.Now())
	if total <= 0 {
		return 0
	}
	return float64(r.busyTime) / (float64(total) * float64(r.servers))
}

// MeanBusyServers returns the time-averaged number of busy servers.
func (r *Resource) MeanBusyServers() float64 {
	r.account()
	total := Duration(r.k.Now())
	if total <= 0 {
		return 0
	}
	return float64(r.busyTime) / float64(total)
}

// MeanQueueDepth returns the time-averaged number of queued (waiting, not
// in service) requests since the start of the run.
func (r *Resource) MeanQueueDepth() float64 {
	r.account()
	total := Duration(r.k.Now())
	if total <= 0 {
		return 0
	}
	return float64(r.queueTime) / float64(total)
}

// MaxQueueDepth returns the deepest the wait queue has been.
func (r *Resource) MaxQueueDepth() int { return r.maxQueue }

// Served returns the number of completed occupancies.
func (r *Resource) Served() int64 { return r.served }

// WaitSnapshot returns the wait-time (queueing delay) distribution over all
// requests so far, including the zero waits of requests that found a free
// server.
func (r *Resource) WaitSnapshot() stats.HistSnapshot { return r.waits.Snapshot() }

// ResourceStats is a point-in-time accounting snapshot of one resource, the
// unit of the simulator's utilization/queueing report.
type ResourceStats struct {
	Name            string             `json:"name"`
	Servers         int                `json:"servers"`
	Busy            int                `json:"busy"`
	QueueLen        int                `json:"queue_len"`
	Served          int64              `json:"served"`
	Utilization     float64            `json:"utilization"`
	MeanBusyServers float64            `json:"mean_busy_servers"`
	MeanQueueDepth  float64            `json:"mean_queue_depth"`
	MaxQueueDepth   int                `json:"max_queue_depth"`
	Wait            stats.Summary      `json:"wait"`
	WaitHist        stats.HistSnapshot `json:"-"`
}

// Stats snapshots the resource's accounting, integrals brought up to Now.
// Call from simulation context, or under Kernel.Inspect when a run driven
// by another goroutine may be in progress.
func (r *Resource) Stats() ResourceStats {
	wait := r.waits.Snapshot()
	return ResourceStats{
		Name:            r.name,
		Servers:         r.servers,
		Busy:            r.busy,
		QueueLen:        len(r.queue),
		Served:          r.served,
		Utilization:     r.Utilization(),
		MeanBusyServers: r.MeanBusyServers(),
		MeanQueueDepth:  r.MeanQueueDepth(),
		MaxQueueDepth:   r.maxQueue,
		Wait:            wait.Summarize(),
		WaitHist:        wait,
	}
}

// Submit occupies a server for dur, calling done when the occupancy ends.
// If all servers are busy the request queues FIFO. Safe from event context.
func (r *Resource) Submit(dur Duration, done func()) {
	if dur < 0 {
		panic("sim: negative resource occupancy")
	}
	req := &resReq{dur: dur, done: done, enq: r.k.Now()}
	if r.busy < r.servers {
		r.start(req)
		return
	}
	r.account()
	r.queue = append(r.queue, req)
	if len(r.queue) > r.maxQueue {
		r.maxQueue = len(r.queue)
	}
	if tr := r.k.tracer; tr != nil {
		tr.ResourceQueued(r.k.now, r)
	}
}

func (r *Resource) start(req *resReq) {
	r.account()
	r.busy++
	wait := r.k.Now().Sub(req.enq)
	r.waits.Observe(wait)
	if tr := r.k.tracer; tr != nil {
		tr.ResourceAcquire(r.k.now, r, wait)
	}
	r.k.After(req.dur, func() {
		r.account()
		r.busy--
		r.served++
		if tr := r.k.tracer; tr != nil {
			tr.ResourceRelease(r.k.now, r)
		}
		if len(r.queue) > 0 {
			next := r.queue[0]
			copy(r.queue, r.queue[1:])
			r.queue = r.queue[:len(r.queue)-1]
			r.start(next)
		}
		if req.done != nil {
			req.done()
		}
	})
}

// Use blocks the calling thread while it occupies a server for dur,
// including any FIFO queueing delay.
func (r *Resource) Use(t *Thread, dur Duration) {
	wake := t.Waker()
	r.Submit(dur, wake)
	t.Block("resource:" + r.name)
}
