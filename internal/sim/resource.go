package sim

import "math"

// mathLog is split into its own file-level indirection point so tests can
// confirm RNG determinism does not depend on platform math quirks for the
// values we use.
func mathLog(x float64) float64 { return math.Log(x) }

// Resource is a FIFO-served resource with a fixed number of identical
// servers. It models things like a bus, a network medium, or a DMA engine:
// callers occupy one server for a stated duration and queue in arrival order
// when all servers are busy.
//
// Resource may be used both from thread context (blocking Use) and from
// event context (asynchronous Submit).
type Resource struct {
	k       *Kernel
	name    string
	servers int
	busy    int
	queue   []*resReq

	// accounting
	busyTime   Duration // integrated busy server-time
	lastChange Time
	served     int64
}

type resReq struct {
	dur  Duration
	done func()
}

// NewResource creates a resource with the given number of servers.
func NewResource(k *Kernel, name string, servers int) *Resource {
	if servers <= 0 {
		panic("sim: resource needs at least one server")
	}
	return &Resource{k: k, name: name, servers: servers, lastChange: k.Now()}
}

// Name returns the resource's name.
func (r *Resource) Name() string { return r.name }

// Busy returns the number of busy servers.
func (r *Resource) Busy() int { return r.busy }

// QueueLen returns the number of queued requests.
func (r *Resource) QueueLen() int { return len(r.queue) }

func (r *Resource) account() {
	now := r.k.Now()
	r.busyTime += Duration(int64(now-r.lastChange) * int64(r.busy))
	r.lastChange = now
}

// Utilization returns the fraction of total server capacity that has been
// busy since the start of the run, in [0, 1].
func (r *Resource) Utilization() float64 {
	r.account()
	total := Duration(r.k.Now())
	if total <= 0 {
		return 0
	}
	return float64(r.busyTime) / (float64(total) * float64(r.servers))
}

// MeanBusyServers returns the time-averaged number of busy servers.
func (r *Resource) MeanBusyServers() float64 {
	r.account()
	total := Duration(r.k.Now())
	if total <= 0 {
		return 0
	}
	return float64(r.busyTime) / float64(total)
}

// Served returns the number of completed occupancies.
func (r *Resource) Served() int64 { return r.served }

// Submit occupies a server for dur, calling done when the occupancy ends.
// If all servers are busy the request queues FIFO. Safe from event context.
func (r *Resource) Submit(dur Duration, done func()) {
	if dur < 0 {
		panic("sim: negative resource occupancy")
	}
	req := &resReq{dur: dur, done: done}
	if r.busy < r.servers {
		r.start(req)
		return
	}
	r.queue = append(r.queue, req)
}

func (r *Resource) start(req *resReq) {
	r.account()
	r.busy++
	r.k.After(req.dur, func() {
		r.account()
		r.busy--
		r.served++
		if len(r.queue) > 0 {
			next := r.queue[0]
			copy(r.queue, r.queue[1:])
			r.queue = r.queue[:len(r.queue)-1]
			r.start(next)
		}
		if req.done != nil {
			req.done()
		}
	})
}

// Use blocks the calling thread while it occupies a server for dur,
// including any FIFO queueing delay.
func (r *Resource) Use(t *Thread, dur Duration) {
	wake := t.Waker()
	r.Submit(dur, wake)
	t.Block("resource:" + r.name)
}
