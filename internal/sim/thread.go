package sim

import "fmt"

// Thread is a simulated thread of control. Each Thread is backed by a real
// goroutine, but the kernel guarantees that at most one simulated thread (or
// the kernel loop itself) executes at any moment, with deterministic
// scheduling, so no locking is needed inside simulation code.
//
// A Thread's body may call the blocking operations (Sleep, Park, Cond.Wait,
// Resource.Acquire); these consume virtual time only.
type Thread struct {
	k      *Kernel
	id     int
	name   string
	resume chan struct{}
	done   bool

	// parkReason is a debugging aid describing why the thread is blocked.
	parkReason string
}

// Spawn creates a simulated thread running fn, starting at the current
// virtual time (after already-queued events at this instant).
func (k *Kernel) Spawn(name string, fn func(t *Thread)) *Thread {
	t := &Thread{
		k:      k,
		id:     k.nextID,
		name:   name,
		resume: make(chan struct{}),
	}
	k.nextID++
	k.threads++
	if k.tracer != nil {
		k.tracer.ThreadSpawn(k.now, t.id, t.name)
	}
	go func() {
		<-t.resume // wait for the kernel to hand us control
		fn(t)
		t.done = true
		t.k.threads--
		t.k.tracef("thread %s exits", t.name)
		if t.k.tracer != nil {
			t.k.tracer.ThreadState(t.k.now, t.id, ThreadExit, "")
		}
		t.k.handoff <- struct{}{} // give control back for good
	}()
	k.After(0, func() { t.transfer() })
	return t
}

// SpawnAt is like Spawn but delays the thread's start by d.
func (k *Kernel) SpawnAt(d Duration, name string, fn func(t *Thread)) *Thread {
	t := &Thread{
		k:      k,
		id:     k.nextID,
		name:   name,
		resume: make(chan struct{}),
	}
	k.nextID++
	k.threads++
	if k.tracer != nil {
		k.tracer.ThreadSpawn(k.now, t.id, t.name)
	}
	go func() {
		<-t.resume
		fn(t)
		t.done = true
		t.k.threads--
		if t.k.tracer != nil {
			t.k.tracer.ThreadState(t.k.now, t.id, ThreadExit, "")
		}
		t.k.handoff <- struct{}{}
	}()
	k.After(d, func() { t.transfer() })
	return t
}

// Threads returns the number of live simulated threads.
func (k *Kernel) Threads() int { return k.threads }

// Name returns the thread's name.
func (t *Thread) Name() string { return t.name }

// ID returns the thread's unique id.
func (t *Thread) ID() int { return t.id }

// Kernel returns the owning kernel.
func (t *Thread) Kernel() *Kernel { return t.k }

// Now returns the current virtual time.
func (t *Thread) Now() Time { return t.k.now }

// Done reports whether the thread's body has returned.
func (t *Thread) Done() bool { return t.done }

// transfer hands control from the kernel loop to the thread and waits for it
// to block or exit. Must be called from kernel (event) context.
func (t *Thread) transfer() {
	if t.done {
		panic(fmt.Sprintf("sim: resuming finished thread %s", t.name))
	}
	if t.k.tracer != nil {
		t.k.tracer.ThreadState(t.k.now, t.id, ThreadRun, "")
	}
	t.resume <- struct{}{}
	<-t.k.handoff
}

// yield hands control from the thread back to the kernel loop and blocks
// until some event resumes the thread. Must be called from thread context.
func (t *Thread) yield(reason string) {
	t.parkReason = reason
	if t.k.tracer != nil {
		t.k.tracer.ThreadState(t.k.now, t.id, ThreadBlocked, reason)
	}
	t.k.handoff <- struct{}{}
	<-t.resume
	t.parkReason = ""
}

// Sleep blocks the thread for d of virtual time.
func (t *Thread) Sleep(d Duration) {
	if d < 0 {
		panic("sim: negative sleep")
	}
	t.k.After(d, func() { t.transfer() })
	t.yield("sleep")
}

// Waker returns a one-shot function that, when invoked (from event context
// or from another thread, after this thread has called Block), resumes this
// thread. Calling it twice panics. The usual pattern is:
//
//	wake := t.Waker()
//	registerSomewhere(wake)
//	t.Block("waiting for X")
//
// Because only one simulated thread runs at a time, the wake function cannot
// fire between Waker and Block.
func (t *Thread) Waker() (wake func()) {
	woken := false
	return func() {
		if woken {
			panic(fmt.Sprintf("sim: double wake of thread %s", t.name))
		}
		woken = true
		t.k.After(0, func() {
			if t.parkReason == "" {
				panic(fmt.Sprintf("sim: wake of running thread %s", t.name))
			}
			t.transfer()
		})
	}
}

// Block yields control until a previously-created Waker fires.
func (t *Thread) Block(reason string) {
	t.yield(reason)
}

// Cond is a FIFO condition variable for simulated threads.
type Cond struct {
	name    string
	waiters []*condWaiter
}

type condWaiter struct {
	t    *Thread
	wake func()
}

// NewCond returns a named condition variable.
func NewCond(name string) *Cond { return &Cond{name: name} }

// Wait blocks the calling thread until Signal or Broadcast releases it.
func (c *Cond) Wait(t *Thread) {
	w := &condWaiter{t: t}
	c.waiters = append(c.waiters, w)
	woken := false
	w.wake = func() {
		if woken {
			panic("sim: double wake via cond " + c.name)
		}
		woken = true
		t.k.After(0, func() { t.transfer() })
	}
	t.yield("cond:" + c.name)
}

// Signal wakes the longest-waiting thread, if any, and reports whether a
// thread was woken. May be called from event or thread context.
func (c *Cond) Signal() bool {
	if len(c.waiters) == 0 {
		return false
	}
	w := c.waiters[0]
	copy(c.waiters, c.waiters[1:])
	c.waiters = c.waiters[:len(c.waiters)-1]
	w.wake()
	return true
}

// Broadcast wakes all waiting threads and returns how many were woken.
func (c *Cond) Broadcast() int {
	n := len(c.waiters)
	ws := c.waiters
	c.waiters = nil
	for _, w := range ws {
		w.wake()
	}
	return n
}

// Waiters returns the number of threads blocked on the condition.
func (c *Cond) Waiters() int { return len(c.waiters) }
