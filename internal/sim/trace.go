package sim

// Tracer receives the kernel's structural events: thread state transitions,
// event scheduling and firing, and resource occupancy changes. Every method
// is invoked in simulation context (at most one simulated thread or the
// kernel loop runs at a time), so implementations need no locking as long as
// they are not read concurrently with a run — use Kernel.Inspect for that.
//
// The hooks exist for observability only. A nil tracer costs one pointer
// comparison per hook site and zero allocations, and an installed tracer
// must never change virtual time: the kernel calls the hooks after its own
// state changes, so two runs with the same seed produce identical timings
// whether or not a tracer is installed.
type Tracer interface {
	// ThreadSpawn reports a new simulated thread. The thread starts running
	// at a later instant (reported by a ThreadState ThreadRun transition).
	ThreadSpawn(at Time, id int, name string)
	// ThreadState reports a thread gaining control (ThreadRun), blocking
	// (ThreadBlocked, with the park reason), or exiting (ThreadExit).
	ThreadState(at Time, id int, state ThreadState, reason string)
	// EventScheduled reports an event queued at `fire`; seq orders equal-time
	// events.
	EventScheduled(at, fire Time, seq uint64)
	// EventFired reports an event's callback about to run.
	EventFired(at Time, seq uint64)
	// ResourceQueued reports a request arriving at a fully-busy resource.
	ResourceQueued(at Time, r *Resource)
	// ResourceAcquire reports a request beginning service after waiting
	// `wait` (zero when a server was free on arrival).
	ResourceAcquire(at Time, r *Resource, wait Duration)
	// ResourceRelease reports an occupancy ending.
	ResourceRelease(at Time, r *Resource)
}

// ThreadState values for Tracer.ThreadState.
type ThreadState uint8

const (
	// ThreadRun: the thread has control and is executing.
	ThreadRun ThreadState = iota
	// ThreadBlocked: the thread yielded; the reason names what it waits on.
	ThreadBlocked
	// ThreadExit: the thread's body returned.
	ThreadExit
)

// String names the state for trace output.
func (s ThreadState) String() string {
	switch s {
	case ThreadRun:
		return "run"
	case ThreadBlocked:
		return "blocked"
	case ThreadExit:
		return "exit"
	}
	return "?"
}

// SetTracer installs (or, with nil, removes) the kernel's structural tracer.
// Install before Run so the trace covers the whole simulation.
func (k *Kernel) SetTracer(tr Tracer) { k.tracer = tr }

// Tracer returns the installed structural tracer, nil if none.
func (k *Kernel) Tracer() Tracer { return k.tracer }

// Resources returns every resource created on this kernel, in creation
// order (which is deterministic for a fixed configuration). The slice is
// the kernel's own; callers must not modify it.
func (k *Kernel) Resources() []*Resource { return k.resources }

// Inspect runs fn while the simulation is paused between events, so fn can
// read (or mutate) kernel, thread, and resource state without racing a run
// driven from another goroutine. If no run is in progress fn executes
// immediately. The simulation's virtual timings are unaffected — the pause
// consumes wall-clock time only.
func (k *Kernel) Inspect(fn func()) {
	k.stepMu.Lock()
	defer k.stepMu.Unlock()
	fn()
}
