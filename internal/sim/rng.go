package sim

// RNG is a small, fast, deterministic pseudo-random number generator
// (SplitMix64). Simulations must draw all randomness from the kernel's RNG so
// that a given seed reproduces an identical run.
type RNG struct{ state uint64 }

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Duration returns a uniform duration in [0, d).
func (r *RNG) Duration(d Duration) Duration {
	if d <= 0 {
		return 0
	}
	return Duration(r.Uint64() % uint64(d))
}

// Exp returns an exponentially distributed duration with the given mean,
// clamped to at most 20 means to keep runs bounded.
func (r *RNG) Exp(mean Duration) Duration {
	u := r.Float64()
	if u <= 0 {
		u = 1e-12
	}
	// -ln(u) * mean, via a cheap series-free approximation using math.Log is
	// fine here; determinism matters, not performance.
	x := -logApprox(u) * float64(mean)
	max := 20 * float64(mean)
	if x > max {
		x = max
	}
	return Duration(x)
}

// logApprox computes the natural log. Wrapped so that the sim package's only
// dependency surface stays obvious.
func logApprox(x float64) float64 {
	return mathLog(x)
}
