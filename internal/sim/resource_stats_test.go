package sim

import (
	"sync"
	"testing"
	"time"
)

// TestResourceUtilizationMidHold pins the mid-hold read contract: sampling
// Utilization while an occupancy is in progress must integrate the busy time
// up to Now, not report the state as of the last transition.
func TestResourceUtilizationMidHold(t *testing.T) {
	k := NewKernel(1)
	r := NewResource(k, "bus", 1)
	r.Submit(Micros(100), nil)
	k.RunUntil(Time(Micros(50)))

	if got := r.Utilization(); got != 1.0 {
		t.Errorf("mid-hold utilization = %v, want 1.0", got)
	}
	if got := r.MeanBusyServers(); got != 1.0 {
		t.Errorf("mid-hold mean busy servers = %v, want 1.0", got)
	}

	// Run past the hold: 100 µs busy over 200 µs elapsed.
	k.RunUntil(Time(Micros(200)))
	if got := r.Utilization(); got < 0.499 || got > 0.501 {
		t.Errorf("post-hold utilization = %v, want 0.5", got)
	}
	// Repeated sampling must not double-count.
	if a, b := r.Utilization(), r.Utilization(); a != b {
		t.Errorf("resampling changed utilization: %v then %v", a, b)
	}
	if r.Served() != 1 {
		t.Errorf("served = %d, want 1", r.Served())
	}
}

// TestResourceQueueAccounting checks the queue-depth integral, max depth,
// and wait-time histogram against a hand-computed scenario.
func TestResourceQueueAccounting(t *testing.T) {
	k := NewKernel(1)
	r := NewResource(k, "bus", 1)
	// Three back-to-back 100 µs requests at t=0: waits 0, 100, 200 µs.
	for i := 0; i < 3; i++ {
		r.Submit(Micros(100), nil)
	}
	if r.QueueLen() != 2 {
		t.Fatalf("queue len = %d, want 2", r.QueueLen())
	}
	// Mid-queue sample at t=50: 2 queued the whole time.
	k.RunUntil(Time(Micros(50)))
	if got := r.MeanQueueDepth(); got < 1.99 || got > 2.01 {
		t.Errorf("mid-run mean queue depth = %v, want 2", got)
	}
	k.Run()
	if now := k.Now(); now != Time(Micros(300)) {
		t.Fatalf("drained at %v, want 300µs", now)
	}
	// Queue integral: 2 queued for 100 µs + 1 queued for 100 µs = 300 µs·req
	// over 300 µs elapsed → mean 1.0.
	if got := r.MeanQueueDepth(); got < 0.999 || got > 1.001 {
		t.Errorf("mean queue depth = %v, want 1.0", got)
	}
	if r.MaxQueueDepth() != 2 {
		t.Errorf("max queue depth = %d, want 2", r.MaxQueueDepth())
	}
	if got := r.Utilization(); got < 0.999 || got > 1.001 {
		t.Errorf("utilization = %v, want 1.0", got)
	}
	wait := r.WaitSnapshot()
	if wait.N != 3 {
		t.Fatalf("wait samples = %d, want 3", wait.N)
	}
	// Mean wait (0+100+200)/3 = 100 µs.
	if mean := wait.Mean(); mean != 100*time.Microsecond {
		t.Errorf("mean wait = %v, want 100µs", mean)
	}
	st := r.Stats()
	if st.Served != 3 || st.Wait.N != 3 || st.Name != "bus" {
		t.Errorf("stats snapshot off: %+v", st)
	}
}

// TestKernelResourceRegistry checks creation-order enumeration.
func TestKernelResourceRegistry(t *testing.T) {
	k := NewKernel(1)
	a := NewResource(k, "a", 1)
	b := NewResource(k, "b", 2)
	rs := k.Resources()
	if len(rs) != 2 || rs[0] != a || rs[1] != b {
		t.Fatalf("registry = %v", rs)
	}
}

// TestInspectConcurrentWithRun drives a busy simulation from one goroutine
// while another reads resource stats through Kernel.Inspect. Run under
// -race this pins that concurrent inspection does not corrupt (or race
// with) a run.
func TestInspectConcurrentWithRun(t *testing.T) {
	k := NewKernel(7)
	r := NewResource(k, "bus", 2)
	k.Spawn("worker", func(th *Thread) {
		for i := 0; i < 2000; i++ {
			r.Use(th, Micros(3))
			th.Sleep(Micros(1))
		}
	})
	k.Spawn("worker2", func(th *Thread) {
		for i := 0; i < 2000; i++ {
			r.Use(th, Micros(5))
		}
	})

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	for g := 0; g < 2; g++ {
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				k.Inspect(func() {
					st := r.Stats()
					if st.Utilization < 0 || st.Utilization > 1.0000001 {
						t.Errorf("utilization out of range: %v", st.Utilization)
					}
					_ = k.Now()
					_ = k.Pending()
				})
			}
		}()
	}
	k.Run()
	close(done)
	wg.Wait()
	if r.Served() != 4000 {
		t.Errorf("served = %d, want 4000", r.Served())
	}
}

// TestInspectIdleKernel checks Inspect works with no run in progress.
func TestInspectIdleKernel(t *testing.T) {
	k := NewKernel(1)
	ran := false
	k.Inspect(func() { ran = true })
	if !ran {
		t.Fatal("Inspect did not run fn")
	}
}

// recordingTracer counts hook invocations, for determinism comparisons.
type recordingTracer struct {
	spawns, states, scheds, fires int
	queued, acquired, released    int
}

func (r *recordingTracer) ThreadSpawn(Time, int, string) { r.spawns++ }
func (r *recordingTracer) ThreadState(Time, int, ThreadState, string) {
	r.states++
}
func (r *recordingTracer) EventScheduled(Time, Time, uint64) { r.scheds++ }
func (r *recordingTracer) EventFired(Time, uint64)           { r.fires++ }
func (r *recordingTracer) ResourceQueued(Time, *Resource)    { r.queued++ }
func (r *recordingTracer) ResourceAcquire(Time, *Resource, Duration) {
	r.acquired++
}
func (r *recordingTracer) ResourceRelease(Time, *Resource) { r.released++ }

// TestTracerDoesNotPerturbTimings runs the same scenario with and without a
// tracer installed and demands identical virtual results — the hooks must
// observe, never steer.
func TestTracerDoesNotPerturbTimings(t *testing.T) {
	scenario := func(tr Tracer) (Time, float64, int64) {
		k := NewKernel(42)
		if tr != nil {
			k.SetTracer(tr)
		}
		r := NewResource(k, "bus", 1)
		for i := 0; i < 3; i++ {
			k.Spawn("w", func(th *Thread) {
				for j := 0; j < 50; j++ {
					r.Use(th, Micros(int64(1+k.RNG().Intn(7))))
					th.Sleep(Micros(int64(k.RNG().Intn(3))))
				}
			})
		}
		k.Run()
		return k.Now(), r.Utilization(), r.Served()
	}

	nowOff, utilOff, servedOff := scenario(nil)
	rec := &recordingTracer{}
	nowOn, utilOn, servedOn := scenario(rec)
	if nowOff != nowOn || utilOff != utilOn || servedOff != servedOn {
		t.Errorf("traced run diverged: now %v vs %v, util %v vs %v, served %d vs %d",
			nowOff, nowOn, utilOff, utilOn, servedOff, servedOn)
	}
	if rec.fires == 0 || rec.acquired != 150 || rec.released != 150 || rec.spawns != 3 {
		t.Errorf("tracer saw fires=%d acquired=%d released=%d spawns=%d",
			rec.fires, rec.acquired, rec.released, rec.spawns)
	}
}
