package sim

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"
)

func TestClockAdvances(t *testing.T) {
	k := NewKernel(1)
	var fired []Time
	k.After(Micros(10), func() { fired = append(fired, k.Now()) })
	k.After(Micros(5), func() { fired = append(fired, k.Now()) })
	k.After(Micros(5), func() { fired = append(fired, k.Now()) })
	k.Run()
	if len(fired) != 3 {
		t.Fatalf("fired %d events, want 3", len(fired))
	}
	if fired[0] != Time(5*time.Microsecond) || fired[1] != Time(5*time.Microsecond) {
		t.Errorf("first two events at %v, %v; want both at 5µs", fired[0], fired[1])
	}
	if fired[2] != Time(10*time.Microsecond) {
		t.Errorf("last event at %v, want 10µs", fired[2])
	}
}

func TestSameTimeEventsFIFO(t *testing.T) {
	k := NewKernel(1)
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		k.At(Time(Micros(7)), func() { order = append(order, i) })
	}
	k.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("event order[%d] = %d, want %d (same-time events must be FIFO)", i, v, i)
		}
	}
}

func TestTimerCancel(t *testing.T) {
	k := NewKernel(1)
	ran := false
	tm := k.After(Micros(3), func() { ran = true })
	if !tm.Active() {
		t.Fatal("timer should be active before firing")
	}
	if !tm.Cancel() {
		t.Fatal("first cancel should succeed")
	}
	if tm.Cancel() {
		t.Fatal("second cancel should report false")
	}
	k.Run()
	if ran {
		t.Fatal("canceled timer fired")
	}
	if k.Now() != Time(Micros(3)) {
		// The canceled event still advances nothing; queue was drained.
		if k.Now() != 0 {
			t.Fatalf("clock = %v, want 0", k.Now())
		}
	}
}

func TestCancelAfterFire(t *testing.T) {
	k := NewKernel(1)
	tm := k.After(Micros(1), func() {})
	k.Run()
	if tm.Cancel() {
		t.Fatal("cancel after fire should report false")
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	k := NewKernel(1)
	k.After(Micros(10), func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic scheduling in the past")
			}
		}()
		k.At(Time(Micros(1)), func() {})
	})
	k.Run()
}

func TestThreadSleep(t *testing.T) {
	k := NewKernel(1)
	var woke Time
	k.Spawn("sleeper", func(th *Thread) {
		th.Sleep(Micros(42))
		woke = th.Now()
	})
	k.Run()
	if woke != Time(Micros(42)) {
		t.Fatalf("thread woke at %v, want 42µs", woke)
	}
	if k.Threads() != 0 {
		t.Fatalf("%d threads leaked", k.Threads())
	}
}

func TestThreadsInterleaveDeterministically(t *testing.T) {
	run := func(seed uint64) string {
		k := NewKernel(seed)
		var log string
		for i := 0; i < 4; i++ {
			i := i
			k.Spawn(fmt.Sprintf("t%d", i), func(th *Thread) {
				for j := 0; j < 3; j++ {
					th.Sleep(Micros(int64(1 + k.RNG().Intn(5))))
					log += fmt.Sprintf("%d@%v;", i, th.Now().Micros())
				}
			})
		}
		k.Run()
		return log
	}
	a := run(7)
	b := run(7)
	if a != b {
		t.Fatalf("same seed produced different traces:\n%s\n%s", a, b)
	}
	if a == run(8) {
		t.Fatal("different seeds unexpectedly produced identical traces")
	}
}

func TestWakerBlock(t *testing.T) {
	k := NewKernel(1)
	var wake func()
	var resumed Time
	k.Spawn("blocker", func(th *Thread) {
		wake = th.Waker()
		th.Block("test")
		resumed = th.Now()
	})
	k.After(Micros(100), func() { wake() })
	k.Run()
	if resumed != Time(Micros(100)) {
		t.Fatalf("resumed at %v, want 100µs", resumed)
	}
}

func TestDoubleWakePanics(t *testing.T) {
	k := NewKernel(1)
	var wake func()
	k.Spawn("blocker", func(th *Thread) {
		wake = th.Waker()
		th.Block("test")
		th.Sleep(Micros(1000))
	})
	k.After(Micros(1), func() { wake() })
	k.After(Micros(2), func() {
		defer func() {
			if recover() == nil {
				t.Error("expected double-wake panic")
			}
		}()
		wake()
	})
	k.Run()
}

func TestCondSignalFIFO(t *testing.T) {
	k := NewKernel(1)
	c := NewCond("q")
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		k.SpawnAt(Micros(int64(i)), fmt.Sprintf("w%d", i), func(th *Thread) {
			c.Wait(th)
			order = append(order, i)
		})
	}
	k.After(Micros(100), func() {
		for c.Signal() {
		}
	})
	k.Run()
	if len(order) != 5 {
		t.Fatalf("woke %d threads, want 5", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("wake order %v not FIFO", order)
		}
	}
}

func TestCondBroadcast(t *testing.T) {
	k := NewKernel(1)
	c := NewCond("q")
	woken := 0
	for i := 0; i < 3; i++ {
		k.Spawn("w", func(th *Thread) {
			c.Wait(th)
			woken++
		})
	}
	k.After(Micros(10), func() {
		if n := c.Broadcast(); n != 3 {
			t.Errorf("broadcast woke %d, want 3", n)
		}
	})
	k.Run()
	if woken != 3 {
		t.Fatalf("woken = %d, want 3", woken)
	}
	if c.Waiters() != 0 {
		t.Fatalf("%d waiters left", c.Waiters())
	}
}

func TestResourceFIFOAndTiming(t *testing.T) {
	k := NewKernel(1)
	r := NewResource(k, "bus", 1)
	var done []Time
	// Three back-to-back 10µs occupancies submitted at t=0 must complete at
	// 10, 20, 30µs.
	for i := 0; i < 3; i++ {
		r.Submit(Micros(10), func() { done = append(done, k.Now()) })
	}
	k.Run()
	want := []Time{Time(Micros(10)), Time(Micros(20)), Time(Micros(30))}
	for i := range want {
		if done[i] != want[i] {
			t.Fatalf("completion %d at %v, want %v", i, done[i], want[i])
		}
	}
	if r.Served() != 3 {
		t.Fatalf("served = %d, want 3", r.Served())
	}
}

func TestResourceMultiServer(t *testing.T) {
	k := NewKernel(1)
	r := NewResource(k, "cpus", 2)
	var done []Time
	for i := 0; i < 4; i++ {
		r.Submit(Micros(10), func() { done = append(done, k.Now()) })
	}
	k.Run()
	// Two at 10µs, two at 20µs.
	if done[0] != Time(Micros(10)) || done[1] != Time(Micros(10)) ||
		done[2] != Time(Micros(20)) || done[3] != Time(Micros(20)) {
		t.Fatalf("completions %v", done)
	}
}

func TestResourceUseBlocks(t *testing.T) {
	k := NewKernel(1)
	r := NewResource(k, "link", 1)
	var t1, t2 Time
	k.Spawn("a", func(th *Thread) {
		r.Use(th, Micros(50))
		t1 = th.Now()
	})
	k.Spawn("b", func(th *Thread) {
		r.Use(th, Micros(50))
		t2 = th.Now()
	})
	k.Run()
	if t1 != Time(Micros(50)) || t2 != Time(Micros(100)) {
		t.Fatalf("t1=%v t2=%v, want 50µs and 100µs", t1, t2)
	}
}

func TestResourceUtilization(t *testing.T) {
	k := NewKernel(1)
	r := NewResource(k, "x", 1)
	r.Submit(Micros(30), nil)
	k.After(Micros(100), func() {})
	k.Run()
	u := r.Utilization()
	if u < 0.29 || u > 0.31 {
		t.Fatalf("utilization = %v, want ~0.30", u)
	}
}

func TestRunUntil(t *testing.T) {
	k := NewKernel(1)
	var count int
	k.After(Micros(5), func() { count++ })
	k.After(Micros(15), func() { count++ })
	k.RunUntil(Time(Micros(10)))
	if count != 1 {
		t.Fatalf("count = %d after RunUntil(10µs), want 1", count)
	}
	if k.Now() != Time(Micros(10)) {
		t.Fatalf("clock = %v, want 10µs", k.Now())
	}
	k.Run()
	if count != 2 {
		t.Fatalf("count = %d after Run, want 2", count)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(99), NewRNG(99)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(3)
	f := func(n uint8) bool {
		m := int(n%100) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(4)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestRNGExpMean(t *testing.T) {
	r := NewRNG(5)
	const n = 200000
	var sum Duration
	for i := 0; i < n; i++ {
		sum += r.Exp(Micros(100))
	}
	mean := float64(sum) / n / float64(time.Microsecond)
	if mean < 95 || mean > 105 {
		t.Fatalf("Exp mean = %vµs, want ~100µs", mean)
	}
}

func TestKernelStop(t *testing.T) {
	k := NewKernel(1)
	count := 0
	k.After(Micros(1), func() { count++; k.Stop() })
	k.After(Micros(2), func() { count++ })
	k.Run()
	if count != 1 {
		t.Fatalf("count = %d, want 1 (Stop should halt the loop)", count)
	}
}

func TestSpawnAtDelaysStart(t *testing.T) {
	k := NewKernel(1)
	var started Time
	k.SpawnAt(Micros(25), "late", func(th *Thread) { started = th.Now() })
	k.Run()
	if started != Time(Micros(25)) {
		t.Fatalf("started at %v, want 25µs", started)
	}
}

func TestMicrosHelpers(t *testing.T) {
	if Micros(3) != 3*time.Microsecond {
		t.Fatal("Micros broken")
	}
	if MicrosF(1.5) != 1500*time.Nanosecond {
		t.Fatal("MicrosF broken")
	}
	tm := Time(Micros(2500))
	if tm.Micros() != 2500 {
		t.Fatalf("Time.Micros = %v", tm.Micros())
	}
	if tm.Seconds() != 0.0025 {
		t.Fatalf("Time.Seconds = %v", tm.Seconds())
	}
	if tm.Add(Micros(500)) != Time(Micros(3000)) {
		t.Fatal("Time.Add broken")
	}
	if tm.Sub(Time(Micros(500))) != Micros(2000) {
		t.Fatal("Time.Sub broken")
	}
}
