package registry

import (
	"testing"
	"time"

	"fireflyrpc/internal/core"
	"fireflyrpc/internal/marshal"
	"fireflyrpc/internal/proto"
	"fireflyrpc/internal/transport"
)

// world wires a directory server, an application server, and a caller onto
// one exchange.
func world(t *testing.T) (dir *Server, reg *Client, caller *core.Node, ex *transport.Exchange) {
	t.Helper()
	ex = transport.NewExchange()
	cfg := proto.Config{RetransInterval: 20 * time.Millisecond, MaxRetries: 5, Workers: 4}
	dirNode := core.NewNode(ex.Port("directory"), cfg)
	caller = core.NewNode(ex.Port("caller"), cfg)
	dir = NewServer()
	dirNode.Export(dir.Export())
	reg = NewClient(caller, transport.AddrOf("directory"))
	t.Cleanup(func() { dirNode.Close(); caller.Close() })
	return dir, reg, caller, ex
}

func TestRegisterLookup(t *testing.T) {
	_, reg, _, _ := world(t)
	if err := reg.Register("Test/v1", "server-9", time.Minute); err != nil {
		t.Fatal(err)
	}
	addr, err := reg.Lookup("Test/v1")
	if err != nil {
		t.Fatal(err)
	}
	if addr != "server-9" {
		t.Fatalf("addr = %q", addr)
	}
}

func TestLookupMissing(t *testing.T) {
	_, reg, _, _ := world(t)
	if _, err := reg.Lookup("nope"); err != ErrNotFound {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestLeaseExpiry(t *testing.T) {
	dir, reg, _, _ := world(t)
	now := time.Now()
	dir.clock = func() time.Time { return now }
	if err := reg.Register("ephemeral", "x", 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Lookup("ephemeral"); err != nil {
		t.Fatal("fresh lease should resolve")
	}
	now = now.Add(11 * time.Second)
	if _, err := reg.Lookup("ephemeral"); err != ErrNotFound {
		t.Fatalf("expired lease resolved: %v", err)
	}
}

func TestReRegistrationRefreshes(t *testing.T) {
	dir, reg, _, _ := world(t)
	now := time.Now()
	dir.clock = func() time.Time { return now }
	reg.Register("svc", "a", 10*time.Second)
	now = now.Add(8 * time.Second)
	reg.Register("svc", "b", 10*time.Second) // refresh with a new address
	now = now.Add(8 * time.Second)           // 16s after first, 8 after second
	addr, err := reg.Lookup("svc")
	if err != nil || addr != "b" {
		t.Fatalf("addr=%q err=%v", addr, err)
	}
}

func TestListByPrefix(t *testing.T) {
	_, reg, _, _ := world(t)
	reg.Register("Test/v1", "a", time.Minute)
	reg.Register("Test/v2", "b", time.Minute)
	reg.Register("File/v1", "c", time.Minute)
	names, err := reg.List("Test/")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 {
		t.Fatalf("names = %v", names)
	}
	all, err := reg.List("")
	if err != nil || len(all) != 3 {
		t.Fatalf("all = %v err=%v", all, err)
	}
	none, err := reg.List("zzz")
	if err != nil || none != nil {
		t.Fatalf("none = %v err=%v", none, err)
	}
}

func TestDeregister(t *testing.T) {
	_, reg, _, _ := world(t)
	reg.Register("gone", "x", time.Minute)
	if err := reg.Deregister("gone"); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Lookup("gone"); err != ErrNotFound {
		t.Fatal("deregistered name still resolves")
	}
}

// TestLookupAllMultiAddress is the replica-set story: three servers register
// one name concurrently, none overwrites another, and each lease ages out
// independently under a fake clock.
func TestLookupAllMultiAddress(t *testing.T) {
	dir, reg, _, _ := world(t)
	now := time.Now()
	dir.clock = func() time.Time { return now }

	reg.Register("kv", "replica-a", 10*time.Second)
	reg.Register("kv", "replica-b", 20*time.Second)
	reg.Register("kv", "replica-c", 30*time.Second)

	addrs, err := reg.LookupAll("kv")
	if err != nil {
		t.Fatal(err)
	}
	if len(addrs) != 3 || addrs[0] != "replica-a" || addrs[1] != "replica-b" || addrs[2] != "replica-c" {
		t.Fatalf("addrs = %v, want the sorted replica set", addrs)
	}

	// Lookup (singular) keeps working against a multi-address entry and
	// returns the most recently refreshed lease.
	one, err := reg.Lookup("kv")
	if err != nil || one != "replica-c" {
		t.Fatalf("Lookup = %q, %v", one, err)
	}

	now = now.Add(11 * time.Second) // a's lease runs out
	addrs, err = reg.LookupAll("kv")
	if err != nil || len(addrs) != 2 || addrs[0] != "replica-b" {
		t.Fatalf("after a expires: addrs = %v err = %v", addrs, err)
	}

	now = now.Add(10 * time.Second) // b follows
	addrs, err = reg.LookupAll("kv")
	if err != nil || len(addrs) != 1 || addrs[0] != "replica-c" {
		t.Fatalf("after b expires: addrs = %v err = %v", addrs, err)
	}

	now = now.Add(10 * time.Second) // and the name itself ages out
	if _, err := reg.LookupAll("kv"); err != ErrNotFound {
		t.Fatalf("expired name resolved: %v", err)
	}
	if _, err := reg.Lookup("kv"); err != ErrNotFound {
		t.Fatalf("expired name resolved via Lookup: %v", err)
	}
}

// TestRefreshOneReplicaKeepsOthers pins the fix for the old last-writer-wins
// limitation: refreshing one replica's lease must not clobber its peers.
func TestRefreshOneReplicaKeepsOthers(t *testing.T) {
	dir, reg, _, _ := world(t)
	now := time.Now()
	dir.clock = func() time.Time { return now }

	reg.Register("svc", "a", 10*time.Second)
	reg.Register("svc", "b", 10*time.Second)
	now = now.Add(8 * time.Second)
	reg.Register("svc", "a", 10*time.Second) // refresh a only
	now = now.Add(4 * time.Second)           // b's original lease is now dead

	addrs, err := reg.LookupAll("svc")
	if err != nil || len(addrs) != 1 || addrs[0] != "a" {
		t.Fatalf("addrs = %v err = %v, want just the refreshed a", addrs, err)
	}
}

func TestDeregisterAddr(t *testing.T) {
	_, reg, _, _ := world(t)
	reg.Register("svc", "a", time.Minute)
	reg.Register("svc", "b", time.Minute)
	if err := reg.DeregisterAddr("svc", "a"); err != nil {
		t.Fatal(err)
	}
	addrs, err := reg.LookupAll("svc")
	if err != nil || len(addrs) != 1 || addrs[0] != "b" {
		t.Fatalf("addrs = %v err = %v", addrs, err)
	}
	if err := reg.DeregisterAddr("svc", "b"); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.LookupAll("svc"); err != ErrNotFound {
		t.Fatalf("emptied name still resolves: %v", err)
	}
}

// TestLeaseRefreshLoop drives the background refresher: with a TTL far
// shorter than the test, the address stays resolvable only because the loop
// keeps re-registering it, and stop() deregisters it.
func TestLeaseRefreshLoop(t *testing.T) {
	_, reg, _, _ := world(t)
	stop, err := reg.Lease("leased", "addr-1", 150*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(500 * time.Millisecond)
	for time.Now().Before(deadline) {
		if _, err := reg.LookupAll("leased"); err != nil {
			t.Fatalf("lease lapsed while the refresher ran: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	stop()
	if _, err := reg.LookupAll("leased"); err != ErrNotFound {
		t.Fatalf("stop() did not deregister: %v", err)
	}
}

// TestEndToEndBindViaDirectory is the full §3.1.1 story: a server registers
// its exported interface, a caller looks it up and binds, then calls.
func TestEndToEndBindViaDirectory(t *testing.T) {
	_, reg, caller, ex := world(t)
	cfg := proto.Config{RetransInterval: 20 * time.Millisecond, MaxRetries: 5, Workers: 4}

	// The application server exports Arith and advertises itself.
	app := core.NewNode(ex.Port("app-server"), cfg)
	defer app.Close()
	app.Export(core.NewInterface("Arith", 1).
		Proc(1, func(_ transport.Addr, d *marshal.Dec) ([]byte, error) {
			a, b := d.Int32(), d.Int32()
			if err := d.Err(); err != nil {
				return nil, err
			}
			return core.Reply(4, func(e *marshal.Enc) { e.PutInt32(a + b) })
		}))
	appReg := NewClient(app, transport.AddrOf("directory"))
	if err := appReg.Register("Arith/v1", app.Addr().String(), time.Minute); err != nil {
		t.Fatal(err)
	}

	// The caller discovers it through the directory and binds.
	addr, err := reg.Lookup("Arith/v1")
	if err != nil {
		t.Fatal(err)
	}
	c := caller.Bind(transport.AddrOf(addr), "Arith", 1).NewClient()
	var sum int32
	err = c.Call(1, 8,
		func(e *marshal.Enc) { e.PutInt32(2); e.PutInt32(40) },
		func(d *marshal.Dec) { sum = d.Int32() })
	if err != nil || sum != 42 {
		t.Fatalf("sum=%d err=%v", sum, err)
	}
}
