package registry

import (
	"testing"
	"time"

	"fireflyrpc/internal/core"
	"fireflyrpc/internal/marshal"
	"fireflyrpc/internal/proto"
	"fireflyrpc/internal/transport"
)

// world wires a directory server, an application server, and a caller onto
// one exchange.
func world(t *testing.T) (dir *Server, reg *Client, caller *core.Node, ex *transport.Exchange) {
	t.Helper()
	ex = transport.NewExchange()
	cfg := proto.Config{RetransInterval: 20 * time.Millisecond, MaxRetries: 5, Workers: 4}
	dirNode := core.NewNode(ex.Port("directory"), cfg)
	caller = core.NewNode(ex.Port("caller"), cfg)
	dir = NewServer()
	dirNode.Export(dir.Export())
	reg = NewClient(caller, transport.AddrOf("directory"))
	t.Cleanup(func() { dirNode.Close(); caller.Close() })
	return dir, reg, caller, ex
}

func TestRegisterLookup(t *testing.T) {
	_, reg, _, _ := world(t)
	if err := reg.Register("Test/v1", "server-9", time.Minute); err != nil {
		t.Fatal(err)
	}
	addr, err := reg.Lookup("Test/v1")
	if err != nil {
		t.Fatal(err)
	}
	if addr != "server-9" {
		t.Fatalf("addr = %q", addr)
	}
}

func TestLookupMissing(t *testing.T) {
	_, reg, _, _ := world(t)
	if _, err := reg.Lookup("nope"); err != ErrNotFound {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestLeaseExpiry(t *testing.T) {
	dir, reg, _, _ := world(t)
	now := time.Now()
	dir.clock = func() time.Time { return now }
	if err := reg.Register("ephemeral", "x", 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Lookup("ephemeral"); err != nil {
		t.Fatal("fresh lease should resolve")
	}
	now = now.Add(11 * time.Second)
	if _, err := reg.Lookup("ephemeral"); err != ErrNotFound {
		t.Fatalf("expired lease resolved: %v", err)
	}
}

func TestReRegistrationRefreshes(t *testing.T) {
	dir, reg, _, _ := world(t)
	now := time.Now()
	dir.clock = func() time.Time { return now }
	reg.Register("svc", "a", 10*time.Second)
	now = now.Add(8 * time.Second)
	reg.Register("svc", "b", 10*time.Second) // refresh with a new address
	now = now.Add(8 * time.Second)           // 16s after first, 8 after second
	addr, err := reg.Lookup("svc")
	if err != nil || addr != "b" {
		t.Fatalf("addr=%q err=%v", addr, err)
	}
}

func TestListByPrefix(t *testing.T) {
	_, reg, _, _ := world(t)
	reg.Register("Test/v1", "a", time.Minute)
	reg.Register("Test/v2", "b", time.Minute)
	reg.Register("File/v1", "c", time.Minute)
	names, err := reg.List("Test/")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 {
		t.Fatalf("names = %v", names)
	}
	all, err := reg.List("")
	if err != nil || len(all) != 3 {
		t.Fatalf("all = %v err=%v", all, err)
	}
	none, err := reg.List("zzz")
	if err != nil || none != nil {
		t.Fatalf("none = %v err=%v", none, err)
	}
}

func TestDeregister(t *testing.T) {
	_, reg, _, _ := world(t)
	reg.Register("gone", "x", time.Minute)
	if err := reg.Deregister("gone"); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Lookup("gone"); err != ErrNotFound {
		t.Fatal("deregistered name still resolves")
	}
}

// TestEndToEndBindViaDirectory is the full §3.1.1 story: a server registers
// its exported interface, a caller looks it up and binds, then calls.
func TestEndToEndBindViaDirectory(t *testing.T) {
	_, reg, caller, ex := world(t)
	cfg := proto.Config{RetransInterval: 20 * time.Millisecond, MaxRetries: 5, Workers: 4}

	// The application server exports Arith and advertises itself.
	app := core.NewNode(ex.Port("app-server"), cfg)
	defer app.Close()
	app.Export(core.NewInterface("Arith", 1).
		Proc(1, func(_ transport.Addr, d *marshal.Dec) ([]byte, error) {
			a, b := d.Int32(), d.Int32()
			if err := d.Err(); err != nil {
				return nil, err
			}
			return core.Reply(4, func(e *marshal.Enc) { e.PutInt32(a + b) })
		}))
	appReg := NewClient(app, transport.AddrOf("directory"))
	if err := appReg.Register("Arith/v1", app.Addr().String(), time.Minute); err != nil {
		t.Fatal(err)
	}

	// The caller discovers it through the directory and binds.
	addr, err := reg.Lookup("Arith/v1")
	if err != nil {
		t.Fatal(err)
	}
	c := caller.Bind(transport.AddrOf(addr), "Arith", 1).NewClient()
	var sum int32
	err = c.Call(1, 8,
		func(e *marshal.Enc) { e.PutInt32(2); e.PutInt32(40) },
		func(d *marshal.Dec) { sum = d.Int32() })
	if err != nil || sum != 42 {
		t.Fatalf("sum=%d err=%v", sum, err)
	}
}
