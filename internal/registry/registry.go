// Package registry provides the binding machinery the paper's fast path
// presupposes: §3.1.1 begins "assuming that binding to a suitable remote
// instance of the interface has already occurred". Cedar RPC used Grapevine
// for this; here the directory is itself a fireflyrpc service, so the
// system is self-hosting: servers Register their exported interfaces under
// names, and callers Lookup a name to obtain the address to bind to.
//
// A name holds a SET of addresses, each with its own lease: N replicas of
// one service register the same name concurrently and age out
// independently, in the style of a lease. Lookup returns one live address
// (the most recently refreshed, so the single-address callers of earlier
// PRs keep their semantics); LookupAll returns the whole live replica set,
// which is what internal/cluster's resolver consumes. Re-registration
// refreshes an address's lease; Lease keeps a registration alive from a
// background refresher.
package registry

import (
	"context"
	"errors"
	"sort"
	"sync"
	"time"

	"fireflyrpc/internal/core"
	"fireflyrpc/internal/marshal"
	"fireflyrpc/internal/transport"
)

// Interface identity of the directory service itself.
const (
	Name    = "BindingRegistry"
	Version = 1
)

// Procedure identifiers.
const (
	procRegister  = 1 // Register(name, addr: Text; ttlSeconds: CARDINAL)
	procLookup    = 2 // Lookup(name: Text): Text  ("" if absent)
	procList      = 3 // List(prefix: Text): Text  (newline-joined names)
	procDeregist  = 4 // Deregister(name: Text)  (removes every address)
	procLookupAll = 5 // LookupAll(name: Text): Text  (newline-joined addrs)
	procDeregAddr = 6 // DeregisterAddr(name, addr: Text)
)

// Errors.
var (
	ErrNotFound = errors.New("registry: no such binding")
)

// Server is the directory: a map of service name → set of transport
// addresses, each address carrying its own lease-style expiry.
type Server struct {
	mu      sync.Mutex
	entries map[string]map[string]time.Time // name → addr → lease expiry
	clock   func() time.Time
}

// NewServer creates an empty directory.
func NewServer() *Server {
	return &Server{entries: make(map[string]map[string]time.Time), clock: time.Now}
}

// register records or refreshes one address's lease under name. Distinct
// addresses accumulate — N replicas registering one name concurrently each
// get their own lease instead of overwriting each other.
func (s *Server) register(name, addr string, ttl time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ttl <= 0 {
		ttl = 5 * time.Minute
	}
	set := s.entries[name]
	if set == nil {
		set = make(map[string]time.Time)
		s.entries[name] = set
	}
	set[addr] = s.clock().Add(ttl)
}

// prune drops name's expired leases (and the name itself once empty),
// returning the surviving set. Callers hold s.mu.
func (s *Server) prune(name string) map[string]time.Time {
	set := s.entries[name]
	if set == nil {
		return nil
	}
	now := s.clock()
	for addr, exp := range set {
		if now.After(exp) {
			delete(set, addr)
		}
	}
	if len(set) == 0 {
		delete(s.entries, name)
		return nil
	}
	return set
}

// lookup resolves a name to one live address: the most recently refreshed
// lease (ties broken lexicographically), which preserves the old
// single-address "last writer wins" reading for legacy callers.
func (s *Server) lookup(name string) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	set := s.prune(name)
	if set == nil {
		return "", false
	}
	best, bestExp := "", time.Time{}
	for addr, exp := range set {
		if exp.After(bestExp) || (exp.Equal(bestExp) && addr < best) {
			best, bestExp = addr, exp
		}
	}
	return best, true
}

// lookupAll resolves a name to every live address, sorted for determinism.
func (s *Server) lookupAll(name string) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	set := s.prune(name)
	if set == nil {
		return nil
	}
	out := make([]string, 0, len(set))
	for addr := range set {
		out = append(out, addr)
	}
	sort.Strings(out)
	return out
}

// list returns the live names with the given prefix.
func (s *Server) list(prefix string) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []string
	for name := range s.entries {
		if s.prune(name) == nil {
			continue
		}
		if len(name) >= len(prefix) && name[:len(prefix)] == prefix {
			out = append(out, name)
		}
	}
	return out
}

// deregister removes a binding: every address when addr is "", else one.
func (s *Server) deregister(name, addr string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if addr == "" {
		delete(s.entries, name)
		return
	}
	if set := s.entries[name]; set != nil {
		delete(set, addr)
		if len(set) == 0 {
			delete(s.entries, name)
		}
	}
}

// joinLines joins strings with newline separators (addresses and names
// never contain newlines; Parse-side splitting is splitLines).
func joinLines(items []string) string {
	joined := ""
	for i, it := range items {
		if i > 0 {
			joined += "\n"
		}
		joined += it
	}
	return joined
}

// splitLines is the inverse of joinLines; "" yields nil.
func splitLines(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return out
}

// Export builds the dispatchable directory interface.
func (s *Server) Export() *core.Interface {
	return core.NewInterface(Name, Version).
		Proc(procRegister, func(_ transport.Addr, d *marshal.Dec) ([]byte, error) {
			name := d.GetText()
			addr := d.GetText()
			ttl := d.Uint32()
			if err := d.Err(); err != nil {
				return nil, err
			}
			s.register(name.String(), addr.String(), time.Duration(ttl)*time.Second)
			return nil, nil
		}).
		Proc(procLookup, func(_ transport.Addr, d *marshal.Dec) ([]byte, error) {
			name := d.GetText()
			if err := d.Err(); err != nil {
				return nil, err
			}
			addr, ok := s.lookup(name.String())
			var out *marshal.Text
			if ok {
				out = marshal.NewText(addr)
			}
			return core.Reply(marshal.TextWireSize(out), func(e *marshal.Enc) {
				e.PutText(out)
			})
		}).
		Proc(procList, func(_ transport.Addr, d *marshal.Dec) ([]byte, error) {
			prefix := d.GetText()
			if err := d.Err(); err != nil {
				return nil, err
			}
			out := marshal.NewText(joinLines(s.list(prefix.String())))
			return core.Reply(marshal.TextWireSize(out), func(e *marshal.Enc) {
				e.PutText(out)
			})
		}).
		Proc(procDeregist, func(_ transport.Addr, d *marshal.Dec) ([]byte, error) {
			name := d.GetText()
			if err := d.Err(); err != nil {
				return nil, err
			}
			s.deregister(name.String(), "")
			return nil, nil
		}).
		Proc(procLookupAll, func(_ transport.Addr, d *marshal.Dec) ([]byte, error) {
			name := d.GetText()
			if err := d.Err(); err != nil {
				return nil, err
			}
			out := marshal.NewText(joinLines(s.lookupAll(name.String())))
			return core.Reply(marshal.TextWireSize(out), func(e *marshal.Enc) {
				e.PutText(out)
			})
		}).
		Proc(procDeregAddr, func(_ transport.Addr, d *marshal.Dec) ([]byte, error) {
			name := d.GetText()
			addr := d.GetText()
			if err := d.Err(); err != nil {
				return nil, err
			}
			s.deregister(name.String(), addr.String())
			return nil, nil
		})
}

// Client is the caller side of the directory.
type Client struct {
	b *core.Binding
	c *core.Client
}

// NewClient binds to a directory exported at addr through node.
func NewClient(node *core.Node, addr transport.Addr) *Client {
	b := node.Bind(addr, Name, Version)
	return &Client{b: b, c: b.NewClient()}
}

// Register advertises a service name at addr with a lease of ttl.
func (r *Client) Register(name, addr string, ttl time.Duration) error {
	return r.RegisterCtx(context.Background(), name, addr, ttl)
}

// RegisterCtx is Register with cancellation: useful when a registry may be
// slow or unreachable and the caller has its own startup deadline.
func (r *Client) RegisterCtx(ctx context.Context, name, addr string, ttl time.Duration) error {
	n, a := marshal.NewText(name), marshal.NewText(addr)
	size := marshal.TextWireSize(n) + marshal.TextWireSize(a) + 4
	return r.c.CallCtx(ctx, procRegister, size, func(e *marshal.Enc) {
		e.PutText(n)
		e.PutText(a)
		e.PutUint32(uint32(ttl / time.Second))
	}, nil)
}

// Lookup resolves a service name to one address string (the most recently
// refreshed live lease). Multi-replica callers want LookupAll.
func (r *Client) Lookup(name string) (string, error) {
	return r.LookupCtx(context.Background(), name)
}

// LookupCtx is Lookup with cancellation.
func (r *Client) LookupCtx(ctx context.Context, name string) (string, error) {
	n := marshal.NewText(name)
	var out *marshal.Text
	err := r.c.CallCtx(ctx, procLookup, marshal.TextWireSize(n),
		func(e *marshal.Enc) { e.PutText(n) },
		func(d *marshal.Dec) { out = d.GetText() })
	if err != nil {
		return "", err
	}
	if out.IsNil() {
		return "", ErrNotFound
	}
	return out.String(), nil
}

// LookupAll resolves a service name to every live replica address.
func (r *Client) LookupAll(name string) ([]string, error) {
	return r.LookupAllCtx(context.Background(), name)
}

// LookupAllCtx is LookupAll with cancellation.
func (r *Client) LookupAllCtx(ctx context.Context, name string) ([]string, error) {
	n := marshal.NewText(name)
	var out *marshal.Text
	err := r.c.CallCtx(ctx, procLookupAll, marshal.TextWireSize(n),
		func(e *marshal.Enc) { e.PutText(n) },
		func(d *marshal.Dec) { out = d.GetText() })
	if err != nil {
		return nil, err
	}
	addrs := splitLines(out.String())
	if len(addrs) == 0 {
		return nil, ErrNotFound
	}
	return addrs, nil
}

// List returns the registered names with the given prefix.
func (r *Client) List(prefix string) ([]string, error) {
	return r.ListCtx(context.Background(), prefix)
}

// ListCtx is List with cancellation.
func (r *Client) ListCtx(ctx context.Context, prefix string) ([]string, error) {
	p := marshal.NewText(prefix)
	var out *marshal.Text
	err := r.c.CallCtx(ctx, procList, marshal.TextWireSize(p),
		func(e *marshal.Enc) { e.PutText(p) },
		func(d *marshal.Dec) { out = d.GetText() })
	if err != nil {
		return nil, err
	}
	return splitLines(out.String()), nil
}

// Deregister removes a service name (all replica addresses).
func (r *Client) Deregister(name string) error {
	return r.DeregisterCtx(context.Background(), name)
}

// DeregisterCtx is Deregister with cancellation.
func (r *Client) DeregisterCtx(ctx context.Context, name string) error {
	n := marshal.NewText(name)
	return r.c.CallCtx(ctx, procDeregist, marshal.TextWireSize(n),
		func(e *marshal.Enc) { e.PutText(n) }, nil)
}

// DeregisterAddr removes one replica address from a service name, leaving
// the other replicas' leases intact.
func (r *Client) DeregisterAddr(name, addr string) error {
	return r.DeregisterAddrCtx(context.Background(), name, addr)
}

// DeregisterAddrCtx is DeregisterAddr with cancellation.
func (r *Client) DeregisterAddrCtx(ctx context.Context, name, addr string) error {
	n, a := marshal.NewText(name), marshal.NewText(addr)
	return r.c.CallCtx(ctx, procDeregAddr, marshal.TextWireSize(n)+marshal.TextWireSize(a),
		func(e *marshal.Enc) {
			e.PutText(n)
			e.PutText(a)
		}, nil)
}

// Lease keeps one (name, addr) registration alive: it registers
// immediately and then re-registers every ttl/3 until the returned stop
// function is called, which also deregisters the address. Errors after the
// first successful registration are swallowed — a transiently unreachable
// directory just means the lease runs down until a refresh gets through,
// which is the lease design working as intended.
func (r *Client) Lease(name, addr string, ttl time.Duration) (stop func(), err error) {
	if err := r.Register(name, addr, ttl); err != nil {
		return nil, err
	}
	interval := ttl / 3
	if interval <= 0 {
		interval = time.Second
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		// The refresher gets its own Client: core.Client is single-
		// goroutine, and r's owner keeps using it for lookups.
		rc := &Client{b: r.b, c: r.b.NewClient()}
		for {
			select {
			case <-done:
				_ = rc.DeregisterAddr(name, addr)
				return
			case <-t.C:
				_ = rc.Register(name, addr, ttl)
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() { close(done) })
		wg.Wait()
	}, nil
}
