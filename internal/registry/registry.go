// Package registry provides the binding machinery the paper's fast path
// presupposes: §3.1.1 begins "assuming that binding to a suitable remote
// instance of the interface has already occurred". Cedar RPC used Grapevine
// for this; here the directory is itself a fireflyrpc service, so the
// system is self-hosting: servers Register their exported interfaces under
// names, and callers Lookup a name to obtain the address to bind to.
//
// Entries carry an expiry so crashed servers age out; re-registration
// refreshes them, in the style of a lease.
package registry

import (
	"context"
	"errors"
	"sync"
	"time"

	"fireflyrpc/internal/core"
	"fireflyrpc/internal/marshal"
	"fireflyrpc/internal/transport"
)

// Interface identity of the directory service itself.
const (
	Name    = "BindingRegistry"
	Version = 1
)

// Procedure identifiers.
const (
	procRegister = 1 // Register(name, addr: Text; ttlSeconds: CARDINAL)
	procLookup   = 2 // Lookup(name: Text): Text  ("" if absent)
	procList     = 3 // List(prefix: Text): Text  (newline-joined names)
	procDeregist = 4 // Deregister(name: Text)
)

// Errors.
var (
	ErrNotFound = errors.New("registry: no such binding")
)

// Server is the directory: a map of service name → transport address with
// lease-style expiry.
type Server struct {
	mu      sync.Mutex
	entries map[string]entry
	clock   func() time.Time
}

type entry struct {
	addr    string
	expires time.Time
}

// NewServer creates an empty directory.
func NewServer() *Server {
	return &Server{entries: make(map[string]entry), clock: time.Now}
}

// register records or refreshes a binding.
func (s *Server) register(name, addr string, ttl time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ttl <= 0 {
		ttl = 5 * time.Minute
	}
	s.entries[name] = entry{addr: addr, expires: s.clock().Add(ttl)}
}

// lookup resolves a name, expiring stale entries.
func (s *Server) lookup(name string) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[name]
	if !ok {
		return "", false
	}
	if s.clock().After(e.expires) {
		delete(s.entries, name)
		return "", false
	}
	return e.addr, true
}

// list returns the live names with the given prefix.
func (s *Server) list(prefix string) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.clock()
	var out []string
	for name, e := range s.entries {
		if now.After(e.expires) {
			delete(s.entries, name)
			continue
		}
		if len(name) >= len(prefix) && name[:len(prefix)] == prefix {
			out = append(out, name)
		}
	}
	return out
}

// deregister removes a binding.
func (s *Server) deregister(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.entries, name)
}

// Export builds the dispatchable directory interface.
func (s *Server) Export() *core.Interface {
	return core.NewInterface(Name, Version).
		Proc(procRegister, func(_ transport.Addr, d *marshal.Dec) ([]byte, error) {
			name := d.GetText()
			addr := d.GetText()
			ttl := d.Uint32()
			if err := d.Err(); err != nil {
				return nil, err
			}
			s.register(name.String(), addr.String(), time.Duration(ttl)*time.Second)
			return nil, nil
		}).
		Proc(procLookup, func(_ transport.Addr, d *marshal.Dec) ([]byte, error) {
			name := d.GetText()
			if err := d.Err(); err != nil {
				return nil, err
			}
			addr, ok := s.lookup(name.String())
			var out *marshal.Text
			if ok {
				out = marshal.NewText(addr)
			}
			return core.Reply(marshal.TextWireSize(out), func(e *marshal.Enc) {
				e.PutText(out)
			})
		}).
		Proc(procList, func(_ transport.Addr, d *marshal.Dec) ([]byte, error) {
			prefix := d.GetText()
			if err := d.Err(); err != nil {
				return nil, err
			}
			names := s.list(prefix.String())
			joined := ""
			for i, n := range names {
				if i > 0 {
					joined += "\n"
				}
				joined += n
			}
			out := marshal.NewText(joined)
			return core.Reply(marshal.TextWireSize(out), func(e *marshal.Enc) {
				e.PutText(out)
			})
		}).
		Proc(procDeregist, func(_ transport.Addr, d *marshal.Dec) ([]byte, error) {
			name := d.GetText()
			if err := d.Err(); err != nil {
				return nil, err
			}
			s.deregister(name.String())
			return nil, nil
		})
}

// Client is the caller side of the directory.
type Client struct {
	c *core.Client
}

// NewClient binds to a directory exported at addr through node.
func NewClient(node *core.Node, addr transport.Addr) *Client {
	return &Client{c: node.Bind(addr, Name, Version).NewClient()}
}

// Register advertises a service name at addr with a lease of ttl.
func (r *Client) Register(name, addr string, ttl time.Duration) error {
	return r.RegisterCtx(context.Background(), name, addr, ttl)
}

// RegisterCtx is Register with cancellation: useful when a registry may be
// slow or unreachable and the caller has its own startup deadline.
func (r *Client) RegisterCtx(ctx context.Context, name, addr string, ttl time.Duration) error {
	n, a := marshal.NewText(name), marshal.NewText(addr)
	size := marshal.TextWireSize(n) + marshal.TextWireSize(a) + 4
	return r.c.CallCtx(ctx, procRegister, size, func(e *marshal.Enc) {
		e.PutText(n)
		e.PutText(a)
		e.PutUint32(uint32(ttl / time.Second))
	}, nil)
}

// Lookup resolves a service name to its address string.
func (r *Client) Lookup(name string) (string, error) {
	return r.LookupCtx(context.Background(), name)
}

// LookupCtx is Lookup with cancellation.
func (r *Client) LookupCtx(ctx context.Context, name string) (string, error) {
	n := marshal.NewText(name)
	var out *marshal.Text
	err := r.c.CallCtx(ctx, procLookup, marshal.TextWireSize(n),
		func(e *marshal.Enc) { e.PutText(n) },
		func(d *marshal.Dec) { out = d.GetText() })
	if err != nil {
		return "", err
	}
	if out.IsNil() {
		return "", ErrNotFound
	}
	return out.String(), nil
}

// List returns the registered names with the given prefix.
func (r *Client) List(prefix string) ([]string, error) {
	return r.ListCtx(context.Background(), prefix)
}

// ListCtx is List with cancellation.
func (r *Client) ListCtx(ctx context.Context, prefix string) ([]string, error) {
	p := marshal.NewText(prefix)
	var out *marshal.Text
	err := r.c.CallCtx(ctx, procList, marshal.TextWireSize(p),
		func(e *marshal.Enc) { e.PutText(p) },
		func(d *marshal.Dec) { out = d.GetText() })
	if err != nil {
		return nil, err
	}
	if out.Len() == 0 {
		return nil, nil
	}
	var names []string
	start := 0
	s := out.String()
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == '\n' {
			names = append(names, s[start:i])
			start = i + 1
		}
	}
	return names, nil
}

// Deregister removes a service name.
func (r *Client) Deregister(name string) error {
	return r.DeregisterCtx(context.Background(), name)
}

// DeregisterCtx is Deregister with cancellation.
func (r *Client) DeregisterCtx(ctx context.Context, name string) error {
	n := marshal.NewText(name)
	return r.c.CallCtx(ctx, procDeregist, marshal.TextWireSize(n),
		func(e *marshal.Enc) { e.PutText(n) }, nil)
}
