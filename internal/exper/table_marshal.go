package exper

import (
	"fmt"

	"fireflyrpc/internal/costmodel"
	"fireflyrpc/internal/simstack"
)

// localIncrement measures, over the shared-memory local transport (the
// paper's method for Tables II–V), the incremental latency of calling spec
// over calling Null().
func localIncrement(o Options, make func(cfg *costmodel.Config) *simstack.ProcSpec) float64 {
	calls := o.calls(1000)

	cfg := costmodel.NewConfig()
	cfg.TimingJitter = 0 // increments are exact; match the paper's averaging
	w := simstack.NewWorld(&cfg, o.Seed)
	w.RegisterLocal(4)
	base := w.RunLocal(simstack.NullSpec(&cfg), 1, calls).LatencyMicros()

	cfg2 := costmodel.NewConfig()
	cfg2.TimingJitter = 0
	w2 := simstack.NewWorld(&cfg2, o.Seed)
	w2.RegisterLocal(4)
	spec := make(&cfg2)
	w2.RegisterProc(spec)
	got := w2.RunLocal(spec, 1, calls).LatencyMicros()
	return got - base
}

// TableII reproduces the marshalling cost of 4-byte integers by value.
func TableII(o Options) Table {
	t := Table{
		ID:      "II",
		Title:   "4-byte integer arguments, passed by value",
		Headers: []string{"# of arguments", "marshalling µs", "paper µs"},
	}
	for _, row := range paperTableII {
		n := row.N
		inc := localIncrement(o, func(cfg *costmodel.Config) *simstack.ProcSpec {
			return simstack.IntArgsSpec(cfg, n)
		})
		t.Rows = append(t.Rows, []string{f0(float64(n)), f0(inc), f0(row.Usecs)})
	}
	return t
}

// TableIII reproduces fixed-length array VAR OUT marshalling.
func TableIII(o Options) Table {
	t := Table{
		ID:      "III",
		Title:   "Fixed length array, passed by VAR OUT",
		Headers: []string{"array bytes", "marshalling µs", "paper µs"},
	}
	for _, row := range paperTableIII {
		n := row.Bytes
		inc := localIncrement(o, func(cfg *costmodel.Config) *simstack.ProcSpec {
			return simstack.FixedArrayOutSpec(cfg, n)
		})
		t.Rows = append(t.Rows, []string{f0(float64(n)), f0(inc), f0(row.Usecs)})
	}
	return t
}

// TableIV reproduces variable-length array VAR OUT marshalling.
func TableIV(o Options) Table {
	t := Table{
		ID:      "IV",
		Title:   "Variable length array, passed by VAR OUT",
		Headers: []string{"array bytes", "marshalling µs", "paper µs"},
	}
	for _, row := range paperTableIV {
		n := row.Bytes
		inc := localIncrement(o, func(cfg *costmodel.Config) *simstack.ProcSpec {
			return simstack.VarArrayOutSpec(cfg, n)
		})
		t.Rows = append(t.Rows, []string{f0(float64(n)), f0(inc), f0(row.Usecs)})
	}
	return t
}

// TableV reproduces Text.T marshalling.
func TableV(o Options) Table {
	t := Table{
		ID:      "V",
		Title:   "Text.T argument",
		Headers: []string{"text bytes", "marshalling µs", "paper µs"},
	}
	for _, row := range paperTableV {
		isNil := row.Bytes < 0
		n := int(row.Bytes)
		if isNil {
			n = 0
		}
		inc := localIncrement(o, func(cfg *costmodel.Config) *simstack.ProcSpec {
			return simstack.TextArgSpec(cfg, n, isNil)
		})
		label := f0(float64(n))
		if isNil {
			label = "NIL"
		}
		t.Rows = append(t.Rows, []string{label, f0(inc), f0(row.Usecs)})
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"measured as local RPC over the shared-memory transport, as in §2.2"))
	return t
}
