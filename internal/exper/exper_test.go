package exper

import (
	"strconv"
	"strings"
	"testing"
)

// quick runs experiments fast enough for tests.
var quick = Options{Quality: 0.1, Seed: 1}

// cell parses a numeric table cell (possibly "x (y)" formatted — takes x).
func cell(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.Fields(s)[0]
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		t.Fatalf("cell %q: %v", s, err)
	}
	return v
}

// within asserts |got-want| <= tol*|want| (absolute floor abs).
func within(t *testing.T, name string, got, want, relTol, absFloor float64) {
	t.Helper()
	diff := got - want
	if diff < 0 {
		diff = -diff
	}
	lim := relTol * want
	if lim < 0 {
		lim = -lim
	}
	if lim < absFloor {
		lim = absFloor
	}
	if diff > lim {
		t.Errorf("%s: got %v, want %v ± %v", name, got, want, lim)
	}
}

func TestAllExperimentsRun(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tb := e.Run(quick)
			if tb.ID != e.ID {
				t.Errorf("table ID %q != experiment ID %q", tb.ID, e.ID)
			}
			if len(tb.Rows) == 0 {
				t.Fatal("no rows")
			}
			for _, row := range tb.Rows {
				if len(row) != len(tb.Headers) {
					t.Fatalf("row %v has %d cells, headers %d", row, len(row), len(tb.Headers))
				}
			}
			out := tb.Render()
			if !strings.Contains(out, "Table "+e.ID) {
				t.Error("render missing title")
			}
		})
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("viii"); !ok {
		t.Fatal("case-insensitive lookup failed")
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("bogus ID found")
	}
}

func TestTableIShapeHolds(t *testing.T) {
	tb := TableI(Options{Quality: 0.3, Seed: 1})
	// Row 0: 1 thread. Null latency 2.66 s/1000... i.e. 26.6 s/10000.
	within(t, "Null 1-thread s/10k", cell(t, tb.Rows[0][1]), 26.61, 0.06, 0)
	within(t, "Max 1-thread Mb/s", cell(t, tb.Rows[0][7]), 1.82, 0.10, 0)
	// Saturation: threads 6-8 around 700-740 calls/s.
	within(t, "Null 7-thread rate", cell(t, tb.Rows[6][3]), 741, 0.12, 0)
	within(t, "Max 5-thread Mb/s", cell(t, tb.Rows[4][7]), 4.69, 0.12, 0)
	// Monotone non-decreasing rates with thread count (within noise).
	prev := 0.0
	for i, row := range tb.Rows {
		rate := cell(t, row[3])
		if rate+60 < prev {
			t.Errorf("Null rate decreased sharply at %d threads: %v -> %v", i+1, prev, rate)
		}
		if rate > prev {
			prev = rate
		}
	}
}

func TestTableIIThroughVExact(t *testing.T) {
	// Marshalling increments are charged from the cost model, so the
	// reproduced values must match the paper's within rounding.
	for _, pair := range []struct {
		tb   Table
		want []float64
	}{
		{TableII(quick), []float64{8, 16, 32}},
		{TableIII(quick), []float64{20, 140}},
		{TableIV(quick), []float64{115, 550}},
		{TableV(quick), []float64{89, 378, 659}},
	} {
		for i, want := range pair.want {
			within(t, pair.tb.ID+" row "+strconv.Itoa(i), cell(t, pair.tb.Rows[i][1]), want, 0, 2.5)
		}
	}
}

func TestTableVITotalsExact(t *testing.T) {
	tb := TableVI(quick)
	last := tb.Rows[len(tb.Rows)-1]
	if last[1] != "954" || last[3] != "4414" {
		t.Fatalf("send+receive totals %v, want 954 / 4414", last)
	}
	// Every reproduced step must equal the paper column.
	for _, row := range tb.Rows[:len(tb.Rows)-1] {
		if row[1] != row[2] || row[3] != row[4] {
			t.Errorf("step %q: %v/%v vs paper %v/%v", row[0], row[1], row[3], row[2], row[4])
		}
	}
}

func TestTableVIITotalExact(t *testing.T) {
	tb := TableVII(quick)
	last := tb.Rows[len(tb.Rows)-1]
	if last[2] != "606" {
		t.Fatalf("stub+runtime total %v, want 606", last[2])
	}
}

func TestTableVIIIAccountsWithinFivePercent(t *testing.T) {
	tb := TableVIII(Options{Quality: 0.3, Seed: 1})
	var nullModel, nullMeasured, maxModel, maxMeasured float64
	for _, row := range tb.Rows {
		switch row[1] {
		case "TOTAL (model)":
			if nullModel == 0 {
				nullModel = cell(t, row[2])
			} else {
				maxModel = cell(t, row[2])
			}
		case "Measured (simulated end-to-end)":
			if nullMeasured == 0 {
				nullMeasured = cell(t, row[2])
			} else {
				maxMeasured = cell(t, row[2])
			}
		}
	}
	if nullModel != 2514 || maxModel != 6524 {
		t.Fatalf("model totals %v/%v, want 2514/6524", nullModel, maxModel)
	}
	// The accounting identity: measured within ~5% of the model.
	within(t, "Null measured vs model", nullMeasured, nullModel, 0.055, 0)
	within(t, "Max measured vs model", maxMeasured, maxModel, 0.055, 0)
}

func TestTableIXOrdering(t *testing.T) {
	tb := TableIX(quick)
	lat := func(i int) float64 { return cell(t, tb.Rows[i][3]) }
	if !(lat(0) > lat(1) && lat(1) > lat(2)) {
		t.Fatalf("latency not decreasing across implementations: %v %v %v", lat(0), lat(1), lat(2))
	}
	// Original Modula-2+ adds ~1160 µs over assembly (two interrupts/RPC).
	within(t, "original vs assembly", lat(0)-lat(2), 1162, 0.25, 0)
}

func TestTableXUniprocessorJump(t *testing.T) {
	tb := TableX(Options{Quality: 0.5, Seed: 1})
	sec := func(i int) float64 { return cell(t, tb.Rows[i][2]) }
	// 5/5 ≈ 2.69 s, 1/5 jumps ~47%, 1/1 worst.
	within(t, "5/5", sec(0), 2.69, 0.06, 0)
	if sec(4) < sec(0)*1.3 {
		t.Errorf("uniprocessor caller jump too small: %v vs %v", sec(4), sec(0))
	}
	if sec(8) <= sec(4) {
		t.Errorf("1/1 (%v) not slower than 1/5 (%v)", sec(8), sec(4))
	}
	// 2/5 within ~10% of 5/5 ("reducing caller processors from 5 down to 2
	// increases latency only about 10%").
	if sec(3) > sec(0)*1.18 {
		t.Errorf("2/5 (%v) more than ~10%% above 5/5 (%v)", sec(3), sec(0))
	}
}

func TestTableXIUniprocessorHalves(t *testing.T) {
	tb := TableXI(Options{Quality: 0.3, Seed: 1})
	// Locate rows: 15 rows, [pair][thread].
	mbps := func(pair, thread int) float64 { return cell(t, tb.Rows[pair*5+thread][2]) }
	// 5/5 saturation ~4.6-4.7; 1/1 saturation ~2.0-2.5.
	if m := mbps(0, 4); m < 4.0 {
		t.Errorf("5/5 saturation %v, want ≥ 4.0", m)
	}
	uni := mbps(2, 4)
	multi := mbps(0, 4)
	if uni > multi*0.65 || uni < multi*0.30 {
		t.Errorf("1/1 saturation %v not roughly half of 5/5 %v", uni, multi)
	}
	// Single-thread rows ordered: 5/5 > 1/5 > 1/1 (within noise).
	if !(mbps(0, 0) > mbps(2, 0)) {
		t.Errorf("single-thread ordering violated: %v %v", mbps(0, 0), mbps(2, 0))
	}
}

func TestTableXIIHasAllSystems(t *testing.T) {
	tb := TableXII(quick)
	if len(tb.Rows) != 7 {
		t.Fatalf("%d rows, want 7", len(tb.Rows))
	}
	if !strings.Contains(tb.Rows[5][5], "reproduced") || !strings.Contains(tb.Rows[6][5], "reproduced") {
		t.Fatal("Firefly rows not marked reproduced")
	}
	// The reproduced 5x1 Firefly latency should be ~2.7 ms.
	within(t, "Firefly 5x1 latency", cell(t, tb.Rows[6][3]), 2.7, 0.08, 0)
}

func TestImprovementsDirections(t *testing.T) {
	tb := Improvements(Options{Quality: 0.3, Seed: 1})
	if len(tb.Rows) != 8 {
		t.Fatalf("%d improvement rows, want 8", len(tb.Rows))
	}
	for i, row := range tb.Rows {
		nullSave := cell(t, row[1])
		paperNull := paperImprovements[i].NullUs
		// Every improvement must save time, in the right ballpark (±40%
		// of the paper's estimate or 120 µs, whichever is larger — these
		// were estimates, not measurements, in the paper too).
		if nullSave <= 0 {
			t.Errorf("%s: no saving on Null (%v)", row[0], nullSave)
			continue
		}
		within(t, row[0]+" Null saving", nullSave, paperNull, 0.4, 130)
	}
	// §4.2.3 (faster CPUs) must be the largest Null saving, as in the paper.
	best, bestIdx := 0.0, -1
	for i, row := range tb.Rows {
		if v := cell(t, row[1]); v > best {
			best, bestIdx = v, i
		}
	}
	if bestIdx != 2 {
		t.Errorf("largest Null saving is row %d, want 2 (faster CPUs)", bestIdx)
	}
}

func TestRenderAligned(t *testing.T) {
	tb := Table{
		ID: "T", Title: "test",
		Headers: []string{"a", "long-header"},
		Rows:    [][]string{{"xxxxxx", "1"}, {"y", "2"}},
		Notes:   []string{"a note"},
	}
	out := tb.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 { // title, header, rule, two rows, note
		t.Fatalf("rendered %d lines, want 6:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[5], "note:") {
		t.Error("note missing")
	}
}

func TestStreamingHypothesis(t *testing.T) {
	tb := Streaming(Options{Quality: 0.5, Seed: 1})
	if len(tb.Rows) != 4 {
		t.Fatalf("%d rows, want 4", len(tb.Rows))
	}
	// Rows: 0=5/5 threads, 1=5/5 streaming, 2=1/1 threads, 3=1/1 streaming.
	multiThreads := cell(t, tb.Rows[0][4])
	uniThreads := cell(t, tb.Rows[2][4])
	uniStream := cell(t, tb.Rows[3][4])
	// §5's prediction: streaming wins on the uniprocessor...
	if uniStream < uniThreads*1.2 {
		t.Errorf("uniproc streaming %.2f not ≥ 1.2× threads %.2f", uniStream, uniThreads)
	}
	// ...while parallel threads still saturate the multiprocessor.
	if multiThreads < 4.0 {
		t.Errorf("multiproc thread throughput %.2f, want ≥ 4.0", multiThreads)
	}
}

func TestAblationsAllCostSomething(t *testing.T) {
	tb := Ablations(Options{Quality: 0.3, Seed: 1})
	if len(tb.Rows) != 4 {
		t.Fatalf("%d rows, want baseline + 3 ablations", len(tb.Rows))
	}
	baseNull := cell(t, tb.Rows[0][1])
	for _, row := range tb.Rows[1:] {
		n := cell(t, row[1])
		if n <= baseNull {
			t.Errorf("%s: Null %.0f not worse than baseline %.0f", row[0], n, baseNull)
		}
	}
	// Removing the interrupt-level demux must cost roughly two wakeups
	// (§3.2: "doubles the number of wakeups required for an RPC").
	demuxDelta := cell(t, tb.Rows[1][1]) - baseNull
	if demuxDelta < 500 || demuxDelta > 1100 {
		t.Errorf("datalink-demux ablation costs %.0f µs, want ~800", demuxDelta)
	}
}

// TestUtilizationReproducesPaperCPUClaim pins §2.1's "about 1.2 CPUs busy on
// the calling machine at maximum throughput, slightly less on the server"
// against the utilization report's measurement.
func TestUtilizationReproducesPaperCPUClaim(t *testing.T) {
	_, r, _, _ := utilMeasurement(Options{Quality: 0.3, Seed: 1})
	within(t, "caller busy CPUs at saturation", r.CallerCPU, 1.2, 0.25, 0)
	if r.ServerCPU >= r.CallerCPU+0.1 {
		t.Errorf("server busy CPUs %.2f not 'slightly less' than caller %.2f",
			r.ServerCPU, r.CallerCPU)
	}
	if r.ServerCPU < 0.5 {
		t.Errorf("server busy CPUs %.2f implausibly low", r.ServerCPU)
	}
}

// TestUtilTableShape checks the util experiment renders the ethernet
// resource row plus derived CPU/DEQNA rows with sane fractions.
func TestUtilTableShape(t *testing.T) {
	tb := TableUtil(quick)
	rows := map[string][]string{}
	for _, row := range tb.Rows {
		rows[row[0]] = row
	}
	for _, want := range []string{"ethernet", "caller CPUs", "server CPUs", "caller DEQNA", "server DEQNA"} {
		if rows[want] == nil {
			t.Fatalf("missing %q row in util table: %v", want, tb.Rows)
		}
	}
	ethUtil := cell(t, rows["ethernet"][2])
	if ethUtil <= 5 || ethUtil > 100 {
		t.Errorf("ethernet util%% = %v, want busy at saturation", ethUtil)
	}
	if served := cell(t, rows["ethernet"][6]); served < 100 {
		t.Errorf("ethernet served %v frames, want >= 100", served)
	}
}
