package exper

import (
	"fmt"

	"fireflyrpc/internal/realbench"
)

// TableTail is the loss×load tail-latency sweep over the real stack: the
// price of the retransmission machinery expressed as percentiles. The
// paper reports only means; under injected loss the mean stays almost
// clean (most calls see no drop) while p99 and p99.9 inflate by orders of
// magnitude — the first retransmission interval becomes the tail.
func TableTail(o Options) Table {
	t := Table{
		ID:    "tail",
		Title: "Null RPC latency under frame loss (real stack, in-process exchange)",
		Headers: []string{
			"loss", "threads", "calls", "retrans", "p50 µs", "p99 µs", "p99.9 µs", "max µs",
		},
	}
	cells, err := realbench.TailSweep(realbench.TailOptions{
		CallsPerThread: o.calls(2000),
		Seed:           o.Seed,
	})
	if err != nil {
		t.Notes = append(t.Notes, "sweep failed: "+err.Error())
		return t
	}
	for _, c := range cells {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%g%%", 100*c.Loss), fmt.Sprintf("%d", c.Threads),
			fmt.Sprintf("%d", c.Calls), fmt.Sprintf("%d", c.Retransmits),
			f1(c.P50Us), f1(c.P99Us), f1(c.P999Us), f1(c.MaxUs),
		})
	}
	t.Notes = append(t.Notes,
		"same seed => same impairment schedule; see internal/faultnet",
		"p50 stays near the clean fast path while p99/p99.9 absorb the retransmission timer")
	return t
}

// TableOverload is the admission-control goodput comparison at ~2×
// saturation: a closed-loop caller population against a server whose
// Null takes a fixed service time. FIFO queueing collapses once queue
// delay exceeds the callers' deadlines (the server serves only the dead);
// deadline shedding rejects dead-on-arrival work at the wire and keeps
// goodput near the unsaturated baseline.
func TableOverload(o Options) Table {
	t := Table{
		ID:    "overload",
		Title: "Goodput under overload by admission policy (real stack)",
		Headers: []string{
			"policy", "callers", "good calls/s", "ok", "timeout", "rejected", "shed", "p99 µs",
		},
	}
	cells, err := realbench.OverloadSweep(realbench.OverloadOptions{})
	if err != nil {
		t.Notes = append(t.Notes, "sweep failed: "+err.Error())
		return t
	}
	for _, c := range cells {
		t.Rows = append(t.Rows, []string{
			c.Policy, fmt.Sprintf("%d", c.Callers), f0(c.GoodputPerSec),
			fmt.Sprintf("%d", c.Completed), fmt.Sprintf("%d", c.Timeouts),
			fmt.Sprintf("%d", c.Overloads), fmt.Sprintf("%d", c.Shed), f1(c.P99Us),
		})
	}
	t.Notes = append(t.Notes,
		"baseline = as many callers as workers, no admission control",
		"rejected = calls failed fast by a wire-level overload rejection")
	return t
}
