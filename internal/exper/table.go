// Package exper regenerates every table in the paper's evaluation: it runs
// the simulated testbed under the right configuration for each experiment
// and renders the results side by side with the paper's published values.
package exper

import (
	"fmt"
	"strings"
)

// Table is one rendered experiment result.
type Table struct {
	ID      string // "I" … "XII", "improvements", "cpu"
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// Render formats the table as aligned text.
func (t Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table %s: %s\n", t.ID, t.Title)

	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s", widths[i], cell)
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteString("\n")
	}
	line(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteString("\n")
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	return b.String()
}

// Options controls experiment scale. Quality 1.0 runs the paper's full call
// counts; smaller values scale them down proportionally (minimum 100 calls)
// for quick runs and tests.
type Options struct {
	Quality float64
	Seed    uint64
}

// DefaultOptions runs at full paper scale.
func DefaultOptions() Options { return Options{Quality: 1.0, Seed: 1} }

// calls scales a paper call count by quality.
func (o Options) calls(paper int) int {
	q := o.Quality
	if q <= 0 {
		q = 1
	}
	n := int(float64(paper) * q)
	if n < 100 {
		n = 100
	}
	return n
}

// Experiment pairs an identifier with the function that regenerates it.
type Experiment struct {
	ID    string
	Title string
	Run   func(Options) Table
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"I", "Time for 10000 RPCs", TableI},
		{"II", "4-byte integer arguments, passed by value", TableII},
		{"III", "Fixed length array, passed by VAR OUT", TableIII},
		{"IV", "Variable length array, passed by VAR OUT", TableIV},
		{"V", "Text.T argument", TableV},
		{"VI", "Latency of steps in the send+receive operation", TableVI},
		{"VII", "Latency of stubs and RPC runtime", TableVII},
		{"VIII", "Calculation of latency for RPC to Null() and MaxResult(b)", TableVIII},
		{"IX", "Execution time for main path of the Ethernet interrupt routine", TableIX},
		{"X", "Calls to Null() with varying numbers of processors", TableX},
		{"XI", "Throughput of MaxResult(b) with varying numbers of processors", TableXI},
		{"XII", "Performance of remote RPC in other systems", TableXII},
		{"util", "Resource utilization at MaxResult saturation", TableUtil},
		{"improvements", "§4.2 estimated improvements, re-simulated", Improvements},
		{"streaming", "§5 streaming hypothesis, implemented", Streaming},
		{"ablations", "§3.2 structural optimizations, individually removed", Ablations},
		{"tail", "Null RPC latency under frame loss (real stack)", TableTail},
		{"overload", "Goodput under overload by admission policy (real stack)", TableOverload},
	}
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if strings.EqualFold(e.ID, id) {
			return e, true
		}
	}
	return Experiment{}, false
}

func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func f0(v float64) string  { return fmt.Sprintf("%.0f", v) }
func pct(v float64) string { return fmt.Sprintf("%.0f%%", v) }
