package exper

// Published values from the paper, kept as data so every regenerated table
// can print "paper vs. reproduced" side by side.

// paperTableI: per thread count, Null seconds/10000 and RPCs/sec, then
// MaxResult seconds/10000 and megabits/sec.
var paperTableI = []struct {
	Threads  int
	NullSec  float64
	NullRate float64
	MaxSec   float64
	MaxMbps  float64
}{
	{1, 26.61, 375, 63.47, 1.82},
	{2, 16.80, 595, 35.28, 3.28},
	{3, 16.26, 615, 27.28, 4.25},
	{4, 15.45, 647, 24.93, 4.65},
	{5, 15.11, 662, 24.69, 4.69},
	{6, 14.69, 680, 24.65, 4.70},
	{7, 13.49, 741, 24.72, 4.69},
	{8, 13.67, 732, 24.68, 4.69},
}

// paperTableII: marshalling time for n 4-byte by-value integers.
var paperTableII = []struct {
	N     int
	Usecs float64
}{{1, 8}, {2, 16}, {4, 32}}

// paperTableIII: fixed-length array VAR OUT.
var paperTableIII = []struct {
	Bytes int
	Usecs float64
}{{4, 20}, {400, 140}}

// paperTableIV: variable-length array VAR OUT.
var paperTableIV = []struct {
	Bytes int
	Usecs float64
}{{1, 115}, {1440, 550}}

// paperTableV: Text.T argument.
var paperTableV = []struct {
	Bytes float64 // -1 encodes NIL
	Usecs float64
}{{-1, 89}, {1, 378}, {128, 659}}

// paperTableVI: send+receive step costs at 74 and 1514 bytes.
var paperTableVI = []struct {
	Action string
	At74   float64
	At1514 float64
}{
	{"Finish UDP header (Sender)", 59, 59},
	{"Calculate UDP checksum", 45, 440},
	{"Handle trap to Nub", 37, 37},
	{"Queue packet for transmission", 39, 39},
	{"Interprocessor interrupt to CPU 0", 10, 10},
	{"Handle interprocessor interrupt", 76, 76},
	{"Activate Ethernet controller", 22, 22},
	{"QBus/Controller transmit latency", 70, 815},
	{"Transmission time on Ethernet", 60, 1230},
	{"QBus/Controller receive latency", 80, 835},
	{"General I/O interrupt handler", 14, 14},
	{"Handle interrupt for received pkt", 177, 177},
	{"Calculate UDP checksum", 45, 440},
	{"Wakeup RPC thread", 220, 220},
}

// paperTableVII: stub and runtime step costs for Null().
var paperTableVII = []struct {
	Machine, Procedure string
	Usecs              float64
}{
	{"Caller", "Calling program (loop to repeat call)", 16},
	{"Caller", "Calling stub (call & return)", 90},
	{"Caller", "Starter", 128},
	{"Caller", "Transporter (send call pkt)", 27},
	{"Server", "Receiver (receive call pkt)", 158},
	{"Server", "Server stub (call & return)", 68},
	{"Server", "Null (the server procedure)", 10},
	{"Server", "Receiver (send result pkt)", 27},
	{"Caller", "Transporter (receive result pkt)", 49},
	{"Caller", "Ender", 33},
}

// Paper Table VIII's composition and measurements (µs).
const (
	paperNullComposed = 2514
	paperNullMeasured = 2645
	paperMaxComposed  = 6524
	paperMaxMeasured  = 6347
)

// paperTableIX: interrupt-routine implementations.
var paperTableIX = []struct {
	Version string
	Usecs   float64
}{
	{"Original Modula-2+", 758},
	{"Final Modula-2+", 547},
	{"Assembly language", 177},
}

// paperTableX: seconds for 1000 calls to Null() (Exerciser stubs).
var paperTableX = []struct {
	CallerCPUs, ServerCPUs int
	Seconds                float64
}{
	{5, 5, 2.69}, {4, 5, 2.73}, {3, 5, 2.85}, {2, 5, 2.98},
	{1, 5, 3.96}, {1, 4, 3.98}, {1, 3, 4.13}, {1, 2, 4.21}, {1, 1, 4.81},
}

// paperTableXI: MaxResult throughput (Mb/s) for processor pairs × threads.
var paperTableXI = struct {
	Pairs   []struct{ Caller, Server int }
	Threads []int
	Mbps    [][]float64 // [pair][thread]
}{
	Pairs:   []struct{ Caller, Server int }{{5, 5}, {1, 5}, {1, 1}},
	Threads: []int{1, 2, 3, 4, 5},
	Mbps: [][]float64{
		{2.0, 3.4, 4.6, 4.7, 4.7},
		{1.5, 2.3, 2.7, 2.7, 2.7},
		{1.3, 2.0, 2.4, 2.5, 2.5},
	},
}

// paperTableXII: published cross-system numbers.
var paperTableXII = []struct {
	System     string
	Machine    string
	MIPs       string
	LatencyMs  float64
	Mbps       float64
	Reproduced bool // rows we re-measure on the simulator
}{
	{"Cedar", "Dorado - custom", "1 x 4", 1.1, 2.0, false},
	{"Amoeba", "Tadpole - M68020", "1 x 1.5", 1.4, 5.3, false},
	{"V", "Sun 3/75 - M68020", "1 x 2", 2.5, 4.4, false},
	{"Sprite", "Sun 3/75 - M68020", "1 x 2", 2.8, 5.6, false},
	{"Amoeba/Unix", "Sun 3/50 - M68020", "1 x 1.5", 7.0, 1.8, false},
	{"Firefly", "FF - MicroVAX II", "1 x 1", 4.8, 2.5, true},
	{"Firefly", "FF - MicroVAX II", "5 x 1", 2.7, 4.6, true},
}

// paperImprovements: §4.2 estimated savings for Null() and MaxResult(b).
var paperImprovements = []struct {
	Section string
	Name    string
	NullUs  float64 // estimated µs saved on Null()
	NullPct float64
	MaxUs   float64
	MaxPct  float64
}{
	{"4.2.1", "Different network controller", 300, 11, 1800, 28},
	{"4.2.2", "Faster network (100 Mb/s)", 110, 4, 1160, 18},
	{"4.2.3", "Faster CPUs (3x)", 1380, 52, 2280, 36},
	{"4.2.4", "Omit UDP checksums", 180, 7, 1000, 16},
	{"4.2.5", "Redesign RPC protocol", 200, 8, 200, 3},
	{"4.2.6", "Omit layering on IP and UDP", 100, 4, 100, 1.5},
	{"4.2.7", "Busy wait", 440, 17, 440, 7},
	{"4.2.8", "Recode RPC runtime (except stubs)", 280, 10, 280, 4},
}
