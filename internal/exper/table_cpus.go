package exper

import (
	"fmt"

	"fireflyrpc/internal/costmodel"
	"fireflyrpc/internal/simstack"
	"fireflyrpc/internal/wire"
)

// exerciserConfig returns the §5 measurement configuration: hand-produced
// Exerciser stubs and the swapped-lines fix installed.
func exerciserConfig(callerCPUs, serverCPUs int) costmodel.Config {
	cfg := costmodel.NewConfig()
	cfg.CallerCPUs = callerCPUs
	cfg.ServerCPUs = serverCPUs
	cfg.ExerciserStubs = true
	cfg.SwappedLines = true
	return cfg
}

// TableX reproduces the processor-count sweep: 1 thread calling Null() with
// the RPC Exerciser's hand stubs, swapped-lines fix installed.
func TableX(o Options) Table {
	t := Table{
		ID:      "X",
		Title:   "Calls to Null() with varying numbers of processors",
		Headers: []string{"caller CPUs", "server CPUs", "s/1000 calls", "paper"},
	}
	calls := o.calls(1000)
	for _, row := range paperTableX {
		cfg := exerciserConfig(row.CallerCPUs, row.ServerCPUs)
		w := simstack.NewWorld(&cfg, o.Seed)
		r := w.Run(simstack.NullSpec(&cfg), 1, calls)
		t.Rows = append(t.Rows, []string{
			f0(float64(row.CallerCPUs)), f0(float64(row.ServerCPUs)),
			f2(r.SecondsPer(1000)), f2(row.Seconds),
		})
	}
	t.Notes = append(t.Notes,
		"RPC Exerciser hand stubs (140 µs faster than Table I's standard stubs), swapped-lines fix installed")
	return t
}

// TableXI reproduces MaxResult throughput across processor configurations
// and caller thread counts.
func TableXI(o Options) Table {
	t := Table{
		ID:      "XI",
		Title:   "Throughput in megabits/second of MaxResult(b) with varying numbers of processors",
		Headers: []string{"caller/server CPUs", "threads", "Mb/s", "paper"},
	}
	calls := o.calls(1000)
	for pi, pair := range paperTableXI.Pairs {
		for ti, threads := range paperTableXI.Threads {
			cfg := exerciserConfig(pair.Caller, pair.Server)
			w := simstack.NewWorld(&cfg, o.Seed)
			r := w.Run(simstack.MaxResultSpec(&cfg), threads, calls*threads)
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d/%d", pair.Caller, pair.Server),
				f0(float64(threads)),
				f1(r.MegabitsPerSecond(wire.MaxSinglePacketPayload)),
				f1(paperTableXI.Mbps[pi][ti]),
			})
		}
	}
	t.Notes = append(t.Notes,
		"1000 calls per thread, Exerciser stubs; uniprocessor throughput is roughly half of 5-processor throughput, dominated by thread-to-thread context switches")
	return t
}

// TableXII reprints the cross-system comparison and re-measures the two
// Firefly rows on the simulator (Exerciser stubs, as the paper's §5 numbers).
func TableXII(o Options) Table {
	t := Table{
		ID:      "XII",
		Title:   "Performance of remote RPC in other systems",
		Headers: []string{"system", "machine-processor", "~MIPs", "latency ms", "Mb/s", "source"},
	}
	calls := o.calls(1000)
	for _, row := range paperTableXII {
		if !row.Reproduced {
			t.Rows = append(t.Rows, []string{
				row.System, row.Machine, row.MIPs,
				f1(row.LatencyMs), f1(row.Mbps), "published",
			})
			continue
		}
		cpus := 5
		if row.MIPs == "1 x 1" {
			cpus = 1
		}
		cfg := exerciserConfig(cpus, cpus)
		w := simstack.NewWorld(&cfg, o.Seed)
		lat := w.Run(simstack.NullSpec(&cfg), 1, calls).LatencyMicros() / 1000

		cfg2 := exerciserConfig(cpus, cpus)
		w2 := simstack.NewWorld(&cfg2, o.Seed)
		threads := 4
		if cpus == 1 {
			threads = 3
		}
		mbps := w2.Run(simstack.MaxResultSpec(&cfg2), threads, calls*2).
			MegabitsPerSecond(wire.MaxSinglePacketPayload)

		t.Rows = append(t.Rows, []string{
			row.System, row.Machine, row.MIPs,
			f1(lat) + " (" + f1(row.LatencyMs) + ")",
			f1(mbps) + " (" + f1(row.Mbps) + ")",
			"reproduced (paper)",
		})
	}
	t.Notes = append(t.Notes,
		"non-Firefly rows are published numbers (10 Mb/s Ethernet except Cedar's 3 Mb/s); Firefly rows are re-measured on the simulator")
	return t
}
