package exper

import (
	"fmt"

	"fireflyrpc/internal/costmodel"
	"fireflyrpc/internal/sim"
	"fireflyrpc/internal/simstack"
	"fireflyrpc/internal/simtrace"
)

// utilMeasurement drives MaxResult at the paper's maximum-throughput point
// (4 caller threads, 5/5 CPUs) and returns the per-resource report plus the
// run's mean busy-CPU figures. Shared by TableUtil and the ~1.2-CPU check.
func utilMeasurement(o Options) ([]sim.ResourceStats, simstack.RunResult, ctlUtil, ctlUtil) {
	cfg := costmodel.NewConfig()
	w := simstack.NewWorld(&cfg, o.Seed)
	callerCtl0 := w.Caller.Ctrl.Stats().BusyTime
	serverCtl0 := w.Server.Ctrl.Stats().BusyTime
	start := w.K.Now()
	r := w.Run(simstack.MaxResultSpec(&cfg), 4, o.calls(1000))
	elapsed := w.K.Now().Sub(start)
	cu := ctlUtil{busy: w.Caller.Ctrl.Stats().BusyTime - callerCtl0, elapsed: elapsed}
	su := ctlUtil{busy: w.Server.Ctrl.Stats().BusyTime - serverCtl0, elapsed: elapsed}
	return simtrace.ResourceReport(w.K), r, cu, su
}

type ctlUtil struct {
	busy    sim.Duration
	elapsed sim.Duration
}

func (c ctlUtil) fraction() float64 {
	if c.elapsed <= 0 {
		return 0
	}
	return float64(c.busy) / float64(c.elapsed)
}

// TableUtil is the simulator's utilization/queueing report at saturation: one
// row per sim.Resource (busy fraction, time-averaged and peak queue depth,
// wait quantiles), plus derived rows for each machine's CPUs and DEQNA
// controller. The paper's §2.1 claim — about 1.2 CPUs busy on the calling
// machine at maximum throughput, slightly less on the server — appears in
// the caller/server CPU rows and the note.
func TableUtil(o Options) Table {
	t := Table{
		ID:    "util",
		Title: "Resource utilization at MaxResult saturation (4 threads, 5/5 CPUs)",
		Headers: []string{
			"resource", "servers", "util %", "mean busy", "mean queue", "max queue", "served", "wait p95 µs",
		},
	}
	stats, r, callerCtl, serverCtl := utilMeasurement(o)
	for _, st := range stats {
		t.Rows = append(t.Rows, []string{
			st.Name, f0(float64(st.Servers)), f1(100 * st.Utilization),
			f2(st.MeanBusyServers), f2(st.MeanQueueDepth), f0(float64(st.MaxQueueDepth)),
			f0(float64(st.Served)), f1(st.Wait.P95Us),
		})
	}
	t.Rows = append(t.Rows, []string{
		"caller CPUs", "5", f1(100 * r.CallerCPU / 5), f2(r.CallerCPU), "-", "-", "-", "-",
	})
	t.Rows = append(t.Rows, []string{
		"server CPUs", "5", f1(100 * r.ServerCPU / 5), f2(r.ServerCPU), "-", "-", "-", "-",
	})
	t.Rows = append(t.Rows, []string{
		"caller DEQNA", "1", f1(100 * callerCtl.fraction()), f2(callerCtl.fraction()), "-", "-", "-", "-",
	})
	t.Rows = append(t.Rows, []string{
		"server DEQNA", "1", f1(100 * serverCtl.fraction()), f2(serverCtl.fraction()), "-", "-", "-", "-",
	})
	t.Notes = append(t.Notes,
		fmt.Sprintf("paper §2.1: ~1.2 CPUs busy on the caller at max throughput, slightly less on the server; "+
			"reproduced: %s caller, %s server", f2(r.CallerCPU), f2(r.ServerCPU)),
		"resource rows integrate from t=0 (including setup); CPU/DEQNA rows cover the timed run only")
	return t
}
