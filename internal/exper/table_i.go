package exper

import (
	"fireflyrpc/internal/costmodel"
	"fireflyrpc/internal/simstack"
	"fireflyrpc/internal/wire"
)

// TableI reproduces "Time for 10000 RPCs": 1–8 caller threads calling Null()
// and MaxResult(b) between two 5-processor Fireflies on a private Ethernet.
func TableI(o Options) Table {
	total := o.calls(10000)
	t := Table{
		ID:    "I",
		Title: "Time for 10000 RPCs",
		Headers: []string{
			"threads",
			"Null s/10k", "paper", "Null RPC/s", "paper",
			"Max s/10k", "paper", "Max Mb/s", "paper",
		},
	}
	var callerCPU, serverCPU float64
	for _, row := range paperTableI {
		cfgN := costmodel.NewConfig()
		wN := simstack.NewWorld(&cfgN, o.Seed)
		rN := wN.Run(simstack.NullSpec(&cfgN), row.Threads, total)

		cfgM := costmodel.NewConfig()
		wM := simstack.NewWorld(&cfgM, o.Seed)
		rM := wM.Run(simstack.MaxResultSpec(&cfgM), row.Threads, total/2)
		if row.Threads == 4 {
			callerCPU, serverCPU = rM.CallerCPU, rM.ServerCPU
		}

		t.Rows = append(t.Rows, []string{
			f0(float64(row.Threads)),
			f2(rN.SecondsPer(10000)), f2(row.NullSec),
			f0(rN.CallsPerSecond()), f0(row.NullRate),
			f2(rM.SecondsPer(10000)), f2(row.MaxSec),
			f2(rM.MegabitsPerSecond(wire.MaxSinglePacketPayload)), f2(row.MaxMbps),
		})
	}
	t.Notes = append(t.Notes,
		"paper §2.1: ~1.2 CPUs busy on the caller at max throughput, slightly less on the server; "+
			"reproduced: "+f2(callerCPU)+" caller, "+f2(serverCPU)+" server (4 threads)")
	return t
}
