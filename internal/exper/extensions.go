package exper

import (
	"fmt"

	"fireflyrpc/internal/costmodel"
	"fireflyrpc/internal/simstack"
	"fireflyrpc/internal/wire"
)

// Streaming tests the paper's §5 hypothesis: "It seems plausible that
// better uniprocessor throughput could be achieved by an RPC design, like
// Amoeba's, V's, or Sprite's, that streamed a large argument or result for
// a single call in multiple packets, rather than depended on multiple
// threads transferring a packet's worth of data per call. The streaming
// strategy requires fewer thread-to-thread context switches."
//
// We compare, on both the 5/5 and 1/1 processor configurations, the
// thread-parallel strategy (Table XI: k threads × single-packet MaxResult)
// against streaming (1 thread × one call returning k packets of result).
func Streaming(o Options) Table {
	t := Table{
		ID:    "streaming",
		Title: "§5 hypothesis: streaming vs. parallel threads for bulk transfer",
		Headers: []string{
			"CPUs", "strategy", "threads", "packets/call", "Mb/s", "wakeups/KB",
		},
	}
	calls := o.calls(1000)
	const streamPackets = 8 // 8 × 1440 B = 11.5 KB per call

	for _, cpus := range []int{5, 1} {
		// Thread-parallel: Table XI's best thread count for this config.
		threads := 4
		cfgT := exerciserConfig(cpus, cpus)
		wT := simstack.NewWorld(&cfgT, o.Seed)
		rT := wT.Run(simstack.MaxResultSpec(&cfgT), threads, calls*threads)
		wakeT := float64(2) / (1440.0 / 1024) // 2 wakeups per 1440-byte call
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d/%d", cpus, cpus), "parallel threads",
			f0(float64(threads)), "1",
			f1(rT.MegabitsPerSecond(wire.MaxSinglePacketPayload)),
			f2(wakeT),
		})

		// Streaming: one thread, one call returns streamPackets fragments.
		cfgS := exerciserConfig(cpus, cpus)
		wS := simstack.NewWorld(&cfgS, o.Seed)
		spec := simstack.StreamResultSpec(&cfgS, streamPackets*wire.MaxSinglePacketPayload)
		wS.RegisterProc(spec)
		rS := wS.Run(spec, 1, calls/2)
		wakeS := float64(2) / (float64(streamPackets) * 1440 / 1024)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d/%d", cpus, cpus), "streaming",
			"1", f0(streamPackets),
			f1(rS.MegabitsPerSecond(streamPackets * wire.MaxSinglePacketPayload)),
			f2(wakeS),
		})
	}
	t.Notes = append(t.Notes,
		"the paper predicts streaming helps most on a uniprocessor, where every wakeup costs a full thread-to-thread context switch; Exerciser stubs, swapped-lines fix")
	return t
}

// Ablations re-runs the baseline with each §3.2 structural optimization
// individually removed, quantifying what the design choices bought.
func Ablations(o Options) Table {
	t := Table{
		ID:    "ablations",
		Title: "§3.2 structural optimizations, individually removed",
		Headers: []string{
			"configuration", "Null µs", "Δ µs", "Max µs", "Δ µs", "Null sat calls/s",
		},
	}
	calls := o.calls(1000)

	measure := func(cfg costmodel.Config) (nullUs, maxUs, sat float64) {
		w := simstack.NewWorld(&cfg, o.Seed)
		nullUs = w.Run(simstack.NullSpec(&cfg), 1, calls).LatencyMicros()
		cfg2 := cfg
		w2 := simstack.NewWorld(&cfg2, o.Seed)
		maxUs = w2.Run(simstack.MaxResultSpec(&cfg2), 1, calls/2).LatencyMicros()
		cfg3 := cfg
		w3 := simstack.NewWorld(&cfg3, o.Seed)
		sat = w3.Run(simstack.NullSpec(&cfg3), 6, calls*3).CallsPerSecond()
		return
	}

	base := costmodel.NewConfig()
	bn, bm, bs := measure(base)
	t.Rows = append(t.Rows, []string{
		"baseline (as shipped)", f0(bn), "-", f0(bm), "-", f0(bs)})

	variants := []struct {
		name  string
		apply func(*costmodel.Config)
		text  string
	}{
		{"demux in a datalink thread", func(c *costmodel.Config) { c.TraditionalDemux = true },
			"interrupt wakes a datalink thread which demultiplexes and wakes the RPC thread: two wakeups per packet"},
		{"secure (copying) buffer management", func(c *costmodel.Config) { c.SecureBuffers = true },
			"packets copied between protection domains instead of shared pool read-in-place"},
		{"interrupt routine in Modula-2+", func(c *costmodel.Config) { c.Interrupt = costmodel.InterruptOriginalModula },
			"Table IX's original high-level-language interrupt path"},
	}
	for _, v := range variants {
		cfg := costmodel.NewConfig()
		v.apply(&cfg)
		n, m, s := measure(cfg)
		t.Rows = append(t.Rows, []string{
			"without: " + v.name, f0(n), "+" + f0(n-bn), f0(m), "+" + f0(m-bm), f0(s)})
		t.Notes = append(t.Notes, v.name+": "+v.text)
	}
	return t
}
