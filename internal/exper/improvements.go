package exper

import (
	"fireflyrpc/internal/costmodel"
	"fireflyrpc/internal/simstack"
)

// Improvements re-simulates each §4.2 hypothetical change and reports the
// measured saving on Null() and MaxResult(b) beside the paper's estimates.
// The paper cautions that effects are not independent and cannot simply be
// added; re-simulation honors that by measuring each change alone.
func Improvements(o Options) Table {
	t := Table{
		ID:    "improvements",
		Title: "§4.2 estimated improvements, re-simulated one at a time",
		Headers: []string{
			"change",
			"Null saved µs", "paper", "Null %", "paper",
			"Max saved µs", "paper", "Max %", "paper",
		},
	}
	calls := o.calls(1000)

	measure := func(cfg costmodel.Config) (nullUs, maxUs float64) {
		w := simstack.NewWorld(&cfg, o.Seed)
		nullUs = w.Run(simstack.NullSpec(&cfg), 1, calls).LatencyMicros()
		cfg2 := cfg
		w2 := simstack.NewWorld(&cfg2, o.Seed)
		maxUs = w2.Run(simstack.MaxResultSpec(&cfg2), 1, calls/2).LatencyMicros()
		return
	}

	baseNull, baseMax := measure(costmodel.NewConfig())

	variants := []struct {
		name  string
		apply func(*costmodel.Config)
	}{
		{"Different network controller", func(c *costmodel.Config) { c.OverlapController = true }},
		{"Faster network (100 Mb/s)", func(c *costmodel.Config) { c.NetworkMbps = 100 }},
		{"Faster CPUs (3x)", func(c *costmodel.Config) { c.CPUSpeedup = 3 }},
		{"Omit UDP checksums", func(c *costmodel.Config) { c.UDPChecksums = false }},
		{"Redesign RPC protocol", func(c *costmodel.Config) { c.RedesignedHeader = true }},
		{"Omit layering on IP and UDP", func(c *costmodel.Config) { c.RawEthernet = true }},
		{"Busy wait", func(c *costmodel.Config) { c.BusyWait = true }},
		{"Recode RPC runtime (except stubs)", func(c *costmodel.Config) { c.RecodedRuntime = true }},
	}

	for i, v := range variants {
		cfg := costmodel.NewConfig()
		v.apply(&cfg)
		nullUs, maxUs := measure(cfg)
		nullSave := baseNull - nullUs
		maxSave := baseMax - maxUs
		p := paperImprovements[i]
		t.Rows = append(t.Rows, []string{
			p.Section + " " + v.name,
			f0(nullSave), f0(p.NullUs),
			pct(nullSave / baseNull * 100), pct(p.NullPct),
			f0(maxSave), f0(p.MaxUs),
			pct(maxSave / baseMax * 100), pct(p.MaxPct),
		})
	}
	t.Notes = append(t.Notes,
		"baseline Null "+f0(baseNull)+" µs, MaxResult "+f0(baseMax)+" µs; paper estimates from §4.2 against 2660/6350 µs")
	return t
}
