package exper

import (
	"time"

	"fireflyrpc/internal/costmodel"
	"fireflyrpc/internal/simstack"
)

func usec(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

// TableVI regenerates the send+receive step breakdown for 74- and 1514-byte
// packets from the model the simulator executes, beside the paper's values.
func TableVI(o Options) Table {
	cfg := costmodel.NewConfig()
	t := Table{
		ID:      "VI",
		Title:   "Latency of steps in the send+receive operation",
		Headers: []string{"action", "74B µs", "paper", "1514B µs", "paper"},
	}
	s74 := cfg.SendReceiveSteps(74)
	s1514 := cfg.SendReceiveSteps(1514)
	var t74, t1514 float64
	for i, step := range s74 {
		t74 += usec(step.Cost)
		t1514 += usec(s1514[i].Cost)
		t.Rows = append(t.Rows, []string{
			step.Name,
			f0(usec(step.Cost)), f0(paperTableVI[i].At74),
			f0(usec(s1514[i].Cost)), f0(paperTableVI[i].At1514),
		})
	}
	t.Rows = append(t.Rows, []string{"TOTAL", f0(t74), "954", f0(t1514), "4414"})
	return t
}

// TableVII regenerates the stub and runtime breakdown for Null().
func TableVII(o Options) Table {
	cfg := costmodel.NewConfig()
	t := Table{
		ID:      "VII",
		Title:   "Latency of stubs and RPC runtime",
		Headers: []string{"machine", "procedure", "µs", "paper"},
	}
	var total float64
	for i, step := range cfg.StubRuntimeSteps() {
		total += usec(step.Cost)
		t.Rows = append(t.Rows, []string{
			paperTableVII[i].Machine, step.Name,
			f0(usec(step.Cost)), f0(paperTableVII[i].Usecs),
		})
	}
	t.Rows = append(t.Rows, []string{"", "TOTAL", f0(total), "606"})
	return t
}

// TableVIII composes the model (Tables VI + VII + marshalling) and compares
// it with the end-to-end latency the simulator measures — the paper's
// central accounting check, which closed to within about 5%.
func TableVIII(o Options) Table {
	cfg := costmodel.NewConfig()
	t := Table{
		ID:      "VIII",
		Title:   "Calculation of latency for RPC to Null() and MaxResult(b)",
		Headers: []string{"procedure", "action", "µs", "paper"},
	}

	nullModel := usec(cfg.StubRuntimeTotal() + 2*cfg.SendReceiveTotal(74))
	maxModel := usec(cfg.StubRuntimeTotal() + cfg.MarshalVarArray(1440) +
		cfg.SendReceiveTotal(74) + cfg.SendReceiveTotal(1514))

	calls := o.calls(1000)
	w1 := simstack.NewWorld(&cfg, o.Seed)
	nullMeasured := w1.Run(simstack.NullSpec(&cfg), 1, calls).LatencyMicros()
	cfg2 := costmodel.NewConfig()
	w2 := simstack.NewWorld(&cfg2, o.Seed)
	maxMeasured := w2.Run(simstack.MaxResultSpec(&cfg2), 1, calls/2).LatencyMicros()

	t.Rows = append(t.Rows,
		[]string{"Null()", "Caller, server, stubs and RPC runtime", f0(usec(cfg.StubRuntimeTotal())), "606"},
		[]string{"", "Send+receive 74-byte call packet", f0(usec(cfg.SendReceiveTotal(74))), "954"},
		[]string{"", "Send+receive 74-byte result packet", f0(usec(cfg.SendReceiveTotal(74))), "954"},
		[]string{"", "TOTAL (model)", f0(nullModel), f0(paperNullComposed)},
		[]string{"", "Measured (simulated end-to-end)", f0(nullMeasured), f0(paperNullMeasured)},
		[]string{"", "Unaccounted", f0(nullMeasured - nullModel), f0(paperNullMeasured - paperNullComposed)},
		[]string{"MaxResult(b)", "Caller, server, stubs and RPC runtime", f0(usec(cfg.StubRuntimeTotal())), "606"},
		[]string{"", "Marshall a 1440-byte VAR OUT result", f0(usec(cfg.MarshalVarArray(1440))), "550"},
		[]string{"", "Send+receive 74-byte call packet", f0(usec(cfg.SendReceiveTotal(74))), "954"},
		[]string{"", "Send+receive 1514-byte result packet", f0(usec(cfg.SendReceiveTotal(1514))), "4414"},
		[]string{"", "TOTAL (model)", f0(maxModel), f0(paperMaxComposed)},
		[]string{"", "Measured (simulated end-to-end)", f0(maxMeasured), f0(paperMaxMeasured)},
		[]string{"", "Unaccounted", f0(maxMeasured - maxModel), f0(paperMaxMeasured - paperMaxComposed)},
	)
	t.Notes = append(t.Notes,
		"the paper accounts for measured latency to within ~5%; the residual here is the simulator's dispatch slop and overlap, within the same envelope")
	return t
}

// TableIX re-runs single-threaded Null() with the three interrupt-routine
// implementations and reports both the routine's cost and the effect on
// call latency.
func TableIX(o Options) Table {
	t := Table{
		ID:      "IX",
		Title:   "Execution time for main path of the Ethernet interrupt routine",
		Headers: []string{"version", "routine µs", "paper", "Null latency µs"},
	}
	calls := o.calls(1000)
	impls := []costmodel.InterruptImpl{
		costmodel.InterruptOriginalModula,
		costmodel.InterruptFinalModula,
		costmodel.InterruptAssembly,
	}
	for i, impl := range impls {
		cfg := costmodel.NewConfig()
		cfg.Interrupt = impl
		w := simstack.NewWorld(&cfg, o.Seed)
		r := w.Run(simstack.NullSpec(&cfg), 1, calls)
		t.Rows = append(t.Rows, []string{
			impl.String(),
			f0(usec(impl.Cost())), f0(paperTableIX[i].Usecs),
			f0(r.LatencyMicros()),
		})
	}
	t.Notes = append(t.Notes,
		"the shipped system uses the assembly version; each RPC takes two receive interrupts, so the Modula-2+ versions add roughly twice their excess to latency")
	return t
}
