package testsvc

import (
	"bytes"
	"errors"
	"os"
	"testing"
	"time"

	"fireflyrpc/internal/core"
	"fireflyrpc/internal/faultnet"
	"fireflyrpc/internal/idl"
	"fireflyrpc/internal/marshal"
	"fireflyrpc/internal/proto"
	"fireflyrpc/internal/transport"
)

// impl is the reference implementation of the Test interface.
type impl struct{}

func (impl) Null() error { return nil }

func (impl) MaxResult(buffer []byte) error {
	for i := range buffer {
		buffer[i] = byte(i)
	}
	return nil
}

func (impl) MaxArg(buffer []byte) error {
	if len(buffer) != 1440 {
		return errors.New("short MaxArg buffer")
	}
	return nil
}

func (impl) Add4(a, b, c, d int32) (int32, error) { return a + b + c + d, nil }

func (impl) Reverse(data []byte, reversed *[]byte) error {
	out := make([]byte, len(data))
	for i, v := range data {
		out[len(data)-1-i] = v
	}
	*reversed = out
	return nil
}

func (impl) Greet(name *marshal.Text) (*marshal.Text, error) {
	if name.IsNil() {
		return marshal.NewText("hello, whoever you are"), nil
	}
	return marshal.NewText("hello, " + name.String()), nil
}

func (impl) Increment(counter *uint32) error {
	*counter++
	return nil
}

func newPair(t *testing.T) *TestClient {
	t.Helper()
	ex := transport.NewExchange()
	cfg := proto.Config{RetransInterval: 20 * time.Millisecond, MaxRetries: 6, Workers: 4}
	caller := core.NewNode(ex.Port("caller"), cfg)
	server := core.NewNode(ex.Port("server"), cfg)
	server.Export(ExportTest(impl{}))
	t.Cleanup(func() { caller.Close(); server.Close() })
	return NewTestClient(caller.Bind(server.Addr(), TestName, TestVersion))
}

func TestGeneratedNull(t *testing.T) {
	c := newPair(t)
	if err := c.Null(); err != nil {
		t.Fatal(err)
	}
}

func TestGeneratedMaxResult(t *testing.T) {
	c := newPair(t)
	buf := make([]byte, 1440)
	if err := c.MaxResult(buf); err != nil {
		t.Fatal(err)
	}
	for i, b := range buf {
		if b != byte(i) {
			t.Fatalf("buf[%d] = %d", i, b)
		}
	}
	// Wrong length rejected locally, before any packet.
	if err := c.MaxResult(make([]byte, 10)); err == nil {
		t.Fatal("short buffer accepted")
	}
}

func TestGeneratedMaxArg(t *testing.T) {
	c := newPair(t)
	if err := c.MaxArg(make([]byte, 1440)); err != nil {
		t.Fatal(err)
	}
}

func TestGeneratedAdd4(t *testing.T) {
	c := newPair(t)
	sum, err := c.Add4(1, -2, 30, 13)
	if err != nil {
		t.Fatal(err)
	}
	if sum != 42 {
		t.Fatalf("sum = %d", sum)
	}
}

func TestGeneratedReverse(t *testing.T) {
	c := newPair(t)
	var out []byte
	if err := c.Reverse([]byte("firefly"), &out); err != nil {
		t.Fatal(err)
	}
	if string(out) != "ylferif" {
		t.Fatalf("out = %q", out)
	}
	// Empty input round-trips too.
	if err := c.Reverse(nil, &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("out = %q, want empty", out)
	}
}

func TestGeneratedGreet(t *testing.T) {
	c := newPair(t)
	got, err := c.Greet(marshal.NewText("Birrell"))
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != "hello, Birrell" {
		t.Fatalf("got %q", got.String())
	}
	// NIL Text is a distinct value, preserved on the wire.
	got, err = c.Greet(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != "hello, whoever you are" {
		t.Fatalf("got %q", got.String())
	}
}

func TestGeneratedIncrement(t *testing.T) {
	c := newPair(t)
	counter := uint32(41)
	if err := c.Increment(&counter); err != nil {
		t.Fatal(err)
	}
	if counter != 42 {
		t.Fatalf("counter = %d", counter)
	}
}

func TestGeneratedStubsUnderLoss(t *testing.T) {
	ex := transport.NewExchange()
	cfg := proto.Config{RetransInterval: 10 * time.Millisecond, MaxRetries: 10, Workers: 4}
	caller := core.NewNode(faultnet.Wrap(ex.Port("caller"), faultnet.Loss(0.2), 11), cfg)
	server := core.NewNode(ex.Port("server"), cfg)
	server.Export(ExportTest(impl{}))
	defer caller.Close()
	defer server.Close()
	c := NewTestClient(caller.Bind(server.Addr(), TestName, TestVersion))
	for i := int32(0); i < 30; i++ {
		sum, err := c.Add4(i, i, i, i)
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if sum != 4*i {
			t.Fatalf("call %d: sum %d", i, sum)
		}
	}
}

// TestRegenerationMatchesCheckedIn keeps the generator and the checked-in
// stubs in lockstep: the committed testsvc.go must be exactly what the
// current generator produces from test.idl. (Since the checked-in file
// compiles as part of the build, this also proves generated code compiles.)
func TestRegenerationMatchesCheckedIn(t *testing.T) {
	src, err := os.ReadFile("test.idl")
	if err != nil {
		t.Fatal(err)
	}
	m, err := idl.Parse(string(src))
	if err != nil {
		t.Fatal(err)
	}
	gen, err := idl.Generate(m, "testsvc")
	if err != nil {
		t.Fatal(err)
	}
	checked, err := os.ReadFile("testsvc.go")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gen, checked) {
		t.Fatal("testsvc.go is stale: regenerate with\n  go run ./cmd/stubgen -in internal/testsvc/test.idl -pkg testsvc -out internal/testsvc/testsvc.go")
	}
}
