package kitchensink

import (
	"bytes"
	"os"
	"testing"
	"time"

	"fireflyrpc/internal/core"
	"fireflyrpc/internal/idl"
	"fireflyrpc/internal/marshal"
	"fireflyrpc/internal/proto"
	"fireflyrpc/internal/transport"
)

// impl exercises every parameter mode the stub compiler supports.
type impl struct{}

func (impl) Scalars(a int32, b uint32, c int64, l uint64, f bool, g byte, h float64) (int64, error) {
	sum := int64(a) + int64(b) + c + int64(l) + int64(g) + int64(h)
	if f {
		sum++
	}
	return sum, nil
}

func (impl) OutScalars(a *int32, b *uint32, c *int64, l *uint64, f *bool, g *byte, h *float64) error {
	*a, *b, *c, *l, *f, *g, *h = -1, 2, -3, 4, true, 'x', 2.5
	return nil
}

func (impl) InOutScalar(x *int32) error { *x *= 2; return nil }

func (impl) FixedBoth(src []byte, dst []byte) error {
	for i := range dst {
		dst[i] = src[len(src)-1-i]
	}
	return nil
}

func (impl) FixedInOut(buf []byte) error {
	for i := range buf {
		buf[i] ^= 0xFF
	}
	return nil
}

func (impl) VarEcho(data []byte, out *[]byte) error {
	*out = append([]byte("echo:"), data...)
	return nil
}

func (impl) VarInOut(v *[]byte) error {
	*v = append(*v, *v...) // doubled
	return nil
}

func (impl) TextRoundTrip(name *marshal.Text) (*marshal.Text, error) {
	if name.IsNil() {
		return nil, nil
	}
	return marshal.NewText("<" + name.String() + ">"), nil
}

func (impl) RealMath(x, y float64) (float64, error) { return x*y + 0.5, nil }

func newClient(t *testing.T) *KitchenClient {
	t.Helper()
	ex := transport.NewExchange()
	cfg := proto.Config{RetransInterval: 20 * time.Millisecond, MaxRetries: 6, Workers: 4}
	caller := core.NewNode(ex.Port("caller"), cfg)
	server := core.NewNode(ex.Port("server"), cfg)
	server.Export(ExportKitchen(impl{}))
	t.Cleanup(func() { caller.Close(); server.Close() })
	return NewKitchenClient(caller.Bind(server.Addr(), KitchenName, KitchenVersion))
}

func TestScalarsByValue(t *testing.T) {
	c := newClient(t)
	sum, err := c.Scalars(-10, 20, -30, 40, true, 5, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	// -10+20-30+40+5+2+1 = 28
	if sum != 28 {
		t.Fatalf("sum = %d, want 28", sum)
	}
}

func TestOutScalars(t *testing.T) {
	c := newClient(t)
	var (
		a int32
		b uint32
		d int64
		l uint64
		f bool
		g byte
		h float64
	)
	if err := c.OutScalars(&a, &b, &d, &l, &f, &g, &h); err != nil {
		t.Fatal(err)
	}
	if a != -1 || b != 2 || d != -3 || l != 4 || !f || g != 'x' || h != 2.5 {
		t.Fatalf("out scalars: %v %v %v %v %v %v %v", a, b, d, l, f, g, h)
	}
}

func TestInOutScalar(t *testing.T) {
	c := newClient(t)
	x := int32(21)
	if err := c.InOutScalar(&x); err != nil {
		t.Fatal(err)
	}
	if x != 42 {
		t.Fatalf("x = %d", x)
	}
}

func TestFixedBoth(t *testing.T) {
	c := newClient(t)
	src := make([]byte, 32)
	for i := range src {
		src[i] = byte(i)
	}
	dst := make([]byte, 32)
	if err := c.FixedBoth(src, dst); err != nil {
		t.Fatal(err)
	}
	for i := range dst {
		if dst[i] != byte(31-i) {
			t.Fatalf("dst[%d] = %d", i, dst[i])
		}
	}
	// Wrong lengths rejected before any packet.
	if err := c.FixedBoth(src[:3], dst); err == nil {
		t.Fatal("short src accepted")
	}
}

func TestFixedInOut(t *testing.T) {
	c := newClient(t)
	buf := bytes.Repeat([]byte{0xAA}, 16)
	if err := c.FixedInOut(buf); err != nil {
		t.Fatal(err)
	}
	for _, b := range buf {
		if b != 0x55 {
			t.Fatalf("buf byte %#x, want 0x55", b)
		}
	}
}

func TestVarEcho(t *testing.T) {
	c := newClient(t)
	var out []byte
	if err := c.VarEcho([]byte("abc"), &out); err != nil {
		t.Fatal(err)
	}
	if string(out) != "echo:abc" {
		t.Fatalf("out = %q", out)
	}
}

func TestVarInOut(t *testing.T) {
	c := newClient(t)
	v := []byte("ab")
	if err := c.VarInOut(&v); err != nil {
		t.Fatal(err)
	}
	if string(v) != "abab" {
		t.Fatalf("v = %q", v)
	}
}

func TestTextRoundTrip(t *testing.T) {
	c := newClient(t)
	got, err := c.TextRoundTrip(marshal.NewText("hi"))
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != "<hi>" {
		t.Fatalf("got %q", got.String())
	}
	// NIL in, NIL out.
	got, err = c.TextRoundTrip(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !got.IsNil() {
		t.Fatalf("got %q, want NIL", got.String())
	}
}

func TestRealMath(t *testing.T) {
	c := newClient(t)
	got, err := c.RealMath(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got != 12.5 {
		t.Fatalf("got %v", got)
	}
}

// TestRegenerationMatchesCheckedIn keeps the generator and these stubs in
// lockstep (and proves the all-modes generated code compiles, since this
// package builds).
func TestRegenerationMatchesCheckedIn(t *testing.T) {
	src, err := os.ReadFile("kitchen.idl")
	if err != nil {
		t.Fatal(err)
	}
	m, err := idl.Parse(string(src))
	if err != nil {
		t.Fatal(err)
	}
	gen, err := idl.Generate(m, "kitchensink")
	if err != nil {
		t.Fatal(err)
	}
	checked, err := os.ReadFile("kitchensink.go")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gen, checked) {
		t.Fatal("kitchensink.go is stale: regenerate with\n  go run ./cmd/stubgen -in internal/kitchensink/kitchen.idl -pkg kitchensink -out internal/kitchensink/kitchensink.go")
	}
}
