// Package faultnet is the deterministic network-impairment layer: a single
// decision engine that drops, duplicates, delays, reorders, corrupts, and
// rate-limits frames according to a declarative Profile, wired behind both
// the real transports (see Wrap) and the simulator's Ethernet segment (see
// Profile.SimFaulter). The same profile therefore produces the same *kind*
// of network on the real stack and on the model, and — because every random
// decision is a pure function of (seed, direction, frame index) — the same
// seed produces the identical impairment schedule on every run, regardless
// of goroutine interleaving. That purity is the package's load-bearing
// invariant: tests compare schedules byte for byte, and the simulator's
// determinism guarantee would otherwise not survive fault injection.
//
// A Profile is JSON-serializable so `fireflybench -faulty profile.json` can
// run any benchmark cell under impairment:
//
//	{"name": "lossy", "out": {"drop": 0.1}, "in": {"drop": 0.1, "dup": 0.05}}
//
// Scripted partitions and phase changes use a Plan of timed transitions:
// each Phase replaces the active impairments once the profile has been
// running for its After duration (a total partition is a phase with drop 1).
package faultnet

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// Dir distinguishes the two impairment directions of a wrapped endpoint:
// DirOut covers frames it sends, DirIn frames it receives. The simulated
// Ethernet is a single shared wire, so its faulter applies DirOut to every
// frame regardless of station.
type Dir uint8

const (
	DirOut Dir = iota
	DirIn
)

func (d Dir) String() string {
	if d == DirIn {
		return "in"
	}
	return "out"
}

// Duration is time.Duration with human-readable JSON ("2ms"), so profile
// files stay writable by hand. Plain nanosecond numbers are also accepted.
type Duration time.Duration

// MarshalJSON renders the duration as its String form.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts either a duration string ("1.5ms") or nanoseconds.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("faultnet: bad duration %q: %v", s, err)
		}
		*d = Duration(v)
		return nil
	}
	var ns int64
	if err := json.Unmarshal(b, &ns); err != nil {
		return fmt.Errorf("faultnet: duration must be a string or nanoseconds: %s", b)
	}
	*d = Duration(ns)
	return nil
}

// Impair is one direction's impairment settings. The zero value impairs
// nothing and costs the fast path nothing (no random draws are made).
type Impair struct {
	// Drop is the probability in [0,1] that a frame is silently discarded.
	Drop float64 `json:"drop,omitempty"`
	// Dup is the probability that a frame is delivered twice. The copy is
	// always delivered from the impairment scheduler's own goroutine, so
	// duplicates genuinely race the original — which is the point.
	Dup float64 `json:"dup,omitempty"`
	// Reorder is the probability that a frame is held back by ReorderDelay,
	// letting later frames overtake it.
	Reorder float64 `json:"reorder,omitempty"`
	// ReorderDelay is the hold-back applied to reordered frames; when zero
	// and Reorder is set, 1ms is used.
	ReorderDelay Duration `json:"reorder_delay,omitempty"`
	// Delay is a fixed latency added to every frame.
	Delay Duration `json:"delay,omitempty"`
	// Jitter adds a uniform [0, Jitter) latency on top of Delay.
	Jitter Duration `json:"jitter,omitempty"`
	// Corrupt is the probability that one byte of the frame is XOR-flipped.
	Corrupt float64 `json:"corrupt,omitempty"`
	// BandwidthBps, when positive, serializes frames through a link of this
	// bit rate: each frame's transmission occupies size*8/BandwidthBps
	// seconds and queues behind the previous frame's.
	BandwidthBps int64 `json:"bandwidth_bps,omitempty"`
}

// zero reports whether the settings impair nothing — the fast-path check
// that keeps a wrapped transport free of random draws under a zero profile.
func (im Impair) zero() bool {
	return im.Drop == 0 && im.Dup == 0 && im.Reorder == 0 && im.Delay == 0 &&
		im.Jitter == 0 && im.Corrupt == 0 && im.BandwidthBps == 0
}

// Validate rejects out-of-range settings.
func (im Impair) validate(where string) error {
	for _, p := range []struct {
		name string
		v    float64
	}{{"drop", im.Drop}, {"dup", im.Dup}, {"reorder", im.Reorder}, {"corrupt", im.Corrupt}} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("faultnet: %s.%s = %v out of [0,1]", where, p.name, p.v)
		}
	}
	if im.Delay < 0 || im.Jitter < 0 || im.ReorderDelay < 0 {
		return fmt.Errorf("faultnet: %s has a negative duration", where)
	}
	if im.BandwidthBps < 0 {
		return fmt.Errorf("faultnet: %s.bandwidth_bps = %d negative", where, im.BandwidthBps)
	}
	return nil
}

// Phase is one timed transition in a profile's Plan: After the profile has
// run this long, Out and In replace the active impairments entirely.
type Phase struct {
	After Duration `json:"after"`
	Out   Impair   `json:"out,omitempty"`
	In    Impair   `json:"in,omitempty"`
}

// Profile is a complete impairment description: the initial per-direction
// settings plus an optional Plan of timed transitions.
type Profile struct {
	Name string  `json:"name,omitempty"`
	Out  Impair  `json:"out,omitempty"`
	In   Impair  `json:"in,omitempty"`
	Plan []Phase `json:"plan,omitempty"`
}

// Loss is the common symmetric-loss profile: drop probability p in both
// directions.
func Loss(p float64) Profile {
	return Profile{
		Name: fmt.Sprintf("loss%g", p),
		Out:  Impair{Drop: p},
		In:   Impair{Drop: p},
	}
}

// Validate checks every phase's settings and sorts the Plan by After.
func (p *Profile) Validate() error {
	if err := p.Out.validate("out"); err != nil {
		return err
	}
	if err := p.In.validate("in"); err != nil {
		return err
	}
	for i := range p.Plan {
		if err := p.Plan[i].Out.validate(fmt.Sprintf("plan[%d].out", i)); err != nil {
			return err
		}
		if err := p.Plan[i].In.validate(fmt.Sprintf("plan[%d].in", i)); err != nil {
			return err
		}
		if p.Plan[i].After < 0 {
			return fmt.Errorf("faultnet: plan[%d].after negative", i)
		}
	}
	sort.SliceStable(p.Plan, func(i, j int) bool { return p.Plan[i].After < p.Plan[j].After })
	return nil
}

// at returns the impairments active for dir once the profile has been
// running for elapsed.
func (p *Profile) at(dir Dir, elapsed time.Duration) Impair {
	out, in := p.Out, p.In
	for i := range p.Plan {
		if elapsed < time.Duration(p.Plan[i].After) {
			break
		}
		out, in = p.Plan[i].Out, p.Plan[i].In
	}
	if dir == DirIn {
		return in
	}
	return out
}

// Load reads and validates a profile JSON file.
func Load(path string) (*Profile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var p Profile
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("faultnet: %s: %v", path, err)
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("faultnet: %s: %v", path, err)
	}
	if p.Name == "" {
		p.Name = strings.TrimSuffix(strings.TrimSuffix(path, ".json"), ".profile")
	}
	return &p, nil
}

// Verdict is the engine's decision for one frame.
type Verdict struct {
	Drop       bool
	Dup        bool
	Delay      time.Duration // added latency for the frame itself
	DupDelay   time.Duration // added latency for the duplicate copy
	CorruptAt  int           // byte offset to flip; -1 = none
	CorruptXor byte          // non-zero flip mask
}

// Stats counts the impairments actually applied in one direction.
type Stats struct {
	Frames    int64
	Drops     int64
	Dups      int64
	Delayed   int64
	Reordered int64
	Corrupted int64
}

// Impairer is the decision engine: one per wrapped endpoint. Decide is
// safe for concurrent use; the per-direction frame counters serialize the
// decision indices, and every random draw derives from (seed, dir, index)
// alone, so the decision schedule is a pure function of the seed.
type Impairer struct {
	prof  atomic.Pointer[Profile]
	seed  uint64
	count [2]atomic.Uint64
	// nextFreeNs is the per-direction bandwidth serialization clock: the
	// elapsed-time at which the modeled link becomes idle again.
	nextFreeNs [2]atomic.Int64

	frames    [2]atomic.Int64
	drops     [2]atomic.Int64
	dups      [2]atomic.Int64
	delayed   [2]atomic.Int64
	reordered [2]atomic.Int64
	corrupted [2]atomic.Int64
}

// NewImpairer builds an engine for prof with the given seed. The profile is
// validated; an invalid profile panics (profiles from files go through
// Load, which returns the error instead).
func NewImpairer(prof Profile, seed uint64) *Impairer {
	if err := prof.Validate(); err != nil {
		panic(err)
	}
	im := &Impairer{seed: seed}
	im.prof.Store(&prof)
	return im
}

// SetProfile swaps the active profile; safe while traffic is flowing. The
// decision indices keep counting, so the swap does not restart the
// schedule. Scripted tests use this for ad-hoc transitions that a Plan
// cannot express (e.g. "heal when the test says so").
func (im *Impairer) SetProfile(prof Profile) {
	if err := prof.Validate(); err != nil {
		panic(err)
	}
	im.prof.Store(&prof)
}

// Profile returns the active profile.
func (im *Impairer) Profile() Profile { return *im.prof.Load() }

// Stats returns the per-direction impairment counters.
func (im *Impairer) Stats(dir Dir) Stats {
	return Stats{
		Frames:    im.frames[dir].Load(),
		Drops:     im.drops[dir].Load(),
		Dups:      im.dups[dir].Load(),
		Delayed:   im.delayed[dir].Load(),
		Reordered: im.reordered[dir].Load(),
		Corrupted: im.corrupted[dir].Load(),
	}
}

// splitmix64 is the same finalizer the simulator's RNG uses (sim.RNG), kept
// literal here so the schedule a seed produces never changes underneath the
// determinism tests.
func splitmix64(state uint64) (uint64, uint64) {
	state += 0x9e3779b97f4a7c15
	z := state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return state, z ^ (z >> 31)
}

// draw is a tiny value-type random stream for one frame's decisions,
// seeded from (impairer seed, direction, frame index) so the schedule is
// order-independent: whichever goroutine asks first, frame k of direction d
// always gets the same verdict.
type draw struct{ state uint64 }

func (d *draw) next() uint64 {
	var v uint64
	d.state, v = splitmix64(d.state)
	return v
}

func (d *draw) f64() float64 { return float64(d.next()>>11) / (1 << 53) }

func (d *draw) duration(max time.Duration) time.Duration {
	if max <= 0 {
		return 0
	}
	return time.Duration(d.next() % uint64(max))
}

// Decide renders the verdict for the next frame in dir. elapsed is how long
// the profile has been running (wall time on the real stack, simulated time
// under the kernel) and selects the active Plan phase; size is the frame
// length in bytes (for bandwidth serialization and corruption offsets).
func (im *Impairer) Decide(dir Dir, elapsed time.Duration, size int) Verdict {
	idx := im.count[dir].Add(1) - 1
	im.frames[dir].Add(1)
	act := im.prof.Load().at(dir, elapsed)
	v := Verdict{CorruptAt: -1}
	if act.zero() {
		return v
	}
	d := draw{state: im.seed ^ (uint64(dir)+1)*0x9E3779B97F4A7C15 ^ idx*0xD1B54A32D192ED03}
	// One draw per impairment kind, always in the same order, whether or not
	// the kind is enabled — so enabling one impairment does not reshuffle
	// another's schedule.
	pDrop, pDup, pReorder, pCorrupt := d.f64(), d.f64(), d.f64(), d.f64()
	jitter := d.duration(time.Duration(act.Jitter))
	corruptPos, corruptMask := d.next(), byte(d.next())|1
	if pDrop < act.Drop {
		im.drops[dir].Add(1)
		v.Drop = true
		return v
	}
	v.Delay = time.Duration(act.Delay) + jitter
	if pReorder < act.Reorder {
		hold := time.Duration(act.ReorderDelay)
		if hold == 0 {
			hold = time.Millisecond
		}
		v.Delay += hold
		im.reordered[dir].Add(1)
	}
	if pDup < act.Dup {
		v.Dup = true
		v.DupDelay = v.Delay
		im.dups[dir].Add(1)
	}
	if pCorrupt < act.Corrupt && size > 0 {
		v.CorruptAt = int(corruptPos % uint64(size))
		v.CorruptXor = corruptMask
		im.corrupted[dir].Add(1)
	}
	if act.BandwidthBps > 0 && size > 0 {
		txNs := int64(size) * 8 * int64(time.Second) / act.BandwidthBps
		nowNs := elapsed.Nanoseconds()
		for {
			free := im.nextFreeNs[dir].Load()
			start := nowNs
			if free > start {
				start = free
			}
			if im.nextFreeNs[dir].CompareAndSwap(free, start+txNs) {
				v.Delay += time.Duration(start + txNs - nowNs)
				break
			}
		}
	}
	if v.Delay > 0 {
		im.delayed[dir].Add(1)
	}
	return v
}

// Schedule renders the first n decisions of dir for frames of the given
// size at elapsed 0, one per line — the determinism witness: the same
// (profile, seed) must produce the identical string on every run and
// platform. Bandwidth serialization is excluded (it is a function of real
// arrival times, not of the seed).
func Schedule(prof Profile, seed uint64, dir Dir, n, size int) string {
	p := prof
	for i := range p.Plan {
		// Neutralize time-dependent state so the dump stays pure.
		p.Plan[i].Out.BandwidthBps = 0
		p.Plan[i].In.BandwidthBps = 0
	}
	p.Out.BandwidthBps = 0
	p.In.BandwidthBps = 0
	im := NewImpairer(p, seed)
	var b strings.Builder
	for i := 0; i < n; i++ {
		v := im.Decide(dir, 0, size)
		fmt.Fprintf(&b, "%s %4d drop=%t dup=%t delay=%s dupdelay=%s corrupt=%d xor=%#x\n",
			dir, i, v.Drop, v.Dup, v.Delay, v.DupDelay, v.CorruptAt, v.CorruptXor)
	}
	return b.String()
}
