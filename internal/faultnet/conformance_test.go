package faultnet

import (
	"testing"

	"fireflyrpc/internal/transport"
	"fireflyrpc/internal/transport/transporttest"
)

// TestConformance runs the shared transport contract suite against a
// zero-profile wrap: fault injection disabled, the wrapper must be a
// perfectly transparent member of the one transport contract.
func TestConformance(t *testing.T) {
	transporttest.Run(t, "FaultnetWrap", func(t *testing.T) (transport.Transport, transport.Transport) {
		ex := transport.NewExchange()
		a := Wrap(ex.Port("conf-a"), Profile{}, 1)
		b := Wrap(ex.Port("conf-b"), Profile{}, 2)
		t.Cleanup(func() { a.Close(); b.Close() })
		return a, b
	})
}
