package faultnet

import (
	"time"

	"fireflyrpc/internal/ether"
	"fireflyrpc/internal/sim"
)

// SimFaulter binds a profile to the simulated Ethernet: install it with
// Segment.SetFaulter and the same impairment schedule that Wrap applies to
// a real transport plays out on the model, with delays and duplicates
// scheduled through the kernel so runs stay deterministic.
//
// The simulated segment is a single shared wire with no notion of
// direction, so the profile's Out impairments govern every frame (use a
// symmetric profile when comparing against a really-wrapped endpoint).
// Plan phases advance on simulated time.
type SimFaulter struct {
	im *Impairer
	k  *sim.Kernel
}

// SimFaulter builds the segment hook for p under the kernel's clock.
func (p Profile) SimFaulter(seed uint64, k *sim.Kernel) *SimFaulter {
	return &SimFaulter{im: NewImpairer(p, seed), k: k}
}

// Impairer exposes the engine (for Stats and SetProfile).
func (f *SimFaulter) Impairer() *Impairer { return f.im }

// Frame implements ether.Faulter.
func (f *SimFaulter) Frame(size int) ether.Fault {
	v := f.im.Decide(DirOut, time.Duration(f.k.Now()), size)
	return ether.Fault{
		Drop:       v.Drop,
		Dup:        v.Dup,
		Delay:      v.Delay,
		DupDelay:   v.DupDelay,
		CorruptAt:  v.CorruptAt,
		CorruptXor: v.CorruptXor,
	}
}
