package faultnet

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"fireflyrpc/internal/transport"
)

// The determinism invariant: the decision schedule is a pure function of
// (profile, seed, direction, frame index). Same seed, same schedule; any
// other seed, a different one.
func TestScheduleDeterministic(t *testing.T) {
	prof := Profile{
		Out: Impair{Drop: 0.2, Dup: 0.1, Corrupt: 0.05, Delay: Duration(time.Millisecond), Jitter: Duration(500 * time.Microsecond)},
		In:  Impair{Drop: 0.3, Reorder: 0.1},
	}
	a := Schedule(prof, 42, DirOut, 200, 64)
	b := Schedule(prof, 42, DirOut, 200, 64)
	if a != b {
		t.Fatal("same (profile, seed, dir) produced different schedules")
	}
	if c := Schedule(prof, 43, DirOut, 200, 64); c == a {
		t.Fatal("different seeds produced identical schedules")
	}
	if d := Schedule(prof, 42, DirIn, 200, 64); d == a {
		t.Fatal("different directions produced identical schedules")
	}
}

// Decisions derive from the frame index alone, not from draw-stream
// position: interleaving directions or skipping enabled impairments must
// not reshuffle another direction's schedule.
func TestScheduleOrderIndependent(t *testing.T) {
	prof := Loss(0.5)
	want := Schedule(prof, 9, DirOut, 50, 32)

	// Replay the same 50 Out decisions with In decisions interleaved; the
	// Out verdicts must be identical.
	im := NewImpairer(prof, 9)
	var drops []bool
	for i := 0; i < 50; i++ {
		im.Decide(DirIn, 0, 32) // interleaved noise
		drops = append(drops, im.Decide(DirOut, 0, 32).Drop)
	}
	im2 := NewImpairer(prof, 9)
	for i := 0; i < 50; i++ {
		if got := im2.Decide(DirOut, 0, 32).Drop; got != drops[i] {
			t.Fatalf("frame %d: interleaving In decisions changed the Out schedule", i)
		}
	}
	_ = want
}

func TestZeroProfileIsTransparent(t *testing.T) {
	im := NewImpairer(Profile{}, 1)
	for i := 0; i < 100; i++ {
		v := im.Decide(DirOut, 0, 128)
		if v.Drop || v.Dup || v.Delay != 0 || v.CorruptAt >= 0 {
			t.Fatalf("zero profile impaired frame %d: %+v", i, v)
		}
	}
	s := im.Stats(DirOut)
	if s.Frames != 100 || s.Drops != 0 || s.Dups != 0 || s.Delayed != 0 || s.Corrupted != 0 {
		t.Fatalf("stats %+v", s)
	}
}

func TestDropRateConverges(t *testing.T) {
	im := NewImpairer(Loss(0.3), 7)
	const n = 20000
	drops := 0
	for i := 0; i < n; i++ {
		if im.Decide(DirOut, 0, 64).Drop {
			drops++
		}
	}
	rate := float64(drops) / n
	if rate < 0.27 || rate > 0.33 {
		t.Fatalf("drop rate %.4f, want ~0.30", rate)
	}
}

// A Plan of timed phases switches impairments at the scripted elapsed
// times: here a 10ms blackout that then heals.
func TestPlanPartitionThenHeal(t *testing.T) {
	prof := Profile{
		Plan: []Phase{
			{After: 0, Out: Impair{Drop: 1}, In: Impair{Drop: 1}},
			{After: Duration(10 * time.Millisecond)},
		},
	}
	im := NewImpairer(prof, 1)
	if !im.Decide(DirOut, 5*time.Millisecond, 64).Drop {
		t.Fatal("frame during the partition phase not dropped")
	}
	if im.Decide(DirOut, 15*time.Millisecond, 64).Drop {
		t.Fatal("frame after the heal phase dropped")
	}
}

func TestProfileJSONRoundTrip(t *testing.T) {
	prof := Profile{
		Name: "lossy-slow",
		Out:  Impair{Drop: 0.1, Delay: Duration(1500 * time.Microsecond), BandwidthBps: 1e6},
		In:   Impair{Dup: 0.05, Jitter: Duration(time.Millisecond)},
		Plan: []Phase{{After: Duration(time.Second), Out: Impair{Drop: 1}}},
	}
	data, err := json.Marshal(&prof)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "prof.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != prof.Name || got.Out != prof.Out || got.In != prof.In ||
		len(got.Plan) != 1 || got.Plan[0] != prof.Plan[0] {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, prof)
	}
	// Durations accept human strings too.
	var d Duration
	if err := json.Unmarshal([]byte(`"1.5ms"`), &d); err != nil {
		t.Fatal(err)
	}
	if time.Duration(d) != 1500*time.Microsecond {
		t.Fatalf("parsed %v", time.Duration(d))
	}
}

func TestLoadRejectsInvalid(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte(`{"out": {"drop": 1.5}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("Load accepted a drop probability > 1")
	}
}

// ---- Transport wrapper ----

// collect attaches a receiver to p that appends copies of every frame.
type collector struct {
	mu     sync.Mutex
	frames [][]byte
}

func (c *collector) recv(_ transport.Addr, frame []byte) {
	c.mu.Lock()
	c.frames = append(c.frames, append([]byte(nil), frame...))
	c.mu.Unlock()
}

func (c *collector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.frames)
}

func waitCount(t *testing.T, c *collector, want int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for c.count() < want {
		if time.Now().After(deadline) {
			t.Fatalf("got %d frames, want %d", c.count(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// wrapPair builds a wrapped port "a" and a plain port "b" on one exchange.
func wrapPair(t *testing.T, prof Profile, seed uint64) (*Transport, *collector, *collector) {
	t.Helper()
	ex := transport.NewExchange()
	ft := Wrap(ex.Port("a"), prof, seed)
	b := ex.Port("b")
	ca, cb := &collector{}, &collector{}
	ft.SetReceiver(ca.recv)
	b.SetReceiver(cb.recv)
	t.Cleanup(func() {
		ft.Close()
		b.Close()
	})
	return ft, ca, cb
}

func TestWrapPassThrough(t *testing.T) {
	ft, _, cb := wrapPair(t, Profile{}, 1)
	msg := []byte("through the clean wrapper")
	if err := ft.Send(transport.AddrOf("b"), msg); err != nil {
		t.Fatal(err)
	}
	waitCount(t, cb, 1)
	cb.mu.Lock()
	defer cb.mu.Unlock()
	if !bytes.Equal(cb.frames[0], msg) {
		t.Fatalf("frame corrupted by clean wrapper: %q", cb.frames[0])
	}
}

func TestWrapDropsOutbound(t *testing.T) {
	ft, _, cb := wrapPair(t, Profile{Out: Impair{Drop: 1}}, 1)
	for i := 0; i < 10; i++ {
		if err := ft.Send(transport.AddrOf("b"), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(30 * time.Millisecond)
	if n := cb.count(); n != 0 {
		t.Fatalf("%d frames crossed a fully-partitioned outbound link", n)
	}
	if s := ft.Impairer().Stats(DirOut); s.Drops != 10 {
		t.Fatalf("stats %+v, want 10 drops", s)
	}
}

func TestWrapDropsInbound(t *testing.T) {
	ex := transport.NewExchange()
	ft := Wrap(ex.Port("a"), Profile{In: Impair{Drop: 1}}, 1)
	b := ex.Port("b")
	defer ft.Close()
	defer b.Close()
	ca := &collector{}
	ft.SetReceiver(ca.recv)
	for i := 0; i < 10; i++ {
		if err := b.Send(transport.AddrOf("a"), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(30 * time.Millisecond)
	if n := ca.count(); n != 0 {
		t.Fatalf("%d inbound frames crossed a fully-partitioned link", n)
	}
}

func TestWrapDuplicates(t *testing.T) {
	ft, _, cb := wrapPair(t, Profile{Out: Impair{Dup: 1}}, 1)
	for i := 0; i < 5; i++ {
		if err := ft.Send(transport.AddrOf("b"), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	waitCount(t, cb, 10)
}

func TestWrapDelays(t *testing.T) {
	const lat = 30 * time.Millisecond
	ft, _, cb := wrapPair(t, Profile{Out: Impair{Delay: Duration(lat)}}, 1)
	start := time.Now()
	if err := ft.Send(transport.AddrOf("b"), []byte("slow")); err != nil {
		t.Fatal(err)
	}
	waitCount(t, cb, 1)
	if elapsed := time.Since(start); elapsed < lat {
		t.Fatalf("frame arrived after %v, configured delay %v", elapsed, lat)
	}
}

func TestWrapCorrupts(t *testing.T) {
	ft, _, cb := wrapPair(t, Profile{Out: Impair{Corrupt: 1}}, 1)
	msg := bytes.Repeat([]byte{0xAA}, 64)
	sent := append([]byte(nil), msg...)
	if err := ft.Send(transport.AddrOf("b"), msg); err != nil {
		t.Fatal(err)
	}
	waitCount(t, cb, 1)
	if !bytes.Equal(msg, sent) {
		t.Fatal("corruption mutated the caller's buffer (must corrupt a copy)")
	}
	cb.mu.Lock()
	defer cb.mu.Unlock()
	if bytes.Equal(cb.frames[0], sent) {
		t.Fatal("Corrupt=1 frame arrived intact")
	}
	diff := 0
	for i := range sent {
		if cb.frames[0][i] != sent[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("%d bytes differ, want exactly 1 flipped byte", diff)
	}
}

// The zero profile's Send path must not tax the fast path it wraps: the
// wrapper adds zero allocations over the bare transport. (The bare
// exchange itself may allocate pooled frames while its async receiver
// lags, so the check is differential.)
func TestWrapZeroProfileAllocs(t *testing.T) {
	measure := func(tr transport.Transport, dst transport.Addr) float64 {
		msg := make([]byte, 256)
		return testing.AllocsPerRun(200, func() {
			if err := tr.Send(dst, msg); err != nil {
				t.Fatal(err)
			}
			// Let the exchange's delivery loop drain so pooled frames
			// recycle instead of accumulating.
			time.Sleep(50 * time.Microsecond)
		})
	}
	ex := transport.NewExchange()
	bare := ex.Port("bare")
	sink := ex.Port("sink")
	defer bare.Close()
	defer sink.Close()
	sink.SetReceiver(func(transport.Addr, []byte) {})
	base := measure(bare, transport.AddrOf("sink"))

	ex2 := transport.NewExchange()
	ft := Wrap(ex2.Port("a"), Profile{}, 1)
	sink2 := ex2.Port("sink")
	defer ft.Close()
	defer sink2.Close()
	sink2.SetReceiver(func(transport.Addr, []byte) {})
	wrapped := measure(ft, transport.AddrOf("sink"))

	if wrapped > base {
		t.Fatalf("clean wrapper Send allocates %.2f/op vs %.2f/op bare: the pass-through path must add nothing", wrapped, base)
	}
}

func TestWrapSetProfileSwapsLive(t *testing.T) {
	ft, _, cb := wrapPair(t, Loss(1), 1)
	dst := transport.AddrOf("b")
	if err := ft.Send(dst, []byte("lost")); err != nil {
		t.Fatal(err)
	}
	ft.Impairer().SetProfile(Profile{})
	if err := ft.Send(dst, []byte("delivered")); err != nil {
		t.Fatal(err)
	}
	waitCount(t, cb, 1)
	cb.mu.Lock()
	defer cb.mu.Unlock()
	if string(cb.frames[0]) != "delivered" {
		t.Fatalf("got %q", cb.frames[0])
	}
}

func TestWrapCloseReleasesQueued(t *testing.T) {
	ex := transport.NewExchange()
	ft := Wrap(ex.Port("a"), Profile{Out: Impair{Delay: Duration(time.Hour)}}, 1)
	b := ex.Port("b")
	defer b.Close()
	for i := 0; i < 8; i++ {
		if err := ft.Send(transport.AddrOf("b"), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := ft.Close(); err != nil {
		t.Fatal(err)
	}
	if n := ft.frames.InUse(); n != 0 {
		t.Fatalf("%d pooled frames leaked across Close", n)
	}
}
