package faultnet

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"testing"
	"time"

	"fireflyrpc/internal/transport"
)

// numbered builds n frames of size bytes carrying their index.
func numberedFrames(dst transport.Addr, n, size int) []transport.Frame {
	frames := make([]transport.Frame, n)
	for i := range frames {
		data := make([]byte, size)
		binary.BigEndian.PutUint32(data, uint32(i))
		frames[i] = transport.Frame{Dst: dst, Data: data}
	}
	return frames
}

// survivors replays the decision schedule (a pure function of seed) and
// returns how many of n outbound frames of the given size get through.
func survivors(prof Profile, seed uint64, n, size int) int {
	im := NewImpairer(prof, seed)
	alive := 0
	for i := 0; i < n; i++ {
		if !im.Decide(DirOut, 0, size).Drop {
			alive++
		}
	}
	return alive
}

// The wrapper advertises a batched datapath exactly when the wrapped
// transport has one.
func TestWrapBatchEnabledForwards(t *testing.T) {
	ex := transport.NewExchange()
	ft := Wrap(ex.Port("a"), Profile{}, 1)
	defer ft.Close()
	if transport.SupportsBatch(ft) {
		t.Fatal("wrapper over the exchange claims batch support")
	}

	bt, err := transport.ListenUDPBatch("127.0.0.1:0", transport.UDPOptions{})
	if err != nil {
		t.Skip("no loopback:", err)
	}
	fb := Wrap(bt, Profile{}, 1)
	defer fb.Close()
	if transport.SupportsBatch(fb) != transport.SupportsBatch(bt) {
		t.Fatal("wrapper disagrees with inner about batch support")
	}
	if _, ok := fb.TransportStats(); !ok {
		t.Fatal("wrapper does not forward transport stats")
	}
}

// SendBatch and Send must consume the decision schedule identically: the
// same seed yields the same survivor sequence on either datapath. Run over
// the in-process exchange, where delivery is inline and exact.
func TestWrapBatchScheduleParity(t *testing.T) {
	prof := Profile{Out: Impair{Drop: 0.3}}
	const n, seed = 200, 42

	run := func(batch bool) [][]byte {
		ex := transport.NewExchange()
		ft := Wrap(ex.Port("a"), prof, seed)
		b := ex.Port("b")
		defer ft.Close()
		defer b.Close()
		cb := &collector{}
		b.SetReceiver(cb.recv)
		frames := numberedFrames(transport.AddrOf("b"), n, 32)
		if batch {
			if sent, err := ft.SendBatch(frames); err != nil || sent != n {
				t.Fatalf("SendBatch = %d, %v", sent, err)
			}
		} else {
			for _, f := range frames {
				if err := ft.Send(f.Dst, f.Data); err != nil {
					t.Fatal(err)
				}
			}
		}
		waitCount(t, cb, survivors(prof, seed, n, 32))
		cb.mu.Lock()
		defer cb.mu.Unlock()
		return append([][]byte(nil), cb.frames...)
	}

	perFrame := run(false)
	batched := run(true)
	if len(perFrame) != len(batched) {
		t.Fatalf("survivor counts differ: per-frame %d, batched %d", len(perFrame), len(batched))
	}
	for i := range perFrame {
		if !bytes.Equal(perFrame[i], batched[i]) {
			t.Fatalf("survivor %d differs: per-frame seq %d, batched seq %d",
				i, binary.BigEndian.Uint32(perFrame[i]), binary.BigEndian.Uint32(batched[i]))
		}
	}
}

// The loopback equivalence witness: under a reorder+loss profile with a
// fixed seed, the batched UDP engine (GSO, sendmmsg) and the per-frame UDP
// path deliver the identical frame sequence. The hold-back is coarse
// (50 ms ≫ scheduling noise) so the reordering itself is deterministic.
func TestBatchedPerFrameEquivalenceUnderReorder(t *testing.T) {
	prof := Profile{Out: Impair{Drop: 0.2, Reorder: 0.3, ReorderDelay: Duration(50 * time.Millisecond)}}
	const n, seed = 96, 7
	const size = 256

	run := func(batch bool) [][]byte {
		recvT, err := transport.ListenUDP("127.0.0.1:0")
		if err != nil {
			t.Skip("no loopback:", err)
		}
		defer recvT.Close()
		cb := &collector{}
		recvT.SetReceiver(cb.recv)

		var inner transport.Transport
		if batch {
			inner, err = transport.ListenUDPBatch("127.0.0.1:0", transport.UDPOptions{})
		} else {
			inner, err = transport.ListenUDP("127.0.0.1:0")
		}
		if err != nil {
			t.Skip("no loopback:", err)
		}
		ft := Wrap(inner, prof, seed)
		defer ft.Close()

		frames := numberedFrames(recvT.LocalAddr(), n, size)
		if batch {
			if sent, err := ft.SendBatch(frames); err != nil || sent != n {
				t.Fatalf("SendBatch = %d, %v", sent, err)
			}
		} else {
			for _, f := range frames {
				if err := ft.Send(f.Dst, f.Data); err != nil {
					t.Fatal(err)
				}
			}
		}
		want := survivors(prof, seed, n, size)
		waitCount(t, cb, want)
		// Give stragglers a moment to prove there are none.
		time.Sleep(20 * time.Millisecond)
		cb.mu.Lock()
		defer cb.mu.Unlock()
		if len(cb.frames) != want {
			t.Fatalf("delivered %d frames, want %d", len(cb.frames), want)
		}
		return append([][]byte(nil), cb.frames...)
	}

	perFrame := run(false)
	batched := run(true)
	var diffs []string
	for i := range perFrame {
		if !bytes.Equal(perFrame[i], batched[i]) {
			diffs = append(diffs, fmt.Sprintf("pos %d: per-frame seq %d vs batched seq %d",
				i, binary.BigEndian.Uint32(perFrame[i]), binary.BigEndian.Uint32(batched[i])))
		}
	}
	if len(diffs) > 0 {
		t.Fatalf("sequences diverge at %d positions; first: %s", len(diffs), diffs[0])
	}
}

// A dropped frame mid-batch must not sever the frames after it.
func TestWrapBatchDropKeepsRest(t *testing.T) {
	prof := Profile{Out: Impair{Drop: 1}, Plan: nil}
	ex := transport.NewExchange()
	ft := Wrap(ex.Port("a"), prof, 3)
	b := ex.Port("b")
	defer ft.Close()
	defer b.Close()
	cb := &collector{}
	b.SetReceiver(cb.recv)
	frames := numberedFrames(transport.AddrOf("b"), 10, 16)
	if sent, err := ft.SendBatch(frames); err != nil || sent != 10 {
		t.Fatalf("SendBatch = %d, %v", sent, err)
	}
	time.Sleep(20 * time.Millisecond)
	if n := cb.count(); n != 0 {
		t.Fatalf("%d frames crossed a fully-partitioned link via SendBatch", n)
	}
	if s := ft.Impairer().Stats(DirOut); s.Frames != 10 || s.Drops != 10 {
		t.Fatalf("stats %+v: batch frames not decided individually", s)
	}
}
