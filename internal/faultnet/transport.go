package faultnet

import (
	"container/heap"
	"sync"
	"sync/atomic"
	"time"

	"fireflyrpc/internal/buffer"
	"fireflyrpc/internal/transport"
)

// Transport impairs a real transport: frames the wrapped endpoint sends
// pass through the engine as DirOut, frames it receives as DirIn. It wraps
// anything implementing transport.Transport — an Exchange MemPort for
// in-process tests, a UDP socket for loopback/network runs — so one
// impairment implementation covers both real transports.
//
// With a zero profile the wrapper is pass-through: Send forwards the
// caller's slice unchanged and receive callbacks are delivered inline, so
// the protocol's zero-allocation fast path and its budgets survive intact.
// Any delayed or duplicated frame is copied into a pooled buffer and
// delivered from the wrapper's scheduler goroutine — deliberately
// concurrent with the transport's own receive goroutine, because that is
// the concurrency a real lossy network exhibits and the protocol must
// tolerate.
type Transport struct {
	inner transport.Transport
	im    *Impairer
	start time.Time

	recv   atomic.Value // transport.Receiver
	closed atomic.Bool

	mu     sync.Mutex
	events eventHeap
	seqCtr uint64 // heap tie-break, guarded by mu
	kick   chan struct{}
	quit   chan struct{}
	done   chan struct{}

	frames buffer.FramePool
}

// event is one deferred frame action: a delayed outbound send (dst != nil)
// or a delayed inbound delivery (src != nil).
type event struct {
	dueNs int64
	seq   uint64 // tie-break so equal deadlines pop in schedule order
	src   transport.Addr
	dst   transport.Addr
	f     *buffer.Frame
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].dueNs != h[j].dueNs {
		return h[i].dueNs < h[j].dueNs
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// Wrap builds an impaired view of inner under prof with the given seed.
func Wrap(inner transport.Transport, prof Profile, seed uint64) *Transport {
	t := &Transport{
		inner: inner,
		im:    NewImpairer(prof, seed),
		start: time.Now(),
		kick:  make(chan struct{}, 1),
		quit:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	inner.SetReceiver(t.onFrame)
	go t.loop()
	return t
}

// Impairer exposes the engine (for SetProfile swaps and Stats).
func (t *Transport) Impairer() *Impairer { return t.im }

func (t *Transport) elapsed() time.Duration { return time.Since(t.start) }

// Send implements transport.Transport.
func (t *Transport) Send(dst transport.Addr, frame []byte) error {
	if t.closed.Load() {
		return transport.ErrClosed
	}
	v := t.im.Decide(DirOut, t.elapsed(), len(frame))
	if v.Drop {
		return nil // lost, as on the wire
	}
	if !v.Dup && v.Delay == 0 && v.CorruptAt < 0 {
		return t.inner.Send(dst, frame) // pass-through fast path
	}
	if v.Dup {
		t.schedule(event{dst: dst}, frame, v.DupDelay, -1, 0)
	}
	if v.Delay == 0 && v.CorruptAt < 0 {
		return t.inner.Send(dst, frame)
	}
	t.schedule(event{dst: dst}, frame, v.Delay, v.CorruptAt, v.CorruptXor)
	return nil
}

// SendBatch implements transport.BatchSender. The impairment engine sees
// every frame individually, in submission order — exactly the Decide
// sequence the per-frame path would produce — so a seed reproduces the same
// schedule on either datapath. Contiguous runs of unimpaired frames are
// forwarded to the inner transport's own SendBatch, keeping the syscall
// amortization; impaired frames leave the run and take the per-frame
// drop/dup/delay/corrupt machinery.
func (t *Transport) SendBatch(frames []transport.Frame) (int, error) {
	if t.closed.Load() {
		return 0, transport.ErrClosed
	}
	bs, live := t.inner.(transport.BatchSender)
	runStart := -1 // start of the current unimpaired run, -1 when none
	flush := func(end int) error {
		if runStart < 0 {
			return nil
		}
		run := frames[runStart:end]
		runStart = -1
		if live {
			_, err := bs.SendBatch(run)
			return err
		}
		for _, f := range run {
			if err := t.inner.Send(f.Dst, f.Data); err != nil {
				return err
			}
		}
		return nil
	}
	for i := range frames {
		v := t.im.Decide(DirOut, t.elapsed(), len(frames[i].Data))
		if !v.Drop && !v.Dup && v.Delay == 0 && v.CorruptAt < 0 {
			if runStart < 0 {
				runStart = i
			}
			continue
		}
		if err := flush(i); err != nil {
			return i, err
		}
		if v.Drop {
			continue // lost, as on the wire
		}
		if v.Dup {
			t.schedule(event{dst: frames[i].Dst}, frames[i].Data, v.DupDelay, -1, 0)
		}
		if v.Delay == 0 && v.CorruptAt < 0 {
			if err := t.inner.Send(frames[i].Dst, frames[i].Data); err != nil {
				return i, err
			}
			continue
		}
		t.schedule(event{dst: frames[i].Dst}, frames[i].Data, v.Delay, v.CorruptAt, v.CorruptXor)
	}
	if err := flush(len(frames)); err != nil {
		return len(frames), err
	}
	return len(frames), nil
}

// BatchEnabled implements transport.BatchSender: the wrapper batches only
// when the wrapped transport really does.
func (t *Transport) BatchEnabled() bool {
	bs, ok := t.inner.(transport.BatchSender)
	return ok && bs.BatchEnabled()
}

// TransportStats forwards the wrapped transport's counters.
func (t *Transport) TransportStats() (transport.Stats, bool) {
	if sr, ok := t.inner.(transport.StatsReporter); ok {
		return sr.TransportStats()
	}
	return transport.Stats{}, false
}

// onFrame is the inner transport's receive callback.
func (t *Transport) onFrame(src transport.Addr, frame []byte) {
	r, _ := t.recv.Load().(transport.Receiver)
	if r == nil || t.closed.Load() {
		return
	}
	v := t.im.Decide(DirIn, t.elapsed(), len(frame))
	if v.Drop {
		return
	}
	if v.Dup {
		// The duplicate always travels through the scheduler, so it arrives
		// on a different goroutine than the original — duplicates that
		// genuinely race are exactly what duplicate-suppression code must
		// survive.
		t.schedule(event{src: src}, frame, v.DupDelay, -1, 0)
	}
	if v.Delay == 0 && v.CorruptAt < 0 {
		r(src, frame)
		return
	}
	t.schedule(event{src: src}, frame, v.Delay, v.CorruptAt, v.CorruptXor)
}

// schedule copies frame into a pooled buffer (applying corruption to the
// copy — never to the caller's slice, which the protocol may retain for
// retransmission) and queues it for delivery after delay.
func (t *Transport) schedule(e event, frame []byte, delay time.Duration, corruptAt int, xor byte) {
	f := t.frames.Get()
	f.CopyFrom(frame)
	if corruptAt >= 0 && corruptAt < f.Len() {
		f.Bytes()[corruptAt] ^= xor
	}
	e.f = f
	e.dueNs = t.elapsed().Nanoseconds() + delay.Nanoseconds()
	t.mu.Lock()
	if t.closed.Load() {
		t.mu.Unlock()
		f.Release()
		return
	}
	t.seqCtr++
	e.seq = t.seqCtr
	heap.Push(&t.events, e)
	t.mu.Unlock()
	select {
	case t.kick <- struct{}{}:
	default:
	}
}

// loop delivers deferred frames when due.
func (t *Transport) loop() {
	defer close(t.done)
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	for {
		var wait time.Duration = time.Hour
		for {
			t.mu.Lock()
			if len(t.events) == 0 {
				t.mu.Unlock()
				break
			}
			now := t.elapsed().Nanoseconds()
			e := t.events[0]
			if e.dueNs > now {
				wait = time.Duration(e.dueNs - now)
				t.mu.Unlock()
				break
			}
			heap.Pop(&t.events)
			t.mu.Unlock()
			t.fire(e)
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(wait)
		select {
		case <-timer.C:
		case <-t.kick:
		case <-t.quit:
			return
		}
	}
}

// fire performs one deferred action and recycles its buffer.
func (t *Transport) fire(e event) {
	if !t.closed.Load() {
		if e.dst != nil {
			_ = t.inner.Send(e.dst, e.f.Bytes())
		} else if r, _ := t.recv.Load().(transport.Receiver); r != nil {
			r(e.src, e.f.Bytes())
		}
	}
	e.f.Release()
}

// SetReceiver implements transport.Transport.
func (t *Transport) SetReceiver(r transport.Receiver) { t.recv.Store(r) }

// LocalAddr implements transport.Transport.
func (t *Transport) LocalAddr() transport.Addr { return t.inner.LocalAddr() }

// MaxFrame implements transport.Transport.
func (t *Transport) MaxFrame() int { return t.inner.MaxFrame() }

// Close implements transport.Transport: stops the scheduler, releases every
// queued frame, and closes the wrapped transport.
func (t *Transport) Close() error {
	if t.closed.Swap(true) {
		return nil
	}
	close(t.quit)
	<-t.done
	t.mu.Lock()
	for _, e := range t.events {
		e.f.Release()
	}
	t.events = nil
	t.mu.Unlock()
	return t.inner.Close()
}
