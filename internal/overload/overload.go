// Package overload implements server-side admission control for the RPC
// dispatch path: a bounded queue between the receive path and the worker
// pool, with a pluggable policy deciding what to shed when demand exceeds
// capacity. Shedding is explicit — every dropped request is handed to a
// callback so the protocol layer can answer it with a rejection on the
// wire, letting the caller fail fast instead of burning its retry budget
// against a queue it will never clear.
//
// Policies:
//
//   - FIFO: serve oldest first; when full, reject the arriving request
//     (drop-tail). Simple, and the baseline that collapses under sustained
//     overload: every admitted request waits behind the full queue, so once
//     queueing delay exceeds the callers' deadlines the server does nothing
//     but serve the dead.
//   - LIFO: serve newest first; when full, shed the oldest queued request.
//     Freshest-first keeps some requests under their deadlines at the cost
//     of starving the oldest.
//   - Deadline: serve in FIFO order, but shed any request whose remaining
//     budget (carried on the wire) cannot cover the observed service time —
//     the request would be dead on arrival at the handler, so serving it
//     wastes capacity. When full, shed the queued request with the least
//     remaining budget. This is the policy that keeps goodput near capacity
//     at 2× saturation.
//
// The queue is deliberately not on the uncontended fast path: the protocol
// keeps its unbounded channel dispatch when admission control is disabled,
// so a zero-config server pays nothing for this package's existence.
package overload

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// Policy selects the admission/shedding discipline.
type Policy uint8

const (
	FIFO Policy = iota
	LIFO
	Deadline
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case LIFO:
		return "lifo"
	case Deadline:
		return "deadline"
	default:
		return "fifo"
	}
}

// ParsePolicy reads a policy name (fifo, lifo, deadline).
func ParsePolicy(s string) (Policy, error) {
	switch strings.ToLower(s) {
	case "fifo":
		return FIFO, nil
	case "lifo":
		return LIFO, nil
	case "deadline":
		return Deadline, nil
	}
	return FIFO, fmt.Errorf("overload: unknown policy %q (fifo, lifo, deadline)", s)
}

// Config enables admission control when Capacity is positive.
type Config struct {
	Policy   Policy
	Capacity int
}

// Reason explains why a request was shed.
type Reason uint8

const (
	// ReasonCapacity: the queue was full and this request lost the
	// admission decision.
	ReasonCapacity Reason = iota
	// ReasonDeadline: the request's remaining budget cannot cover the
	// observed service time.
	ReasonDeadline
	// ReasonClosed: the queue was closed with the request still queued.
	ReasonClosed
)

func (r Reason) String() string {
	switch r {
	case ReasonDeadline:
		return "deadline"
	case ReasonClosed:
		return "closed"
	default:
		return "capacity"
	}
}

// Stats is a snapshot of one queue's counters.
type Stats struct {
	Policy        string  `json:"policy"`
	Capacity      int     `json:"capacity"`
	Depth         int     `json:"depth"`
	MaxDepth      int     `json:"max_depth"`
	Admitted      int64   `json:"admitted"`
	Served        int64   `json:"served"`
	ShedCapacity  int64   `json:"shed_capacity"`
	ShedDeadline  int64   `json:"shed_deadline"`
	ServiceEWMAUs float64 `json:"service_ewma_us"`
}

// start anchors the queue's monotonic clock.
var start = time.Now()

func nowNs() int64 { return int64(time.Since(start)) }

// entry is one queued request.
type entry[T any] struct {
	v         T
	arrivedNs int64
	budgetNs  int64 // remaining deadline budget at arrival; 0 = none known
}

// remaining computes the budget left at now; requests without budget
// information report a large value (they are never deadline-shed).
func (e entry[T]) remaining(now int64) int64 {
	if e.budgetNs <= 0 {
		return 1 << 62
	}
	return e.budgetNs - (now - e.arrivedNs)
}

// Queue is a bounded dispatch queue with policy-driven shedding. Offer
// never blocks; Take blocks until an item is available or the queue is
// closed. Every request leaves the queue exactly once: returned from Take,
// or handed to the shed callback (including at Close), so callers can
// maintain in-flight accounting on either path.
type Queue[T any] struct {
	cfg    Config
	onShed func(T, Reason)

	mu     sync.Mutex
	cond   *sync.Cond
	items  []entry[T]
	closed bool

	ewmaNs       float64
	admitted     int64
	served       int64
	shedCapacity int64
	shedDeadline int64
	maxDepth     int
}

// NewQueue builds a queue; onShed receives every shed request (called
// without the queue lock held; it may send on the network).
func NewQueue[T any](cfg Config, onShed func(T, Reason)) *Queue[T] {
	if cfg.Capacity <= 0 {
		panic("overload: NewQueue with non-positive capacity")
	}
	q := &Queue[T]{cfg: cfg, onShed: onShed}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// Offer submits a request with its remaining deadline budget (0 = unknown).
// It returns false when the request itself was shed (the shed callback has
// already run for it).
func (q *Queue[T]) Offer(v T, budgetNs int64) bool {
	now := nowNs()
	e := entry[T]{v: v, arrivedNs: now, budgetNs: budgetNs}
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		q.onShed(v, ReasonClosed)
		return false
	}
	if len(q.items) < q.cfg.Capacity {
		q.items = append(q.items, e)
		q.admitted++
		if len(q.items) > q.maxDepth {
			q.maxDepth = len(q.items)
		}
		q.mu.Unlock()
		q.cond.Signal()
		return true
	}
	// Full: pick the victim by policy.
	victimIdx := -1 // -1 = the arriving request
	switch q.cfg.Policy {
	case LIFO:
		victimIdx = 0 // shed the oldest
	case Deadline:
		// Shed whichever request — queued or arriving — has the least
		// remaining budget; capacity overflow is off the fast path, so the
		// linear scan is fine.
		least := e.remaining(now)
		for i := range q.items {
			if r := q.items[i].remaining(now); r < least {
				least, victimIdx = r, i
			}
		}
	}
	var victim T
	admitted := victimIdx >= 0
	if admitted {
		victim = q.items[victimIdx].v
		copy(q.items[victimIdx:], q.items[victimIdx+1:])
		q.items[len(q.items)-1] = e
		q.admitted++
	} else {
		victim = v
	}
	q.shedCapacity++
	q.mu.Unlock()
	if admitted {
		q.cond.Signal()
	}
	q.onShed(victim, ReasonCapacity)
	return admitted
}

// Take blocks for the next request to serve; ok is false once the queue is
// closed and drained. Under the Deadline policy it sheds — via the
// callback — every queued request whose remaining budget no longer covers
// the observed service time, so workers only receive requests that can
// still make their deadlines.
func (q *Queue[T]) Take() (v T, ok bool) {
	for {
		var sheds []T
		q.mu.Lock()
		for len(q.items) == 0 && !q.closed {
			q.cond.Wait()
		}
		now := nowNs()
		for len(q.items) > 0 {
			var e entry[T]
			if q.cfg.Policy == LIFO {
				e = q.items[len(q.items)-1]
				q.items = q.items[:len(q.items)-1]
			} else {
				e = q.items[0]
				copy(q.items, q.items[1:])
				q.items = q.items[:len(q.items)-1]
			}
			if q.cfg.Policy == Deadline && q.ewmaNs > 0 && float64(e.remaining(now)) < q.ewmaNs {
				q.shedDeadline++
				sheds = append(sheds, e.v)
				continue
			}
			q.served++
			q.mu.Unlock()
			for _, s := range sheds {
				q.onShed(s, ReasonDeadline)
			}
			return e.v, true
		}
		closed := q.closed
		q.mu.Unlock()
		for _, s := range sheds {
			q.onShed(s, ReasonDeadline)
		}
		if closed {
			return v, false
		}
	}
}

// ObserveService feeds one handler execution time into the service-time
// estimate the Deadline policy sheds against (EWMA, α = 1/8 like the RTT
// estimator's mean term).
func (q *Queue[T]) ObserveService(d time.Duration) {
	q.mu.Lock()
	if q.ewmaNs == 0 {
		q.ewmaNs = float64(d)
	} else {
		q.ewmaNs += (float64(d) - q.ewmaNs) / 8
	}
	q.mu.Unlock()
}

// Close wakes every Take and sheds all still-queued requests with
// ReasonClosed.
func (q *Queue[T]) Close() {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return
	}
	q.closed = true
	drained := q.items
	q.items = nil
	q.mu.Unlock()
	q.cond.Broadcast()
	for _, e := range drained {
		q.onShed(e.v, ReasonClosed)
	}
}

// Stats snapshots the counters.
func (q *Queue[T]) Stats() Stats {
	q.mu.Lock()
	defer q.mu.Unlock()
	return Stats{
		Policy:        q.cfg.Policy.String(),
		Capacity:      q.cfg.Capacity,
		Depth:         len(q.items),
		MaxDepth:      q.maxDepth,
		Admitted:      q.admitted,
		Served:        q.served,
		ShedCapacity:  q.shedCapacity,
		ShedDeadline:  q.shedDeadline,
		ServiceEWMAUs: q.ewmaNs / 1e3,
	}
}
