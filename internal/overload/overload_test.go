package overload

import (
	"sync"
	"testing"
	"time"
)

// shedlog records the shed callback's deliveries.
type shedlog struct {
	mu   sync.Mutex
	shed []int
	why  []Reason
}

func (l *shedlog) fn(v int, r Reason) {
	l.mu.Lock()
	l.shed = append(l.shed, v)
	l.why = append(l.why, r)
	l.mu.Unlock()
}

func (l *shedlog) values() []int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]int(nil), l.shed...)
}

func TestParsePolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Policy
	}{{"fifo", FIFO}, {"LIFO", LIFO}, {"Deadline", Deadline}} {
		got, err := ParsePolicy(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParsePolicy(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := ParsePolicy("random"); err == nil {
		t.Error("ParsePolicy accepted an unknown policy")
	}
}

func TestFIFOOrderAndDropTail(t *testing.T) {
	var l shedlog
	q := NewQueue[int](Config{Policy: FIFO, Capacity: 3}, l.fn)
	for i := 1; i <= 3; i++ {
		if !q.Offer(i, 0) {
			t.Fatalf("offer %d rejected below capacity", i)
		}
	}
	if q.Offer(4, 0) {
		t.Fatal("FIFO admitted past capacity")
	}
	if got := l.values(); len(got) != 1 || got[0] != 4 {
		t.Fatalf("FIFO shed %v, want the arriving request [4]", got)
	}
	for want := 1; want <= 3; want++ {
		v, ok := q.Take()
		if !ok || v != want {
			t.Fatalf("Take = %d, %t; want %d", v, ok, want)
		}
	}
	s := q.Stats()
	if s.Admitted != 3 || s.Served != 3 || s.ShedCapacity != 1 || s.MaxDepth != 3 {
		t.Fatalf("stats %+v", s)
	}
}

func TestLIFOServesNewestShedsOldest(t *testing.T) {
	var l shedlog
	q := NewQueue[int](Config{Policy: LIFO, Capacity: 3}, l.fn)
	for i := 1; i <= 3; i++ {
		q.Offer(i, 0)
	}
	if !q.Offer(4, 0) {
		t.Fatal("LIFO must admit the fresh request, shedding the oldest")
	}
	if got := l.values(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("LIFO shed %v, want the oldest [1]", got)
	}
	v, ok := q.Take()
	if !ok || v != 4 {
		t.Fatalf("Take = %d, want the newest (4)", v)
	}
}

func TestDeadlineShedsLeastBudgetOnOverflow(t *testing.T) {
	var l shedlog
	q := NewQueue[int](Config{Policy: Deadline, Capacity: 3}, l.fn)
	ms := int64(time.Millisecond)
	q.Offer(1, 100*ms)
	q.Offer(2, 5*ms) // least remaining budget: the victim
	q.Offer(3, 50*ms)
	if !q.Offer(4, 80*ms) {
		t.Fatal("arriving request with ample budget should displace the poorest")
	}
	if got := l.values(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("shed %v, want [2]", got)
	}
	// An arriving request that is itself the poorest is the victim.
	if q.Offer(5, 1*ms) {
		t.Fatal("poorest arriving request should be shed, not admitted")
	}
	if got := l.values(); len(got) != 2 || got[1] != 5 {
		t.Fatalf("shed %v, want [2 5]", got)
	}
}

func TestDeadlineShedsStaleAtDequeue(t *testing.T) {
	var l shedlog
	q := NewQueue[int](Config{Policy: Deadline, Capacity: 8}, l.fn)
	// Service time estimate: 10ms per request.
	q.ObserveService(10 * time.Millisecond)
	q.Offer(1, int64(time.Millisecond))   // budget < EWMA: dead on arrival at the worker
	q.Offer(2, int64(time.Second))        // plenty
	q.Offer(3, 2*int64(time.Millisecond)) // also dead
	q.Offer(4, 0)                         // no budget info: never deadline-shed
	v, ok := q.Take()
	if !ok || v != 2 {
		t.Fatalf("Take = %d, want 2 (stale head shed first)", v)
	}
	if got := l.values(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("shed %v, want [1]", got)
	}
	v, ok = q.Take()
	if !ok || v != 4 {
		t.Fatalf("Take = %d, want 4 (3 deadline-shed, 4 has no budget info)", v)
	}
	s := q.Stats()
	if s.ShedDeadline != 2 || s.Served != 2 {
		t.Fatalf("stats %+v", s)
	}
}

func TestDeadlineColdStartServesEverything(t *testing.T) {
	// Before any service observation the EWMA is zero: nothing is shed at
	// dequeue, however small its budget.
	q := NewQueue[int](Config{Policy: Deadline, Capacity: 4}, func(int, Reason) {
		t.Error("cold-start queue shed a request")
	})
	q.Offer(1, 1)
	if v, ok := q.Take(); !ok || v != 1 {
		t.Fatalf("Take = %d, %t", v, ok)
	}
}

func TestTakeBlocksUntilOffer(t *testing.T) {
	q := NewQueue[int](Config{Policy: FIFO, Capacity: 2}, func(int, Reason) {})
	got := make(chan int, 1)
	go func() {
		v, _ := q.Take()
		got <- v
	}()
	time.Sleep(10 * time.Millisecond)
	q.Offer(9, 0)
	select {
	case v := <-got:
		if v != 9 {
			t.Fatalf("got %d", v)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Take did not wake on Offer")
	}
}

func TestCloseDrainsAndUnblocks(t *testing.T) {
	var l shedlog
	q := NewQueue[int](Config{Policy: FIFO, Capacity: 4}, l.fn)
	q.Offer(1, 0)
	q.Offer(2, 0)
	done := make(chan bool, 1)
	go func() {
		// Drain the two queued items, then block until Close.
		q.Take()
		q.Take()
		_, ok := q.Take()
		done <- ok
	}()
	time.Sleep(10 * time.Millisecond)
	q.Close()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("Take returned ok after Close with an empty queue")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not unblock Take")
	}
	// Requests offered after Close are shed with ReasonClosed.
	if q.Offer(3, 0) {
		t.Fatal("Offer succeeded after Close")
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.why) != 1 || l.why[0] != ReasonClosed {
		t.Fatalf("sheds %v / %v, want one ReasonClosed", l.shed, l.why)
	}
}

func TestCloseShedsQueued(t *testing.T) {
	var l shedlog
	q := NewQueue[int](Config{Policy: FIFO, Capacity: 4}, l.fn)
	q.Offer(1, 0)
	q.Offer(2, 0)
	q.Close()
	if got := l.values(); len(got) != 2 {
		t.Fatalf("Close shed %v, want both queued requests", got)
	}
	for i, r := range l.why {
		if r != ReasonClosed {
			t.Fatalf("shed %d reason %v", i, r)
		}
	}
}

func TestObserveServiceEWMA(t *testing.T) {
	q := NewQueue[int](Config{Policy: Deadline, Capacity: 1}, func(int, Reason) {})
	q.ObserveService(8 * time.Millisecond)
	if got := q.Stats().ServiceEWMAUs; got != 8000 {
		t.Fatalf("first observation EWMA %vus, want 8000", got)
	}
	q.ObserveService(16 * time.Millisecond)
	if got := q.Stats().ServiceEWMAUs; got != 9000 { // 8000 + (16000-8000)/8
		t.Fatalf("EWMA %vus, want 9000", got)
	}
}

// Concurrent producers and consumers: every offered request leaves the
// queue exactly once — served or shed — under race detection.
func TestConcurrentExactlyOnce(t *testing.T) {
	var shedN sync.Map
	var shedCount int64
	var mu sync.Mutex
	q := NewQueue[int](Config{Policy: LIFO, Capacity: 16}, func(v int, _ Reason) {
		mu.Lock()
		shedCount++
		mu.Unlock()
		if _, dup := shedN.LoadOrStore(v, true); dup {
			t.Errorf("request %d shed twice", v)
		}
	})
	const producers, perProducer = 4, 200
	var served sync.Map
	var servedCount int64
	var consumers sync.WaitGroup
	for c := 0; c < 3; c++ {
		consumers.Add(1)
		go func() {
			defer consumers.Done()
			for {
				v, ok := q.Take()
				if !ok {
					return
				}
				if _, dup := served.LoadOrStore(v, true); dup {
					t.Errorf("request %d served twice", v)
				}
				mu.Lock()
				servedCount++
				mu.Unlock()
			}
		}()
	}
	var producersWG sync.WaitGroup
	for p := 0; p < producers; p++ {
		producersWG.Add(1)
		go func(p int) {
			defer producersWG.Done()
			for i := 0; i < perProducer; i++ {
				q.Offer(p*perProducer+i, 0)
			}
		}(p)
	}
	producersWG.Wait()
	// Give consumers a moment to drain, then close (shedding leftovers).
	time.Sleep(50 * time.Millisecond)
	q.Close()
	consumers.Wait()
	mu.Lock()
	total := servedCount + shedCount
	mu.Unlock()
	if want := int64(producers * perProducer); total != want {
		t.Fatalf("served %d + shed %d = %d, want exactly %d", servedCount, shedCount, total, want)
	}
	// No request may appear in both sets.
	served.Range(func(k, _ any) bool {
		if _, both := shedN.Load(k); both {
			t.Errorf("request %v both served and shed", k)
		}
		return true
	})
}
