package runbook

import (
	"fmt"
	"time"

	"fireflyrpc/internal/ether"
	"fireflyrpc/internal/faultnet"
	"fireflyrpc/internal/sim"
	"fireflyrpc/internal/simtrace"
	"fireflyrpc/internal/wire"
)

// fabric is the wire topology: either one shared ether.Segment every node
// contends on (the paper's private Ethernet, scaled to N stations) or a
// switched mesh with a dedicated segment per node pair, so cross-pair
// traffic never queues behind a busy link. Both kinds carry real Ethernet
// framing and both run the per-link fault engine through the same
// ether.LinkFaulter hook.
type fabric struct {
	k    *sim.Kernel
	kind string
	mbps float64

	shared *ether.Segment            // kind "shared"
	pairs  map[[2]int]*ether.Segment // kind "switched", key = sorted node indices

	faulter *linkFaulter
}

func newFabric(k *sim.Kernel, spec *Spec) *fabric {
	f := &fabric{
		k:       k,
		kind:    spec.Fabric.Kind,
		mbps:    spec.mbps(),
		faulter: &linkFaulter{k: k, links: make(map[[2]wire.MAC]*linkDir)},
	}
	if f.kind == "" {
		f.kind = "switched"
	}
	if f.kind == "shared" {
		f.shared = ether.NewSegmentNamed(k, "ethernet")
		f.shared.SetFaulter(f.faulter)
	} else {
		f.pairs = make(map[[2]int]*ether.Segment)
	}
	return f
}

// txTime models the configured bit rate.
func (f *fabric) txTime(bytes int) sim.Duration {
	return sim.MicrosF(float64(bytes) * 8 / f.mbps)
}

// attach wires every node into the fabric, filling each node's per-target
// port table. Pair segments are created in node-index order, so resource
// registration (and therefore reports) is deterministic.
func (f *fabric) attach(nodes []*node, deliver func(dst *node, frame []byte)) {
	if f.kind == "shared" {
		for _, n := range nodes {
			n := n
			port := f.shared.Attach(n.mac, func(frame []byte) { deliver(n, frame) })
			for _, m := range nodes {
				if m != n {
					n.ports[m.idx] = port
				}
			}
		}
		return
	}
	for i := range nodes {
		for j := i + 1; j < len(nodes); j++ {
			a, b := nodes[i], nodes[j]
			seg := ether.NewSegmentNamed(f.k, "wire:"+a.spec.Name+"<->"+b.spec.Name)
			seg.SetFaulter(f.faulter)
			f.pairs[[2]int{i, j}] = seg
			a.ports[j] = seg.Attach(a.mac, func(frame []byte) { deliver(a, frame) })
			b.ports[i] = seg.Attach(b.mac, func(frame []byte) { deliver(b, frame) })
		}
	}
}

// attachTracer routes every segment's packet lifecycle into the trace
// builder, each under its own named wire process.
func (f *fabric) attachTracer(b *simtrace.Builder, nodes []*node) {
	if f.kind == "shared" {
		f.shared.SetTracer(b.SegmentTracer("ethernet", 0))
		return
	}
	segIdx := uint64(0)
	for i := range nodes {
		for j := i + 1; j < len(nodes); j++ {
			seg := f.pairs[[2]int{i, j}]
			segIdx++
			seg.SetTracer(b.SegmentTracer(
				"wire:"+nodes[i].spec.Name+"<->"+nodes[j].spec.Name, segIdx<<32))
		}
	}
}

// addLink installs a link's impairment engine for both directions.
func (f *fabric) addLink(a, b *node, prof faultnet.Profile, seed uint64) *faultnet.Impairer {
	im := faultnet.NewImpairer(prof, seed)
	f.faulter.links[[2]wire.MAC{a.mac, b.mac}] = &linkDir{im: im, dir: faultnet.DirOut}
	f.faulter.links[[2]wire.MAC{b.mac, a.mac}] = &linkDir{im: im, dir: faultnet.DirIn}
	return im
}

// linkFaulter is the fabric-wide ether.LinkFaulter: it routes each frame's
// impairment decision to the (src, dst) link's faultnet engine. Links with
// no declared profile are clean and consume no random draws. Plan phases
// advance on virtual time (the profile has been "running" since t=0).
type linkFaulter struct {
	k     *sim.Kernel
	links map[[2]wire.MAC]*linkDir
}

type linkDir struct {
	im  *faultnet.Impairer
	dir faultnet.Dir
}

// Frame implements ether.Faulter for frames with no parseable addressing.
func (lf *linkFaulter) Frame(size int) ether.Fault { return ether.NoFault() }

// LinkFrame implements ether.LinkFaulter.
func (lf *linkFaulter) LinkFrame(src, dst wire.MAC, size int) ether.Fault {
	ld := lf.links[[2]wire.MAC{src, dst}]
	if ld == nil {
		return ether.NoFault()
	}
	v := ld.im.Decide(ld.dir, time.Duration(lf.k.Now()), size)
	return ether.Fault{
		Drop:       v.Drop,
		Dup:        v.Dup,
		Delay:      v.Delay,
		DupDelay:   v.DupDelay,
		CorruptAt:  v.CorruptAt,
		CorruptXor: v.CorruptXor,
	}
}

// linkName labels one direction for the report.
func linkName(a, b *node) string { return fmt.Sprintf("%s->%s", a.spec.Name, b.spec.Name) }
