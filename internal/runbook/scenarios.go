package runbook

import "time"

// Canonical chaos-scenario operating points, shared by the real-stack
// sweeps (internal/realbench) and the committed runbooks under runbooks/.
// The two suites exercise different stacks — realbench drives the real
// protocol engine over impaired in-process transports, the runbook executor
// drives the macro model over the simulated fabric — but they should probe
// the *same* loss grid and the same saturation point, so a regression
// caught by one is interpretable in the other. Tests pin the committed
// runbooks to these values.

// TailLosses is the canonical per-direction frame-loss grid for the
// tail-latency scenarios (clean, the paper-plausible 1%, and a pathological
// 10%).
var TailLosses = []float64{0, 0.01, 0.10}

// TailThreads is the canonical caller-concurrency grid for the real-stack
// tail sweep.
var TailThreads = []int{1, 4}

// Canonical tail-sweep sizing.
const (
	TailCallsPerThread = 2000
	TailSeed           = 1
)

// OverloadParams is the canonical 2×-saturation overload operating point:
// a server whose worker pool saturates at Workers/ServiceUs calls per
// second, driven by a closed-loop caller population sized to twice that.
type OverloadParams struct {
	ServiceUs int           // handler busy time per call
	Workers   int           // server worker-pool width
	Callers   int           // closed-loop caller population
	Capacity  int           // admission queue capacity
	Timeout   time.Duration // per-call deadline
	Duration  time.Duration // measured window
}

// DefaultOverload returns the canonical overload operating point.
func DefaultOverload() OverloadParams {
	return OverloadParams{
		ServiceUs: 1000,
		Workers:   2,
		Callers:   24,
		Capacity:  256,
		Timeout:   5 * time.Millisecond,
		Duration:  500 * time.Millisecond,
	}
}
