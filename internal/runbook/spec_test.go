package runbook

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestBadRunbooksGolden parses every fixture under testdata/bad and checks
// the error against the .err golden alongside it (a substring, so error
// wording can gain context without breaking the suite). A fixture that
// parses cleanly is itself a failure — these files document exactly which
// mistakes the schema rejects.
func TestBadRunbooksGolden(t *testing.T) {
	fixtures, err := filepath.Glob(filepath.Join("testdata", "bad", "*.json"))
	if err != nil || len(fixtures) == 0 {
		t.Fatalf("no bad-runbook fixtures: %v", err)
	}
	for _, f := range fixtures {
		f := f
		t.Run(filepath.Base(f), func(t *testing.T) {
			data, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			want, err := os.ReadFile(strings.TrimSuffix(f, ".json") + ".err")
			if err != nil {
				t.Fatalf("fixture has no .err golden: %v", err)
			}
			_, perr := Parse(data)
			if perr == nil {
				t.Fatalf("fixture parsed cleanly; want error containing %q", strings.TrimSpace(string(want)))
			}
			if !strings.Contains(perr.Error(), strings.TrimSpace(string(want))) {
				t.Fatalf("error %q does not contain golden %q", perr.Error(), strings.TrimSpace(string(want)))
			}
		})
	}
}

// TestLoadDefaultsNameFromFile: a runbook with no name field is named after
// its file, so ad-hoc runbooks report usefully without boilerplate.
func TestLoadDefaultsNameFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "adhoc.json")
	body := `{
		"duration": "10ms",
		"nodes": [
			{"name": "c", "role": "client"},
			{"name": "s", "role": "server"}
		],
		"workloads": [
			{"name": "w", "client": "c", "targets": ["s"], "mode": "closed"}
		]
	}`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "adhoc" {
		t.Fatalf("name = %q, want file-derived %q", s.Name, "adhoc")
	}
}

// TestCommittedRunbooksValidate is the cheap half of what fireflysim
// -validate does in CI: every committed runbook must parse and validate.
func TestCommittedRunbooksValidate(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "runbooks", "*.json"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no committed runbooks: %v", err)
	}
	for _, p := range paths {
		if _, err := Load(p); err != nil {
			t.Errorf("%s: %v", p, err)
		}
	}
}
