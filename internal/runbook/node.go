package runbook

import (
	"fireflyrpc/internal/ether"
	"fireflyrpc/internal/overload"
	"fireflyrpc/internal/sim"
	"fireflyrpc/internal/wire"
)

// node is one simulated machine. Every node can originate calls (client
// role) and nodes with a server or mixed role also run the server model: an
// admission queue in front of a fixed-size worker pool with a configured
// service time. Admission policies mirror internal/overload — FIFO drop-tail,
// LIFO shed-oldest, and deadline-aware shedding with an EWMA service
// estimate — but are re-implemented on virtual time so a run is a pure
// function of (runbook, seed).
type node struct {
	ex    *exec
	spec  *NodeSpec
	idx   int
	mac   wire.MAC
	ports map[int]*ether.Port // target node idx → transmit port

	policy   overload.Policy
	capacity int
	workers  int

	queue  []*srvCall
	busy   int
	ewmaNs int64 // EWMA of observed service time, deadline policy only

	// states dedups retransmitted requests and retains each finished call's
	// outcome so a duplicated or re-sent request elicits a re-sent reply.
	states map[uint64]*srvCall

	// Counters below reset at the warmup boundary.
	served       int64
	shedCapacity int64
	shedDeadline int64
	corruptDrops int64
	maxQueue     int
}

// srvCall is the server-side state of one distinct call id.
type srvCall struct {
	id       uint64
	from     *node
	wl       uint32
	resBytes int

	deadline sim.Time // 0 = caller sent no budget
	status   byte

	arrive, svcStart, svcEnd sim.Time // stage stamps for the accounting identity
}

const (
	stQueued = iota + 1
	stServing
	stDone
	stShed
)

func newNode(ex *exec, idx int, spec *NodeSpec) *node {
	n := &node{
		ex:       ex,
		spec:     spec,
		idx:      idx,
		mac:      wire.MACForHost(uint32(idx + 1)),
		ports:    make(map[int]*ether.Port),
		workers:  spec.workers(),
		capacity: spec.Admission.Capacity,
		states:   make(map[uint64]*srvCall),
	}
	n.policy, _ = spec.Admission.policy()
	return n
}

// onRequest handles an arriving request frame: dedup, admission, dispatch.
func (n *node) onRequest(from *node, f rpcFrame) {
	if st, ok := n.states[f.callID]; ok {
		// Retransmission of a known call: replay the outcome if decided,
		// otherwise the original is still queued or in service — stay quiet
		// and let it finish (the eventual reply answers the retransmit too).
		switch st.status {
		case stDone:
			n.sendReply(st, kindResp)
		case stShed:
			n.sendReply(st, kindReject)
		}
		return
	}
	now := n.ex.k.Now()
	st := &srvCall{
		id:       f.callID,
		from:     from,
		wl:       f.workload,
		resBytes: n.ex.resultBytes(f.workload),
		arrive:   now,
	}
	if f.budgetNs > 0 {
		// The budget was stamped at send time; the request's own wire
		// transmission has already consumed part of it, so discount that
		// (the caller's true deadline is earlier than arrive + budget).
		budget := sim.Duration(f.budgetNs) - n.ex.fab.txTime(wireFrameLen(n.ex.argBytes(f.workload)))
		st.deadline = now.Add(budget)
	}
	n.states[f.callID] = st

	if n.capacity > 0 && len(n.queue) >= n.capacity {
		if !n.admitOverflow(st) {
			return
		}
	}
	st.status = stQueued
	n.queue = append(n.queue, st)
	if len(n.queue) > n.maxQueue {
		n.maxQueue = len(n.queue)
	}
	n.kick()
}

// admitOverflow applies the admission policy to a full queue. It returns
// true when the arriving call should be enqueued (some victim was shed to
// make room) and false when the arriving call itself was rejected.
func (n *node) admitOverflow(st *srvCall) bool {
	switch n.policy {
	case overload.LIFO:
		// Shed the oldest queued call: the newest work is the most likely to
		// still have a live caller.
		victim := n.queue[0]
		n.queue = n.queue[1:]
		n.shed(victim, false)
		return true
	case overload.Deadline:
		// Shed the call with the least remaining budget; calls without a
		// deadline never lose this comparison. The arriving call competes too.
		victim, vi := st, -1
		for i, q := range n.queue {
			if sooner(q.deadline, victim.deadline) {
				victim, vi = q, i
			}
		}
		if vi >= 0 {
			n.queue = append(n.queue[:vi], n.queue[vi+1:]...)
		}
		n.shed(victim, true)
		return vi >= 0
	default: // FIFO: classic drop-tail, reject the arrival
		n.shed(st, false)
		return false
	}
}

// replyWireNs estimates the response frame's wire transmission time.
func (n *node) replyWireNs(st *srvCall) int64 {
	return int64(n.ex.fab.txTime(wireFrameLen(st.resBytes)))
}

// sooner reports whether deadline a expires strictly before b, treating the
// zero Time as "no deadline" (never sooner than anything).
func sooner(a, b sim.Time) bool {
	if a == 0 {
		return false
	}
	return b == 0 || a < b
}

// kick dispatches queued calls onto idle workers.
func (n *node) kick() {
	for n.busy < n.workers && len(n.queue) > 0 {
		st := n.pop()
		if st == nil {
			return
		}
		n.busy++
		st.status = stServing
		st.svcStart = n.ex.k.Now()
		n.ex.k.After(n.serviceTime(), func() { n.complete(st) })
	}
}

// pop removes the next call to serve per the admission policy, shedding
// dead-on-arrival work first under the deadline policy.
func (n *node) pop() *srvCall {
	if n.policy == overload.Deadline {
		now := n.ex.k.Now()
		for len(n.queue) > 0 {
			st := n.queue[0]
			n.queue = n.queue[1:]
			// Would miss its deadline even if served immediately — the
			// remaining budget must cover the expected service time AND the
			// reply's trip back, or the caller sees a late answer. The trip
			// estimate is 3× the reply's transmission time: under saturation
			// the queue's head is always exactly marginal, so without
			// headroom for medium queueing every served reply lands just
			// past its deadline.
			if st.deadline != 0 && n.ewmaNs > 0 &&
				int64(st.deadline.Sub(now)) < n.ewmaNs+3*n.replyWireNs(st) {
				n.shed(st, true)
				continue
			}
			return st
		}
		return nil
	}
	if n.policy == overload.LIFO {
		st := n.queue[len(n.queue)-1]
		n.queue = n.queue[:len(n.queue)-1]
		return st
	}
	st := n.queue[0]
	n.queue = n.queue[1:]
	return st
}

// serviceTime draws this call's service duration.
func (n *node) serviceTime() sim.Duration {
	d := sim.Duration(n.spec.service())
	if j := n.spec.ServiceJitter; j > 0 {
		d += n.ex.k.RNG().Duration(sim.Duration(j))
	}
	return d
}

// complete finishes a served call: stamp, learn, reply, take the next one.
func (n *node) complete(st *srvCall) {
	n.busy--
	now := n.ex.k.Now()
	st.svcEnd = now
	st.status = stDone
	sample := int64(now.Sub(st.svcStart))
	if n.ewmaNs == 0 {
		n.ewmaNs = sample
	} else {
		n.ewmaNs = (7*n.ewmaNs + sample) / 8
	}
	if n.ex.counting() {
		n.served++
	}
	n.sendReply(st, kindResp)
	n.kick()
}

// shed rejects a call, retaining the decision for retransmit replay.
func (n *node) shed(st *srvCall, deadline bool) {
	st.status = stShed
	if n.ex.counting() {
		if deadline {
			n.shedDeadline++
		} else {
			n.shedCapacity++
		}
	}
	n.sendReply(st, kindReject)
}

// sendReply transmits a response or reject frame back to the caller.
// Responses carry the workload's result payload; rejects are header-only.
func (n *node) sendReply(st *srvCall, kind byte) {
	padding := 0
	if kind == kindResp {
		padding = st.resBytes
	}
	n.sendTo(st.from, marshalFrame(rpcFrame{kind: kind, callID: st.id, workload: st.wl}, padding))
}

// sendTo frames the payload in an Ethernet header and puts it on the wire.
func (n *node) sendTo(dst *node, payload []byte) {
	buf := make([]byte, wire.EthernetHeaderLen+len(payload))
	h := wire.EthernetHeader{Dst: dst.mac, Src: n.mac, EtherType: wire.EtherTypeRawRPC}
	h.MarshalTo(buf)
	copy(buf[wire.EthernetHeaderLen:], payload)
	n.ports[dst.idx].Transmit(buf, n.ex.fab.txTime(len(buf)), nil)
}

// resetMetrics zeroes the warmup-scoped counters at the warmup boundary.
func (n *node) resetMetrics() {
	n.served = 0
	n.shedCapacity = 0
	n.shedDeadline = 0
	n.corruptDrops = 0
	n.maxQueue = len(n.queue)
}
