package runbook

import (
	"io"
	"time"

	"fireflyrpc/internal/debughttp"
	"fireflyrpc/internal/faultnet"
	"fireflyrpc/internal/sim"
	"fireflyrpc/internal/simtrace"
	"fireflyrpc/internal/wire"
)

// Options tunes one execution without touching the runbook itself.
type Options struct {
	// Seed overrides the runbook's seed when non-zero.
	Seed uint64
	// Trace, when non-nil, receives a Perfetto-compatible JSON trace of the
	// run's wire traffic. Tracing never perturbs results.
	Trace io.Writer
	// DebugName, when non-empty, registers the running kernel on the
	// debughttp live surface under /sim/<name> for the run's duration.
	DebugName string
	// Pace, when positive, sleeps Pace× virtual time per executor slice so
	// a human (or the debug surface) can watch the run unfold. Pacing is
	// wall-clock only; virtual results are identical.
	Pace float64
}

// exec is one run's mutable state. Everything happens inside kernel event
// context on virtual time — no goroutines, no wall clock — which is what
// makes a run a pure function of (runbook, seed).
type exec struct {
	spec   *Spec
	k      *sim.Kernel
	fab    *fabric
	nodes  []*node
	byName map[string]*node
	byMAC  map[wire.MAC]*node
	wls    []*workloadRun
	links  []execLink

	calls      map[uint64]*call
	nextCallID uint64

	rto, rtoMax sim.Duration
	maxRetries  int
	warmupEnd   sim.Time

	identity identityAcc
}

// execLink pairs a declared link with its running impairment engine.
type execLink struct {
	a, b *node
	im   *faultnet.Impairer
}

// identityAcc accumulates the stage-accounting identity over calls that
// completed without retransmission: the four stage stamps come
// independently from the client and server sides of each call, and their
// sum must reproduce the client's end-to-end latency. Drift means the
// executor is mis-attributing time between stages.
type identityAcc struct {
	calls                                        int64
	e2eNs, reqWireNs, queueNs, svcNs, respWireNs int64
}

func (ia *identityAcc) add(c *call, st *srvCall, now sim.Time) {
	ia.calls++
	ia.e2eNs += int64(now.Sub(c.start))
	ia.reqWireNs += int64(st.arrive.Sub(c.start))
	ia.queueNs += int64(st.svcStart.Sub(st.arrive))
	ia.svcNs += int64(st.svcEnd.Sub(st.svcStart))
	ia.respWireNs += int64(now.Sub(st.svcEnd))
}

// counting reports whether the run is past its warmup boundary; metrics
// only accumulate once it is.
func (ex *exec) counting() bool { return ex.k.Now() >= ex.warmupEnd }

// resultBytes returns a workload's response padding for the server side.
func (ex *exec) resultBytes(wl uint32) int {
	if int(wl) < len(ex.wls) {
		return ex.wls[wl].spec.ResultBytes
	}
	return 0
}

// argBytes returns a workload's request padding.
func (ex *exec) argBytes(wl uint32) int {
	if int(wl) < len(ex.wls) {
		return ex.wls[wl].spec.ArgBytes
	}
	return 0
}

// ExecuteFile loads and executes a runbook file.
func ExecuteFile(path string, opts Options) (*Report, error) {
	spec, err := Load(path)
	if err != nil {
		return nil, err
	}
	return Execute(spec, opts)
}

// Execute runs a runbook to completion and returns its report. The report
// (and the optional trace) is byte-identical across runs of the same
// runbook with the same seed.
func Execute(spec *Spec, opts Options) (*Report, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	seed := spec.seed()
	if opts.Seed != 0 {
		seed = opts.Seed
	}
	k := sim.NewKernel(seed)
	ex := &exec{
		spec:       spec,
		k:          k,
		byName:     make(map[string]*node),
		byMAC:      make(map[wire.MAC]*node),
		calls:      make(map[uint64]*call),
		rto:        sim.Duration(spec.rto()),
		rtoMax:     sim.Duration(spec.rtoMax()),
		maxRetries: spec.maxRetries(),
		warmupEnd:  sim.Time(0).Add(sim.Duration(spec.Warmup)),
	}
	for i := range spec.Nodes {
		n := newNode(ex, i, &spec.Nodes[i])
		ex.nodes = append(ex.nodes, n)
		ex.byName[n.spec.Name] = n
		ex.byMAC[n.mac] = n
	}
	ex.fab = newFabric(k, spec)
	ex.fab.attach(ex.nodes, ex.deliver)
	for i := range spec.Links {
		l := &spec.Links[i]
		a, b := ex.byName[l.A], ex.byName[l.B]
		// Each link's fault schedule gets its own decorrelated seed stream.
		im := ex.fab.addLink(a, b, l.Profile(), seed^(uint64(i+1)*0x9E3779B97F4A7C15))
		ex.links = append(ex.links, execLink{a: a, b: b, im: im})
	}
	var builder *simtrace.Builder
	if opts.Trace != nil {
		builder = simtrace.NewBuilder(k)
		ex.fab.attachTracer(builder, ex.nodes)
	}
	for i := range spec.Workloads {
		ex.wls = append(ex.wls, newWorkloadRun(ex, uint32(i), &spec.Workloads[i]))
	}

	// The warmup reset is scheduled before any workload event, so at the
	// warmup instant it fires ahead of same-instant arrivals.
	if spec.Warmup > 0 {
		k.At(ex.warmupEnd, ex.resetMetrics)
	}
	for _, w := range ex.wls {
		w := w
		k.At(sim.Time(0).Add(sim.Duration(w.spec.Start)), w.begin)
	}

	if opts.DebugName != "" {
		debughttp.RegisterSim(opts.DebugName, k)
		defer debughttp.UnregisterSim(opts.DebugName)
	}

	// Run in fixed virtual slices: RunUntil advances the clock even when
	// the event queue drains, and slicing gives pacing (and the live debug
	// surface) a steady cadence to observe.
	end := sim.Time(0).Add(sim.Duration(spec.Duration))
	const slice = 50 * time.Millisecond
	for t := sim.Time(0); t < end; {
		t = t.Add(slice)
		if t > end {
			t = end
		}
		k.RunUntil(t)
		if opts.Pace > 0 {
			time.Sleep(time.Duration(opts.Pace * float64(slice)))
		}
	}

	rep := ex.buildReport(seed)
	if builder != nil {
		if _, err := builder.WriteTo(opts.Trace); err != nil {
			return rep, err
		}
	}
	return rep, nil
}

// resetMetrics is the warmup-boundary event.
func (ex *exec) resetMetrics() {
	for _, w := range ex.wls {
		w.resetMetrics()
	}
	for _, n := range ex.nodes {
		n.resetMetrics()
	}
	ex.identity = identityAcc{}
}

// deliver is the fabric's receive path: every frame addressed to a node
// lands here in event context.
func (ex *exec) deliver(dst *node, frame []byte) {
	hdr, payload, err := wire.UnmarshalEthernet(frame)
	if err != nil || hdr.EtherType != wire.EtherTypeRawRPC {
		return
	}
	src := ex.byMAC[hdr.Src]
	if src == nil {
		return
	}
	f, ok := parseFrame(payload)
	if !ok {
		// A corrupted frame fails its checksum and is dropped here, exactly
		// as a checksumming receive path behaves; the RTO recovers the call.
		if ex.counting() {
			dst.corruptDrops++
		}
		return
	}
	switch f.kind {
	case kindReq:
		dst.onRequest(src, f)
	case kindResp, kindReject:
		c := ex.calls[f.callID]
		if c == nil || c.done || c.wl.client != dst {
			return // late, duplicate, or misdelivered reply
		}
		if f.kind == kindResp {
			c.wl.onResponse(c)
		} else {
			c.wl.onReject(c)
		}
	}
}
