package runbook

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// loadCommitted loads a runbook from the repo's committed scenario suite.
func loadCommitted(t *testing.T, name string) *Spec {
	t.Helper()
	s, err := Load(filepath.Join("..", "..", "runbooks", name))
	if err != nil {
		t.Fatalf("load %s: %v", name, err)
	}
	return s
}

// TestRunbookDeterminism is the suite's core invariant: the same runbook and
// seed produce a byte-identical results JSON, while changing the seed or any
// scenario field changes the report. loss_tail_1pct exercises the fault
// engine's randomness, Poisson-free closed loops, and retransmission.
func TestRunbookDeterminism(t *testing.T) {
	spec := loadCommitted(t, "loss_tail_1pct.json")
	rep1, err := Execute(spec, Options{})
	if err != nil {
		t.Fatalf("run 1: %v", err)
	}
	rep2, err := Execute(spec, Options{})
	if err != nil {
		t.Fatalf("run 2: %v", err)
	}
	if !bytes.Equal(rep1.JSON(), rep2.JSON()) {
		t.Fatalf("same runbook + seed produced different reports:\n--- run 1\n%s\n--- run 2\n%s", rep1.JSON(), rep2.JSON())
	}

	reseeded, err := Execute(spec, Options{Seed: 99})
	if err != nil {
		t.Fatalf("reseeded run: %v", err)
	}
	if bytes.Equal(rep1.JSON(), reseeded.JSON()) {
		t.Fatalf("changing the seed did not change the report")
	}

	bumped := loadCommitted(t, "loss_tail_1pct.json")
	bumped.Links[0].AtoB.Drop = 0.05
	bumpedRep, err := Execute(bumped, Options{})
	if err != nil {
		t.Fatalf("bumped run: %v", err)
	}
	if bytes.Equal(rep1.JSON(), bumpedRep.JSON()) {
		t.Fatalf("changing the drop rate did not change the report")
	}
}

// TestTraceDoesNotPerturb: enabling the Perfetto trace must not change the
// report, and the trace itself must be deterministic.
func TestTraceDoesNotPerturb(t *testing.T) {
	spec := loadCommitted(t, "clean_baseline.json")
	plain, err := Execute(spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var tr1, tr2 bytes.Buffer
	traced1, err := Execute(spec, Options{Trace: &tr1})
	if err != nil {
		t.Fatal(err)
	}
	traced2, err := Execute(spec, Options{Trace: &tr2})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain.JSON(), traced1.JSON()) {
		t.Fatalf("tracing changed the report")
	}
	if tr1.Len() == 0 {
		t.Fatalf("trace output empty")
	}
	if !bytes.Equal(tr1.Bytes(), tr2.Bytes()) {
		t.Fatalf("same-seed traces differ")
	}
	if traced2.Pass != traced1.Pass {
		t.Fatalf("pass verdict unstable")
	}
}

// TestOverloadRunbookPolicyFlip is the suite's acceptance gate: the
// committed overload_deadline runbook passes as written, and flipping only
// the admission policy to FIFO makes its goodput-floor assertion fail —
// demonstrating the assertions detect the policy regression they exist for.
func TestOverloadRunbookPolicyFlip(t *testing.T) {
	spec := loadCommitted(t, "overload_deadline.json")
	rep, err := Execute(spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Fatalf("overload_deadline should pass as committed:\n%s", rep.JSON())
	}

	flipped := loadCommitted(t, "overload_deadline.json")
	var server *NodeSpec
	for i := range flipped.Nodes {
		if flipped.Nodes[i].Name == "server" {
			server = &flipped.Nodes[i]
		}
	}
	if server == nil || server.Admission.Policy != "deadline" {
		t.Fatalf("runbook shape changed; expected a deadline-admission server node")
	}
	server.Admission.Policy = "fifo"
	flippedRep, err := Execute(flipped, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if flippedRep.Pass {
		t.Fatalf("FIFO flip should fail the runbook:\n%s", flippedRep.JSON())
	}
	goodputFailed := false
	for _, a := range flippedRep.Assertions {
		if strings.HasSuffix(a.ID, "/goodput_min_per_sec") && !a.Pass {
			goodputFailed = true
		}
	}
	if !goodputFailed {
		t.Fatalf("FIFO flip failed, but not on the goodput floor:\n%s", flippedRep.JSON())
	}
}

// TestCommittedRunbooksPass executes every runbook in the committed suite:
// a committed runbook that fails its own assertions is a broken CI gate.
func TestCommittedRunbooksPass(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "runbooks", "*.json"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no committed runbooks found: %v", err)
	}
	for _, p := range paths {
		p := p
		t.Run(filepath.Base(p), func(t *testing.T) {
			rep, err := ExecuteFile(p, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Pass {
				var buf bytes.Buffer
				rep.Render(&buf)
				t.Fatalf("committed runbook fails its assertions:\n%s", buf.String())
			}
		})
	}
}

// TestCIMatrixCoversAllRunbooks pins the CI scenario-suite matrix to the
// committed runbook set: adding a runbook without adding it to the matrix
// (or vice versa) fails here rather than silently skipping coverage.
func TestCIMatrixCoversAllRunbooks(t *testing.T) {
	ci, err := os.ReadFile(filepath.Join("..", "..", ".github", "workflows", "ci.yml"))
	if err != nil {
		t.Fatalf("read ci.yml: %v", err)
	}
	paths, err := filepath.Glob(filepath.Join("..", "..", "runbooks", "*.json"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no committed runbooks found: %v", err)
	}
	for _, p := range paths {
		name := strings.TrimSuffix(filepath.Base(p), ".json")
		if !bytes.Contains(ci, []byte(name)) {
			t.Errorf("runbook %q missing from the CI scenario-suite matrix in ci.yml", name)
		}
	}
}

// TestRunbooksPinCanonicalScenarios keeps the committed runbooks aligned
// with the canonical operating points that the real-stack sweeps
// (internal/realbench) also default to.
func TestRunbooksPinCanonicalScenarios(t *testing.T) {
	canon := DefaultOverload()
	for _, name := range []string{"overload_deadline.json", "overload_fifo.json"} {
		s := loadCommitted(t, name)
		var server *NodeSpec
		for i := range s.Nodes {
			if s.Nodes[i].Name == "server" {
				server = &s.Nodes[i]
			}
		}
		if server == nil {
			t.Fatalf("%s: no server node", name)
		}
		if got := server.service(); got != time.Duration(canon.ServiceUs)*time.Microsecond {
			t.Errorf("%s: service %v, canonical %dµs", name, got, canon.ServiceUs)
		}
		if server.workers() != canon.Workers {
			t.Errorf("%s: workers %d, canonical %d", name, server.workers(), canon.Workers)
		}
		if server.Admission.Capacity != canon.Capacity {
			t.Errorf("%s: capacity %d, canonical %d", name, server.Admission.Capacity, canon.Capacity)
		}
		w := &s.Workloads[0]
		if w.outstanding() != canon.Callers {
			t.Errorf("%s: outstanding %d, canonical %d callers", name, w.outstanding(), canon.Callers)
		}
		if got := time.Duration(w.Timeout); got != canon.Timeout {
			t.Errorf("%s: timeout %v, canonical %v", name, got, canon.Timeout)
		}
	}

	for name, want := range map[string]float64{
		"loss_tail_1pct.json":  TailLosses[1],
		"loss_tail_10pct.json": TailLosses[2],
	} {
		s := loadCommitted(t, name)
		l := s.Links[0]
		if l.AtoB.Drop != want || l.BtoA.Drop != want {
			t.Errorf("%s: drop %g/%g, canonical %g", name, l.AtoB.Drop, l.BtoA.Drop, want)
		}
	}
}

// TestHedgeRescuesDeadReplica: with one target fully partitioned, hedged
// calls complete via the backup replica while the unhedged control run
// times out half its calls — the hedge, not the retransmission engine, is
// what saves them (the RTO is set past every deadline). Hedged calls must
// also leave the stage identity, since their reply can come from either
// server.
func TestHedgeRescuesDeadReplica(t *testing.T) {
	body := `{
		"name": "hedge_rescue",
		"duration": "500ms",
		"warmup": "50ms",
		"rpc": { "rto": "200ms", "rto_max": "200ms", "max_retries": 3 },
		"nodes": [
			{"name": "c", "role": "client"},
			{"name": "s1", "role": "server", "workers": 2, "service": "100us"},
			{"name": "s2", "role": "server", "workers": 2, "service": "100us"}
		],
		"links": [
			{"a": "c", "b": "s2", "a_to_b": {"drop": 1}, "b_to_a": {"drop": 1}}
		],
		"workloads": [{
			"name": "w", "client": "c", "targets": ["s1", "s2"],
			"mode": "closed", "outstanding": 2,
			"timeout": "20ms", "hedge": "1ms"
		}]
	}`
	spec, err := Parse([]byte(body))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Execute(spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	wr := rep.Workloads[0]
	if wr.Timeouts != 0 || wr.Failures != 0 {
		t.Fatalf("hedged run should rescue every call: %+v", wr)
	}
	if wr.Hedges == 0 {
		t.Fatalf("no hedges fired against a dead replica: %+v", wr)
	}
	if wr.Completed == 0 {
		t.Fatalf("nothing completed: %+v", wr)
	}
	// Round-robin alternates s1/s2, so roughly half the calls hedge.
	if wr.Hedges < wr.Completed/3 {
		t.Fatalf("hedges %d implausibly low for %d completed", wr.Hedges, wr.Completed)
	}
	// Hedged calls are excluded from the stage identity: it must cover
	// only the direct (s1-primary) calls.
	if rep.Identity.Calls >= wr.Completed {
		t.Fatalf("identity covers %d calls, want fewer than %d completed (hedged calls must be excluded)",
			rep.Identity.Calls, wr.Completed)
	}

	unhedged := *spec
	unhedged.Workloads = []WorkloadSpec{spec.Workloads[0]}
	unhedged.Workloads[0].Hedge = 0
	ctrl, err := Execute(&unhedged, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cw := ctrl.Workloads[0]
	if cw.Timeouts == 0 {
		t.Fatalf("control run without hedging should time out its dead-replica calls: %+v", cw)
	}
	if cw.Hedges != 0 {
		t.Fatalf("control run fired hedges: %+v", cw)
	}
}
