package runbook

import (
	"math"
	"time"

	"fireflyrpc/internal/sim"
	"fireflyrpc/internal/stats"
)

// workloadRun drives one declared workload: a closed loop of Outstanding
// call slots (each slot issues its next call when the previous resolves) or
// an open-loop arrival process that issues calls on a schedule no matter
// what completions do. All timing and randomness comes from the kernel, so
// the stream of calls is a pure function of (runbook, seed).
type workloadRun struct {
	ex      *exec
	idx     uint32
	spec    *WorkloadSpec
	client  *node
	targets []*node
	cdf     []float64 // cumulative Zipf weights when Skew > 0
	rr      int       // round-robin cursor when Skew == 0

	rate      float64  // current open-loop rate (phases update it)
	windowEnd sim.Time // no calls launch at or past this instant

	// Counters below reset at the warmup boundary.
	hist        *stats.Hist
	started     int64
	completed   int64
	timeouts    int64
	failures    int64
	overloads   int64
	retransmits int64
	hedges      int64
}

// call is one in-flight RPC owned by a workload.
type call struct {
	id     uint64
	wl     *workloadRun
	target *node

	start    sim.Time
	deadline sim.Time // 0 = no per-call deadline
	rto      sim.Duration
	retries  int

	retransmitted bool // excludes the call from the stage identity
	warmup        bool // started before the warmup boundary: never counted
	closed        bool // a closed-loop slot: resolution launches a successor
	done          bool

	retrans, dlTimer, hedge *sim.Timer
}

func newWorkloadRun(ex *exec, idx uint32, spec *WorkloadSpec) *workloadRun {
	w := &workloadRun{
		ex:     ex,
		idx:    idx,
		spec:   spec,
		client: ex.byName[spec.Client],
		rate:   spec.RatePerSec,
		hist:   new(stats.Hist),
	}
	for _, t := range spec.Targets {
		w.targets = append(w.targets, ex.byName[t])
	}
	if spec.Skew > 0 && len(w.targets) > 1 {
		// Zipf over target order: weight(i) ∝ 1/(i+1)^skew, so targets[0]
		// is the hotspot. Precomputed as a CDF for a single uniform draw.
		total := 0.0
		for i := range w.targets {
			total += 1 / math.Pow(float64(i+1), spec.Skew)
		}
		acc := 0.0
		for i := range w.targets {
			acc += 1 / math.Pow(float64(i+1), spec.Skew) / total
			w.cdf = append(w.cdf, acc)
		}
	}
	w.windowEnd = sim.Time(0).Add(sim.Duration(ex.spec.Duration))
	if spec.Stop != 0 {
		w.windowEnd = sim.Time(0).Add(sim.Duration(spec.Stop))
	}
	return w
}

// begin starts the workload at its Start offset (the executor schedules it).
func (w *workloadRun) begin() {
	if w.spec.Mode == "closed" {
		for i := 0; i < w.spec.outstanding(); i++ {
			w.launch(true)
		}
		return
	}
	for _, ph := range w.spec.Phases {
		ph := ph
		w.ex.k.After(sim.Duration(ph.After), func() { w.rate = ph.RatePerSec })
	}
	w.scheduleArrival()
}

// scheduleArrival chains the open-loop arrival process: each arrival books
// the next using the rate in force at booking time.
func (w *workloadRun) scheduleArrival() {
	mean := sim.Duration(float64(time.Second) / w.rate)
	gap := mean
	if w.spec.Arrival != "uniform" {
		gap = w.ex.k.RNG().Exp(mean)
	}
	w.ex.k.After(gap, func() {
		if w.ex.k.Now() >= w.windowEnd {
			return
		}
		w.launch(false)
		w.scheduleArrival()
	})
}

// pickTarget selects this call's server.
func (w *workloadRun) pickTarget() *node {
	if len(w.targets) == 1 {
		return w.targets[0]
	}
	if len(w.cdf) > 0 {
		u := w.ex.k.RNG().Float64()
		for i, c := range w.cdf {
			if u < c {
				return w.targets[i]
			}
		}
		return w.targets[len(w.targets)-1]
	}
	t := w.targets[w.rr%len(w.targets)]
	w.rr++
	return t
}

// launch issues one call, unless the workload's window has closed.
func (w *workloadRun) launch(closed bool) {
	now := w.ex.k.Now()
	if now >= w.windowEnd {
		return
	}
	c := &call{
		id:     w.ex.nextCallID,
		wl:     w,
		target: w.pickTarget(),
		start:  now,
		rto:    w.ex.rto,
		warmup: !w.ex.counting(),
		closed: closed,
	}
	w.ex.nextCallID++
	w.ex.calls[c.id] = c
	if t := w.spec.Timeout; t > 0 {
		c.deadline = now.Add(sim.Duration(t))
		c.dlTimer = w.ex.k.After(sim.Duration(t), func() { w.onDeadline(c) })
	}
	if !c.warmup {
		w.started++
	}
	if h := w.spec.Hedge; h > 0 && len(w.targets) > 1 {
		c.hedge = w.ex.k.After(sim.Duration(h), func() { w.onHedge(c) })
	}
	w.send(c)
}

// send transmits the request (initial or retransmission) and arms the RTO.
// The budget carried on the wire is the deadline's remaining headroom at
// this send, which is what the server's deadline admission consumes.
func (w *workloadRun) send(c *call) {
	var budget int64
	if c.deadline != 0 {
		budget = int64(c.deadline.Sub(w.ex.k.Now()))
		if budget <= 0 {
			budget = 1 // already dead; the server will shed it on sight
		}
	}
	payload := marshalFrame(rpcFrame{
		kind:     kindReq,
		callID:   c.id,
		budgetNs: budget,
		workload: w.idx,
	}, w.spec.ArgBytes)
	w.client.sendTo(c.target, payload)
	c.retrans = w.ex.k.After(c.rto, func() { w.onRTO(c) })
}

// onHedge fires when a call is still unanswered past the hedge delay: a
// backup copy of the request goes to a different target. Whichever server
// answers first completes the call (finish retires it, so the loser's reply
// finds nothing); the duplicate issue means the server-side stamps can no
// longer be attributed to one request, so the call leaves the stage
// identity the same way a retransmitted call does. The primary's RTO stays
// armed and keeps retransmitting to the primary only.
func (w *workloadRun) onHedge(c *call) {
	if c.done {
		return
	}
	backup := w.pickDistinct(c.target)
	if backup == nil {
		return
	}
	c.retransmitted = true
	if !c.warmup {
		w.hedges++
	}
	var budget int64
	if c.deadline != 0 {
		budget = int64(c.deadline.Sub(w.ex.k.Now()))
		if budget <= 0 {
			budget = 1
		}
	}
	payload := marshalFrame(rpcFrame{
		kind:     kindReq,
		callID:   c.id,
		budgetNs: budget,
		workload: w.idx,
	}, w.spec.ArgBytes)
	w.client.sendTo(backup, payload)
}

// pickDistinct returns a target other than skip, advancing the round-robin
// cursor so consecutive hedges spread over the replica set.
func (w *workloadRun) pickDistinct(skip *node) *node {
	for i := 0; i < len(w.targets); i++ {
		t := w.targets[w.rr%len(w.targets)]
		w.rr++
		if t != skip {
			return t
		}
	}
	return nil
}

// onRTO fires when a send went unanswered: back off and retransmit, or give
// the call up as failed once retries are exhausted.
func (w *workloadRun) onRTO(c *call) {
	if c.done {
		return
	}
	c.retries++
	if c.retries > w.ex.maxRetries {
		w.finish(c)
		if !c.warmup {
			w.failures++
		}
		w.next(c, sim.Duration(w.spec.Think))
		return
	}
	c.retransmitted = true
	if !c.warmup {
		w.retransmits++
	}
	c.rto *= 2
	if c.rto > w.ex.rtoMax {
		c.rto = w.ex.rtoMax
	}
	w.send(c)
}

// onResponse completes the call and, for calls with no retransmission,
// joins the client- and server-side stage stamps into the accounting
// identity (a retransmitted call's server stamps may describe an earlier
// copy of the request, so it is excluded).
func (w *workloadRun) onResponse(c *call) {
	now := w.ex.k.Now()
	lat := now.Sub(c.start)
	if !c.warmup {
		w.completed++
		w.hist.Observe(lat)
		if !c.retransmitted {
			if st := c.target.states[c.id]; st != nil && st.status == stDone {
				w.ex.identity.add(c, st, now)
			}
		}
	}
	w.finish(c)
	w.next(c, sim.Duration(w.spec.Think))
}

// onReject records a wire-level admission rejection; a closed-loop slot
// backs off before its next call so rejected work does not hammer the
// server at wire speed.
func (w *workloadRun) onReject(c *call) {
	if !c.warmup {
		w.overloads++
	}
	w.finish(c)
	w.next(c, sim.Duration(w.spec.backoff()))
}

// onDeadline abandons a call whose per-call deadline expired.
func (w *workloadRun) onDeadline(c *call) {
	if c.done {
		return
	}
	if !c.warmup {
		w.timeouts++
	}
	w.finish(c)
	w.next(c, sim.Duration(w.spec.Think))
}

// finish retires the call: late or duplicate replies find nothing.
func (w *workloadRun) finish(c *call) {
	c.done = true
	if c.retrans != nil {
		c.retrans.Cancel()
	}
	if c.dlTimer != nil {
		c.dlTimer.Cancel()
	}
	if c.hedge != nil {
		c.hedge.Cancel()
	}
	delete(w.ex.calls, c.id)
}

// next keeps a closed-loop slot running: after the resolution delay the
// slot launches its successor (launch itself enforces the window).
func (w *workloadRun) next(c *call, delay sim.Duration) {
	if !c.closed {
		return
	}
	if delay <= 0 {
		w.launch(true)
		return
	}
	w.ex.k.After(delay, func() { w.launch(true) })
}

// resetMetrics zeroes the warmup-scoped counters at the warmup boundary.
func (w *workloadRun) resetMetrics() {
	w.hist = new(stats.Hist)
	w.started = 0
	w.completed = 0
	w.timeouts = 0
	w.failures = 0
	w.overloads = 0
	w.retransmits = 0
	w.hedges = 0
}
