// Package runbook is the declarative macro-scenario layer: a JSON runbook
// declares N simulated nodes, the links between them (each with its own
// faultnet impairment profile and scripted phase changes), workload
// schedules (open/closed-loop arrival, fan-out, diurnal ramps, hotspot
// skew), per-server admission policies, and a pass/fail assertions block —
// and Execute runs the whole scenario inside the discrete-event kernel
// (internal/sim) over a modeled Ethernet fabric (internal/ether), so the
// same runbook plus the same seed produces a byte-identical assertion
// report on every run. New scenarios are JSON files, not Go code;
// cmd/fireflysim turns a runbook's assertion outcome into an exit status,
// which is what makes the committed runbooks a CI-runnable scenario suite.
//
// The executor models RPC at the macro level — request frame, admission
// queue, worker pool with a fixed service time, response frame, adaptive
// retransmission with backoff — rather than simulating the full Firefly
// protocol stack (internal/simstack does that for the paper's two-machine
// tables). The point here is topology and policy: what the tail looks like
// when a link loses 10% of frames, whether deadline shedding holds goodput
// where FIFO collapses, how a fan-in hotspot starves its neighbours.
package runbook

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"fireflyrpc/internal/faultnet"
	"fireflyrpc/internal/overload"
)

// Limits keep a mistyped runbook from requesting an unbounded simulation.
const (
	MaxNodes        = 64
	MaxDuration     = 10 * time.Minute // virtual
	MaxPayloadBytes = 1 << 20
	MaxOutstanding  = 10000
	MaxRatePerSec   = 10e6
)

// Duration re-exports faultnet's JSON-friendly duration ("5ms" or plain
// nanoseconds) so runbooks and impairment profiles share one spelling.
type Duration = faultnet.Duration

// Spec is a complete runbook. Parse rejects unknown fields, so typos in
// hand-written runbooks fail loudly instead of silently asserting nothing.
type Spec struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	// Seed drives every random decision in the run (fault schedules,
	// Poisson arrivals, skewed target picks). Default 1.
	Seed uint64 `json:"seed,omitempty"`
	// Duration is the virtual length of the run.
	Duration Duration `json:"duration"`
	// Warmup, when positive, resets all metrics this far into the run so
	// assertions see steady state; calls started during warmup are never
	// counted.
	Warmup Duration `json:"warmup,omitempty"`

	Fabric    FabricSpec     `json:"fabric,omitempty"`
	RPC       RPCSpec        `json:"rpc,omitempty"`
	Nodes     []NodeSpec     `json:"nodes"`
	Links     []LinkSpec     `json:"links,omitempty"`
	Workloads []WorkloadSpec `json:"workloads"`
	Assert    Asserts        `json:"assert,omitempty"`
}

// FabricSpec selects the wire topology connecting the nodes.
type FabricSpec struct {
	// Kind is "switched" (default: a dedicated full-duplex-modeled segment
	// per node pair, like a datacenter switch) or "shared" (one classic
	// Ethernet segment all nodes contend on, the paper's topology).
	Kind string `json:"kind,omitempty"`
	// Mbps is the modeled bit rate per segment; default 10 (the paper's
	// Ethernet). A runbook modeling a modern fabric sets 1000+.
	Mbps float64 `json:"mbps,omitempty"`
}

// RPCSpec tunes the modeled client protocol engine.
type RPCSpec struct {
	// RTO is the initial retransmission timeout; default 10ms. It doubles
	// per retry up to RTOMax (default 500ms).
	RTO    Duration `json:"rto,omitempty"`
	RTOMax Duration `json:"rto_max,omitempty"`
	// MaxRetries bounds retransmissions per call; exhausting it fails the
	// call (counted under "failures"). Default 10.
	MaxRetries int `json:"max_retries,omitempty"`
}

// NodeSpec declares one simulated machine.
type NodeSpec struct {
	Name string `json:"name"`
	// Role is "client", "server", or "mixed" (both sends workloads and
	// serves calls).
	Role string `json:"role"`
	// Workers is the server's worker-pool width; default 1.
	Workers int `json:"workers,omitempty"`
	// Service is the fixed per-call handler time; default 100µs.
	Service Duration `json:"service,omitempty"`
	// ServiceJitter adds a uniform [0, jitter) draw per call.
	ServiceJitter Duration `json:"service_jitter,omitempty"`
	// Admission bounds the server's dispatch queue; zero capacity means an
	// unbounded FIFO queue with no shedding.
	Admission AdmissionSpec `json:"admission,omitempty"`
}

// AdmissionSpec mirrors internal/overload's configuration surface.
type AdmissionSpec struct {
	Policy   string `json:"policy,omitempty"` // fifo | lifo | deadline
	Capacity int    `json:"capacity,omitempty"`
}

func (a AdmissionSpec) policy() (overload.Policy, error) {
	if a.Policy == "" {
		return overload.FIFO, nil
	}
	return overload.ParsePolicy(a.Policy)
}

// LinkSpec impairs the traffic between two named nodes. Absent links are
// clean; a link only needs declaring to be impaired. AtoB governs frames
// from A to B, BtoA the reverse — the two directions of one faultnet
// profile. Plan phases replace both directions' impairments once the run
// reaches their After offset (a partition is a phase with drop 1 both
// ways; a later empty phase heals it).
type LinkSpec struct {
	A    string          `json:"a"`
	B    string          `json:"b"`
	AtoB faultnet.Impair `json:"a_to_b,omitempty"`
	BtoA faultnet.Impair `json:"b_to_a,omitempty"`
	Plan []LinkPhase     `json:"plan,omitempty"`
}

// LinkPhase is one timed transition of a link's impairments.
type LinkPhase struct {
	After Duration        `json:"after"`
	AtoB  faultnet.Impair `json:"a_to_b,omitempty"`
	BtoA  faultnet.Impair `json:"b_to_a,omitempty"`
}

// Profile renders the link as a faultnet profile: Out = A→B, In = B→A.
func (l LinkSpec) Profile() faultnet.Profile {
	p := faultnet.Profile{
		Name: l.A + "-" + l.B,
		Out:  l.AtoB,
		In:   l.BtoA,
	}
	for _, ph := range l.Plan {
		p.Plan = append(p.Plan, faultnet.Phase{After: ph.After, Out: ph.AtoB, In: ph.BtoA})
	}
	return p
}

// WorkloadSpec is one stream of calls from a client node.
type WorkloadSpec struct {
	Name   string `json:"name"`
	Client string `json:"client"`
	// Targets are the server nodes called; each call picks one (see Skew).
	Targets []string `json:"targets"`
	// Mode is "closed" (Outstanding concurrent call loops, each issuing
	// its next call when the previous resolves) or "open" (calls arrive on
	// a schedule regardless of completions).
	Mode string `json:"mode"`
	// Outstanding is the closed-loop fan-out width; default 1.
	Outstanding int `json:"outstanding,omitempty"`
	// Think delays each closed-loop caller between calls.
	Think Duration `json:"think,omitempty"`
	// RatePerSec is the open-loop arrival rate.
	RatePerSec float64 `json:"rate_per_sec,omitempty"`
	// Arrival is the open-loop arrival process: "poisson" (default) or
	// "uniform" (fixed spacing).
	Arrival string `json:"arrival,omitempty"`
	// Phases re-schedule the open-loop rate over the run (diurnal ramps).
	Phases []WorkPhase `json:"phases,omitempty"`
	// Skew biases target selection Zipf-style: target i is picked with
	// probability proportional to 1/(i+1)^skew, so the first target is the
	// hotspot. Zero selects targets round-robin.
	Skew float64 `json:"skew,omitempty"`
	// ArgBytes / ResultBytes pad the request and response frames.
	ArgBytes    int `json:"arg_bytes,omitempty"`
	ResultBytes int `json:"result_bytes,omitempty"`
	// Timeout is the per-call deadline (also the budget carried on the
	// wire for deadline admission). Zero means no deadline: calls ride the
	// retransmission engine until MaxRetries.
	Timeout Duration `json:"timeout,omitempty"`
	// Hedge issues a backup copy of a still-unanswered call to a second
	// target after this delay (tail-tolerant requests, as in the cluster
	// layer). The first response wins; the hedged call is excluded from the
	// stage identity since its reply may come from either server. Requires
	// at least two targets. Zero disables hedging.
	Hedge Duration `json:"hedge,omitempty"`
	// OverloadBackoff delays a closed-loop caller after a wire-level
	// rejection; default Timeout/2 (or 1ms when no timeout).
	OverloadBackoff Duration `json:"overload_backoff,omitempty"`
	// Start/Stop bound the workload's active window inside the run; a zero
	// Stop runs to the end.
	Start Duration `json:"start,omitempty"`
	Stop  Duration `json:"stop,omitempty"`
}

// WorkPhase is one open-loop rate transition.
type WorkPhase struct {
	After      Duration `json:"after"`
	RatePerSec float64  `json:"rate_per_sec"`
}

// Asserts is the pass/fail block: every bound present must hold for the
// run to pass, and cmd/fireflysim turns the outcome into its exit status.
type Asserts struct {
	Workloads map[string]WorkloadAssert `json:"workloads,omitempty"`
	Nodes     map[string]NodeAssert     `json:"nodes,omitempty"`
	// StageIdentityTolPct bounds the model's stage-accounting identity:
	// over calls completed without retransmission, the summed per-stage
	// times (request wire, queue wait, service, response wire) must match
	// summed end-to-end latency within this percentage. The executor's
	// stamps come independently from both sides of each call, so a drift
	// here means the executor is mis-attributing time.
	StageIdentityTolPct *float64 `json:"stage_identity_tol_pct,omitempty"`
}

// WorkloadAssert bounds one workload's steady-state results. Pointer
// fields distinguish "absent" from an explicit zero bound.
type WorkloadAssert struct {
	P50MaxUs         *float64 `json:"p50_max_us,omitempty"`
	P95MaxUs         *float64 `json:"p95_max_us,omitempty"`
	P99MaxUs         *float64 `json:"p99_max_us,omitempty"`
	P999MaxUs        *float64 `json:"p999_max_us,omitempty"`
	GoodputMinPerSec *float64 `json:"goodput_min_per_sec,omitempty"`
	MinCompleted     *int64   `json:"min_completed,omitempty"`
	MaxTimeouts      *int64   `json:"max_timeouts,omitempty"`
	MinTimeouts      *int64   `json:"min_timeouts,omitempty"`
	MaxFailures      *int64   `json:"max_failures,omitempty"`
	MinFailures      *int64   `json:"min_failures,omitempty"`
	MaxOverloads     *int64   `json:"max_overloads,omitempty"`
	MinRetransmits   *int64   `json:"min_retransmits,omitempty"`
	MaxRetransmits   *int64   `json:"max_retransmits,omitempty"`
	MinHedges        *int64   `json:"min_hedges,omitempty"`
	MaxHedges        *int64   `json:"max_hedges,omitempty"`
}

// NodeAssert bounds one server node's admission behaviour.
type NodeAssert struct {
	MinShed       *int64 `json:"min_shed,omitempty"`
	MaxShed       *int64 `json:"max_shed,omitempty"`
	MaxQueueDepth *int64 `json:"max_queue_depth,omitempty"`
}

// Parse decodes a runbook, rejecting unknown fields and trailing garbage,
// then validates it.
func Parse(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("runbook: %v", err)
	}
	var trailing json.RawMessage
	if err := dec.Decode(&trailing); err == nil || len(trailing) > 0 {
		return nil, fmt.Errorf("runbook: trailing data after runbook object")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Load reads and parses a runbook file; a missing name defaults to the
// file's base name.
func Load(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if s.Name == "" {
		s.Name = strings.TrimSuffix(filepath.Base(path), ".json")
	}
	return s, nil
}

// Validate runs the semantic checks: every reference resolves to a declared
// node with a compatible role, impairment profiles are in range, and
// assertion bounds are sane. It is deliberately strict — a runbook that
// validates is a runbook the executor can run.
func (s *Spec) Validate() error {
	if time.Duration(s.Duration) <= 0 {
		return fmt.Errorf("runbook: duration must be positive")
	}
	if time.Duration(s.Duration) > MaxDuration {
		return fmt.Errorf("runbook: duration %v exceeds the %v cap", time.Duration(s.Duration), MaxDuration)
	}
	if s.Warmup < 0 || time.Duration(s.Warmup) >= time.Duration(s.Duration) {
		return fmt.Errorf("runbook: warmup must be in [0, duration)")
	}
	switch s.Fabric.Kind {
	case "", "switched", "shared":
	default:
		return fmt.Errorf("runbook: fabric.kind %q (want switched or shared)", s.Fabric.Kind)
	}
	if s.Fabric.Mbps < 0 {
		return fmt.Errorf("runbook: fabric.mbps negative")
	}
	if s.RPC.RTO < 0 || s.RPC.RTOMax < 0 || s.RPC.MaxRetries < 0 {
		return fmt.Errorf("runbook: rpc settings must be non-negative")
	}

	if len(s.Nodes) == 0 {
		return fmt.Errorf("runbook: no nodes declared")
	}
	if len(s.Nodes) > MaxNodes {
		return fmt.Errorf("runbook: %d nodes exceeds the %d cap", len(s.Nodes), MaxNodes)
	}
	nodes := make(map[string]*NodeSpec, len(s.Nodes))
	for i := range s.Nodes {
		n := &s.Nodes[i]
		if n.Name == "" {
			return fmt.Errorf("runbook: nodes[%d] has no name", i)
		}
		if _, dup := nodes[n.Name]; dup {
			return fmt.Errorf("runbook: duplicate node %q", n.Name)
		}
		switch n.Role {
		case "client", "server", "mixed":
		default:
			return fmt.Errorf("runbook: node %q role %q (want client, server, or mixed)", n.Name, n.Role)
		}
		if n.Workers < 0 || n.Service < 0 || n.ServiceJitter < 0 {
			return fmt.Errorf("runbook: node %q has a negative worker count or service time", n.Name)
		}
		if n.Role == "client" && (n.Workers != 0 || n.Service != 0 || n.Admission != (AdmissionSpec{})) {
			return fmt.Errorf("runbook: node %q is a client but declares server settings", n.Name)
		}
		if _, err := n.Admission.policy(); err != nil {
			return fmt.Errorf("runbook: node %q: %v", n.Name, err)
		}
		if n.Admission.Capacity < 0 {
			return fmt.Errorf("runbook: node %q admission.capacity negative", n.Name)
		}
		if n.Admission.Policy != "" && n.Admission.Capacity == 0 {
			return fmt.Errorf("runbook: node %q sets admission.policy without admission.capacity", n.Name)
		}
		nodes[n.Name] = n
	}

	seenLink := make(map[string]bool)
	for i := range s.Links {
		l := &s.Links[i]
		if nodes[l.A] == nil {
			return fmt.Errorf("runbook: links[%d] references undeclared node %q", i, l.A)
		}
		if nodes[l.B] == nil {
			return fmt.Errorf("runbook: links[%d] references undeclared node %q", i, l.B)
		}
		if l.A == l.B {
			return fmt.Errorf("runbook: links[%d] connects %q to itself", i, l.A)
		}
		key := l.A + "\x00" + l.B
		if l.B < l.A {
			key = l.B + "\x00" + l.A
		}
		if seenLink[key] {
			return fmt.Errorf("runbook: duplicate link between %q and %q", l.A, l.B)
		}
		seenLink[key] = true
		p := l.Profile()
		if err := p.Validate(); err != nil {
			return fmt.Errorf("runbook: links[%d] (%s): %v", i, p.Name, err)
		}
	}

	if len(s.Workloads) == 0 {
		return fmt.Errorf("runbook: no workloads declared")
	}
	seenWl := make(map[string]bool)
	for i := range s.Workloads {
		w := &s.Workloads[i]
		if w.Name == "" {
			return fmt.Errorf("runbook: workloads[%d] has no name", i)
		}
		if seenWl[w.Name] {
			return fmt.Errorf("runbook: duplicate workload %q", w.Name)
		}
		seenWl[w.Name] = true
		cl := nodes[w.Client]
		if cl == nil {
			return fmt.Errorf("runbook: workload %q client references undeclared node %q", w.Name, w.Client)
		}
		if cl.Role == "server" {
			return fmt.Errorf("runbook: workload %q client %q has role server", w.Name, w.Client)
		}
		if len(w.Targets) == 0 {
			return fmt.Errorf("runbook: workload %q has no targets", w.Name)
		}
		for _, tgt := range w.Targets {
			tn := nodes[tgt]
			if tn == nil {
				return fmt.Errorf("runbook: workload %q targets undeclared node %q", w.Name, tgt)
			}
			if tn.Role == "client" {
				return fmt.Errorf("runbook: workload %q target %q has role client", w.Name, tgt)
			}
		}
		switch w.Mode {
		case "closed":
			if w.Outstanding < 0 || w.Outstanding > MaxOutstanding {
				return fmt.Errorf("runbook: workload %q outstanding must be in [0, %d]", w.Name, MaxOutstanding)
			}
			if w.RatePerSec != 0 || len(w.Phases) != 0 || w.Arrival != "" {
				return fmt.Errorf("runbook: workload %q is closed-loop but sets open-loop arrival fields", w.Name)
			}
		case "open":
			if w.RatePerSec <= 0 || w.RatePerSec > MaxRatePerSec {
				return fmt.Errorf("runbook: workload %q rate_per_sec must be in (0, %g]", w.Name, MaxRatePerSec)
			}
			switch w.Arrival {
			case "", "poisson", "uniform":
			default:
				return fmt.Errorf("runbook: workload %q arrival %q (want poisson or uniform)", w.Name, w.Arrival)
			}
			if w.Outstanding != 0 || w.Think != 0 {
				return fmt.Errorf("runbook: workload %q is open-loop but sets closed-loop fields", w.Name)
			}
			for j, ph := range w.Phases {
				if ph.After <= 0 || ph.RatePerSec <= 0 || ph.RatePerSec > MaxRatePerSec {
					return fmt.Errorf("runbook: workload %q phases[%d] needs positive after and rate", w.Name, j)
				}
			}
		default:
			return fmt.Errorf("runbook: workload %q mode %q (want closed or open)", w.Name, w.Mode)
		}
		if w.Skew < 0 {
			return fmt.Errorf("runbook: workload %q skew negative", w.Name)
		}
		if w.ArgBytes < 0 || w.ArgBytes > MaxPayloadBytes || w.ResultBytes < 0 || w.ResultBytes > MaxPayloadBytes {
			return fmt.Errorf("runbook: workload %q payload bytes must be in [0, %d]", w.Name, MaxPayloadBytes)
		}
		if w.Timeout < 0 || w.Think < 0 || w.OverloadBackoff < 0 || w.Start < 0 || w.Stop < 0 || w.Hedge < 0 {
			return fmt.Errorf("runbook: workload %q has a negative duration", w.Name)
		}
		if w.Hedge > 0 && len(w.Targets) < 2 {
			return fmt.Errorf("runbook: workload %q hedges but has fewer than two targets", w.Name)
		}
		if w.Stop != 0 && w.Stop <= w.Start {
			return fmt.Errorf("runbook: workload %q stop must be after start", w.Name)
		}
	}

	for name, wa := range s.Assert.Workloads {
		if !seenWl[name] {
			return fmt.Errorf("runbook: assert.workloads references undeclared workload %q", name)
		}
		if err := wa.validate(name); err != nil {
			return err
		}
	}
	for name, na := range s.Assert.Nodes {
		n := nodes[name]
		if n == nil {
			return fmt.Errorf("runbook: assert.nodes references undeclared node %q", name)
		}
		if n.Role == "client" {
			return fmt.Errorf("runbook: assert.nodes[%q] targets a client node (shed bounds need a server)", name)
		}
		if err := na.validate(name); err != nil {
			return err
		}
	}
	if tol := s.Assert.StageIdentityTolPct; tol != nil && (*tol < 0 || *tol > 100) {
		return fmt.Errorf("runbook: assert.stage_identity_tol_pct must be in [0, 100]")
	}
	return nil
}

func (wa WorkloadAssert) validate(name string) error {
	quantiles := []struct {
		field string
		v     *float64
	}{
		{"p50_max_us", wa.P50MaxUs}, {"p95_max_us", wa.P95MaxUs},
		{"p99_max_us", wa.P99MaxUs}, {"p999_max_us", wa.P999MaxUs},
	}
	prev := 0.0
	prevField := ""
	for _, q := range quantiles {
		if q.v == nil {
			continue
		}
		if *q.v < 0 {
			return fmt.Errorf("runbook: assert.workloads[%q].%s negative", name, q.field)
		}
		if prevField != "" && *q.v < prev {
			return fmt.Errorf("runbook: assert.workloads[%q].%s (%g) below %s (%g); quantile bounds must be non-decreasing",
				name, q.field, *q.v, prevField, prev)
		}
		prev, prevField = *q.v, q.field
	}
	if wa.GoodputMinPerSec != nil && *wa.GoodputMinPerSec < 0 {
		return fmt.Errorf("runbook: assert.workloads[%q].goodput_min_per_sec negative", name)
	}
	counts := []struct {
		field string
		v     *int64
	}{
		{"min_completed", wa.MinCompleted}, {"max_timeouts", wa.MaxTimeouts},
		{"min_timeouts", wa.MinTimeouts}, {"max_failures", wa.MaxFailures},
		{"min_failures", wa.MinFailures}, {"max_overloads", wa.MaxOverloads},
		{"min_retransmits", wa.MinRetransmits}, {"max_retransmits", wa.MaxRetransmits},
		{"min_hedges", wa.MinHedges}, {"max_hedges", wa.MaxHedges},
	}
	for _, c := range counts {
		if c.v != nil && *c.v < 0 {
			return fmt.Errorf("runbook: assert.workloads[%q].%s negative", name, c.field)
		}
	}
	pairs := []struct {
		minF, maxF string
		min, max   *int64
	}{
		{"min_timeouts", "max_timeouts", wa.MinTimeouts, wa.MaxTimeouts},
		{"min_failures", "max_failures", wa.MinFailures, wa.MaxFailures},
		{"min_retransmits", "max_retransmits", wa.MinRetransmits, wa.MaxRetransmits},
		{"min_hedges", "max_hedges", wa.MinHedges, wa.MaxHedges},
	}
	for _, p := range pairs {
		if p.min != nil && p.max != nil && *p.min > *p.max {
			return fmt.Errorf("runbook: assert.workloads[%q].%s (%d) exceeds %s (%d)",
				name, p.minF, *p.min, p.maxF, *p.max)
		}
	}
	return nil
}

func (na NodeAssert) validate(name string) error {
	for _, c := range []struct {
		field string
		v     *int64
	}{{"min_shed", na.MinShed}, {"max_shed", na.MaxShed}, {"max_queue_depth", na.MaxQueueDepth}} {
		if c.v != nil && *c.v < 0 {
			return fmt.Errorf("runbook: assert.nodes[%q].%s negative", name, c.field)
		}
	}
	if na.MinShed != nil && na.MaxShed != nil && *na.MinShed > *na.MaxShed {
		return fmt.Errorf("runbook: assert.nodes[%q].min_shed (%d) exceeds max_shed (%d)",
			name, *na.MinShed, *na.MaxShed)
	}
	return nil
}

// defaults returns the spec's effective tunables.
func (s *Spec) seed() uint64 {
	if s.Seed == 0 {
		return 1
	}
	return s.Seed
}

func (s *Spec) mbps() float64 {
	if s.Fabric.Mbps == 0 {
		return 10
	}
	return s.Fabric.Mbps
}

func (s *Spec) rto() time.Duration {
	if s.RPC.RTO == 0 {
		return 10 * time.Millisecond
	}
	return time.Duration(s.RPC.RTO)
}

func (s *Spec) rtoMax() time.Duration {
	if s.RPC.RTOMax == 0 {
		return 500 * time.Millisecond
	}
	return time.Duration(s.RPC.RTOMax)
}

func (s *Spec) maxRetries() int {
	if s.RPC.MaxRetries == 0 {
		return 10
	}
	return s.RPC.MaxRetries
}

func (n *NodeSpec) service() time.Duration {
	if n.Service == 0 {
		return 100 * time.Microsecond
	}
	return time.Duration(n.Service)
}

func (n *NodeSpec) workers() int {
	if n.Workers == 0 {
		return 1
	}
	return n.Workers
}

func (w *WorkloadSpec) outstanding() int {
	if w.Outstanding == 0 {
		return 1
	}
	return w.Outstanding
}

func (w *WorkloadSpec) backoff() time.Duration {
	if w.OverloadBackoff != 0 {
		return time.Duration(w.OverloadBackoff)
	}
	if w.Timeout != 0 {
		return time.Duration(w.Timeout) / 2
	}
	return time.Millisecond
}
