package runbook

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"fireflyrpc/internal/faultnet"
	"fireflyrpc/internal/stats"
)

// Report is one run's complete machine-readable outcome. Field order is
// fixed and no maps appear, so JSON() is byte-identical for identical runs.
type Report struct {
	Runbook    string            `json:"runbook"`
	Seed       uint64            `json:"seed"`
	DurationNs int64             `json:"duration_ns"`
	WarmupNs   int64             `json:"warmup_ns"`
	Fabric     string            `json:"fabric"`
	Workloads  []WorkloadReport  `json:"workloads"`
	Nodes      []NodeReport      `json:"nodes"`
	Links      []LinkReport      `json:"links,omitempty"`
	Identity   IdentityReport    `json:"identity"`
	Assertions []AssertionResult `json:"assertions,omitempty"`
	Pass       bool              `json:"pass"`
}

// WorkloadReport is one workload's steady-state (post-warmup) results.
type WorkloadReport struct {
	Name          string        `json:"name"`
	Started       int64         `json:"started"`
	Completed     int64         `json:"completed"`
	Timeouts      int64         `json:"timeouts"`
	Failures      int64         `json:"failures"`
	Overloads     int64         `json:"overloads"`
	Retransmits   int64         `json:"retransmits"`
	Hedges        int64         `json:"hedges"`
	InFlight      int64         `json:"in_flight"`
	GoodputPerSec float64       `json:"goodput_per_sec"`
	Latency       stats.Summary `json:"latency"`
}

// NodeReport is one server node's admission counters.
type NodeReport struct {
	Name          string `json:"name"`
	Role          string `json:"role"`
	Served        int64  `json:"served"`
	ShedCapacity  int64  `json:"shed_capacity"`
	ShedDeadline  int64  `json:"shed_deadline"`
	CorruptDrops  int64  `json:"corrupt_drops"`
	MaxQueueDepth int    `json:"max_queue_depth"`
}

// LinkReport is one direction of a declared link's impairment counters.
// Unlike workload and node counters these span the whole run including
// warmup — they are fault-engine diagnostics, not assertion targets.
type LinkReport struct {
	Link      string `json:"link"`
	Frames    int64  `json:"frames"`
	Drops     int64  `json:"drops"`
	Dups      int64  `json:"dups"`
	Delayed   int64  `json:"delayed"`
	Reordered int64  `json:"reordered"`
	Corrupted int64  `json:"corrupted"`
}

// IdentityReport is the stage-accounting identity over calls completed
// without retransmission: req wire + queue + service + resp wire vs the
// client's end-to-end latency.
type IdentityReport struct {
	Calls      int64   `json:"calls"`
	E2eNs      int64   `json:"e2e_ns"`
	ReqWireNs  int64   `json:"req_wire_ns"`
	QueueNs    int64   `json:"queue_ns"`
	ServiceNs  int64   `json:"service_ns"`
	RespWireNs int64   `json:"resp_wire_ns"`
	DeltaPct   float64 `json:"delta_pct"`
}

// AssertionResult is one evaluated bound from the runbook's assert block.
type AssertionResult struct {
	ID   string `json:"id"`
	Want string `json:"want"`
	Got  string `json:"got"`
	Pass bool   `json:"pass"`
}

// buildReport snapshots the run and evaluates the assert block.
func (ex *exec) buildReport(seed uint64) *Report {
	rep := &Report{
		Runbook:    ex.spec.Name,
		Seed:       seed,
		DurationNs: int64(ex.spec.Duration),
		WarmupNs:   int64(ex.spec.Warmup),
		Fabric:     ex.fab.kind,
	}
	windowNs := rep.DurationNs - rep.WarmupNs
	for _, w := range ex.wls {
		wr := WorkloadReport{
			Name:        w.spec.Name,
			Started:     w.started,
			Completed:   w.completed,
			Timeouts:    w.timeouts,
			Failures:    w.failures,
			Overloads:   w.overloads,
			Retransmits: w.retransmits,
			Hedges:      w.hedges,
		}
		wr.InFlight = wr.Started - wr.Completed - wr.Timeouts - wr.Failures - wr.Overloads
		if windowNs > 0 {
			wr.GoodputPerSec = float64(wr.Completed) * float64(time.Second) / float64(windowNs)
		}
		snap := w.hist.Snapshot()
		wr.Latency = snap.Summarize()
		rep.Workloads = append(rep.Workloads, wr)
	}
	for _, n := range ex.nodes {
		if n.spec.Role == "client" {
			continue
		}
		rep.Nodes = append(rep.Nodes, NodeReport{
			Name:          n.spec.Name,
			Role:          n.spec.Role,
			Served:        n.served,
			ShedCapacity:  n.shedCapacity,
			ShedDeadline:  n.shedDeadline,
			CorruptDrops:  n.corruptDrops,
			MaxQueueDepth: n.maxQueue,
		})
	}
	for _, l := range ex.links {
		rep.Links = append(rep.Links,
			linkReport(linkName(l.a, l.b), l.im.Stats(faultnet.DirOut)),
			linkReport(linkName(l.b, l.a), l.im.Stats(faultnet.DirIn)))
	}
	ia := &ex.identity
	rep.Identity = IdentityReport{
		Calls:      ia.calls,
		E2eNs:      ia.e2eNs,
		ReqWireNs:  ia.reqWireNs,
		QueueNs:    ia.queueNs,
		ServiceNs:  ia.svcNs,
		RespWireNs: ia.respWireNs,
	}
	if ia.e2eNs > 0 {
		stage := ia.reqWireNs + ia.queueNs + ia.svcNs + ia.respWireNs
		delta := stage - ia.e2eNs
		if delta < 0 {
			delta = -delta
		}
		rep.Identity.DeltaPct = float64(delta) / float64(ia.e2eNs) * 100
	}
	rep.Assertions = ex.evalAsserts(rep)
	rep.Pass = true
	for _, a := range rep.Assertions {
		if !a.Pass {
			rep.Pass = false
		}
	}
	return rep
}

func linkReport(name string, s faultnet.Stats) LinkReport {
	return LinkReport{
		Link:      name,
		Frames:    s.Frames,
		Drops:     s.Drops,
		Dups:      s.Dups,
		Delayed:   s.Delayed,
		Reordered: s.Reordered,
		Corrupted: s.Corrupted,
	}
}

// evalAsserts walks the assert block in sorted-name order so the result
// list (and therefore the report bytes) is deterministic.
func (ex *exec) evalAsserts(rep *Report) []AssertionResult {
	var out []AssertionResult
	byWl := make(map[string]*WorkloadReport)
	for i := range rep.Workloads {
		byWl[rep.Workloads[i].Name] = &rep.Workloads[i]
	}
	byNode := make(map[string]*NodeReport)
	for i := range rep.Nodes {
		byNode[rep.Nodes[i].Name] = &rep.Nodes[i]
	}

	for _, name := range sortedKeys(ex.spec.Assert.Workloads) {
		wa := ex.spec.Assert.Workloads[name]
		wr := byWl[name]
		id := "workload:" + name
		fb := func(field string, bound *float64, got float64, max bool) {
			if bound != nil {
				out = append(out, boundF(id+"/"+field, *bound, got, max))
			}
		}
		cb := func(field string, bound *int64, got int64, max bool) {
			if bound != nil {
				out = append(out, boundC(id+"/"+field, *bound, got, max))
			}
		}
		fb("p50_max_us", wa.P50MaxUs, wr.Latency.P50Us, true)
		fb("p95_max_us", wa.P95MaxUs, wr.Latency.P95Us, true)
		fb("p99_max_us", wa.P99MaxUs, wr.Latency.P99Us, true)
		fb("p999_max_us", wa.P999MaxUs, wr.Latency.P999Us, true)
		fb("goodput_min_per_sec", wa.GoodputMinPerSec, wr.GoodputPerSec, false)
		cb("min_completed", wa.MinCompleted, wr.Completed, false)
		cb("min_timeouts", wa.MinTimeouts, wr.Timeouts, false)
		cb("max_timeouts", wa.MaxTimeouts, wr.Timeouts, true)
		cb("min_failures", wa.MinFailures, wr.Failures, false)
		cb("max_failures", wa.MaxFailures, wr.Failures, true)
		cb("max_overloads", wa.MaxOverloads, wr.Overloads, true)
		cb("min_retransmits", wa.MinRetransmits, wr.Retransmits, false)
		cb("max_retransmits", wa.MaxRetransmits, wr.Retransmits, true)
		cb("min_hedges", wa.MinHedges, wr.Hedges, false)
		cb("max_hedges", wa.MaxHedges, wr.Hedges, true)
	}

	for _, name := range sortedKeys(ex.spec.Assert.Nodes) {
		na := ex.spec.Assert.Nodes[name]
		nr := byNode[name]
		id := "node:" + name
		shed := nr.ShedCapacity + nr.ShedDeadline
		if na.MinShed != nil {
			out = append(out, boundC(id+"/min_shed", *na.MinShed, shed, false))
		}
		if na.MaxShed != nil {
			out = append(out, boundC(id+"/max_shed", *na.MaxShed, shed, true))
		}
		if na.MaxQueueDepth != nil {
			out = append(out, boundC(id+"/max_queue_depth", *na.MaxQueueDepth, int64(nr.MaxQueueDepth), true))
		}
	}

	if tol := ex.spec.Assert.StageIdentityTolPct; tol != nil {
		out = append(out, boundF("identity/stage_identity_tol_pct", *tol, rep.Identity.DeltaPct, true))
	}
	return out
}

func boundF(id string, bound, got float64, max bool) AssertionResult {
	r := AssertionResult{ID: id, Got: fmt.Sprintf("%g", got)}
	if max {
		r.Want = fmt.Sprintf("<= %g", bound)
		r.Pass = got <= bound
	} else {
		r.Want = fmt.Sprintf(">= %g", bound)
		r.Pass = got >= bound
	}
	return r
}

func boundC(id string, bound, got int64, max bool) AssertionResult {
	r := AssertionResult{ID: id, Got: fmt.Sprintf("%d", got)}
	if max {
		r.Want = fmt.Sprintf("<= %d", bound)
		r.Pass = got <= bound
	} else {
		r.Want = fmt.Sprintf(">= %d", bound)
		r.Pass = got >= bound
	}
	return r
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// JSON renders the report with stable formatting (trailing newline).
func (r *Report) JSON() []byte {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		panic(err) // no unmarshalable types in Report
	}
	return append(b, '\n')
}

// Render writes the human-readable report.
func (r *Report) Render(w io.Writer) {
	fmt.Fprintf(w, "runbook %s  seed %d  duration %v  warmup %v  fabric %s\n",
		r.Runbook, r.Seed, time.Duration(r.DurationNs), time.Duration(r.WarmupNs), r.Fabric)
	for _, wr := range r.Workloads {
		fmt.Fprintf(w, "  workload %-16s completed %d/%d (%.1f/s)  timeouts %d  failures %d  overloads %d  retransmits %d  hedges %d  in-flight %d\n",
			wr.Name, wr.Completed, wr.Started, wr.GoodputPerSec,
			wr.Timeouts, wr.Failures, wr.Overloads, wr.Retransmits, wr.Hedges, wr.InFlight)
		if wr.Latency.N > 0 {
			fmt.Fprintf(w, "    latency p50 %.0fµs  p95 %.0fµs  p99 %.0fµs  p99.9 %.0fµs  max %.0fµs\n",
				wr.Latency.P50Us, wr.Latency.P95Us, wr.Latency.P99Us, wr.Latency.P999Us, wr.Latency.MaxUs)
		}
	}
	for _, nr := range r.Nodes {
		fmt.Fprintf(w, "  node %-20s served %d  shed %d cap + %d deadline  corrupt-drops %d  max-queue %d\n",
			nr.Name, nr.Served, nr.ShedCapacity, nr.ShedDeadline, nr.CorruptDrops, nr.MaxQueueDepth)
	}
	for _, lr := range r.Links {
		fmt.Fprintf(w, "  link %-20s frames %d  drops %d  dups %d  delayed %d  reordered %d  corrupted %d\n",
			lr.Link, lr.Frames, lr.Drops, lr.Dups, lr.Delayed, lr.Reordered, lr.Corrupted)
	}
	if r.Identity.Calls > 0 {
		fmt.Fprintf(w, "  identity over %d calls: stage sum within %.4f%% of end-to-end\n",
			r.Identity.Calls, r.Identity.DeltaPct)
	}
	for _, a := range r.Assertions {
		verdict := "PASS"
		if !a.Pass {
			verdict = "FAIL"
		}
		fmt.Fprintf(w, "  %s %-44s want %-12s got %s\n", verdict, a.ID, a.Want, a.Got)
	}
	if r.Pass {
		fmt.Fprintln(w, "PASS")
	} else {
		fmt.Fprintln(w, "FAIL")
	}
}
