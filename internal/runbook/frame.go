package runbook

import (
	"encoding/binary"

	"fireflyrpc/internal/wire"
)

// ethHdrLen avoids sprinkling the wire package constant through the model.
const ethHdrLen = wire.EthernetHeaderLen

// The modeled RPC frame rides inside a real Ethernet frame on the simulated
// segment. It is deliberately tiny — a macro-level scenario cares about
// frame counts, sizes, and addressing, not the full Firefly packet layout —
// but it carries everything the model's semantics need: a call id for
// dedup and response matching, the remaining deadline budget for deadline
// admission, and a checksum so faultnet's byte corruption surfaces as a
// dropped (not misrouted) frame, exactly as a checksumming stack behaves.
//
// Layout (all integers big-endian):
//
//	[0]     magic 0xF5
//	[1]     kind (req, resp, reject)
//	[2:10]  call id
//	[10:18] budget ns (req: remaining deadline at send; 0 = none)
//	[18:22] workload index
//	[22]    xor checksum of every other payload byte
//	[23:]   zero padding to the workload's arg/result size
const (
	frameMagic    = 0xF5
	frameHdrLen   = 23
	frameCksumOff = 22
)

const (
	kindReq = iota + 1
	kindResp
	kindReject
)

// rpcFrame is one modeled frame's semantic content.
type rpcFrame struct {
	kind     byte
	callID   uint64
	budgetNs int64
	workload uint32
}

// payloadLen returns the frame's on-wire payload length for a padding size.
func payloadLen(padding int) int { return frameHdrLen + padding }

// wireFrameLen is the full Ethernet frame length for a padding size.
func wireFrameLen(padding int) int { return ethHdrLen + payloadLen(padding) }

// marshalFrame renders f with the given padding into a fresh payload.
func marshalFrame(f rpcFrame, padding int) []byte {
	buf := make([]byte, payloadLen(padding))
	buf[0] = frameMagic
	buf[1] = f.kind
	binary.BigEndian.PutUint64(buf[2:], f.callID)
	binary.BigEndian.PutUint64(buf[10:], uint64(f.budgetNs))
	binary.BigEndian.PutUint32(buf[18:], f.workload)
	buf[frameCksumOff] = xorSum(buf)
	return buf
}

// parseFrame decodes a payload, rejecting short, mistyped, or corrupted
// frames (any single flipped byte changes the xor sum).
func parseFrame(buf []byte) (rpcFrame, bool) {
	if len(buf) < frameHdrLen || buf[0] != frameMagic {
		return rpcFrame{}, false
	}
	if xorSum(buf) != buf[frameCksumOff] {
		return rpcFrame{}, false
	}
	f := rpcFrame{
		kind:     buf[1],
		callID:   binary.BigEndian.Uint64(buf[2:]),
		budgetNs: int64(binary.BigEndian.Uint64(buf[10:])),
		workload: binary.BigEndian.Uint32(buf[18:]),
	}
	if f.kind < kindReq || f.kind > kindReject {
		return rpcFrame{}, false
	}
	return f, true
}

// xorSum folds every payload byte except the checksum slot.
func xorSum(buf []byte) byte {
	var s byte
	for i, b := range buf {
		if i == frameCksumOff {
			continue
		}
		s ^= b
	}
	return s
}
