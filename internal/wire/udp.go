package wire

// UDPHeader is the 8-byte UDP header.
type UDPHeader struct {
	SrcPort  uint16
	DstPort  uint16
	Length   uint16 // header + payload
	Checksum uint16
}

// MarshalTo writes the header into b[0:8] without computing a checksum
// (use UDPChecksum separately; the Firefly sender computes it as an explicit
// fast-path step whose cost the paper itemizes).
func (h *UDPHeader) MarshalTo(b []byte) {
	put16(b[0:], h.SrcPort)
	put16(b[2:], h.DstPort)
	put16(b[4:], h.Length)
	put16(b[6:], h.Checksum)
}

// UnmarshalUDP parses the header at the front of b and returns the UDP
// payload (Length permitting).
func UnmarshalUDP(b []byte) (UDPHeader, []byte, error) {
	var h UDPHeader
	if len(b) < UDPHeaderLen {
		return h, nil, ErrTruncated
	}
	h.SrcPort = be16(b[0:])
	h.DstPort = be16(b[2:])
	h.Length = be16(b[4:])
	h.Checksum = be16(b[6:])
	if int(h.Length) < UDPHeaderLen || int(h.Length) > len(b) {
		return h, nil, ErrTruncated
	}
	return h, b[UDPHeaderLen:h.Length], nil
}

// UDPChecksum computes the UDP checksum over the pseudo-header, the UDP
// header in udp (with its checksum field treated as zero), and the payload.
// Per RFC 768 a computed checksum of zero is transmitted as 0xffff.
func UDPChecksum(src, dst IPAddr, udp []byte, payload []byte) uint16 {
	var pseudo [12]byte
	copy(pseudo[0:4], src[:])
	copy(pseudo[4:8], dst[:])
	pseudo[8] = 0
	pseudo[9] = IPProtoUDP
	put16(pseudo[10:], uint16(UDPHeaderLen+len(payload)))
	acc := SumWords(0, pseudo[:])
	acc = SumWords(acc, udp[0:6]) // ports + length
	// checksum field treated as zero: skip udp[6:8]
	acc = SumWords(acc, payload)
	s := FinishChecksum(acc)
	if s == 0 {
		s = 0xffff
	}
	return s
}

// VerifyUDPChecksum reports whether the datagram (UDP header + payload)
// checks out against the pseudo-header. A transmitted checksum of zero means
// "not computed" and verifies trivially (the §4.2.4 variant).
func VerifyUDPChecksum(src, dst IPAddr, datagram []byte) bool {
	if len(datagram) < UDPHeaderLen {
		return false
	}
	got := be16(datagram[6:])
	if got == 0 {
		return true
	}
	want := UDPChecksum(src, dst, datagram[:UDPHeaderLen], datagram[UDPHeaderLen:])
	return got == want
}
