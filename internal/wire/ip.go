package wire

// IPv4Header is a fixed 20-byte IPv4 header (no options), as the RPC fast
// path always generates.
type IPv4Header struct {
	TOS      uint8
	TotalLen uint16 // header + payload
	ID       uint16
	Flags    uint8 // upper 3 bits of the fragment word
	FragOff  uint16
	TTL      uint8
	Protocol uint8
	Src      IPAddr
	Dst      IPAddr
}

// Marshal appends the 20-byte header (with correct header checksum) to b.
func (h *IPv4Header) Marshal(b []byte) []byte {
	start := len(b)
	b = append(b, make([]byte, IPv4HeaderLen)...)
	h.MarshalTo(b[start:])
	return b
}

// MarshalTo writes the header, computing the header checksum, into b[0:20].
func (h *IPv4Header) MarshalTo(b []byte) {
	b[0] = 0x45 // version 4, IHL 5
	b[1] = h.TOS
	put16(b[2:], h.TotalLen)
	put16(b[4:], h.ID)
	put16(b[6:], uint16(h.Flags)<<13|h.FragOff&0x1fff)
	b[8] = h.TTL
	b[9] = h.Protocol
	put16(b[10:], 0) // checksum placeholder
	copy(b[12:16], h.Src[:])
	copy(b[16:20], h.Dst[:])
	put16(b[10:], Checksum(b[:IPv4HeaderLen]))
}

// UnmarshalIPv4 parses and checksum-verifies the header at the front of b,
// returning the remainder of the IP datagram (TotalLen permitting).
func UnmarshalIPv4(b []byte) (IPv4Header, []byte, error) {
	var h IPv4Header
	if len(b) < IPv4HeaderLen {
		return h, nil, ErrTruncated
	}
	if b[0]>>4 != 4 || b[0]&0x0f != 5 {
		return h, nil, ErrBadIPVersion
	}
	if !VerifyChecksum(b[:IPv4HeaderLen]) {
		return h, nil, ErrBadIPChecksum
	}
	h.TOS = b[1]
	h.TotalLen = be16(b[2:])
	h.ID = be16(b[4:])
	frag := be16(b[6:])
	h.Flags = uint8(frag >> 13)
	h.FragOff = frag & 0x1fff
	h.TTL = b[8]
	h.Protocol = b[9]
	copy(h.Src[:], b[12:16])
	copy(h.Dst[:], b[16:20])
	if int(h.TotalLen) < IPv4HeaderLen || int(h.TotalLen) > len(b) {
		return h, nil, ErrTruncated
	}
	return h, b[IPv4HeaderLen:h.TotalLen], nil
}
