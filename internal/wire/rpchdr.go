package wire

import "fmt"

// RPCVersion identifies the packet-exchange protocol revision.
const RPCVersion = 0x4652 // "FR"

// PacketType distinguishes the packet-exchange protocol's message kinds,
// following Birrell & Nelson's Cedar RPC design: on the fast path a result
// packet implicitly acknowledges its call packet and the next call packet
// implicitly acknowledges the previous result.
type PacketType uint8

const (
	// TypeCall carries a call's arguments (or one fragment of them).
	TypeCall PacketType = iota + 1
	// TypeResult carries a call's results (or one fragment of them); it
	// implicitly acknowledges the call.
	TypeResult
	// TypeAck explicitly acknowledges a call or result fragment; used only
	// off the fast path (multi-packet transfers and retransmission).
	TypeAck
	// TypeProbe asks whether the peer still considers the call active.
	TypeProbe
	// TypeProbeReply answers a probe.
	TypeProbeReply
	// TypeReject reports a binding or dispatch failure back to the caller.
	TypeReject
	// TypeCancel tells the server the caller has abandoned the identified
	// call (its context was cancelled): partial reassembly state can be
	// dropped and the eventual result need not be sent or retained. It is
	// advisory and best-effort, like everything else on a lossy datagram
	// transport — a lost cancel merely wastes one execution.
	TypeCancel
	// TypeHello opens session negotiation with a peer: the payload (see
	// hello.go) carries the sender's session version range and feature
	// bitset; Seq carries a nonce echoed by the ack. A pre-hello binary
	// counts it as a bad frame and stays silent, which is the legacy
	// fallback signal.
	TypeHello
	// TypeHelloAck answers a hello with the agreed version (0 = no common
	// version, stay legacy) and feature intersection, echoing the nonce.
	TypeHelloAck
)

// String names the packet type.
func (t PacketType) String() string {
	switch t {
	case TypeCall:
		return "call"
	case TypeResult:
		return "result"
	case TypeAck:
		return "ack"
	case TypeProbe:
		return "probe"
	case TypeProbeReply:
		return "probe-reply"
	case TypeReject:
		return "reject"
	case TypeCancel:
		return "cancel"
	case TypeHello:
		return "hello"
	case TypeHelloAck:
		return "hello-ack"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// Header flags.
const (
	// FlagPleaseAck asks the receiver for an explicit acknowledgement
	// (set on retransmissions and on non-final fragments).
	FlagPleaseAck = 1 << 0
	// FlagLastFrag marks the final fragment of a multi-packet call/result.
	FlagLastFrag = 1 << 1
	// FlagTraced marks a call the caller sampled for stage tracing, asking
	// the server to stamp its own receive/dispatch/execute/result stages
	// into its trace ring so the two sides' records can be joined into a
	// full-path latency accounting. Advisory: a server with tracing
	// disabled ignores it.
	FlagTraced = 1 << 3
	// FlagBudget marks a call packet whose Hint field carries the caller's
	// remaining deadline budget in milliseconds, so a server running
	// admission control can shed requests that cannot complete in time.
	FlagBudget = 1 << 4
	// FlagTraceCtx marks a call whose message stream begins with a TraceCtx
	// prefix (see tracectx.go). Set on every fragment of the call; the
	// prefix bytes ride in fragment 0. Only sent on sessions that
	// negotiated FeatTrace — a v0 peer would misparse the prefix as
	// arguments.
	FlagTraceCtx = 1 << 5
)

// Reject reasons, carried in the Hint field of a TypeReject packet. The
// zero value keeps the original meaning (dispatch failure: unknown
// interface/procedure or a handler error) so old and new endpoints
// interoperate.
const (
	// RejectDispatch: binding or handler failure.
	RejectDispatch uint16 = 0
	// RejectOverload: the server's admission control shed the call; the
	// caller should fail fast rather than retransmit.
	RejectOverload uint16 = 1
)

// RPCHeader is the 32-byte RPC packet-exchange header.
//
// The call identifier (Activity, Seq) follows Birrell & Nelson: Activity
// uniquely identifies a calling thread's conversation (machine + process +
// thread), and Seq increases monotonically across that activity's calls, so
// the server can discard duplicates and an arriving packet identifies which
// call-table entry it completes.
type RPCHeader struct {
	Version   uint16     // protocol version, RPCVersion
	Type      PacketType // packet kind
	Flags     uint8      // FlagPleaseAck | FlagLastFrag
	Activity  uint64     // conversation id, unique per calling thread
	Seq       uint32     // call sequence number within the activity
	FragIndex uint16     // fragment number within the call/result
	FragCount uint16     // total fragments (1 on the fast path)
	Interface uint32     // interface identifier (from the IDL)
	Proc      uint16     // procedure index within the interface
	Hint      uint16     // TypeCall: deadline budget in ms (with FlagBudget); TypeReject: reason code
	Length    uint32     // payload bytes following the header
}

// MarshalTo writes the 32-byte header into b.
func (h *RPCHeader) MarshalTo(b []byte) {
	put16(b[0:], h.Version)
	b[2] = byte(h.Type)
	b[3] = h.Flags
	put64(b[4:], h.Activity)
	put32(b[12:], h.Seq)
	put16(b[16:], h.FragIndex)
	put16(b[18:], h.FragCount)
	put32(b[20:], h.Interface)
	put16(b[24:], h.Proc)
	put16(b[26:], h.Hint)
	put32(b[28:], h.Length)
}

// UnmarshalRPC parses the header at the front of b and returns the payload.
func UnmarshalRPC(b []byte) (RPCHeader, []byte, error) {
	var h RPCHeader
	if len(b) < RPCHeaderLen {
		return h, nil, ErrTruncated
	}
	h.Version = be16(b[0:])
	if h.Version != RPCVersion {
		return h, nil, ErrBadRPCVersion
	}
	h.Type = PacketType(b[2])
	h.Flags = b[3]
	h.Activity = be64(b[4:])
	h.Seq = be32(b[12:])
	h.FragIndex = be16(b[16:])
	h.FragCount = be16(b[18:])
	h.Interface = be32(b[20:])
	h.Proc = be16(b[24:])
	h.Hint = be16(b[26:])
	h.Length = be32(b[28:])
	if int(h.Length) > len(b)-RPCHeaderLen {
		return h, nil, ErrTruncated
	}
	return h, b[RPCHeaderLen : RPCHeaderLen+int(h.Length)], nil
}

// InterfaceID computes the interface identifier for a named interface and
// version, using FNV-1a. The §4.2.5 improvement replaces "an internal hash
// function"; this is ours.
func InterfaceID(name string, version uint32) uint32 {
	const (
		offset = 2166136261
		prime  = 16777619
	)
	h := uint32(offset)
	for i := 0; i < len(name); i++ {
		h ^= uint32(name[i])
		h *= prime
	}
	h ^= version
	h *= prime
	return h
}
