package wire

import (
	"reflect"
	"testing"
)

func TestHelloRoundTrip(t *testing.T) {
	in := Hello{Version: 7, MinVersion: 2, Features: FeatBudget | FeatBatch | FeatStream}
	var b [HelloLen]byte
	in.MarshalTo(b[:])
	out, err := UnmarshalHello(b[:])
	if err != nil {
		t.Fatalf("UnmarshalHello: %v", err)
	}
	if out != in {
		t.Fatalf("round trip = %+v, want %+v", out, in)
	}
}

func TestHelloTruncated(t *testing.T) {
	if _, err := UnmarshalHello(make([]byte, HelloLen-1)); err != ErrTruncated {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
}

func TestHelloInRPCFrame(t *testing.T) {
	// A hello payload must fit a single RPC frame and survive the generic
	// header marshal path.
	body := Hello{Version: SessionVersion, MinVersion: SessionMinVersion, Features: FeatBudget | FeatCancel}
	payload := make([]byte, HelloLen)
	body.MarshalTo(payload)
	h := RPCHeader{Version: RPCVersion, Type: TypeHello, Seq: 42, FragCount: 1, Length: uint32(len(payload))}
	frame := make([]byte, RPCHeaderLen+len(payload))
	h.MarshalTo(frame)
	copy(frame[RPCHeaderLen:], payload)
	gotHdr, gotPayload, err := UnmarshalRPC(frame)
	if err != nil {
		t.Fatalf("UnmarshalRPC: %v", err)
	}
	if gotHdr.Type != TypeHello || gotHdr.Seq != 42 {
		t.Fatalf("header = %+v", gotHdr)
	}
	got, err := UnmarshalHello(gotPayload)
	if err != nil || got != body {
		t.Fatalf("payload = %+v, %v; want %+v", got, err, body)
	}
}

func TestFeatureNames(t *testing.T) {
	got := FeatureNames(FeatBudget | FeatBatch | 1<<40)
	want := []string{"budget", "batch"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("FeatureNames = %v, want %v", got, want)
	}
	if FeatureNames(0) != nil {
		t.Fatalf("FeatureNames(0) = %v, want nil", FeatureNames(0))
	}
}

func TestHelloTypeStrings(t *testing.T) {
	if TypeHello.String() != "hello" || TypeHelloAck.String() != "hello-ack" {
		t.Fatalf("strings = %q, %q", TypeHello, TypeHelloAck)
	}
}
