package wire

// Session negotiation: on first contact with a peer, the protocol layer
// sends a TypeHello carrying the session version range it speaks and the
// feature bitset it implements; the peer answers with a TypeHelloAck
// carrying the agreed version (the minimum of the two maxima) and the
// intersection of the two feature sets. A peer that never answers — an old
// binary that counts hello packets as bad frames — leaves the caller on the
// implicit legacy session (version 0), which behaves exactly as the
// pre-hello protocol did. The negotiated set is cached per peer channel, so
// the steady-state call path pays one atomic load.

// Session versions. Version 0 is reserved for the implicit legacy session
// (never sent in a hello; an ack carrying version 0 means "no overlap, stay
// legacy"). SessionVersion is the newest revision this binary speaks,
// SessionMinVersion the oldest it still accepts.
const (
	SessionVersion    uint16 = 1
	SessionMinVersion uint16 = 1
)

// Feature bits, advertised in Hello.Features and negotiated down to the
// intersection. A bit may only be relied on after negotiation; the legacy
// session implies exactly the v0 behavior (budget hints and cancel packets
// were sent unconditionally before hello existed, so legacy keeps them on).
const (
	// FeatBudget: call packets may carry a remaining-deadline budget in the
	// Hint field (FlagBudget), consumed by admission control.
	FeatBudget uint64 = 1 << 0
	// FeatCancel: the peer understands TypeCancel abandonment notices.
	FeatCancel uint64 = 1 << 1
	// FeatBatch: the peer's receive path accepts bursts from a batched
	// datapath (sendmmsg/GSO or stream flush coalescing). Informational
	// today — batching is transport-local and invisible on the wire — but
	// negotiated now so multi-call coalesced frames can gate on it later.
	FeatBatch uint64 = 1 << 2
	// FeatCoalesce is reserved for multi-call frames (ROADMAP item 2a):
	// several small calls to one peer packed into one datagram.
	FeatCoalesce uint64 = 1 << 3
	// FeatStream is reserved for windowed bulk transfer (ROADMAP item 2b):
	// pipelined multi-frame streams replacing stop-and-wait fragments.
	FeatStream uint64 = 1 << 4
	// FeatTrace: sampled calls may carry a TraceCtx message prefix
	// (FlagTraceCtx) naming the distributed trace and parent span, and the
	// peer both stamps its stage records under those identifiers and
	// re-emits the context on chained calls. Never part of the legacy set:
	// a v0 peer would misparse the prefix as arguments, so without this bit
	// callers degrade to the advisory FlagTraced behavior.
	FeatTrace uint64 = 1 << 5
)

// featureNames maps known bits to display names, in bit order.
var featureNames = []struct {
	bit  uint64
	name string
}{
	{FeatBudget, "budget"},
	{FeatCancel, "cancel"},
	{FeatBatch, "batch"},
	{FeatCoalesce, "coalesce"},
	{FeatStream, "stream"},
	{FeatTrace, "trace"},
}

// FeatureNames renders a feature bitset as its known bit names, in bit
// order. Unknown bits are ignored (a newer peer may advertise bits this
// binary has no name for; they negotiate away in the intersection).
func FeatureNames(bits uint64) []string {
	var out []string
	for _, f := range featureNames {
		if bits&f.bit != 0 {
			out = append(out, f.name)
		}
	}
	return out
}

// HelloLen is the fixed hello/hello-ack payload length.
const HelloLen = 12

// Hello is the payload of a TypeHello or TypeHelloAck packet. In a hello,
// Version..MinVersion is the sender's acceptable range and Features its full
// advertisement; in an ack, Version is the agreed version (0 = rejection)
// and Features the agreed intersection. The hello's nonce rides in the RPC
// header's Seq field so a stale ack can never satisfy a newer hello.
type Hello struct {
	Version    uint16
	MinVersion uint16
	Features   uint64
}

// MarshalTo writes the 12-byte hello payload into b.
func (h *Hello) MarshalTo(b []byte) {
	put16(b[0:], h.Version)
	put16(b[2:], h.MinVersion)
	put64(b[4:], h.Features)
}

// UnmarshalHello parses a hello payload.
func UnmarshalHello(b []byte) (Hello, error) {
	var h Hello
	if len(b) < HelloLen {
		return h, ErrTruncated
	}
	h.Version = be16(b[0:])
	h.MinVersion = be16(b[2:])
	h.Features = be64(b[4:])
	return h, nil
}
