package wire

import (
	"bytes"
	"testing"
	"testing/quick"
)

func testEndpoints() (Endpoint, Endpoint) {
	src := Endpoint{MAC: MACForHost(1), IP: IPForHost(1), Port: RPCPort}
	dst := Endpoint{MAC: MACForHost(2), IP: IPForHost(2), Port: RPCPort}
	return src, dst
}

func TestNullPacketIs74Bytes(t *testing.T) {
	src, dst := testEndpoints()
	h := RPCHeader{Type: TypeCall, Activity: 7, Seq: 1, FragCount: 1, Flags: FlagLastFrag}
	frame, err := BuildPacket(src, dst, h, nil, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(frame) != 74 {
		t.Fatalf("Null call packet is %d bytes, want 74", len(frame))
	}
	if MinPacketLen != 74 {
		t.Fatalf("MinPacketLen = %d, want 74", MinPacketLen)
	}
}

func TestMaxResultPacketIs1514Bytes(t *testing.T) {
	src, dst := testEndpoints()
	h := RPCHeader{Type: TypeResult, Activity: 7, Seq: 1, FragCount: 1, Flags: FlagLastFrag}
	frame, err := BuildPacket(src, dst, h, make([]byte, MaxSinglePacketPayload), true)
	if err != nil {
		t.Fatal(err)
	}
	if len(frame) != 1514 {
		t.Fatalf("MaxResult packet is %d bytes, want 1514", len(frame))
	}
	if MaxSinglePacketPayload != 1440 {
		t.Fatalf("MaxSinglePacketPayload = %d, want 1440", MaxSinglePacketPayload)
	}
}

func TestOversizePayloadRejected(t *testing.T) {
	src, dst := testEndpoints()
	_, err := BuildPacket(src, dst, RPCHeader{Type: TypeCall}, make([]byte, MaxSinglePacketPayload+1), true)
	if err != ErrTooLong {
		t.Fatalf("err = %v, want ErrTooLong", err)
	}
}

func TestPacketRoundTrip(t *testing.T) {
	src, dst := testEndpoints()
	payload := []byte("the quick brown firefly")
	h := RPCHeader{
		Type: TypeResult, Flags: FlagLastFrag, Activity: 0xdeadbeefcafef00d,
		Seq: 42, FragIndex: 0, FragCount: 1,
		Interface: InterfaceID("Test", 1), Proc: 2, Hint: 5,
	}
	frame, err := BuildPacket(src, dst, h, payload, true)
	if err != nil {
		t.Fatal(err)
	}
	p, err := ParsePacket(frame, true)
	if err != nil {
		t.Fatal(err)
	}
	if p.Eth.Src != src.MAC || p.Eth.Dst != dst.MAC {
		t.Error("ethernet addresses mangled")
	}
	if p.IP.Src != src.IP || p.IP.Dst != dst.IP || p.IP.Protocol != IPProtoUDP {
		t.Error("ip header mangled")
	}
	if p.UDP.SrcPort != RPCPort || p.UDP.DstPort != RPCPort {
		t.Error("udp ports mangled")
	}
	if p.RPC.Type != TypeResult || p.RPC.Activity != h.Activity || p.RPC.Seq != 42 ||
		p.RPC.Interface != h.Interface || p.RPC.Proc != 2 || p.RPC.Hint != 5 ||
		p.RPC.Flags != FlagLastFrag || p.RPC.FragCount != 1 {
		t.Errorf("rpc header mangled: %+v", p.RPC)
	}
	if !bytes.Equal(p.Payload, payload) {
		t.Error("payload mangled")
	}
}

// Property: build/parse round-trips arbitrary header fields and payloads.
func TestPacketRoundTripQuick(t *testing.T) {
	src, dst := testEndpoints()
	f := func(activity uint64, seq uint32, proc, hint uint16, iface uint32, payload []byte) bool {
		if len(payload) > MaxSinglePacketPayload {
			payload = payload[:MaxSinglePacketPayload]
		}
		h := RPCHeader{
			Type: TypeCall, Flags: FlagLastFrag, Activity: activity, Seq: seq,
			FragCount: 1, Interface: iface, Proc: proc, Hint: hint,
		}
		frame, err := BuildPacket(src, dst, h, payload, true)
		if err != nil {
			return false
		}
		p, err := ParsePacket(frame, true)
		if err != nil {
			return false
		}
		return p.RPC.Activity == activity && p.RPC.Seq == seq &&
			p.RPC.Proc == proc && p.RPC.Hint == hint && p.RPC.Interface == iface &&
			bytes.Equal(p.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestParseDetectsCorruption(t *testing.T) {
	src, dst := testEndpoints()
	payload := make([]byte, 100)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	h := RPCHeader{Type: TypeCall, FragCount: 1, Flags: FlagLastFrag, Seq: 1}
	frame, err := BuildPacket(src, dst, h, payload, true)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt a payload byte: UDP checksum must catch it.
	frame[len(frame)-1] ^= 0x5a
	if _, err := ParsePacket(frame, true); err != ErrBadUDPChecksum {
		t.Fatalf("payload corruption: err = %v, want ErrBadUDPChecksum", err)
	}
	frame[len(frame)-1] ^= 0x5a
	// Corrupt the IP header: IP checksum must catch it.
	frame[EthernetHeaderLen+8] ^= 0x01 // TTL
	if _, err := ParsePacket(frame, true); err != ErrBadIPChecksum {
		t.Fatalf("ip corruption: err = %v, want ErrBadIPChecksum", err)
	}
}

func TestParseChecksumDisabled(t *testing.T) {
	src, dst := testEndpoints()
	h := RPCHeader{Type: TypeCall, FragCount: 1, Flags: FlagLastFrag}
	frame, err := BuildPacket(src, dst, h, []byte("x"), false)
	if err != nil {
		t.Fatal(err)
	}
	// Checksum field must be zero and verification must still pass.
	off := EthernetHeaderLen + IPv4HeaderLen + 6
	if be16(frame[off:]) != 0 {
		t.Fatal("checksum field not zero when checksums disabled")
	}
	if _, err := ParsePacket(frame, true); err != nil {
		t.Fatalf("zero-checksum packet rejected: %v", err)
	}
}

func TestParseTruncated(t *testing.T) {
	src, dst := testEndpoints()
	frame, _ := BuildPacket(src, dst, RPCHeader{Type: TypeCall, FragCount: 1}, []byte("hello"), true)
	for _, n := range []int{0, 5, 13, 20, 33, 41, 50, 73} {
		if n >= len(frame) {
			continue
		}
		if _, err := ParsePacket(frame[:n], false); err == nil {
			t.Fatalf("parse of %d-byte prefix succeeded", n)
		}
	}
}

func TestParseWrongEtherType(t *testing.T) {
	src, dst := testEndpoints()
	frame, _ := BuildPacket(src, dst, RPCHeader{Type: TypeCall, FragCount: 1}, nil, true)
	frame[12], frame[13] = 0x08, 0x06 // ARP
	if _, err := ParsePacket(frame, true); err != ErrBadEtherType {
		t.Fatalf("err = %v, want ErrBadEtherType", err)
	}
}

func TestParseBadRPCVersion(t *testing.T) {
	src, dst := testEndpoints()
	frame, _ := BuildPacket(src, dst, RPCHeader{Type: TypeCall, FragCount: 1}, nil, false)
	off := EthernetHeaderLen + IPv4HeaderLen + UDPHeaderLen
	frame[off] = 0xba
	if _, err := ParsePacket(frame, false); err != ErrBadRPCVersion {
		t.Fatalf("err = %v, want ErrBadRPCVersion", err)
	}
}

func TestInterfaceIDStable(t *testing.T) {
	a := InterfaceID("Test", 1)
	b := InterfaceID("Test", 1)
	if a != b {
		t.Fatal("InterfaceID not deterministic")
	}
	if InterfaceID("Test", 2) == a || InterfaceID("Tesu", 1) == a {
		t.Fatal("InterfaceID collisions on near inputs")
	}
}

func TestMACAndIPHelpers(t *testing.T) {
	m := MACForHost(0x010203)
	if m.String() != "02:46:46:01:02:03" {
		t.Fatalf("MAC string = %s", m.String())
	}
	ip := IPForHost(0x0104)
	if ip.String() != "10.0.1.4" {
		t.Fatalf("IP string = %s", ip.String())
	}
	if Broadcast.String() != "ff:ff:ff:ff:ff:ff" {
		t.Fatal("broadcast MAC wrong")
	}
}

func TestPacketTypeString(t *testing.T) {
	cases := map[PacketType]string{
		TypeCall: "call", TypeResult: "result", TypeAck: "ack",
		TypeProbe: "probe", TypeProbeReply: "probe-reply", TypeReject: "reject",
		PacketType(99): "type(99)",
	}
	for pt, want := range cases {
		if pt.String() != want {
			t.Errorf("%d.String() = %q, want %q", pt, pt.String(), want)
		}
	}
}

func TestPacketLen(t *testing.T) {
	if PacketLen(0) != 74 || PacketLen(1440) != 1514 {
		t.Fatal("PacketLen formula wrong")
	}
}

func TestBuildPacketIntoWrongSize(t *testing.T) {
	src, dst := testEndpoints()
	buf := make([]byte, 80)
	if err := BuildPacketInto(buf, src, dst, RPCHeader{Type: TypeCall}, nil, true); err == nil {
		t.Fatal("wrong-size buffer accepted")
	}
}

func TestUnmarshalIPv4BadHeaders(t *testing.T) {
	// Too short.
	if _, _, err := UnmarshalIPv4(make([]byte, 10)); err != ErrTruncated {
		t.Fatalf("short: %v", err)
	}
	// Wrong version nibble.
	b := make([]byte, IPv4HeaderLen)
	b[0] = 0x65
	if _, _, err := UnmarshalIPv4(b); err != ErrBadIPVersion {
		t.Fatalf("version: %v", err)
	}
	// Options (IHL != 5) rejected: the fast path never generates them.
	b[0] = 0x46
	if _, _, err := UnmarshalIPv4(b); err != ErrBadIPVersion {
		t.Fatalf("ihl: %v", err)
	}
	// Valid checksum but absurd TotalLen.
	h := IPv4Header{TotalLen: 9999, TTL: 1, Protocol: IPProtoUDP}
	buf := make([]byte, IPv4HeaderLen)
	h.MarshalTo(buf)
	if _, _, err := UnmarshalIPv4(buf); err != ErrTruncated {
		t.Fatalf("totallen: %v", err)
	}
}

func TestUnmarshalUDPBadLength(t *testing.T) {
	if _, _, err := UnmarshalUDP(make([]byte, 4)); err != ErrTruncated {
		t.Fatal("short UDP header accepted")
	}
	b := make([]byte, UDPHeaderLen)
	put16(b[4:], 4) // length < header size
	if _, _, err := UnmarshalUDP(b); err != ErrTruncated {
		t.Fatal("undersized UDP length accepted")
	}
	put16(b[4:], 100) // length > datagram
	if _, _, err := UnmarshalUDP(b); err != ErrTruncated {
		t.Fatal("oversized UDP length accepted")
	}
}

func TestUnmarshalRPCTruncatedPayload(t *testing.T) {
	b := make([]byte, RPCHeaderLen)
	h := RPCHeader{Type: TypeCall, FragCount: 1, Length: 50} // claims 50-byte payload
	h.Version = RPCVersion
	h.MarshalTo(b)
	if _, _, err := UnmarshalRPC(b); err != ErrTruncated {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
}

func TestNonUDPProtocolRejected(t *testing.T) {
	src, dst := testEndpoints()
	frame, _ := BuildPacket(src, dst, RPCHeader{Type: TypeCall, FragCount: 1}, nil, true)
	// Rewrite protocol to TCP and fix the IP checksum.
	ip := frame[EthernetHeaderLen : EthernetHeaderLen+IPv4HeaderLen]
	ip[9] = 6
	put16(ip[10:], 0)
	put16(ip[10:], Checksum(ip))
	if _, err := ParsePacket(frame, false); err != ErrBadProto {
		t.Fatalf("err = %v, want ErrBadProto", err)
	}
}

func TestEthernetAppendMarshal(t *testing.T) {
	h := EthernetHeader{Dst: MACForHost(2), Src: MACForHost(1), EtherType: EtherTypeIPv4}
	b := h.Marshal(nil)
	if len(b) != EthernetHeaderLen {
		t.Fatalf("marshal length %d", len(b))
	}
	got, rest, err := UnmarshalEthernet(b)
	if err != nil || len(rest) != 0 || got != h {
		t.Fatalf("round trip: %+v %v", got, err)
	}
	if _, _, err := UnmarshalEthernet(b[:5]); err != ErrTruncated {
		t.Fatal("short ethernet accepted")
	}
}

func TestIPv4Append(t *testing.T) {
	h := IPv4Header{TotalLen: 20, TTL: 9, Protocol: IPProtoUDP,
		Src: IPForHost(1), Dst: IPForHost(2), ID: 7, Flags: 2, FragOff: 100, TOS: 3}
	b := h.Marshal(nil)
	got, _, err := UnmarshalIPv4(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != 7 || got.Flags != 2 || got.FragOff != 100 || got.TOS != 3 || got.TTL != 9 {
		t.Fatalf("round trip %+v", got)
	}
}

func TestBuildPacketHeadersOversize(t *testing.T) {
	src, dst := testEndpoints()
	if err := BuildPacketHeaders(make([]byte, 80), src, dst, RPCHeader{}, MaxSinglePacketPayload+1); err != ErrTooLong {
		t.Fatalf("err = %v, want ErrTooLong", err)
	}
	if err := BuildPacketHeaders(make([]byte, 80), src, dst, RPCHeader{}, 4); err != ErrTruncated {
		t.Fatalf("err = %v, want ErrTruncated (size mismatch)", err)
	}
}
