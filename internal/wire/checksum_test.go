package wire

import (
	"testing"
	"testing/quick"
)

func TestChecksumKnownVectors(t *testing.T) {
	// RFC 1071 §3 example: 00 01 f2 03 f4 f5 f6 f7 sums to ddf2 -> checksum 220d.
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(data); got != 0x220d {
		t.Fatalf("Checksum = %#04x, want 0x220d", got)
	}
}

func TestChecksumEmpty(t *testing.T) {
	if got := Checksum(nil); got != 0xffff {
		t.Fatalf("Checksum(nil) = %#04x, want 0xffff", got)
	}
}

func TestChecksumOddLength(t *testing.T) {
	// Odd trailing byte is padded with zero: {0xab} ~ {0xab, 0x00}.
	if Checksum([]byte{0xab}) != Checksum([]byte{0xab, 0x00}) {
		t.Fatal("odd-length padding mismatch")
	}
}

// Property: a packet with its own checksum appended verifies.
func TestChecksumSelfVerifies(t *testing.T) {
	f := func(data []byte) bool {
		if len(data)%2 == 1 {
			data = append(data, 0)
		}
		sum := Checksum(data)
		withSum := append(append([]byte{}, data...), byte(sum>>8), byte(sum))
		return VerifyChecksum(withSum)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: flipping any byte of a checksummed packet breaks verification
// (guaranteed for one's-complement sums when the flip changes the word sum).
func TestChecksumDetectsSingleByteCorruption(t *testing.T) {
	data := make([]byte, 128)
	rng := uint32(12345)
	for i := range data {
		rng = rng*1664525 + 1013904223
		data[i] = byte(rng >> 24)
	}
	sum := Checksum(data)
	pkt := append(append([]byte{}, data...), byte(sum>>8), byte(sum))
	for i := range pkt {
		for _, flip := range []byte{0x01, 0x80, 0xff} {
			corrupt := append([]byte{}, pkt...)
			corrupt[i] ^= flip
			// One's-complement has a known blind spot: 0x00 <-> 0xff in a
			// word can alias (both add 0 or 0xffff patterns). Skip the
			// aliasing case.
			if pkt[i]^flip == 0xff && flip == 0xff {
				continue
			}
			if VerifyChecksum(corrupt) && corrupt[i] != pkt[i] {
				// Allow the documented one's-complement aliasing only.
				if !(pkt[i] == 0x00 || pkt[i] == 0xff) {
					t.Fatalf("corruption at byte %d (flip %#02x) undetected", i, flip)
				}
			}
		}
	}
}

// Property: SumWords over split pieces equals the sum over the whole, for
// even-length prefixes.
func TestChecksumIncremental(t *testing.T) {
	f := func(a, b []byte) bool {
		if len(a)%2 == 1 {
			a = append(a, 0x55)
		}
		whole := append(append([]byte{}, a...), b...)
		split := FinishChecksum(SumWords(SumWords(0, a), b))
		return Checksum(whole) == split
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestUDPChecksumNeverZero(t *testing.T) {
	// RFC 768: a computed checksum of zero is transmitted as all ones.
	// Scan all 2-byte payloads; at least one would naturally sum to zero,
	// and the function must remap it.
	src, dst := IPAddr{}, IPAddr{}
	udp := make([]byte, UDPHeaderLen)
	for x := 0; x < 65536; x++ {
		p := []byte{byte(x >> 8), byte(x)}
		put16(udp[4:], uint16(UDPHeaderLen+len(p)))
		if UDPChecksum(src, dst, udp, p) == 0 {
			t.Fatal("UDPChecksum returned 0; must remap to 0xffff")
		}
	}
}

func TestVerifyUDPChecksumAcceptsZeroField(t *testing.T) {
	// A datagram with checksum field zero means "no checksum computed".
	d := make([]byte, UDPHeaderLen+4)
	put16(d[4:], uint16(len(d)))
	if !VerifyUDPChecksum(IPAddr{1, 2, 3, 4}, IPAddr{5, 6, 7, 8}, d) {
		t.Fatal("zero checksum field must verify trivially")
	}
}

func TestVerifyUDPChecksumRejectsShort(t *testing.T) {
	if VerifyUDPChecksum(IPAddr{}, IPAddr{}, []byte{1, 2, 3}) {
		t.Fatal("short datagram must not verify")
	}
}

func TestUDPChecksumRoundTrip(t *testing.T) {
	f := func(payload []byte, s1, s2, d1, d2 byte, sp, dp uint16) bool {
		src := IPAddr{10, 0, s1, s2}
		dst := IPAddr{10, 0, d1, d2}
		udp := make([]byte, UDPHeaderLen)
		put16(udp[0:], sp)
		put16(udp[2:], dp)
		put16(udp[4:], uint16(UDPHeaderLen+len(payload)))
		sum := UDPChecksum(src, dst, udp, payload)
		datagram := make([]byte, UDPHeaderLen+len(payload))
		copy(datagram, udp)
		put16(datagram[6:], sum)
		copy(datagram[UDPHeaderLen:], payload)
		return VerifyUDPChecksum(src, dst, datagram)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
