// Package wire implements the on-the-wire formats used by Firefly RPC:
// Ethernet II framing, IPv4, UDP (with real RFC 1071 checksums), and the
// 32-byte RPC packet-exchange header.
//
// The sizes reproduce the paper exactly: a call to Null() generates the
// 74-byte minimum RPC packet (14 Ethernet + 20 IP + 8 UDP + 32 RPC header),
// and the largest single-packet argument or result is 1440 bytes, yielding
// the 1514-byte maximum Ethernet frame (excluding CRC).
package wire

import (
	"errors"
	"fmt"
)

// Frame layout constants.
const (
	EthernetHeaderLen = 14
	IPv4HeaderLen     = 20
	UDPHeaderLen      = 8
	RPCHeaderLen      = 32

	// HeaderOverhead is the total framing around an RPC payload.
	HeaderOverhead = EthernetHeaderLen + IPv4HeaderLen + UDPHeaderLen + RPCHeaderLen // 74

	// MinPacketLen is the size of an RPC packet with no payload — the
	// "74-byte minimum size generated for Ethernet RPC".
	MinPacketLen = HeaderOverhead

	// MaxPacketLen is the maximum Ethernet frame (sans CRC): 1514 bytes.
	MaxPacketLen = 1514

	// MaxSinglePacketPayload is the largest argument or result that fits in
	// one packet: 1440 bytes.
	MaxSinglePacketPayload = MaxPacketLen - HeaderOverhead
)

// EtherType values.
const (
	EtherTypeIPv4 = 0x0800
	// EtherTypeRawRPC is used by the §4.2.6 "omit layering on IP and UDP"
	// variant, where the RPC header directly follows the Ethernet header.
	EtherTypeRawRPC = 0x88B5 // local experimental ethertype
)

// IP protocol numbers.
const IPProtoUDP = 17

// RPCPort is the UDP port the RPC packet-exchange protocol uses.
const RPCPort = 530

// Errors returned by parsers.
var (
	ErrTruncated      = errors.New("wire: truncated packet")
	ErrBadEtherType   = errors.New("wire: unexpected ethertype")
	ErrBadIPVersion   = errors.New("wire: not an IPv4 packet")
	ErrBadIPChecksum  = errors.New("wire: bad IP header checksum")
	ErrBadUDPChecksum = errors.New("wire: bad UDP checksum")
	ErrBadProto       = errors.New("wire: not a UDP packet")
	ErrBadRPCVersion  = errors.New("wire: unknown RPC protocol version")
	ErrTooLong        = errors.New("wire: payload exceeds single-packet maximum")
)

// MAC is a 48-bit Ethernet address.
type MAC [6]byte

// String renders the MAC in the usual colon-separated form.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// Broadcast is the Ethernet broadcast address.
var Broadcast = MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

// MACForHost derives a locally-administered MAC from a small host number,
// convenient for simulated machines.
func MACForHost(n uint32) MAC {
	return MAC{0x02, 0x46, 0x46, byte(n >> 16), byte(n >> 8), byte(n)}
}

// IPAddr is an IPv4 address.
type IPAddr [4]byte

// String renders the address in dotted-quad form.
func (a IPAddr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", a[0], a[1], a[2], a[3])
}

// IPForHost derives a 10.0.x.y test address from a small host number.
func IPForHost(n uint32) IPAddr {
	return IPAddr{10, 0, byte(n >> 8), byte(n)}
}

func be16(b []byte) uint16     { return uint16(b[0])<<8 | uint16(b[1]) }
func be32(b []byte) uint32     { return uint32(be16(b))<<16 | uint32(be16(b[2:])) }
func be64(b []byte) uint64     { return uint64(be32(b))<<32 | uint64(be32(b[4:])) }
func put16(b []byte, v uint16) { b[0], b[1] = byte(v>>8), byte(v) }
func put32(b []byte, v uint32) { put16(b, uint16(v>>16)); put16(b[2:], uint16(v)) }
func put64(b []byte, v uint64) { put32(b, uint32(v>>32)); put32(b[4:], uint32(v)) }
