package wire

import "testing"

func TestTraceCtxRoundTrip(t *testing.T) {
	in := TraceCtx{TraceID: 0xDEADBEEFCAFEF00D, SpanID: 0x0123456789ABCDEF, Flags: TraceFlagSampled}
	var b [TraceCtxLen]byte
	in.MarshalTo(b[:])
	out, err := UnmarshalTraceCtx(b[:])
	if err != nil {
		t.Fatalf("UnmarshalTraceCtx: %v", err)
	}
	if out != in {
		t.Fatalf("round trip = %+v, want %+v", out, in)
	}
	if !out.Valid() || !out.Sampled() {
		t.Fatalf("Valid/Sampled = %v/%v, want true/true", out.Valid(), out.Sampled())
	}
}

func TestTraceCtxTruncated(t *testing.T) {
	if _, err := UnmarshalTraceCtx(make([]byte, TraceCtxLen-1)); err != ErrTruncated {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
}

func TestTraceCtxZero(t *testing.T) {
	var z TraceCtx
	if z.Valid() || z.Sampled() {
		t.Fatalf("zero context must be invalid and unsampled")
	}
	// An unsampled-but-present context is valid but not sampled.
	c := TraceCtx{TraceID: 1}
	if !c.Valid() || c.Sampled() {
		t.Fatalf("Valid/Sampled = %v/%v, want true/false", c.Valid(), c.Sampled())
	}
}

func TestTraceCtxAsMessagePrefix(t *testing.T) {
	// The context rides ahead of the arguments inside an RPC frame whose
	// header carries FlagTraceCtx; the header Length covers prefix + args.
	tc := TraceCtx{TraceID: 9, SpanID: 10, Flags: TraceFlagSampled}
	args := []byte("argument bytes")
	payload := make([]byte, TraceCtxLen+len(args))
	tc.MarshalTo(payload)
	copy(payload[TraceCtxLen:], args)
	h := RPCHeader{Version: RPCVersion, Type: TypeCall, Flags: FlagLastFrag | FlagTraceCtx,
		Activity: 3, Seq: 4, FragCount: 1, Length: uint32(len(payload))}
	frame := make([]byte, RPCHeaderLen+len(payload))
	h.MarshalTo(frame)
	copy(frame[RPCHeaderLen:], payload)

	gotHdr, gotPayload, err := UnmarshalRPC(frame)
	if err != nil {
		t.Fatalf("UnmarshalRPC: %v", err)
	}
	if gotHdr.Flags&FlagTraceCtx == 0 {
		t.Fatalf("FlagTraceCtx lost: flags = %#x", gotHdr.Flags)
	}
	gotTC, err := UnmarshalTraceCtx(gotPayload)
	if err != nil || gotTC != tc {
		t.Fatalf("prefix = %+v, %v; want %+v", gotTC, err, tc)
	}
	if string(gotPayload[TraceCtxLen:]) != string(args) {
		t.Fatalf("args = %q, want %q", gotPayload[TraceCtxLen:], args)
	}
}
