package wire

// Endpoint identifies one end of an RPC conversation at every layer the
// packet traverses.
type Endpoint struct {
	MAC  MAC
	IP   IPAddr
	Port uint16
}

// PacketInfo is a fully parsed RPC-over-UDP-over-IP-over-Ethernet packet.
type PacketInfo struct {
	Eth     EthernetHeader
	IP      IPv4Header
	UDP     UDPHeader
	RPC     RPCHeader
	Payload []byte
}

// BuildPacket assembles a complete Ethernet frame carrying an RPC packet
// from src to dst with the given RPC header and payload. The RPC header's
// Length field is set from payload. If checksum is true the UDP checksum is
// computed (the Firefly default); otherwise it is transmitted as zero
// (§4.2.4). The returned frame is freshly allocated.
func BuildPacket(src, dst Endpoint, h RPCHeader, payload []byte, checksum bool) ([]byte, error) {
	if len(payload) > MaxSinglePacketPayload {
		return nil, ErrTooLong
	}
	frame := make([]byte, HeaderOverhead+len(payload))
	if err := BuildPacketInto(frame, src, dst, h, payload, checksum); err != nil {
		return nil, err
	}
	return frame, nil
}

// BuildPacketInto assembles the frame into buf, which must be exactly
// HeaderOverhead+len(payload) bytes. It lets transports reuse pooled packet
// buffers, as the Firefly implementation does.
func BuildPacketInto(buf []byte, src, dst Endpoint, h RPCHeader, payload []byte, checksum bool) error {
	if len(payload) > MaxSinglePacketPayload {
		return ErrTooLong
	}
	if len(buf) != HeaderOverhead+len(payload) {
		return ErrTruncated
	}
	eth := EthernetHeader{Dst: dst.MAC, Src: src.MAC, EtherType: EtherTypeIPv4}
	eth.MarshalTo(buf[0:])

	udpLen := UDPHeaderLen + RPCHeaderLen + len(payload)
	ip := IPv4Header{
		TotalLen: uint16(IPv4HeaderLen + udpLen),
		TTL:      32,
		Protocol: IPProtoUDP,
		Src:      src.IP,
		Dst:      dst.IP,
	}
	ip.MarshalTo(buf[EthernetHeaderLen:])

	udpOff := EthernetHeaderLen + IPv4HeaderLen
	udp := UDPHeader{SrcPort: src.Port, DstPort: dst.Port, Length: uint16(udpLen)}
	udp.MarshalTo(buf[udpOff:])

	rpcOff := udpOff + UDPHeaderLen
	h.Version = RPCVersion
	h.Length = uint32(len(payload))
	h.MarshalTo(buf[rpcOff:])
	copy(buf[rpcOff+RPCHeaderLen:], payload)

	if checksum {
		sum := UDPChecksum(src.IP, dst.IP, buf[udpOff:udpOff+UDPHeaderLen], buf[rpcOff:])
		put16(buf[udpOff+6:], sum)
	}
	return nil
}

// BuildPacketHeaders writes all four headers for a payloadLen-byte RPC
// payload into buf (which must be exactly HeaderOverhead+payloadLen bytes),
// leaving the payload region untouched so a server procedure can write a VAR
// OUT result directly in place. The UDP checksum field is left zero; call
// FinishUDPChecksum after the payload is final.
func BuildPacketHeaders(buf []byte, src, dst Endpoint, h RPCHeader, payloadLen int) error {
	if payloadLen > MaxSinglePacketPayload {
		return ErrTooLong
	}
	if len(buf) != HeaderOverhead+payloadLen {
		return ErrTruncated
	}
	eth := EthernetHeader{Dst: dst.MAC, Src: src.MAC, EtherType: EtherTypeIPv4}
	eth.MarshalTo(buf[0:])
	udpLen := UDPHeaderLen + RPCHeaderLen + payloadLen
	ip := IPv4Header{
		TotalLen: uint16(IPv4HeaderLen + udpLen),
		TTL:      32,
		Protocol: IPProtoUDP,
		Src:      src.IP,
		Dst:      dst.IP,
	}
	ip.MarshalTo(buf[EthernetHeaderLen:])
	udpOff := EthernetHeaderLen + IPv4HeaderLen
	udp := UDPHeader{SrcPort: src.Port, DstPort: dst.Port, Length: uint16(udpLen)}
	udp.MarshalTo(buf[udpOff:])
	h.Version = RPCVersion
	h.Length = uint32(payloadLen)
	h.MarshalTo(buf[udpOff+UDPHeaderLen:])
	return nil
}

// FinishUDPChecksum computes and stores the UDP checksum of an assembled
// frame (as built by BuildPacketHeaders plus payload).
func FinishUDPChecksum(frame []byte) {
	udpOff := EthernetHeaderLen + IPv4HeaderLen
	var src, dst IPAddr
	copy(src[:], frame[EthernetHeaderLen+12:])
	copy(dst[:], frame[EthernetHeaderLen+16:])
	put16(frame[udpOff+6:], 0)
	sum := UDPChecksum(src, dst, frame[udpOff:udpOff+UDPHeaderLen], frame[udpOff+UDPHeaderLen:])
	put16(frame[udpOff+6:], sum)
}

// ParsePacket validates an Ethernet frame end to end — Ethernet, IP (header
// checksum), UDP (checksum if present), RPC header — exactly as the Firefly
// Ethernet interrupt routine does before handing a packet to a waiting
// thread. The returned PacketInfo's Payload aliases frame.
func ParsePacket(frame []byte, verifyChecksum bool) (PacketInfo, error) {
	var p PacketInfo
	eth, rest, err := UnmarshalEthernet(frame)
	if err != nil {
		return p, err
	}
	if eth.EtherType != EtherTypeIPv4 {
		return p, ErrBadEtherType
	}
	ip, rest, err := UnmarshalIPv4(rest)
	if err != nil {
		return p, err
	}
	if ip.Protocol != IPProtoUDP {
		return p, ErrBadProto
	}
	if verifyChecksum && !VerifyUDPChecksum(ip.Src, ip.Dst, rest) {
		return p, ErrBadUDPChecksum
	}
	udp, rest, err := UnmarshalUDP(rest)
	if err != nil {
		return p, err
	}
	rpc, payload, err := UnmarshalRPC(rest)
	if err != nil {
		return p, err
	}
	p.Eth, p.IP, p.UDP, p.RPC, p.Payload = eth, ip, udp, rpc, payload
	return p, nil
}

// PacketLen returns the frame size for a given RPC payload size.
func PacketLen(payload int) int { return HeaderOverhead + payload }
