package wire

// Distributed trace context. When a session has negotiated FeatTrace, a
// sampled call's message stream begins with a fixed 17-byte TraceCtx prefix
// (the header sets FlagTraceCtx on every fragment; the bytes themselves ride
// in fragment 0, ahead of the marshalled arguments). The context names the
// trace the call belongs to, the span the caller opened for it, and whether
// the trace is sampled — enough for the server to stamp its own stage
// records under the caller's identifiers and to re-emit the context on any
// calls the handler makes in turn, linking a chained call's spans into one
// causal tree.
//
// The prefix is part of the message, not the header, so the 32-byte
// RPCHeader stays fixed-size and v0-compatible: a peer that never negotiated
// FeatTrace is never sent the prefix (it would misparse it as arguments),
// and instead degrades to the advisory FlagTraced bit.

// TraceCtxLen is the fixed encoded size: trace id + span id + flags.
const TraceCtxLen = 17

// Trace context flags.
const (
	// TraceFlagSampled: the trace is sampled; both sides should record
	// stage stamps and the server should propagate the context downstream.
	TraceFlagSampled = 1 << 0
)

// TraceCtx is the trace context carried ahead of a sampled call's
// arguments. TraceID identifies the whole causal tree (assigned by the
// root caller, inherited by every downstream call); SpanID identifies the
// caller's span for this specific call, and becomes the parent of any spans
// the handler opens. A zero TraceID means "no context".
type TraceCtx struct {
	TraceID uint64
	SpanID  uint64
	Flags   uint8
}

// Valid reports whether the context names a trace.
func (t *TraceCtx) Valid() bool { return t.TraceID != 0 }

// Sampled reports whether the trace is sampled.
func (t *TraceCtx) Sampled() bool { return t.TraceID != 0 && t.Flags&TraceFlagSampled != 0 }

// MarshalTo writes the 17-byte context into b.
func (t *TraceCtx) MarshalTo(b []byte) {
	put64(b[0:], t.TraceID)
	put64(b[8:], t.SpanID)
	b[16] = t.Flags
}

// UnmarshalTraceCtx parses a trace context from the front of b.
func UnmarshalTraceCtx(b []byte) (TraceCtx, error) {
	var t TraceCtx
	if len(b) < TraceCtxLen {
		return t, ErrTruncated
	}
	t.TraceID = be64(b[0:])
	t.SpanID = be64(b[8:])
	t.Flags = b[16]
	return t, nil
}
