package wire

// EthernetHeader is an Ethernet II (DIX) frame header, 14 bytes on the wire.
// The 4-byte trailing CRC is assumed to be generated and checked by the
// controller hardware and is not represented (the paper's 74/1514-byte
// figures likewise exclude it).
type EthernetHeader struct {
	Dst       MAC
	Src       MAC
	EtherType uint16
}

// Marshal appends the 14-byte header to b and returns the extended slice.
func (h *EthernetHeader) Marshal(b []byte) []byte {
	b = append(b, h.Dst[:]...)
	b = append(b, h.Src[:]...)
	b = append(b, byte(h.EtherType>>8), byte(h.EtherType))
	return b
}

// MarshalTo writes the header into b[0:14]. b must have room.
func (h *EthernetHeader) MarshalTo(b []byte) {
	copy(b[0:6], h.Dst[:])
	copy(b[6:12], h.Src[:])
	put16(b[12:14], h.EtherType)
}

// UnmarshalEthernet parses the header at the front of b and returns the rest.
func UnmarshalEthernet(b []byte) (EthernetHeader, []byte, error) {
	var h EthernetHeader
	if len(b) < EthernetHeaderLen {
		return h, nil, ErrTruncated
	}
	copy(h.Dst[:], b[0:6])
	copy(h.Src[:], b[6:12])
	h.EtherType = be16(b[12:14])
	return h, b[EthernetHeaderLen:], nil
}
