package wire

// Checksum computes the RFC 1071 internet checksum (one's-complement sum of
// 16-bit big-endian words, one's-complemented) over data. An odd trailing
// byte is padded with a zero byte, per the RFC.
func Checksum(data []byte) uint16 {
	return FinishChecksum(SumWords(0, data))
}

// SumWords folds data into an ongoing one's-complement 32-bit accumulator.
// Use it to checksum a packet in pieces (pseudo-header + header + payload).
// Each piece except the last should be of even length.
func SumWords(acc uint32, data []byte) uint32 {
	n := len(data)
	i := 0
	for ; i+1 < n; i += 2 {
		acc += uint32(data[i])<<8 | uint32(data[i+1])
	}
	if i < n {
		acc += uint32(data[i]) << 8
	}
	return acc
}

// FinishChecksum folds the accumulator to 16 bits and complements it.
func FinishChecksum(acc uint32) uint16 {
	for acc>>16 != 0 {
		acc = (acc & 0xffff) + (acc >> 16)
	}
	return ^uint16(acc)
}

// VerifyChecksum reports whether data containing an embedded checksum field
// sums to the all-ones pattern, i.e. checks out under RFC 1071.
func VerifyChecksum(data []byte) bool {
	acc := SumWords(0, data)
	for acc>>16 != 0 {
		acc = (acc & 0xffff) + (acc >> 16)
	}
	return uint16(acc) == 0xffff
}
