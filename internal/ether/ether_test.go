package ether

import (
	"testing"

	"fireflyrpc/internal/sim"
	"fireflyrpc/internal/wire"
)

func buildFrame(t *testing.T, src, dst wire.MAC, payload int) []byte {
	t.Helper()
	s := wire.Endpoint{MAC: src, IP: wire.IPForHost(1), Port: wire.RPCPort}
	d := wire.Endpoint{MAC: dst, IP: wire.IPForHost(2), Port: wire.RPCPort}
	f, err := wire.BuildPacket(s, d, wire.RPCHeader{Type: wire.TypeCall, FragCount: 1},
		make([]byte, payload), true)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestUnicastDelivery(t *testing.T) {
	k := sim.NewKernel(1)
	seg := NewSegment(k)
	a, b := wire.MACForHost(1), wire.MACForHost(2)
	var got []byte
	var at sim.Time
	pa := seg.Attach(a, func(f []byte) { t.Error("frame echoed to sender") })
	seg.Attach(b, func(f []byte) { got = f; at = k.Now() })
	frame := buildFrame(t, a, b, 0)
	var sentAt sim.Time
	k.After(0, func() {
		pa.Transmit(frame, sim.Micros(60), func() { sentAt = k.Now() })
	})
	k.Run()
	if got == nil {
		t.Fatal("frame not delivered")
	}
	if at != sim.Time(sim.Micros(60)) || sentAt != at {
		t.Fatalf("delivered at %v, sent at %v; want both 60µs", at, sentAt)
	}
	if pa.MAC() != a {
		t.Fatal("port MAC wrong")
	}
}

func TestMediumSerializesTransmissions(t *testing.T) {
	k := sim.NewKernel(1)
	seg := NewSegment(k)
	a, b, c := wire.MACForHost(1), wire.MACForHost(2), wire.MACForHost(3)
	var arrivals []sim.Time
	pa := seg.Attach(a, nil)
	pc := seg.Attach(c, nil)
	seg.Attach(b, func(f []byte) { arrivals = append(arrivals, k.Now()) })
	f1 := buildFrame(t, a, b, 0)
	f2 := buildFrame(t, c, b, 0)
	k.After(0, func() {
		pa.Transmit(f1, sim.Micros(100), nil)
		pc.Transmit(f2, sim.Micros(100), nil) // must defer to the first
	})
	k.Run()
	if len(arrivals) != 2 {
		t.Fatalf("%d arrivals, want 2", len(arrivals))
	}
	if arrivals[0] != sim.Time(sim.Micros(100)) || arrivals[1] != sim.Time(sim.Micros(200)) {
		t.Fatalf("arrivals %v, want 100µs and 200µs", arrivals)
	}
}

func TestBroadcastDelivery(t *testing.T) {
	k := sim.NewKernel(1)
	seg := NewSegment(k)
	a := wire.MACForHost(1)
	var got int
	pa := seg.Attach(a, func(f []byte) { t.Error("broadcast echoed to sender") })
	seg.Attach(wire.MACForHost(2), func(f []byte) { got++ })
	seg.Attach(wire.MACForHost(3), func(f []byte) { got++ })
	frame := buildFrame(t, a, wire.Broadcast, 0)
	k.After(0, func() { pa.Transmit(frame, sim.Micros(60), nil) })
	k.Run()
	if got != 2 {
		t.Fatalf("broadcast reached %d stations, want 2", got)
	}
}

func TestUnknownDestinationDropped(t *testing.T) {
	k := sim.NewKernel(1)
	seg := NewSegment(k)
	a := wire.MACForHost(1)
	pa := seg.Attach(a, nil)
	frame := buildFrame(t, a, wire.MACForHost(99), 0)
	k.After(0, func() { pa.Transmit(frame, sim.Micros(60), nil) })
	k.Run()
	if seg.Stats().DropNoDst != 1 {
		t.Fatalf("dropNoDst = %d, want 1", seg.Stats().DropNoDst)
	}
}

func TestLossRateDropsFrames(t *testing.T) {
	k := sim.NewKernel(7)
	seg := NewSegment(k)
	seg.LossRate = 1.0
	a, b := wire.MACForHost(1), wire.MACForHost(2)
	pa := seg.Attach(a, nil)
	delivered := 0
	seg.Attach(b, func(f []byte) { delivered++ })
	frame := buildFrame(t, a, b, 0)
	k.After(0, func() { pa.Transmit(frame, sim.Micros(60), nil) })
	k.Run()
	if delivered != 0 {
		t.Fatal("frame delivered despite 100% loss")
	}
	if seg.Stats().Frames != 1 {
		t.Fatal("transmission not counted")
	}
}

func TestDuplicateMACPanics(t *testing.T) {
	k := sim.NewKernel(1)
	seg := NewSegment(k)
	seg.Attach(wire.MACForHost(1), nil)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate MAC did not panic")
		}
	}()
	seg.Attach(wire.MACForHost(1), nil)
}

func TestStatsCounters(t *testing.T) {
	k := sim.NewKernel(1)
	seg := NewSegment(k)
	a, b := wire.MACForHost(1), wire.MACForHost(2)
	pa := seg.Attach(a, nil)
	seg.Attach(b, func(f []byte) {})
	frame := buildFrame(t, a, b, 100)
	k.After(0, func() { pa.Transmit(frame, sim.Micros(139), nil) })
	k.After(sim.Micros(1000), func() {})
	k.Run()
	st := seg.Stats()
	if st.Frames != 1 || st.Bytes != int64(len(frame)) {
		t.Fatalf("stats %+v", st)
	}
	if st.Utilization < 0.13 || st.Utilization > 0.15 {
		t.Fatalf("utilization = %v, want ~0.139", st.Utilization)
	}
}
