// Package ether simulates a private 10 megabit/second Ethernet segment: a
// single shared medium to which station controllers attach. Transmissions
// are serialized FIFO (carrier-sense deference; the measured configuration
// was a private Ethernet with two stations, so collisions are negligible and
// are not modeled). Delivery happens when the last bit is transmitted.
package ether

import (
	"fireflyrpc/internal/sim"
	"fireflyrpc/internal/wire"
)

// Segment is a shared Ethernet.
type Segment struct {
	k        *sim.Kernel
	medium   *sim.Resource
	stations map[wire.MAC]*Port
	order    []*Port // attachment order, for deterministic broadcast

	// Stats
	frames    int64
	bytes     int64
	dropNoDst int64

	// LossRate drops a fraction of frames at delivery time, for protocol
	// fault-injection tests. Zero on the fast path.
	LossRate float64

	// faulter, when non-nil, decides per-frame impairments (drop, dup,
	// delay, corruption) at transmission time — the simulator binding of
	// the faultnet engine, so the same profiles that impair the real
	// transports impair the model. Delayed and duplicated deliveries are
	// scheduled through the kernel, so runs stay deterministic.
	faulter Faulter

	// tracer, when non-nil, observes the packet lifecycle; frame ids are
	// assigned in transmit order so traces can draw src→dst flow arrows.
	tracer    Tracer
	nextFrame uint64
}

// Tracer observes the segment's packet lifecycle. Hooks fire after the
// segment's own accounting and must only record.
type Tracer interface {
	// FrameOnWire reports that frame id finished its wire transmission at
	// `at`, having occupied the medium for txTime (the span [at-txTime, at]).
	// lost marks frames dropped by fault injection; dst is empty when the
	// frame's Ethernet header failed to parse.
	FrameOnWire(at sim.Time, id uint64, src, dst string, bytes int, txTime sim.Duration, lost bool)
	// FrameDelivered reports delivery of frame id to station dst (same
	// instant as FrameOnWire; broadcast frames deliver more than once).
	FrameDelivered(at sim.Time, id uint64, dst string, bytes int)
}

// SetTracer installs (nil removes) the segment's packet tracer.
func (s *Segment) SetTracer(tr Tracer) { s.tracer = tr }

// Fault is one frame's impairment decision, produced by a Faulter.
type Fault struct {
	Drop       bool
	Dup        bool         // deliver a second copy
	Delay      sim.Duration // extra wire latency before delivery
	DupDelay   sim.Duration // extra latency for the duplicate copy
	CorruptAt  int          // byte offset to XOR-flip; -1 = none
	CorruptXor byte
}

// NoFault is the neutral decision.
func NoFault() Fault { return Fault{CorruptAt: -1} }

// Faulter decides the fate of each transmitted frame, called once per frame
// in transmission order (event context, so implementations need no locks
// but must draw randomness deterministically).
type Faulter interface {
	Frame(size int) Fault
}

// LinkFaulter is a Faulter that also sees the frame's addressing, so a
// multi-node fabric can impair each (src, dst) link independently — the
// runbook executor's per-link profiles hang off this. When the installed
// faulter implements LinkFaulter, the segment calls LinkFrame instead of
// Frame; dst is the zero MAC for frames whose Ethernet header fails to
// parse, so implementations still consume exactly one decision per frame.
type LinkFaulter interface {
	Faulter
	LinkFrame(src, dst wire.MAC, size int) Fault
}

// SetFaulter installs (nil removes) the segment's fault-injection hook.
func (s *Segment) SetFaulter(f Faulter) { s.faulter = f }

// Medium exposes the wire's underlying resource for utilization reporting.
func (s *Segment) Medium() *sim.Resource { return s.medium }

// NewSegment creates an empty segment on the kernel's clock.
func NewSegment(k *sim.Kernel) *Segment {
	return NewSegmentNamed(k, "ethernet")
}

// NewSegmentNamed creates a segment whose medium resource carries the given
// name, so fabrics with many segments (one per node pair) stay tellable
// apart in utilization reports and on the debug surface.
func NewSegmentNamed(k *sim.Kernel, name string) *Segment {
	return &Segment{
		k:        k,
		medium:   sim.NewResource(k, name, 1),
		stations: make(map[wire.MAC]*Port),
	}
}

// Port is one station's attachment to the segment.
type Port struct {
	seg     *Segment
	mac     wire.MAC
	deliver func(frame []byte)
}

// Attach connects a station. deliver is invoked (in event context) when a
// frame addressed to mac — or broadcast — finishes transmission.
func (s *Segment) Attach(mac wire.MAC, deliver func(frame []byte)) *Port {
	if _, dup := s.stations[mac]; dup {
		panic("ether: duplicate MAC " + mac.String())
	}
	p := &Port{seg: s, mac: mac, deliver: deliver}
	s.stations[mac] = p
	s.order = append(s.order, p)
	return p
}

// MAC returns the port's address.
func (p *Port) MAC() wire.MAC { return p.mac }

// Transmit sends a frame taking txTime on the wire (computed by the caller
// from its bit-rate model, so the §4.2.2 faster-network variant needs no
// changes here). onSent fires when the last bit leaves the transmitter;
// delivery to the destination port happens at the same instant.
//
// The frame slice must not be modified by the caller after Transmit; the
// destination receives the same backing array (the simulator models DMA, not
// a copying network stack).
func (p *Port) Transmit(frame []byte, txTime sim.Duration, onSent func()) {
	s := p.seg
	id := s.nextFrame
	s.nextFrame++
	s.medium.Submit(txTime, func() {
		s.frames++
		s.bytes += int64(len(frame))
		if onSent != nil {
			onSent()
		}
		hdr, _, err := wire.UnmarshalEthernet(frame)
		fv := NoFault()
		if s.faulter != nil {
			if lf, ok := s.faulter.(LinkFaulter); ok {
				dst := wire.MAC{}
				if err == nil {
					dst = hdr.Dst
				}
				fv = lf.LinkFrame(p.mac, dst, len(frame))
			} else {
				fv = s.faulter.Frame(len(frame))
			}
		}
		lost := fv.Drop || (s.LossRate > 0 && s.k.RNG().Float64() < s.LossRate)
		if tr := s.tracer; tr != nil {
			dstName := ""
			if err == nil {
				dstName = hdr.Dst.String()
			}
			tr.FrameOnWire(s.k.Now(), id, p.mac.String(), dstName, len(frame), txTime, lost)
		}
		if lost {
			return // frame lost on the wire
		}
		if err != nil {
			return
		}
		df := frame
		if fv.CorruptAt >= 0 && fv.CorruptAt < len(frame) {
			// Corrupt a copy: the sender retains the original backing array
			// for retransmission (the simulator models DMA, not a copying
			// stack). Addressing was parsed above, so a flipped byte reaches
			// the RPC layer rather than rerouting the frame.
			cp := append([]byte(nil), frame...)
			cp[fv.CorruptAt] ^= fv.CorruptXor
			df = cp
		}
		if fv.Delay > 0 {
			s.k.After(fv.Delay, func() { s.deliver(p.mac, hdr, id, df) })
		} else {
			s.deliver(p.mac, hdr, id, df)
		}
		if fv.Dup {
			// A zero DupDelay still goes through the kernel queue, so the
			// duplicate arrives as its own event after the original.
			s.k.After(fv.DupDelay, func() { s.deliver(p.mac, hdr, id, df) })
		}
	})
}

// deliver hands a (possibly delayed or duplicated) frame to its
// destination station(s), firing the tracer per delivery.
func (s *Segment) deliver(srcMAC wire.MAC, hdr wire.EthernetHeader, id uint64, frame []byte) {
	if hdr.Dst == wire.Broadcast {
		for _, dst := range s.order { // attachment order: deterministic
			if dst.mac != srcMAC {
				if tr := s.tracer; tr != nil {
					tr.FrameDelivered(s.k.Now(), id, dst.mac.String(), len(frame))
				}
				dst.deliver(frame)
			}
		}
		return
	}
	if dst, ok := s.stations[hdr.Dst]; ok {
		if tr := s.tracer; tr != nil {
			tr.FrameDelivered(s.k.Now(), id, dst.mac.String(), len(frame))
		}
		dst.deliver(frame)
	} else {
		s.dropNoDst++
	}
}

// Stats reports traffic counters.
type Stats struct {
	Frames      int64
	Bytes       int64
	DropNoDst   int64
	Utilization float64
}

// Stats returns a snapshot of segment counters.
func (s *Segment) Stats() Stats {
	return Stats{
		Frames:      s.frames,
		Bytes:       s.bytes,
		DropNoDst:   s.dropNoDst,
		Utilization: s.medium.Utilization(),
	}
}
