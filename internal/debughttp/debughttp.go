// Package debughttp is the optional observability surface for the real RPC
// stack: an HTTP listener exposing every registered Conn's counters, peer
// table, latency histograms, and stage-trace accounting as JSON, plus the
// standard expvar and pprof endpoints. Nothing here touches the call fast
// path — every page is a pull-time snapshot of the lock-free state the
// protocol already maintains, so serving the page costs the caller of an
// RPC nothing.
//
// Endpoints:
//
//	/debug/rpc        full JSON snapshot of every registered Conn
//	/debug/rpc/peers  peer/channel table only
//	/debug/rpc/hist   per-peer and per-method latency summaries only
//	/debug/rpc/trace  stage-trace accounting (empty unless tracing is on)
//	/debug/rpc/trace/spans  assembled distributed-trace spans (add ?format=perfetto for a viewer-ready document)
//	/debug/rpc/flight  per-Conn flight recorder: live anomaly ring + last auto-dump
//	/debug/rpc/cluster  registered replica-set balancers: picks, hedges, ejections
//	/debug/rpc/sim    registered simulation kernels: clock + per-resource stats
//	/debug/rpc/metrics  Prometheus text format: counters, latency histograms, sim gauges
//	/debug/vars       expvar (includes the "fireflyrpc" snapshot var)
//	/debug/pprof/     the standard runtime profiles
package debughttp

import (
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"sync"
	"time"

	"fireflyrpc/internal/overload"
	"fireflyrpc/internal/proto"
	"fireflyrpc/internal/stats"
	"fireflyrpc/internal/transport"
)

// registry holds the Conns the surface reports on. Registration is global
// so a process's server and client stacks can both appear on one listener.
var (
	regMu   sync.Mutex
	reg     = map[string]*proto.Conn{}
	pubOnce sync.Once
)

// Register adds (or replaces) a named Conn on the debug surface.
func Register(name string, conn *proto.Conn) {
	regMu.Lock()
	reg[name] = conn
	regMu.Unlock()
	// Publish the expvar exactly once, lazily, so importing the package
	// costs nothing and tests re-registering conns never collide.
	pubOnce.Do(func() {
		expvar.Publish("fireflyrpc", expvar.Func(func() any { return snapshot() }))
	})
}

// Unregister removes a named Conn (e.g. after closing it).
func Unregister(name string) {
	regMu.Lock()
	delete(reg, name)
	regMu.Unlock()
}

// PeerHistView is one peer's latency summary.
type PeerHistView struct {
	Peer    string        `json:"peer"`
	Summary stats.Summary `json:"summary"`
}

// MethodHistView is one method's latency summary.
type MethodHistView struct {
	Interface uint32        `json:"interface"`
	Proc      uint16        `json:"proc"`
	Summary   stats.Summary `json:"summary"`
}

// ConnView is the full snapshot of one registered Conn.
type ConnView struct {
	Name        string           `json:"name"`
	Addr        string           `json:"addr"`
	Tracing     bool             `json:"tracing"`
	Stats       proto.Stats      `json:"stats"`
	Transport   *transport.Stats `json:"transport,omitempty"` // nil when the transport reports no counters
	Admission   *overload.Stats  `json:"admission,omitempty"` // nil when no admission control configured
	Peers       []proto.PeerInfo `json:"peers"`
	PeerHists   []PeerHistView   `json:"peer_hists,omitempty"`
	MethodHists []MethodHistView `json:"method_hists,omitempty"`
}

// Snapshot is the top-level /debug/rpc document. Accounting joins the trace
// rings of every tracing-enabled registered Conn, so when a process hosts
// both ends of a call (or serves traced calls from a traced caller
// elsewhere in-process) the full stage breakdown appears here.
type Snapshot struct {
	Now        string                  `json:"now"`
	Conns      []ConnView              `json:"conns"`
	Accounting *proto.AccountingReport `json:"accounting,omitempty"`
}

func view(name string, c *proto.Conn) ConnView {
	v := ConnView{
		Name:    name,
		Addr:    c.LocalAddr().String(),
		Tracing: c.TracingEnabled(),
		Stats:   c.Stats(),
		Peers:   c.Peers(),
	}
	if ts, ok := c.TransportStats(); ok {
		v.Transport = &ts
	}
	if as, ok := c.AdmissionStats(); ok {
		v.Admission = &as
	}
	for _, ph := range c.PeerHistograms() {
		v.PeerHists = append(v.PeerHists, PeerHistView{Peer: ph.Peer, Summary: ph.Hist.Summarize()})
	}
	for _, mh := range c.MethodHistograms() {
		v.MethodHists = append(v.MethodHists, MethodHistView{
			Interface: mh.Interface, Proc: mh.Proc, Summary: mh.Hist.Summarize(),
		})
	}
	return v
}

func snapshot() Snapshot {
	regMu.Lock()
	names := make([]string, 0, len(reg))
	for name := range reg {
		names = append(names, name)
	}
	conns := make([]*proto.Conn, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		conns = append(conns, reg[name])
	}
	regMu.Unlock()
	snap := Snapshot{Now: time.Now().UTC().Format(time.RFC3339Nano)}
	var rings [][]proto.TraceRecord
	for i, name := range names {
		v := view(name, conns[i])
		snap.Conns = append(snap.Conns, v)
		if v.Tracing {
			rings = append(rings, conns[i].TraceRecords())
		}
	}
	if len(rings) > 0 {
		rep := proto.Account(rings...)
		snap.Accounting = &rep
	}
	return snap
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// Handler returns the debug mux. It is exported separately from Serve so a
// process that already runs an HTTP server can mount the surface itself.
func Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/rpc", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, snapshot())
	})
	mux.HandleFunc("/debug/rpc/peers", func(w http.ResponseWriter, _ *http.Request) {
		snap := snapshot()
		out := map[string][]proto.PeerInfo{}
		for _, c := range snap.Conns {
			out[c.Name] = c.Peers
		}
		writeJSON(w, out)
	})
	mux.HandleFunc("/debug/rpc/hist", func(w http.ResponseWriter, _ *http.Request) {
		type hists struct {
			Peers   []PeerHistView   `json:"peers"`
			Methods []MethodHistView `json:"methods"`
		}
		snap := snapshot()
		out := map[string]hists{}
		for _, c := range snap.Conns {
			out[c.Name] = hists{Peers: c.PeerHists, Methods: c.MethodHists}
		}
		writeJSON(w, out)
	})
	mux.HandleFunc("/debug/rpc/trace", func(w http.ResponseWriter, _ *http.Request) {
		out := map[string]*proto.AccountingReport{}
		if snap := snapshot(); snap.Accounting != nil {
			out["joined"] = snap.Accounting
		}
		writeJSON(w, out)
	})
	mux.HandleFunc("/debug/rpc/trace/spans", serveSpans)
	mux.HandleFunc("/debug/rpc/flight", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, flightSnapshot())
	})
	mux.HandleFunc("/debug/rpc/cluster", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, clusterSnapshot())
	})
	mux.HandleFunc("/debug/rpc/sim", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, simSnapshot())
	})
	mux.HandleFunc("/debug/rpc/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		writeMetrics(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is one running debug listener.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Addr returns the listener's actual address (useful with a ":0" port).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the listener down.
func (s *Server) Close() error { return s.srv.Close() }

// Serve starts the debug surface on addr (e.g. "127.0.0.1:6060", or ":0"
// for an ephemeral port) and serves until Close.
func Serve(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: Handler()}
	go func() { _ = srv.Serve(ln) }()
	return &Server{ln: ln, srv: srv}, nil
}
