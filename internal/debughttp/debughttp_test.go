package debughttp

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"fireflyrpc/internal/core"
	"fireflyrpc/internal/marshal"
	"fireflyrpc/internal/overload"
	"fireflyrpc/internal/proto"
	"fireflyrpc/internal/testsvc"
	"fireflyrpc/internal/transport"
)

type nullImpl struct{}

func (nullImpl) Null() error                            { return nil }
func (nullImpl) MaxResult(b []byte) error               { return nil }
func (nullImpl) MaxArg(b []byte) error                  { return nil }
func (nullImpl) Add4(a, b, c, d int32) (int32, error)   { return a + b + c + d, nil }
func (nullImpl) Reverse(data []byte, out *[]byte) error { *out = data; return nil }
func (nullImpl) Increment(counter *uint32) error        { *counter++; return nil }
func (nullImpl) Greet(n *marshal.Text) (*marshal.Text, error) {
	return marshal.NewText("hi " + n.String()), nil
}

func TestDebugSurface(t *testing.T) {
	ex := transport.NewExchange()
	server := core.NewNode(ex.Port("server"), proto.DefaultConfig())
	caller := core.NewNode(ex.Port("caller"), proto.DefaultConfig())
	defer server.Close()
	defer caller.Close()
	server.Export(testsvc.ExportTest(nullImpl{}))
	binding := caller.Bind(server.Addr(), testsvc.TestName, testsvc.TestVersion)
	cl := testsvc.NewTestClient(binding)

	caller.Conn().SetTracing(1, 128)
	server.Conn().SetTracing(1, 128)
	for i := 0; i < 32; i++ {
		if err := cl.Null(); err != nil {
			t.Fatal(err)
		}
	}

	Register("caller", caller.Conn())
	Register("server", server.Conn())
	defer Unregister("caller")
	defer Unregister("server")

	srv, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	defer srv.Close()

	get := func(path string) []byte {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return body
	}

	var snap Snapshot
	if err := json.Unmarshal(get("/debug/rpc"), &snap); err != nil {
		t.Fatalf("bad /debug/rpc JSON: %v", err)
	}
	if len(snap.Conns) != 2 {
		t.Fatalf("snapshot has %d conns, want 2", len(snap.Conns))
	}
	byName := map[string]ConnView{}
	for _, c := range snap.Conns {
		byName[c.Name] = c
	}
	cv := byName["caller"]
	if cv.Stats.CallsCompleted < 32 {
		t.Errorf("caller completed %d calls in snapshot, want ≥32", cv.Stats.CallsCompleted)
	}
	if len(cv.PeerHists) != 1 || cv.PeerHists[0].Summary.N < 32 {
		t.Errorf("caller peer hists: %+v", cv.PeerHists)
	}
	if len(cv.MethodHists) == 0 {
		t.Error("caller method hists empty")
	}
	if !cv.Tracing {
		t.Error("caller view should report tracing enabled")
	}
	if snap.Accounting == nil || snap.Accounting.Calls == 0 {
		t.Errorf("joined accounting: %+v", snap.Accounting)
	}
	sv := byName["server"]
	if sv.Stats.CallsServed < 32 {
		t.Errorf("server served %d calls in snapshot, want ≥32", sv.Stats.CallsServed)
	}
	if len(sv.Peers) != 1 {
		t.Errorf("server peer table: %+v", sv.Peers)
	} else {
		// The hello handshake ran as part of the traffic above, so the
		// debug surface must report the negotiated session per peer.
		p := sv.Peers[0]
		if p.Session != "negotiated" {
			t.Errorf("server peer session = %q, want negotiated", p.Session)
		}
		if p.SessionVersion == 0 || p.SessionFeatures == 0 {
			t.Errorf("server peer session version/features = %d/%#x", p.SessionVersion, p.SessionFeatures)
		}
		if len(p.FeatureNames) == 0 {
			t.Errorf("server peer feature names empty (features %#x)", p.SessionFeatures)
		}
	}

	// Sub-pages and the expvar surface must parse too.
	for _, path := range []string{"/debug/rpc/peers", "/debug/rpc/hist", "/debug/rpc/trace", "/debug/vars"} {
		var v map[string]any
		if err := json.Unmarshal(get(path), &v); err != nil {
			t.Errorf("bad %s JSON: %v", path, err)
		}
	}
	if _, ok := func() (any, bool) {
		var v map[string]any
		_ = json.Unmarshal(get("/debug/vars"), &v)
		x, ok := v["fireflyrpc"]
		return x, ok
	}(); !ok {
		t.Error("/debug/vars is missing the fireflyrpc var")
	}

	// pprof index answers.
	resp, err := http.Get("http://" + srv.Addr() + "/debug/pprof/")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index: %v (resp %+v)", err, resp)
	}
	resp.Body.Close()
}

// A Conn running admission control surfaces the queue on /debug/rpc and as
// Prometheus gauges; one without it omits the section entirely.
func TestDebugSurfaceAdmission(t *testing.T) {
	ex := transport.NewExchange()
	serverCfg := proto.DefaultConfig()
	serverCfg.Admission = overload.Config{Policy: overload.Deadline, Capacity: 16}
	server := core.NewNode(ex.Port("server"), serverCfg)
	caller := core.NewNode(ex.Port("caller"), proto.DefaultConfig())
	defer server.Close()
	defer caller.Close()
	server.Export(testsvc.ExportTest(nullImpl{}))
	binding := caller.Bind(server.Addr(), testsvc.TestName, testsvc.TestVersion)
	cl := testsvc.NewTestClient(binding)
	for i := 0; i < 8; i++ {
		if err := cl.Null(); err != nil {
			t.Fatal(err)
		}
	}

	Register("adm-caller", caller.Conn())
	Register("adm-server", server.Conn())
	defer Unregister("adm-caller")
	defer Unregister("adm-server")

	snap := snapshot()
	byName := map[string]ConnView{}
	for _, c := range snap.Conns {
		byName[c.Name] = c
	}
	sv := byName["adm-server"]
	if sv.Admission == nil {
		t.Fatal("server view missing admission stats")
	}
	if sv.Admission.Policy != "deadline" || sv.Admission.Capacity != 16 {
		t.Errorf("admission view: %+v", sv.Admission)
	}
	if sv.Admission.Served < 8 {
		t.Errorf("admission served %d, want ≥8", sv.Admission.Served)
	}
	if cv := byName["adm-caller"]; cv.Admission != nil {
		t.Errorf("caller without admission control reports %+v", cv.Admission)
	}

	var sb strings.Builder
	writeMetrics(&sb)
	out := sb.String()
	for _, want := range []string{
		`fireflyrpc_admission_queue_depth{conn="adm-server",policy="deadline"}`,
		`fireflyrpc_admission_shed_total{conn="adm-server",policy="deadline",reason="capacity"} 0`,
		`counter="calls_shed"`,
		`fireflyrpc_session_features{conn="adm-server",peer="caller",state="negotiated",version="1"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
	if strings.Contains(out, `fireflyrpc_admission_queue_depth{conn="adm-caller"`) {
		t.Error("caller without admission control emitted admission gauges")
	}
}
