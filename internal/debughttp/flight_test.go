package debughttp

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"fireflyrpc/internal/core"
	"fireflyrpc/internal/proto"
	"fireflyrpc/internal/testsvc"
	"fireflyrpc/internal/transport"
)

// TestDebugSurfaceLiveTCP scrapes every endpoint — including the flight
// recorder and distributed-span pages — while concurrent callers drive real
// traffic over the multiplexed TCP transport. Run under -race (the verify
// script does) this is the proof that the surface's pull-time snapshots
// coexist with the lock-free state they read.
func TestDebugSurfaceLiveTCP(t *testing.T) {
	serverTr, err := transport.ListenTCP("127.0.0.1:0", transport.TCPOptions{})
	if err != nil {
		t.Skip("no TCP loopback:", err)
	}
	callerTr, err := transport.ListenTCP("127.0.0.1:0", transport.TCPOptions{})
	if err != nil {
		serverTr.Close()
		t.Skip("no TCP loopback:", err)
	}
	cfg := proto.DefaultConfig()
	server := core.NewNode(serverTr, cfg)
	caller := core.NewNode(callerTr, cfg)
	defer server.Close()
	defer caller.Close()
	server.Export(testsvc.ExportTest(nullImpl{}))
	binding := caller.Bind(server.Addr(), testsvc.TestName, testsvc.TestVersion)

	caller.Conn().SetTracing(1, 512)
	server.Conn().SetTracing(1, 512)

	Register("tcp-caller", caller.Conn())
	Register("tcp-server", server.Conn())
	defer Unregister("tcp-caller")
	defer Unregister("tcp-server")

	srv, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	defer srv.Close()

	get := func(path string) []byte {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return body
	}

	// Drive traffic from several callers while a scraper hits every page:
	// the snapshots must interleave with live updates without a data race.
	const goroutines, callsEach = 4, 64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl := testsvc.NewTestClient(binding)
			for i := 0; i < callsEach; i++ {
				if err := cl.Null(); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	scrapeDone := make(chan struct{})
	go func() {
		defer close(scrapeDone)
		for i := 0; i < 16; i++ {
			for _, p := range []string{
				"/debug/rpc", "/debug/rpc/flight", "/debug/rpc/trace/spans",
				"/debug/rpc/trace/spans?format=perfetto", "/debug/rpc/metrics",
			} {
				get(p)
			}
		}
	}()
	wg.Wait()
	<-scrapeDone

	// Spans: the assembled set must be non-empty and causally sound JSON.
	var spans []proto.Span
	if err := json.Unmarshal(get("/debug/rpc/trace/spans"), &spans); err != nil {
		t.Fatalf("bad spans JSON: %v", err)
	}
	if len(spans) == 0 {
		t.Fatal("no spans assembled from live TCP traffic")
	}
	for i := range spans {
		if spans[i].SpanID == 0 {
			t.Fatalf("span %d has no id: %+v", i, spans[i])
		}
	}

	// Perfetto rendering of the same spans must be a loadable document.
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(get("/debug/rpc/trace/spans?format=perfetto"), &doc); err != nil {
		t.Fatalf("bad perfetto JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("perfetto document is empty")
	}

	// Flight recorder: both conns present with a well-formed view. (Clean
	// traffic records no anomalies; the proto tests force the dumps.)
	var flight map[string]FlightView
	if err := json.Unmarshal(get("/debug/rpc/flight"), &flight); err != nil {
		t.Fatalf("bad flight JSON: %v", err)
	}
	for _, name := range []string{"tcp-caller", "tcp-server"} {
		if _, ok := flight[name]; !ok {
			t.Errorf("flight view missing %q", name)
		}
	}

	// Metrics: build info plus the fixed-grid histogram export.
	metrics := string(get("/debug/rpc/metrics"))
	for _, want := range []string{
		"fireflyrpc_build_info{go_version=",
		`le="0.001048576"`, // 2^20 ns on the fixed grid
		`le="+Inf"`,
		"fireflyrpc_peer_latency_seconds_count",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}
