package debughttp

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"fireflyrpc/internal/core"
	"fireflyrpc/internal/proto"
	"fireflyrpc/internal/sim"
	"fireflyrpc/internal/testsvc"
	"fireflyrpc/internal/transport"
)

// TestSimSurfaceLive serves /debug/rpc/sim and /debug/rpc/metrics while
// another goroutine drives the registered simulation. Under -race this pins
// that HTTP-triggered inspection cannot corrupt (or race with) a run.
func TestSimSurfaceLive(t *testing.T) {
	k := sim.NewKernel(11)
	bus := sim.NewResource(k, "bus", 1)
	k.Spawn("worker", func(th *sim.Thread) {
		for i := 0; i < 5000; i++ {
			bus.Use(th, sim.Micros(2))
			th.Sleep(sim.Micros(1))
		}
	})
	RegisterSim("livekernel", k)
	defer UnregisterSim("livekernel")

	srv, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	defer srv.Close()

	get := func(path string) []byte {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Errorf("GET %s: %v", path, err)
			return nil
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
		return body
	}

	// Hammer both sim endpoints while the run progresses.
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				get("/debug/rpc/sim")
				get("/debug/rpc/metrics")
			}
		}()
	}
	k.Run()
	close(stop)
	wg.Wait()
	if bus.Served() != 5000 {
		t.Errorf("served = %d, want 5000", bus.Served())
	}

	// Final snapshots reflect the finished run.
	var sims map[string]SimView
	if err := json.Unmarshal(get("/debug/rpc/sim"), &sims); err != nil {
		t.Fatalf("bad /debug/rpc/sim JSON: %v", err)
	}
	v, ok := sims["livekernel"]
	if !ok {
		t.Fatalf("no livekernel in %v", sims)
	}
	if len(v.Resources) != 1 || v.Resources[0].Name != "bus" {
		t.Fatalf("resources: %+v", v.Resources)
	}
	if v.Resources[0].Served != 5000 || v.Resources[0].Wait.N != 5000 {
		t.Errorf("bus stats: %+v", v.Resources[0])
	}
	if v.NowNs <= 0 {
		t.Errorf("now = %d, want > 0", v.NowNs)
	}

	body := string(get("/debug/rpc/metrics"))
	for _, want := range []string{
		`fireflyrpc_sim_resource_utilization{kernel="livekernel",resource="bus"}`,
		`fireflyrpc_sim_resource_served_total{kernel="livekernel",resource="bus"} 5000`,
		`fireflyrpc_sim_resource_wait_seconds_count{kernel="livekernel",resource="bus"} 5000`,
		`fireflyrpc_sim_now_seconds{kernel="livekernel"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q in:\n%s", want, body)
		}
	}
}

// TestMetricsConnCounters checks the Prometheus rendering of a real Conn's
// counters and histograms.
func TestMetricsConnCounters(t *testing.T) {
	ex := transport.NewExchange()
	server := core.NewNode(ex.Port("msrv"), proto.DefaultConfig())
	caller := core.NewNode(ex.Port("mcall"), proto.DefaultConfig())
	defer server.Close()
	defer caller.Close()
	server.Export(testsvc.ExportTest(nullImpl{}))
	cl := testsvc.NewTestClient(caller.Bind(server.Addr(), testsvc.TestName, testsvc.TestVersion))
	caller.Conn().SetTracing(1, 128) // latency histograms record while observability is on
	for i := 0; i < 16; i++ {
		if err := cl.Null(); err != nil {
			t.Fatal(err)
		}
	}
	Register("prom-caller", caller.Conn())
	defer Unregister("prom-caller")

	var sb strings.Builder
	writeMetrics(&sb)
	body := sb.String()
	for _, want := range []string{
		`fireflyrpc_counter_total{conn="prom-caller",counter="calls_sent"} 16`,
		`fireflyrpc_counter_total{conn="prom-caller",counter="calls_completed"} 16`,
		`fireflyrpc_peer_latency_seconds_count{conn="prom-caller",`,
		`fireflyrpc_method_latency_seconds_bucket{conn="prom-caller",`,
		`le="+Inf"`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q in:\n%s", want, body)
		}
	}
	// Histogram buckets must be cumulative: the +Inf bucket equals _count.
	if !strings.Contains(body, "# TYPE fireflyrpc_peer_latency_seconds histogram") {
		t.Error("missing TYPE line for peer latency histogram")
	}
}

// TestMetricsTransportCounters checks that a Conn over the batched UDP
// transport surfaces the transport's own counters in both the JSON view
// and the Prometheus rendering.
func TestMetricsTransportCounters(t *testing.T) {
	serverTr, err := transport.ListenUDPBatch("127.0.0.1:0", transport.UDPOptions{})
	if err != nil {
		t.Skip("no loopback:", err)
	}
	callerTr, err := transport.ListenUDPBatch("127.0.0.1:0", transport.UDPOptions{})
	if err != nil {
		serverTr.Close()
		t.Skip("no loopback:", err)
	}
	server := core.NewNode(serverTr, proto.DefaultConfig())
	caller := core.NewNode(callerTr, proto.DefaultConfig())
	defer server.Close()
	defer caller.Close()
	server.Export(testsvc.ExportTest(nullImpl{}))
	cl := testsvc.NewTestClient(caller.Bind(server.Addr(), testsvc.TestName, testsvc.TestVersion))
	for i := 0; i < 16; i++ {
		if err := cl.Null(); err != nil {
			t.Fatal(err)
		}
	}
	Register("udp-caller", caller.Conn())
	defer Unregister("udp-caller")

	v := view("udp-caller", caller.Conn())
	if v.Transport == nil {
		t.Fatal("ConnView.Transport is nil for a UDP-backed conn")
	}
	if v.Transport.SendFrames < 16 || v.Transport.RecvFrames < 16 {
		t.Fatalf("transport counters too low: %+v", *v.Transport)
	}

	var sb strings.Builder
	writeMetrics(&sb)
	body := sb.String()
	for _, want := range []string{
		`fireflyrpc_transport_counter_total{conn="udp-caller",counter="send_frames"}`,
		`fireflyrpc_transport_counter_total{conn="udp-caller",counter="recv_batches"}`,
		`fireflyrpc_transport_max_send_batch{conn="udp-caller"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q in:\n%s", want, body)
		}
	}
}
