package debughttp

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"fireflyrpc/internal/cluster"
	"fireflyrpc/internal/core"
	"fireflyrpc/internal/marshal"
	"fireflyrpc/internal/proto"
	"fireflyrpc/internal/transport"
)

// TestClusterViewUnderLiveTraffic races the cluster debug surface —
// /debug/rpc/cluster and the fireflyrpc_cluster_* metrics — against live
// hedged traffic: scrapes must parse and never perturb the callers.
func TestClusterViewUnderLiveTraffic(t *testing.T) {
	ex := transport.NewExchange()
	cfg := proto.Config{RetransInterval: 50 * time.Millisecond, MaxRetries: 8, Workers: 4}
	var addrs []string
	for _, name := range []string{"ra", "rb", "rc"} {
		node := core.NewNode(ex.Port(name), cfg)
		node.Export(core.NewInterface("Echo", 1).
			Proc(1, func(_ transport.Addr, d *marshal.Dec) ([]byte, error) {
				v := d.Int32()
				if err := d.Err(); err != nil {
					return nil, err
				}
				time.Sleep(200 * time.Microsecond)
				return core.Reply(4, func(e *marshal.Enc) { e.PutInt32(v + 1) })
			}))
		addrs = append(addrs, name)
		defer node.Close()
	}
	caller := core.NewNode(ex.Port("caller"), cfg)
	defer caller.Close()
	cc, err := cluster.New(context.Background(), cluster.Config{
		Node:      caller,
		Resolver:  cluster.Static(addrs),
		ParseAddr: func(s string) (transport.Addr, error) { return transport.AddrOf(s), nil },
		Iface:     "Echo",
		Version:   1,
		Hedge:     cluster.HedgeConfig{Enabled: true, After: 100 * time.Microsecond},
		Seed:      3,
	})
	if err != nil {
		t.Fatal(err)
	}
	RegisterCluster("echo", cc)
	defer UnregisterCluster("echo")

	srv, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Live hedged traffic from several goroutines for the whole scrape run.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				var out int32
				err := cc.Call(context.Background(), 1, 4,
					func(e *marshal.Enc) { e.PutInt32(int32(i)) },
					func(d *marshal.Dec) { out = d.Int32() })
				if err != nil {
					t.Errorf("call: %v", err)
					return
				}
				if out != int32(i)+1 {
					t.Errorf("echo(%d) = %d", i, out)
					return
				}
			}
		}()
	}

	get := func(path string) []byte {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}

	for scrape := 0; scrape < 20; scrape++ {
		var view map[string]cluster.Stats
		if err := json.Unmarshal(get("/debug/rpc/cluster"), &view); err != nil {
			t.Fatalf("scrape %d: bad cluster JSON: %v", scrape, err)
		}
		s, ok := view["echo"]
		if !ok || len(s.Replicas) != 3 {
			t.Fatalf("scrape %d: view = %+v", scrape, view)
		}
		metrics := string(get("/debug/rpc/metrics"))
		for _, want := range []string{
			`fireflyrpc_cluster_calls_total{cluster="echo",kind="logical"}`,
			`fireflyrpc_cluster_hedges_total{cluster="echo",event="fired"}`,
			`fireflyrpc_cluster_replica_picks_total{cluster="echo",replica="ra"}`,
			`fireflyrpc_cluster_replica_ejected{cluster="echo",replica="rc"}`,
		} {
			if !strings.Contains(metrics, want) {
				t.Fatalf("scrape %d: metrics missing %s", scrape, want)
			}
		}
	}
	close(stop)
	wg.Wait()

	s := cc.Stats()
	if s.Calls == 0 || s.Issued < s.Calls {
		t.Fatalf("no traffic flowed during the scrape run: %+v", s)
	}
}
