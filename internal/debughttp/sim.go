package debughttp

import (
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"sync"

	"fireflyrpc/internal/proto"
	"fireflyrpc/internal/sim"
	"fireflyrpc/internal/stats"
)

// buildVersion reports the main module's version when build info is
// embedded (it is not under plain `go test`, hence the guard).
func buildVersion() string {
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		return bi.Main.Version
	}
	return "unknown"
}

// simReg holds the kernels the surface reports on, alongside the Conn
// registry. A simulation registered here can be watched live over HTTP while
// another goroutine drives it: snapshots go through Kernel.Inspect, which
// interleaves with the run between events and never perturbs virtual time.
var (
	simMu  sync.Mutex
	simReg = map[string]*sim.Kernel{}
)

// RegisterSim adds (or replaces) a named simulation kernel on the debug
// surface.
func RegisterSim(name string, k *sim.Kernel) {
	simMu.Lock()
	simReg[name] = k
	simMu.Unlock()
}

// UnregisterSim removes a named kernel.
func UnregisterSim(name string) {
	simMu.Lock()
	delete(simReg, name)
	simMu.Unlock()
}

// SimView is one kernel's snapshot: the virtual clock and every registered
// resource's utilization/queueing accounting.
type SimView struct {
	NowNs     int64               `json:"now_ns"`
	Pending   int                 `json:"pending_events"`
	Resources []sim.ResourceStats `json:"resources"`
}

func simSnapshot() map[string]SimView {
	simMu.Lock()
	names := make([]string, 0, len(simReg))
	for name := range simReg {
		names = append(names, name)
	}
	sort.Strings(names)
	kernels := make([]*sim.Kernel, len(names))
	for i, name := range names {
		kernels[i] = simReg[name]
	}
	simMu.Unlock()

	out := make(map[string]SimView, len(names))
	for i, name := range names {
		k := kernels[i]
		var v SimView
		k.Inspect(func() {
			v.NowNs = int64(k.Now())
			v.Pending = k.Pending()
			for _, r := range k.Resources() {
				v.Resources = append(v.Resources, r.Stats())
			}
		})
		out[name] = v
	}
	return out
}

// --- Prometheus text exposition ---

// promEscape escapes a label value.
func promEscape(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// The fixed Prometheus le grid: powers of two from 2^10 ns (~1 µs) to
// 2^36 ns (~69 s), every other exponent. A histogram series must expose the
// same le set on every scrape — the export used to emit only the snapshot's
// non-empty log2 buckets, so the label set mutated as traffic arrived and
// rate()/histogram_quantile() silently misbehaved across scrapes.
const (
	histLeMinExp  = 10
	histLeMaxExp  = 36
	histLeExpStep = 2
)

// writeHist renders one stats.Hist snapshot as a Prometheus histogram
// (cumulative counts on the fixed le grid in seconds, then +Inf, _sum,
// _count). stats.Hist bucket b holds durations in [2^(b-1), 2^b) ns, so the
// cumulative count at le = 2^k ns is the sum of buckets 0..k.
func writeHist(w io.Writer, name, labels string, snap stats.HistSnapshot) {
	var cum int64
	b := 0
	for k := histLeMinExp; k <= histLeMaxExp; k += histLeExpStep {
		for ; b <= k && b < len(snap.Counts); b++ {
			cum += snap.Counts[b]
		}
		fmt.Fprintf(w, "%s_bucket{%sle=\"%g\"} %d\n", name, labels, float64(int64(1)<<k)/1e9, cum)
	}
	fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", name, labels, snap.N)
	fmt.Fprintf(w, "%s_sum{%s} %g\n", name, strings.TrimSuffix(labels, ","), float64(snap.SumNs)/1e9)
	fmt.Fprintf(w, "%s_count{%s} %d\n", name, strings.TrimSuffix(labels, ","), snap.N)
}

// registeredConns returns the Conn registry in name order.
func registeredConns() ([]string, []*proto.Conn) {
	regMu.Lock()
	defer regMu.Unlock()
	names := make([]string, 0, len(reg))
	for name := range reg {
		names = append(names, name)
	}
	sort.Strings(names)
	conns := make([]*proto.Conn, len(names))
	for i, name := range names {
		conns[i] = reg[name]
	}
	return names, conns
}

// writeMetrics renders every registered Conn's counters and latency
// histograms plus every registered kernel's resource gauges in the
// Prometheus text exposition format.
func writeMetrics(w io.Writer) {
	names, conns := registeredConns()

	fmt.Fprint(w, "# TYPE fireflyrpc_build_info gauge\n")
	fmt.Fprintf(w, "fireflyrpc_build_info{go_version=\"%s\",module_version=\"%s\"} 1\n",
		promEscape(runtime.Version()), promEscape(buildVersion()))

	fmt.Fprint(w, "# TYPE fireflyrpc_counter_total counter\n")
	for i, c := range conns {
		l := fmt.Sprintf(`conn="%s",`, promEscape(names[i]))
		s := c.Stats()
		for _, kv := range []struct {
			name string
			v    int64
		}{
			{"calls_sent", s.CallsSent},
			{"calls_completed", s.CallsCompleted},
			{"calls_served", s.CallsServed},
			{"retransmits", s.Retransmits},
			{"dup_calls", s.DupCalls},
			{"dup_frags", s.DupFrags},
			{"result_retrans", s.ResultRetrans},
			{"acks_sent", s.AcksSent},
			{"in_progress_acks", s.InProgressAcks},
			{"rejects", s.Rejects},
			{"bad_frames", s.BadFrames},
			{"stale_drops", s.StaleDrops},
			{"probes", s.Probes},
			{"cancels", s.Cancels},
			{"peers_evicted", s.PeersEvicted},
			{"calls_shed", s.CallsShed},
			{"overloads", s.Overloads},
		} {
			fmt.Fprintf(w, "fireflyrpc_counter_total{%scounter=\"%s\"} %d\n", l, kv.name, kv.v)
		}
	}

	fmt.Fprint(w, "# TYPE fireflyrpc_transport_counter_total counter\n")
	for i, c := range conns {
		ts, ok := c.TransportStats()
		if !ok {
			continue
		}
		l := fmt.Sprintf(`conn="%s",`, promEscape(names[i]))
		for _, kv := range []struct {
			name string
			v    int64
		}{
			{"oversize_drops", ts.OversizeDrops},
			{"recv_errors", ts.RecvErrors},
			{"send_errors", ts.SendErrors},
			{"recv_batches", ts.RecvBatches},
			{"recv_frames", ts.RecvFrames},
			{"send_batches", ts.SendBatches},
			{"send_frames", ts.SendFrames},
			{"gso_sends", ts.GSOSends},
			{"gro_splits", ts.GROSplits},
		} {
			fmt.Fprintf(w, "fireflyrpc_transport_counter_total{%scounter=\"%s\"} %d\n", l, kv.name, kv.v)
		}
		fmt.Fprintf(w, "fireflyrpc_transport_max_recv_batch{conn=\"%s\"} %d\n", promEscape(names[i]), ts.MaxRecvBatch)
		fmt.Fprintf(w, "fireflyrpc_transport_max_send_batch{conn=\"%s\"} %d\n", promEscape(names[i]), ts.MaxSendBatch)
	}

	fmt.Fprint(w, "# TYPE fireflyrpc_session_features gauge\n")
	for i, c := range conns {
		for _, p := range c.Peers() {
			fmt.Fprintf(w, "fireflyrpc_session_features{conn=\"%s\",peer=\"%s\",state=\"%s\",version=\"%d\"} %d\n",
				promEscape(names[i]), promEscape(p.Addr), promEscape(p.Session), p.SessionVersion, p.SessionFeatures)
		}
	}

	fmt.Fprint(w, "# TYPE fireflyrpc_admission_queue gauge\n")
	for i, c := range conns {
		as, ok := c.AdmissionStats()
		if !ok {
			continue
		}
		l := fmt.Sprintf(`conn="%s",policy="%s"`, promEscape(names[i]), promEscape(as.Policy))
		fmt.Fprintf(w, "fireflyrpc_admission_queue_depth{%s} %d\n", l, as.Depth)
		fmt.Fprintf(w, "fireflyrpc_admission_queue_capacity{%s} %d\n", l, as.Capacity)
		fmt.Fprintf(w, "fireflyrpc_admission_queue_max_depth{%s} %d\n", l, as.MaxDepth)
		fmt.Fprintf(w, "fireflyrpc_admission_admitted_total{%s} %d\n", l, as.Admitted)
		fmt.Fprintf(w, "fireflyrpc_admission_served_total{%s} %d\n", l, as.Served)
		fmt.Fprintf(w, "fireflyrpc_admission_shed_total{%s,reason=\"capacity\"} %d\n", l, as.ShedCapacity)
		fmt.Fprintf(w, "fireflyrpc_admission_shed_total{%s,reason=\"deadline\"} %d\n", l, as.ShedDeadline)
		fmt.Fprintf(w, "fireflyrpc_admission_service_ewma_seconds{%s} %g\n", l, as.ServiceEWMAUs/1e6)
	}

	fmt.Fprint(w, "# TYPE fireflyrpc_peer_latency_seconds histogram\n")
	for i, c := range conns {
		for _, ph := range c.PeerHistograms() {
			labels := fmt.Sprintf(`conn="%s",peer="%s",`, promEscape(names[i]), promEscape(ph.Peer))
			writeHist(w, "fireflyrpc_peer_latency_seconds", labels, ph.Hist)
		}
	}
	fmt.Fprint(w, "# TYPE fireflyrpc_method_latency_seconds histogram\n")
	for i, c := range conns {
		for _, mh := range c.MethodHistograms() {
			labels := fmt.Sprintf(`conn="%s",interface="%d",proc="%d",`,
				promEscape(names[i]), mh.Interface, mh.Proc)
			writeHist(w, "fireflyrpc_method_latency_seconds", labels, mh.Hist)
		}
	}

	writeClusterMetrics(w)

	sims := simSnapshot()
	simNames := make([]string, 0, len(sims))
	for name := range sims {
		simNames = append(simNames, name)
	}
	sort.Strings(simNames)
	fmt.Fprint(w, "# TYPE fireflyrpc_sim_resource_utilization gauge\n")
	for _, name := range simNames {
		v := sims[name]
		kl := promEscape(name)
		fmt.Fprintf(w, "fireflyrpc_sim_now_seconds{kernel=\"%s\"} %g\n", kl, float64(v.NowNs)/1e9)
		for _, st := range v.Resources {
			labels := fmt.Sprintf(`kernel="%s",resource="%s",`, kl, promEscape(st.Name))
			fmt.Fprintf(w, "fireflyrpc_sim_resource_utilization{%s} %g\n", strings.TrimSuffix(labels, ","), st.Utilization)
			fmt.Fprintf(w, "fireflyrpc_sim_resource_mean_queue_depth{%s} %g\n", strings.TrimSuffix(labels, ","), st.MeanQueueDepth)
			fmt.Fprintf(w, "fireflyrpc_sim_resource_served_total{%s} %d\n", strings.TrimSuffix(labels, ","), st.Served)
			writeHist(w, "fireflyrpc_sim_resource_wait_seconds", labels, st.WaitHist)
		}
	}
}
