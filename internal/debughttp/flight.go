package debughttp

import (
	"fmt"
	"net/http"

	"fireflyrpc/internal/proto"
	"fireflyrpc/internal/simtrace"
)

// The flight-recorder and distributed-span pages: like everything else on
// this surface, pull-time snapshots of lock-free state the protocol already
// maintains — serving them costs in-flight calls nothing.

// FlightView is one Conn's flight-recorder state: the live anomaly ring and
// the most recent auto-dump.
type FlightView struct {
	Events []proto.FlightEvent `json:"events"`
	Dumps  int64               `json:"dumps"`
	Last   *proto.FlightDump   `json:"last_dump,omitempty"`
}

// flightSnapshot collects every registered Conn's recorder state.
func flightSnapshot() map[string]FlightView {
	names, conns := registeredConns()
	out := make(map[string]FlightView, len(names))
	for i, c := range conns {
		last, dumps := c.LastFlightDump()
		out[names[i]] = FlightView{Events: c.FlightEvents(), Dumps: dumps, Last: last}
	}
	return out
}

// spansSnapshot assembles distributed-trace spans across every registered
// tracing Conn, so a process hosting several endpoints of a chained call
// (or scraped by a collector that merges processes) reports one causally
// linked span set.
func spansSnapshot() []proto.Span {
	_, conns := registeredConns()
	var rings [][]proto.TraceRecord
	for _, c := range conns {
		if c.TracingEnabled() {
			rings = append(rings, c.TraceRecords())
		}
	}
	if len(rings) == 0 {
		return nil
	}
	return proto.AssembleSpans(rings...)
}

// PerfettoSpans converts real-stack spans into the shared simtrace span
// schema, placing each under the named process with one track per activity.
// The result feeds simtrace.Builder.AddSpans — standalone via NewSpanDoc, or
// merged into a simulation run's document.
func PerfettoSpans(process string, spans []proto.Span) []simtrace.Span {
	out := make([]simtrace.Span, 0, len(spans))
	for i := range spans {
		s := &spans[i]
		sp := simtrace.Span{
			Trace:   s.TraceID,
			ID:      s.SpanID,
			Parent:  s.Parent,
			Process: process,
			Track:   fmt.Sprintf("act %x", s.Activity),
			Name:    fmt.Sprintf("rpc %d/%d", s.Interface, s.Proc),
			StartNs: s.StartNs(),
			EndNs:   s.EndNs(),
			Args:    [][2]string{{"seq", fmt.Sprint(s.Seq)}},
		}
		if s.Retries > 0 {
			sp.Args = append(sp.Args, [2]string{"retries", fmt.Sprint(s.Retries)})
		}
		out = append(out, sp)
	}
	return out
}

// serveSpans handles /debug/rpc/trace/spans: the assembled span set as
// JSON, or (?format=perfetto) a ready-to-load Perfetto trace document.
func serveSpans(w http.ResponseWriter, r *http.Request) {
	spans := spansSnapshot()
	if r.URL.Query().Get("format") == "perfetto" {
		b := simtrace.NewSpanDoc()
		b.AddSpans(PerfettoSpans("rpc", spans))
		w.Header().Set("Content-Type", "application/json")
		_, _ = b.WriteTo(w)
		return
	}
	writeJSON(w, spans)
}
