package debughttp

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"fireflyrpc/internal/cluster"
)

// clusterReg holds the cluster clients the surface reports on, alongside
// the Conn registry. A cluster.Client's Stats is a lock-free snapshot, so
// scraping it while hedged traffic is in flight costs the callers nothing
// (pinned by TestClusterViewUnderLiveTraffic).
var (
	clusterMu  sync.Mutex
	clusterReg = map[string]*cluster.Client{}
)

// RegisterCluster adds (or replaces) a named cluster client on the debug
// surface: /debug/rpc/cluster and the fireflyrpc_cluster_* metrics.
func RegisterCluster(name string, c *cluster.Client) {
	clusterMu.Lock()
	clusterReg[name] = c
	clusterMu.Unlock()
}

// UnregisterCluster removes a named cluster client.
func UnregisterCluster(name string) {
	clusterMu.Lock()
	delete(clusterReg, name)
	clusterMu.Unlock()
}

func registeredClusters() ([]string, []*cluster.Client) {
	clusterMu.Lock()
	defer clusterMu.Unlock()
	names := make([]string, 0, len(clusterReg))
	for name := range clusterReg {
		names = append(names, name)
	}
	sort.Strings(names)
	cs := make([]*cluster.Client, len(names))
	for i, name := range names {
		cs[i] = clusterReg[name]
	}
	return names, cs
}

// clusterSnapshot is the /debug/rpc/cluster document: every registered
// balancer's logical/issued call counts, hedge outcomes, and per-replica
// pick/win/ejection state with latency quantiles.
func clusterSnapshot() map[string]cluster.Stats {
	names, cs := registeredClusters()
	out := make(map[string]cluster.Stats, len(names))
	for i, name := range names {
		out[name] = cs[i].Stats()
	}
	return out
}

// writeClusterMetrics renders the fireflyrpc_cluster_* families, called
// from writeMetrics.
func writeClusterMetrics(w io.Writer) {
	names, cs := registeredClusters()
	if len(names) == 0 {
		return
	}
	fmt.Fprint(w, "# TYPE fireflyrpc_cluster_calls_total counter\n")
	for i, c := range cs {
		s := c.Stats()
		l := fmt.Sprintf(`cluster="%s"`, promEscape(names[i]))
		fmt.Fprintf(w, "fireflyrpc_cluster_calls_total{%s,kind=\"logical\"} %d\n", l, s.Calls)
		fmt.Fprintf(w, "fireflyrpc_cluster_calls_total{%s,kind=\"issued\"} %d\n", l, s.Issued)
		fmt.Fprintf(w, "fireflyrpc_cluster_calls_total{%s,kind=\"fanout\"} %d\n", l, s.Fanouts)
	}
	fmt.Fprint(w, "# TYPE fireflyrpc_cluster_hedges_total counter\n")
	for i, c := range cs {
		s := c.Stats()
		l := fmt.Sprintf(`cluster="%s"`, promEscape(names[i]))
		fmt.Fprintf(w, "fireflyrpc_cluster_hedges_total{%s,event=\"fired\"} %d\n", l, s.HedgesFired)
		fmt.Fprintf(w, "fireflyrpc_cluster_hedges_total{%s,event=\"won\"} %d\n", l, s.HedgesWon)
		fmt.Fprintf(w, "fireflyrpc_cluster_hedges_total{%s,event=\"cancelled\"} %d\n", l, s.HedgesCancelled)
	}
	fmt.Fprint(w, "# TYPE fireflyrpc_cluster_replica_picks_total counter\n")
	fmt.Fprint(w, "# TYPE fireflyrpc_cluster_replica_ejected gauge\n")
	fmt.Fprint(w, "# TYPE fireflyrpc_cluster_replica_p95_seconds gauge\n")
	for i, c := range cs {
		s := c.Stats()
		for _, r := range s.Replicas {
			l := fmt.Sprintf(`cluster="%s",replica="%s"`, promEscape(names[i]), promEscape(r.Addr))
			fmt.Fprintf(w, "fireflyrpc_cluster_replica_picks_total{%s} %d\n", l, r.Picks)
			fmt.Fprintf(w, "fireflyrpc_cluster_replica_wins_total{%s} %d\n", l, r.Wins)
			fmt.Fprintf(w, "fireflyrpc_cluster_replica_failures_total{%s} %d\n", l, r.Failures)
			fmt.Fprintf(w, "fireflyrpc_cluster_replica_ejections_total{%s} %d\n", l, r.Ejections)
			ej := 0
			if r.Ejected {
				ej = 1
			}
			fmt.Fprintf(w, "fireflyrpc_cluster_replica_ejected{%s} %d\n", l, ej)
			fmt.Fprintf(w, "fireflyrpc_cluster_replica_p95_seconds{%s} %g\n", l, r.P95Us/1e6)
		}
	}
}
