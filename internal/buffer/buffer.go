// Package buffer implements the RPC packet-buffer pool.
//
// The Firefly keeps all RPC packet buffers in memory shared among user
// address spaces and the Nub, permanently mapped into I/O space, so stubs,
// the Ethernet driver, and the interrupt handler all read and write packets
// at the same addresses with no mapping or copying. Buffers are retained in
// call-table entries for possible retransmission, and the receive interrupt
// handler recycles the retained buffer to the controller's receive queue the
// moment a new packet replaces it ("on-the-fly receive buffer replacement").
//
// This package reproduces that scheme for both the simulated and the real
// transports: fixed-capacity buffers, a shared free pool, explicit
// ownership, and hard failure on double-free.
package buffer

import (
	"fmt"
	"sync"
	"sync/atomic"

	"fireflyrpc/internal/wire"
)

// Buf is a packet buffer with capacity for a maximum-size Ethernet frame.
// A Buf is always in exactly one of three places: the free pool, owned by a
// caller, or retained in a call-table entry / controller receive ring.
type Buf struct {
	data [wire.MaxPacketLen]byte
	n    int
	pool *Pool
	free bool // true while in the pool's freelist
}

// Bytes returns the valid portion of the buffer.
func (b *Buf) Bytes() []byte { return b.data[:b.n] }

// Cap returns the full capacity slice, for writers assembling a packet.
func (b *Buf) Cap() []byte { return b.data[:] }

// Len returns the current valid length.
func (b *Buf) Len() int { return b.n }

// SetLen sets the valid length. It panics if n exceeds the frame maximum.
func (b *Buf) SetLen(n int) {
	if n < 0 || n > wire.MaxPacketLen {
		panic(fmt.Sprintf("buffer: SetLen(%d) out of range", n))
	}
	b.n = n
}

// CopyFrom replaces the buffer's contents with p.
func (b *Buf) CopyFrom(p []byte) {
	b.SetLen(len(p))
	copy(b.data[:], p)
}

// Free returns the buffer to its pool. Freeing a buffer twice panics: the
// Firefly scheme depends on unambiguous ownership, and a double-free there
// would corrupt another call's packet.
func (b *Buf) Free() {
	b.pool.put(b)
}

// Pool is a bounded pool of packet buffers. The zero value is not usable;
// construct with NewPool.
//
// Pool is safe for concurrent use: the real UDP transport shares it across
// goroutines. (The simulator is single-threaded by construction, so the lock
// is uncontended there.)
type Pool struct {
	mu    sync.Mutex
	avail *sync.Cond
	free  []*Buf
	total int
	limit int
	inUse int
	gets  int64
	puts  int64
}

// NewPool creates a pool that will allocate at most limit buffers.
// A limit of 0 means unbounded.
func NewPool(limit int) *Pool {
	p := &Pool{limit: limit}
	p.avail = sync.NewCond(&p.mu)
	return p
}

// getLocked implements Get with p.mu held.
func (p *Pool) getLocked() *Buf {
	if n := len(p.free); n > 0 {
		b := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		b.free = false
		b.n = 0
		p.inUse++
		return b
	}
	if p.limit > 0 && p.total >= p.limit {
		return nil
	}
	p.total++
	p.inUse++
	return &Buf{pool: p}
}

// Get takes a buffer from the pool, allocating if none is free and the limit
// permits. It returns nil if the pool is exhausted — callers on the fast path
// treat that as a lost packet, exactly as the Firefly does when the receive
// queue runs dry.
func (p *Pool) Get() *Buf {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.gets++
	return p.getLocked()
}

// GetWait takes a buffer, blocking until one is available. Used by the real
// transport's senders, which prefer to wait rather than drop.
func (p *Pool) GetWait() *Buf {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.gets++
	for {
		if b := p.getLocked(); b != nil {
			return b
		}
		p.avail.Wait()
	}
}

func (p *Pool) put(b *Buf) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if b.free {
		panic("buffer: double free")
	}
	if b.pool != p {
		panic("buffer: freed to wrong pool")
	}
	p.puts++
	p.inUse--
	b.free = true
	p.free = append(p.free, b)
	p.avail.Signal()
}

// ---------------------------------------------------------------------------
// FramePool: the real stack's lock-free packet-buffer pool.
//
// Pool above reproduces the Firefly's bounded, explicitly-owned buffer pool
// for the simulator, where determinism matters more than scalability. The
// real stack's fast path instead needs what §4.2 calls "buffer management
// that avoids allocation" without adding a contended lock, so FramePool
// trades the bounded-ownership discipline for sync.Pool's per-CPU free
// lists: Get never blocks, Release never contends with other CPUs, and a
// forgotten Release degrades into ordinary garbage instead of a leak.
// ---------------------------------------------------------------------------

// Frame is a fixed-capacity packet buffer from a FramePool, sized for a
// maximum Ethernet frame like the Firefly's permanently-mapped buffers.
type Frame struct {
	pool *FramePool
	n    int
	data [wire.MaxPacketLen]byte
}

// Bytes returns the valid portion of the frame.
func (f *Frame) Bytes() []byte { return f.data[:f.n] }

// Cap returns the full capacity slice, for writers assembling a packet.
func (f *Frame) Cap() []byte { return f.data[:] }

// Len returns the current valid length.
func (f *Frame) Len() int { return f.n }

// SetLen sets the valid length. It panics if n exceeds the frame maximum.
func (f *Frame) SetLen(n int) {
	if n < 0 || n > wire.MaxPacketLen {
		panic(fmt.Sprintf("buffer: SetLen(%d) out of range", n))
	}
	f.n = n
}

// CopyFrom replaces the frame's contents with p.
func (f *Frame) CopyFrom(p []byte) {
	f.SetLen(len(p))
	copy(f.data[:], p)
}

// Release returns the frame to its pool for reuse. The frame must not be
// touched afterwards. Dropping a frame without Release is safe (the GC
// reclaims it); Release just keeps the fast path allocation-free.
func (f *Frame) Release() { f.pool.put(f) }

// FramePool is a lock-free pool of packet Frames. The zero value is ready
// to use; it is safe for concurrent use from any number of goroutines.
type FramePool struct {
	p    sync.Pool
	gets atomic.Int64
	puts atomic.Int64
}

// Get returns a frame with length 0. It never blocks and never fails.
func (fp *FramePool) Get() *Frame {
	fp.gets.Add(1)
	if f, ok := fp.p.Get().(*Frame); ok {
		f.n = 0
		return f
	}
	return &Frame{pool: fp}
}

func (fp *FramePool) put(f *Frame) {
	fp.puts.Add(1)
	fp.p.Put(f)
}

// InUse reports how many frames are currently checked out (Gets minus
// Releases). Leak tests assert it returns to zero once a connection has
// quiesced: every sent frame released, every retained call-table frame
// recycled.
func (fp *FramePool) InUse() int64 { return fp.gets.Load() - fp.puts.Load() }

// Stats reports pool counters.
type Stats struct {
	Total int   // buffers ever allocated
	InUse int   // currently checked out
	Free  int   // currently in the freelist
	Gets  int64 // successful + failed Get calls
	Puts  int64 // Free calls
}

// Stats returns a snapshot of the pool's counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return Stats{Total: p.total, InUse: p.inUse, Free: len(p.free), Gets: p.gets, Puts: p.puts}
}
