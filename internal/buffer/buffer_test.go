package buffer

import (
	"sync"
	"testing"
	"testing/quick"
	"time"

	"fireflyrpc/internal/wire"
)

func TestGetAndFree(t *testing.T) {
	p := NewPool(4)
	b := p.Get()
	if b == nil {
		t.Fatal("Get returned nil with capacity available")
	}
	if len(b.Cap()) != wire.MaxPacketLen {
		t.Fatalf("buffer capacity %d, want %d", len(b.Cap()), wire.MaxPacketLen)
	}
	b.SetLen(100)
	if b.Len() != 100 || len(b.Bytes()) != 100 {
		t.Fatal("SetLen/Bytes mismatch")
	}
	b.Free()
	s := p.Stats()
	if s.InUse != 0 || s.Free != 1 || s.Total != 1 {
		t.Fatalf("stats after free: %+v", s)
	}
}

func TestPoolReusesBuffers(t *testing.T) {
	p := NewPool(2)
	a := p.Get()
	a.Free()
	b := p.Get()
	if a != b {
		t.Fatal("pool did not reuse freed buffer")
	}
	if p.Stats().Total != 1 {
		t.Fatalf("total = %d, want 1", p.Stats().Total)
	}
}

func TestPoolExhaustion(t *testing.T) {
	p := NewPool(2)
	a, b := p.Get(), p.Get()
	if a == nil || b == nil {
		t.Fatal("pool refused within limit")
	}
	if c := p.Get(); c != nil {
		t.Fatal("pool exceeded its limit")
	}
	a.Free()
	if c := p.Get(); c == nil {
		t.Fatal("pool refused after a free")
	}
}

func TestUnboundedPool(t *testing.T) {
	p := NewPool(0)
	var bufs []*Buf
	for i := 0; i < 100; i++ {
		b := p.Get()
		if b == nil {
			t.Fatal("unbounded pool returned nil")
		}
		bufs = append(bufs, b)
	}
	for _, b := range bufs {
		b.Free()
	}
	if s := p.Stats(); s.InUse != 0 || s.Free != 100 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestDoubleFreePanics(t *testing.T) {
	p := NewPool(1)
	b := p.Get()
	b.Free()
	defer func() {
		if recover() == nil {
			t.Fatal("double free did not panic")
		}
	}()
	b.Free()
}

func TestFreeToWrongPoolPanics(t *testing.T) {
	p1, p2 := NewPool(1), NewPool(1)
	b := p1.Get()
	defer func() {
		if recover() == nil {
			t.Fatal("wrong-pool free did not panic")
		}
	}()
	p2.put(b)
}

func TestSetLenBounds(t *testing.T) {
	p := NewPool(1)
	b := p.Get()
	defer func() {
		if recover() == nil {
			t.Fatal("oversize SetLen did not panic")
		}
	}()
	b.SetLen(wire.MaxPacketLen + 1)
}

func TestCopyFrom(t *testing.T) {
	p := NewPool(1)
	b := p.Get()
	b.CopyFrom([]byte("hello"))
	if string(b.Bytes()) != "hello" {
		t.Fatalf("Bytes = %q", b.Bytes())
	}
}

func TestGetWaitBlocksUntilFree(t *testing.T) {
	p := NewPool(1)
	b := p.Get()
	got := make(chan *Buf)
	go func() { got <- p.GetWait() }()
	select {
	case <-got:
		t.Fatal("GetWait returned while pool empty")
	case <-time.After(20 * time.Millisecond):
	}
	b.Free()
	select {
	case b2 := <-got:
		if b2 == nil {
			t.Fatal("GetWait returned nil")
		}
	case <-time.After(time.Second):
		t.Fatal("GetWait did not wake after free")
	}
}

func TestConcurrentGetFree(t *testing.T) {
	p := NewPool(8)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				b := p.GetWait()
				b.SetLen(74)
				b.Free()
			}
		}()
	}
	wg.Wait()
	s := p.Stats()
	if s.InUse != 0 {
		t.Fatalf("leaked %d buffers", s.InUse)
	}
	if s.Total > 8 {
		t.Fatalf("allocated %d buffers, limit 8", s.Total)
	}
}

// Property: under any interleaving of gets and frees, the pool's accounting
// holds: total = inUse + free, and inUse never goes negative.
func TestPoolAccountingQuick(t *testing.T) {
	f := func(ops []bool) bool {
		p := NewPool(16)
		var held []*Buf
		for _, get := range ops {
			if get {
				if b := p.Get(); b != nil {
					held = append(held, b)
				}
			} else if len(held) > 0 {
				held[len(held)-1].Free()
				held = held[:len(held)-1]
			}
			s := p.Stats()
			if s.Total != s.InUse+s.Free || s.InUse < 0 || s.Total > 16 {
				return false
			}
			if s.InUse != len(held) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
