package idl

import (
	"strings"
	"testing"
)

const miniIDL = `
DEFINITION MODULE Mini;
VERSION = 3;
PROCEDURE Ping();
PROCEDURE Add(a: INTEGER; b: INTEGER): INTEGER;
PROCEDURE Fill(VAR OUT buf: ARRAY 16 OF CHAR);
END Mini.
`

func TestParseBasics(t *testing.T) {
	m, err := Parse(miniIDL)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "Mini" || m.Version != 3 {
		t.Fatalf("module %s v%d", m.Name, m.Version)
	}
	if len(m.Procs) != 3 {
		t.Fatalf("%d procs", len(m.Procs))
	}
	if m.Procs[0].ID != 1 || m.Procs[2].ID != 3 {
		t.Fatal("proc IDs not sequential")
	}
	add := m.Procs[1]
	if len(add.Params) != 2 || add.Return == nil || add.Return.Kind != KInteger {
		t.Fatalf("Add parsed wrong: %+v", add)
	}
	fill := m.Procs[2]
	if fill.Params[0].Mode != VarOut || fill.Params[0].Type.Kind != KFixedArray || fill.Params[0].Type.N != 16 {
		t.Fatalf("Fill parsed wrong: %+v", fill.Params[0])
	}
}

func TestParseAllTypes(t *testing.T) {
	src := `
DEFINITION MODULE Types;
PROCEDURE F(a: INTEGER; b: CARDINAL; c: LONGINT; e: LONGCARD;
            f: BOOLEAN; g: CHAR; h: REAL; i: Text;
            j: ARRAY 8 OF CHAR; k: ARRAY OF CHAR);
END Types.
`
	m, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	kinds := []Kind{KInteger, KCardinal, KLongint, KLongcard, KBoolean, KChar, KReal, KText, KFixedArray, KVarArray}
	for i, k := range kinds {
		if m.Procs[0].Params[i].Type.Kind != k {
			t.Errorf("param %d kind %v, want %v", i, m.Procs[0].Params[i].Type.Kind, k)
		}
	}
}

func TestParseIdentifierLists(t *testing.T) {
	m, err := Parse(`DEFINITION MODULE L; PROCEDURE F(a, b, c: INTEGER); END L.`)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Procs[0].Params) != 3 {
		t.Fatalf("%d params, want 3", len(m.Procs[0].Params))
	}
}

func TestParseVarModes(t *testing.T) {
	m, err := Parse(`DEFINITION MODULE V;
PROCEDURE F(VAR a: INTEGER; VAR IN b: INTEGER; VAR OUT c: INTEGER; VAR INOUT e: INTEGER);
END V.`)
	if err != nil {
		t.Fatal(err)
	}
	want := []Mode{VarInOut, VarIn, VarOut, VarInOut}
	for i, w := range want {
		if m.Procs[0].Params[i].Mode != w {
			t.Errorf("param %d mode %v, want %v", i, m.Procs[0].Params[i].Mode, w)
		}
	}
}

func TestNestedComments(t *testing.T) {
	src := `(* outer (* inner *) still comment *) DEFINITION MODULE C; PROCEDURE P(); END C.`
	if _, err := Parse(src); err != nil {
		t.Fatal(err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src, wantSub string
	}{
		{"MODULE X;", "expected"},
		{"DEFINITION MODULE X; END X.", "no procedures"},
		{"DEFINITION MODULE X; PROCEDURE P(); END Y.", "does not match"},
		{"DEFINITION MODULE X; PROCEDURE P(); PROCEDURE P(); END X.", "duplicate procedure"},
		{"DEFINITION MODULE X; PROCEDURE P(a: INTEGER; a: INTEGER); END X.", "duplicate parameter"},
		{"DEFINITION MODULE X; PROCEDURE P(a: FLOAT); END X.", "unknown type"},
		{"DEFINITION MODULE X; PROCEDURE P(VAR OUT t: Text); END X.", "immutable"},
		{"DEFINITION MODULE X; PROCEDURE P(err: INTEGER); END X.", "reserved"},
		{"DEFINITION MODULE X; PROCEDURE P(a: ARRAY 0 OF CHAR); END X.", "bad array size"},
		{"DEFINITION MODULE X; PROCEDURE P(); (* unclosed", "unterminated comment"},
		{"DEFINITION MODULE X; PROCEDURE P(); END X.~", "unexpected character"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("no error for %q", c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("error %q does not mention %q", err, c.wantSub)
		}
	}
}

func TestErrorsCarryLineNumbers(t *testing.T) {
	src := "DEFINITION MODULE X;\nPROCEDURE P();\nPROCEDURE P();\nEND X."
	_, err := Parse(src)
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("err = %v, want line 3", err)
	}
}

func TestGenerateCompilesCleanly(t *testing.T) {
	m, err := Parse(miniIDL)
	if err != nil {
		t.Fatal(err)
	}
	code, err := Generate(m, "mini")
	if err != nil {
		t.Fatal(err)
	}
	out := string(code)
	for _, want := range []string{
		"package mini",
		"MiniName",
		"uint32(3)",
		"MiniProcAdd",
		"func (cl *MiniClient) Add(a int32, b int32) (int32, error)",
		"type MiniServer interface",
		"func ExportMini(impl MiniServer) *core.Interface",
		"core.CheckLen(\"buf\", len(buf), 16)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("generated code missing %q", want)
		}
	}
	if strings.Contains(out, "\t\t\t\t\t") {
		t.Error("suspicious deep indentation; formatter not applied?")
	}
}

func TestTypeStringAndSizes(t *testing.T) {
	if (Type{Kind: KFixedArray, N: 7}).String() != "ARRAY 7 OF CHAR" {
		t.Fatal("fixed array string")
	}
	if n, ok := (Type{Kind: KReal}).FixedSize(); !ok || n != 8 {
		t.Fatal("REAL size")
	}
	if _, ok := (Type{Kind: KVarArray}).FixedSize(); ok {
		t.Fatal("var array must not have fixed size")
	}
	if !(Type{Kind: KChar}).Scalar() || (Type{Kind: KText}).Scalar() {
		t.Fatal("Scalar classification")
	}
}

func TestGenerateAllModesAndTypes(t *testing.T) {
	src := `
DEFINITION MODULE Every;
PROCEDURE S(a: INTEGER; b: CARDINAL; c: LONGINT; l: LONGCARD;
            f: BOOLEAN; g: CHAR; h: REAL): LONGINT;
PROCEDURE O(VAR OUT a: INTEGER; VAR OUT b: CARDINAL; VAR OUT c: LONGINT;
            VAR OUT l: LONGCARD; VAR OUT f: BOOLEAN; VAR OUT g: CHAR;
            VAR OUT h: REAL);
PROCEDURE IO(VAR x: INTEGER; VAR INOUT buf: ARRAY 16 OF CHAR;
             VAR INOUT v: ARRAY OF CHAR);
PROCEDURE A(VAR IN src2: ARRAY 32 OF CHAR; VAR OUT dst: ARRAY 32 OF CHAR;
            data: ARRAY OF CHAR; VAR OUT out: ARRAY OF CHAR);
PROCEDURE T(name: Text): Text;
PROCEDURE R(x: REAL; y: REAL): REAL;
END Every.
`
	m, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	code, err := Generate(m, "every")
	if err != nil {
		t.Fatal(err)
	}
	out := string(code)
	for _, want := range []string{
		"_e.PutInt32", "_e.PutUint32", "_e.PutInt64", "_e.PutUint64",
		"_e.PutBool", "_e.PutByte", "_e.PutFloat64", "_e.PutText",
		"_e.PutFixedBytes", "_e.PutVarBytes",
		"_d.Int32()", "_d.Uint32()", "_d.Int64()", "_d.Uint64()",
		"_d.Bool()", "_d.Byte()", "_d.Float64()", "_d.GetText()",
		"_d.AliasFixed(32)", "_d.AliasVarBytes()",
		"marshal.TextWireSize",
		"x *int32",    // VAR INOUT scalar is a pointer
		"out *[]byte", // VAR OUT var array is a slice pointer
	} {
		if !strings.Contains(out, want) {
			t.Errorf("generated code missing %q", want)
		}
	}
}

func TestGenerateVersionDefaultsToOne(t *testing.T) {
	m, err := Parse("DEFINITION MODULE D; PROCEDURE P(); END D.")
	if err != nil {
		t.Fatal(err)
	}
	if m.Version != 1 {
		t.Fatalf("version = %d, want 1", m.Version)
	}
	code, err := Generate(m, "d")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(code), "uint32(1)") {
		t.Fatal("default version not emitted")
	}
}

func TestModeHelpers(t *testing.T) {
	if !VarIn.InCall() || VarIn.InResult() {
		t.Fatal("VAR IN travels only in the call packet")
	}
	if VarOut.InCall() || !VarOut.InResult() {
		t.Fatal("VAR OUT travels only in the result packet")
	}
	if !VarInOut.InCall() || !VarInOut.InResult() {
		t.Fatal("VAR INOUT travels both ways")
	}
	if ByValue.String() != "" || VarIn.String() != "VAR IN" {
		t.Fatal("mode strings wrong")
	}
}
