// Package idl implements the stub compiler: it parses a Modula-2-flavoured
// DEFINITION MODULE describing a remote interface and generates Go caller
// and server stubs over the core runtime — the analogue of the Firefly's
// automatic stub generator, whose output is "direct assignment statements"
// rather than an interpreter (§2.2).
//
// The accepted language:
//
//	DEFINITION MODULE Test;
//	VERSION = 1;
//	PROCEDURE Null();
//	PROCEDURE MaxResult(VAR OUT buffer: ARRAY 1440 OF CHAR);
//	PROCEDURE MaxArg(VAR IN buffer: ARRAY 1440 OF CHAR);
//	PROCEDURE Add(a: INTEGER; b: INTEGER): INTEGER;
//	PROCEDURE Greet(name: Text): Text;
//	END Test.
//
// Types: INTEGER, CARDINAL, LONGINT, LONGCARD, BOOLEAN, CHAR, REAL, Text,
// ARRAY n OF CHAR (fixed), ARRAY OF CHAR (variable length). Parameters are
// by value unless marked VAR IN (caller→server only), VAR OUT
// (server→caller only), or VAR / VAR INOUT (both ways), with exactly the
// paper's marshalling semantics for each mode.
package idl

import "fmt"

// Kind enumerates the wire types.
type Kind int

const (
	KInteger    Kind = iota // 4-byte signed
	KCardinal               // 4-byte unsigned
	KLongint                // 8-byte signed
	KLongcard               // 8-byte unsigned
	KBoolean                // 1 byte
	KChar                   // 1 byte
	KReal                   // 8-byte IEEE-754
	KText                   // Text.T reference
	KFixedArray             // ARRAY n OF CHAR
	KVarArray               // ARRAY OF CHAR
)

// Type is a parameter or return type.
type Type struct {
	Kind Kind
	N    int // fixed-array length
}

// String renders the type in IDL syntax.
func (t Type) String() string {
	switch t.Kind {
	case KInteger:
		return "INTEGER"
	case KCardinal:
		return "CARDINAL"
	case KLongint:
		return "LONGINT"
	case KLongcard:
		return "LONGCARD"
	case KBoolean:
		return "BOOLEAN"
	case KChar:
		return "CHAR"
	case KReal:
		return "REAL"
	case KText:
		return "Text"
	case KFixedArray:
		return fmt.Sprintf("ARRAY %d OF CHAR", t.N)
	case KVarArray:
		return "ARRAY OF CHAR"
	default:
		return fmt.Sprintf("type(%d)", int(t.Kind))
	}
}

// Scalar reports whether the type is a fixed-size scalar.
func (t Type) Scalar() bool {
	switch t.Kind {
	case KInteger, KCardinal, KLongint, KLongcard, KBoolean, KChar, KReal:
		return true
	}
	return false
}

// FixedSize returns the wire size for types whose size is static, and ok.
func (t Type) FixedSize() (int, bool) {
	switch t.Kind {
	case KBoolean, KChar:
		return 1, true
	case KInteger, KCardinal:
		return 4, true
	case KLongint, KLongcard, KReal:
		return 8, true
	case KFixedArray:
		return t.N, true
	}
	return 0, false
}

// Mode is a parameter passing mode.
type Mode int

const (
	ByValue Mode = iota
	VarIn
	VarOut
	VarInOut
)

// String renders the mode in IDL syntax.
func (m Mode) String() string {
	switch m {
	case VarIn:
		return "VAR IN"
	case VarOut:
		return "VAR OUT"
	case VarInOut:
		return "VAR INOUT"
	default:
		return ""
	}
}

// InCall reports whether the parameter travels in the call packet.
func (m Mode) InCall() bool { return m == ByValue || m == VarIn || m == VarInOut }

// InResult reports whether the parameter travels in the result packet.
func (m Mode) InResult() bool { return m == VarOut || m == VarInOut }

// Param is one procedure parameter.
type Param struct {
	Name string
	Mode Mode
	Type Type
}

// Proc is one procedure; ID is its 1-based wire identifier.
type Proc struct {
	Name   string
	ID     uint16
	Params []Param
	Return *Type // nil for proper procedures
	Line   int
}

// Module is a parsed interface definition.
type Module struct {
	Name    string
	Version uint32
	Procs   []*Proc
}

// Error is a parse or semantic error with position.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("idl: line %d: %s", e.Line, e.Msg) }

func errf(line int, format string, args ...any) error {
	return &Error{Line: line, Msg: fmt.Sprintf(format, args...)}
}
