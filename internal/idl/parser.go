package idl

import "strconv"

// Parse compiles IDL source into a checked Module.
func Parse(src string) (*Module, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	m, err := p.module()
	if err != nil {
		return nil, err
	}
	if err := check(m); err != nil {
		return nil, err
	}
	return m, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) expectIdent(words ...string) (token, error) {
	t := p.next()
	if t.kind != tIdent {
		return t, errf(t.line, "expected identifier, got %s", t)
	}
	if len(words) > 0 {
		for _, w := range words {
			if t.text == w {
				return t, nil
			}
		}
		return t, errf(t.line, "expected %v, got %s", words, t)
	}
	return t, nil
}

func (p *parser) expectPunct(s string) error {
	t := p.next()
	if t.kind != tPunct || t.text != s {
		return errf(t.line, "expected %q, got %s", s, t)
	}
	return nil
}

func (p *parser) module() (*Module, error) {
	if _, err := p.expectIdent("DEFINITION"); err != nil {
		return nil, err
	}
	if _, err := p.expectIdent("MODULE"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	m := &Module{Name: name.text, Version: 1}

	for {
		t := p.cur()
		if t.kind == tIdent && t.text == "END" {
			break
		}
		switch {
		case t.kind == tIdent && t.text == "VERSION":
			p.next()
			if err := p.expectPunct("="); err != nil {
				return nil, err
			}
			num := p.next()
			if num.kind != tNumber {
				return nil, errf(num.line, "expected version number, got %s", num)
			}
			v, _ := strconv.ParseUint(num.text, 10, 32)
			m.Version = uint32(v)
			if err := p.expectPunct(";"); err != nil {
				return nil, err
			}
		case t.kind == tIdent && t.text == "PROCEDURE":
			proc, err := p.procedure()
			if err != nil {
				return nil, err
			}
			proc.ID = uint16(len(m.Procs) + 1)
			m.Procs = append(m.Procs, proc)
		default:
			return nil, errf(t.line, "expected PROCEDURE, VERSION, or END, got %s", t)
		}
	}
	p.next() // END
	endName, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if endName.text != m.Name {
		return nil, errf(endName.line, "END %s does not match MODULE %s", endName.text, m.Name)
	}
	if err := p.expectPunct("."); err != nil {
		return nil, err
	}
	return m, nil
}

func (p *parser) procedure() (*Proc, error) {
	start := p.next() // PROCEDURE
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	proc := &Proc{Name: name.text, Line: start.line}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	if !(p.cur().kind == tPunct && p.cur().text == ")") {
		for {
			params, err := p.paramGroup()
			if err != nil {
				return nil, err
			}
			proc.Params = append(proc.Params, params...)
			if p.cur().kind == tPunct && p.cur().text == ";" {
				p.next()
				continue
			}
			break
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	if p.cur().kind == tPunct && p.cur().text == ":" {
		p.next()
		typ, err := p.typeSpec()
		if err != nil {
			return nil, err
		}
		proc.Return = &typ
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	return proc, nil
}

// paramGroup parses "[VAR [IN|OUT|INOUT]] a, b: TYPE".
func (p *parser) paramGroup() ([]Param, error) {
	mode := ByValue
	if p.cur().kind == tIdent && p.cur().text == "VAR" {
		p.next()
		mode = VarInOut
		if p.cur().kind == tIdent {
			switch p.cur().text {
			case "IN":
				p.next()
				mode = VarIn
			case "OUT":
				p.next()
				mode = VarOut
			case "INOUT":
				p.next()
				mode = VarInOut
			}
		}
	}
	var names []token
	for {
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		names = append(names, name)
		if p.cur().kind == tPunct && p.cur().text == "," {
			p.next()
			continue
		}
		break
	}
	if err := p.expectPunct(":"); err != nil {
		return nil, err
	}
	typ, err := p.typeSpec()
	if err != nil {
		return nil, err
	}
	var out []Param
	for _, n := range names {
		out = append(out, Param{Name: n.text, Mode: mode, Type: typ})
	}
	return out, nil
}

func (p *parser) typeSpec() (Type, error) {
	t := p.next()
	if t.kind != tIdent {
		return Type{}, errf(t.line, "expected type, got %s", t)
	}
	switch t.text {
	case "INTEGER":
		return Type{Kind: KInteger}, nil
	case "CARDINAL":
		return Type{Kind: KCardinal}, nil
	case "LONGINT":
		return Type{Kind: KLongint}, nil
	case "LONGCARD":
		return Type{Kind: KLongcard}, nil
	case "BOOLEAN":
		return Type{Kind: KBoolean}, nil
	case "CHAR":
		return Type{Kind: KChar}, nil
	case "REAL":
		return Type{Kind: KReal}, nil
	case "Text":
		return Type{Kind: KText}, nil
	case "ARRAY":
		if p.cur().kind == tNumber {
			num := p.next()
			n, err := strconv.Atoi(num.text)
			if err != nil || n <= 0 {
				return Type{}, errf(num.line, "bad array size %q", num.text)
			}
			if _, err := p.expectIdent("OF"); err != nil {
				return Type{}, err
			}
			if _, err := p.expectIdent("CHAR"); err != nil {
				return Type{}, err
			}
			return Type{Kind: KFixedArray, N: n}, nil
		}
		if _, err := p.expectIdent("OF"); err != nil {
			return Type{}, err
		}
		if _, err := p.expectIdent("CHAR"); err != nil {
			return Type{}, err
		}
		return Type{Kind: KVarArray}, nil
	default:
		return Type{}, errf(t.line, "unknown type %q", t.text)
	}
}

// check enforces semantic rules.
func check(m *Module) error {
	if len(m.Procs) == 0 {
		return errf(1, "module %s declares no procedures", m.Name)
	}
	seen := map[string]bool{}
	for _, proc := range m.Procs {
		if seen[proc.Name] {
			return errf(proc.Line, "duplicate procedure %s", proc.Name)
		}
		seen[proc.Name] = true
		pnames := map[string]bool{}
		for _, param := range proc.Params {
			if pnames[param.Name] {
				return errf(proc.Line, "%s: duplicate parameter %s", proc.Name, param.Name)
			}
			pnames[param.Name] = true
			switch param.Name {
			case "cl", "err", "ret0", "impl", "iface", "_e", "_d":
				return errf(proc.Line, "%s: parameter name %q is reserved by the stub generator", proc.Name, param.Name)
			}
			if param.Mode == VarOut && param.Type.Kind == KText {
				return errf(proc.Line, "%s: Text cannot be VAR OUT (immutable); return it instead", proc.Name)
			}
		}
		if proc.Return != nil && proc.Return.Kind == KFixedArray {
			return errf(proc.Line, "%s: use a VAR OUT array parameter instead of an array return", proc.Name)
		}
	}
	return nil
}
