package idl

import (
	"fmt"
	"strings"
	"unicode"
)

type tokKind int

const (
	tEOF tokKind = iota
	tIdent
	tNumber
	tPunct // ; : , . ( ) =
)

type token struct {
	kind tokKind
	text string
	line int
}

func (t token) String() string {
	switch t.kind {
	case tEOF:
		return "end of input"
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// lex tokenizes src, handling nested (* ... *) comments.
func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '(' && i+1 < n && src[i+1] == '*':
			depth := 1
			i += 2
			for i < n && depth > 0 {
				switch {
				case src[i] == '\n':
					line++
					i++
				case src[i] == '(' && i+1 < n && src[i+1] == '*':
					depth++
					i += 2
				case src[i] == '*' && i+1 < n && src[i+1] == ')':
					depth--
					i += 2
				default:
					i++
				}
			}
			if depth > 0 {
				return nil, errf(line, "unterminated comment")
			}
		case strings.ContainsRune(";:,.()=", rune(c)):
			toks = append(toks, token{tPunct, string(c), line})
			i++
		case unicode.IsDigit(rune(c)):
			j := i
			for j < n && unicode.IsDigit(rune(src[j])) {
				j++
			}
			toks = append(toks, token{tNumber, src[i:j], line})
			i = j
		case unicode.IsLetter(rune(c)) || c == '_':
			j := i
			for j < n && (unicode.IsLetter(rune(src[j])) || unicode.IsDigit(rune(src[j])) || src[j] == '_') {
				j++
			}
			toks = append(toks, token{tIdent, src[i:j], line})
			i = j
		default:
			return nil, errf(line, "unexpected character %q", c)
		}
	}
	toks = append(toks, token{tEOF, "", line})
	return toks, nil
}
