package cluster

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"fireflyrpc/internal/core"
	"fireflyrpc/internal/marshal"
	"fireflyrpc/internal/overload"
	"fireflyrpc/internal/proto"
	"fireflyrpc/internal/transport"
)

// echoProc is the one procedure every test replica serves: int32 in,
// int32+1 out, with a per-replica configurable delay and failure switch.
const echoProc = 1

type testReplica struct {
	name  string
	node  *core.Node
	delay time.Duration
	fail  atomic.Bool
	block chan struct{} // when non-nil, the handler waits for it
	calls atomic.Int64
}

// replicaWorld builds n replicas of the Echo service on one exchange plus
// a caller node, returning everything a cluster.Client needs.
func replicaWorld(t *testing.T, n int, cfg proto.Config) (reps []*testReplica, caller *core.Node, addrs []string) {
	reps, caller, addrs, _ = replicaWorldEx(t, n, cfg)
	return reps, caller, addrs
}

func replicaWorldEx(t *testing.T, n int, cfg proto.Config) (reps []*testReplica, caller *core.Node, addrs []string, ex *transport.Exchange) {
	t.Helper()
	ex = transport.NewExchange()
	for i := 0; i < n; i++ {
		name := string(rune('a' + i))
		r := &testReplica{name: name}
		r.node = core.NewNode(ex.Port(name), cfg)
		r.node.Export(core.NewInterface("Echo", 1).
			Proc(echoProc, func(_ transport.Addr, d *marshal.Dec) ([]byte, error) {
				v := d.Int32()
				if err := d.Err(); err != nil {
					return nil, err
				}
				r.calls.Add(1)
				if r.block != nil {
					<-r.block
				}
				if r.delay > 0 {
					time.Sleep(r.delay)
				}
				if r.fail.Load() {
					return nil, errors.New("injected failure")
				}
				return core.Reply(4, func(e *marshal.Enc) { e.PutInt32(v + 1) })
			}))
		reps = append(reps, r)
		addrs = append(addrs, name)
	}
	caller = core.NewNode(ex.Port("caller"), proto.Config{
		RetransInterval: 20 * time.Millisecond, MaxRetries: 8, Workers: 4,
	})
	t.Cleanup(func() {
		caller.Close()
		for _, r := range reps {
			r.node.Close()
		}
	})
	return reps, caller, addrs, ex
}

func memParse(s string) (transport.Addr, error) { return transport.AddrOf(s), nil }

func newTestClient(t *testing.T, caller *core.Node, addrs []string, hedge HedgeConfig) *Client {
	t.Helper()
	c, err := New(context.Background(), Config{
		Node:      caller,
		Resolver:  Static(addrs),
		ParseAddr: memParse,
		Iface:     "Echo",
		Version:   1,
		Hedge:     hedge,
		Seed:      42,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// echo drives one logical call and checks the reply.
func echo(t *testing.T, c *Client, ctx context.Context, v int32) error {
	t.Helper()
	var out int32
	err := c.Call(ctx, echoProc, 4,
		func(e *marshal.Enc) { e.PutInt32(v) },
		func(d *marshal.Dec) { out = d.Int32() })
	if err == nil && out != v+1 {
		t.Fatalf("echo(%d) = %d", v, out)
	}
	return err
}

func TestP2CAvoidsSlowReplica(t *testing.T) {
	cfg := proto.Config{RetransInterval: 50 * time.Millisecond, MaxRetries: 8, Workers: 4}
	reps, caller, addrs := replicaWorld(t, 3, cfg)
	reps[0].delay = 2 * time.Millisecond // "a" is the slow outlier

	c := newTestClient(t, caller, addrs, HedgeConfig{})
	const calls = 200
	for i := 0; i < calls; i++ {
		if err := echo(t, c, context.Background(), int32(i)); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	s := c.Stats()
	var slow, fastMin int64 = 0, 1 << 62
	for _, r := range s.Replicas {
		if r.Addr == "a" {
			slow = r.Picks
		} else if r.Picks < fastMin {
			fastMin = r.Picks
		}
	}
	// The slow replica gets its histogram-warmup share and little more;
	// after warmup it loses every power-of-two-choices comparison.
	if slow >= calls/3 {
		t.Fatalf("slow replica picked %d/%d times; P2C should shun it", slow, calls)
	}
	if fastMin <= slow {
		t.Fatalf("a fast replica (%d picks) drew less traffic than the slow one (%d)", fastMin, slow)
	}
	if s.Calls != calls || s.Issued != calls {
		t.Fatalf("stats: calls=%d issued=%d, want %d each (unhedged)", s.Calls, s.Issued, calls)
	}
}

func TestEjectionAfterConsecutiveFailures(t *testing.T) {
	cfg := proto.Config{RetransInterval: 50 * time.Millisecond, MaxRetries: 8, Workers: 4}
	reps, caller, addrs := replicaWorld(t, 2, cfg)
	reps[1].fail.Store(true) // "b" rejects every call

	c, err := New(context.Background(), Config{
		Node: caller, Resolver: Static(addrs), ParseAddr: memParse,
		Iface: "Echo", Version: 1,
		EjectAfter: 2, EjectFor: time.Minute, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	failures := 0
	for i := 0; i < 40; i++ {
		if err := echo(t, c, context.Background(), int32(i)); err != nil {
			failures++
		}
	}
	// The bad replica can fail at most EjectAfter calls before ejection
	// parks it for the rest of the test (EjectFor ≫ test duration).
	if failures > 2 {
		t.Fatalf("%d calls failed; ejection should have capped this at 2", failures)
	}
	s := c.Stats()
	for _, r := range s.Replicas {
		if r.Addr == "b" {
			if r.Ejections < 1 || !r.Ejected {
				t.Fatalf("bad replica not ejected: %+v", r)
			}
		}
	}
	// With the bad replica ejected, the tail of the run must be clean.
	for i := 0; i < 20; i++ {
		if err := echo(t, c, context.Background(), int32(i)); err != nil {
			t.Fatalf("call after ejection failed: %v", err)
		}
	}
}

// TestHedgedCancelReachesLoser is the acceptance test for cross-server
// cancellation: on a clean network, the losing server of a hedged call
// must observe the wire-level cancel notice for ≥90% of hedged calls.
func TestHedgedCancelReachesLoser(t *testing.T) {
	cfg := proto.Config{RetransInterval: 50 * time.Millisecond, MaxRetries: 8, Workers: 4}
	reps, caller, addrs := replicaWorld(t, 3, cfg)
	for _, r := range reps {
		// Service time far above the hedge delay: when the primary finishes
		// the backup is reliably still mid-service, so the loser's cancel
		// is a real cross-server abort, not a no-op on a finished call.
		r.delay = 15 * time.Millisecond
	}
	c := newTestClient(t, caller, addrs, HedgeConfig{
		Enabled: true,
		After:   5 * time.Millisecond, // every call hedges, a third of the way in
	})
	const calls = 40
	for i := 0; i < calls; i++ {
		if err := echo(t, c, context.Background(), int32(i)); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	s := c.Stats()
	if s.HedgesFired != calls {
		t.Fatalf("hedges fired = %d, want %d", s.HedgesFired, calls)
	}
	if s.HedgesCancelled != calls {
		t.Fatalf("hedges cancelled = %d, want %d", s.HedgesCancelled, calls)
	}
	if s.Issued != 2*calls {
		t.Fatalf("issued = %d, want %d", s.Issued, 2*calls)
	}
	// The loser's cancel is one best-effort packet; give the last few a
	// moment to land, then require ≥90% delivery.
	want := (s.HedgesCancelled*9 + 9) / 10
	deadline := time.Now().Add(2 * time.Second)
	var cancels int64
	for time.Now().Before(deadline) {
		cancels = 0
		for _, r := range reps {
			cancels += r.node.Conn().Stats().Cancels
		}
		if cancels >= want {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if cancels < want {
		t.Fatalf("servers saw %d cancel notices for %d hedged calls; want ≥%d",
			cancels, s.HedgesCancelled, want)
	}
}

// TestHedgeRescuesSlowPrimary checks the latency story end to end: when
// the picked primary stalls, the backup answers and wins.
func TestHedgeRescuesSlowPrimary(t *testing.T) {
	cfg := proto.Config{RetransInterval: 100 * time.Millisecond, MaxRetries: 8, Workers: 4}
	reps, caller, addrs := replicaWorld(t, 2, cfg)
	reps[0].delay = 20 * time.Millisecond // "a" stalls well past the hedge delay

	c := newTestClient(t, caller, addrs, HedgeConfig{
		Enabled: true,
		After:   500 * time.Microsecond,
	})
	slowCallsRescued := 0
	for i := 0; i < 30; i++ {
		start := time.Now()
		if err := echo(t, c, context.Background(), int32(i)); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if d := time.Since(start); d < reps[0].delay {
			slowCallsRescued++
		}
	}
	s := c.Stats()
	if s.HedgesWon == 0 {
		t.Fatalf("no hedge ever won despite a 40×-slower primary: %+v", s)
	}
	if slowCallsRescued == 0 {
		t.Fatal("every call paid the slow replica's full delay; hedging bought nothing")
	}
}

// TestBudgetPropagatesThroughCluster proves the caller's ctx deadline
// rides the cluster path onto the wire as a FlagBudget hint: a replica
// running deadline admission sheds the cluster call — the only one whose
// budget it knows to be tight — when its queue is full of long-budget
// work.
func TestBudgetPropagatesThroughCluster(t *testing.T) {
	cfg := proto.Config{
		RetransInterval: 20 * time.Millisecond, MaxRetries: 8, Workers: 1,
		Admission: overload.Config{Policy: overload.Deadline, Capacity: 2},
	}
	reps, caller, addrs, ex := replicaWorldEx(t, 1, cfg)
	reps[0].block = make(chan struct{})

	// Fill the single worker plus the whole queue with generous-budget
	// calls from a dedicated node whose retransmission interval outlasts
	// the test: a queued call's retransmission arrives as a dup, gets
	// re-offered, and would perturb the admission queue mid-experiment.
	fillerNode := core.NewNode(ex.Port("filler"), proto.Config{
		RetransInterval: 5 * time.Second, MaxRetries: 3, Workers: 1,
	})
	defer fillerNode.Close()
	filler := fillerNode.Bind(transport.AddrOf(addrs[0]), "Echo", 1).NewClient()
	fctx, fcancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer fcancel()
	// Offers are staggered: if all three landed at once, the third would
	// find the queue full before the worker took the first and shed a
	// filler instead of leaving the queue full for the experiment.
	var pendings []*core.Pending
	for i := 0; i < 3; i++ {
		p, err := filler.Go(fctx, echoProc, 4, func(e *marshal.Enc) { e.PutInt32(1) })
		if err != nil {
			t.Fatal(err)
		}
		pendings = append(pendings, p)
		waitUntil := time.Now().Add(2 * time.Second)
		for {
			// One filler executing (Served), then the queue fills behind it.
			s, ok := reps[0].node.Conn().AdmissionStats()
			if ok && s.Served >= 1 && s.Depth >= i {
				break
			}
			if time.Now().After(waitUntil) {
				t.Fatalf("filler %d never settled: %+v", i, s)
			}
			time.Sleep(time.Millisecond)
		}
	}

	// A cluster call with a tight deadline arrives at the full queue. The
	// deadline policy sheds whichever request has the least remaining
	// budget — this one, but only because the budget actually crossed the
	// wire. (Had the hint been dropped, the call would read as
	// budget-unknown, a queued filler would be evicted instead, and this
	// call would block until the handler is released.)
	c := newTestClient(t, caller, addrs, HedgeConfig{})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	err := echo(t, c, ctx, 9)
	if !errors.Is(err, proto.ErrOverloaded) {
		t.Fatalf("cluster call got %v, want ErrOverloaded via deadline admission", err)
	}
	if s, ok := reps[0].node.Conn().AdmissionStats(); !ok || s.ShedCapacity < 1 {
		t.Fatalf("admission stats = %+v ok=%v, want a capacity shed", s, ok)
	}

	close(reps[0].block)
	for _, p := range pendings {
		if err := p.Await(fctx, nil); err != nil {
			t.Fatalf("filler call failed after release: %v", err)
		}
	}
}

func TestFanoutQuorumAndStragglerCancel(t *testing.T) {
	cfg := proto.Config{RetransInterval: 50 * time.Millisecond, MaxRetries: 8, Workers: 4}
	reps, caller, addrs := replicaWorld(t, 3, cfg)
	reps[2].block = make(chan struct{}) // "c" hangs mid-call

	c := newTestClient(t, caller, addrs, HedgeConfig{})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	var acked atomic.Int64
	res, err := c.Fanout(ctx, echoProc, 4,
		func(e *marshal.Enc) { e.PutInt32(5) },
		func(addr string, d *marshal.Dec) error {
			if v := d.Int32(); v != 6 {
				t.Errorf("replica %s replied %d", addr, v)
			}
			acked.Add(1)
			return nil
		}, 2)
	if err != nil {
		t.Fatalf("fanout: %v", err)
	}
	if res.Acks != 2 || acked.Load() != 2 {
		t.Fatalf("acks = %d (decoded %d), want 2", res.Acks, acked.Load())
	}
	// The straggler must be told to stop: its server sees a cancel notice.
	deadline := time.Now().Add(2 * time.Second)
	for reps[2].node.Conn().Stats().Cancels == 0 {
		if time.Now().After(deadline) {
			t.Fatal("straggler replica never saw the cancel notice")
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(reps[2].block)
}

func TestFanoutNoQuorum(t *testing.T) {
	cfg := proto.Config{RetransInterval: 50 * time.Millisecond, MaxRetries: 8, Workers: 4}
	reps, caller, addrs := replicaWorld(t, 3, cfg)
	reps[1].fail.Store(true)
	reps[2].fail.Store(true)

	c := newTestClient(t, caller, addrs, HedgeConfig{})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	res, err := c.Fanout(ctx, echoProc, 4,
		func(e *marshal.Enc) { e.PutInt32(5) }, nil, 2)
	if !errors.Is(err, ErrNoQuorum) {
		t.Fatalf("err = %v, want ErrNoQuorum", err)
	}
	if res.Acks != 1 {
		t.Fatalf("acks = %d, want 1", res.Acks)
	}
}

func TestStaticResolverRefreshKeepsState(t *testing.T) {
	cfg := proto.Config{RetransInterval: 50 * time.Millisecond, MaxRetries: 8, Workers: 4}
	_, caller, addrs := replicaWorld(t, 3, cfg)
	c := newTestClient(t, caller, addrs, HedgeConfig{})
	for i := 0; i < 10; i++ {
		if err := echo(t, c, context.Background(), int32(i)); err != nil {
			t.Fatal(err)
		}
	}
	before := c.Stats()
	// A re-resolve to the same set must keep every replica's accumulated
	// histogram and counters (same pointers, cheap same-set path).
	if _, err := c.resolve(context.Background()); err != nil {
		t.Fatal(err)
	}
	after := c.Stats()
	var nb, na int64
	for i := range before.Replicas {
		nb += before.Replicas[i].N
		na += after.Replicas[i].N
	}
	if na != nb || nb == 0 {
		t.Fatalf("resolve dropped histogram state: before n=%d after n=%d", nb, na)
	}
}
