// Package cluster is the replica-set layer above the packet-exchange
// protocol: one logical service served by N interchangeable servers. It
// composes machinery that already exists below it — registry leases name
// the replica set (LookupAll), per-replica latency histograms from
// internal/stats drive power-of-two-choices placement with outlier
// ejection, the wire's TypeCancel lets a hedged request's loser be
// abandoned server-side, and FlagBudget carries the caller's remaining
// deadline on every issued copy — into a client that keeps tail latency
// under control when one replica is slow or the network is lossy, the
// "tail at scale" playbook priced against this repo's measured tables.
//
// The hedging discipline: a call is issued to the replica P2C prefers; if
// no result arrives within the configured quantile of that replica's own
// latency distribution (default p95), one backup is issued to a different
// replica. The first result wins; the loser's context is cancelled
// immediately, which rides the existing cancellation path (a TypeCancel
// packet) so the losing server frees the call's retained state instead of
// finishing work nobody will read. Hedged calls must therefore be
// idempotent reads — writes take the Fanout path, which never hedges
// (the hedge-never-double-commits invariant in DESIGN.md).
package cluster

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"fireflyrpc/internal/core"
	"fireflyrpc/internal/stats"
	"fireflyrpc/internal/transport"
)

// Errors.
var (
	ErrNoReplicas = errors.New("cluster: no live replicas")
)

// HedgeConfig tunes the backup-request policy.
type HedgeConfig struct {
	// Enabled turns hedging on for Call. Fanout never hedges.
	Enabled bool
	// Quantile of the picked replica's own latency distribution to wait
	// before issuing the backup; default 0.95.
	Quantile float64
	// Min/Max clamp the quantile-derived delay; defaults 200µs / 50ms.
	// Until a replica has histWarmup samples the delay is Max, so a cold
	// client does not hedge-storm.
	Min, Max time.Duration
	// After, when positive, is a fixed hedge delay overriding the
	// quantile machinery (useful in tests and benchmarks).
	After time.Duration
}

// Config assembles a cluster client.
type Config struct {
	// Node is the caller endpoint; every replica binding shares its Conn.
	Node *core.Node
	// Resolver names the replica set (registry-backed or Static).
	Resolver Resolver
	// ParseAddr converts a resolved address string into a transport
	// address (transport.ResolveUDPAddr, transport.AddrOf for the
	// exchange, ...).
	ParseAddr func(string) (transport.Addr, error)
	// Interface identity of the replicated service.
	Iface   string
	Version uint32

	Hedge HedgeConfig
	// EjectAfter consecutive failures mark a replica as an outlier and
	// P2C skips it for EjectFor; defaults 3 and 1s. Ejection is advisory:
	// when every replica is ejected the balancer uses them anyway.
	EjectAfter int
	EjectFor   time.Duration
	// Seed drives the pick randomness deterministically; 0 seeds from 1.
	Seed uint64
}

const histWarmup = 16 // samples before a replica's quantiles are trusted

// pickQuantile is the latency quantile P2C compares. Deliberately above
// the median: a replica whose tail has collapsed (retransmission storms,
// saturated worker pool) loses the comparison even while its median is
// still healthy.
const pickQuantile = 0.90

// replica is the per-server state: a binding, a pool of single-goroutine
// core.Clients, an always-on latency histogram (proto's per-peer
// histograms are tracing-gated; the balancer needs its own), and the
// pick/ejection accounting.
type replica struct {
	addr    string
	binding *core.Binding
	hist    *stats.Hist

	mu   sync.Mutex
	pool []*core.Client

	picks        atomic.Int64
	wins         atomic.Int64
	failures     atomic.Int64
	ejections    atomic.Int64
	consecFails  atomic.Int32
	ejectedUntil atomic.Int64 // unix nanos; 0 = live
}

func (r *replica) get() *core.Client {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n := len(r.pool); n > 0 {
		cl := r.pool[n-1]
		r.pool = r.pool[:n-1]
		return cl
	}
	return r.binding.NewClient()
}

func (r *replica) put(cl *core.Client) {
	r.mu.Lock()
	r.pool = append(r.pool, cl)
	r.mu.Unlock()
}

func (r *replica) ejected(now time.Time) bool {
	return r.ejectedUntil.Load() > now.UnixNano()
}

// Client is the replica-set caller: resolve, pick, (maybe) hedge.
type Client struct {
	cfg Config

	mu       sync.RWMutex
	replicas []*replica
	byAddr   map[string]*replica

	rng atomic.Uint64

	calls           atomic.Int64 // logical calls through Call
	issued          atomic.Int64 // copies actually put on the wire
	fanouts         atomic.Int64 // logical Fanout operations
	hedgesFired     atomic.Int64
	hedgesWon       atomic.Int64 // backup finished first
	hedgesCancelled atomic.Int64 // cancel sent to a hedged call's loser
}

// New builds a cluster client and performs the initial resolve.
func New(ctx context.Context, cfg Config) (*Client, error) {
	if cfg.Node == nil || cfg.Resolver == nil || cfg.ParseAddr == nil {
		return nil, errors.New("cluster: Config needs Node, Resolver, and ParseAddr")
	}
	if cfg.Hedge.Quantile <= 0 || cfg.Hedge.Quantile > 1 {
		cfg.Hedge.Quantile = 0.95
	}
	if cfg.Hedge.Min <= 0 {
		cfg.Hedge.Min = 200 * time.Microsecond
	}
	if cfg.Hedge.Max <= 0 {
		cfg.Hedge.Max = 50 * time.Millisecond
	}
	if cfg.EjectAfter <= 0 {
		cfg.EjectAfter = 3
	}
	if cfg.EjectFor <= 0 {
		cfg.EjectFor = time.Second
	}
	c := &Client{cfg: cfg, byAddr: make(map[string]*replica)}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	c.rng.Store(seed)
	if _, err := c.resolve(ctx); err != nil {
		return nil, err
	}
	return c, nil
}

// resolve refreshes the replica set from the resolver, keeping the
// accumulated state (histogram, counters, client pool) of every address
// that persists across refreshes.
func (c *Client) resolve(ctx context.Context) ([]*replica, error) {
	addrs, err := c.cfg.Resolver.Resolve(ctx)
	if err != nil {
		// Resolution failure with a known set: keep serving it (the
		// registry's lease design already tolerates a flaky directory).
		c.mu.RLock()
		cur := c.replicas
		c.mu.RUnlock()
		if len(cur) > 0 {
			return cur, nil
		}
		return nil, err
	}
	if len(addrs) == 0 {
		return nil, ErrNoReplicas
	}
	c.mu.RLock()
	same := len(addrs) == len(c.replicas)
	if same {
		for i, a := range addrs {
			if c.replicas[i].addr != a {
				same = false
				break
			}
		}
	}
	cur := c.replicas
	c.mu.RUnlock()
	if same {
		return cur, nil
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	next := make([]*replica, 0, len(addrs))
	nextBy := make(map[string]*replica, len(addrs))
	for _, a := range addrs {
		if r := c.byAddr[a]; r != nil {
			next = append(next, r)
			nextBy[a] = r
			continue
		}
		ta, err := c.cfg.ParseAddr(a)
		if err != nil {
			continue // a malformed entry must not poison the whole set
		}
		r := &replica{
			addr:    a,
			binding: c.cfg.Node.Bind(ta, c.cfg.Iface, c.cfg.Version),
			hist:    new(stats.Hist),
		}
		next = append(next, r)
		nextBy[a] = r
	}
	if len(next) == 0 {
		return nil, ErrNoReplicas
	}
	c.replicas = next
	c.byAddr = nextBy
	return next, nil
}

// rand64 is a lock-free splitmix64 stream: deterministic under a fixed
// seed and sequential use, and safely usable from concurrent callers.
func (c *Client) rand64() uint64 {
	x := c.rng.Add(0x9E3779B97F4A7C15)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// better compares two replicas for P2C: prefer the one with the lower
// pickQuantile latency; a replica still inside its histogram warmup is
// preferred outright (explore before exploit); ties fall to fewer picks.
func better(a, b *replica) *replica {
	na, qa := a.hist.Quick(pickQuantile)
	nb, qb := b.hist.Quick(pickQuantile)
	switch {
	case na < histWarmup && nb >= histWarmup:
		return a
	case nb < histWarmup && na >= histWarmup:
		return b
	case na < histWarmup && nb < histWarmup:
		// Both cold: spread the warmup load evenly.
	case qa != qb:
		if qa < qb {
			return a
		}
		return b
	}
	if a.picks.Load() <= b.picks.Load() {
		return a
	}
	return b
}

// pick selects a replica by power-of-two-choices over the live (non-
// ejected) set, excluding `not` (the hedge's primary). Ejection is
// advisory: with nothing live the ejected replicas are considered anyway.
func (c *Client) pick(reps []*replica, not *replica) *replica {
	now := time.Now()
	// Gather candidates without allocating in the common small-N case.
	var buf [8]*replica
	cand := buf[:0]
	for _, r := range reps {
		if r != not && !r.ejected(now) {
			cand = append(cand, r)
		}
	}
	if len(cand) == 0 {
		for _, r := range reps {
			if r != not {
				cand = append(cand, r)
			}
		}
	}
	var chosen *replica
	switch len(cand) {
	case 0:
		return nil
	case 1:
		chosen = cand[0]
	default:
		x := c.rand64()
		n := uint64(len(cand))
		i := x % n
		j := (x >> 32) % (n - 1)
		if j >= i {
			j++
		}
		chosen = better(cand[i], cand[j])
	}
	chosen.picks.Add(1)
	return chosen
}

// account records one issued copy's outcome against its replica.
func (c *Client) account(r *replica, start time.Time, err error) {
	if err == nil {
		r.hist.Observe(time.Since(start))
		r.wins.Add(1)
		r.consecFails.Store(0)
		return
	}
	if errors.Is(err, context.Canceled) {
		return // our own hedge cancellation, not the replica's fault
	}
	r.failures.Add(1)
	if int(r.consecFails.Add(1)) >= c.cfg.EjectAfter {
		r.consecFails.Store(0)
		r.ejections.Add(1)
		r.ejectedUntil.Store(time.Now().Add(c.cfg.EjectFor).UnixNano())
	}
}

// hedgeDelay derives the backup delay from the primary's own latency
// distribution: the configured quantile, clamped to [Min, Max], with Max
// standing in until the histogram has warmed up.
func (c *Client) hedgeDelay(r *replica) time.Duration {
	if c.cfg.Hedge.After > 0 {
		return c.cfg.Hedge.After
	}
	n, q := r.hist.Quick(c.cfg.Hedge.Quantile)
	if n < histWarmup {
		return c.cfg.Hedge.Max
	}
	if q < c.cfg.Hedge.Min {
		return c.cfg.Hedge.Min
	}
	if q > c.cfg.Hedge.Max {
		return c.cfg.Hedge.Max
	}
	return q
}

// ReplicaStats is one replica's snapshot for the debug surface.
type ReplicaStats struct {
	Addr      string  `json:"addr"`
	Picks     int64   `json:"picks"`
	Wins      int64   `json:"wins"`
	Failures  int64   `json:"failures"`
	Ejections int64   `json:"ejections"`
	Ejected   bool    `json:"ejected"`
	N         int64   `json:"n"`
	P50Us     float64 `json:"p50_us"`
	P95Us     float64 `json:"p95_us"`
	P99Us     float64 `json:"p99_us"`
}

// Stats is the whole client's snapshot.
type Stats struct {
	Service         string         `json:"service"`
	Replicas        []ReplicaStats `json:"replicas"`
	Calls           int64          `json:"calls"`
	Issued          int64          `json:"issued"`
	Fanouts         int64          `json:"fanouts"`
	HedgesFired     int64          `json:"hedges_fired"`
	HedgesWon       int64          `json:"hedges_won"`
	HedgesCancelled int64          `json:"hedges_cancelled"`
}

// Stats snapshots the balancer. Safe to call concurrently with traffic.
func (c *Client) Stats() Stats {
	c.mu.RLock()
	reps := c.replicas
	c.mu.RUnlock()
	s := Stats{
		Service:         c.cfg.Iface,
		Calls:           c.calls.Load(),
		Issued:          c.issued.Load(),
		Fanouts:         c.fanouts.Load(),
		HedgesFired:     c.hedgesFired.Load(),
		HedgesWon:       c.hedgesWon.Load(),
		HedgesCancelled: c.hedgesCancelled.Load(),
	}
	now := time.Now()
	for _, r := range reps {
		snap := r.hist.Snapshot()
		sum := snap.Summarize()
		s.Replicas = append(s.Replicas, ReplicaStats{
			Addr:      r.addr,
			Picks:     r.picks.Load(),
			Wins:      r.wins.Load(),
			Failures:  r.failures.Load(),
			Ejections: r.ejections.Load(),
			Ejected:   r.ejected(now),
			N:         sum.N,
			P50Us:     sum.P50Us,
			P95Us:     sum.P95Us,
			P99Us:     sum.P99Us,
		})
	}
	return s
}

// Addrs returns the current replica address set (primarily for tests and
// the debug surface).
func (c *Client) Addrs() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, len(c.replicas))
	for i, r := range c.replicas {
		out[i] = r.addr
	}
	return out
}
