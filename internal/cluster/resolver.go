package cluster

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"fireflyrpc/internal/registry"
)

// Resolver yields the current replica address set for a service. Resolve is
// called on the balancer's call path, so implementations must make the
// common case cheap: the registry-backed resolver answers from a cached set
// and refreshes asynchronously.
type Resolver interface {
	Resolve(ctx context.Context) ([]string, error)
}

// Static is a fixed replica set — the resolver for tests, benchmarks, and
// deployments with out-of-band configuration.
type Static []string

// Resolve returns the set unchanged.
func (s Static) Resolve(context.Context) ([]string, error) { return s, nil }

// RegistryResolver resolves a service name through a registry.Client's
// LookupAll with client-side caching: a Resolve inside the TTL is a mutex
// and a slice read; the first Resolve past the TTL still returns the cached
// set immediately but kicks exactly one background re-resolve, so a slow or
// briefly unreachable directory never stalls the call path once a set is
// known. Only the very first Resolve (no cache yet) is synchronous.
type RegistryResolver struct {
	service string
	ttl     time.Duration
	clock   func() time.Time

	// reg is only ever used under resolveMu: registry.Client (like every
	// core.Client user) is not safe for concurrent calls.
	resolveMu sync.Mutex
	reg       *registry.Client

	mu      sync.Mutex
	addrs   []string
	expires time.Time

	refreshing atomic.Bool
	resolves   atomic.Int64 // directory round trips performed
	errors     atomic.Int64 // round trips that failed
}

// NewRegistryResolver caches LookupAll(service) results for ttl (default
// 1s) before re-resolving in the background.
func NewRegistryResolver(reg *registry.Client, service string, ttl time.Duration) *RegistryResolver {
	if ttl <= 0 {
		ttl = time.Second
	}
	return &RegistryResolver{service: service, ttl: ttl, clock: time.Now, reg: reg}
}

// Resolve returns the live replica set, honouring the cache TTL.
func (r *RegistryResolver) Resolve(ctx context.Context) ([]string, error) {
	r.mu.Lock()
	addrs, exp := r.addrs, r.expires
	r.mu.Unlock()
	now := r.clock()
	if len(addrs) > 0 {
		if now.Before(exp) {
			return addrs, nil
		}
		// Stale: serve the cached set, refresh off the call path. The CAS
		// admits one refresher at a time.
		if r.refreshing.CompareAndSwap(false, true) {
			go func() {
				defer r.refreshing.Store(false)
				rctx, cancel := context.WithTimeout(context.Background(), r.ttl)
				defer cancel()
				r.lookup(rctx)
			}()
		}
		return addrs, nil
	}
	// Nothing cached yet: the caller waits for the directory once.
	return r.lookup(ctx)
}

// lookup performs one directory round trip and installs the result.
func (r *RegistryResolver) lookup(ctx context.Context) ([]string, error) {
	r.resolveMu.Lock()
	defer r.resolveMu.Unlock()
	r.resolves.Add(1)
	addrs, err := r.reg.LookupAllCtx(ctx, r.service)
	if err != nil {
		r.errors.Add(1)
		return nil, err
	}
	r.mu.Lock()
	r.addrs = addrs
	r.expires = r.clock().Add(r.ttl)
	r.mu.Unlock()
	return addrs, nil
}

// ResolverStats reports a RegistryResolver's directory traffic.
type ResolverStats struct {
	Resolves int64 `json:"resolves"`
	Errors   int64 `json:"errors"`
}

// Stats snapshots the resolver's counters.
func (r *RegistryResolver) Stats() ResolverStats {
	return ResolverStats{Resolves: r.resolves.Load(), Errors: r.errors.Load()}
}
