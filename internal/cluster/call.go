package cluster

import (
	"context"
	"errors"
	"fmt"
	"time"

	"fireflyrpc/internal/core"
	"fireflyrpc/internal/marshal"
)

// ErrNoQuorum reports a Fanout that could not gather `need` acks.
var ErrNoQuorum = errors.New("cluster: quorum not reached")

// Call issues one logical call against the replica set: resolve, pick by
// P2C, and — when hedging is enabled and a second replica exists — issue a
// backup copy if the primary has not answered within the hedge delay. The
// first result wins and the loser is cancelled on the wire (TypeCancel),
// so the losing server abandons the work instead of completing it for
// nobody. Because a hedged call can execute on two servers, Call is for
// idempotent operations only; non-idempotent writes go through Fanout,
// which never hedges.
//
// The ctx deadline rides every issued copy as a FlagBudget hint, so each
// replica's admission policy sees the caller's remaining budget no matter
// which server the balancer or the hedge chose.
func (c *Client) Call(ctx context.Context, proc uint16, argSize int, enc func(*marshal.Enc), dec func(*marshal.Dec)) error {
	c.calls.Add(1)
	reps, err := c.resolve(ctx)
	if err != nil {
		return err
	}
	primary := c.pick(reps, nil)
	if primary == nil {
		return ErrNoReplicas
	}
	if !c.cfg.Hedge.Enabled || len(reps) < 2 {
		c.issued.Add(1)
		return c.issue(ctx, primary, proc, argSize, enc, dec)
	}
	return c.hedged(ctx, reps, primary, proc, argSize, enc, dec)
}

// issue runs one blocking call on one replica with a pooled client and
// records the outcome against the replica's histogram and ejection state.
func (c *Client) issue(ctx context.Context, r *replica, proc uint16, argSize int, enc func(*marshal.Enc), dec func(*marshal.Dec)) error {
	cl := r.get()
	start := time.Now()
	err := cl.CallCtx(ctx, proc, argSize, enc, dec)
	r.put(cl)
	c.account(r, start, err)
	return err
}

// leg is one copy of a hedged call in flight.
type leg struct {
	p      *core.Pending
	rep    *replica
	cl     *core.Client
	start  time.Time
	ctx    context.Context
	cancel context.CancelFunc
}

// settle awaits the leg with ctx, returns its client to the pool, and
// accounts the outcome.
func (c *Client) settle(l leg, ctx context.Context, dec func(*marshal.Dec)) error {
	err := l.p.Await(ctx, dec)
	l.rep.put(l.cl)
	c.account(l.rep, l.start, err)
	return err
}

// abandon cancels the leg's context and awaits it with that cancelled
// context, which is what pushes the cancel notification (TypeCancel) onto
// the wire if the call had not already finished.
func (c *Client) abandon(l leg) {
	l.cancel()
	err := l.p.Await(l.ctx, nil)
	l.rep.put(l.cl)
	c.account(l.rep, l.start, err)
}

// hedged is the backup-request path: primary now, backup after the hedge
// delay, first result wins, loser cancelled immediately.
func (c *Client) hedged(ctx context.Context, reps []*replica, primary *replica, proc uint16, argSize int, enc func(*marshal.Enc), dec func(*marshal.Dec)) error {
	ctx1, cancel1 := context.WithCancel(ctx)
	defer cancel1()
	cl1 := primary.get()
	start1 := time.Now()
	p1, err := cl1.Go(ctx1, proc, argSize, enc)
	if err != nil {
		primary.put(cl1)
		c.account(primary, start1, err)
		return err
	}
	c.issued.Add(1)
	l1 := leg{p: p1, rep: primary, cl: cl1, start: start1, ctx: ctx1, cancel: cancel1}

	timer := time.NewTimer(c.hedgeDelay(primary))
	defer timer.Stop()
	select {
	case <-p1.Done():
		return c.settle(l1, ctx, dec)
	case <-ctx.Done():
		c.abandon(l1)
		return ctx.Err()
	case <-timer.C:
	}

	backup := c.pick(reps, primary)
	if backup == nil {
		return c.settle(l1, ctx, dec)
	}
	ctx2, cancel2 := context.WithCancel(ctx)
	defer cancel2()
	cl2 := backup.get()
	start2 := time.Now()
	p2, err := cl2.Go(ctx2, proc, argSize, enc)
	if err != nil {
		backup.put(cl2)
		c.account(backup, start2, err)
		return c.settle(l1, ctx, dec)
	}
	c.issued.Add(1)
	c.hedgesFired.Add(1)
	l2 := leg{p: p2, rep: backup, cl: cl2, start: start2, ctx: ctx2, cancel: cancel2}

	var win, lose leg
	select {
	case <-p1.Done():
		win, lose = l1, l2
	case <-p2.Done():
		win, lose = l2, l1
	case <-ctx.Done():
		c.abandon(l1)
		c.abandon(l2)
		return ctx.Err()
	}

	werr := c.settle(win, ctx, dec)
	if werr == nil {
		if win.p == p2 {
			c.hedgesWon.Add(1)
		}
		// Tell the loser's server the work is moot. The cancel packet only
		// goes out if the loser had not already finished — abandoning a
		// completed call is a no-op on the wire.
		c.hedgesCancelled.Add(1)
		c.abandon(lose)
		return nil
	}
	// The winner finished first but with an error; the loser is still in
	// flight and becomes the fallback.
	lerr := c.settle(lose, ctx, dec)
	if lerr == nil && lose.p == p2 {
		c.hedgesWon.Add(1)
	}
	if lerr != nil {
		return werr
	}
	return nil
}

// FanoutReply is one replica's outcome in a Fanout.
type FanoutReply struct {
	Addr string
	Err  error
}

// FanoutResult reports how a Fanout went: Acks counts error-free replies,
// Replies holds the per-replica outcomes gathered before the quorum was
// reached (or the set was exhausted).
type FanoutResult struct {
	Acks    int
	Sent    int
	Replies []FanoutReply
}

// Fanout issues the call to every replica concurrently and returns as
// soon as `need` replicas have replied without error (need ≤ 0 means a
// majority). Stragglers are cancelled — again via the wire's cancel
// notification — once the quorum is in. Fanout never hedges and never
// retries, so a non-idempotent operation executes at most once per
// replica; combined with idempotent apply on the server (the KV store's
// versioned writes) this is the hedge-never-double-commits discipline.
//
// enc runs once per replica, concurrently; it must be safe to re-run
// (pure functions over the arguments are — the marshal closures the stubs
// generate qualify). dec, when non-nil, runs concurrently too, once per
// successful reply, and is told which replica it is reading.
func (c *Client) Fanout(ctx context.Context, proc uint16, argSize int, enc func(*marshal.Enc), dec func(addr string, d *marshal.Dec) error, need int) (*FanoutResult, error) {
	c.fanouts.Add(1)
	reps, err := c.resolve(ctx)
	if err != nil {
		return nil, err
	}
	if need <= 0 {
		need = len(reps)/2 + 1
	}
	if need > len(reps) {
		return nil, fmt.Errorf("%w: need %d acks from %d replicas", ErrNoQuorum, need, len(reps))
	}
	fctx, cancel := context.WithCancel(ctx)
	defer cancel()
	// Buffered to the full set: goroutines outliving the quorum complete
	// into the buffer and exit without a reader.
	replies := make(chan FanoutReply, len(reps))
	for _, r := range reps {
		go func(r *replica) {
			cl := r.get()
			start := time.Now()
			var derr error
			err := cl.CallCtx(fctx, proc, argSize, enc, func(d *marshal.Dec) {
				if dec != nil {
					derr = dec(r.addr, d)
				}
			})
			r.put(cl)
			if err == nil {
				err = derr
			}
			c.account(r, start, err)
			replies <- FanoutReply{Addr: r.addr, Err: err}
		}(r)
	}

	res := &FanoutResult{Sent: len(reps)}
	var firstErr error
	for i := 0; i < len(reps); i++ {
		var rep FanoutReply
		select {
		case rep = <-replies:
		case <-ctx.Done():
			return res, ctx.Err()
		}
		res.Replies = append(res.Replies, rep)
		if rep.Err == nil {
			res.Acks++
			if res.Acks >= need {
				return res, nil
			}
		} else if firstErr == nil && !errors.Is(rep.Err, context.Canceled) {
			firstErr = rep.Err
		}
	}
	if firstErr == nil {
		firstErr = ErrNoQuorum
	}
	return res, fmt.Errorf("%w: %d/%d acks (need %d): %v", ErrNoQuorum, res.Acks, len(reps), need, firstErr)
}
