package simnet

import (
	"bytes"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"fireflyrpc/internal/proto"
	"fireflyrpc/internal/transport"
	"fireflyrpc/internal/transport/transporttest"
)

// TestConformance proves the simulator stack satisfies the same transport
// contract as the real transports — the whole point of the seam.
func TestConformance(t *testing.T) {
	transporttest.Run(t, "Simnet", func(t *testing.T) (transport.Transport, transport.Transport) {
		n := New(1)
		t.Cleanup(n.Close)
		return n.Endpoint("conf-a"), n.Endpoint("conf-b")
	})
}

// TestVirtualClockAdvances checks traffic actually crosses the modeled
// 10 Mbit/s wire: the kernel's virtual clock must move by the frames'
// transmission time.
func TestVirtualClockAdvances(t *testing.T) {
	n := New(1)
	defer n.Close()
	a := n.Endpoint("a")
	b := n.Endpoint("b")
	var got atomic.Int64
	b.SetReceiver(func(src transport.Addr, frame []byte) { got.Add(1) })
	frame := make([]byte, 1000)
	for i := 0; i < 10; i++ {
		if err := a.Send(b.LocalAddr(), frame); err != nil {
			t.Fatalf("Send: %v", err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for got.Load() < 10 {
		if time.Now().After(deadline) {
			t.Fatalf("delivered %d/10 frames", got.Load())
		}
		time.Sleep(time.Millisecond)
	}
	// 10 frames × 1014 bytes × 0.8 µs/byte ≈ 8.1 ms of wire time.
	if now := int64(n.Now()); now < 8*time.Millisecond.Nanoseconds() {
		t.Fatalf("virtual clock at %d ns, want ≥ 8ms of modeled transmission", now)
	}
	if st := n.SegmentStats(); st.Frames != 10 {
		t.Fatalf("segment saw %d frames, want 10", st.Frames)
	}
}

// TestProtoOverSimnet runs the real protocol engine — session hello and
// all — over the simulated Ethernet.
func TestProtoOverSimnet(t *testing.T) {
	n := New(7)
	defer n.Close()
	cfg := proto.Config{RetransInterval: 20 * time.Millisecond, MaxRetries: 8, Workers: 4}
	caller := proto.NewConn(n.Endpoint("caller"), cfg, nil)
	defer caller.Close()
	server := proto.NewConn(n.Endpoint("server"), cfg, func(src transport.Addr, iface uint32, proc uint16, args []byte) ([]byte, error) {
		return append(append([]byte(nil), args...), 0xEE), nil
	})
	defer server.Close()

	for i := 0; i < 5; i++ {
		args := []byte(fmt.Sprintf("sim-call-%d", i))
		res, err := caller.Call(AddrOf("server"), 1, uint32(i+1), 0, 1, args)
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		want := append(append([]byte(nil), args...), 0xEE)
		if !bytes.Equal(res, want) {
			t.Fatalf("call %d result = %q, want %q", i, res, want)
		}
	}
	if st := caller.Stats(); st.SessionsNegotiated != 1 {
		t.Fatalf("caller negotiated %d sessions over simnet, want 1", st.SessionsNegotiated)
	}
}

// TestProtoOverLossySimnet injects wire loss through the segment's fault
// hook; the protocol's retransmission engine must recover every call.
func TestProtoOverLossySimnet(t *testing.T) {
	n := New(42)
	defer n.Close()
	n.Segment().LossRate = 0.25
	cfg := proto.Config{RetransInterval: 5 * time.Millisecond, MaxRetries: 20, Workers: 4}
	caller := proto.NewConn(n.Endpoint("caller"), cfg, nil)
	defer caller.Close()
	server := proto.NewConn(n.Endpoint("server"), cfg, func(src transport.Addr, iface uint32, proc uint16, args []byte) ([]byte, error) {
		return args, nil
	})
	defer server.Close()

	for i := 0; i < 20; i++ {
		args := []byte{byte(i)}
		res, err := caller.Call(AddrOf("server"), 1, uint32(i+1), 0, 1, args)
		if err != nil {
			t.Fatalf("call %d under 25%% loss: %v", i, err)
		}
		if !bytes.Equal(res, args) {
			t.Fatalf("call %d result corrupted", i)
		}
	}
	if st := caller.Stats(); st.Retransmits == 0 {
		t.Log("note: no retransmissions observed despite loss (unlucky seed?)")
	}
}
