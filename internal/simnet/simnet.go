// Package simnet adapts the simulator's Ethernet model to the real
// transport contract, closing the loop between the repo's two stacks: the
// same protocol engine that runs over UDP or TCP sockets can run over the
// modeled 10 Mbit/s segment (internal/ether) driven by the discrete-event
// kernel (internal/sim), with the kernel's virtual clock advanced lazily
// as traffic flows.
//
// The adapter inverts the simulator's usual control flow. A model owns the
// kernel and calls Run once; here arbitrary goroutines call Send, so the
// net serializes them through a pump goroutine: Send enqueues the frame
// and returns, the pump transmits queued frames onto the segment, runs the
// kernel until the event queue drains, and then invokes receivers with
// whatever the wire delivered. Receivers run on the pump goroutine with no
// simnet lock held, so a receiver that sends (the protocol answers acks
// from its receive callback) simply re-enqueues for the next sweep. The
// pump being a dedicated goroutine — rather than the sending goroutine —
// is load-bearing: the protocol retransmits while holding per-call locks,
// and a synchronous in-Send delivery of that call's own result would
// deadlock on them.
//
// Frames cross the segment with real Ethernet framing (wire.EthernetHeader,
// EtherTypeRawRPC) and a 10 Mbit/s transmission-time model, so the virtual
// clock, medium utilization, and fault injection (Segment.SetFaulter /
// LossRate) all behave exactly as they do under the simulator proper.
package simnet

import (
	"fmt"
	"sync"
	"sync/atomic"

	"fireflyrpc/internal/ether"
	"fireflyrpc/internal/sim"
	"fireflyrpc/internal/transport"
	"fireflyrpc/internal/wire"
)

// MaxFrame keeps the simulated transport on the same single-packet budget
// as every real transport.
const MaxFrame = wire.RPCHeaderLen + wire.MaxSinglePacketPayload

// Net is one simulated Ethernet segment with transport endpoints attached.
// The kernel and segment are only touched under mu (the pump holds it
// across each transmit-and-run sweep), so endpoints may be attached and
// queried while traffic flows.
type Net struct {
	k   *sim.Kernel
	seg *ether.Segment

	mu       sync.Mutex
	cond     *sync.Cond
	byName   map[string]*Endpoint
	byMAC    map[wire.MAC]*Endpoint
	nextHost uint32
	sendq    []outFrame
	closed   bool

	// inbox collects deliveries during a kernel run; only the pump touches
	// it, so it needs no further locking.
	inbox []inFrame
}

type outFrame struct {
	src *Endpoint
	buf []byte // Ethernet-framed
}

type inFrame struct {
	src, dst *Endpoint
	payload  []byte
}

// New creates an empty segment on a fresh kernel seeded for determinism
// (of the wire model; goroutine arrival order is still the scheduler's).
func New(seed uint64) *Net {
	k := sim.NewKernel(seed)
	n := &Net{
		k:      k,
		seg:    ether.NewSegment(k),
		byName: make(map[string]*Endpoint),
		byMAC:  make(map[wire.MAC]*Endpoint),
	}
	n.cond = sync.NewCond(&n.mu)
	go n.pump()
	return n
}

// Kernel exposes the simulation kernel for pre-traffic setup (installing a
// faulter, tracer, …). Once traffic flows, the pump owns it; use Now for a
// synchronized clock read.
func (n *Net) Kernel() *sim.Kernel { return n.k }

// Segment exposes the modeled wire for pre-traffic setup (SetFaulter,
// LossRate). Use SegmentStats for synchronized counter reads.
func (n *Net) Segment() *ether.Segment { return n.seg }

// Now reads the virtual clock, synchronized against the pump.
func (n *Net) Now() sim.Time {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.k.Now()
}

// SegmentStats reads the wire's counters, synchronized against the pump.
func (n *Net) SegmentStats() ether.Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.seg.Stats()
}

// simAddr names an endpoint; one value interned per endpoint.
type simAddr struct{ str string }

func (a *simAddr) String() string  { return a.str }
func (a *simAddr) Network() string { return "sim" }

// AddrOf names an endpoint on any Net.
func AddrOf(name string) transport.Addr { return &simAddr{str: name} }

// Endpoint is one station on the segment, satisfying transport.Transport.
type Endpoint struct {
	net  *Net
	addr *simAddr
	mac  wire.MAC
	port *ether.Port

	recvMu sync.RWMutex
	recv   transport.Receiver
	closed atomic.Bool

	sendFrames atomic.Int64
	recvFrames atomic.Int64
}

// Endpoint attaches a new station. name must be unique; empty picks one.
func (n *Net) Endpoint(name string) *Endpoint {
	n.mu.Lock()
	defer n.mu.Unlock()
	if name == "" {
		name = fmt.Sprintf("sim-%d", n.nextHost+1)
	}
	if _, dup := n.byName[name]; dup {
		panic("simnet: duplicate endpoint " + name)
	}
	n.nextHost++
	ep := &Endpoint{
		net:  n,
		addr: &simAddr{str: name},
		mac:  wire.MACForHost(n.nextHost),
	}
	ep.port = n.seg.Attach(ep.mac, func(frame []byte) { n.onWireDeliver(ep, frame) })
	n.byName[name] = ep
	n.byMAC[ep.mac] = ep
	return ep
}

// onWireDeliver runs in kernel event context (inside the pump's sweep): it
// parses the Ethernet framing and queues the payload for delivery after
// the kernel settles.
func (n *Net) onWireDeliver(dst *Endpoint, frame []byte) {
	hdr, payload, err := wire.UnmarshalEthernet(frame)
	if err != nil || hdr.EtherType != wire.EtherTypeRawRPC {
		return
	}
	src := n.byMAC[hdr.Src]
	if src == nil {
		return
	}
	n.inbox = append(n.inbox, inFrame{src: src, dst: dst, payload: payload})
}

// txTime models the 10 Mbit/s wire: 0.8 µs per byte.
func txTime(bytes int) sim.Duration { return sim.MicrosF(float64(bytes) * 0.8) }

// Send implements Transport: the frame is queued for the pump and
// delivered asynchronously, like any real NIC ring.
func (ep *Endpoint) Send(dst transport.Addr, frame []byte) error {
	if ep.closed.Load() {
		return transport.ErrClosed
	}
	if len(frame) > MaxFrame {
		return transport.ErrFrameTooLarge
	}
	n := ep.net
	n.mu.Lock()
	target := n.byName[dst.String()]
	if target == nil || target.closed.Load() {
		n.mu.Unlock()
		return nil // silently lost, like the wire
	}
	buf := make([]byte, wire.EthernetHeaderLen+len(frame))
	h := wire.EthernetHeader{Dst: target.mac, Src: ep.mac, EtherType: wire.EtherTypeRawRPC}
	h.MarshalTo(buf)
	copy(buf[wire.EthernetHeaderLen:], frame)
	n.sendq = append(n.sendq, outFrame{src: ep, buf: buf})
	ep.sendFrames.Add(1)
	n.cond.Signal()
	n.mu.Unlock()
	return nil
}

// pump is the net's single worker: transmit queued frames, run the kernel
// to quiescence (both under mu), then invoke receivers with no lock held
// so they can Send.
func (n *Net) pump() {
	for {
		n.mu.Lock()
		for len(n.sendq) == 0 && !n.closed {
			n.cond.Wait()
		}
		if n.closed {
			n.mu.Unlock()
			return
		}
		batch := n.sendq
		n.sendq = nil
		for _, of := range batch {
			if of.src.closed.Load() {
				continue
			}
			of.src.port.Transmit(of.buf, txTime(len(of.buf)), nil)
		}
		n.k.Run()
		inbox := n.inbox
		n.inbox = nil
		n.mu.Unlock()

		for _, d := range inbox {
			if d.dst.closed.Load() {
				continue
			}
			d.dst.recvMu.RLock()
			recv := d.dst.recv
			d.dst.recvMu.RUnlock()
			if recv != nil {
				d.dst.recvFrames.Add(1)
				recv(d.src.addr, d.payload)
			}
		}
	}
}

// Close stops the pump goroutine; in-queue frames are discarded. Endpoints
// keep rejecting Sends individually via their own Close.
func (n *Net) Close() {
	n.mu.Lock()
	n.closed = true
	n.cond.Signal()
	n.mu.Unlock()
}

// SetReceiver implements Transport.
func (ep *Endpoint) SetReceiver(r transport.Receiver) {
	ep.recvMu.Lock()
	ep.recv = r
	ep.recvMu.Unlock()
}

// LocalAddr implements Transport.
func (ep *Endpoint) LocalAddr() transport.Addr { return ep.addr }

// MaxFrame implements Transport.
func (ep *Endpoint) MaxFrame() int { return MaxFrame }

// Close implements Transport. Frames already on the wire to this endpoint
// are dropped at delivery, like powering off a station.
func (ep *Endpoint) Close() error {
	if ep.closed.Swap(true) {
		return nil
	}
	n := ep.net
	n.mu.Lock()
	delete(n.byName, ep.addr.str)
	n.mu.Unlock()
	return nil
}

// TransportStats implements transport.StatsReporter: frame counts only
// (the simulated wire has no syscall batching to meter).
func (ep *Endpoint) TransportStats() (transport.Stats, bool) {
	return transport.Stats{
		SendFrames:  ep.sendFrames.Load(),
		SendBatches: ep.sendFrames.Load(),
		RecvFrames:  ep.recvFrames.Load(),
		RecvBatches: ep.recvFrames.Load(),
	}, true
}
