package costmodel

import (
	"testing"
	"time"
)

func usec(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

func TestSendReceiveTotalsMatchTableVI(t *testing.T) {
	c := NewConfig()
	if got := usec(c.SendReceiveTotal(74)); got != 954 {
		t.Errorf("send+receive 74B = %v µs, want 954 (Table VI)", got)
	}
	if got := usec(c.SendReceiveTotal(1514)); got != 4414 {
		t.Errorf("send+receive 1514B = %v µs, want 4414 (Table VI)", got)
	}
}

func TestSendReceiveStepsMatchTableVI(t *testing.T) {
	c := NewConfig()
	want74 := []float64{59, 45, 37, 39, 10, 76, 22, 70, 60, 80, 14, 177, 45, 220}
	want1514 := []float64{59, 440, 37, 39, 10, 76, 22, 815, 1230, 835, 14, 177, 440, 220}
	s74 := c.SendReceiveSteps(74)
	s1514 := c.SendReceiveSteps(1514)
	if len(s74) != len(want74) {
		t.Fatalf("%d steps, want %d", len(s74), len(want74))
	}
	for i := range want74 {
		if usec(s74[i].Cost) != want74[i] {
			t.Errorf("step %q 74B = %v µs, want %v", s74[i].Name, usec(s74[i].Cost), want74[i])
		}
		if usec(s1514[i].Cost) != want1514[i] {
			t.Errorf("step %q 1514B = %v µs, want %v", s1514[i].Name, usec(s1514[i].Cost), want1514[i])
		}
	}
}

func TestStubRuntimeTotalMatchesTableVII(t *testing.T) {
	c := NewConfig()
	if got := usec(c.StubRuntimeTotal()); got != 606 {
		t.Errorf("stub+runtime total = %v µs, want 606 (Table VII)", got)
	}
	want := []float64{16, 90, 128, 27, 158, 68, 10, 27, 49, 33}
	steps := c.StubRuntimeSteps()
	for i, s := range steps {
		if usec(s.Cost) != want[i] {
			t.Errorf("step %q = %v µs, want %v", s.Name, usec(s.Cost), want[i])
		}
	}
}

func TestCompositionMatchesTableVIII(t *testing.T) {
	c := NewConfig()
	null := c.StubRuntimeTotal() + c.SendReceiveTotal(74) + c.SendReceiveTotal(74)
	if got := usec(null); got != 2514 {
		t.Errorf("Null() composed latency = %v µs, want 2514 (Table VIII)", got)
	}
	max := c.StubRuntimeTotal() + c.MarshalVarArray(1440) +
		c.SendReceiveTotal(74) + c.SendReceiveTotal(1514)
	if got := usec(max); got != 6524 {
		t.Errorf("MaxResult(b) composed latency = %v µs, want 6524 (Table VIII)", got)
	}
}

func TestMarshalIntsMatchesTableII(t *testing.T) {
	c := NewConfig()
	for _, n := range []int{1, 2, 4} {
		if got := usec(c.MarshalInts(n)); got != float64(8*n) {
			t.Errorf("MarshalInts(%d) = %v µs, want %d (Table II)", n, got, 8*n)
		}
	}
}

func TestMarshalFixedArrayMatchesTableIII(t *testing.T) {
	c := NewConfig()
	if got := usec(c.MarshalFixedArray(4)); got != 20 {
		t.Errorf("fixed 4B = %v µs, want 20", got)
	}
	if got := usec(c.MarshalFixedArray(400)); got != 140 {
		t.Errorf("fixed 400B = %v µs, want 140", got)
	}
}

func TestMarshalVarArrayMatchesTableIV(t *testing.T) {
	c := NewConfig()
	if got := usec(c.MarshalVarArray(1)); got != 115 {
		t.Errorf("var 1B = %v µs, want 115", got)
	}
	if got := usec(c.MarshalVarArray(1440)); got != 550 {
		t.Errorf("var 1440B = %v µs, want 550", got)
	}
}

func TestMarshalTextMatchesTableV(t *testing.T) {
	c := NewConfig()
	if got := usec(c.MarshalText(0, true)); got != 89 {
		t.Errorf("NIL text = %v µs, want 89", got)
	}
	if got := usec(c.MarshalText(1, false)); got != 378 {
		t.Errorf("1B text = %v µs, want 378", got)
	}
	if got := usec(c.MarshalText(128, false)); got != 659 {
		t.Errorf("128B text = %v µs, want 659", got)
	}
}

func TestInterruptImplMatchesTableIX(t *testing.T) {
	cases := []struct {
		impl InterruptImpl
		cost float64
		name string
	}{
		{InterruptOriginalModula, 758, "Original Modula-2+"},
		{InterruptFinalModula, 547, "Final Modula-2+"},
		{InterruptAssembly, 177, "Assembly language"},
	}
	for _, cse := range cases {
		if usec(cse.impl.Cost()) != cse.cost {
			t.Errorf("%v cost = %v, want %v", cse.impl, usec(cse.impl.Cost()), cse.cost)
		}
		if cse.impl.String() != cse.name {
			t.Errorf("name = %q, want %q", cse.impl.String(), cse.name)
		}
	}
}

// §4.2.4: omitting UDP checksums saves 180 µs on Null (4×45) and
// 970-1000 µs on MaxResult.
func TestOmitChecksumSavings(t *testing.T) {
	on, off := NewConfig(), NewConfig()
	off.UDPChecksums = false
	nullSave := usec(on.SendReceiveTotal(74)+on.SendReceiveTotal(74)) -
		usec(off.SendReceiveTotal(74)+off.SendReceiveTotal(74))
	if nullSave != 180 {
		t.Errorf("Null checksum saving = %v µs, want 180 (§4.2.4)", nullSave)
	}
	maxSave := usec(on.SendReceiveTotal(74)+on.SendReceiveTotal(1514)) -
		usec(off.SendReceiveTotal(74)+off.SendReceiveTotal(1514))
	if maxSave != 970 {
		t.Errorf("MaxResult checksum saving = %v µs, want 970 (§4.2.4 says ~1000)", maxSave)
	}
}

// §4.2.2: a 100 Mb/s network saves ~110 µs on Null and ~1160 µs on MaxResult.
func TestFastNetworkSavings(t *testing.T) {
	slow, fast := NewConfig(), NewConfig()
	fast.NetworkMbps = 100
	nullSave := usec(slow.EthernetTransmit(74))*2 - usec(fast.EthernetTransmit(74))*2
	if nullSave < 100 || nullSave > 120 {
		t.Errorf("Null fast-net saving = %v µs, want ~110 (§4.2.2)", nullSave)
	}
	maxSave := usec(slow.EthernetTransmit(74)) + usec(slow.EthernetTransmit(1514)) -
		usec(fast.EthernetTransmit(74)) - usec(fast.EthernetTransmit(1514))
	if maxSave < 1100 || maxSave > 1220 {
		t.Errorf("MaxResult fast-net saving = %v µs, want ~1160 (§4.2.2)", maxSave)
	}
}

// §4.2.1: an overlapping controller saves ~300 µs on Null and ~1800 µs on
// MaxResult.
func TestOverlapControllerSavings(t *testing.T) {
	std, ovl := NewConfig(), NewConfig()
	ovl.OverlapController = true
	perPkt := func(c Config, n int) float64 {
		return usec(c.ControllerTxLatency(n) + c.ControllerRxLatency(n))
	}
	nullSave := 2 * (perPkt(std, 74) - perPkt(ovl, 74))
	if nullSave < 200 || nullSave > 350 {
		t.Errorf("Null overlap saving = %v µs, want ~300 (§4.2.1)", nullSave)
	}
	maxSave := (perPkt(std, 74) - perPkt(ovl, 74)) + (perPkt(std, 1514) - perPkt(ovl, 1514))
	if maxSave < 1600 || maxSave > 2000 {
		t.Errorf("MaxResult overlap saving = %v µs, want ~1800 (§4.2.1)", maxSave)
	}
}

// §4.2.7: busy waiting saves ~440 µs per RPC (two wakeups).
func TestBusyWaitSavings(t *testing.T) {
	std, bw := NewConfig(), NewConfig()
	bw.BusyWait = true
	save := 2 * (usec(std.WakeupThread()) - usec(bw.WakeupThread()))
	if save != 400 {
		t.Errorf("busy-wait saving = %v µs, want 400 (§4.2.7 says ~440)", save)
	}
}

// §4.2.8: recoding the runtime saves ~280 µs per RPC (422 µs sped up 3×).
func TestRecodedRuntimeSavings(t *testing.T) {
	std, rec := NewConfig(), NewConfig()
	rec.RecodedRuntime = true
	save := usec(std.StubRuntimeTotal()) - usec(rec.StubRuntimeTotal())
	if save < 270 || save > 290 {
		t.Errorf("recoded-runtime saving = %v µs, want ~281 (§4.2.8)", save)
	}
}

// §4.2.3: 3× CPUs cut Null's composed software time by ~1380 µs.
func TestFastCPUSavings(t *testing.T) {
	std, fast := NewConfig(), NewConfig()
	fast.CPUSpeedup = 3
	null := func(c Config) float64 {
		return usec(c.StubRuntimeTotal() + c.SendReceiveTotal(74)*2)
	}
	save := null(std) - null(fast)
	if save < 1300 || save > 1450 {
		t.Errorf("3× CPU saving on Null = %v µs, want ~1380 (§4.2.3)", save)
	}
}

// §4.2.5 + §4.2.6: header redesign saves ~200 µs/RPC; raw Ethernet ~100 µs.
func TestHeaderSavings(t *testing.T) {
	std := NewConfig()
	hdr := NewConfig()
	hdr.RedesignedHeader = true
	raw := NewConfig()
	raw.RawEthernet = true
	perRPC := func(c Config) float64 { return 2 * usec(c.SendReceiveTotal(74)) }
	if save := perRPC(std) - perRPC(hdr); save != 200 {
		t.Errorf("redesigned-header saving = %v µs, want 200 (§4.2.5)", save)
	}
	if save := perRPC(std) - perRPC(raw); save != 100 {
		t.Errorf("raw-ethernet saving = %v µs, want 100 (§4.2.6)", save)
	}
}

// §5: Exerciser hand stubs are 140 µs faster for Null.
func TestExerciserStubSavings(t *testing.T) {
	std, ex := NewConfig(), NewConfig()
	ex.ExerciserStubs = true
	save := usec(std.StubRuntimeTotal()) - usec(ex.StubRuntimeTotal())
	if save != 140 {
		t.Errorf("exerciser stub saving = %v µs, want 140 (§5)", save)
	}
	if ex.MarshalVarArray(1440) != 0 {
		t.Error("exerciser stubs must not marshal")
	}
}

func TestCPUSpeedupScalesSoftwareOnly(t *testing.T) {
	fast := NewConfig()
	fast.CPUSpeedup = 2
	std := NewConfig()
	if fast.EthernetTransmit(1514) != std.EthernetTransmit(1514) {
		t.Error("CPU speedup must not change wire time")
	}
	if fast.QBusTransmit(1514) != std.QBusTransmit(1514) {
		t.Error("CPU speedup must not change QBus time")
	}
	if fast.HandleTrap() >= std.HandleTrap() {
		t.Error("CPU speedup must scale software costs")
	}
	if fast.IPILatency() != std.IPILatency() {
		t.Error("IPI delivery is hardware latency")
	}
}

func TestChecksumInterpolation(t *testing.T) {
	c := NewConfig()
	mid := usec(c.ChecksumCost(794)) // halfway between 74 and 1514
	if mid != 242.5 {
		t.Errorf("checksum at midpoint = %v µs, want 242.5", mid)
	}
}
