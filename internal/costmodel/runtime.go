package costmodel

import "time"

// ---------------------------------------------------------------------------
// Table VII: stubs and RPC runtime (Modula-2+ code, 606 µs total for Null()).
// ---------------------------------------------------------------------------

// runtimeFactor applies the §4.2.8 recoded-runtime speedup to a runtime
// (non-stub) routine: 3× faster in machine code.
func (c *Config) runtimeFactor(usec float64) float64 {
	if c.RecodedRuntime {
		return usec / 3
	}
	return usec
}

// CallerLoop is the calling program's loop overhead per call (16 µs).
func (c *Config) CallerLoop() time.Duration { return c.sw(16) }

// CallingStub is the caller stub's call-and-return cost (90 µs standard).
// The Exerciser's hand stubs (§5) cost 10 µs here.
func (c *Config) CallingStub() time.Duration {
	if c.ExerciserStubs {
		return c.sw(10)
	}
	return c.sw(90)
}

// Starter obtains and prepares the call packet buffer (128 µs).
func (c *Config) Starter() time.Duration { return c.sw(c.runtimeFactor(128)) }

// TransporterSend finishes the RPC header and registers the call (27 µs).
func (c *Config) TransporterSend() time.Duration { return c.sw(c.runtimeFactor(27)) }

// ReceiverRecv is the server Receiver's per-call receive work (158 µs).
func (c *Config) ReceiverRecv() time.Duration { return c.sw(c.runtimeFactor(158)) }

// ServerStub is the server stub's call-and-return cost (68 µs standard).
// Hand stubs (§5) cost 8 µs here, making an Exerciser call to Null() the
// paper's 140 µs faster overall.
func (c *Config) ServerStub() time.Duration {
	if c.ExerciserStubs {
		return c.sw(8)
	}
	return c.sw(68)
}

// NullProc is the body of the Null server procedure (10 µs).
func (c *Config) NullProc() time.Duration { return c.sw(10) }

// ReceiverSend is the server Receiver's result-send work (27 µs).
func (c *Config) ReceiverSend() time.Duration { return c.sw(c.runtimeFactor(27)) }

// TransporterRecv is the caller Transporter's result-receive work (49 µs).
func (c *Config) TransporterRecv() time.Duration { return c.sw(c.runtimeFactor(49)) }

// Ender returns the result packet to the free pool (33 µs).
func (c *Config) Ender() time.Duration { return c.sw(c.runtimeFactor(33)) }

// StubRuntimeTotal sums Table VII: 606 µs for a standard call to Null().
func (c *Config) StubRuntimeTotal() time.Duration {
	return c.CallerLoop() + c.CallingStub() + c.Starter() + c.TransporterSend() +
		c.ReceiverRecv() + c.ServerStub() + c.NullProc() + c.ReceiverSend() +
		c.TransporterRecv() + c.Ender()
}

// StubRuntimeSteps returns Table VII's rows.
func (c *Config) StubRuntimeSteps() []Step {
	return []Step{
		{"Calling program (loop to repeat call)", c.CallerLoop(), "caller"},
		{"Calling stub (call & return)", c.CallingStub(), "caller"},
		{"Starter", c.Starter(), "caller"},
		{"Transporter (send call pkt)", c.TransporterSend(), "caller"},
		{"Receiver (receive call pkt)", c.ReceiverRecv(), "server"},
		{"Server stub (call & return)", c.ServerStub(), "server"},
		{"Null (the server procedure)", c.NullProc(), "server"},
		{"Receiver (send result pkt)", c.ReceiverSend(), "server"},
		{"Transporter (receive result pkt)", c.TransporterRecv(), "caller"},
		{"Ender", c.Ender(), "caller"},
	}
}

// ---------------------------------------------------------------------------
// Tables II–V: marshalling times (incremental over Null, local RPC).
// ---------------------------------------------------------------------------

// MarshalInts is the cost of passing n 4-byte integers by value: 8 µs each
// (Table II). Exerciser stubs do no marshalling.
func (c *Config) MarshalInts(n int) time.Duration {
	if c.ExerciserStubs {
		return 0
	}
	return c.sw(float64(8 * n))
}

// MarshalFixedArray is the cost of a fixed-length array VAR OUT (or VAR IN)
// argument of n bytes: 20 µs at 4 bytes, 140 µs at 400 bytes (Table III),
// linear in n.
func (c *Config) MarshalFixedArray(n int) time.Duration {
	if c.ExerciserStubs {
		return 0
	}
	v := 20 + (140-20)*float64(n-4)/396
	if v < 0 {
		v = 0
	}
	return c.sw(v)
}

// MarshalVarArray is the cost of a variable-length array VAR OUT (or VAR IN)
// argument of n bytes: 115 µs at 1 byte, 550 µs at 1440 bytes (Table IV),
// linear in n.
func (c *Config) MarshalVarArray(n int) time.Duration {
	if c.ExerciserStubs {
		return 0
	}
	v := 115 + (550-115)*float64(n-1)/1439
	return c.sw(v)
}

// MarshalText is the cost of a Text.T argument: 89 µs for NIL, 378 µs for
// 1 byte, 659 µs for 128 bytes (Table V); linear between the non-NIL points.
func (c *Config) MarshalText(n int, isNil bool) time.Duration {
	if c.ExerciserStubs {
		return 0
	}
	if isNil {
		return c.sw(89)
	}
	v := 378 + (659-378)*float64(n-1)/127
	return c.sw(v)
}

// ---------------------------------------------------------------------------
// Scheduler and queueing constants (calibrated; DESIGN.md §5).
// ---------------------------------------------------------------------------

// DispatchSlop is the per-wakeup dispatch delay not itemized in Table VI —
// the paper's measured Null() exceeds its model by 131 µs, which it ascribes
// to effects like this. Two wakeups per RPC.
func (c *Config) DispatchSlop() time.Duration { return c.sw(79) }

// SlowWakeupExtra is the additional scheduler path taken when a wakeup finds
// no idle CPU and must force a context switch.
func (c *Config) SlowWakeupExtra() time.Duration { return c.sw(50) }

// UniprocCallerExtra is the additional per-call scheduler path on a
// uniprocessor caller machine (calibrated to Table X's 1/5 row).
func (c *Config) UniprocCallerExtra() time.Duration { return c.sw(380) }

// UniprocServerExtra is the additional per-call scheduler path on a
// uniprocessor server machine (calibrated to Table X's 1/1 row).
func (c *Config) UniprocServerExtra() time.Duration { return c.sw(0) }

// ContextSwitch is the thread-to-thread switch cost paid when a runnable
// thread had to queue for a processor. It is what halves uniprocessor
// throughput with multiple caller threads (§5: "the streaming strategy
// requires fewer thread-to-thread context switches"); multiprocessor runs
// rarely queue, so it barely shows there.
func (c *Config) ContextSwitch() time.Duration { return c.sw(150) }

// NubDeferredSend is per-packet-send kernel bookkeeping (buffer recycling,
// retransmission-queue maintenance) performed off the critical path but
// serialized on CPU 0; with NubDeferredWakeup it is calibrated so Table I's
// Null() saturation lands near the measured 740 calls/second.
func (c *Config) NubDeferredSend() time.Duration { return c.sw(350) }

// NubDeferredWakeup is per-wakeup deferred scheduler bookkeeping, the other
// half of the Table I saturation calibration.
func (c *Config) NubDeferredWakeup() time.Duration { return c.sw(450) }

// ControllerRecovery is the DEQNA's per-packet descriptor-processing time
// after a transmit or receive completes: it throttles back-to-back packets
// without adding latency to the packet already delivered (calibrated to
// Table I's MaxResult saturation of 4.65 Mb/s).
func (c *Config) ControllerRecovery() time.Duration { return us(177) }

// IdleLoadFraction is the background CPU load on an idling machine: "about
// 0.15 CPUs" with the standard background threads started.
func (c *Config) IdleLoadFraction() float64 { return 0.15 }

// SwappedLinesPenalty is the per-machine, per-call multiprocessor latency
// cost of the §5 statement reordering (about 100 µs per call total; half on
// each machine). Zero when the fix is not installed or on a uniprocessor.
func (c *Config) SwappedLinesPenalty(machineCPUs int) time.Duration {
	if !c.SwappedLines || machineCPUs == 1 {
		return 0
	}
	return c.sw(50)
}

// UnswappedUniprocDropProb is the probability that a uniprocessor machine
// running without the swapped-lines fix loses an incoming packet: the paper
// reports about one lost packet per second with a single thread calling
// Null(), i.e. roughly one per 500 packets at the ~250 calls/second pace.
func (c *Config) UnswappedUniprocDropProb(machineCPUs int) float64 {
	if c.SwappedLines || machineCPUs > 1 {
		return 0
	}
	return 1.0 / 500
}

// RetransTimeout is the packet-exchange protocol's retransmission interval:
// a lost packet costs "about 600 milliseconds waiting for a retransmission".
func (c *Config) RetransTimeout() time.Duration { return 600 * time.Millisecond }

// MaxRetransmits bounds retransmission attempts before a call fails.
func (c *Config) MaxRetransmits() int { return 10 }

// LocalTransportHalf is the one-way shared-memory transport cost for local
// (same-machine) RPC, calibrated so a local call to Null() takes the
// footnoted 937 µs including stubs, runtime, and two wakeups.
func (c *Config) LocalTransportHalf() time.Duration { return c.sw(94.5) }

// DatalinkDemux is the datalink thread's per-packet demultiplexing work in
// the TraditionalDemux configuration (it replaces part of what the §3.2
// interrupt routine did in-line, at thread level).
func (c *Config) DatalinkDemux() time.Duration { return c.sw(100) }

// SecureBufferCopy is the per-packet cost of copying a packet across a
// protection boundary in the SecureBuffers configuration, scaling with
// packet size like the other copy costs in the model (~0.3 µs/byte on the
// MicroVAX II, plus mapping overhead).
func (c *Config) SecureBufferCopy(packetLen int) time.Duration {
	if !c.SecureBuffers {
		return 0
	}
	return c.sw(40 + 0.3*float64(packetLen))
}
