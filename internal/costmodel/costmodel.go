// Package costmodel holds the Firefly RPC latency model: every per-step cost
// the paper reports (Tables II–VII and IX), the hardware parameters of the
// measured configuration, the §4.2 improvement toggles, and a small number of
// calibrated queueing constants documented in DESIGN.md §5.
//
// All costs are expressed in microseconds of 1989 MicroVAX II time and
// returned as time.Duration for use with the simulator's virtual clock.
package costmodel

import "time"

func us(n float64) time.Duration { return time.Duration(n * float64(time.Microsecond)) }

// Packet size constants echoed from the wire format (kept numeric here so the
// model is self-contained and obviously matches the paper's two columns).
const (
	SmallPacketBytes = 74   // Null() call and result packets
	LargePacketBytes = 1514 // MaxResult(b) result packet
)

// InterruptImpl selects the implementation of the Ethernet interrupt
// routine's main path (Table IX).
type InterruptImpl int

const (
	// InterruptAssembly is the shipped VAX assembly version: 177 µs.
	InterruptAssembly InterruptImpl = iota
	// InterruptFinalModula is the best Modula-2+ version: 547 µs.
	InterruptFinalModula
	// InterruptOriginalModula is the first careful Modula-2+ version: 758 µs.
	InterruptOriginalModula
)

// Cost returns the main-path execution time of the interrupt routine.
func (i InterruptImpl) Cost() time.Duration {
	switch i {
	case InterruptFinalModula:
		return us(547)
	case InterruptOriginalModula:
		return us(758)
	default:
		return us(177)
	}
}

// String names the implementation as Table IX does.
func (i InterruptImpl) String() string {
	switch i {
	case InterruptFinalModula:
		return "Final Modula-2+"
	case InterruptOriginalModula:
		return "Original Modula-2+"
	default:
		return "Assembly language"
	}
}

// Config describes one simulated configuration: the machine, the software
// variant, and any §4.2 hypothetical improvements. NewConfig returns the
// configuration the paper measured.
type Config struct {
	// CallerCPUs and ServerCPUs are the processors available to the
	// scheduler on each machine (Tables X, XI vary these; 5 is standard).
	CallerCPUs int
	ServerCPUs int

	// CPUSpeedup divides every software cost (§4.2.3 uses 3).
	CPUSpeedup float64

	// NetworkMbps is the Ethernet bit rate (§4.2.2 uses 100).
	NetworkMbps float64

	// QBusMbps is the I/O bus transfer rate through the DEQNA (16).
	QBusMbps float64

	// UDPChecksums enables software end-to-end checksums (§4.2.4 omits).
	UDPChecksums bool

	// OverlapController models a controller that fully overlaps QBus and
	// Ethernet transfers (§4.2.1): per-packet controller latency becomes
	// max(QBus, Ethernet) rather than their sum.
	OverlapController bool

	// RedesignedHeader models the easier-to-interpret RPC header and better
	// hash (§4.2.5): saves 100 µs per send+receive.
	RedesignedHeader bool

	// RawEthernet omits the IP and UDP layers (§4.2.6): saves 50 µs per
	// send+receive while retaining checksums.
	RawEthernet bool

	// BusyWait makes caller and server threads spin for incoming packets
	// (§4.2.7), eliminating the 220 µs wakeup at each end.
	BusyWait bool

	// RecodedRuntime models rewriting the RPC runtime (not stubs) in
	// machine code (§4.2.8): the 422 µs of Table VII runtime drops 3×.
	RecodedRuntime bool

	// Interrupt selects the Table IX interrupt-routine implementation.
	Interrupt InterruptImpl

	// ExerciserStubs uses the RPC Exerciser's hand-produced stubs (§5):
	// 140 µs faster than standard stubs and no marshalling copies.
	ExerciserStubs bool

	// ServerThreads is the number of server threads kept waiting in the
	// call table (the fast path requires one per concurrent call).
	ServerThreads int

	// TimingJitter is the fractional variability (±) applied to software
	// execution times by the machine model: real handlers vary with cache
	// and memory contention, and without this the simulator's perfectly
	// deterministic threads convoy in lockstep, which real multithreaded
	// runs do not.
	TimingJitter float64

	// TraditionalDemux abandons the §3.2 optimization of demultiplexing RPC
	// packets in the Ethernet interrupt routine: instead the handler wakes a
	// datalink thread which demultiplexes and then wakes the RPC thread,
	// doubling the wakeups per packet ("the traditional approach lowers the
	// amount of processing in the interrupt handler, but doubles the number
	// of wakeups required for an RPC").
	TraditionalDemux bool

	// SecureBuffers abandons the §3.2 shared packet-buffer pool: packets are
	// copied between protection domains instead of being read in place, as a
	// time-sharing system would require ("the more secure buffer management
	// required would introduce extra mapping or copying operations").
	SecureBuffers bool

	// SwappedLines applies the §5 fix: a few statements reordered to repair
	// uniprocessor performance, at ~100 µs extra multiprocessor latency per
	// call. Without it, uniprocessor machines lose about a packet a second
	// and pay the 600 ms retransmission penalty. Tables X and XI were
	// measured with the fix installed; the other tables without.
	SwappedLines bool
}

// NewConfig returns the configuration of the measured system: 5 CPUs per
// machine, 10 Mb/s Ethernet, UDP checksums on, assembly interrupt routine,
// standard automatically generated stubs.
func NewConfig() Config {
	return Config{
		CallerCPUs:    5,
		ServerCPUs:    5,
		CPUSpeedup:    1,
		NetworkMbps:   10,
		QBusMbps:      16,
		UDPChecksums:  true,
		Interrupt:     InterruptAssembly,
		ServerThreads: 8,
		TimingJitter:  0.05,
	}
}

// sw scales a software cost by the CPU speedup.
func (c *Config) sw(usec float64) time.Duration {
	if c.CPUSpeedup > 1 {
		usec /= c.CPUSpeedup
	}
	return us(usec)
}

// ---------------------------------------------------------------------------
// Table VI: the send+receive operation.
// ---------------------------------------------------------------------------

// FinishUDPHeader is the Sender's header completion time (59 µs), less the
// §4.2.5/§4.2.6 savings if configured.
func (c *Config) FinishUDPHeader() time.Duration {
	v := 59.0
	if c.RedesignedHeader {
		v -= 50 // half the 100 µs per-send+receive saving lands here
	}
	if c.RawEthernet {
		v -= 25
	}
	if v < 5 {
		v = 5
	}
	return c.sw(v)
}

// ChecksumCost is the software UDP checksum time for a packet of the given
// total length: 45 µs at 74 bytes and 440 µs at 1514 bytes, interpolated
// linearly in the checksummed bytes. Zero when checksums are off.
func (c *Config) ChecksumCost(packetLen int) time.Duration {
	if !c.UDPChecksums {
		return 0
	}
	v := interp(packetLen, 45, 440)
	return c.sw(v)
}

// interp linearly interpolates/extrapolates a cost between the paper's
// 74-byte and 1514-byte columns.
func interp(packetLen int, at74, at1514 float64) float64 {
	return at74 + (at1514-at74)*float64(packetLen-SmallPacketBytes)/
		float64(LargePacketBytes-SmallPacketBytes)
}

// HandleTrap is the kernel-trap entry/exit cost (37 µs).
func (c *Config) HandleTrap() time.Duration { return c.sw(37) }

// QueuePacket is the driver's cost to queue a packet for transmission (39 µs).
func (c *Config) QueuePacket() time.Duration { return c.sw(39) }

// IPILatency is the interprocessor-interrupt delivery delay to CPU 0 (10 µs,
// estimated in the paper). It is a hardware latency, not CPU work.
func (c *Config) IPILatency() time.Duration { return us(10) }

// HandleIPI is CPU 0's interprocessor-interrupt handling (76 µs).
func (c *Config) HandleIPI() time.Duration { return c.sw(76) }

// ActivateController prods the DEQNA into action (22 µs, on CPU 0).
func (c *Config) ActivateController() time.Duration { return c.sw(22) }

// QBusTransmit is the controller's QBus read latency before transmission:
// 70 µs at 74 bytes, 815 µs at 1514 bytes (no cut-through), scaled if the
// QBus rate is changed from 16 Mb/s.
func (c *Config) QBusTransmit(packetLen int) time.Duration {
	v := interp(packetLen, 70, 815)
	v *= 16 / c.QBusMbps
	return us(v)
}

// EthernetTransmit is the wire time: 60 µs at 74 bytes, 1230 µs at 1514
// bytes on the 10 Mb/s Ethernet, scaled by the configured bit rate.
func (c *Config) EthernetTransmit(packetLen int) time.Duration {
	v := interp(packetLen, 60, 1230)
	v *= 10 / c.NetworkMbps
	return us(v)
}

// QBusReceive is the controller's QBus write latency after reception:
// 80 µs at 74 bytes, 835 µs at 1514 bytes.
func (c *Config) QBusReceive(packetLen int) time.Duration {
	v := interp(packetLen, 80, 835)
	v *= 16 / c.QBusMbps
	return us(v)
}

// ControllerTxLatency is the total controller delay from activation to the
// last bit on the wire. Without overlap (the DEQNA) it is QBus + Ethernet;
// the §4.2.1 controller overlaps them.
func (c *Config) ControllerTxLatency(packetLen int) time.Duration {
	q, e := c.QBusTransmit(packetLen), c.EthernetTransmit(packetLen)
	if c.OverlapController {
		if q > e {
			return q
		}
		return e
	}
	return q + e
}

// ControllerRxLatency is the delay from last bit received to the packet in
// memory. With the overlapping controller the QBus write overlaps reception,
// leaving only a small residue.
func (c *Config) ControllerRxLatency(packetLen int) time.Duration {
	q := c.QBusReceive(packetLen)
	if c.OverlapController {
		return q / 8 // residual flush after cut-through
	}
	return q
}

// GeneralIOInterrupt is the generic interrupt-dispatch prologue (14 µs).
func (c *Config) GeneralIOInterrupt() time.Duration { return c.sw(14) }

// HandleReceivedPacket is the Ethernet interrupt routine's main path
// (Table IX; 177 µs in assembly), less §4.2.5/§4.2.6 savings.
func (c *Config) HandleReceivedPacket() time.Duration {
	v := float64(c.Interrupt.Cost()) / float64(time.Microsecond)
	if c.RedesignedHeader {
		v -= 50
	}
	if c.RawEthernet {
		v -= 25
	}
	if v < 20 {
		v = 20
	}
	return c.sw(v)
}

// WakeupThread is the scheduler cost to awaken the waiting RPC thread from
// the interrupt routine (220 µs). Busy-waiting threads (§4.2.7) skip it.
func (c *Config) WakeupThread() time.Duration {
	if c.BusyWait {
		return c.sw(20) // flag set + spinning thread notices
	}
	return c.sw(220)
}

// SendReceiveTotal sums Table VI for a packet of the given length — 954 µs
// at 74 bytes and 4414 µs at 1514 bytes in the measured configuration.
func (c *Config) SendReceiveTotal(packetLen int) time.Duration {
	return c.FinishUDPHeader() +
		c.ChecksumCost(packetLen) +
		c.HandleTrap() +
		c.QueuePacket() +
		c.IPILatency() +
		c.HandleIPI() +
		c.ActivateController() +
		c.QBusTransmit(packetLen) +
		c.EthernetTransmit(packetLen) +
		c.QBusReceive(packetLen) +
		c.GeneralIOInterrupt() +
		c.HandleReceivedPacket() +
		c.ChecksumCost(packetLen) +
		c.WakeupThread()
}

// Step is one named row of Table VI or VII.
type Step struct {
	Name  string
	Cost  time.Duration
	Where string // "sender", "wire", "receiver", "caller", "server"
}

// SendReceiveSteps returns Table VI's rows for a packet of the given length.
func (c *Config) SendReceiveSteps(packetLen int) []Step {
	return []Step{
		{"Finish UDP header (Sender)", c.FinishUDPHeader(), "sender"},
		{"Calculate UDP checksum", c.ChecksumCost(packetLen), "sender"},
		{"Handle trap to Nub", c.HandleTrap(), "sender"},
		{"Queue packet for transmission", c.QueuePacket(), "sender"},
		{"Interprocessor interrupt to CPU 0", c.IPILatency(), "sender"},
		{"Handle interprocessor interrupt", c.HandleIPI(), "sender"},
		{"Activate Ethernet controller", c.ActivateController(), "sender"},
		{"QBus/Controller transmit latency", c.QBusTransmit(packetLen), "wire"},
		{"Transmission time on Ethernet", c.EthernetTransmit(packetLen), "wire"},
		{"QBus/Controller receive latency", c.QBusReceive(packetLen), "wire"},
		{"General I/O interrupt handler", c.GeneralIOInterrupt(), "receiver"},
		{"Handle interrupt for received pkt", c.HandleReceivedPacket(), "receiver"},
		{"Calculate UDP checksum", c.ChecksumCost(packetLen), "receiver"},
		{"Wakeup RPC thread", c.WakeupThread(), "receiver"},
	}
}
