package costmodel

import (
	"testing"
	"time"
)

func TestOverlapControllerLatencies(t *testing.T) {
	std, ovl := NewConfig(), NewConfig()
	ovl.OverlapController = true
	// Without overlap: tx = QBus + Ethernet; with: max of the two.
	if std.ControllerTxLatency(1514) != std.QBusTransmit(1514)+std.EthernetTransmit(1514) {
		t.Fatal("standard controller must serialize QBus and Ethernet")
	}
	if ovl.ControllerTxLatency(1514) != ovl.EthernetTransmit(1514) {
		t.Fatal("overlap controller tx must be the Ethernet time (the longer)")
	}
	// For tiny packets the QBus leg can dominate the overlap maximum.
	fast := NewConfig()
	fast.OverlapController = true
	fast.NetworkMbps = 1000
	if fast.ControllerTxLatency(74) != fast.QBusTransmit(74) {
		t.Fatal("overlap controller must take the max leg")
	}
	if ovl.ControllerRxLatency(1514) >= std.ControllerRxLatency(1514) {
		t.Fatal("overlap controller rx must shrink")
	}
}

func TestRawEthernetAndHeaderFloors(t *testing.T) {
	c := NewConfig()
	c.RedesignedHeader = true
	c.RawEthernet = true
	c.CPUSpeedup = 100 // drive everything toward the floors
	if c.FinishUDPHeader() <= 0 {
		t.Fatal("header cost must stay positive")
	}
	if c.HandleReceivedPacket() <= 0 {
		t.Fatal("interrupt cost must stay positive")
	}
}

func TestBusyWaitWakeup(t *testing.T) {
	c, std := NewConfig(), NewConfig()
	c.BusyWait = true
	if c.WakeupThread() >= std.WakeupThread() {
		t.Fatal("busy wait must shrink the wakeup cost")
	}
}

func TestQBusScaling(t *testing.T) {
	std, fast := NewConfig(), NewConfig()
	fast.QBusMbps = 32
	if fast.QBusTransmit(1514) != std.QBusTransmit(1514)/2 {
		t.Fatalf("doubling QBus rate must halve transfer time: %v vs %v",
			fast.QBusTransmit(1514), std.QBusTransmit(1514))
	}
	if fast.QBusReceive(1514) != std.QBusReceive(1514)/2 {
		t.Fatal("QBus receive must scale too")
	}
}

func TestSwappedLinesPenalty(t *testing.T) {
	c := NewConfig()
	if c.SwappedLinesPenalty(5) != 0 {
		t.Fatal("no penalty without the fix installed")
	}
	c.SwappedLines = true
	if c.SwappedLinesPenalty(5) != 50*time.Microsecond {
		t.Fatal("multiprocessor penalty must be 50 µs per machine")
	}
	if c.SwappedLinesPenalty(1) != 0 {
		t.Fatal("uniprocessors skip the multiprocessor penalty")
	}
}

func TestUnswappedDropProb(t *testing.T) {
	c := NewConfig()
	if c.UnswappedUniprocDropProb(1) != 1.0/500 {
		t.Fatal("unswapped uniprocessor must drop ~1/500")
	}
	if c.UnswappedUniprocDropProb(5) != 0 {
		t.Fatal("multiprocessors do not exhibit the bug")
	}
	c.SwappedLines = true
	if c.UnswappedUniprocDropProb(1) != 0 {
		t.Fatal("the fix eliminates the drops")
	}
}

func TestSecureBufferCopy(t *testing.T) {
	c := NewConfig()
	if c.SecureBufferCopy(1514) != 0 {
		t.Fatal("no copy cost with shared buffers")
	}
	c.SecureBuffers = true
	small, big := c.SecureBufferCopy(74), c.SecureBufferCopy(1514)
	if small <= 0 || big <= small {
		t.Fatalf("copy cost must grow with size: %v, %v", small, big)
	}
	// ~40 + 0.3/byte: 74 B ≈ 62 µs, 1514 B ≈ 494 µs.
	if usec(big) < 480 || usec(big) > 510 {
		t.Fatalf("1514-byte copy = %v µs, want ~494", usec(big))
	}
}

func TestRetransAndScheduleConstants(t *testing.T) {
	c := NewConfig()
	if c.RetransTimeout() != 600*time.Millisecond {
		t.Fatal("retransmission timeout must be the paper's ~600 ms")
	}
	if c.MaxRetransmits() <= 0 {
		t.Fatal("retransmit bound must be positive")
	}
	if c.DispatchSlop() <= 0 || c.SlowWakeupExtra() <= 0 ||
		c.ContextSwitch() <= 0 || c.UniprocCallerExtra() <= 0 {
		t.Fatal("scheduler constants must be positive")
	}
	if c.UniprocServerExtra() < 0 || c.NubDeferredSend() <= 0 ||
		c.NubDeferredWakeup() <= 0 || c.ControllerRecovery() <= 0 {
		t.Fatal("calibration constants out of range")
	}
	if c.IdleLoadFraction() != 0.15 {
		t.Fatal("idle load must be the paper's ~0.15 CPUs")
	}
	if c.DatalinkDemux() <= 0 || c.LocalTransportHalf() <= 0 {
		t.Fatal("transport constants must be positive")
	}
}

func TestMarshalFixedArrayFloor(t *testing.T) {
	c := NewConfig()
	if c.MarshalFixedArray(0) < 0 {
		t.Fatal("marshal cost must not go negative")
	}
}

func TestExerciserZeroesMarshalling(t *testing.T) {
	c := NewConfig()
	c.ExerciserStubs = true
	if c.MarshalInts(4) != 0 || c.MarshalFixedArray(400) != 0 ||
		c.MarshalVarArray(1440) != 0 || c.MarshalText(128, false) != 0 {
		t.Fatal("exerciser stubs do no marshalling")
	}
}

func TestLocalNullFootnoteIdentity(t *testing.T) {
	// 937 µs = Table VII (minus the 16 µs loop) + two local transport
	// halves + two dispatch slops.
	c := NewConfig()
	total := usec(c.StubRuntimeTotal()) - usec(c.CallerLoop()) +
		2*usec(c.LocalTransportHalf()) + 2*usec(c.DispatchSlop())
	if total != 937 {
		t.Fatalf("local Null model = %v µs, want 937 (footnote)", total)
	}
}
