package realbench

import (
	"math"
	"testing"
)

// The acceptance gate for wire-propagated tracing: a two-hop chained call
// (client → server A → server B, bound through the registry) must produce
// one causally linked Perfetto-renderable trace per call — the A→B span a
// child of the client→A span — and the joined stage accounting must
// telescope: stage sums within 10% of measured end-to-end latency.
func TestChainSpansLinked(t *testing.T) {
	const calls = 32
	rep, err := ChainSpans(calls)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("spans=%d roots=%d children=%d orphans=%d accounted=%d unaccounted=%+.2f%%",
		len(rep.Spans), rep.Roots, rep.Children, rep.Orphans,
		rep.Accounting.Calls, 100*rep.Unaccounted)

	if !rep.Linked() {
		t.Fatalf("trace not causally complete: roots=%d children=%d orphans=%d",
			rep.Roots, rep.Children, rep.Orphans)
	}
	if rep.Roots != calls {
		t.Errorf("roots = %d, want %d (one per chained call)", rep.Roots, calls)
	}
	// Every child must share its parent's trace id and carry both endpoints'
	// stamps (the wire prefix reached B and B's ring joined in).
	roots := make(map[uint64]uint64) // span id -> trace id
	for i := range rep.Spans {
		if rep.Spans[i].Parent == 0 {
			roots[rep.Spans[i].SpanID] = rep.Spans[i].TraceID
		}
	}
	for i := range rep.Spans {
		s := &rep.Spans[i]
		if s.Parent == 0 {
			continue
		}
		if tid, ok := roots[s.Parent]; !ok || tid != s.TraceID {
			t.Fatalf("child span %x: parent %x not a root of trace %x", s.SpanID, s.Parent, s.TraceID)
		}
		if s.StartNs() == 0 || s.EndNs() <= s.StartNs() {
			t.Errorf("child span %x has degenerate bounds [%d, %d]", s.SpanID, s.StartNs(), s.EndNs())
		}
	}
	if rep.Accounting.Calls == 0 {
		t.Fatal("no fully stamped calls in the joined accounting")
	}
	if math.Abs(rep.Unaccounted) > 0.10 {
		t.Errorf("stage sums leave %+.2f%% of e2e unaccounted (gate 10%%)", 100*rep.Unaccounted)
	}
}

// TraceOverhead must run end to end over the exchange; the ratio itself is
// gated in CI (-traceoverhead, ≤1.05), not here, where a loaded test runner
// would make a tight bound flaky. A wildly out-of-bounds ratio still fails:
// that is a mechanism bug, not noise.
func TestTraceOverheadRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res, err := TraceOverhead(4000, 64)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("off: %.0f ns/op  on: %.0f ns/op  ratio: %.3f",
		res.Off.NsPerOp, res.On.NsPerOp, res.Ratio)
	if res.Off.NsPerOp <= 0 || res.On.NsPerOp <= 0 {
		t.Fatal("side did not measure")
	}
	if res.Ratio > 2.0 {
		t.Errorf("tracing-on ratio %.2fx — far above any plausible overhead", res.Ratio)
	}
}
