package realbench

import (
	"context"
	"time"

	"fireflyrpc/internal/core"
	"fireflyrpc/internal/testsvc"
)

// The trace-overhead cell: the acceptance witness for the tracing-on cost
// bound. It runs the same async Null fan-out workload twice in one process
// over the in-process exchange — once with tracing fully off, once at the
// production always-on posture (1-in-64 sampling plus wire trace-context
// propagation) — and reports the self-relative ratio. Rounds alternate
// between the two sides and each side keeps its best round, so machine-wide
// drift (thermal, co-tenants) cancels out of the ratio the CI gate bounds.

// TraceSide is one half of a TraceOverheadResult.
type TraceSide struct {
	Traced      bool    `json:"traced"`
	Calls       int     `json:"calls"` // per measured round
	NsPerOp     float64 `json:"ns_per_op"`
	CallsPerSec float64 `json:"calls_per_sec"`
}

// TraceOverheadResult is the full comparison.
type TraceOverheadResult struct {
	Outstanding int       `json:"outstanding"`
	Rounds      int       `json:"rounds"`
	Off         TraceSide `json:"off"`
	On          TraceSide `json:"on"`
	Ratio       float64   `json:"ratio"` // tracing-on ns/op ÷ tracing-off ns/op
}

// Exceeds reports whether the measured overhead crossed the bound (e.g.
// 1.05 for the ≤5% CI gate).
func (r *TraceOverheadResult) Exceeds(bound float64) bool { return r.Ratio > bound }

// traceSideState is one warmed pair plus its fan-out driver.
type traceSideState struct {
	cl   *core.Client
	pend []*core.Pending
	done func()
}

func newTraceSide(traced bool, outstanding int) (*traceSideState, error) {
	p, done, err := pair(trOpts{traced: traced}, 8, nil, 0)
	if err != nil {
		return nil, err
	}
	return &traceSideState{cl: p.binding.NewClient(), pend: make([]*core.Pending, 0, outstanding), done: done}, nil
}

// round drives n async Null calls at the side's fan-out width.
func (s *traceSideState) round(n, outstanding int) error {
	ctx := context.Background()
	for n > 0 {
		b := outstanding
		if n < b {
			b = n
		}
		s.pend = s.pend[:0]
		for j := 0; j < b; j++ {
			pd, err := s.cl.Go(ctx, testsvc.TestProcNull, 0, nil)
			if err != nil {
				return err
			}
			s.pend = append(s.pend, pd)
		}
		for _, pd := range s.pend {
			if err := pd.Await(ctx, nil); err != nil {
				return err
			}
		}
		n -= b
	}
	return nil
}

// TraceOverhead measures the tracing-on/off async Null ratio over the
// exchange. calls is the per-round call count; zero values pick defaults
// sized for a CI smoke.
func TraceOverhead(calls, outstanding int) (*TraceOverheadResult, error) {
	if calls <= 0 {
		calls = 20000
	}
	if outstanding <= 0 {
		outstanding = 64
	}
	const rounds = 5

	off, err := newTraceSide(false, outstanding)
	if err != nil {
		return nil, err
	}
	defer off.done()
	on, err := newTraceSide(true, outstanding)
	if err != nil {
		return nil, err
	}
	defer on.done()

	// Warm pools, slots, and (on the traced side) the FeatTrace session
	// before any round is timed.
	for i := 0; i < 4; i++ {
		if err := off.round(outstanding, outstanding); err != nil {
			return nil, err
		}
		if err := on.round(outstanding, outstanding); err != nil {
			return nil, err
		}
	}

	res := &TraceOverheadResult{
		Outstanding: outstanding,
		Rounds:      rounds,
		Off:         TraceSide{Traced: false, Calls: calls},
		On:          TraceSide{Traced: true, Calls: calls},
	}
	measure := func(s *traceSideState, side *TraceSide) error {
		start := time.Now()
		if err := s.round(calls, outstanding); err != nil {
			return err
		}
		ns := float64(time.Since(start).Nanoseconds()) / float64(calls)
		if side.NsPerOp == 0 || ns < side.NsPerOp {
			side.NsPerOp = ns
		}
		return nil
	}
	for i := 0; i < rounds; i++ {
		if err := measure(off, &res.Off); err != nil {
			return nil, err
		}
		if err := measure(on, &res.On); err != nil {
			return nil, err
		}
	}
	if res.Off.NsPerOp > 0 {
		res.Off.CallsPerSec = 1e9 / res.Off.NsPerOp
		res.Ratio = res.On.NsPerOp / res.Off.NsPerOp
	}
	if res.On.NsPerOp > 0 {
		res.On.CallsPerSec = 1e9 / res.On.NsPerOp
	}
	return res, nil
}
