package realbench

import (
	"strings"
	"testing"
)

func baseSuite() Suite {
	return Suite{
		Generated: "2026-01-01T00:00:00Z",
		Results: []Result{
			{Bench: "Null", Transport: "mem", Threads: 1, N: 100000, NsPerOp: 2400, AllocsPerOp: 1, CallsPerSec: 416000},
			{Bench: "Null", Transport: "udp", Threads: 1, N: 50000, NsPerOp: 21000, AllocsPerOp: 10, CallsPerSec: 47000},
			{Bench: "MaxResult", Transport: "mem", Threads: 4, N: 40000, NsPerOp: 8000, AllocsPerOp: 3, CallsPerSec: 125000},
		},
	}
}

// TestDiffCleanRun: an identical re-run passes with no warnings.
func TestDiffCleanRun(t *testing.T) {
	s := baseSuite()
	rep := Diff(s, s, DefaultDiffOptions())
	if rep.Failed() || rep.Warnings != 0 {
		t.Fatalf("identical suites flagged: %s", rep.Format())
	}
	if len(rep.Cells) != 3 {
		t.Fatalf("compared %d cells, want 3", len(rep.Cells))
	}
}

// TestDiffInjectedTimeRegression: tripling one cell's latency must fail.
func TestDiffInjectedTimeRegression(t *testing.T) {
	old, cur := baseSuite(), baseSuite()
	cur.Results[1].NsPerOp *= 3
	rep := Diff(old, cur, DefaultDiffOptions())
	if !rep.Failed() {
		t.Fatalf("3x latency regression not failed: %s", rep.Format())
	}
	if rep.Failures != 1 {
		t.Errorf("failures = %d, want 1", rep.Failures)
	}
	if !strings.Contains(rep.Format(), "Null/udp") {
		t.Errorf("report does not name the regressed cell:\n%s", rep.Format())
	}
}

// TestDiffInjectedAllocRegression: one extra alloc/op fails even when the
// time thresholds are disabled (the cross-machine CI configuration).
func TestDiffInjectedAllocRegression(t *testing.T) {
	old, cur := baseSuite(), baseSuite()
	cur.Results[0].AllocsPerOp = 2
	opt := DefaultDiffOptions()
	opt.FailRatio = 0 // CI mode: allocations only
	rep := Diff(old, cur, opt)
	if !rep.Failed() {
		t.Fatalf("alloc regression not failed: %s", rep.Format())
	}
	// With slack it passes.
	opt.AllocSlack = 1
	if rep := Diff(old, cur, opt); rep.Failed() {
		t.Fatalf("alloc within slack failed: %s", rep.Format())
	}
}

// TestDiffWarnBand: a +40% slowdown warns but does not fail.
func TestDiffWarnBand(t *testing.T) {
	old, cur := baseSuite(), baseSuite()
	cur.Results[2].NsPerOp *= 1.4
	rep := Diff(old, cur, DefaultDiffOptions())
	if rep.Failed() {
		t.Fatalf("+40%% slowdown failed outright: %s", rep.Format())
	}
	if rep.Warnings != 1 {
		t.Errorf("warnings = %d, want 1: %s", rep.Warnings, rep.Format())
	}
}

// TestDiffNoiseFloor: sub-floor cells are never time-compared.
func TestDiffNoiseFloor(t *testing.T) {
	old, cur := baseSuite(), baseSuite()
	old.Results[0].NsPerOp = 50
	cur.Results[0].NsPerOp = 150 // 3x, but both under the 200 ns floor
	rep := Diff(old, cur, DefaultDiffOptions())
	if rep.Failed() || rep.Warnings != 0 {
		t.Fatalf("noise-floor cells compared: %s", rep.Format())
	}
}

// TestDiffSubsetRun: a smoke run covering one cell is reported but passes.
func TestDiffSubsetRun(t *testing.T) {
	old, cur := baseSuite(), baseSuite()
	cur.Results = cur.Results[:1]
	rep := Diff(old, cur, DefaultDiffOptions())
	if rep.Failed() {
		t.Fatalf("subset run failed: %s", rep.Format())
	}
	if len(rep.MissingNew) != 2 {
		t.Errorf("missing-new = %v, want 2 entries", rep.MissingNew)
	}
	if !strings.Contains(rep.Format(), "subset") {
		t.Errorf("report does not mention subset coverage:\n%s", rep.Format())
	}
}

// TestDiffImprovement: a big speedup is reported as improved, not ok.
func TestDiffImprovement(t *testing.T) {
	old, cur := baseSuite(), baseSuite()
	cur.Results[1].NsPerOp /= 2
	rep := Diff(old, cur, DefaultDiffOptions())
	if rep.Failed() || rep.Warnings != 0 {
		t.Fatalf("improvement flagged: %s", rep.Format())
	}
	found := false
	for _, c := range rep.Cells {
		if c.Level == DiffImproved {
			found = true
		}
	}
	if !found {
		t.Errorf("2x speedup not marked improved: %s", rep.Format())
	}
}

// TestDiffProfileIsolation: a cell measured under a faultnet profile keys
// separately from the clean cell with the same (bench, transport, threads),
// so an impaired run is never compared against the clean baseline — it
// shows up as missing-baseline coverage instead of a 100× "regression".
func TestDiffProfileIsolation(t *testing.T) {
	old := baseSuite()
	cur := baseSuite()
	cur.Results = append(cur.Results, Result{
		Bench: "Null", Transport: "mem", Threads: 1, Profile: "loss0.1",
		N: 1000, NsPerOp: 240000, AllocsPerOp: 9, CallsPerSec: 4100,
	})
	rep := Diff(old, cur, DefaultDiffOptions())
	if rep.Failed() || rep.Warnings != 0 {
		t.Fatalf("impaired cell compared against clean baseline: %s", rep.Format())
	}
	if len(rep.MissingOld) != 1 || !strings.Contains(rep.MissingOld[0], "@loss0.1") {
		t.Fatalf("impaired cell not keyed into its own namespace: %v", rep.MissingOld)
	}
}

// TestDiffTraceIsolation: a tracing-on cell keys into the @trace namespace,
// so the (deliberate, bounded) tracing cost is gated against a traced
// baseline and never reads as a regression of the untraced cells.
func TestDiffTraceIsolation(t *testing.T) {
	old := baseSuite()
	cur := baseSuite()
	cur.Results = append(cur.Results, Result{
		Bench: "NullAsync", Transport: "mem", Threads: 1, Outstanding: 8, Traced: true,
		N: 1000, NsPerOp: 2600, AllocsPerOp: 2, CallsPerSec: 384000,
	})
	rep := Diff(old, cur, DefaultDiffOptions())
	if rep.Failed() || rep.Warnings != 0 {
		t.Fatalf("traced cell compared against untraced baseline: %s", rep.Format())
	}
	if len(rep.MissingOld) != 1 || !strings.Contains(rep.MissingOld[0], "@trace") {
		t.Fatalf("traced cell not keyed into its own namespace: %v", rep.MissingOld)
	}
}
