package realbench

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// DiffOptions tunes the regression comparison. Benchmark time is noisy —
// especially across machines, where it is meaningless — so time thresholds
// are ratios with a floor below which cells are never compared, while
// allocation counts are deterministic and gate on an absolute slack.
type DiffOptions struct {
	// WarnRatio flags new/old ns-per-op ratios above it. Zero disables.
	WarnRatio float64
	// FailRatio fails ns-per-op ratios above it. Zero disables (CI compares
	// runs from different machines and gates on allocations only).
	FailRatio float64
	// AllocSlack is the allowed increase in allocs/op before a cell fails.
	AllocSlack int64
	// MinNs is the noise floor: cells where both sides are faster than this
	// are never time-compared.
	MinNs float64
}

// DefaultDiffOptions: warn at +30% time, fail at 2× time, no allocation
// growth, 200 ns noise floor.
func DefaultDiffOptions() DiffOptions {
	return DiffOptions{WarnRatio: 1.30, FailRatio: 2.0, AllocSlack: 0, MinNs: 200}
}

// DiffLevel classifies one compared cell.
type DiffLevel int

const (
	DiffOK DiffLevel = iota
	DiffImproved
	DiffWarn
	DiffFail
)

func (l DiffLevel) String() string {
	switch l {
	case DiffImproved:
		return "improved"
	case DiffWarn:
		return "WARN"
	case DiffFail:
		return "FAIL"
	default:
		return "ok"
	}
}

// DiffCell is the comparison of one benchmark cell present in both suites.
type DiffCell struct {
	Key       string
	Level     DiffLevel
	Reason    string
	OldNs     float64
	NewNs     float64
	OldAllocs int64
	NewAllocs int64
}

// DiffReport is the full cell-by-cell comparison of two benchmark suites.
type DiffReport struct {
	Cells      []DiffCell
	MissingOld []string // cells only in the new suite
	MissingNew []string // cells only in the old suite (not run this time)
	Warnings   int
	Failures   int
}

// Failed reports whether any cell crossed a fail threshold.
func (r *DiffReport) Failed() bool { return r.Failures > 0 }

func cellKey(r Result) string {
	k := fmt.Sprintf("%s/%s/t%d/o%d", r.Bench, r.Transport, r.Threads, r.Outstanding)
	// Impaired cells live in their own namespace: a run under a faultnet
	// profile must never be diffed against the clean baseline (or against a
	// run under a different profile) — the comparison would be meaningless.
	if r.Profile != "" {
		k += "@" + r.Profile
	}
	// Batched-datapath cells get their own namespace for the same reason:
	// per-frame and batched runs are different machines' worth of syscall
	// behavior and must only diff against themselves.
	if r.Batch {
		k += "@batch"
	}
	// Traced cells likewise: tracing-on runs carry the sampling and wire-
	// prefix cost by design, and gate against a traced baseline only.
	if r.Traced {
		k += "@trace"
	}
	// Cluster cells (replica-set balancer in front of N servers) are a
	// different call path entirely — and hedged cells deliberately issue
	// extra wire calls — so each (replica count, hedged) combination gates
	// only against itself.
	if r.Replicas > 0 {
		k += fmt.Sprintf("@cluster%d", r.Replicas)
		if r.Hedged {
			k += "+hedge"
		}
	}
	return k
}

// ReadSuite loads a BENCH_realstack.json.
func ReadSuite(path string) (Suite, error) {
	var s Suite
	data, err := os.ReadFile(path)
	if err != nil {
		return s, err
	}
	if err := json.Unmarshal(data, &s); err != nil {
		return s, fmt.Errorf("%s: %v", path, err)
	}
	if len(s.Results) == 0 {
		return s, fmt.Errorf("%s: no results", path)
	}
	return s, nil
}

// Diff compares two suites cell by cell. Cells present on only one side are
// reported but never fail the diff: a smoke run legitimately covers a subset
// of the committed baseline.
func Diff(old, new Suite, opt DiffOptions) *DiffReport {
	oldBy := make(map[string]Result, len(old.Results))
	for _, r := range old.Results {
		oldBy[cellKey(r)] = r
	}
	newBy := make(map[string]Result, len(new.Results))
	for _, r := range new.Results {
		newBy[cellKey(r)] = r
	}

	rep := &DiffReport{}
	var keys []string
	for k := range oldBy {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		o := oldBy[k]
		n, ok := newBy[k]
		if !ok {
			rep.MissingNew = append(rep.MissingNew, k)
			continue
		}
		rep.Cells = append(rep.Cells, compareCell(k, o, n, opt))
	}
	for k := range newBy {
		if _, ok := oldBy[k]; !ok {
			rep.MissingOld = append(rep.MissingOld, k)
		}
	}
	sort.Strings(rep.MissingOld)
	for _, c := range rep.Cells {
		switch c.Level {
		case DiffWarn:
			rep.Warnings++
		case DiffFail:
			rep.Failures++
		}
	}
	return rep
}

func compareCell(key string, o, n Result, opt DiffOptions) DiffCell {
	c := DiffCell{
		Key:   key,
		OldNs: o.NsPerOp, NewNs: n.NsPerOp,
		OldAllocs: o.AllocsPerOp, NewAllocs: n.AllocsPerOp,
	}
	// Allocations are machine-independent: any growth beyond the slack is a
	// real regression regardless of where the two suites ran.
	if n.AllocsPerOp > o.AllocsPerOp+opt.AllocSlack {
		c.Level = DiffFail
		c.Reason = fmt.Sprintf("allocs/op %d -> %d (slack %d)", o.AllocsPerOp, n.AllocsPerOp, opt.AllocSlack)
		return c
	}
	// Time: ratio thresholds above a noise floor.
	if o.NsPerOp > 0 && (o.NsPerOp >= opt.MinNs || n.NsPerOp >= opt.MinNs) {
		ratio := n.NsPerOp / o.NsPerOp
		switch {
		case opt.FailRatio > 0 && ratio > opt.FailRatio:
			c.Level = DiffFail
			c.Reason = fmt.Sprintf("ns/op %.0f -> %.0f (%.2fx > fail %.2fx)", o.NsPerOp, n.NsPerOp, ratio, opt.FailRatio)
			return c
		case opt.WarnRatio > 0 && ratio > opt.WarnRatio:
			c.Level = DiffWarn
			c.Reason = fmt.Sprintf("ns/op %.0f -> %.0f (%.2fx > warn %.2fx)", o.NsPerOp, n.NsPerOp, ratio, opt.WarnRatio)
			return c
		case opt.WarnRatio > 0 && ratio < 1/opt.WarnRatio:
			c.Level = DiffImproved
			c.Reason = fmt.Sprintf("ns/op %.0f -> %.0f (%.2fx)", o.NsPerOp, n.NsPerOp, ratio)
			return c
		}
	}
	if n.AllocsPerOp < o.AllocsPerOp {
		c.Level = DiffImproved
		c.Reason = fmt.Sprintf("allocs/op %d -> %d", o.AllocsPerOp, n.AllocsPerOp)
	}
	return c
}

// Format renders the report as text: regressions first, then improvements,
// then a coverage summary.
func (r *DiffReport) Format() string {
	var sb strings.Builder
	ok := 0
	for _, c := range r.Cells {
		switch c.Level {
		case DiffFail, DiffWarn:
			fmt.Fprintf(&sb, "%-8s %-24s %s\n", c.Level, c.Key, c.Reason)
		case DiffOK:
			ok++
		}
	}
	for _, c := range r.Cells {
		if c.Level == DiffImproved {
			fmt.Fprintf(&sb, "%-8s %-24s %s\n", c.Level, c.Key, c.Reason)
		}
	}
	fmt.Fprintf(&sb, "%d cells compared: %d ok, %d improved, %d warnings, %d failures\n",
		len(r.Cells), ok, len(r.Cells)-ok-r.Warnings-r.Failures, r.Warnings, r.Failures)
	if len(r.MissingNew) > 0 {
		fmt.Fprintf(&sb, "%d baseline cells not in new run (subset run): %s\n",
			len(r.MissingNew), preview(r.MissingNew, 3))
	}
	if len(r.MissingOld) > 0 {
		fmt.Fprintf(&sb, "%d new cells with no baseline: %s\n",
			len(r.MissingOld), preview(r.MissingOld, 3))
	}
	return sb.String()
}

func preview(keys []string, n int) string {
	if len(keys) <= n {
		return strings.Join(keys, ", ")
	}
	return strings.Join(keys[:n], ", ") + ", …"
}
