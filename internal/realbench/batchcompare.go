package realbench

import (
	"context"
	"time"

	"fireflyrpc/internal/core"
	"fireflyrpc/internal/testsvc"
)

// The batch comparison cell: the acceptance witness for the batched UDP
// datapath. It runs the same async Null fan-out workload twice in one
// process — once over per-frame ListenUDP, once over ListenUDPBatch — and
// reports the self-relative speedup plus syscalls/call derived from the
// transport's own batch counters. Running both sides back to back on the
// same machine removes cross-machine noise from the ratio.

// BatchSide is one half of a BatchCompareResult.
type BatchSide struct {
	Batch       bool    `json:"batch"`
	Calls       int     `json:"calls"`
	NsPerOp     float64 `json:"ns_per_op"`
	CallsPerSec float64 `json:"calls_per_sec"`

	// Caller-side transport counters over the measured window. For the
	// per-frame path SendBatches == SendFrames (one syscall per frame);
	// for the batched path the gap between them is the amortization.
	SendFrames      int64   `json:"send_frames"`
	SendBatches     int64   `json:"send_batches"`
	RecvFrames      int64   `json:"recv_frames"`
	RecvBatches     int64   `json:"recv_batches"`
	MaxSendBatch    int64   `json:"max_send_batch"`
	GSOSends        int64   `json:"gso_sends"`
	SyscallsPerCall float64 `json:"syscalls_per_call"` // (send+recv ops) / calls
}

// BatchCompareResult is the full comparison.
type BatchCompareResult struct {
	Outstanding int       `json:"outstanding"`
	PerFrame    BatchSide `json:"per_frame"`
	Batched     BatchSide `json:"batched"`
	Speedup     float64   `json:"speedup"` // per-frame ns/op ÷ batched ns/op
}

// batchCompareSide runs `calls` async Null calls at the given fan-out width
// over one transport flavor and captures timing plus the caller transport's
// counter deltas across the measured window.
func batchCompareSide(to trOpts, calls, outstanding int) (BatchSide, error) {
	side := BatchSide{Batch: to.batch, Calls: calls}
	p, done, err := pair(to, 8, nil, 0)
	if err != nil {
		return side, err
	}
	defer done()
	cl := p.binding.NewClient()
	ctx := context.Background()
	pend := make([]*core.Pending, 0, outstanding)

	round := func(n int) error {
		pend = pend[:0]
		for j := 0; j < n; j++ {
			pd, err := cl.Go(ctx, testsvc.TestProcNull, 0, nil)
			if err != nil {
				return err
			}
			pend = append(pend, pd)
		}
		for _, pd := range pend {
			if err := pd.Await(ctx, nil); err != nil {
				return err
			}
		}
		return nil
	}

	// Warm pools, the send queue, and the peer map before measuring.
	for i := 0; i < 4; i++ {
		if err := round(outstanding); err != nil {
			return side, err
		}
	}

	before, _ := p.caller.Conn().TransportStats()
	start := time.Now()
	for n := calls; n > 0; n -= outstanding {
		b := outstanding
		if n < b {
			b = n
		}
		if err := round(b); err != nil {
			return side, err
		}
	}
	elapsed := time.Since(start)
	after, ok := p.caller.Conn().TransportStats()

	side.NsPerOp = float64(elapsed.Nanoseconds()) / float64(calls)
	if side.NsPerOp > 0 {
		side.CallsPerSec = 1e9 / side.NsPerOp
	}
	if ok {
		side.SendFrames = after.SendFrames - before.SendFrames
		side.SendBatches = after.SendBatches - before.SendBatches
		side.RecvFrames = after.RecvFrames - before.RecvFrames
		side.RecvBatches = after.RecvBatches - before.RecvBatches
		side.MaxSendBatch = after.MaxSendBatch
		side.GSOSends = after.GSOSends - before.GSOSends
		side.SyscallsPerCall = float64(side.SendBatches+side.RecvBatches) / float64(calls)
	}
	return side, nil
}

// BatchCompare runs the per-frame and batched UDP async Null fan-out back
// to back and returns the comparison. An error means UDP loopback is
// unavailable (sandbox) — callers should skip, not fail.
func BatchCompare(calls, outstanding int) (*BatchCompareResult, error) {
	if calls <= 0 {
		calls = 20000
	}
	if outstanding <= 0 {
		outstanding = 64
	}
	perFrame, err := batchCompareSide(trOpts{overUDP: true}, calls, outstanding)
	if err != nil {
		return nil, err
	}
	batched, err := batchCompareSide(trOpts{overUDP: true, batch: true}, calls, outstanding)
	if err != nil {
		return nil, err
	}
	res := &BatchCompareResult{Outstanding: outstanding, PerFrame: perFrame, Batched: batched}
	if batched.NsPerOp > 0 {
		res.Speedup = perFrame.NsPerOp / batched.NsPerOp
	}
	return res, nil
}
