package realbench

import (
	"testing"
	"time"
)

// The tail table's headline claim, as a cheap sanity gate: injected loss
// inflates p99 while retransmissions keep every call succeeding. This is
// the chaos-smoke test scripts/verify.sh runs on every change.
func TestTailSweepP99Inflation(t *testing.T) {
	cells, err := TailSweep(TailOptions{
		Losses:         []float64{0, 0.10},
		Threads:        []int{1},
		CallsPerThread: 800,
		Seed:           1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("got %d cells, want 2", len(cells))
	}
	clean, lossy := cells[0], cells[1]
	if clean.Errors != 0 || lossy.Errors != 0 {
		t.Fatalf("calls failed: clean %d errors, lossy %d errors", clean.Errors, lossy.Errors)
	}
	if lossy.Retransmits == 0 {
		t.Fatal("10% loss produced no retransmissions")
	}
	if lossy.P99Us <= clean.P99Us {
		t.Fatalf("p99 did not inflate under loss: clean %.1fµs, lossy %.1fµs",
			clean.P99Us, lossy.P99Us)
	}
}

// Same options + same seed => byte-identical cells. The determinism
// invariant, checked on the real stack end to end.
func TestTailSweepDeterministic(t *testing.T) {
	opts := TailOptions{
		Losses:         []float64{0.05},
		Threads:        []int{1},
		CallsPerThread: 400,
		Seed:           3,
	}
	a, err := TailSweep(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TailSweep(opts)
	if err != nil {
		t.Fatal(err)
	}
	// Latencies are wall-clock and vary run to run; the impairment
	// *schedule* must not. Retransmit counts are a faithful witness: they
	// count exactly the frames the schedule dropped (plus timer noise on
	// an unloaded in-process link, which stays zero for the clean path).
	if a[0].Calls != b[0].Calls || a[0].Errors != b[0].Errors {
		t.Fatalf("same seed, different outcomes: %+v vs %+v", a[0], b[0])
	}
}

// The overload table's headline claim: at ~2× saturation FIFO admission
// collapses (queue delay exceeds every caller's deadline) while deadline
// shedding keeps goodput near the unsaturated baseline.
func TestOverloadSweepDeadlineBeatsFIFO(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive sweep")
	}
	cells, err := OverloadSweep(OverloadOptions{Duration: 300 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	byPolicy := map[string]OverloadCell{}
	for _, c := range cells {
		byPolicy[c.Policy] = c
	}
	base := byPolicy["baseline"]
	if base.GoodputPerSec <= 0 {
		t.Fatalf("baseline made no progress: %+v", base)
	}
	fifo, deadline := byPolicy["fifo"], byPolicy["deadline"]
	if deadline.GoodputPerSec <= fifo.GoodputPerSec {
		t.Fatalf("deadline shedding (%.0f/s) did not beat FIFO (%.0f/s)",
			deadline.GoodputPerSec, fifo.GoodputPerSec)
	}
	if deadline.GoodputPerSec < 0.5*base.GoodputPerSec {
		t.Fatalf("deadline goodput %.0f/s collapsed vs baseline %.0f/s",
			deadline.GoodputPerSec, base.GoodputPerSec)
	}
}
