// Package realbench benchmarks the real (non-simulated) RPC stack: the
// modern-hardware analogue of the paper's Table I, run over the in-process
// exchange and real UDP loopback instead of the Firefly's Ethernet.
//
// Each case drives Null, MaxArg (1440-byte VAR IN argument), or MaxResult
// (1440-byte VAR OUT result) from a fixed number of caller threads, one
// Client (activity) per thread as on the Firefly, and reports latency,
// allocation, and throughput figures via the standard testing.Benchmark
// machinery so the numbers are directly comparable to `go test -bench`.
package realbench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"testing"
	"time"

	"fireflyrpc/internal/core"
	"fireflyrpc/internal/faultnet"
	"fireflyrpc/internal/marshal"
	"fireflyrpc/internal/proto"
	"fireflyrpc/internal/testsvc"
	"fireflyrpc/internal/transport"
)

// payloadBytes is the single-packet payload used by MaxArg and MaxResult.
const payloadBytes = 1440

// Result is one benchmark case.
type Result struct {
	Bench         string  `json:"bench"`              // Null | MaxArg | MaxResult
	Transport     string  `json:"transport"`          // mem | udp | tcp
	Profile       string  `json:"profile,omitempty"`  // faultnet profile name; empty = clean link
	Batch         bool    `json:"batch,omitempty"`    // batched UDP datapath (sendmmsg/GSO)
	Traced        bool    `json:"traced,omitempty"`   // stage tracing enabled on both Conns
	Replicas      int     `json:"replicas,omitempty"` // replica-set size for cluster cells; 0 = point-to-point
	Hedged        bool    `json:"hedged,omitempty"`   // cluster cell ran with hedged requests enabled
	Threads       int     `json:"threads"`
	Outstanding   int     `json:"outstanding,omitempty"` // async calls in flight per thread; 0 = blocking
	N             int     `json:"n"`                     // calls measured
	NsPerOp       float64 `json:"ns_per_op"`
	AllocsPerOp   int64   `json:"allocs_per_op"`
	BytesPerOp    int64   `json:"bytes_per_op"`
	CallsPerSec   float64 `json:"calls_per_sec"`
	MbitPerSec    float64 `json:"mbit_per_sec,omitempty"`    // payload throughput
	P99Us         float64 `json:"p99_us,omitempty"`          // tail latency (cluster cells)
	IssuedPerCall float64 `json:"issued_per_call,omitempty"` // wire calls per logical call (cluster cells; >1 = hedging overhead)
}

// Suite is the full run, serialized to BENCH_realstack.json.
type Suite struct {
	Generated string   `json:"generated"`
	Note      string   `json:"note"`
	Results   []Result `json:"results"`
}

// impl is the benchmark server: procedures do minimal work so the stack,
// not the service, is measured.
type impl struct{}

func (impl) Null() error { return nil }
func (impl) MaxResult(buffer []byte) error {
	for i := range buffer {
		buffer[i] = byte(i)
	}
	return nil
}
func (impl) MaxArg(buffer []byte) error             { return nil }
func (impl) Add4(a, b, c, d int32) (int32, error)   { return a + b + c + d, nil }
func (impl) Reverse(data []byte, out *[]byte) error { *out = data; return nil }
func (impl) Increment(counter *uint32) error        { *counter++; return nil }
func (impl) Greet(n *marshal.Text) (*marshal.Text, error) {
	return marshal.NewText("hi " + n.String()), nil
}

// benchPair is one caller/server node pair plus the caller's binding to
// the server's test service. The nodes are exposed so the breakdown runner
// can enable stage tracing on both underlying Conns.
type benchPair struct {
	binding *core.Binding
	caller  *core.Node
	server  *core.Node
}

// trOpts selects the caller/server transport flavor for one cell.
type trOpts struct {
	overUDP  bool
	batch    bool   // batched UDP engine (ListenUDPBatch) instead of per-frame
	recvMode string // batched engine receive mode ("" = park)
	kind     string // "tcp" = multiplexed TCP streams instead of UDP sockets
	traced   bool   // enable stage tracing on both Conns (production posture)
}

// The tracing posture traced cells run under: the production always-on
// configuration (1-in-N sampling over a modest ring), not trace-everything.
// The zero-cost-when-off invariant is about sampleN==0; these cells measure
// what turning tracing ON costs, which is what the ≤5% CI gate bounds.
const (
	traceSampleN  = 64
	traceRingSize = 4096
)

// pair builds a caller/server node pair over the requested transport.
// When prof is non-nil the caller's transport is wrapped in a faultnet
// impairer, so the cell measures the stack under that profile.
// It returns an error (rather than failing) when UDP loopback is
// unavailable, so sandboxed environments just skip those cases.
func pair(to trOpts, workers int, prof *faultnet.Profile, seed uint64) (*benchPair, func(), error) {
	cfg := proto.DefaultConfig()
	if workers > cfg.Workers {
		cfg.Workers = workers
	}
	listen := func() (transport.Transport, error) {
		switch {
		case to.kind == "tcp":
			return transport.ListenTCP("127.0.0.1:0", transport.TCPOptions{})
		case to.batch:
			return transport.ListenUDPBatch("127.0.0.1:0", transport.UDPOptions{RecvMode: to.recvMode})
		default:
			return transport.ListenUDP("127.0.0.1:0")
		}
	}
	var callerTr, serverTr transport.Transport
	if to.overUDP {
		var err error
		serverTr, err = listen()
		if err != nil {
			return nil, nil, err
		}
		callerTr, err = listen()
		if err != nil {
			serverTr.Close()
			return nil, nil, err
		}
	} else {
		ex := transport.NewExchange()
		serverTr = ex.Port("server")
		callerTr = ex.Port("caller")
	}
	if prof != nil {
		callerTr = faultnet.Wrap(callerTr, *prof, seed)
	}
	server := core.NewNode(serverTr, cfg)
	caller := core.NewNode(callerTr, cfg)
	if to.traced {
		caller.Conn().SetTracing(traceSampleN, traceRingSize)
		server.Conn().SetTracing(traceSampleN, traceRingSize)
	}
	server.Export(testsvc.ExportTest(impl{}))
	binding := caller.Bind(server.Addr(), testsvc.TestName, testsvc.TestVersion)
	p := &benchPair{binding: binding, caller: caller, server: server}
	return p, func() { caller.Close(); server.Close() }, nil
}

// callFunc runs one call on a per-thread client with a per-thread buffer.
type callFunc func(cl *testsvc.TestClient, buf []byte) error

var cases = []struct {
	name  string
	bytes int // payload bytes moved per call, for Mb/s
	call  callFunc
}{
	{"Null", 0, func(cl *testsvc.TestClient, _ []byte) error { return cl.Null() }},
	{"MaxArg", payloadBytes, func(cl *testsvc.TestClient, buf []byte) error { return cl.MaxArg(buf) }},
	{"MaxResult", payloadBytes, func(cl *testsvc.TestClient, buf []byte) error { return cl.MaxResult(buf) }},
}

// runCase measures one (bench, transport, threads) cell. The b.N calls are
// split across exactly `threads` caller goroutines, each with its own
// Client, mirroring the paper's caller-thread scaling rather than
// RunParallel's GOMAXPROCS-coupled parallelism.
func runCase(to trOpts, call callFunc, threads int, prof *faultnet.Profile, seed uint64) (testing.BenchmarkResult, error) {
	p, done, err := pair(to, 2*threads, prof, seed)
	if err != nil {
		return testing.BenchmarkResult{}, err
	}
	defer done()
	binding := p.binding

	var failure error
	var failMu sync.Mutex
	r := testing.Benchmark(func(b *testing.B) {
		clients := make([]*testsvc.TestClient, threads)
		for i := range clients {
			clients[i] = testsvc.NewTestClient(binding)
		}
		b.ReportAllocs()
		b.ResetTimer()
		var wg sync.WaitGroup
		for t := 0; t < threads; t++ {
			n := b.N / threads
			if t < b.N%threads {
				n++
			}
			wg.Add(1)
			go func(cl *testsvc.TestClient, n int) {
				defer wg.Done()
				buf := make([]byte, payloadBytes)
				for i := 0; i < n; i++ {
					if err := call(cl, buf); err != nil {
						failMu.Lock()
						failure = err
						failMu.Unlock()
						return
					}
				}
			}(clients[t], n)
		}
		wg.Wait()
	})
	return r, failure
}

// asyncCall issues one async call on a pooled slot; the procedure is Null
// for latency-shaped cases and MaxResult for throughput-shaped ones.
type asyncCall func(cl *core.Client, ctx context.Context) (*core.Pending, error)

var asyncCases = []struct {
	name  string
	bytes int
	start asyncCall
	// mkDec builds the per-run result decoder over a reusable buffer
	// (nil when the procedure returns nothing).
	mkDec func(buf []byte) func(*marshal.Dec)
}{
	{"Null", 0, func(cl *core.Client, ctx context.Context) (*core.Pending, error) {
		return cl.Go(ctx, testsvc.TestProcNull, 0, nil)
	}, nil},
	{"MaxResult", payloadBytes, func(cl *core.Client, ctx context.Context) (*core.Pending, error) {
		return cl.Go(ctx, testsvc.TestProcMaxResult, 0, nil)
	}, func(buf []byte) func(*marshal.Dec) {
		return func(d *marshal.Dec) { d.FixedBytes(buf) }
	}},
}

// runAsyncCase measures the asynchronous fan-out path: one caller
// goroutine keeps `outstanding` calls in flight through Client.Go/Await,
// so the cell reports per-call cost when the engine — not a goroutine per
// call — carries the in-flight state.
func runAsyncCase(to trOpts, ac asyncCall, mkDec func([]byte) func(*marshal.Dec), outstanding int, prof *faultnet.Profile, seed uint64) (testing.BenchmarkResult, error) {
	p, done, err := pair(to, 8, prof, seed)
	if err != nil {
		return testing.BenchmarkResult{}, err
	}
	defer done()
	binding := p.binding

	var failure error
	r := testing.Benchmark(func(b *testing.B) {
		cl := binding.NewClient()
		ctx := context.Background()
		pend := make([]*core.Pending, 0, outstanding)
		var dec func(*marshal.Dec)
		if mkDec != nil {
			dec = mkDec(make([]byte, payloadBytes))
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; {
			batch := outstanding
			if b.N-i < batch {
				batch = b.N - i
			}
			pend = pend[:0]
			for j := 0; j < batch; j++ {
				p, err := ac(cl, ctx)
				if err != nil {
					failure = err
					return
				}
				pend = append(pend, p)
			}
			for _, p := range pend {
				if err := p.Await(ctx, dec); err != nil {
					failure = err
					return
				}
			}
			i += batch
		}
	})
	return r, failure
}

// Options configures a suite run.
type Options struct {
	Threads     []int     // caller-thread counts; default 1,2,4,8
	Outstanding []int     // async fan-out widths; default 1,8,64
	Cases       []string  // case names (Null, MaxArg, MaxResult); empty = all
	MemOnly     bool      // skip the UDP loopback transport
	Log         io.Writer // progress output; nil for quiet

	// Transport restricts the run to one transport: "exchange" (or "mem"),
	// "udp", "udpbatch" (the batched UDP engine, tagged like Batch), or
	// "tcp" (multiplexed streams). Empty keeps the default mem+udp sweep.
	// The transport name is part of every cell's identity, so e.g. tcp
	// results diff only against tcp baselines.
	Transport string

	// Profile, when non-nil, wraps every caller transport in a faultnet
	// impairer; each Result is tagged with the profile name so impaired
	// cells never diff against a clean baseline.
	Profile   *faultnet.Profile
	FaultSeed uint64 // impairment schedule seed; default 1

	// Batch runs the UDP cells over the batched datapath (ListenUDPBatch:
	// sendmmsg/recvmmsg, GSO/GRO, plus the protocol send queue). Results
	// are tagged batch=true, which diffs under the @batch cell namespace —
	// batched cells never compare against per-frame ones. Mem cells are
	// unaffected.
	Batch bool
	// RecvMode selects the batched engine's receive loop
	// (transport.RecvModePark or RecvModeSpin); empty = park.
	RecvMode string

	// Trace enables stage tracing on both Conns in every cell, at the
	// production always-on posture (1-in-64 sampling). Results are tagged
	// traced=true and diff under the @trace cell namespace, so the cost of
	// tracing is gated against a traced baseline — never against the
	// tracing-off cells.
	Trace bool
}

// wantCase reports whether name passed the Options.Cases filter.
func (o *Options) wantCase(name string) bool {
	if len(o.Cases) == 0 {
		return true
	}
	for _, c := range o.Cases {
		if c == name {
			return true
		}
	}
	return false
}

// Run executes the full real-stack suite and returns it.
func Run(opts Options) Suite {
	threads := opts.Threads
	if len(threads) == 0 {
		threads = []int{1, 2, 4, 8}
	}
	logf := func(format string, a ...any) {
		if opts.Log != nil {
			fmt.Fprintf(opts.Log, format, a...)
		}
	}
	outstanding := opts.Outstanding
	if len(outstanding) == 0 {
		outstanding = []int{1, 8, 64}
	}
	seed := opts.FaultSeed
	if seed == 0 {
		seed = 1
	}
	profName := ""
	if opts.Profile != nil {
		profName = opts.Profile.Name
		if profName == "" {
			profName = "custom"
		}
	}
	suite := Suite{
		Generated: time.Now().UTC().Format(time.RFC3339),
		Note: "Real-stack Table I analogue: Null/MaxArg/MaxResult over the " +
			"in-process exchange (mem), UDP loopback (udp), and multiplexed " +
			"TCP loopback (tcp), one client activity per caller thread. " +
			"Async cells keep N calls in flight from one goroutine via " +
			"Client.Go/Await.",
	}
	type trSel struct {
		name    string
		overUDP bool
		kind    string
		batch   bool
	}
	var transports []trSel
	switch opts.Transport {
	case "":
		transports = []trSel{{name: "mem"}, {name: "udp", overUDP: true, batch: opts.Batch}}
		if opts.MemOnly {
			transports = transports[:1]
		}
	case "mem", "exchange":
		transports = []trSel{{name: "mem"}}
	case "udp":
		transports = []trSel{{name: "udp", overUDP: true, batch: opts.Batch}}
	case "udpbatch":
		transports = []trSel{{name: "udp", overUDP: true, batch: true}}
	case "tcp":
		transports = []trSel{{name: "tcp", overUDP: true, kind: "tcp"}}
	default:
		logf("  unknown transport %q (want exchange, udp, udpbatch, or tcp)\n", opts.Transport)
		return suite
	}
	for _, tr := range transports {
		to := trOpts{overUDP: tr.overUDP, batch: tr.batch, recvMode: opts.RecvMode, kind: tr.kind, traced: opts.Trace}
		for _, c := range cases {
			if !opts.wantCase(c.name) {
				continue
			}
			for _, th := range threads {
				br, err := runCase(to, c.call, th, opts.Profile, seed)
				if err != nil {
					logf("  %-9s %-3s %d threads: skipped (%v)\n", c.name, tr.name, th, err)
					continue
				}
				res := Result{
					Bench:       c.name,
					Transport:   tr.name,
					Profile:     profName,
					Batch:       to.batch,
					Traced:      to.traced,
					Threads:     th,
					N:           br.N,
					NsPerOp:     float64(br.NsPerOp()),
					AllocsPerOp: br.AllocsPerOp(),
					BytesPerOp:  br.AllocedBytesPerOp(),
				}
				if res.NsPerOp > 0 {
					res.CallsPerSec = 1e9 / res.NsPerOp
					res.MbitPerSec = res.CallsPerSec * float64(c.bytes) * 8 / 1e6
				}
				suite.Results = append(suite.Results, res)
				logf("  %-9s %-3s %d threads: %8.0f ns/op  %3d allocs/op  %9.0f calls/s\n",
					c.name, tr.name, th, res.NsPerOp, res.AllocsPerOp, res.CallsPerSec)
			}
		}
		for _, c := range asyncCases {
			if !opts.wantCase(c.name) {
				continue
			}
			for _, out := range outstanding {
				br, err := runAsyncCase(to, c.start, c.mkDec, out, opts.Profile, seed)
				if err != nil {
					logf("  %-9s %-3s async %2d outstanding: skipped (%v)\n", c.name, tr.name, out, err)
					continue
				}
				res := Result{
					Bench:       c.name + "Async",
					Transport:   tr.name,
					Profile:     profName,
					Batch:       to.batch,
					Traced:      to.traced,
					Threads:     1,
					Outstanding: out,
					N:           br.N,
					NsPerOp:     float64(br.NsPerOp()),
					AllocsPerOp: br.AllocsPerOp(),
					BytesPerOp:  br.AllocedBytesPerOp(),
				}
				if res.NsPerOp > 0 {
					res.CallsPerSec = 1e9 / res.NsPerOp
					res.MbitPerSec = res.CallsPerSec * float64(c.bytes) * 8 / 1e6
				}
				suite.Results = append(suite.Results, res)
				logf("  %-9s %-3s async %2d outstanding: %8.0f ns/op  %3d allocs/op  %9.0f calls/s\n",
					c.name, tr.name, out, res.NsPerOp, res.AllocsPerOp, res.CallsPerSec)
			}
		}
	}
	return suite
}

// WriteJSON writes the suite to path.
func (s Suite) WriteJSON(path string) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	return os.WriteFile(path, data, 0o644)
}
