// Tail-latency and overload sweeps: the chaos-engineering counterpart of
// the Table I cells. Where realbench.Run measures the clean fast path,
// TailSweep measures the latency *distribution* under injected loss — the
// paper's retransmission machinery priced in percentiles — and
// OverloadSweep measures goodput at 2× saturation under each admission
// policy.
package realbench

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"fireflyrpc/internal/core"
	"fireflyrpc/internal/faultnet"
	"fireflyrpc/internal/overload"
	"fireflyrpc/internal/proto"
	"fireflyrpc/internal/runbook"
	"fireflyrpc/internal/stats"
	"fireflyrpc/internal/testsvc"
	"fireflyrpc/internal/transport"
)

// TailOptions configures the loss×load tail-latency sweep.
type TailOptions struct {
	Losses         []float64 // frame drop probability per direction; default 0, 0.01, 0.10
	Threads        []int     // caller threads; default 1, 4
	CallsPerThread int       // default 2000
	Seed           uint64    // fault schedule seed; default 1
	Log            io.Writer
}

// TailCell is one (loss, threads) cell: the full latency distribution of
// Null calls over an impaired in-process link.
type TailCell struct {
	Loss        float64 `json:"loss"`
	Threads     int     `json:"threads"`
	Calls       int     `json:"calls"`
	Errors      int     `json:"errors"`
	Retransmits int64   `json:"retransmits"`
	MeanUs      float64 `json:"mean_us"`
	P50Us       float64 `json:"p50_us"`
	P99Us       float64 `json:"p99_us"`
	P999Us      float64 `json:"p999_us"`
	MaxUs       float64 `json:"max_us"`
}

// TailSweep runs every loss×threads cell. Cells with the same options and
// seed reproduce the same impairment schedule run to run.
func TailSweep(opts TailOptions) ([]TailCell, error) {
	// Defaults come from the canonical scenario grid shared with the
	// committed runbooks, so both suites probe the same operating points.
	losses := opts.Losses
	if len(losses) == 0 {
		losses = runbook.TailLosses
	}
	threads := opts.Threads
	if len(threads) == 0 {
		threads = runbook.TailThreads
	}
	calls := opts.CallsPerThread
	if calls == 0 {
		calls = runbook.TailCallsPerThread
	}
	seed := opts.Seed
	if seed == 0 {
		seed = runbook.TailSeed
	}
	var cells []TailCell
	for _, loss := range losses {
		for _, th := range threads {
			cell, err := tailCell(loss, th, calls, seed)
			if err != nil {
				return cells, err
			}
			cells = append(cells, cell)
			if opts.Log != nil {
				fmt.Fprintf(opts.Log,
					"  loss=%-5.2g t%d: %6d calls  p50 %7.1fµs  p99 %8.1fµs  p99.9 %8.1fµs  (%d retransmits)\n",
					loss, th, cell.Calls, cell.P50Us, cell.P99Us, cell.P999Us, cell.Retransmits)
			}
		}
	}
	return cells, nil
}

func tailCell(loss float64, threads, callsPerThread int, seed uint64) (TailCell, error) {
	ex := transport.NewExchange()
	cfg := proto.Config{
		// A tight retransmission interval keeps the impaired tail bounded
		// by the adaptive timer, not by a worst-case constant.
		RetransInterval: 4 * time.Millisecond,
		MaxRetries:      25,
		Workers:         2 * threads,
	}
	ft := faultnet.Wrap(ex.Port("caller"), faultnet.Loss(loss), seed)
	server := core.NewNode(ex.Port("server"), cfg)
	caller := core.NewNode(ft, cfg)
	defer caller.Close()
	defer server.Close()
	server.Export(testsvc.ExportTest(impl{}))
	binding := caller.Bind(server.Addr(), testsvc.TestName, testsvc.TestVersion)

	perThread := make([][]time.Duration, threads)
	var errCount atomic.Int64
	var wg sync.WaitGroup
	for th := 0; th < threads; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			cl := testsvc.NewTestClient(binding)
			lat := make([]time.Duration, 0, callsPerThread)
			for i := 0; i < callsPerThread; i++ {
				start := time.Now()
				if err := cl.Null(); err != nil {
					errCount.Add(1)
					continue
				}
				lat = append(lat, time.Since(start))
			}
			perThread[th] = lat
		}(th)
	}
	wg.Wait()

	var s stats.Sample
	for _, lat := range perThread {
		for _, d := range lat {
			s.Add(d)
		}
	}
	if s.N() == 0 {
		return TailCell{}, fmt.Errorf("tail cell loss=%g t%d: no call succeeded", loss, threads)
	}
	return TailCell{
		Loss:        loss,
		Threads:     threads,
		Calls:       s.N(),
		Errors:      int(errCount.Load()),
		Retransmits: caller.Conn().Stats().Retransmits,
		MeanUs:      s.Mean(),
		P50Us:       s.Percentile(50),
		P99Us:       s.Percentile(99),
		P999Us:      s.Percentile(99.9),
		MaxUs:       s.Max(),
	}, nil
}

// OverloadOptions configures the 2×-saturation goodput comparison.
type OverloadOptions struct {
	ServiceUs int           // handler busy time per call; default 300
	Workers   int           // server worker pool; default 2
	Callers   int           // closed-loop callers at the overload point; default 32
	Capacity  int           // admission queue capacity; default 256
	Timeout   time.Duration // per-call deadline; default 3ms
	Duration  time.Duration // measured window per cell; default 400ms
	Log       io.Writer
}

// OverloadCell is one admission-policy cell: goodput under a closed-loop
// caller population.
type OverloadCell struct {
	Policy        string  `json:"policy"` // baseline | none | fifo | lifo | deadline
	Callers       int     `json:"callers"`
	Completed     int64   `json:"completed"`
	Timeouts      int64   `json:"timeouts"`
	Overloads     int64   `json:"overloads"` // fast-failed by wire-level rejection
	Shed          int64   `json:"shed"`      // server-side admission sheds
	GoodputPerSec float64 `json:"goodput_per_sec"`
	P99Us         float64 `json:"p99_us"` // of completed calls
}

// OverloadSweep measures goodput for: the unsaturated baseline (as many
// callers as workers, no admission control), then a 2×-saturated caller
// population with no admission control, FIFO admission, and
// deadline-shedding admission. The paper-shaped claim under test: FIFO
// queueing collapses once queue delay exceeds the deadline (the server
// serves only the dead), while deadline shedding keeps goodput near the
// unsaturated baseline.
func OverloadSweep(opts OverloadOptions) ([]OverloadCell, error) {
	// Defaults come from the canonical operating point shared with the
	// committed runbooks (runbook.DefaultOverload), so the real-stack sweep
	// and the overload runbooks measure the same saturation regime.
	canon := runbook.DefaultOverload()
	if opts.ServiceUs == 0 {
		opts.ServiceUs = canon.ServiceUs
	}
	if opts.Workers == 0 {
		opts.Workers = canon.Workers
	}
	if opts.Callers == 0 {
		opts.Callers = canon.Callers
	}
	if opts.Capacity == 0 {
		opts.Capacity = canon.Capacity
	}
	if opts.Timeout == 0 {
		opts.Timeout = canon.Timeout
	}
	if opts.Duration == 0 {
		opts.Duration = canon.Duration
	}
	cells := []struct {
		name    string
		callers int
		admit   overload.Config
	}{
		{"baseline", opts.Workers, overload.Config{}},
		{"none", opts.Callers, overload.Config{}},
		{"fifo", opts.Callers, overload.Config{Policy: overload.FIFO, Capacity: opts.Capacity}},
		{"deadline", opts.Callers, overload.Config{Policy: overload.Deadline, Capacity: opts.Capacity}},
	}
	var out []OverloadCell
	for _, c := range cells {
		cell, err := overloadCell(c.name, c.callers, c.admit, opts)
		if err != nil {
			return out, err
		}
		out = append(out, cell)
		if opts.Log != nil {
			fmt.Fprintf(opts.Log,
				"  %-8s %2d callers: %6.0f good calls/s  (%d ok, %d timeout, %d overload, %d shed)  p99 %7.1fµs\n",
				cell.Policy, cell.Callers, cell.GoodputPerSec,
				cell.Completed, cell.Timeouts, cell.Overloads, cell.Shed, cell.P99Us)
		}
	}
	return out, nil
}

func overloadCell(name string, callers int, admit overload.Config, opts OverloadOptions) (OverloadCell, error) {
	ex := transport.NewExchange()
	serverCfg := proto.Config{
		RetransInterval: 20 * time.Millisecond,
		MaxRetries:      10,
		Workers:         opts.Workers,
		Admission:       admit,
	}
	callerCfg := proto.Config{
		RetransInterval: 20 * time.Millisecond,
		MaxRetries:      10,
		Workers:         4,
		CallTimeout:     opts.Timeout,
	}
	service := time.Duration(opts.ServiceUs) * time.Microsecond
	server := core.NewNode(ex.Port("server"), serverCfg)
	caller := core.NewNode(ex.Port("caller"), callerCfg)
	defer caller.Close()
	defer server.Close()
	server.Export(testsvc.ExportTest(sleepImpl{d: service}))
	binding := caller.Bind(server.Addr(), testsvc.TestName, testsvc.TestVersion)

	var completed, timeouts, overloads atomic.Int64
	var latMu sync.Mutex
	var lat stats.Sample
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl := testsvc.NewTestClient(binding)
			for {
				select {
				case <-stop:
					return
				default:
				}
				start := time.Now()
				err := cl.Null()
				switch {
				case err == nil:
					completed.Add(1)
					latMu.Lock()
					lat.Add(time.Since(start))
					latMu.Unlock()
				case errors.Is(err, proto.ErrOverloaded):
					overloads.Add(1)
					// A real client backs off on an explicit overload
					// rejection; without this the reject loop itself
					// becomes the load.
					time.Sleep(opts.Timeout / 2)
				case errors.Is(err, proto.ErrTimeout):
					timeouts.Add(1)
				default:
					return
				}
			}
		}()
	}
	// Warm up, then count only the steady-state window.
	time.Sleep(opts.Duration / 4)
	completed.Store(0)
	timeouts.Store(0)
	overloads.Store(0)
	latMu.Lock()
	lat = stats.Sample{}
	latMu.Unlock()
	start := time.Now()
	time.Sleep(opts.Duration)
	good := completed.Load()
	elapsed := time.Since(start)
	close(stop)
	wg.Wait()

	var shed int64
	if s, ok := server.Conn().AdmissionStats(); ok {
		shed = s.ShedCapacity + s.ShedDeadline
	}
	latMu.Lock()
	p99 := lat.Percentile(99)
	latMu.Unlock()
	return OverloadCell{
		Policy:        name,
		Callers:       callers,
		Completed:     good,
		Timeouts:      timeouts.Load(),
		Overloads:     overloads.Load(),
		Shed:          shed,
		GoodputPerSec: float64(good) / elapsed.Seconds(),
		P99Us:         p99,
	}, nil
}

// sleepImpl is the overload-benchmark server: Null takes a fixed service
// time, modeling a real handler whose work dominates dispatch. Sleeping
// (rather than spinning) keeps the measured capacity worker-bound instead
// of CPU-bound, so the sweep behaves the same on one core as on many.
type sleepImpl struct {
	impl
	d time.Duration
}

func (s sleepImpl) Null() error {
	time.Sleep(s.d)
	return nil
}
