package realbench

import (
	"os"
	"testing"

	"fireflyrpc/internal/transport"
)

// The acceptance gate for the batched datapath: batched UDP async fan-out
// (64 outstanding) must be at least 2× the per-frame path's calls/s,
// self-relative in one process on one machine. The comparison also checks
// the mechanism, not just the outcome: the batched side must spend
// strictly fewer send syscalls than frames.
func TestBatchCompareSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if os.Getenv(transport.EnvNoBatch) != "" {
		t.Skipf("%s set: nothing to compare", transport.EnvNoBatch)
	}
	// Best of three: the floor gates the datapath, not one scheduler hiccup
	// on a shared runner. A genuinely broken batch path fails all attempts.
	res, err := BatchCompare(12000, 64)
	if err != nil {
		t.Skip("no UDP loopback:", err)
	}
	for try := 0; try < 2 && res.Speedup < 2.0; try++ {
		next, err := BatchCompare(12000, 64)
		if err == nil && next.Speedup > res.Speedup {
			res = next
		}
	}
	t.Logf("per-frame: %.0f ns/op (%.0f calls/s, %.2f syscalls/call)",
		res.PerFrame.NsPerOp, res.PerFrame.CallsPerSec, res.PerFrame.SyscallsPerCall)
	t.Logf("batched:   %.0f ns/op (%.0f calls/s, %.2f syscalls/call, max send batch %d, gso %d)",
		res.Batched.NsPerOp, res.Batched.CallsPerSec, res.Batched.SyscallsPerCall,
		res.Batched.MaxSendBatch, res.Batched.GSOSends)
	t.Logf("speedup: %.2fx", res.Speedup)

	if res.Batched.SendFrames == 0 {
		t.Fatal("batched side reported no send frames — counters broken")
	}
	if res.Batched.SendBatches >= res.Batched.SendFrames {
		t.Errorf("batched side not amortizing: %d send ops for %d frames",
			res.Batched.SendBatches, res.Batched.SendFrames)
	}
	if res.Speedup < 2.0 {
		t.Errorf("batched async fan-out speedup %.2fx < 2.0x acceptance floor "+
			"(per-frame %.0f calls/s, batched %.0f calls/s)",
			res.Speedup, res.PerFrame.CallsPerSec, res.Batched.CallsPerSec)
	}
}
