package realbench

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"fireflyrpc/internal/proto"
	"fireflyrpc/internal/testsvc"
)

// The breakdown runner: the real-stack analogue of the paper's Tables VI
// and VII. It traces every Null call through both endpoints' stage rings,
// compiles the joined records into a per-stage latency table whose
// telescoping sum is checked against the measured end-to-end time, and
// measures what the tracing machinery itself costs at the production
// sampling rate.

// BreakdownResult is one -breakdown run.
type BreakdownResult struct {
	Report proto.AccountingReport `json:"report"`

	// Tracing overhead at 1-in-SampleEvery sampling on the Null call.
	SampleEvery     int     `json:"sample_every"`
	NullNsUntraced  float64 `json:"null_ns_untraced"`
	NullNsTraced    float64 `json:"null_ns_traced"`
	OverheadPercent float64 `json:"overhead_percent"`
}

// timeNullCalls measures mean ns/call over n blocking Null calls.
func timeNullCalls(cl *testsvc.TestClient, n int) (float64, error) {
	start := time.Now()
	for i := 0; i < n; i++ {
		if err := cl.Null(); err != nil {
			return 0, err
		}
	}
	return float64(time.Since(start).Nanoseconds()) / float64(n), nil
}

// Breakdown runs `calls` traced Null calls over the in-process exchange and
// compiles the stage accounting, then measures the Null fast path untraced
// and traced at 1-in-sampleEvery to report the observability overhead.
func Breakdown(calls, sampleEvery int) (*BreakdownResult, error) {
	if calls <= 0 {
		calls = 2000
	}
	if sampleEvery <= 0 {
		sampleEvery = 64
	}
	p, done, err := pair(trOpts{}, 4, nil, 0)
	if err != nil {
		return nil, err
	}
	defer done()
	cl := testsvc.NewTestClient(p.binding)

	// Warm the pools and the connection, then measure the untraced and the
	// sampled-tracing Null cost back to back on the same pair.
	if _, err := timeNullCalls(cl, 500); err != nil {
		return nil, err
	}
	const timingCalls = 4000
	untraced, err := timeNullCalls(cl, timingCalls)
	if err != nil {
		return nil, err
	}
	p.caller.Conn().SetTracing(sampleEvery, proto.DefaultTraceRing)
	p.server.Conn().SetTracing(sampleEvery, proto.DefaultTraceRing)
	traced, err := timeNullCalls(cl, timingCalls)
	if err != nil {
		return nil, err
	}

	// The accounting run traces every call into rings big enough that none
	// of the `calls` records is overwritten before the snapshot.
	ring := calls + 16
	p.caller.Conn().SetTracing(1, ring)
	p.server.Conn().SetTracing(1, ring)
	if _, err := timeNullCalls(cl, calls); err != nil {
		return nil, err
	}
	rep := proto.Account(
		p.caller.Conn().TraceRecords(),
		p.server.Conn().TraceRecords(),
	)

	res := &BreakdownResult{
		Report:         rep,
		SampleEvery:    sampleEvery,
		NullNsUntraced: untraced,
		NullNsTraced:   traced,
	}
	if untraced > 0 {
		res.OverheadPercent = 100 * (traced - untraced) / untraced
	}
	return res, nil
}

// CheckFile validates a BENCH_realstack.json produced by Run/WriteJSON: it
// must parse, contain at least one result, and every result must report a
// positive call count, latency, and throughput. CI's bench-smoke job runs
// this so a silently-broken benchmark cannot keep publishing zeros.
func CheckFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var suite Suite
	if err := json.Unmarshal(data, &suite); err != nil {
		return fmt.Errorf("%s: %v", path, err)
	}
	if suite.Generated == "" {
		return fmt.Errorf("%s: missing generated timestamp", path)
	}
	if len(suite.Results) == 0 {
		return fmt.Errorf("%s: no results", path)
	}
	for i, r := range suite.Results {
		where := fmt.Sprintf("%s: result %d (%s/%s)", path, i, r.Bench, r.Transport)
		if r.Bench == "" || r.Transport == "" {
			return fmt.Errorf("%s: missing bench or transport name", where)
		}
		if r.N <= 0 {
			return fmt.Errorf("%s: non-positive call count %d", where, r.N)
		}
		if r.NsPerOp <= 0 {
			return fmt.Errorf("%s: non-positive ns/op %g", where, r.NsPerOp)
		}
		if r.CallsPerSec <= 0 {
			return fmt.Errorf("%s: non-positive throughput %g", where, r.CallsPerSec)
		}
	}
	return nil
}
