package realbench

import (
	"context"
	"fmt"
	"sync"
	"time"

	"fireflyrpc/internal/core"
	"fireflyrpc/internal/marshal"
	"fireflyrpc/internal/proto"
	"fireflyrpc/internal/registry"
	"fireflyrpc/internal/testsvc"
	"fireflyrpc/internal/transport"
	"fireflyrpc/internal/wire"
)

// The chained-call scenario: the acceptance witness for wire-propagated
// distributed tracing. A client calls server A's Relay procedure; A's
// handler — having found server B through the binding registry, as the
// paper's §3.1.1 presupposes binding works — threads the handler context
// into a downstream Null call on B. With tracing on at every node, the
// three rings assemble into one trace: the client→A span is the root and
// the A→B span is its child, linked by the SpanID that A's handler context
// carried. The same spans feed the merged real+sim Perfetto document.

// Identity of the relay interface server A exports.
const (
	ChainName      = "Chain"
	ChainVersion   = uint32(1)
	chainProcRelay = uint16(1)
)

// ChainReport is the outcome of a ChainSpans run.
type ChainReport struct {
	Calls       int                    `json:"calls"`
	Spans       []proto.Span           `json:"spans"`
	Roots       int                    `json:"roots"`       // spans with no parent
	Children    int                    `json:"children"`    // spans causally linked to a known parent
	Orphans     int                    `json:"orphans"`     // parented spans whose parent is missing
	Accounting  proto.AccountingReport `json:"accounting"`  // joined over all three rings
	Unaccounted float64                `json:"unaccounted"` // signed fraction of e2e the stages miss
}

// Linked reports whether every chained call produced a causally complete
// trace: as many children as roots, none orphaned.
func (r *ChainReport) Linked() bool {
	return r.Roots > 0 && r.Children == r.Roots && r.Orphans == 0
}

// waitFeatTrace polls a Conn's peer table until some session has FeatTrace
// negotiated (the priming call already forced the hello exchange).
func waitFeatTrace(c *proto.Conn) error {
	deadline := time.Now().Add(2 * time.Second)
	for {
		for _, p := range c.Peers() {
			if p.SessionFeatures&uint64(wire.FeatTrace) != 0 {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("chainspans: FeatTrace never negotiated on %s", c.LocalAddr())
		}
		time.Sleep(time.Millisecond)
	}
}

// ChainSpans runs `calls` two-hop chained calls (client → server A →
// server B) over one exchange, with the directory service brokering A's
// binding to B, and returns the assembled spans plus the joined stage
// accounting. Every call is sampled (1-in-1) so each produces a full
// parent/child span pair.
func ChainSpans(calls int) (*ChainReport, error) {
	if calls <= 0 {
		calls = 64
	}
	ex := transport.NewExchange()
	cfg := proto.DefaultConfig()
	dirNode := core.NewNode(ex.Port("directory"), cfg)
	client := core.NewNode(ex.Port("client"), cfg)
	srvA := core.NewNode(ex.Port("server-a"), cfg)
	srvB := core.NewNode(ex.Port("server-b"), cfg)
	defer func() {
		client.Close()
		srvA.Close()
		srvB.Close()
		dirNode.Close()
	}()

	dir := registry.NewServer()
	dirNode.Export(dir.Export())
	srvB.Export(testsvc.ExportTest(impl{}))

	// B advertises itself; A resolves B through the directory and binds.
	svcName := fmt.Sprintf("%s/v%d", testsvc.TestName, testsvc.TestVersion)
	regB := registry.NewClient(srvB, transport.AddrOf("directory"))
	if err := regB.Register(svcName, srvB.Addr().String(), time.Minute); err != nil {
		return nil, fmt.Errorf("register: %w", err)
	}
	regA := registry.NewClient(srvA, transport.AddrOf("directory"))
	addrB, err := regA.Lookup(svcName)
	if err != nil {
		return nil, fmt.Errorf("lookup: %w", err)
	}
	downBinding := srvA.Bind(transport.AddrOf(addrB), testsvc.TestName, testsvc.TestVersion)

	// Relay handler: one downstream client per concurrent worker, pooled
	// (core.Client is single-goroutine). Threading ctx into CallCtx is what
	// parents the downstream span onto this handler's span.
	var downPool = sync.Pool{New: func() any { return downBinding.NewClient() }}
	srvA.Export(core.NewInterface(ChainName, ChainVersion).
		ProcCtx(chainProcRelay, func(ctx context.Context, _ transport.Addr, _ *marshal.Dec) ([]byte, error) {
			down := downPool.Get().(*core.Client)
			err := down.CallCtx(ctx, testsvc.TestProcNull, 0, nil, nil)
			downPool.Put(down)
			return nil, err
		}))

	cl := client.Bind(transport.AddrOf("server-a"), ChainName, ChainVersion).NewClient()

	// Prime before arming tracing: the first chained call triggers the
	// client→A and A→B hello exchanges, and the trace-context prefix only
	// rides frames once FeatTrace is negotiated. Waiting here keeps the
	// measured rings free of half-negotiated (prefix-less) spans and of the
	// registry traffic above.
	for i := 0; i < 2; i++ {
		if err := cl.Call(chainProcRelay, 0, nil, nil); err != nil {
			return nil, fmt.Errorf("priming call %d: %w", i, err)
		}
	}
	for _, c := range []*proto.Conn{client.Conn(), srvA.Conn()} {
		if err := waitFeatTrace(c); err != nil {
			return nil, err
		}
	}
	for _, n := range []*core.Node{client, srvA, srvB} {
		n.Conn().SetTracing(1, 4096)
	}

	for i := 0; i < calls; i++ {
		if err := cl.Call(chainProcRelay, 0, nil, nil); err != nil {
			return nil, fmt.Errorf("chained call %d: %w", i, err)
		}
	}
	// The caller has its result, but the server halves' final stamps
	// (result-sent, done) land from worker goroutines; let them settle.
	time.Sleep(20 * time.Millisecond)

	rings := [][]proto.TraceRecord{
		client.Conn().TraceRecords(),
		srvA.Conn().TraceRecords(),
		srvB.Conn().TraceRecords(),
	}
	rep := &ChainReport{Calls: calls, Spans: proto.AssembleSpans(rings...)}
	byID := make(map[uint64]*proto.Span, len(rep.Spans))
	for i := range rep.Spans {
		byID[rep.Spans[i].SpanID] = &rep.Spans[i]
	}
	for i := range rep.Spans {
		s := &rep.Spans[i]
		if s.Parent == 0 {
			rep.Roots++
			continue
		}
		if p := byID[s.Parent]; p != nil && p.TraceID == s.TraceID {
			rep.Children++
		} else {
			rep.Orphans++
		}
	}
	rep.Accounting = proto.Account(rings...)
	rep.Unaccounted = rep.Accounting.Unaccounted()
	return rep, nil
}
