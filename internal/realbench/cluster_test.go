package realbench

import "testing"

// TestHedgedTailImprovement is the acceptance gate for the cluster layer:
// under 10% uplink loss with 2% server-side 20ms stragglers, hedged reads
// must cut p99 by at least 2x while issuing no more than 15% extra wire
// calls. The margins are deliberately huge — unhedged p99 is pinned at the
// straggler delay (2% > 1%), hedged p99 at roughly the hedge delay plus a
// loss-recovery round trip — so the assertion holds across machine speeds.
func TestHedgedTailImprovement(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second cluster sweep")
	}
	results, err := ClusterSweep(ClusterOptions{CallsPerThread: 600})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2", len(results))
	}
	var unhedged, hedged Result
	for _, r := range results {
		if r.Hedged {
			hedged = r
		} else {
			unhedged = r
		}
	}
	for _, r := range []Result{unhedged, hedged} {
		if r.N == 0 || r.NsPerOp <= 0 || r.P99Us <= 0 || r.CallsPerSec <= 0 {
			t.Fatalf("degenerate cell: %+v", r)
		}
		if r.Replicas != 3 {
			t.Fatalf("replicas = %d, want 3: %+v", r.Replicas, r)
		}
	}
	t.Logf("unhedged: p99 %.1fµs mean %.0fns issued/call %.3f", unhedged.P99Us, unhedged.NsPerOp, unhedged.IssuedPerCall)
	t.Logf("hedged:   p99 %.1fµs mean %.0fns issued/call %.3f", hedged.P99Us, hedged.NsPerOp, hedged.IssuedPerCall)

	if hedged.P99Us*2 > unhedged.P99Us {
		t.Errorf("hedged p99 %.1fµs not 2x better than unhedged %.1fµs", hedged.P99Us, unhedged.P99Us)
	}
	if hedged.IssuedPerCall > 1.15 {
		t.Errorf("hedged issued/call %.3f exceeds 1.15 budget", hedged.IssuedPerCall)
	}
	// The unhedged cell must not secretly issue extra calls: one logical
	// call, one wire call (retransmissions are frames, not new calls).
	if unhedged.IssuedPerCall != 1.0 {
		t.Errorf("unhedged issued/call = %.3f, want exactly 1.0", unhedged.IssuedPerCall)
	}
}
