// The replica-set hedging sweep: the tail-at-scale counterpart of the
// Table I cells. Where TailSweep prices frame loss against one server's
// retransmission engine, ClusterSweep prices it against three — the same
// Null call driven through internal/cluster's balancer, once plain and
// once with hedged requests, over a deliberately hostile floor: 10%
// symmetric frame loss on the caller's uplink plus a deterministic 2%
// slice of server-side straggler requests. The comparison isolates what
// hedging alone buys, because the two cells share everything else.
//
// Why this shape: the adaptive retransmission engine already recovers
// lost frames in well under a millisecond, and P2C already routes around
// a replica that is *persistently* slow. What neither can fix is a call
// that has been dispatched into a slow execution — the server answers the
// retransmission with an in-progress ack and the client just waits. Only
// a backup request to a different replica rescues that call, which is
// exactly the hedged cell's job: its p99 must sit at the hedge delay, not
// at the straggler's service time.
package realbench

import (
	"context"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"fireflyrpc/internal/cluster"
	"fireflyrpc/internal/core"
	"fireflyrpc/internal/faultnet"
	"fireflyrpc/internal/proto"
	"fireflyrpc/internal/stats"
	"fireflyrpc/internal/testsvc"
	"fireflyrpc/internal/transport"
)

// ClusterOptions configures the hedged-vs-unhedged replica-set sweep.
type ClusterOptions struct {
	Replicas       int           // replica-set size; default 3
	Loss           float64       // symmetric frame-drop probability on the caller uplink; default 0.10
	StragglerEvery int           // every Nth request per replica stalls in service; default 50 (2%)
	StragglerDelay time.Duration // straggler service time; default 20ms
	HedgeAfter     time.Duration // fixed hedge delay for the hedged cell; default 2ms
	Threads        int           // concurrent callers; default 4
	CallsPerThread int           // measured calls per caller; default 1000
	Seed           uint64        // fault schedule + balancer seed; default 1
	Log            io.Writer
}

func (o *ClusterOptions) defaults() {
	if o.Replicas == 0 {
		o.Replicas = 3
	}
	if o.Loss == 0 {
		o.Loss = 0.10
	}
	if o.StragglerEvery == 0 {
		o.StragglerEvery = 50
	}
	if o.StragglerDelay == 0 {
		o.StragglerDelay = 20 * time.Millisecond
	}
	if o.HedgeAfter == 0 {
		o.HedgeAfter = 2 * time.Millisecond
	}
	if o.Threads == 0 {
		o.Threads = 4
	}
	if o.CallsPerThread == 0 {
		o.CallsPerThread = 1000
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// stragglerImpl is the cluster-benchmark server: every Nth Null request
// stalls for the straggler delay — a deterministic stand-in for the GC
// pauses and queueing hiccups that give real services their p99. The rate
// (2% by default) sits below the balancer's p90 pick quantile on purpose:
// P2C cannot see it, so the straggler slice is exactly the traffic only a
// hedge can rescue.
type stragglerImpl struct {
	impl
	every int64
	delay time.Duration
	n     atomic.Int64
}

func (s *stragglerImpl) Null() error {
	if s.n.Add(1)%s.every == 0 {
		time.Sleep(s.delay)
	}
	return nil
}

// ClusterSweep runs the unhedged and hedged cells and returns them as
// @cluster-namespaced results for BENCH_realstack.json.
func ClusterSweep(opts ClusterOptions) ([]Result, error) {
	opts.defaults()
	var out []Result
	for _, hedged := range []bool{false, true} {
		res, err := clusterCell(hedged, opts)
		if err != nil {
			return out, err
		}
		out = append(out, res)
		if opts.Log != nil {
			mode := "unhedged"
			if hedged {
				mode = "hedged  "
			}
			fmt.Fprintf(opts.Log,
				"  %s %d replicas loss=%g: %6d calls  mean %7.0f ns  p99 %8.1f µs  issued/call %.3f\n",
				mode, opts.Replicas, opts.Loss, res.N, res.NsPerOp, res.P99Us, res.IssuedPerCall)
		}
	}
	return out, nil
}

func clusterCell(hedged bool, opts ClusterOptions) (Result, error) {
	ex := transport.NewExchange()
	// A tight retransmission clamp matters here: the 20ms straggler RTTs
	// feed the Jacobson estimator and would otherwise inflate the RTO past
	// the hedge delay, making every lost frame look hedge-worthy. With a
	// 1ms ceiling, loss recovery completes before the hedge timer fires and
	// only genuinely slow calls (stragglers, double losses) pay for a
	// backup request.
	cfg := proto.Config{
		RetransInterval: time.Millisecond,
		MaxRetries:      100,
		Workers:         2 * opts.Threads,
	}
	prof := faultnet.Loss(opts.Loss)
	var addrs []string
	var nodes []*core.Node
	for i := 0; i < opts.Replicas; i++ {
		name := fmt.Sprintf("replica-%d", i)
		node := core.NewNode(ex.Port(name), cfg)
		node.Export(testsvc.ExportTest(&stragglerImpl{
			every: int64(opts.StragglerEvery),
			delay: opts.StragglerDelay,
		}))
		nodes = append(nodes, node)
		addrs = append(addrs, name)
	}
	caller := core.NewNode(faultnet.Wrap(ex.Port("caller"), prof, opts.Seed), cfg)
	defer func() {
		caller.Close()
		for _, n := range nodes {
			n.Close()
		}
	}()
	cc, err := cluster.New(context.Background(), cluster.Config{
		Node:      caller,
		Resolver:  cluster.Static(addrs),
		ParseAddr: func(s string) (transport.Addr, error) { return transport.AddrOf(s), nil },
		Iface:     testsvc.TestName,
		Version:   testsvc.TestVersion,
		Hedge:     cluster.HedgeConfig{Enabled: hedged, After: opts.HedgeAfter},
		Seed:      opts.Seed,
	})
	if err != nil {
		return Result{}, err
	}

	var lat stats.Sample
	run := func(perThread int, record bool) error {
		var firstErr error
		var errMu sync.Mutex
		samples := make([]stats.Sample, opts.Threads)
		var wg sync.WaitGroup
		for th := 0; th < opts.Threads; th++ {
			wg.Add(1)
			go func(th int) {
				defer wg.Done()
				for i := 0; i < perThread; i++ {
					start := time.Now()
					err := cc.Call(context.Background(), testsvc.TestProcNull, 0, nil, nil)
					if err != nil {
						errMu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						errMu.Unlock()
						return
					}
					if record {
						samples[th].Add(time.Since(start))
					}
				}
			}(th)
		}
		wg.Wait()
		if record {
			lat = stats.Sample{}
			for th := range samples {
				lat.Merge(&samples[th])
			}
		}
		return firstErr
	}
	// Warm the sessions, RTT estimators, and balancer histograms off the
	// record, then snapshot the hedge accounting around the measured window.
	if err := run(64, false); err != nil {
		return Result{}, fmt.Errorf("cluster warmup (hedged=%v): %v", hedged, err)
	}
	before := cc.Stats()
	start := time.Now()
	if err := run(opts.CallsPerThread, true); err != nil {
		return Result{}, fmt.Errorf("cluster cell (hedged=%v): %v", hedged, err)
	}
	elapsed := time.Since(start)
	after := cc.Stats()

	calls := after.Calls - before.Calls
	issued := after.Issued - before.Issued
	n := lat.N()
	if n == 0 || calls == 0 {
		return Result{}, fmt.Errorf("cluster cell (hedged=%v): no calls measured", hedged)
	}
	res := Result{
		Bench:         "Null",
		Transport:     "mem",
		Profile:       prof.Name,
		Replicas:      opts.Replicas,
		Hedged:        hedged,
		Threads:       opts.Threads,
		N:             n,
		NsPerOp:       lat.Mean() * 1e3, // Sample reports µs
		P99Us:         lat.Percentile(99),
		IssuedPerCall: float64(issued) / float64(calls),
	}
	if elapsed > 0 {
		res.CallsPerSec = float64(n) / elapsed.Seconds()
	}
	return res, nil
}
