// Package core is the Firefly RPC runtime for the real (non-simulated)
// stack: interface export and binding, per-thread activities, and the
// helpers that automatically generated stubs call.
//
// The structure mirrors the paper's: the transport mechanism is chosen at
// bind time (a Node is built over UDP, the in-process exchange, or any other
// transport.Transport); the caller stub marshals arguments into a call
// packet and blocks while the packet-exchange protocol does a send+receive
// in each direction; the server side keeps a pool of workers waiting for
// calls to dispatch through the interface registry.
package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"fireflyrpc/internal/marshal"
	"fireflyrpc/internal/proto"
	"fireflyrpc/internal/transport"
	"fireflyrpc/internal/wire"
)

// Errors.
var (
	ErrNoSuchInterface = errors.New("core: no such interface exported")
	ErrNoSuchProc      = errors.New("core: no such procedure in interface")
	ErrMarshal         = errors.New("core: argument marshalling failed")
)

// ProcFunc is a server-side procedure stub: it unmarshals arguments from
// args, invokes the implementation, and returns the marshalled results.
type ProcFunc func(src transport.Addr, args *marshal.Dec) ([]byte, error)

// ProcCtxFunc is a context-aware procedure stub. The context carries the
// caller's distributed trace identity when the call arrived traced; an
// implementation that makes further RPCs threads ctx into CallCtx/Go so its
// downstream spans parent onto this call's span.
type ProcCtxFunc func(ctx context.Context, src transport.Addr, args *marshal.Dec) ([]byte, error)

// Interface is an exportable set of procedures, identified on the wire by a
// hash of its name and version (as the stub compiler assigns).
type Interface struct {
	Name    string
	Version uint32
	ID      uint32
	procs   map[uint16]ProcCtxFunc
}

// NewInterface creates an interface; register procedures with Proc.
func NewInterface(name string, version uint32) *Interface {
	return &Interface{
		Name:    name,
		Version: version,
		ID:      wire.InterfaceID(name, version),
		procs:   make(map[uint16]ProcCtxFunc),
	}
}

// Proc registers a procedure stub under its wire ID. The adapter closure is
// built once at registration, so context-oblivious stubs pay nothing per
// call.
func (i *Interface) Proc(id uint16, fn ProcFunc) *Interface {
	return i.ProcCtx(id, func(_ context.Context, src transport.Addr, args *marshal.Dec) ([]byte, error) {
		return fn(src, args)
	})
}

// ProcCtx registers a context-aware procedure stub under its wire ID.
func (i *Interface) ProcCtx(id uint16, fn ProcCtxFunc) *Interface {
	if _, dup := i.procs[id]; dup {
		panic(fmt.Sprintf("core: duplicate proc %d in %s", id, i.Name))
	}
	i.procs[id] = fn
	return i
}

// Node is one RPC endpoint: it can export interfaces (server role) and bind
// to remote ones (caller role) over a single transport.
type Node struct {
	conn *proto.Conn

	mu     sync.RWMutex
	ifaces map[uint32]*Interface
}

// NewNode builds an endpoint over tr. The protocol configuration carries
// the retransmission policy and server worker count.
func NewNode(tr transport.Transport, cfg proto.Config) *Node {
	n := &Node{ifaces: make(map[uint32]*Interface)}
	n.conn = proto.NewConnTraced(tr, cfg, n.dispatch)
	return n
}

// Addr returns the node's transport address.
func (n *Node) Addr() transport.Addr { return n.conn.LocalAddr() }

// Conn exposes the protocol connection (for Ping and Stats).
func (n *Node) Conn() *proto.Conn { return n.conn }

// Close shuts the node down.
func (n *Node) Close() error { return n.conn.Close() }

// Export makes an interface callable by remote nodes.
func (n *Node) Export(iface *Interface) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.ifaces[iface.ID] = iface
}

// decPool recycles server-side argument decoders so dispatch does not
// allocate one per incoming call. A ProcFunc must not retain the Dec past
// its return (generated stubs never do).
var decPool = sync.Pool{New: func() any { return new(marshal.Dec) }}

// dispatch is the proto.TraceHandler: find the interface and procedure, run
// it. A traced call gets a context carrying the caller's trace identity so
// ProcCtx implementations can re-emit it on chained calls; the untraced
// fast path reuses the shared background context and allocates nothing.
func (n *Node) dispatch(src transport.Addr, tc wire.TraceCtx, ifaceID uint32, proc uint16, args []byte) ([]byte, error) {
	n.mu.RLock()
	iface := n.ifaces[ifaceID]
	n.mu.RUnlock()
	if iface == nil {
		return nil, ErrNoSuchInterface
	}
	fn := iface.procs[proc]
	if fn == nil {
		return nil, ErrNoSuchProc
	}
	ctx := context.Background()
	if tc.Valid() {
		ctx = proto.ContextWithTrace(ctx, tc)
	}
	d := decPool.Get().(*marshal.Dec)
	d.Reset(args)
	res, err := fn(ctx, src, d)
	d.Reset(nil) // drop the args reference before pooling
	decPool.Put(d)
	return res, err
}

// Binding is the result of binding to a remote instance of an interface:
// the bundle of transport procedures the caller stub will use.
type Binding struct {
	node   *Node
	remote transport.Addr
	iface  uint32
}

// Bind names a remote interface instance. (No packets are exchanged at bind
// time on the fast path; use Probe to verify liveness.)
func (n *Node) Bind(remote transport.Addr, name string, version uint32) *Binding {
	return &Binding{node: n, remote: remote, iface: wire.InterfaceID(name, version)}
}

// Probe checks the remote end is answering.
func (b *Binding) Probe(timeout time.Duration) error {
	return b.node.conn.Ping(b.remote, timeout)
}

// Client is a per-thread handle on a binding: one activity whose calls are
// sequenced. A Client must not be used from multiple goroutines at once —
// make one per calling goroutine, as the Firefly made one activity per
// thread.
//
// Like the Firefly's per-thread call table entry, a Client owns long-lived
// marshalling state: one argument buffer, one result buffer, and one
// encoder/decoder pair, all reused across calls so the single-packet fast
// path performs no per-call heap allocation in this layer.
type Client struct {
	b        *Binding
	activity uint64
	seq      atomic.Uint32

	argBuf []byte
	resBuf []byte
	enc    marshal.Enc
	dec    marshal.Dec

	// Async-call slots. The packet-exchange protocol permits one call in
	// flight per activity (the next call's seq supersedes the previous), so
	// each concurrently outstanding Go needs its own activity; slots bundle
	// that activity with its own reusable marshalling state and are
	// recycled through a freelist, so steady-state fan-out allocates
	// nothing per call.
	slotMu   sync.Mutex
	freeSlot *slot
}

// NewClient allocates an activity on the binding.
func (b *Binding) NewClient() *Client {
	return &Client{
		b:        b,
		activity: b.node.conn.NewActivity(),
		resBuf:   make([]byte, 0, wire.MaxSinglePacketPayload),
	}
}

// Call performs a remote call. argSize is the exact marshalled size of the
// arguments; enc fills them; dec (which may be nil) consumes the results.
// Generated stubs compute argSize from the signature so the call packet
// buffer is sized exactly, like the Starter's packet buffer — and the buffer
// itself is the Client's, recycled across calls.
//
// The Dec handed to dec reads the Client's reusable result buffer, which
// the next Call overwrites: dec must copy anything it keeps (the copying
// primitives — FixedBytes, VarBytes, VarBytesInto, String — are safe; the
// server-side aliasing primitives must not be used here).
func (c *Client) Call(proc uint16, argSize int, enc func(*marshal.Enc), dec func(*marshal.Dec)) error {
	return c.CallCtx(context.Background(), proc, argSize, enc, dec)
}

// CallCtx is Call with cancellation: the ctx deadline bounds the whole
// exchange (retransmissions included) and cancelling ctx abandons the call
// immediately, releasing its protocol-level state and notifying the server.
func (c *Client) CallCtx(ctx context.Context, proc uint16, argSize int, enc func(*marshal.Enc), dec func(*marshal.Dec)) error {
	var args []byte
	if argSize > 0 {
		if cap(c.argBuf) < argSize {
			c.argBuf = make([]byte, argSize)
		}
		args = c.argBuf[:argSize]
		c.enc.Reset(args)
		if enc != nil {
			enc(&c.enc)
		}
		if c.enc.Err() != nil {
			return fmt.Errorf("%w: %v", ErrMarshal, c.enc.Err())
		}
		args = c.enc.Bytes()
	} else if enc != nil {
		c.enc.Reset(nil)
		enc(&c.enc)
	}
	seq := c.seq.Add(1)
	res, err := c.b.node.conn.CallBufCtx(ctx, c.b.remote, c.activity, seq, c.b.iface, proc, args, c.resBuf)
	if err != nil {
		return err
	}
	// A multi-fragment result can outgrow the preallocated buffer; keep the
	// grown storage for subsequent calls.
	if cap(res) > cap(c.resBuf) {
		c.resBuf = res[:0]
	}
	if dec != nil {
		c.dec.Reset(res)
		dec(&c.dec)
		if c.dec.Err() != nil {
			return c.dec.Err()
		}
	}
	return nil
}

// slot is one async call's context: an activity of its own (the protocol
// allows one outstanding call per activity), reusable argument/result
// buffers, marshalling state, and the protocol-level pending handle. Slots
// live on the Client's freelist between calls.
type slot struct {
	activity uint64
	seq      uint32
	argBuf   []byte
	resBuf   []byte
	enc      marshal.Enc
	dec      marshal.Dec
	pc       proto.Pending
	pending  Pending
	next     *slot
}

// Pending is the handle to one in-flight asynchronous call started with
// Client.Go. Exactly one Await must follow each Go; after Await returns,
// the handle is dead (its slot is recycled into the next Go).
type Pending struct {
	c       *Client
	s       *slot
	awaited bool
	err     error
}

// Done returns a channel closed when the call has completed; collect the
// outcome with Await. Valid only until Await returns.
func (p *Pending) Done() <-chan struct{} { return p.s.pc.Done() }

// Await blocks until the call completes or ctx is cancelled, runs dec over
// the result (dec reads a buffer the slot's next call overwrites, so it
// must copy anything it keeps), and recycles the slot.
func (p *Pending) Await(ctx context.Context, dec func(*marshal.Dec)) error {
	if p.awaited {
		return p.err
	}
	s, c := p.s, p.c
	res, err := s.pc.Await(ctx)
	if err == nil {
		if cap(res) > cap(s.resBuf) {
			s.resBuf = res[:0]
		}
		if dec != nil {
			s.dec.Reset(res)
			dec(&s.dec)
			err = s.dec.Err()
			s.dec.Reset(nil)
		}
	}
	p.awaited = true
	p.err = err
	c.putSlot(s)
	return err
}

func (c *Client) getSlot() *slot {
	c.slotMu.Lock()
	s := c.freeSlot
	if s != nil {
		c.freeSlot = s.next
		s.next = nil
	}
	c.slotMu.Unlock()
	if s == nil {
		s = &slot{
			activity: c.b.node.conn.NewActivity(),
			resBuf:   make([]byte, 0, wire.MaxSinglePacketPayload),
		}
		s.pending = Pending{c: c, s: s}
	}
	s.pending.awaited = false
	s.pending.err = nil
	return s
}

func (c *Client) putSlot(s *slot) {
	c.slotMu.Lock()
	s.next = c.freeSlot
	c.freeSlot = s
	c.slotMu.Unlock()
}

// Go starts an asynchronous call and returns its pending handle. argSize
// and enc are as in Call. The call proceeds without a dedicated goroutine:
// the protocol's retransmission engine drives it, and the result is
// collected with Await (or awaited after Done fires). A Client may have
// any number of Gos outstanding; each uses a pooled slot with its own
// activity. Like Call, Go and Await must be used from the Client's owning
// goroutine.
func (c *Client) Go(ctx context.Context, proc uint16, argSize int, enc func(*marshal.Enc)) (*Pending, error) {
	s := c.getSlot()
	var args []byte
	if argSize > 0 {
		if cap(s.argBuf) < argSize {
			s.argBuf = make([]byte, argSize)
		}
		args = s.argBuf[:argSize]
		s.enc.Reset(args)
		if enc != nil {
			enc(&s.enc)
		}
		if s.enc.Err() != nil {
			err := fmt.Errorf("%w: %v", ErrMarshal, s.enc.Err())
			c.putSlot(s)
			return nil, err
		}
		args = s.enc.Bytes()
	} else if enc != nil {
		s.enc.Reset(nil)
		enc(&s.enc)
	}
	s.seq++
	if err := c.b.node.conn.StartCall(ctx, c.b.remote, s.activity, s.seq, c.b.iface, proc, args, s.resBuf, &s.pc); err != nil {
		c.putSlot(s)
		return nil, err
	}
	return &s.pending, nil
}

// CheckLen validates a fixed-length array argument against its IDL-declared
// size; generated stubs call it before marshalling.
func CheckLen(name string, got, want int) error {
	if got != want {
		return fmt.Errorf("core: argument %s has %d bytes, interface declares %d", name, got, want)
	}
	return nil
}

// Reply is the server-stub helper: allocate a result buffer of exactly
// size bytes and fill it.
func Reply(size int, enc func(*marshal.Enc)) ([]byte, error) {
	buf := make([]byte, size)
	e := marshal.NewEnc(buf)
	if enc != nil {
		enc(e)
	}
	if e.Err() != nil {
		return nil, e.Err()
	}
	return e.Bytes(), nil
}
