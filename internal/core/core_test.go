package core

import (
	"sync"
	"testing"
	"time"

	"fireflyrpc/internal/marshal"
	"fireflyrpc/internal/proto"
	"fireflyrpc/internal/transport"
)

// arith is a tiny hand-written interface: Add(a, b int32) int32 and
// Concat(s Text) Text — the kind of stubs the IDL compiler generates.
func arithInterface(t *testing.T) *Interface {
	return NewInterface("Arith", 1).
		Proc(1, func(src transport.Addr, d *marshal.Dec) ([]byte, error) {
			a, b := d.Int32(), d.Int32()
			if err := d.Err(); err != nil {
				return nil, err
			}
			return Reply(4, func(e *marshal.Enc) { e.PutInt32(a + b) })
		}).
		Proc(2, func(src transport.Addr, d *marshal.Dec) ([]byte, error) {
			txt := d.GetText()
			if err := d.Err(); err != nil {
				return nil, err
			}
			out := marshal.NewText(txt.String() + txt.String())
			return Reply(marshal.TextWireSize(out), func(e *marshal.Enc) { e.PutText(out) })
		})
}

func testNodes(t *testing.T) (caller, server *Node) {
	t.Helper()
	ex := transport.NewExchange()
	cfg := proto.Config{RetransInterval: 20 * time.Millisecond, MaxRetries: 6, Workers: 4}
	caller = NewNode(ex.Port("caller"), cfg)
	server = NewNode(ex.Port("server"), cfg)
	server.Export(arithInterface(t))
	t.Cleanup(func() { caller.Close(); server.Close() })
	return caller, server
}

func TestCallAdd(t *testing.T) {
	caller, server := testNodes(t)
	b := caller.Bind(server.Addr(), "Arith", 1)
	c := b.NewClient()
	var sum int32
	err := c.Call(1, 8,
		func(e *marshal.Enc) { e.PutInt32(20); e.PutInt32(22) },
		func(d *marshal.Dec) { sum = d.Int32() })
	if err != nil {
		t.Fatal(err)
	}
	if sum != 42 {
		t.Fatalf("sum = %d, want 42", sum)
	}
}

func TestCallText(t *testing.T) {
	caller, server := testNodes(t)
	c := caller.Bind(server.Addr(), "Arith", 1).NewClient()
	in := marshal.NewText("fire")
	var out *marshal.Text
	err := c.Call(2, marshal.TextWireSize(in),
		func(e *marshal.Enc) { e.PutText(in) },
		func(d *marshal.Dec) { out = d.GetText() })
	if err != nil {
		t.Fatal(err)
	}
	if out.String() != "firefire" {
		t.Fatalf("out = %q", out.String())
	}
}

func TestUnknownInterface(t *testing.T) {
	caller, server := testNodes(t)
	c := caller.Bind(server.Addr(), "NoSuch", 1).NewClient()
	err := c.Call(1, 0, nil, nil)
	if err != proto.ErrRejected {
		t.Fatalf("err = %v, want ErrRejected", err)
	}
}

func TestUnknownProc(t *testing.T) {
	caller, server := testNodes(t)
	c := caller.Bind(server.Addr(), "Arith", 1).NewClient()
	err := c.Call(99, 0, nil, nil)
	if err != proto.ErrRejected {
		t.Fatalf("err = %v, want ErrRejected", err)
	}
}

func TestWrongVersionRejected(t *testing.T) {
	caller, server := testNodes(t)
	c := caller.Bind(server.Addr(), "Arith", 2).NewClient()
	if err := c.Call(1, 8, func(e *marshal.Enc) { e.PutInt64(0) }, nil); err != proto.ErrRejected {
		t.Fatalf("err = %v, want ErrRejected (version mismatch)", err)
	}
}

func TestProbe(t *testing.T) {
	caller, server := testNodes(t)
	b := caller.Bind(server.Addr(), "Arith", 1)
	if err := b.Probe(time.Second); err != nil {
		t.Fatalf("probe: %v", err)
	}
}

func TestMarshalErrorSurfaces(t *testing.T) {
	caller, server := testNodes(t)
	c := caller.Bind(server.Addr(), "Arith", 1).NewClient()
	// argSize too small for what enc writes: overflow must surface.
	err := c.Call(1, 4, func(e *marshal.Enc) { e.PutInt32(1); e.PutInt32(2) }, nil)
	if err == nil {
		t.Fatal("marshal overflow not reported")
	}
}

func TestShortResultSurfaces(t *testing.T) {
	caller, server := testNodes(t)
	c := caller.Bind(server.Addr(), "Arith", 1).NewClient()
	err := c.Call(1, 8,
		func(e *marshal.Enc) { e.PutInt32(1); e.PutInt32(2) },
		func(d *marshal.Dec) { d.Int64(); d.Int64() }) // reads 16, result is 4
	if err != marshal.ErrShort {
		t.Fatalf("err = %v, want marshal.ErrShort", err)
	}
}

func TestConcurrentClients(t *testing.T) {
	caller, server := testNodes(t)
	b := caller.Bind(server.Addr(), "Arith", 1)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := b.NewClient()
			for i := 0; i < 50; i++ {
				var sum int32
				err := c.Call(1, 8,
					func(e *marshal.Enc) { e.PutInt32(int32(g)); e.PutInt32(int32(i)) },
					func(d *marshal.Dec) { sum = d.Int32() })
				if err != nil {
					t.Errorf("g%d i%d: %v", g, i, err)
					return
				}
				if sum != int32(g+i) {
					t.Errorf("g%d i%d: sum %d", g, i, sum)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestDuplicateProcPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate proc did not panic")
		}
	}()
	NewInterface("X", 1).Proc(1, nil).Proc(1, nil)
}

func TestOverUDP(t *testing.T) {
	st, err := transport.ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Skip("no loopback UDP:", err)
	}
	ct, err := transport.ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cfg := proto.DefaultConfig()
	server := NewNode(st, cfg)
	caller := NewNode(ct, cfg)
	defer server.Close()
	defer caller.Close()
	server.Export(arithInterface(t))

	c := caller.Bind(server.Addr(), "Arith", 1).NewClient()
	var sum int32
	err = c.Call(1, 8,
		func(e *marshal.Enc) { e.PutInt32(-5); e.PutInt32(15) },
		func(d *marshal.Dec) { sum = d.Int32() })
	if err != nil {
		t.Fatal(err)
	}
	if sum != 10 {
		t.Fatalf("sum = %d", sum)
	}
}

func TestOverAuthenticatedTransport(t *testing.T) {
	ex := transport.NewExchange()
	key := []byte("rpc shared secret")
	cfg := proto.Config{RetransInterval: 15 * time.Millisecond, MaxRetries: 3, Workers: 2}
	caller := NewNode(transport.WithAuth(ex.Port("caller"), key), cfg)
	server := NewNode(transport.WithAuth(ex.Port("server"), key), cfg)
	defer caller.Close()
	defer server.Close()
	server.Export(arithInterface(t))

	c := caller.Bind(transport.AddrOf("server"), "Arith", 1).NewClient()
	var sum int32
	err := c.Call(1, 8,
		func(e *marshal.Enc) { e.PutInt32(40); e.PutInt32(2) },
		func(d *marshal.Dec) { sum = d.Int32() })
	if err != nil || sum != 42 {
		t.Fatalf("authenticated call: sum=%d err=%v", sum, err)
	}

	// A caller with the wrong key is indistinguishable from packet loss:
	// every frame is dropped and the call times out.
	rogue := NewNode(transport.WithAuth(ex.Port("rogue"), []byte("wrong")), cfg)
	defer rogue.Close()
	rc := rogue.Bind(transport.AddrOf("server"), "Arith", 1).NewClient()
	if err := rc.Call(1, 8, func(e *marshal.Enc) { e.PutInt64(0) }, nil); err != proto.ErrTimeout {
		t.Fatalf("rogue err = %v, want ErrTimeout", err)
	}
}
