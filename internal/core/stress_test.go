package core

import (
	"fmt"
	"sync"
	"testing"

	"fireflyrpc/internal/marshal"
	"fireflyrpc/internal/proto"
	"fireflyrpc/internal/transport"
)

// TestConcurrentClientsStress runs 8 Clients of one Binding concurrently —
// each a goroutine with its own activity and reusable marshalling buffers —
// against a single server Node. Under -race this checks that the per-Client
// buffer reuse, the pooled dispatch decoder, and the worker pool compose
// without shared-state races.
func TestConcurrentClientsStress(t *testing.T) {
	cfg := proto.DefaultConfig()
	cfg.Workers = 16
	ex := transport.NewExchange()
	server := NewNode(ex.Port("server"), cfg)
	defer server.Close()
	caller := NewNode(ex.Port("caller"), cfg)
	defer caller.Close()

	iface := NewInterface("stress", 1).
		Proc(1, func(_ transport.Addr, d *marshal.Dec) ([]byte, error) {
			a, b := d.Int32(), d.Int32()
			if d.Err() != nil {
				return nil, d.Err()
			}
			return Reply(4, func(e *marshal.Enc) { e.PutInt32(a + b) })
		})
	server.Export(iface)
	binding := caller.Bind(server.Addr(), "stress", 1)

	const clients = 8
	calls := 250
	if testing.Short() {
		calls = 50
	}
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			cl := binding.NewClient()
			for j := 0; j < calls; j++ {
				a, b := int32(id), int32(j)
				var sum int32
				err := cl.Call(1, 8, func(e *marshal.Enc) {
					e.PutInt32(a)
					e.PutInt32(b)
				}, func(d *marshal.Dec) {
					sum = d.Int32()
				})
				if err != nil {
					errs <- fmt.Errorf("client %d call %d: %w", id, j, err)
					return
				}
				if sum != a+b {
					errs <- fmt.Errorf("client %d call %d: got %d, want %d", id, j, sum, a+b)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
