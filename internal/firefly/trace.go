package firefly

import "fireflyrpc/internal/sim"

// Tracer receives the machine model's timeline events: CPU occupancy spans
// (thread compute segments, interrupt chains, deferred kernel bookkeeping)
// and completed controller operations (QBus DMA transfers, the DEQNA's
// Ethernet hold). A nil tracer costs one pointer comparison per hook site;
// an installed tracer must only record — the hooks fire after the model's
// own state changes and never affect virtual time.
type Tracer interface {
	// CPUSpanBegin opens a span on one CPU's track. kind is "thread",
	// "interrupt", or "deferred"; name carries the thread name for thread
	// spans and is empty otherwise.
	CPUSpanBegin(at sim.Time, machine string, cpu int, kind, name string)
	// CPUSpanEnd closes the most recent open span on the CPU's track.
	CPUSpanEnd(at sim.Time, machine string, cpu int)
	// CtlOp reports a completed controller operation that occupied the
	// engine for d ending at `at` (the span is [at-d, at]). op is "qbus-tx"
	// (packet read from memory), "eth-hold" (DEQNA engine held for the wire
	// transfer), or "qbus-rx" (arriving packet written to memory).
	CtlOp(at sim.Time, machine string, op string, bytes int, d sim.Duration)
}

// SetTracer installs (nil removes) the machine's timeline tracer. Install
// before the simulation runs so spans pair correctly.
func (m *Machine) SetTracer(tr Tracer) { m.tracer = tr }

// Tracer returns the installed timeline tracer, nil if none.
func (m *Machine) Tracer() Tracer { return m.tracer }
