package firefly

import "fireflyrpc/internal/sim"

// Proc is a Firefly thread: a simulated thread whose CPU work is scheduled
// onto the machine's processors by the Nub scheduler.
type Proc struct {
	M *Machine
	t *sim.Thread
}

// SpawnProc starts a thread on the machine.
func (s *Sched) SpawnProc(name string, fn func(p *Proc)) *Proc {
	p := &Proc{M: s.m}
	p.t = s.m.K.Spawn(name, func(t *sim.Thread) {
		fn(p)
	})
	return p
}

// Now returns the virtual time.
func (p *Proc) Now() sim.Time { return p.M.K.Now() }

// Name returns the thread name.
func (p *Proc) Name() string { return p.t.Name() }

// Sleep idles the thread (no CPU consumed) for d.
func (p *Proc) Sleep(d sim.Duration) { p.t.Sleep(d) }

// Compute executes d of CPU work, queueing for a processor if none is idle
// and absorbing any interrupt preemptions on CPU 0.
func (p *Proc) Compute(d sim.Duration) {
	if d <= 0 {
		return
	}
	wake := p.t.Waker()
	p.M.Sched.submitCompute(p, d, wake)
	p.t.Block("compute")
}

// PrepareWait readies the thread to block in the call table. The returned
// Waiter must be registered (e.g. in a call-table entry) before calling
// Wait; the Ethernet interrupt handler completes it with Sched.Wakeup.
func (p *Proc) PrepareWait() *Waiter {
	return &Waiter{p: p}
}

// Wait blocks until the Waiter is woken, then pays any scheduler slow-path
// cost the wakeup incurred (as CPU work, subject to CPU availability). If
// the wakeup already landed while the thread was finishing overlapped work,
// Wait returns without blocking.
func (p *Proc) Wait(w *Waiter) {
	if !w.delivered {
		w.wake = p.t.Waker()
		w.parked = true
		p.t.Block("call-table")
	}
	w.parked = false
	if w.extra > 0 {
		p.Compute(w.extra)
	}
}
