// Package firefly models the Firefly multiprocessor: five (configurable)
// MicroVAX II CPUs sharing memory, a Nub scheduler providing threads with
// wakeup semantics, interrupts delivered to CPU 0 only (the CPU attached to
// the QBus), and a DEQNA Ethernet controller whose QBus and Ethernet
// transfers do not overlap.
//
// The model executes real work (the RPC stack builds and parses real packet
// bytes) but charges virtual time from the paper's cost model, so simulated
// latencies decompose exactly into Table VI/VII steps plus contention.
package firefly

import (
	"fmt"

	"fireflyrpc/internal/costmodel"
	"fireflyrpc/internal/ether"
	"fireflyrpc/internal/sim"
	"fireflyrpc/internal/wire"
)

// Machine is one Firefly.
type Machine struct {
	K    *sim.Kernel
	Name string
	Cfg  *costmodel.Config
	MAC  wire.MAC
	IP   wire.IPAddr

	Sched *Sched
	Ctrl  *Controller

	// UniprocExtra is the additional scheduler path charged per wakeup when
	// the machine is a uniprocessor ("extra code gets included in the basic
	// latency for RPC, such as a longer path through the scheduler", §5).
	// The RPC stack sets it from the cost model according to the machine's
	// role (caller or server).
	UniprocExtra sim.Duration

	// CPUBusy integrates busy CPU-time (thread compute + interrupt work)
	// for utilization reporting (§2.1's "about 1.2 CPUs").
	cpuBusy    sim.Duration
	busyCount  int
	lastChange sim.Time

	// tracer, when non-nil, receives CPU spans and controller operations
	// for timeline export (see trace.go). Off it costs one nil check.
	tracer Tracer
}

// NumCPUs returns the machine's processor count.
func (m *Machine) NumCPUs() int { return m.Sched.ncpu }

// New creates a machine with the configured CPU count attached to seg.
// host gives it distinct MAC/IP addresses. cpus is taken from the caller
// (Tables X and XI give caller and server different counts).
func New(k *sim.Kernel, name string, cfg *costmodel.Config, seg *ether.Segment, host uint32, cpus int) *Machine {
	if cpus < 1 {
		panic("firefly: machine needs at least one CPU")
	}
	m := &Machine{
		K:    k,
		Name: name,
		Cfg:  cfg,
		MAC:  wire.MACForHost(host),
		IP:   wire.IPForHost(host),
	}
	m.Sched = newSched(m, cpus)
	m.Ctrl = newController(m, seg)
	return m
}

// Endpoint returns the machine's wire endpoint.
func (m *Machine) Endpoint() wire.Endpoint {
	return wire.Endpoint{MAC: m.MAC, IP: m.IP, Port: wire.RPCPort}
}

func (m *Machine) accountBusy(delta int) {
	now := m.K.Now()
	m.cpuBusy += sim.Duration(int64(now-m.lastChange) * int64(m.busyCount))
	m.lastChange = now
	m.busyCount += delta
}

// CPUSeconds returns total busy CPU-time accumulated so far.
func (m *Machine) CPUSeconds() float64 {
	m.accountBusy(0)
	return float64(m.cpuBusy) / 1e9
}

// MeanBusyCPUs returns time-averaged busy CPUs over [from, now].
func (m *Machine) MeanBusyCPUs(from sim.Time, busyAtFrom sim.Duration) float64 {
	m.accountBusy(0)
	elapsed := m.K.Now().Sub(from)
	if elapsed <= 0 {
		return 0
	}
	return float64(m.cpuBusy-busyAtFrom) / float64(elapsed)
}

// BusySnapshot returns the busy-time integral, for MeanBusyCPUs deltas.
func (m *Machine) BusySnapshot() sim.Duration {
	m.accountBusy(0)
	return m.cpuBusy
}

// String identifies the machine.
func (m *Machine) String() string {
	return fmt.Sprintf("%s(%d CPUs)", m.Name, m.Sched.ncpu)
}

// StartBackgroundLoad spawns the "standard background threads": n threads
// that together consume roughly util CPUs, in exponentially distributed
// bursts. The paper's idle Fireflies used about 0.15 CPUs.
func (m *Machine) StartBackgroundLoad(n int, util float64, burstMean sim.Duration) {
	if n <= 0 || util <= 0 {
		return
	}
	perThread := util / float64(n)
	gapMean := sim.Duration(float64(burstMean) * (1 - perThread) / perThread)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("%s/bg%d", m.Name, i)
		m.Sched.SpawnProc(name, func(p *Proc) {
			rng := m.K.RNG()
			for {
				p.Sleep(rng.Exp(gapMean))
				p.Compute(rng.Exp(burstMean))
			}
		})
	}
}
