package firefly

import (
	"testing"

	"fireflyrpc/internal/costmodel"
	"fireflyrpc/internal/ether"
	"fireflyrpc/internal/sim"
	"fireflyrpc/internal/wire"
)

func newTestMachine(t *testing.T, cpus int) (*sim.Kernel, *Machine) {
	t.Helper()
	k := sim.NewKernel(1)
	cfg := costmodel.NewConfig()
	cfg.TimingJitter = 0
	seg := ether.NewSegment(k)
	m := New(k, "ff1", &cfg, seg, 1, cpus)
	return k, m
}

func TestComputeTakesExactTime(t *testing.T) {
	k, m := newTestMachine(t, 5)
	var done sim.Time
	m.Sched.SpawnProc("w", func(p *Proc) {
		p.Compute(sim.Micros(100))
		done = p.Now()
	})
	k.Run()
	if done != sim.Time(sim.Micros(100)) {
		t.Fatalf("compute finished at %v, want 100µs", done)
	}
}

func TestComputeQueuesWhenCPUsBusy(t *testing.T) {
	k, m := newTestMachine(t, 2)
	var finish []sim.Time
	for i := 0; i < 3; i++ {
		m.Sched.SpawnProc("w", func(p *Proc) {
			p.Compute(sim.Micros(100))
			finish = append(finish, p.Now())
		})
	}
	k.Run()
	if len(finish) != 3 {
		t.Fatalf("%d finished", len(finish))
	}
	// Two run in parallel, third queues behind the first to finish and pays
	// a thread-to-thread context switch when dispatched from the queue.
	if finish[0] != sim.Time(sim.Micros(100)) || finish[1] != sim.Time(sim.Micros(100)) {
		t.Errorf("first two finished at %v, %v; want 100µs", finish[0], finish[1])
	}
	want3 := sim.Time(sim.Micros(200)).Add(m.Cfg.ContextSwitch())
	if finish[2] != want3 {
		t.Errorf("third finished at %v, want %v (queued + context switch)", finish[2], want3)
	}
}

func TestInterruptPreemptsCPU0Thread(t *testing.T) {
	k, m := newTestMachine(t, 1) // uniprocessor: thread must be on CPU 0
	var done sim.Time
	m.Sched.SpawnProc("w", func(p *Proc) {
		p.Compute(sim.Micros(100))
		done = p.Now()
	})
	var intrAt sim.Time
	k.After(sim.Micros(40), func() {
		m.Sched.Interrupt([]IntrStep{{D: sim.Micros(30), Fn: func() { intrAt = k.Now() }}})
	})
	k.Run()
	if intrAt != sim.Time(sim.Micros(70)) {
		t.Errorf("interrupt completed at %v, want 70µs (runs immediately)", intrAt)
	}
	if done != sim.Time(sim.Micros(130)) {
		t.Errorf("thread finished at %v, want 130µs (100 work + 30 preempted)", done)
	}
	if m.Sched.Counters().Preemptions != 1 {
		t.Errorf("preemptions = %d, want 1", m.Sched.Counters().Preemptions)
	}
}

func TestInterruptDoesNotPreemptOtherCPUs(t *testing.T) {
	k, m := newTestMachine(t, 2) // thread prefers CPU 1
	var done sim.Time
	m.Sched.SpawnProc("w", func(p *Proc) {
		p.Compute(sim.Micros(100))
		done = p.Now()
	})
	k.After(sim.Micros(40), func() {
		m.Sched.Interrupt([]IntrStep{{D: sim.Micros(30)}})
	})
	k.Run()
	if done != sim.Time(sim.Micros(100)) {
		t.Errorf("thread finished at %v, want 100µs (interrupt ran on idle CPU 0)", done)
	}
	if m.Sched.Counters().Preemptions != 0 {
		t.Errorf("preemptions = %d, want 0", m.Sched.Counters().Preemptions)
	}
}

func TestQueuedInterruptChainsRunFIFO(t *testing.T) {
	k, m := newTestMachine(t, 1)
	var order []int
	k.After(0, func() {
		m.Sched.Interrupt([]IntrStep{{D: sim.Micros(50), Fn: func() { order = append(order, 1) }}})
		m.Sched.Interrupt([]IntrStep{{D: sim.Micros(10), Fn: func() { order = append(order, 2) }}})
		m.Sched.Interrupt([]IntrStep{{D: sim.Micros(10), Fn: func() { order = append(order, 3) }}})
	})
	k.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("interrupt order %v, want [1 2 3]", order)
	}
	if k.Now() != sim.Time(sim.Micros(70)) {
		t.Fatalf("chains drained at %v, want 70µs", k.Now())
	}
}

func TestWakeupFastPath(t *testing.T) {
	k, m := newTestMachine(t, 5)
	cfg := m.Cfg
	var resumed sim.Time
	m.Sched.SpawnProc("w", func(p *Proc) {
		w := p.PrepareWait()
		k.After(sim.Micros(500), func() { m.Sched.Wakeup(w) })
		p.Wait(w)
		resumed = p.Now()
	})
	k.Run()
	want := sim.Time(sim.Micros(500)).Add(cfg.DispatchSlop())
	if resumed != want {
		t.Fatalf("resumed at %v, want %v (wakeup + dispatch slop)", resumed, want)
	}
	if m.Sched.Counters().SlowWakeups != 0 {
		t.Fatal("fast-path wakeup counted as slow")
	}
}

func TestWakeupSlowPathWhenNoIdleCPU(t *testing.T) {
	k, m := newTestMachine(t, 1)
	cfg := m.Cfg
	var resumed sim.Time
	m.Sched.SpawnProc("w", func(p *Proc) {
		w := p.PrepareWait()
		k.After(sim.Micros(500), func() {
			// Occupy the only CPU so the wakeup takes the slow path.
			m.Sched.SpawnProc("hog", func(q *Proc) { q.Compute(sim.Micros(1000)) })
			k.After(sim.Micros(1), func() { m.Sched.Wakeup(w) })
		})
		p.Wait(w)
		resumed = p.Now()
	})
	m.UniprocExtra = 0
	k.Run()
	// Woken at 501+slop; then must queue behind the 1000µs hog (until 1500),
	// paying the dispatch-from-queue context switch plus SlowWakeupExtra
	// before returning.
	want := sim.Time(sim.Micros(1500)).Add(cfg.SlowWakeupExtra()).Add(cfg.ContextSwitch())
	if resumed != want {
		t.Fatalf("resumed at %v, want %v", resumed, want)
	}
	if m.Sched.Counters().SlowWakeups != 1 {
		t.Fatal("slow wakeup not counted")
	}
}

func TestUniprocExtraCharged(t *testing.T) {
	k, m := newTestMachine(t, 1)
	m.UniprocExtra = sim.Micros(300)
	var resumed sim.Time
	m.Sched.SpawnProc("w", func(p *Proc) {
		w := p.PrepareWait()
		k.After(sim.Micros(100), func() { m.Sched.Wakeup(w) })
		p.Wait(w)
		resumed = p.Now()
	})
	k.Run()
	// idle CPU exists at wakeup (thread blocked, nothing else): fast path,
	// but uniproc extra still applies.
	want := sim.Time(sim.Micros(100)).Add(m.Cfg.DispatchSlop()).Add(sim.Micros(300))
	if resumed != want {
		t.Fatalf("resumed at %v, want %v", resumed, want)
	}
}

func TestDoubleWakeupPanics(t *testing.T) {
	k, m := newTestMachine(t, 5)
	m.Sched.SpawnProc("w", func(p *Proc) {
		w := p.PrepareWait()
		k.After(sim.Micros(1), func() { m.Sched.Wakeup(w) })
		k.After(sim.Micros(2), func() {
			defer func() {
				if recover() == nil {
					t.Error("double wakeup did not panic")
				}
			}()
			m.Sched.Wakeup(w)
		})
		p.Wait(w)
		p.Sleep(sim.Micros(10))
	})
	k.Run()
}

func TestControllerSerializesQBusAndEthernet(t *testing.T) {
	k := sim.NewKernel(1)
	cfg := costmodel.NewConfig()
	cfg.TimingJitter = 0
	seg := ether.NewSegment(k)
	m1 := New(k, "ff1", &cfg, seg, 1, 5)
	m2 := New(k, "ff2", &cfg, seg, 2, 5)

	frame, err := wire.BuildPacket(m1.Endpoint(), m2.Endpoint(),
		wire.RPCHeader{Type: wire.TypeCall, FragCount: 1}, nil, true)
	if err != nil {
		t.Fatal(err)
	}
	var delivered sim.Time
	m2.Ctrl.SetReceiveHandler(func(f []byte) { delivered = k.Now() })

	k.After(0, func() {
		m1.Ctrl.QueueTx(frame)
		m1.Ctrl.Prod()
	})
	k.Run()

	want := sim.Time(0).
		Add(cfg.QBusTransmit(74)).
		Add(cfg.EthernetTransmit(74)).
		Add(cfg.QBusReceive(74))
	if delivered != want {
		t.Fatalf("delivered at %v, want %v (QBus tx + wire + QBus rx)", delivered, want)
	}
}

func TestControllerRecoveryThrottlesBackToBack(t *testing.T) {
	k := sim.NewKernel(1)
	cfg := costmodel.NewConfig()
	cfg.TimingJitter = 0
	seg := ether.NewSegment(k)
	m1 := New(k, "ff1", &cfg, seg, 1, 5)
	m2 := New(k, "ff2", &cfg, seg, 2, 5)

	frame, _ := wire.BuildPacket(m1.Endpoint(), m2.Endpoint(),
		wire.RPCHeader{Type: wire.TypeCall, FragCount: 1}, nil, true)
	var arrivals []sim.Time
	m2.Ctrl.SetReceiveHandler(func(f []byte) { arrivals = append(arrivals, k.Now()) })

	k.After(0, func() {
		m1.Ctrl.QueueTx(frame)
		m1.Ctrl.QueueTx(frame)
		m1.Ctrl.Prod()
	})
	k.Run()
	if len(arrivals) != 2 {
		t.Fatalf("%d arrivals, want 2", len(arrivals))
	}
	perPkt := cfg.QBusTransmit(74) + cfg.EthernetTransmit(74)
	gap := arrivals[1].Sub(arrivals[0])
	wantGap := perPkt + cfg.ControllerRecovery()
	if gap != wantGap {
		t.Fatalf("inter-arrival gap %v, want %v (per-packet + recovery)", gap, wantGap)
	}
}

func TestOverlapControllerIsFaster(t *testing.T) {
	run := func(overlap bool) sim.Time {
		k := sim.NewKernel(1)
		cfg := costmodel.NewConfig()
		cfg.TimingJitter = 0
		cfg.OverlapController = overlap
		seg := ether.NewSegment(k)
		m1 := New(k, "ff1", &cfg, seg, 1, 5)
		m2 := New(k, "ff2", &cfg, seg, 2, 5)
		frame, _ := wire.BuildPacket(m1.Endpoint(), m2.Endpoint(),
			wire.RPCHeader{Type: wire.TypeResult, FragCount: 1},
			make([]byte, wire.MaxSinglePacketPayload), true)
		var delivered sim.Time
		m2.Ctrl.SetReceiveHandler(func(f []byte) { delivered = k.Now() })
		k.After(0, func() { m1.Ctrl.QueueTx(frame); m1.Ctrl.Prod() })
		k.Run()
		return delivered
	}
	std, ovl := run(false), run(true)
	saving := std.Sub(ovl)
	// §4.2.1 estimates ~1800µs saved on the large result packet's path.
	if saving < sim.Micros(1400) || saving > sim.Micros(2100) {
		t.Fatalf("overlap controller saves %v on 1514B packet, want ~1.6-1.8ms", saving)
	}
}

func TestCPUAccountingDuringCompute(t *testing.T) {
	k, m := newTestMachine(t, 5)
	m.Sched.SpawnProc("w", func(p *Proc) {
		p.Compute(sim.Micros(300))
	})
	k.After(sim.Micros(1000), func() {})
	k.Run()
	if got := m.CPUSeconds(); got != 300e-6 {
		t.Fatalf("CPU seconds = %v, want 300µs", got)
	}
}

func TestBackgroundLoadApproximatesTarget(t *testing.T) {
	k, m := newTestMachine(t, 5)
	m.StartBackgroundLoad(2, 0.15, sim.Micros(1000))
	k.RunUntil(sim.Time(2 * 1e9)) // 2 virtual seconds
	util := m.CPUSeconds() / 2
	if util < 0.10 || util > 0.20 {
		t.Fatalf("background load = %.3f CPUs, want ~0.15", util)
	}
}

func TestMachineEndpointsDistinct(t *testing.T) {
	k := sim.NewKernel(1)
	cfg := costmodel.NewConfig()
	cfg.TimingJitter = 0
	seg := ether.NewSegment(k)
	m1 := New(k, "a", &cfg, seg, 1, 5)
	m2 := New(k, "b", &cfg, seg, 2, 5)
	if m1.MAC == m2.MAC || m1.IP == m2.IP {
		t.Fatal("machines share addresses")
	}
	if m1.String() != "a(5 CPUs)" {
		t.Fatalf("String = %q", m1.String())
	}
	if m1.NumCPUs() != 5 {
		t.Fatal("NumCPUs wrong")
	}
}
