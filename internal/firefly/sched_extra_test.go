package firefly

import (
	"testing"

	"fireflyrpc/internal/costmodel"
	"fireflyrpc/internal/sim"
)

// testConfigWithJitter returns the standard config with its default ±5%
// jitter enabled.
func testConfigWithJitter() costmodel.Config {
	return costmodel.NewConfig()
}

// TestPreemptedThreadMigrates: a thread computing on CPU 0 when an
// interrupt storm arrives must migrate to an idle CPU rather than starve.
func TestPreemptedThreadMigrates(t *testing.T) {
	k, m := newTestMachine(t, 2)
	var done sim.Time
	// Occupy CPU 1 briefly so the thread starts on CPU 0.
	m.Sched.SpawnProc("hog", func(p *Proc) { p.Compute(sim.Micros(10)) })
	m.Sched.SpawnProc("victim", func(p *Proc) {
		p.Compute(sim.Micros(100))
		done = p.Now()
	})
	// Interrupt storm on CPU 0 from t=20µs to t=1020µs.
	for i := 0; i < 10; i++ {
		at := sim.Micros(int64(20 + 100*i))
		k.After(at, func() {
			m.Sched.Interrupt([]IntrStep{{D: sim.Micros(100)}})
		})
	}
	k.Run()
	// Without migration the victim would finish after the storm (~1120µs);
	// with migration it moves to CPU 1 as soon as the hog finishes.
	if done > sim.Time(sim.Micros(300)) {
		t.Fatalf("victim finished at %v; migration from CPU 0 failed", done)
	}
	if m.Sched.Counters().Migrations == 0 {
		t.Fatal("no migrations recorded")
	}
}

// TestDeferredWorkConservation: all deferred bookkeeping eventually
// executes — the backlog cannot grow without bound.
func TestDeferredWorkConservation(t *testing.T) {
	k, m := newTestMachine(t, 5)
	// Sustained load: a chain plus deferred work every 300µs for 100 rounds
	// (each round queues 400µs of deferred work: oversubscribed by design).
	for i := 0; i < 100; i++ {
		at := sim.Micros(int64(300 * i))
		k.After(at, func() {
			m.Sched.Interrupt([]IntrStep{{D: sim.Micros(100), Fn: func() {
				m.Sched.DeferredWork(sim.Micros(400))
			}}})
		})
	}
	k.Run()
	queued, done := m.Sched.DeferredAccounting()
	if queued != done {
		t.Fatalf("deferred work leaked: queued %v, executed %v", queued, done)
	}
}

// TestDeferredWorkPreemptedByInterrupt: a fresh chain takes priority over
// in-progress bookkeeping within the backlog bound.
func TestDeferredWorkPreemptedByInterrupt(t *testing.T) {
	k, m := newTestMachine(t, 1)
	var chainDone sim.Time
	k.After(0, func() {
		m.Sched.DeferredWork(sim.Micros(1000))
	})
	k.After(sim.Micros(100), func() {
		m.Sched.Interrupt([]IntrStep{{D: sim.Micros(50), Fn: func() { chainDone = k.Now() }}})
	})
	k.Run()
	// The chain must complete at 150µs (preempting the deferred item), not
	// wait until 1050µs.
	if chainDone != sim.Time(sim.Micros(150)) {
		t.Fatalf("chain completed at %v, want 150µs (deferred work not preempted)", chainDone)
	}
	queued, done := m.Sched.DeferredAccounting()
	if queued != done {
		t.Fatalf("deferred remainder lost: queued %v done %v", queued, done)
	}
}

// TestDeferredBacklogThrottles: beyond the backlog bound, fresh chains wait
// for bookkeeping to catch up.
func TestDeferredBacklogThrottles(t *testing.T) {
	k, m := newTestMachine(t, 1)
	var lastChain sim.Time
	k.After(0, func() {
		// Queue well past the backlog bound.
		for i := 0; i < 6; i++ {
			m.Sched.DeferredWork(sim.Micros(100))
		}
		m.Sched.Interrupt([]IntrStep{{D: sim.Micros(10), Fn: func() { lastChain = k.Now() }}})
	})
	k.Run()
	// With backlog 6 > maxDeferredBacklog (2), the chain must wait for the
	// backlog to drain to the bound: at least 3 items × 100µs first.
	if lastChain < sim.Time(sim.Micros(310)) {
		t.Fatalf("chain ran at %v; backlog did not throttle", lastChain)
	}
}

// TestJitterPreservesDeterminism: jittered runs with equal seeds agree.
func TestJitterPreservesDeterminism(t *testing.T) {
	run := func() sim.Time {
		k := sim.NewKernel(99)
		cfg := testConfigWithJitter()
		m := New(k, "m", &cfg, nil, 1, 2)
		var done sim.Time
		m.Sched.SpawnProc("w", func(p *Proc) {
			for i := 0; i < 50; i++ {
				p.Compute(sim.Micros(100))
				p.Sleep(sim.Micros(10))
			}
			done = p.Now()
		})
		k.Run()
		return done
	}
	if run() != run() {
		t.Fatal("jittered runs with the same seed diverged")
	}
}

// TestJitterBounded: jitter stays within the configured fraction.
func TestJitterBounded(t *testing.T) {
	k := sim.NewKernel(3)
	cfg := testConfigWithJitter()
	m := New(k, "m", &cfg, nil, 1, 1)
	var prev sim.Time
	for i := 0; i < 200; i++ {
		m.Sched.SpawnProc("w", func(p *Proc) { p.Compute(sim.Micros(100)) })
		k.Run()
		d := k.Now().Sub(prev)
		prev = k.Now()
		if d < sim.Micros(94) || d > sim.Micros(106) {
			t.Fatalf("compute took %v, want 100µs ± 5%%", d)
		}
	}
}
