package firefly

import (
	"fireflyrpc/internal/sim"
)

// Sched is the Nub scheduler: it multiplexes Procs (Firefly threads) over
// the machine's CPUs and implements the wakeup path the RPC fast path
// depends on. Interrupts always execute on CPU 0 and preempt any thread
// computing there.
type Sched struct {
	m     *Machine
	ncpu  int
	cpus  []*cpu
	ready []*segment // FIFO of runnable segments waiting for a CPU

	// counters
	wakeups      int64
	slowWakeups  int64
	preemptions  int64
	dispatches   int64
	intrChains   int64
	migrations   int64
	computeTotal sim.Duration
	defQueued    sim.Duration
	defDone      sim.Duration
}

type cpu struct {
	id     int
	seg    *segment // running (or, on CPU 0, paused under an interrupt)
	inIntr bool     // CPU 0 only: executing interrupt chains or deferred work
	intrQ  []*intrChain

	// Deferred kernel bookkeeping (buffer recycling, retransmission-queue
	// maintenance) runs at the lowest interrupt priority: fresh interrupt
	// chains preempt it, so it throttles CPU 0's throughput without adding
	// latency to packet processing.
	deferredQ  []sim.Duration
	runningDef bool
	defStart   sim.Time
	defTimer   *sim.Timer
}

// segment is one preemptible span of thread CPU work.
type segment struct {
	proc      *Proc
	remaining sim.Duration
	timer     *sim.Timer
	startedAt sim.Time
	cpu       *cpu
	done      func()
}

// intrChain is a queued sequence of interrupt steps.
type intrChain struct {
	steps []IntrStep
	next  int
}

// IntrStep is one timed step of an interrupt handler: the CPU busy-spins for
// D of handler execution, then Fn (which may be nil) takes effect.
type IntrStep struct {
	D  sim.Duration
	Fn func()
}

func newSched(m *Machine, ncpu int) *Sched {
	s := &Sched{m: m, ncpu: ncpu}
	for i := 0; i < ncpu; i++ {
		s.cpus = append(s.cpus, &cpu{id: i})
	}
	return s
}

// idleCPU returns the highest-numbered idle CPU, or nil. Preferring high
// numbers keeps CPU 0 — the only CPU that can service interrupts — free,
// as the real scheduler's affinity tends to.
func (s *Sched) idleCPU() *cpu {
	for i := s.ncpu - 1; i >= 0; i-- {
		c := s.cpus[i]
		if c.seg == nil && !c.inIntr {
			return c
		}
	}
	return nil
}

// HasIdleCPU reports whether a wakeup right now would take the fast path.
func (s *Sched) HasIdleCPU() bool { return s.idleCPU() != nil }

func (s *Sched) startSegment(c *cpu, seg *segment) {
	seg.cpu = c
	seg.startedAt = s.m.K.Now()
	c.seg = seg
	s.m.accountBusy(+1)
	s.dispatches++
	if tr := s.m.tracer; tr != nil {
		tr.CPUSpanBegin(s.m.K.Now(), s.m.Name, c.id, "thread", seg.proc.Name())
	}
	seg.timer = s.m.K.After(seg.remaining, func() { s.segmentDone(c, seg) })
}

func (s *Sched) segmentDone(c *cpu, seg *segment) {
	s.m.accountBusy(-1)
	s.computeTotal += seg.remaining
	c.seg = nil
	if tr := s.m.tracer; tr != nil {
		tr.CPUSpanEnd(s.m.K.Now(), s.m.Name, c.id)
	}
	seg.done()
	s.dispatchNext(c)
}

func (s *Sched) dispatchNext(c *cpu) {
	if c.seg != nil || c.inIntr {
		return
	}
	if len(s.ready) > 0 {
		seg := s.ready[0]
		copy(s.ready, s.ready[1:])
		s.ready = s.ready[:len(s.ready)-1]
		// Dispatching a thread that had to queue costs a full thread-to-
		// thread context switch.
		seg.remaining += s.m.Cfg.ContextSwitch()
		s.startSegment(c, seg)
		return
	}
	// Nothing queued: if a thread sits preempted under CPU 0's interrupt
	// work, migrate it here — the scheduler does not leave a runnable
	// thread pinned behind a busy interrupt CPU while others idle.
	c0 := s.cpus[0]
	if c != c0 && c0.inIntr && c0.seg != nil {
		seg := c0.seg
		c0.seg = nil
		s.migrations++
		s.startSegment(c, seg)
	}
}

// jitter perturbs a software execution time by the configured fraction,
// modeling cache and memory-contention variability. Hardware transfer times
// are not jittered.
func (s *Sched) jitter(d sim.Duration) sim.Duration {
	j := s.m.Cfg.TimingJitter
	if j <= 0 || d <= 0 {
		return d
	}
	u := s.m.K.RNG().Float64()*2 - 1 // [-1, 1)
	return d + sim.Duration(float64(d)*j*u)
}

// submitCompute runs d of CPU work for proc, calling done when it completes.
// If no CPU is idle the segment queues FIFO.
func (s *Sched) submitCompute(proc *Proc, d sim.Duration, done func()) {
	seg := &segment{proc: proc, remaining: s.jitter(d), done: done}
	if c := s.idleCPU(); c != nil {
		s.startSegment(c, seg)
		return
	}
	s.ready = append(s.ready, seg)
}

// Interrupt queues a chain of interrupt steps on CPU 0, preempting any
// thread computing there. Chains queued while one is in progress run FIFO
// after it; the preempted thread resumes only when all queued chains drain
// (the handler "always checks for additional packets before terminating").
func (s *Sched) Interrupt(steps []IntrStep) {
	s.intrChains++
	c0 := s.cpus[0]
	chain := &intrChain{steps: steps}
	if c0.inIntr {
		if c0.runningDef && len(c0.deferredQ) <= maxDeferredBacklog {
			// Preempt: push the unfinished remainder back to the front.
			elapsed := s.m.K.Now().Sub(c0.defStart)
			item := c0.deferredQ[0]
			s.defDone += elapsed
			if elapsed < item {
				c0.deferredQ[0] = item - elapsed
			} else {
				c0.deferredQ = c0.deferredQ[1:]
			}
			c0.defTimer.Cancel()
			c0.runningDef = false
			if tr := s.m.tracer; tr != nil {
				tr.CPUSpanEnd(s.m.K.Now(), s.m.Name, c0.id)
			}
			s.runIntrStep(c0, chain)
			return
		}
		c0.intrQ = append(c0.intrQ, chain)
		return
	}
	s.enterIntrLevel(c0)
	s.runIntrStep(c0, chain)
}

// DeferredWork queues d of low-priority kernel bookkeeping on CPU 0. It
// executes after all pending interrupt chains drain, is preempted by fresh
// interrupts, and runs ahead of any user thread on CPU 0.
func (s *Sched) DeferredWork(d sim.Duration) {
	if d <= 0 {
		return
	}
	c0 := s.cpus[0]
	jd := s.jitter(d)
	s.defQueued += jd
	c0.deferredQ = append(c0.deferredQ, jd)
	if !c0.inIntr {
		s.enterIntrLevel(c0)
		s.intrTailWork(c0)
	}
}

// enterIntrLevel raises CPU 0 to interrupt level, preempting any thread
// segment computing there.
func (s *Sched) enterIntrLevel(c0 *cpu) {
	if seg := c0.seg; seg != nil {
		s.preemptions++
		elapsed := s.m.K.Now().Sub(seg.startedAt)
		if elapsed > seg.remaining {
			elapsed = seg.remaining
		}
		seg.remaining -= elapsed
		s.computeTotal += elapsed
		seg.timer.Cancel()
		s.m.accountBusy(-1)
		if tr := s.m.tracer; tr != nil {
			tr.CPUSpanEnd(s.m.K.Now(), s.m.Name, c0.id)
		}
		// Migrate the preempted thread to an idle CPU right away rather
		// than leaving it pinned behind interrupt work.
		if c := s.idleCPU(); c != nil {
			c0.seg = nil
			s.migrations++
			c0.inIntr = true
			s.m.accountBusy(+1)
			if tr := s.m.tracer; tr != nil {
				tr.CPUSpanBegin(s.m.K.Now(), s.m.Name, c0.id, "interrupt", "")
			}
			s.startSegment(c, seg)
			return
		}
	}
	c0.inIntr = true
	s.m.accountBusy(+1)
	if tr := s.m.tracer; tr != nil {
		tr.CPUSpanBegin(s.m.K.Now(), s.m.Name, c0.id, "interrupt", "")
	}
}

// intrTailWork runs once the current chain finishes: next chain, then
// deferred work, then return from interrupt level. When the deferred backlog
// exceeds its bound the kernel catches up on bookkeeping before processing
// more packets, so sustained overload is throttled.
func (s *Sched) intrTailWork(c0 *cpu) {
	if len(c0.deferredQ) > maxDeferredBacklog {
		s.startDeferred(c0)
		return
	}
	if len(c0.intrQ) > 0 {
		next := c0.intrQ[0]
		copy(c0.intrQ, c0.intrQ[1:])
		c0.intrQ = c0.intrQ[:len(c0.intrQ)-1]
		s.runIntrStep(c0, next)
		return
	}
	if len(c0.deferredQ) > 0 {
		s.startDeferred(c0)
		return
	}
	// All interrupt-level work drained: return from interrupt level.
	c0.inIntr = false
	s.m.accountBusy(-1)
	if tr := s.m.tracer; tr != nil {
		tr.CPUSpanEnd(s.m.K.Now(), s.m.Name, c0.id)
	}
	if seg := c0.seg; seg != nil {
		// Resume the preempted thread where it left off.
		seg.startedAt = s.m.K.Now()
		s.m.accountBusy(+1)
		if tr := s.m.tracer; tr != nil {
			tr.CPUSpanBegin(s.m.K.Now(), s.m.Name, c0.id, "thread", seg.proc.Name())
		}
		seg.timer = s.m.K.After(seg.remaining, func() { s.segmentDone(c0, seg) })
	} else {
		s.dispatchNext(c0)
	}
}

// maxDeferredBacklog bounds how far kernel bookkeeping can fall behind:
// within the bound, fresh interrupts preempt it (no added packet latency);
// beyond it, the kernel catches up before taking more packets, throttling
// sustained overload.
const maxDeferredBacklog = 2

// startDeferred begins (or resumes) the front deferred item.
func (s *Sched) startDeferred(c0 *cpu) {
	d := c0.deferredQ[0]
	c0.runningDef = true
	c0.defStart = s.m.K.Now()
	if tr := s.m.tracer; tr != nil {
		tr.CPUSpanBegin(s.m.K.Now(), s.m.Name, c0.id, "deferred", "")
	}
	c0.defTimer = s.m.K.After(d, func() {
		c0.runningDef = false
		c0.deferredQ = c0.deferredQ[1:]
		s.defDone += d
		if tr := s.m.tracer; tr != nil {
			tr.CPUSpanEnd(s.m.K.Now(), s.m.Name, c0.id)
		}
		s.intrTailWork(c0)
	})
}

func (s *Sched) runIntrStep(c0 *cpu, chain *intrChain) {
	if chain.next >= len(chain.steps) {
		s.intrTailWork(c0)
		return
	}
	step := chain.steps[chain.next]
	chain.next++
	s.m.K.After(s.jitter(step.D), func() {
		if step.Fn != nil {
			step.Fn()
		}
		s.runIntrStep(c0, chain)
	})
}

// Waiter represents a thread blocked in the call table awaiting a packet.
// Wakeup and Wait may race benignly: if the wakeup lands before the thread
// reaches Wait (it may still be finishing overlapped work like registering
// the call), the delivery is latched and Wait returns immediately.
type Waiter struct {
	p         *Proc
	wake      func()
	parked    bool
	delivered bool
	extra     sim.Duration // scheduler slow-path work charged on resumption
	woken     bool
}

// Wakeup awakens a waiting thread from interrupt (or thread) context. If an
// idle CPU exists the thread is dispatched after the small dispatch delay;
// otherwise the scheduler takes its slow context-switch path, and the
// resumed thread pays that path's CPU cost before its own work. Uniprocessor
// machines additionally pay the longer uniprocessor scheduler path.
func (s *Sched) Wakeup(w *Waiter) {
	if w.woken {
		panic("firefly: double wakeup")
	}
	w.woken = true
	s.wakeups++
	cfg := s.m.Cfg
	if !s.HasIdleCPU() {
		s.slowWakeups++
		w.extra += cfg.SlowWakeupExtra()
	}
	if s.ncpu == 1 {
		w.extra += s.m.UniprocExtra
	}
	s.m.K.After(cfg.DispatchSlop(), func() {
		w.delivered = true
		if w.parked {
			w.wake()
		}
	})
}

// Counters reports scheduler statistics.
type Counters struct {
	Wakeups     int64
	SlowWakeups int64
	Preemptions int64
	Dispatches  int64
	IntrChains  int64
	Migrations  int64
}

// Counters returns a snapshot.
func (s *Sched) Counters() Counters {
	return Counters{
		Wakeups:     s.wakeups,
		SlowWakeups: s.slowWakeups,
		Preemptions: s.preemptions,
		Dispatches:  s.dispatches,
		IntrChains:  s.intrChains,
		Migrations:  s.migrations,
	}
}

// DeferredAccounting reports total deferred bookkeeping queued and executed,
// for work-conservation checks.
func (s *Sched) DeferredAccounting() (queued, done sim.Duration) {
	return s.defQueued, s.defDone
}
