package firefly

import (
	"fireflyrpc/internal/ether"
	"fireflyrpc/internal/sim"
)

// Controller models the DEQNA Ethernet controller on the QBus. It is a
// single engine: QBus DMA transfers and Ethernet transmissions/receptions
// are serialized through it, and — matching the measured DEQNA — a
// transmission's QBus read and Ethernet transfer do not overlap ("no cut
// through"). The §4.2.1 variant overlaps them.
//
// After each operation the controller spends a short recovery time on
// descriptor processing before taking the next one; this throttles
// back-to-back packets without delaying the packet just transferred.
type Controller struct {
	m    *Machine
	port *ether.Port

	ops  []ctlOp
	busy bool

	// recvHandler is invoked in event context once a received frame has
	// been written to memory over the QBus; the RPC stack uses it to raise
	// the receive interrupt on CPU 0.
	recvHandler func(frame []byte)

	// stats
	txFrames, rxFrames int64
	txBytes, rxBytes   int64
	busyTime           sim.Duration
	busySince          sim.Time
}

type ctlOp struct {
	tx    bool
	frame []byte
}

func newController(m *Machine, seg *ether.Segment) *Controller {
	c := &Controller{m: m}
	if seg != nil {
		c.port = seg.Attach(m.MAC, c.deliver)
	}
	return c
}

// SetReceiveHandler installs the stack's packet-arrival callback.
func (c *Controller) SetReceiveHandler(fn func(frame []byte)) { c.recvHandler = fn }

// QueueTx queues a frame for transmission. The driver's "queue packet" CPU
// cost is charged by the caller; the controller does not start until Prod.
func (c *Controller) QueueTx(frame []byte) {
	c.ops = append(c.ops, ctlOp{tx: true, frame: frame})
}

// Prod is the CPU 0 interrupt routine's "activate Ethernet controller"
// action: it starts the controller if it is idle. A busy controller
// continues through its queue on its own.
func (c *Controller) Prod() {
	if !c.busy {
		c.startNext()
	}
}

// deliver is called by the Ethernet segment when a frame addressed to this
// station finishes transmission: the controller must copy it to memory over
// the QBus before interrupting CPU 0.
func (c *Controller) deliver(frame []byte) {
	c.ops = append(c.ops, ctlOp{tx: false, frame: frame})
	if !c.busy {
		c.startNext()
	}
}

func (c *Controller) setBusy(b bool) {
	now := c.m.K.Now()
	if b && !c.busy {
		c.busySince = now
	}
	if !b && c.busy {
		c.busyTime += now.Sub(c.busySince)
	}
	c.busy = b
}

func (c *Controller) startNext() {
	if len(c.ops) == 0 {
		c.setBusy(false)
		return
	}
	op := c.ops[0]
	copy(c.ops, c.ops[1:])
	c.ops = c.ops[:len(c.ops)-1]
	c.setBusy(true)
	cfg := c.m.Cfg
	k := c.m.K
	n := len(op.frame)
	finish := func() {
		k.After(cfg.ControllerRecovery(), func() { c.startNext() })
	}
	if op.tx {
		c.txFrames++
		c.txBytes += int64(n)
		eth := cfg.EthernetTransmit(n)
		if cfg.OverlapController {
			// Cut-through: the QBus read streams into the transmitter; the
			// controller is held for the longer of the two, dominated by
			// the wire time once transmission can begin.
			c.port.Transmit(op.frame, eth, func() {
				c.traceOp("eth-hold", n, eth)
				q := cfg.QBusTransmit(n)
				if q > eth {
					k.After(q-eth, finish)
				} else {
					finish()
				}
			})
			return
		}
		// DEQNA: read the whole packet over the QBus, then transmit.
		qbus := cfg.QBusTransmit(n)
		k.After(qbus, func() {
			c.traceOp("qbus-tx", n, qbus)
			c.port.Transmit(op.frame, eth, func() {
				c.traceOp("eth-hold", n, eth)
				finish()
			})
		})
		return
	}
	// Receive: write the frame to memory over the QBus, then interrupt.
	c.rxFrames++
	c.rxBytes += int64(n)
	rxLat := cfg.ControllerRxLatency(n)
	k.After(rxLat, func() {
		c.traceOp("qbus-rx", n, rxLat)
		if c.recvHandler != nil {
			c.recvHandler(op.frame)
		}
		finish()
	})
}

// traceOp reports a completed controller operation of duration d ending now.
func (c *Controller) traceOp(op string, bytes int, d sim.Duration) {
	if tr := c.m.tracer; tr != nil {
		tr.CtlOp(c.m.K.Now(), c.m.Name, op, bytes, d)
	}
}

// CtlStats reports controller counters.
type CtlStats struct {
	TxFrames, RxFrames int64
	TxBytes, RxBytes   int64
	BusyTime           sim.Duration
}

// Stats returns a snapshot.
func (c *Controller) Stats() CtlStats {
	if c.busy {
		now := c.m.K.Now()
		c.busyTime += now.Sub(c.busySince)
		c.busySince = now
	}
	return CtlStats{
		TxFrames: c.txFrames, RxFrames: c.rxFrames,
		TxBytes: c.txBytes, RxBytes: c.rxBytes,
		BusyTime: c.busyTime,
	}
}
