//go:build linux && amd64

package transport

// Raw syscall numbers for the message-vector calls. The stdlib syscall
// package on linux/amd64 defines SYS_RECVMMSG but not SYS_SENDMMSG, and we
// cannot vendor golang.org/x/net here, so both are pinned explicitly.
const (
	sysRECVMMSG = 299
	sysSENDMMSG = 307
)
