package transport

import "sync/atomic"

// counters is the live, lock-free form of Stats, embedded by the bundled
// transports. Every event is one atomic add on the datapath.
type counters struct {
	oversizeDrops atomic.Int64
	recvErrors    atomic.Int64
	sendErrors    atomic.Int64
	recvBatches   atomic.Int64
	recvFrames    atomic.Int64
	maxRecvBatch  atomic.Int64
	sendBatches   atomic.Int64
	sendFrames    atomic.Int64
	maxSendBatch  atomic.Int64
	gsoSends      atomic.Int64
	groSplits     atomic.Int64
}

// observeRecvBatch records one receive operation delivering n frames.
func (c *counters) observeRecvBatch(n int) {
	c.recvBatches.Add(1)
	c.recvFrames.Add(int64(n))
	updateMax(&c.maxRecvBatch, int64(n))
}

// observeSendBatch records one send operation carrying n frames.
func (c *counters) observeSendBatch(n int) {
	c.sendBatches.Add(1)
	c.sendFrames.Add(int64(n))
	updateMax(&c.maxSendBatch, int64(n))
}

func updateMax(m *atomic.Int64, v int64) {
	for {
		cur := m.Load()
		if v <= cur || m.CompareAndSwap(cur, v) {
			return
		}
	}
}

func (c *counters) snapshot() Stats {
	return Stats{
		OversizeDrops: c.oversizeDrops.Load(),
		RecvErrors:    c.recvErrors.Load(),
		SendErrors:    c.sendErrors.Load(),
		RecvBatches:   c.recvBatches.Load(),
		RecvFrames:    c.recvFrames.Load(),
		MaxRecvBatch:  c.maxRecvBatch.Load(),
		SendBatches:   c.sendBatches.Load(),
		SendFrames:    c.sendFrames.Load(),
		MaxSendBatch:  c.maxSendBatch.Load(),
		GSOSends:      c.gsoSends.Load(),
		GROSplits:     c.groSplits.Load(),
	}
}
