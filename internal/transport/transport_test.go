package transport

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"fireflyrpc/internal/wire"
)

// waitCondition polls until cond returns nil, failing with its last error
// after the deadline.
func waitCondition(t *testing.T, d time.Duration, cond func() error) {
	t.Helper()
	deadline := time.Now().Add(d)
	for {
		err := cond()
		if err == nil {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestMemDelivery(t *testing.T) {
	ex := NewExchange()
	a := ex.Port("a")
	b := ex.Port("b")
	defer a.Close()
	defer b.Close()

	got := make(chan []byte, 1)
	b.SetReceiver(func(src Addr, frame []byte) {
		if src.String() != "a" {
			t.Errorf("src = %q", src.String())
		}
		got <- append([]byte(nil), frame...)
	})
	if err := a.Send(AddrOf("b"), []byte("ping")); err != nil {
		t.Fatal(err)
	}
	select {
	case f := <-got:
		if string(f) != "ping" {
			t.Fatalf("frame %q", f)
		}
	case <-time.After(time.Second):
		t.Fatal("frame not delivered")
	}
}

func TestMemFrameIsCopied(t *testing.T) {
	ex := NewExchange()
	a := ex.Port("a")
	b := ex.Port("b")
	defer a.Close()
	defer b.Close()
	got := make(chan []byte, 1)
	b.SetReceiver(func(_ Addr, frame []byte) { got <- frame })
	msg := []byte("mutate-me")
	if err := a.Send(AddrOf("b"), msg); err != nil {
		t.Fatal(err)
	}
	msg[0] = 'X' // sender reuses its buffer immediately
	f := <-got
	if string(f) != "mutate-me" {
		t.Fatalf("delivery aliases sender buffer: %q", f)
	}
}

func TestMemUnknownDestinationSilentlyDropped(t *testing.T) {
	ex := NewExchange()
	a := ex.Port("a")
	defer a.Close()
	if err := a.Send(AddrOf("ghost"), []byte("x")); err != nil {
		t.Fatalf("send to ghost errored: %v (should be silent, like UDP)", err)
	}
}

// The exchange itself is a perfect network: every frame sent to a live
// port arrives exactly once. (Fault injection moved to internal/faultnet,
// which has its own tests.)
func TestMemPerfectDelivery(t *testing.T) {
	ex := NewExchange()
	a := ex.Port("a")
	b := ex.Port("b")
	defer a.Close()
	defer b.Close()
	var mu sync.Mutex
	count := 0
	b.SetReceiver(func(_ Addr, _ []byte) { mu.Lock(); count++; mu.Unlock() })
	for i := 0; i < 10; i++ {
		a.Send(AddrOf("b"), []byte{byte(i)})
	}
	waitCondition(t, time.Second, func() error {
		mu.Lock()
		defer mu.Unlock()
		if count != 10 {
			return fmt.Errorf("delivered %d of 10", count)
		}
		return nil
	})
}

func TestMemSendAfterClose(t *testing.T) {
	ex := NewExchange()
	a := ex.Port("a")
	a.Close()
	if err := a.Send(AddrOf("b"), []byte("x")); err != ErrClosed {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	if err := a.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestMemOversizeFrame(t *testing.T) {
	ex := NewExchange()
	a := ex.Port("a")
	defer a.Close()
	big := make([]byte, a.MaxFrame()+1)
	if err := a.Send(AddrOf("b"), big); err != ErrFrameTooLarge {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
}

func TestMemDuplicatePortPanics(t *testing.T) {
	ex := NewExchange()
	ex.Port("dup")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate port did not panic")
		}
	}()
	ex.Port("dup")
}

func TestMemAutoNamedPorts(t *testing.T) {
	ex := NewExchange()
	p1 := ex.Port("")
	p2 := ex.Port("")
	if p1.LocalAddr().String() == p2.LocalAddr().String() {
		t.Fatal("auto-named ports collide")
	}
}

func TestUDPRoundTrip(t *testing.T) {
	a, err := ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Skip("no loopback:", err)
	}
	b, err := ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	defer b.Close()
	got := make(chan []byte, 1)
	b.SetReceiver(func(src Addr, frame []byte) { got <- append([]byte(nil), frame...) })
	payload := bytes.Repeat([]byte{0xAA}, 100)
	if err := a.Send(b.LocalAddr(), payload); err != nil {
		t.Fatal(err)
	}
	select {
	case f := <-got:
		if !bytes.Equal(f, payload) {
			t.Fatal("payload corrupted")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("frame not delivered over loopback UDP")
	}
}

func TestUDPMaxFrameMatchesSinglePacket(t *testing.T) {
	// 32-byte RPC header + 1440 payload = 1472-byte UDP datagram, which is
	// exactly the paper's 1514-byte Ethernet frame after IP/UDP/Ethernet
	// headers are added by the kernel.
	if UDPMaxFrame != wire.RPCHeaderLen+wire.MaxSinglePacketPayload {
		t.Fatal("UDPMaxFrame formula broken")
	}
	if UDPMaxFrame+20+8+14 != 1514 {
		t.Fatalf("UDPMaxFrame %d does not reconstruct a 1514-byte frame", UDPMaxFrame)
	}
}

func TestUDPOversizeAndClose(t *testing.T) {
	a, err := ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Skip("no loopback:", err)
	}
	if err := a.Send(a.LocalAddr(), make([]byte, UDPMaxFrame+1)); err != ErrFrameTooLarge {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(a.LocalAddr(), []byte("x")); err != ErrClosed {
		t.Fatalf("send after close: %v", err)
	}
	if err := a.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestResolveUDPAddr(t *testing.T) {
	addr, err := ResolveUDPAddr("127.0.0.1:9999")
	if err != nil {
		t.Fatal(err)
	}
	if addr.Network() != "udp" || addr.String() != "127.0.0.1:9999" {
		t.Fatalf("addr %s/%s", addr.Network(), addr.String())
	}
	if _, err := ResolveUDPAddr("not an address"); err == nil {
		t.Fatal("bad address accepted")
	}
}

func TestMemSendCloseRace(t *testing.T) {
	// A sender racing the destination's Close must never panic: the frame
	// is simply lost, like any late packet. (Regression: Send used to hit
	// a closed channel.)
	for round := 0; round < 50; round++ {
		ex := NewExchange()
		a := ex.Port("a")
		b := ex.Port("b")
		b.SetReceiver(func(Addr, []byte) {})
		stop := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					a.Send(AddrOf("b"), []byte("x"))
				}
			}
		}()
		b.Close()
		close(stop)
		wg.Wait()
		a.Close()
	}
}
