package transport

import (
	"net"
	"sync"

	"fireflyrpc/internal/wire"
)

// UDPMaxFrame keeps RPC frames within a single Ethernet packet, as the
// Firefly did: 32-byte RPC header + 1440-byte payload = 1472 bytes, which
// with 20 IP + 8 UDP + 14 Ethernet is exactly the 1514-byte maximum frame.
const UDPMaxFrame = wire.RPCHeaderLen + wire.MaxSinglePacketPayload

// UDP is a Transport over a real UDP socket.
type UDP struct {
	conn *net.UDPConn

	mu     sync.RWMutex
	recv   Receiver
	closed bool
	done   chan struct{}
}

// ListenUDP opens a UDP transport on addr ("host:port"; ":0" picks a port).
func ListenUDP(addr string) (*UDP, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, err
	}
	u := &UDP{conn: conn, done: make(chan struct{})}
	go u.readLoop()
	return u, nil
}

// ResolveUDPAddr names a peer for Send.
func ResolveUDPAddr(addr string) (Addr, error) {
	return net.ResolveUDPAddr("udp", addr)
}

func (u *UDP) readLoop() {
	defer close(u.done)
	buf := make([]byte, UDPMaxFrame+1)
	for {
		n, src, err := u.conn.ReadFromUDP(buf)
		if err != nil {
			return // closed
		}
		if n > UDPMaxFrame {
			continue // oversize garbage
		}
		u.mu.RLock()
		recv := u.recv
		u.mu.RUnlock()
		if recv != nil {
			recv(src, buf[:n])
		}
	}
}

// Send implements Transport.
func (u *UDP) Send(dst Addr, frame []byte) error {
	u.mu.RLock()
	closed := u.closed
	u.mu.RUnlock()
	if closed {
		return ErrClosed
	}
	if len(frame) > UDPMaxFrame {
		return ErrFrameTooLarge
	}
	ua, ok := dst.(*net.UDPAddr)
	if !ok {
		var err error
		ua, err = net.ResolveUDPAddr("udp", dst.String())
		if err != nil {
			return err
		}
	}
	_, err := u.conn.WriteToUDP(frame, ua)
	return err
}

// SetReceiver implements Transport.
func (u *UDP) SetReceiver(r Receiver) {
	u.mu.Lock()
	u.recv = r
	u.mu.Unlock()
}

// LocalAddr implements Transport.
func (u *UDP) LocalAddr() Addr { return u.conn.LocalAddr().(*net.UDPAddr) }

// MaxFrame implements Transport.
func (u *UDP) MaxFrame() int { return UDPMaxFrame }

// Close implements Transport.
func (u *UDP) Close() error {
	u.mu.Lock()
	if u.closed {
		u.mu.Unlock()
		return nil
	}
	u.closed = true
	u.mu.Unlock()
	err := u.conn.Close()
	<-u.done
	return err
}
