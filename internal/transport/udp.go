package transport

import (
	"errors"
	"net"
	"net/netip"
	"sync"

	"fireflyrpc/internal/wire"
)

// UDPMaxFrame keeps RPC frames within a single Ethernet packet, as the
// Firefly did: 32-byte RPC header + 1440-byte payload = 1472 bytes, which
// with 20 IP + 8 UDP + 14 Ethernet is exactly the 1514-byte maximum frame.
const UDPMaxFrame = wire.RPCHeaderLen + wire.MaxSinglePacketPayload

// udpAddr is the canonical address handed to receivers and returned by
// LocalAddr/ResolveUDPAddr. It caches the printable form so Addr.String()
// never allocates on a hot path, and the transport interns one value per
// peer so the same pointer arrives with every packet — letting upper layers
// key maps by the Addr itself (or its string, taken for free) instead of
// formatting an address per frame.
type udpAddr struct {
	ap  netip.AddrPort
	str string
}

func newUDPAddr(ap netip.AddrPort) *udpAddr {
	// Normalize IPv4-mapped IPv6 (what an IPv4 packet arrives as on a
	// dual-stack socket) so interning and dialing agree on one form.
	if ap.Addr().Is4In6() {
		ap = netip.AddrPortFrom(ap.Addr().Unmap(), ap.Port())
	}
	return &udpAddr{ap: ap, str: ap.String()}
}

func (a *udpAddr) String() string  { return a.str }
func (a *udpAddr) Network() string { return "udp" }

// UDP is a Transport over a real UDP socket: the per-frame datapath, one
// blocking read or write syscall per packet. The batched engine
// (ListenUDPBatch) is the high-throughput alternative; this path stays the
// simple, portable default.
type UDP struct {
	conn *net.UDPConn
	self *udpAddr

	mu     sync.RWMutex
	recv   Receiver
	closed bool
	done   chan struct{}

	peersMu sync.Mutex
	peers   map[netip.AddrPort]*udpAddr

	counters
}

// ListenUDP opens a UDP transport on addr ("host:port"; ":0" picks a port).
func ListenUDP(addr string) (*UDP, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, err
	}
	u := &UDP{
		conn:  conn,
		self:  newUDPAddr(conn.LocalAddr().(*net.UDPAddr).AddrPort()),
		done:  make(chan struct{}),
		peers: make(map[netip.AddrPort]*udpAddr),
	}
	go u.readLoop()
	return u, nil
}

// ResolveUDPAddr names a peer for Send.
func ResolveUDPAddr(addr string) (Addr, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	return newUDPAddr(ua.AddrPort()), nil
}

// peer returns the interned address for ap, creating it on first contact.
func (u *UDP) peer(ap netip.AddrPort) *udpAddr {
	if ap.Addr().Is4In6() {
		ap = netip.AddrPortFrom(ap.Addr().Unmap(), ap.Port())
	}
	u.peersMu.Lock()
	a := u.peers[ap]
	if a == nil {
		a = &udpAddr{ap: ap, str: ap.String()}
		u.peers[ap] = a
	}
	u.peersMu.Unlock()
	return a
}

func (u *UDP) readLoop() {
	defer close(u.done)
	buf := make([]byte, UDPMaxFrame+1)
	for {
		n, src, err := u.conn.ReadFromUDPAddrPort(buf)
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return
			}
			u.mu.RLock()
			closed := u.closed
			u.mu.RUnlock()
			if closed {
				return
			}
			// Transient (ICMP-reflected, buffer pressure): count and go on.
			u.recvErrors.Add(1)
			continue
		}
		if n > UDPMaxFrame {
			u.oversizeDrops.Add(1)
			continue
		}
		u.observeRecvBatch(1)
		u.mu.RLock()
		recv := u.recv
		u.mu.RUnlock()
		if recv != nil {
			recv(u.peer(src), buf[:n])
		}
	}
}

// Send implements Transport.
func (u *UDP) Send(dst Addr, frame []byte) error {
	u.mu.RLock()
	closed := u.closed
	u.mu.RUnlock()
	if closed {
		return ErrClosed
	}
	if len(frame) > UDPMaxFrame {
		return ErrFrameTooLarge
	}
	ap, err := u.destAddrPort(dst)
	if err != nil {
		return err
	}
	if _, err := u.conn.WriteToUDPAddrPort(frame, ap); err != nil {
		u.sendErrors.Add(1)
		return err
	}
	u.observeSendBatch(1)
	return nil
}

// destAddrPort maps an Addr to the wire destination. Foreign Addr types are
// parsed once and interned through u.peer, so repeated Sends to the same
// peer never re-resolve the string (names that aren't literal ip:port fall
// back to the resolver, then intern the result).
func (u *UDP) destAddrPort(dst Addr) (netip.AddrPort, error) {
	switch a := dst.(type) {
	case *udpAddr:
		return a.ap, nil
	case *net.UDPAddr:
		return a.AddrPort(), nil
	default:
		if ap, err := netip.ParseAddrPort(dst.String()); err == nil {
			return u.peer(ap).ap, nil
		}
		ua, err := net.ResolveUDPAddr("udp", dst.String())
		if err != nil {
			return netip.AddrPort{}, err
		}
		return u.peer(ua.AddrPort()).ap, nil
	}
}

// TransportStats implements StatsReporter.
func (u *UDP) TransportStats() (Stats, bool) { return u.snapshot(), true }

// SetReceiver implements Transport.
func (u *UDP) SetReceiver(r Receiver) {
	u.mu.Lock()
	u.recv = r
	u.mu.Unlock()
}

// LocalAddr implements Transport.
func (u *UDP) LocalAddr() Addr { return u.self }

// MaxFrame implements Transport.
func (u *UDP) MaxFrame() int { return UDPMaxFrame }

// Close implements Transport.
func (u *UDP) Close() error {
	u.mu.Lock()
	if u.closed {
		u.mu.Unlock()
		return nil
	}
	u.closed = true
	u.mu.Unlock()
	err := u.conn.Close()
	<-u.done
	return err
}
