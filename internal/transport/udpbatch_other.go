//go:build !(linux && (amd64 || arm64))

package transport

// listenUDPBatch on platforms without the mmsg engine: per-frame transport
// behind the batchFallback shim, identical semantics, no amortization.
func listenUDPBatch(addr string, opts UDPOptions) (Transport, error) {
	_ = opts
	u, err := ListenUDP(addr)
	if err != nil {
		return nil, err
	}
	return &batchFallback{UDP: u}, nil
}
