package transport

import (
	"crypto/hmac"
	"crypto/sha256"
	"sync"
)

// The paper notes Firefly RPC "contains the structural hooks for
// authenticated and secure calls" without exercising them. This is that
// hook for the real stack: WithAuth decorates any Transport so that every
// frame carries a truncated HMAC-SHA256 tag computed under a shared key.
// Frames with missing or wrong tags are dropped silently — to the protocol
// layer they look like packet loss, which it already recovers from, so
// authentication composes with retransmission for free.

// authTagLen is the truncated MAC size appended to each frame.
const authTagLen = 16

// Auth wraps an inner transport with per-frame authentication.
type Auth struct {
	inner Transport
	key   []byte

	mu   sync.RWMutex
	recv Receiver

	dropped int64
}

// WithAuth returns a transport whose frames are authenticated with key.
// Both ends must use the same key; unauthenticated or tampered frames are
// discarded on receive.
func WithAuth(inner Transport, key []byte) *Auth {
	a := &Auth{inner: inner, key: append([]byte(nil), key...)}
	inner.SetReceiver(a.onFrame)
	return a
}

func (a *Auth) tag(frame []byte) []byte {
	m := hmac.New(sha256.New, a.key)
	m.Write(frame)
	return m.Sum(nil)[:authTagLen]
}

// Send appends the authentication tag and transmits.
func (a *Auth) Send(dst Addr, frame []byte) error {
	if len(frame) > a.MaxFrame() {
		return ErrFrameTooLarge
	}
	out := make([]byte, 0, len(frame)+authTagLen)
	out = append(out, frame...)
	out = append(out, a.tag(frame)...)
	return a.inner.Send(dst, out)
}

// onFrame verifies and strips the tag before delivery.
func (a *Auth) onFrame(src Addr, frame []byte) {
	if len(frame) < authTagLen {
		a.mu.Lock()
		a.dropped++
		a.mu.Unlock()
		return
	}
	body := frame[:len(frame)-authTagLen]
	got := frame[len(frame)-authTagLen:]
	if !hmac.Equal(got, a.tag(body)) {
		a.mu.Lock()
		a.dropped++
		a.mu.Unlock()
		return
	}
	a.mu.RLock()
	recv := a.recv
	a.mu.RUnlock()
	if recv != nil {
		recv(src, body)
	}
}

// SetReceiver implements Transport.
func (a *Auth) SetReceiver(r Receiver) {
	a.mu.Lock()
	a.recv = r
	a.mu.Unlock()
}

// LocalAddr implements Transport.
func (a *Auth) LocalAddr() Addr { return a.inner.LocalAddr() }

// MaxFrame implements Transport: the tag eats into the frame budget.
func (a *Auth) MaxFrame() int { return a.inner.MaxFrame() - authTagLen }

// Close implements Transport.
func (a *Auth) Close() error { return a.inner.Close() }

// Dropped reports how many frames failed authentication.
func (a *Auth) Dropped() int64 {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.dropped
}
