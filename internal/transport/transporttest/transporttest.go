// Package transporttest is the conformance suite for the one transport
// contract: every implementation of transport.Transport in the repo — the
// shared-memory exchange, the UDP sockets, the batched UDP engine, the
// multiplexed TCP streams, the fault-injection wrapper, and the simulator
// stack — must pass the same behavioral checks, because the protocol layer
// is written against the contract, not any one transport.
//
// The suite assumes only what the contract promises: frames may be dropped
// (it retries with deadlines), but a delivered frame must be intact, must
// be attributed to the sender's LocalAddr, and must be usable from inside
// the receive callback (the protocol sends acks from there). It never
// assumes reliability or timing.
package transporttest

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"fireflyrpc/internal/transport"
)

// Factory builds a fresh pair of connected endpoints for one subtest:
// a.Send(b.LocalAddr(), ...) must be routable and vice versa. Cleanup is
// the caller's (use t.Cleanup inside the factory).
type Factory func(t *testing.T) (a, b transport.Transport)

// Run exercises the full conformance suite against the factory's
// transports under the given name.
func Run(t *testing.T, name string, mk Factory) {
	t.Run(name+"/Delivery", func(t *testing.T) { testDelivery(t, mk) })
	t.Run(name+"/EchoFromCallback", func(t *testing.T) { testEcho(t, mk) })
	t.Run(name+"/NoRetain", func(t *testing.T) { testNoRetain(t, mk) })
	t.Run(name+"/MaxFrame", func(t *testing.T) { testMaxFrame(t, mk) })
	t.Run(name+"/Close", func(t *testing.T) { testClose(t, mk) })
	t.Run(name+"/Stats", func(t *testing.T) { testStats(t, mk) })
	t.Run(name+"/Batch", func(t *testing.T) { testBatch(t, mk) })
}

// collector is a copying receiver: it honors the no-retain contract by
// copying every frame during the callback.
type collector struct {
	mu     sync.Mutex
	frames [][]byte
	srcs   []string
}

func (c *collector) receiver() transport.Receiver {
	return func(src transport.Addr, frame []byte) {
		c.mu.Lock()
		c.frames = append(c.frames, append([]byte(nil), frame...))
		c.srcs = append(c.srcs, src.String())
		c.mu.Unlock()
	}
}

func (c *collector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.frames)
}

func (c *collector) snapshot() ([][]byte, []string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([][]byte(nil), c.frames...), append([]string(nil), c.srcs...)
}

// sendUntil retries frame from src to dst until the collector has seen at
// least want frames — the loss-tolerant way to establish delivery without
// assuming the transport is reliable (TCP drops while its dialer works,
// UDP drops under pressure).
func sendUntil(t *testing.T, src transport.Transport, dst transport.Addr, frame []byte, c *collector, want int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for c.count() < want {
		if err := src.Send(dst, frame); err != nil {
			t.Fatalf("Send: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("timeout: %d/%d frames delivered", c.count(), want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func testDelivery(t *testing.T, mk Factory) {
	a, b := mk(t)
	var onB collector
	b.SetReceiver(onB.receiver())

	msg := []byte("conformance: basic delivery")
	sendUntil(t, a, b.LocalAddr(), msg, &onB, 1)
	frames, srcs := onB.snapshot()
	if !bytes.Equal(frames[0], msg) {
		t.Fatalf("delivered frame = %q, want %q", frames[0], msg)
	}
	// The frame must be attributed to the sender's canonical address —
	// the protocol keys its per-peer channels on src.String(), so an
	// ephemeral-port or otherwise aliased source breaks correlation.
	if srcs[0] != a.LocalAddr().String() {
		t.Fatalf("src = %q, want sender's LocalAddr %q", srcs[0], a.LocalAddr().String())
	}

	var onA collector
	a.SetReceiver(onA.receiver())
	reply := []byte("conformance: reverse delivery")
	sendUntil(t, b, a.LocalAddr(), reply, &onA, 1)
	frames, srcs = onA.snapshot()
	if !bytes.Equal(frames[0], reply) {
		t.Fatalf("reverse frame = %q, want %q", frames[0], reply)
	}
	if srcs[0] != b.LocalAddr().String() {
		t.Fatalf("reverse src = %q, want %q", srcs[0], b.LocalAddr().String())
	}
}

// testEcho sends the reply from inside the receive callback, which is how
// the protocol layer emits acks and retransmitted results. A transport
// that deadlocks or drops on reentrant Send fails the whole stack.
func testEcho(t *testing.T, mk Factory) {
	a, b := mk(t)
	var onA collector
	a.SetReceiver(onA.receiver())
	b.SetReceiver(func(src transport.Addr, frame []byte) {
		echoed := append([]byte("echo:"), frame...)
		_ = b.Send(src, echoed)
	})

	deadline := time.Now().Add(10 * time.Second)
	for onA.count() == 0 {
		if err := a.Send(b.LocalAddr(), []byte("ping")); err != nil {
			t.Fatalf("Send: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("echo never arrived: transport cannot send from its receive callback")
		}
		time.Sleep(2 * time.Millisecond)
	}
	frames, srcs := onA.snapshot()
	if string(frames[0]) != "echo:ping" {
		t.Fatalf("echo = %q, want %q", frames[0], "echo:ping")
	}
	if srcs[0] != b.LocalAddr().String() {
		t.Fatalf("echo src = %q, want %q", srcs[0], b.LocalAddr().String())
	}
}

// testNoRetain drives a burst of distinct frames through one receive path
// and checks every copy taken during the callback is an intact sent frame
// — catching transports whose buffer recycling clobbers a frame before or
// during delivery.
func testNoRetain(t *testing.T, mk Factory) {
	a, b := mk(t)
	var onB collector
	b.SetReceiver(onB.receiver())

	const n = 64
	sent := make(map[string]bool, n)
	for i := 0; i < n; i++ {
		payload := fmt.Sprintf("burst-frame-%03d-%s", i, "payload-padding-to-make-length-vary"[:i%30])
		sent[payload] = true
		if err := a.Send(b.LocalAddr(), []byte(payload)); err != nil {
			t.Fatalf("Send %d: %v", i, err)
		}
	}
	// Lossy transports may not deliver all 64; require at least one and
	// give stragglers a moment, then validate integrity of what arrived.
	sendUntil(t, a, b.LocalAddr(), []byte("burst-frame-fin"), &onB, 1)
	sent["burst-frame-fin"] = true
	time.Sleep(50 * time.Millisecond)
	frames, _ := onB.snapshot()
	for i, f := range frames {
		if !sent[string(f)] {
			t.Fatalf("delivered frame %d = %q was never sent: reused buffer leaked across deliveries", i, f)
		}
	}
}

func testMaxFrame(t *testing.T, mk Factory) {
	a, b := mk(t)
	var onB collector
	b.SetReceiver(onB.receiver())

	max := a.MaxFrame()
	if max <= 0 {
		t.Fatalf("MaxFrame = %d", max)
	}
	over := make([]byte, max+1)
	if err := a.Send(b.LocalAddr(), over); !errors.Is(err, transport.ErrFrameTooLarge) {
		t.Fatalf("oversize Send err = %v, want ErrFrameTooLarge", err)
	}
	full := make([]byte, max)
	for i := range full {
		full[i] = byte(i)
	}
	sendUntil(t, a, b.LocalAddr(), full, &onB, 1)
	frames, _ := onB.snapshot()
	if !bytes.Equal(frames[0], full) {
		t.Fatalf("max-size frame corrupted in transit (len %d, want %d)", len(frames[0]), len(full))
	}
}

func testClose(t *testing.T, mk Factory) {
	a, b := mk(t)
	if err := a.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := a.Close(); err != nil {
		t.Fatalf("Close must be idempotent, second call: %v", err)
	}
	if err := a.Send(b.LocalAddr(), []byte("after close")); !errors.Is(err, transport.ErrClosed) {
		t.Fatalf("Send after Close err = %v, want ErrClosed", err)
	}
	if err := b.Close(); err != nil {
		t.Fatalf("peer Close: %v", err)
	}
}

func testStats(t *testing.T, mk Factory) {
	a, b := mk(t)
	sr, ok := a.(transport.StatsReporter)
	if !ok {
		t.Skip("transport does not report stats")
	}
	if _, live := sr.TransportStats(); !live {
		t.Skip("stats reporting not live on this transport")
	}
	var onB collector
	b.SetReceiver(onB.receiver())
	sendUntil(t, a, b.LocalAddr(), []byte("counted"), &onB, 1)

	sa, _ := sr.TransportStats()
	if sa.SendFrames == 0 || sa.SendBatches == 0 {
		t.Fatalf("sender counters did not move after delivery: %+v", sa)
	}
	if brs, ok := b.(transport.StatsReporter); ok {
		if sb, live := brs.TransportStats(); live && (sb.RecvFrames == 0 || sb.RecvBatches == 0) {
			t.Fatalf("receiver counters did not move after delivery: %+v", sb)
		}
	}
}

// testBatch checks the optional batched datapath: full acceptance and
// per-destination ordering (delivered frames must form an in-order
// subsequence of the submitted batch — drops allowed, reordering not).
func testBatch(t *testing.T, mk Factory) {
	a, b := mk(t)
	if !transport.SupportsBatch(a) {
		t.Skip("transport has no live batched datapath")
	}
	bs := a.(transport.BatchSender)
	var onB collector
	b.SetReceiver(onB.receiver())

	// Establish the path first so connection-oriented transports are warm.
	sendUntil(t, a, b.LocalAddr(), []byte("batch-warm"), &onB, 1)

	const n = 48
	frames := make([]transport.Frame, n)
	for i := range frames {
		frames[i] = transport.Frame{Dst: b.LocalAddr(), Data: []byte(fmt.Sprintf("batch-%03d", i))}
	}
	sent, err := bs.SendBatch(frames)
	if err != nil {
		t.Fatalf("SendBatch: %v", err)
	}
	if sent != n {
		t.Fatalf("SendBatch accepted %d/%d on a warm path", sent, n)
	}

	// Wait for at least one batch frame, then a settling window; verify
	// order of whatever arrived.
	deadline := time.Now().Add(10 * time.Second)
	for {
		got, _ := onB.snapshot()
		if len(batchIndices(t, got)) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no batch frames delivered")
		}
		time.Sleep(5 * time.Millisecond)
	}
	time.Sleep(100 * time.Millisecond)
	got, _ := onB.snapshot()
	batch := batchIndices(t, got)
	for i := 1; i < len(batch); i++ {
		if batch[i] <= batch[i-1] {
			t.Fatalf("per-destination order violated: frame %d delivered after frame %d", batch[i], batch[i-1])
		}
	}
}

func batchIndices(t *testing.T, frames [][]byte) []int {
	t.Helper()
	var idx []int
	for _, f := range frames {
		var i int
		if n, _ := fmt.Sscanf(string(f), "batch-%03d", &i); n == 1 {
			idx = append(idx, i)
		}
	}
	return idx
}
