package transport

import (
	"testing"
	"time"
)

func authPair(t *testing.T, callerKey, serverKey []byte) (*Auth, *Auth) {
	t.Helper()
	ex := NewExchange()
	a := WithAuth(ex.Port("a"), callerKey)
	b := WithAuth(ex.Port("b"), serverKey)
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b
}

func TestAuthRoundTrip(t *testing.T) {
	key := []byte("shared secret")
	a, b := authPair(t, key, key)
	got := make(chan []byte, 1)
	b.SetReceiver(func(src Addr, frame []byte) { got <- append([]byte(nil), frame...) })
	if err := a.Send(AddrOf("b"), []byte("authenticated")); err != nil {
		t.Fatal(err)
	}
	select {
	case f := <-got:
		if string(f) != "authenticated" {
			t.Fatalf("frame %q (tag not stripped?)", f)
		}
	case <-time.After(time.Second):
		t.Fatal("authenticated frame not delivered")
	}
}

func TestAuthRejectsWrongKey(t *testing.T) {
	a, b := authPair(t, []byte("key-one"), []byte("key-two"))
	got := make(chan []byte, 1)
	b.SetReceiver(func(src Addr, frame []byte) { got <- frame })
	a.Send(AddrOf("b"), []byte("forged"))
	select {
	case <-got:
		t.Fatal("frame under wrong key delivered")
	case <-time.After(50 * time.Millisecond):
	}
	if b.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", b.Dropped())
	}
}

func TestAuthRejectsTamperedFrame(t *testing.T) {
	key := []byte("k")
	ex := NewExchange()
	a := WithAuth(ex.Port("a"), key)
	// Raw port tampers: receives authenticated bytes, flips one, re-sends.
	rawB := ex.Port("b")
	c := WithAuth(ex.Port("c"), key)
	defer a.Close()
	defer rawB.Close()
	defer c.Close()

	rawB.SetReceiver(func(src Addr, frame []byte) {
		evil := append([]byte(nil), frame...)
		evil[0] ^= 0x01
		rawB.Send(AddrOf("c"), evil)
	})
	got := make(chan struct{}, 1)
	c.SetReceiver(func(Addr, []byte) { got <- struct{}{} })

	a.Send(AddrOf("b"), []byte("message"))
	select {
	case <-got:
		t.Fatal("tampered frame delivered")
	case <-time.After(50 * time.Millisecond):
	}
	if c.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", c.Dropped())
	}
}

func TestAuthRejectsUnauthenticatedSender(t *testing.T) {
	key := []byte("k")
	ex := NewExchange()
	raw := ex.Port("raw")
	b := WithAuth(ex.Port("b"), key)
	defer raw.Close()
	defer b.Close()
	got := make(chan struct{}, 1)
	b.SetReceiver(func(Addr, []byte) { got <- struct{}{} })
	raw.Send(AddrOf("b"), []byte("no tag at all"))
	raw.Send(AddrOf("b"), []byte("x")) // shorter than a tag
	select {
	case <-got:
		t.Fatal("unauthenticated frame delivered")
	case <-time.After(50 * time.Millisecond):
	}
	if b.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", b.Dropped())
	}
}

func TestAuthMaxFrameShrinks(t *testing.T) {
	ex := NewExchange()
	p := ex.Port("p")
	a := WithAuth(p, []byte("k"))
	defer a.Close()
	if a.MaxFrame() != p.MaxFrame()-authTagLen {
		t.Fatal("MaxFrame must shrink by the tag length")
	}
	if err := a.Send(AddrOf("q"), make([]byte, a.MaxFrame()+1)); err != ErrFrameTooLarge {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
}
