package transport

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"
)

// collector gathers delivered frames (copied — the Receiver contract says
// the buffer is only valid during the call).
type collector struct {
	mu     sync.Mutex
	frames [][]byte
}

func (c *collector) receive(_ Addr, frame []byte) {
	c.mu.Lock()
	c.frames = append(c.frames, append([]byte(nil), frame...))
	c.mu.Unlock()
}

func (c *collector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.frames)
}

func (c *collector) snapshot() [][]byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([][]byte(nil), c.frames...)
}

func listenBatchT(t *testing.T, opts UDPOptions) Transport {
	t.Helper()
	if os.Getenv(EnvNoBatch) != "" {
		// The batch-engine tests are meaningless with the engine forced off;
		// TestBatchEnvForceDisable covers the NOBATCH contract itself.
		t.Skipf("%s set: batch engine force-disabled", EnvNoBatch)
	}
	tr, err := ListenUDPBatch("127.0.0.1:0", opts)
	if err != nil {
		t.Skip("no loopback:", err)
	}
	t.Cleanup(func() { tr.Close() })
	return tr
}

// numbered builds n frames of size bytes whose first 4 bytes carry their
// sequence number.
func numbered(n, size int) []Frame {
	frames := make([]Frame, n)
	for i := range frames {
		data := make([]byte, size)
		binary.BigEndian.PutUint32(data, uint32(i))
		frames[i] = Frame{Data: data}
	}
	return frames
}

func waitFrames(t *testing.T, c *collector, want int) {
	t.Helper()
	waitCondition(t, 5*time.Second, func() error {
		if got := c.count(); got != want {
			return fmt.Errorf("delivered %d of %d frames", got, want)
		}
		return nil
	})
}

// Batched sender to batched receiver: the full GSO→GRO loop. Every frame
// must arrive intact and in submission order (one peer, one queue).
func TestBatchRoundTripOrdered(t *testing.T) {
	a := listenBatchT(t, UDPOptions{})
	b := listenBatchT(t, UDPOptions{})
	var c collector
	b.SetReceiver(c.receive)

	const n = 64
	frames := numbered(n, 512)
	for i := range frames {
		frames[i].Dst = b.LocalAddr()
	}
	bs, ok := a.(BatchSender)
	if !ok {
		t.Fatal("ListenUDPBatch result does not implement BatchSender")
	}
	sent, err := bs.SendBatch(frames)
	if err != nil || sent != n {
		t.Fatalf("SendBatch = %d, %v", sent, err)
	}
	waitFrames(t, &c, n)
	for i, f := range c.snapshot() {
		if len(f) != 512 {
			t.Fatalf("frame %d: len %d, want 512", i, len(f))
		}
		if seq := binary.BigEndian.Uint32(f); seq != uint32(i) {
			t.Fatalf("frame %d carries seq %d: reordered within one peer's queue", i, seq)
		}
	}
}

// GSO must be invisible to a plain per-frame receiver: a batched sender's
// super-packets arrive at an ordinary UDP socket as individual datagrams.
func TestBatchSendToPerFrameReceiver(t *testing.T) {
	a := listenBatchT(t, UDPOptions{})
	b, err := ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Skip("no loopback:", err)
	}
	defer b.Close()
	var c collector
	b.SetReceiver(c.receive)

	const n = 50
	frames := numbered(n, 300)
	for i := range frames {
		frames[i].Dst = b.LocalAddr()
	}
	if sent, err := a.(BatchSender).SendBatch(frames); err != nil || sent != n {
		t.Fatalf("SendBatch = %d, %v", sent, err)
	}
	waitFrames(t, &c, n)
	for i, f := range c.snapshot() {
		if seq := binary.BigEndian.Uint32(f); seq != uint32(i) {
			t.Fatalf("frame %d carries seq %d", i, seq)
		}
	}
}

// GRO must be invisible to the sender side too: per-frame sends into a
// batched receiver come out as the original frames.
func TestPerFrameSendToBatchReceiver(t *testing.T) {
	a, err := ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Skip("no loopback:", err)
	}
	defer a.Close()
	b := listenBatchT(t, UDPOptions{})
	var c collector
	b.SetReceiver(c.receive)

	const n = 32
	for i := 0; i < n; i++ {
		data := make([]byte, 256)
		binary.BigEndian.PutUint32(data, uint32(i))
		if err := a.Send(b.LocalAddr(), data); err != nil {
			t.Fatal(err)
		}
	}
	waitFrames(t, &c, n)
}

// Mixed frame sizes exercise the GSO grouping cut points: equal-size runs,
// a shorter trailing frame, singletons.
func TestBatchMixedSizes(t *testing.T) {
	a := listenBatchT(t, UDPOptions{})
	b := listenBatchT(t, UDPOptions{})
	var c collector
	b.SetReceiver(c.receive)

	sizes := []int{400, 400, 400, 120, 900, 900, 64, UDPMaxFrame, UDPMaxFrame, 5}
	frames := make([]Frame, len(sizes))
	for i, sz := range sizes {
		data := bytes.Repeat([]byte{byte(i + 1)}, sz)
		binary.BigEndian.PutUint32(data, uint32(i))
		frames[i] = Frame{Dst: b.LocalAddr(), Data: data}
	}
	if sent, err := a.(BatchSender).SendBatch(frames); err != nil || sent != len(frames) {
		t.Fatalf("SendBatch = %d, %v", sent, err)
	}
	waitFrames(t, &c, len(frames))
	for i, f := range c.snapshot() {
		if len(f) != sizes[i] {
			t.Fatalf("frame %d: len %d, want %d", i, len(f), sizes[i])
		}
		if !bytes.Equal(f[4:], frames[i].Data[4:]) {
			t.Fatalf("frame %d corrupted", i)
		}
	}
}

// An oversize frame mid-batch sends everything before it and reports
// ErrFrameTooLarge with the accepted count.
func TestBatchOversizeFramePartial(t *testing.T) {
	a := listenBatchT(t, UDPOptions{})
	b := listenBatchT(t, UDPOptions{})
	var c collector
	b.SetReceiver(c.receive)

	frames := numbered(5, 128)
	for i := range frames {
		frames[i].Dst = b.LocalAddr()
	}
	frames[3].Data = make([]byte, UDPMaxFrame+1)
	sent, err := a.(BatchSender).SendBatch(frames)
	if err != ErrFrameTooLarge {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
	if sent != 3 {
		t.Fatalf("accepted %d, want 3", sent)
	}
	waitFrames(t, &c, 3)
}

func TestBatchSendAfterClose(t *testing.T) {
	a := listenBatchT(t, UDPOptions{})
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(a.LocalAddr(), []byte("x")); err != ErrClosed {
		t.Fatalf("Send after close: %v", err)
	}
	if _, err := a.(BatchSender).SendBatch([]Frame{{Dst: a.LocalAddr(), Data: []byte("x")}}); err != ErrClosed {
		t.Fatalf("SendBatch after close: %v", err)
	}
	if err := a.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

// Explicit sharding: multiple SO_REUSEPORT sockets on one port, traffic
// from several sources all lands somewhere and nothing is duplicated.
func TestBatchShardedReceive(t *testing.T) {
	b := listenBatchT(t, UDPOptions{Shards: 2})
	var c collector
	b.SetReceiver(c.receive)

	const senders, per = 4, 25
	for s := 0; s < senders; s++ {
		a, err := ListenUDP("127.0.0.1:0")
		if err != nil {
			t.Skip("no loopback:", err)
		}
		defer a.Close()
		for i := 0; i < per; i++ {
			data := make([]byte, 64)
			binary.BigEndian.PutUint32(data, uint32(s*per+i))
			if err := a.Send(b.LocalAddr(), data); err != nil {
				t.Fatal(err)
			}
		}
	}
	waitFrames(t, &c, senders*per)
	seen := make(map[uint32]bool)
	for _, f := range c.snapshot() {
		seq := binary.BigEndian.Uint32(f)
		if seen[seq] {
			t.Fatalf("frame %d delivered twice", seq)
		}
		seen[seq] = true
	}
}

// Spin mode: a round trip works and Close terminates the spinning loop
// (regression guard: the spin must poll the closed flag or Close hangs).
func TestBatchSpinModeAndClose(t *testing.T) {
	b := listenBatchT(t, UDPOptions{RecvMode: RecvModeSpin, SpinBudget: 256})
	var c collector
	b.SetReceiver(c.receive)
	a := listenBatchT(t, UDPOptions{})
	if err := a.Send(b.LocalAddr(), []byte("spin")); err != nil {
		t.Fatal(err)
	}
	waitFrames(t, &c, 1)
	done := make(chan struct{})
	go func() { b.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung against a spinning receive loop")
	}
}

func TestBatchRejectsBadRecvMode(t *testing.T) {
	if _, err := ListenUDPBatch("127.0.0.1:0", UDPOptions{RecvMode: "busywait"}); err == nil {
		t.Fatal("bad RecvMode accepted")
	}
}

// FIREFLYRPC_NOBATCH forces the plain per-frame transport: no BatchSender.
func TestBatchEnvForceDisable(t *testing.T) {
	t.Setenv(EnvNoBatch, "1")
	tr, err := ListenUDPBatch("127.0.0.1:0", UDPOptions{})
	if err != nil {
		t.Skip("no loopback:", err)
	}
	defer tr.Close()
	if _, ok := tr.(*UDP); !ok {
		t.Fatalf("NOBATCH returned %T, want *UDP", tr)
	}
	if SupportsBatch(tr) {
		t.Fatal("NOBATCH transport claims batch support")
	}
}

// The generic fallback shim (what non-Linux platforms get) must keep exact
// per-frame semantics: SendBatch loops Send, BatchEnabled is false.
func TestBatchFallbackSemantics(t *testing.T) {
	u, err := ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Skip("no loopback:", err)
	}
	fb := &batchFallback{UDP: u}
	defer fb.Close()
	if fb.BatchEnabled() {
		t.Fatal("fallback claims a live batch path")
	}
	if SupportsBatch(fb) {
		t.Fatal("SupportsBatch(fallback) = true")
	}
	var c collector
	recv, err := ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	recv.SetReceiver(c.receive)
	frames := numbered(8, 100)
	for i := range frames {
		frames[i].Dst = recv.LocalAddr()
	}
	if sent, err := fb.SendBatch(frames); err != nil || sent != 8 {
		t.Fatalf("fallback SendBatch = %d, %v", sent, err)
	}
	waitFrames(t, &c, 8)
}

func TestSupportsBatch(t *testing.T) {
	u, err := ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Skip("no loopback:", err)
	}
	defer u.Close()
	if SupportsBatch(u) {
		t.Fatal("plain UDP claims batch support")
	}
	ex := NewExchange()
	p := ex.Port("p")
	defer p.Close()
	if SupportsBatch(p) {
		t.Fatal("exchange port claims batch support")
	}
}

// Stats: the batched path must amortize — strictly fewer send operations
// than frames — and account every frame on both sides.
func TestBatchStatsAmortization(t *testing.T) {
	a := listenBatchT(t, UDPOptions{})
	b := listenBatchT(t, UDPOptions{})
	var c collector
	b.SetReceiver(c.receive)

	const n = 64
	frames := numbered(n, 512)
	for i := range frames {
		frames[i].Dst = b.LocalAddr()
	}
	if sent, err := a.(BatchSender).SendBatch(frames); err != nil || sent != n {
		t.Fatalf("SendBatch = %d, %v", sent, err)
	}
	waitFrames(t, &c, n)

	as, ok := a.(StatsReporter)
	if !ok {
		t.Fatal("batched transport has no stats")
	}
	st, live := as.TransportStats()
	if !live {
		t.Fatal("stats not live")
	}
	if st.SendFrames != n {
		t.Fatalf("SendFrames = %d, want %d", st.SendFrames, n)
	}
	if st.SendBatches >= n {
		t.Fatalf("SendBatches = %d for %d frames: no amortization", st.SendBatches, n)
	}
	if st.MaxSendBatch < 2 {
		t.Fatalf("MaxSendBatch = %d", st.MaxSendBatch)
	}
	bst, _ := b.(StatsReporter).TransportStats()
	if bst.RecvFrames != n {
		t.Fatalf("RecvFrames = %d, want %d", bst.RecvFrames, n)
	}
	t.Logf("send: %d frames in %d ops (gso=%d); recv: %d frames in %d ops (gro splits=%d)",
		st.SendFrames, st.SendBatches, st.GSOSends, bst.RecvFrames, bst.RecvBatches, bst.GROSplits)
}

// Per-frame UDP stats: counters move and oversize receive is recorded.
func TestUDPStats(t *testing.T) {
	a, err := ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Skip("no loopback:", err)
	}
	defer a.Close()
	b, err := ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	var c collector
	b.SetReceiver(c.receive)
	for i := 0; i < 3; i++ {
		if err := a.Send(b.LocalAddr(), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	waitFrames(t, &c, 3)
	st, live := a.TransportStats()
	if !live || st.SendFrames != 3 || st.SendBatches != 3 {
		t.Fatalf("sender stats = %+v, live=%v", st, live)
	}
	rst, _ := b.TransportStats()
	if rst.RecvFrames != 3 {
		t.Fatalf("RecvFrames = %d, want 3", rst.RecvFrames)
	}
}

// Concurrency: Send, SendBatch, and Close racing from many goroutines must
// be safe (run under -race by verify.sh).
func TestBatchConcurrentSendClose(t *testing.T) {
	for round := 0; round < 10; round++ {
		a := listenBatchT(t, UDPOptions{})
		b := listenBatchT(t, UDPOptions{})
		b.SetReceiver(func(Addr, []byte) {})
		dst := b.LocalAddr()
		var wg sync.WaitGroup
		stop := make(chan struct{})
		for g := 0; g < 3; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				frames := numbered(16, 64)
				for i := range frames {
					frames[i].Dst = dst
				}
				for {
					select {
					case <-stop:
						return
					default:
					}
					a.Send(dst, []byte("one"))
					a.(BatchSender).SendBatch(frames)
				}
			}()
		}
		time.Sleep(5 * time.Millisecond)
		a.Close()
		close(stop)
		wg.Wait()
		b.Close()
	}
}
