package transport

import (
	"fmt"
	"os"
	"runtime"
)

// Receive-loop modes for the batched UDP engine.
const (
	// RecvModePark blocks each shard's read loop on the runtime netpoller
	// between bursts: zero CPU when idle, one wakeup per burst.
	RecvModePark = "park"
	// RecvModeSpin polls the socket with nonblocking recvmmsg for a budget
	// of iterations before parking: burns a core while hot but shaves the
	// netpoller wakeup off the receive path for latency-sensitive runs.
	RecvModeSpin = "spin"
)

// EnvNoBatch, when set to any non-empty value, forces ListenUDPBatch to
// return the plain per-frame UDP transport — the force-disable switch the
// fallback acceptance tests flip to prove the stack runs without any of the
// batched machinery.
const EnvNoBatch = "FIREFLYRPC_NOBATCH"

// UDPOptions configures the batched UDP engine. The zero value picks
// sensible defaults everywhere.
type UDPOptions struct {
	// Shards is the number of SO_REUSEPORT receive sockets, each with its
	// own read loop and interned peer map. 0 means min(NumCPU, 4); 1
	// disables sharding. The kernel's 4-tuple hash keeps every peer on one
	// shard, so per-peer delivery order is preserved.
	Shards int
	// RecvMode is RecvModePark (default) or RecvModeSpin.
	RecvMode string
	// SpinBudget is how many nonblocking polls a spin-mode loop makes
	// before parking. 0 means a default budget. Ignored in park mode.
	SpinBudget int
	// RecvBatch is the recvmmsg vector size per shard. 0 means 32.
	RecvBatch int
	// DisableGSO and DisableGRO opt out of kernel segmentation offload even
	// when the kernel supports it (useful for A/B measurement).
	DisableGSO bool
	DisableGRO bool
}

func (o UDPOptions) withDefaults() (UDPOptions, error) {
	if o.Shards <= 0 {
		o.Shards = runtime.NumCPU()
		if o.Shards > 4 {
			o.Shards = 4
		}
	}
	if o.RecvBatch <= 0 {
		o.RecvBatch = 32
	}
	if o.SpinBudget <= 0 {
		o.SpinBudget = 4096
	}
	switch o.RecvMode {
	case "":
		o.RecvMode = RecvModePark
	case RecvModePark, RecvModeSpin:
	default:
		return o, fmt.Errorf("transport: unknown RecvMode %q", o.RecvMode)
	}
	return o, nil
}

// ListenUDPBatch opens the batched UDP transport on addr. On Linux this is
// the sendmmsg/recvmmsg engine with GSO/GRO and SO_REUSEPORT sharding; on
// other platforms it degrades to the per-frame path wrapped so SendBatch
// still works (BatchEnabled reports false there). Setting EnvNoBatch forces
// the plain per-frame transport everywhere.
//
// Upper layers see exactly the Transport contract either way: frames are
// ≤ MaxFrame bytes, kernel coalescing and segmentation are invisible, and
// frames to one peer are never reordered by the transport itself.
func ListenUDPBatch(addr string, opts UDPOptions) (Transport, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	if os.Getenv(EnvNoBatch) != "" {
		return ListenUDP(addr)
	}
	return listenUDPBatch(addr, opts)
}

// batchFallback is the generic ListenUDPBatch result on platforms without
// the mmsg engine: the per-frame transport with a loop-over-Send SendBatch.
// BatchEnabled reports false so upper layers don't build batching state for
// a path that can't amortize anything.
type batchFallback struct {
	*UDP
}

func (b *batchFallback) SendBatch(frames []Frame) (int, error) {
	for i, f := range frames {
		if err := b.Send(f.Dst, f.Data); err != nil {
			return i, err
		}
	}
	return len(frames), nil
}

func (b *batchFallback) BatchEnabled() bool { return false }
