package transport

import (
	"fmt"
	"sync"

	"fireflyrpc/internal/buffer"
	"fireflyrpc/internal/wire"
)

// Exchange is an in-process datagram switch: the shared-memory transport
// for same-machine RPC. Fault injection lives in internal/faultnet (wrap a
// port with faultnet.Wrap), not here: the exchange itself is a perfect
// network.
//
// Frames in flight live in pooled fixed-size buffers (the software analogue
// of the Firefly's ring of receive buffers): Send copies the caller's frame
// into a pooled buffer, the receiver callback sees that buffer, and it is
// recycled as soon as the callback returns — steady-state traffic allocates
// nothing.
type Exchange struct {
	mu    sync.Mutex
	ports map[string]*MemPort
	seq   int

	frames buffer.FramePool
}

// NewExchange creates an empty exchange.
func NewExchange() *Exchange {
	return &Exchange{ports: make(map[string]*MemPort)}
}

// memAddr names an exchange port. It is a comparable value type whose
// String() is a free conversion, so upper layers can key maps by either the
// Addr or its string without allocating.
type memAddr string

func (a memAddr) String() string  { return string(a) }
func (a memAddr) Network() string { return "mem" }

// MemPort is one endpoint attached to an Exchange.
type MemPort struct {
	ex   *Exchange
	addr memAddr
	// addr boxed as an Addr once, so the per-frame delivery does not heap-
	// allocate an interface conversion of the string value.
	addrIface Addr
	mu        sync.RWMutex
	recv      Receiver
	closed    bool
	q         chan delivery
	quit      chan struct{}
	done      chan struct{}
}

type delivery struct {
	src Addr
	f   *buffer.Frame
}

// Port attaches a new endpoint. name must be unique within the exchange;
// empty picks one.
func (e *Exchange) Port(name string) *MemPort {
	e.mu.Lock()
	defer e.mu.Unlock()
	if name == "" {
		e.seq++
		name = fmt.Sprintf("mem-%d", e.seq)
	}
	if _, dup := e.ports[name]; dup {
		panic("transport: duplicate mem port " + name)
	}
	p := &MemPort{
		ex:   e,
		addr: memAddr(name),
		q:    make(chan delivery, 1024),
		quit: make(chan struct{}),
		done: make(chan struct{}),
	}
	p.addrIface = p.addr
	e.ports[name] = p
	go p.deliverLoop()
	return p
}

// enqueue hands a pooled frame to target, reclaiming it immediately if the
// port's queue is full or the port has shut down (a dropped packet).
func enqueue(target *MemPort, d delivery) {
	select {
	case target.q <- d:
	case <-target.quit: // port shut down: dropped
		d.f.Release()
	default: // receiver overwhelmed: drop, like a full ring
		d.f.Release()
	}
}

// SendFrom injects a frame into the exchange as if sent by the port named
// src — a test hook for spoofing retransmissions and stale packets.
func (e *Exchange) SendFrom(src, dst string, frame []byte) error {
	e.mu.Lock()
	target := e.ports[dst]
	e.mu.Unlock()
	if target == nil {
		return nil
	}
	f := e.frames.Get()
	f.CopyFrom(frame)
	enqueue(target, delivery{src: memAddr(src), f: f})
	return nil
}

func (p *MemPort) deliverLoop() {
	defer close(p.done)
	for {
		select {
		case d := <-p.q:
			p.mu.RLock()
			recv := p.recv
			p.mu.RUnlock()
			if recv != nil {
				// The Receiver contract says the slice is only valid during
				// the callback, so the buffer can be recycled the moment it
				// returns — the "processing packets on the fly" trick that
				// kept the Firefly's receive buffers circulating.
				recv(d.src, d.f.Bytes())
			}
			d.f.Release()
		case <-p.quit:
			return
		}
	}
}

// Send implements Transport.
func (p *MemPort) Send(dst Addr, frame []byte) error {
	p.mu.RLock()
	closed := p.closed
	p.mu.RUnlock()
	if closed {
		return ErrClosed
	}
	if len(frame) > p.MaxFrame() {
		return ErrFrameTooLarge
	}
	e := p.ex
	e.mu.Lock()
	target := e.ports[dst.String()]
	e.mu.Unlock()
	if target == nil {
		return nil // silently lost, like the wire
	}
	f := e.frames.Get()
	f.CopyFrom(frame)
	// The queue is never closed, so a send racing the target's Close is
	// benign: the frame just goes undelivered, like any late packet.
	enqueue(target, delivery{src: p.addrIface, f: f})
	return nil
}

// SetReceiver implements Transport.
func (p *MemPort) SetReceiver(r Receiver) {
	p.mu.Lock()
	p.recv = r
	p.mu.Unlock()
}

// LocalAddr implements Transport.
func (p *MemPort) LocalAddr() Addr { return p.addr }

// MaxFrame implements Transport. Same single-packet budget as UDP, so the
// local transport exercises identical fragmentation behavior.
func (p *MemPort) MaxFrame() int { return wire.RPCHeaderLen + wire.MaxSinglePacketPayload }

// Close implements Transport.
func (p *MemPort) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	p.mu.Unlock()
	p.ex.mu.Lock()
	delete(p.ex.ports, string(p.addr))
	p.ex.mu.Unlock()
	close(p.quit)
	<-p.done
	return nil
}

// Addr returns the port's address for peers to Send to.
func (p *MemPort) Addr(name string) Addr { return memAddr(name) }

// AddrOf names a port on any exchange.
func AddrOf(name string) Addr { return memAddr(name) }
