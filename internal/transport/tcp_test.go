package transport

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func newTCPPair(t *testing.T) (*TCP, *TCP) {
	t.Helper()
	a, err := ListenTCP("127.0.0.1:0", TCPOptions{})
	if err != nil {
		t.Fatalf("ListenTCP a: %v", err)
	}
	t.Cleanup(func() { a.Close() })
	b, err := ListenTCP("127.0.0.1:0", TCPOptions{})
	if err != nil {
		t.Fatalf("ListenTCP b: %v", err)
	}
	t.Cleanup(func() { b.Close() })
	return a, b
}

type tcpCollector struct {
	mu     sync.Mutex
	frames [][]byte
	srcs   []string
}

func (c *tcpCollector) receiver() Receiver {
	return func(src Addr, frame []byte) {
		c.mu.Lock()
		c.frames = append(c.frames, append([]byte(nil), frame...))
		c.srcs = append(c.srcs, src.String())
		c.mu.Unlock()
	}
}

func (c *tcpCollector) wait(t *testing.T, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		c.mu.Lock()
		got := len(c.frames)
		c.mu.Unlock()
		if got >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %d frames, have %d", n, got)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestTCPRoundTrip(t *testing.T) {
	a, b := newTCPPair(t)
	var onA, onB tcpCollector
	a.SetReceiver(onA.receiver())
	b.SetReceiver(onB.receiver())

	// a dials b; replies from b must ride back over the same stream and
	// arrive attributed to b's canonical listen address.
	msg := []byte("hello over the stream")
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := a.Send(b.LocalAddr(), msg); err != nil {
			t.Fatalf("Send: %v", err)
		}
		onB.mu.Lock()
		got := len(onB.frames)
		onB.mu.Unlock()
		if got > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("frame never delivered a→b")
		}
		time.Sleep(5 * time.Millisecond)
	}
	onB.mu.Lock()
	if !bytes.Equal(onB.frames[0], msg) {
		t.Fatalf("frame = %q, want %q", onB.frames[0], msg)
	}
	if onB.srcs[0] != a.LocalAddr().String() {
		t.Fatalf("src = %q, want a's listen addr %q", onB.srcs[0], a.LocalAddr().String())
	}
	onB.mu.Unlock()

	reply := []byte("reply on the shared stream")
	if err := b.Send(a.LocalAddr(), reply); err != nil {
		t.Fatalf("reply Send: %v", err)
	}
	onA.wait(t, 1)
	onA.mu.Lock()
	if !bytes.Equal(onA.frames[0], reply) {
		t.Fatalf("reply = %q, want %q", onA.frames[0], reply)
	}
	if onA.srcs[0] != b.LocalAddr().String() {
		t.Fatalf("reply src = %q, want b's listen addr %q", onA.srcs[0], b.LocalAddr().String())
	}
	onA.mu.Unlock()
}

func TestTCPReconnect(t *testing.T) {
	a, b := newTCPPair(t)
	var onB tcpCollector
	b.SetReceiver(onB.receiver())

	send := func(payload []byte) {
		t.Helper()
		want := 0
		onB.mu.Lock()
		want = len(onB.frames) + 1
		onB.mu.Unlock()
		deadline := time.Now().Add(5 * time.Second)
		for {
			if err := a.Send(b.LocalAddr(), payload); err != nil {
				t.Fatalf("Send: %v", err)
			}
			onB.mu.Lock()
			got := len(onB.frames)
			onB.mu.Unlock()
			if got >= want {
				return
			}
			if time.Now().After(deadline) {
				t.Fatal("frame never delivered")
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	send([]byte("before the cut"))

	// Kill the live stream out from under the transport; the next sends
	// must re-establish it via the background dialer.
	p := a.peerOf(b.LocalAddr().String())
	p.mu.Lock()
	if p.conn != nil {
		p.conn.Close()
	}
	p.mu.Unlock()

	send([]byte("after the cut"))
}

func TestTCPOversizeAndClosed(t *testing.T) {
	a, b := newTCPPair(t)
	big := make([]byte, TCPMaxFrame+1)
	if err := a.Send(b.LocalAddr(), big); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversize Send err = %v, want ErrFrameTooLarge", err)
	}
	if err := a.Send(b.LocalAddr(), make([]byte, TCPMaxFrame)); err != nil {
		t.Fatalf("max-size Send err = %v", err)
	}
	if err := a.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := a.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := a.Send(b.LocalAddr(), []byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Send after Close err = %v, want ErrClosed", err)
	}
	if _, err := a.SendBatch([]Frame{{Dst: b.LocalAddr(), Data: []byte("x")}}); !errors.Is(err, ErrClosed) {
		t.Fatalf("SendBatch after Close err = %v, want ErrClosed", err)
	}
}

func TestTCPSendBatch(t *testing.T) {
	a, b := newTCPPair(t)
	var onB tcpCollector
	b.SetReceiver(onB.receiver())

	if !SupportsBatch(a) {
		t.Fatal("TCP should report a live batched datapath")
	}

	// Warm the connection so the batch isn't dropped while dialing.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := a.Send(b.LocalAddr(), []byte("warm")); err != nil {
			t.Fatalf("warm Send: %v", err)
		}
		onB.mu.Lock()
		got := len(onB.frames)
		onB.mu.Unlock()
		if got > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("warmup frame never delivered")
		}
		time.Sleep(5 * time.Millisecond)
	}

	const n = 32
	frames := make([]Frame, n)
	for i := range frames {
		frames[i] = Frame{Dst: b.LocalAddr(), Data: []byte(fmt.Sprintf("frame-%03d", i))}
	}
	sent, err := a.SendBatch(frames)
	if err != nil {
		t.Fatalf("SendBatch: %v", err)
	}
	if sent != n {
		t.Fatalf("SendBatch accepted %d, want %d", sent, n)
	}

	// The warmup loop may have delivered several "warm" duplicates; the
	// stream guarantees they all precede the batch, so filter them out and
	// check the batch arrived complete and in submission order.
	deadline = time.Now().Add(5 * time.Second)
	for {
		onB.mu.Lock()
		var batch []string
		for _, f := range onB.frames {
			if string(f) != "warm" {
				batch = append(batch, string(f))
			}
		}
		onB.mu.Unlock()
		if len(batch) >= n {
			for i := 0; i < n; i++ {
				want := fmt.Sprintf("frame-%03d", i)
				if batch[i] != want {
					t.Fatalf("frame %d = %q, want %q", i, batch[i], want)
				}
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("timeout: %d/%d batch frames delivered", len(batch), n)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestTCPStats(t *testing.T) {
	a, b := newTCPPair(t)
	var onB tcpCollector
	b.SetReceiver(onB.receiver())

	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := a.Send(b.LocalAddr(), []byte("counted")); err != nil {
			t.Fatalf("Send: %v", err)
		}
		onB.mu.Lock()
		got := len(onB.frames)
		onB.mu.Unlock()
		if got > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("frame never delivered")
		}
		time.Sleep(5 * time.Millisecond)
	}

	sa, ok := a.TransportStats()
	if !ok {
		t.Fatal("a.TransportStats not ok")
	}
	if sa.SendFrames == 0 || sa.SendBatches == 0 {
		t.Fatalf("sender stats did not move: %+v", sa)
	}
	sb, ok := b.TransportStats()
	if !ok {
		t.Fatal("b.TransportStats not ok")
	}
	if sb.RecvFrames == 0 || sb.RecvBatches == 0 {
		t.Fatalf("receiver stats did not move: %+v", sb)
	}
}

func TestTCPResolveAddr(t *testing.T) {
	if _, err := ResolveTCPAddr("not-an-addr"); err == nil {
		t.Fatal("ResolveTCPAddr accepted a malformed address")
	}
	addr, err := ResolveTCPAddr("127.0.0.1:9999")
	if err != nil {
		t.Fatalf("ResolveTCPAddr: %v", err)
	}
	if addr.String() != "127.0.0.1:9999" || addr.Network() != "tcp" {
		t.Fatalf("addr = %q/%q", addr.String(), addr.Network())
	}
}
