package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"sync"
	"time"
)

// TCP is a Transport over multiplexed TCP streams: one connection per peer
// pair carries every RPC frame in both directions, length-prefix framed
// back into the same ≤1472-byte contract the datagram transports obey, so
// the protocol layer above cannot tell the difference. The stream is
// reliable, which makes the protocol's retransmissions cheap duplicates a
// server's duplicate suppression absorbs — the retransmission engine stays
// on anyway, because it is also the liveness detector for a dead peer or a
// connection the kernel has not yet declared broken.
//
// Connection management: a dialer opens one connection to the peer's
// listen address and prefixes it with a preface naming its *own* listen
// address, so the acceptor keys the connection by the peer's canonical name
// rather than its ephemeral port — replies then flow back over the same
// stream, and both directions agree on each other's Addr (the contract the
// per-peer channel map above keys on). Writes take a per-peer mutex into a
// buffered writer; Send flushes per frame, SendBatch writes the whole
// burst and flushes once per touched peer, which is where a stream
// transport's syscall amortization comes from. A lost connection turns
// Sends into silent drops (UDP semantics; the protocol retransmits) while
// a single background dialer per peer re-establishes it with exponential
// backoff.
type TCP struct {
	ln   net.Listener
	self *tcpAddr
	opts TCPOptions

	mu     sync.RWMutex
	recv   Receiver
	closed bool
	peers  map[string]*tcpPeer

	connsMu sync.Mutex
	conns   map[net.Conn]struct{}

	wg sync.WaitGroup

	counters
}

// TCPMaxFrame keeps stream-framed RPC frames within the same single-packet
// budget as the datagram transports, so fragmentation decisions and buffer
// pools behave identically over every transport.
const TCPMaxFrame = UDPMaxFrame

// TCPOptions tunes the stream transport; zero values get defaults.
type TCPOptions struct {
	// DialTimeout bounds one connection attempt (default 2s).
	DialTimeout time.Duration
	// ReconnectMin/ReconnectMax bound the redial backoff after a failed
	// attempt (defaults 20ms and 1s; the delay doubles between attempts).
	ReconnectMin time.Duration
	ReconnectMax time.Duration
	// WriteTimeout bounds one flush (default 10s). A peer that stops
	// reading long enough to fill both kernel buffers would otherwise
	// wedge the writer — and with it a receive callback that sends —
	// forever; on expiry the connection is dropped and redialed, and the
	// lost frames are the protocol's retransmissions to recover.
	WriteTimeout time.Duration
}

func (o TCPOptions) withDefaults() TCPOptions {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 2 * time.Second
	}
	if o.ReconnectMin <= 0 {
		o.ReconnectMin = 20 * time.Millisecond
	}
	if o.ReconnectMax <= 0 {
		o.ReconnectMax = time.Second
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = 10 * time.Second
	}
	return o
}

// tcpAddr is the canonical peer name: the peer's listen address as a
// string, cached so Addr.String() never allocates. One value is interned
// per peer, so the same pointer arrives with every frame.
type tcpAddr struct{ str string }

func (a *tcpAddr) String() string  { return a.str }
func (a *tcpAddr) Network() string { return "tcp" }

// ResolveTCPAddr names a peer (its listen address) for Send.
func ResolveTCPAddr(addr string) (Addr, error) {
	if _, _, err := net.SplitHostPort(addr); err != nil {
		return nil, err
	}
	return &tcpAddr{str: addr}, nil
}

// tcpPeer is the per-peer connection state: the current outbound stream
// behind the per-peer write mutex, and the redial bookkeeping.
type tcpPeer struct {
	t    *TCP
	addr *tcpAddr

	mu      sync.Mutex // the per-peer write mutex
	conn    net.Conn
	bw      *bufio.Writer
	dialing bool
	// pending holds frames sent while no stream is up (first contact, or
	// mid-reconnect), flushed when one is adopted. Without it every cold
	// start costs the protocol a full retransmission interval; with it the
	// first call's frames ride the fresh connection immediately. Bounded:
	// past the cap frames drop, UDP-style, and retransmission recovers.
	pending [][]byte
}

// maxPendingFrames bounds the frames parked per peer while dialing.
const maxPendingFrames = 32

// prefaceMagic opens every dialed connection, followed by the dialer's
// canonical listen address (uint16 length + bytes).
var prefaceMagic = [6]byte{'F', 'F', 'T', 'C', 'P', '1'}

// ListenTCP opens a stream transport listening on addr ("host:port";
// ":0" picks a port).
func ListenTCP(addr string, opts TCPOptions) (*TCP, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	t := &TCP{
		ln:    ln,
		self:  &tcpAddr{str: ln.Addr().String()},
		opts:  opts.withDefaults(),
		peers: make(map[string]*tcpPeer),
		conns: make(map[net.Conn]struct{}),
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// peerOf returns the connection state for the canonical peer name,
// creating it on first contact.
func (t *TCP) peerOf(key string) *tcpPeer {
	t.mu.RLock()
	p := t.peers[key]
	t.mu.RUnlock()
	if p != nil {
		return p
	}
	t.mu.Lock()
	p = t.peers[key]
	if p == nil {
		p = &tcpPeer{t: t, addr: &tcpAddr{str: key}}
		t.peers[key] = p
	}
	t.mu.Unlock()
	return p
}

func (t *TCP) isClosed() bool {
	t.mu.RLock()
	closed := t.closed
	t.mu.RUnlock()
	return closed
}

// trackConn registers a live connection for Close; it reports false when
// the transport is already closed (the caller must close the conn).
func (t *TCP) trackConn(conn net.Conn) bool {
	t.connsMu.Lock()
	defer t.connsMu.Unlock()
	if t.isClosed() {
		return false
	}
	t.conns[conn] = struct{}{}
	return true
}

func (t *TCP) untrackConn(conn net.Conn) {
	t.connsMu.Lock()
	delete(t.conns, conn)
	t.connsMu.Unlock()
}

// acceptLoop keys each inbound connection by its preface and feeds it to
// the shared read loop.
func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.wg.Add(1)
		go t.serveAccepted(conn)
	}
}

func (t *TCP) serveAccepted(conn net.Conn) {
	defer t.wg.Done()
	_ = conn.SetReadDeadline(time.Now().Add(t.opts.DialTimeout + 3*time.Second))
	peerKey, err := readPreface(conn)
	if err != nil {
		conn.Close()
		return
	}
	_ = conn.SetReadDeadline(time.Time{})
	if !t.trackConn(conn) {
		conn.Close()
		return
	}
	p := t.peerOf(peerKey)
	// Adopt the inbound stream as the outbound one too: a pure responder
	// never dials, its results ride the caller's connection back.
	p.adopt(conn)
	t.readLoop(p, conn)
}

// adopt installs conn as the peer's outbound stream. An older stream, if
// any, is left to drain and die on its own — frames already in flight on
// it still deliver.
func (p *tcpPeer) adopt(conn net.Conn) {
	p.mu.Lock()
	p.adoptLocked(conn)
	p.mu.Unlock()
}

// adoptLocked installs conn and flushes any frames parked while no stream
// was up; p.mu held.
func (p *tcpPeer) adoptLocked(conn net.Conn) {
	p.conn = conn
	p.bw = bufio.NewWriterSize(conn, 64<<10)
	pend := p.pending
	p.pending = nil
	for _, f := range pend {
		if !p.writeFrameLocked(f) {
			return // stream died already; the rest are lost drops
		}
	}
	if len(pend) > 0 {
		p.flushLocked()
	}
}

// dropConnLocked abandons the current outbound stream after a write
// failure; p.mu held. The read loop on that conn will exit on its own.
func (p *tcpPeer) dropConnLocked(conn net.Conn) {
	conn.Close()
	if p.conn == conn {
		p.conn = nil
		p.bw = nil
	}
}

// readLoop frames the stream back into discrete ≤TCPMaxFrame frames and
// delivers them under the no-retain contract (one reused buffer).
func (t *TCP) readLoop(p *tcpPeer, conn net.Conn) {
	defer t.untrackConn(conn)
	br := bufio.NewReaderSize(conn, 64<<10)
	buf := make([]byte, TCPMaxFrame)
	var lenb [2]byte
	for {
		if _, err := io.ReadFull(br, lenb[:]); err != nil {
			break
		}
		n := int(binary.BigEndian.Uint16(lenb[:]))
		if n > TCPMaxFrame {
			// Framing is corrupt; nothing downstream can be trusted.
			t.oversizeDrops.Add(1)
			break
		}
		if _, err := io.ReadFull(br, buf[:n]); err != nil {
			if n > 0 {
				t.recvErrors.Add(1)
			}
			break
		}
		t.observeRecvBatch(1)
		t.mu.RLock()
		recv := t.recv
		t.mu.RUnlock()
		if recv != nil {
			recv(p.addr, buf[:n])
		}
	}
	conn.Close()
	p.mu.Lock()
	if p.conn == conn {
		p.conn = nil
		p.bw = nil
	}
	p.mu.Unlock()
}

// readPreface consumes the dialer's identification from a fresh inbound
// connection and returns its canonical listen address.
func readPreface(conn net.Conn) (string, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		return "", err
	}
	if [6]byte(hdr[:6]) != prefaceMagic {
		return "", errors.New("transport: bad tcp preface")
	}
	n := int(binary.BigEndian.Uint16(hdr[6:8]))
	if n == 0 || n > 256 {
		return "", errors.New("transport: bad tcp preface address length")
	}
	addr := make([]byte, n)
	if _, err := io.ReadFull(conn, addr); err != nil {
		return "", err
	}
	return string(addr), nil
}

func writePreface(conn net.Conn, self string) error {
	buf := make([]byte, 0, 8+len(self))
	buf = append(buf, prefaceMagic[:]...)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(self)))
	buf = append(buf, self...)
	_, err := conn.Write(buf)
	return err
}

// ensureDialLocked starts the background dialer once; p.mu held.
func (p *tcpPeer) ensureDialLocked() {
	if p.dialing || p.t.isClosed() {
		return
	}
	p.dialing = true
	p.t.wg.Add(1)
	go p.dialLoop()
}

// dialLoop re-establishes the outbound stream with exponential backoff,
// giving up only when the transport closes or a connection (dialed here,
// or accepted from the peer dialing us) is in place.
func (p *tcpPeer) dialLoop() {
	t := p.t
	defer t.wg.Done()
	backoff := t.opts.ReconnectMin
	for {
		if t.isClosed() {
			p.mu.Lock()
			p.dialing = false
			p.mu.Unlock()
			return
		}
		p.mu.Lock()
		if p.conn != nil {
			// The peer dialed us in the meantime; its stream serves.
			p.dialing = false
			p.mu.Unlock()
			return
		}
		p.mu.Unlock()
		conn, err := net.DialTimeout("tcp", p.addr.str, t.opts.DialTimeout)
		if err == nil {
			err = writePreface(conn, t.self.str)
		}
		if err == nil {
			if !t.trackConn(conn) {
				conn.Close()
				p.mu.Lock()
				p.dialing = false
				p.mu.Unlock()
				return
			}
			p.mu.Lock()
			p.adoptLocked(conn)
			p.dialing = false
			p.mu.Unlock()
			t.wg.Add(1)
			go func() {
				defer t.wg.Done()
				t.readLoop(p, conn)
			}()
			return
		}
		if conn != nil {
			conn.Close()
		}
		time.Sleep(backoff)
		if backoff < t.opts.ReconnectMax {
			backoff *= 2
		}
	}
}

// writeFrameLocked appends one length-prefixed frame to the peer's
// buffered writer; p.mu held. While no stream is up the frame is parked
// for the dialer (bounded; past the cap it drops, UDP-style).
func (p *tcpPeer) writeFrameLocked(frame []byte) bool {
	if p.conn == nil {
		p.ensureDialLocked()
		if len(p.pending) < maxPendingFrames {
			p.pending = append(p.pending, append([]byte(nil), frame...))
			return true
		}
		p.t.sendErrors.Add(1)
		return false
	}
	var lenb [2]byte
	binary.BigEndian.PutUint16(lenb[:], uint16(len(frame)))
	if _, err := p.bw.Write(lenb[:]); err != nil {
		p.t.sendErrors.Add(1)
		p.dropConnLocked(p.conn)
		return false
	}
	if _, err := p.bw.Write(frame); err != nil {
		p.t.sendErrors.Add(1)
		p.dropConnLocked(p.conn)
		return false
	}
	return true
}

// flushLocked pushes the buffered writer to the socket under the write
// deadline; p.mu held.
func (p *tcpPeer) flushLocked() {
	if p.conn == nil || p.bw == nil {
		return
	}
	conn := p.conn
	_ = conn.SetWriteDeadline(time.Now().Add(p.t.opts.WriteTimeout))
	if err := p.bw.Flush(); err != nil {
		p.t.sendErrors.Add(1)
		p.dropConnLocked(conn)
		return
	}
	_ = conn.SetWriteDeadline(time.Time{})
}

// Send implements Transport: one frame, one flush. Drops silently while
// the stream is down (the background dialer is already working on it);
// the protocol's retransmissions provide recovery, as over UDP.
func (t *TCP) Send(dst Addr, frame []byte) error {
	if t.isClosed() {
		return ErrClosed
	}
	if len(frame) > TCPMaxFrame {
		return ErrFrameTooLarge
	}
	p := t.peerOf(dst.String())
	p.mu.Lock()
	ok := p.writeFrameLocked(frame)
	if ok {
		p.flushLocked()
	}
	p.mu.Unlock()
	if ok {
		t.observeSendBatch(1)
	}
	return nil
}

// SendBatch implements BatchSender: every frame is written under its
// peer's mutex, and each touched peer is flushed exactly once at the end —
// a burst to one peer costs one syscall, which is the stream analogue of
// sendmmsg. Per-destination submission order is preserved by the per-peer
// FIFO writer.
func (t *TCP) SendBatch(frames []Frame) (int, error) {
	if t.isClosed() {
		return 0, ErrClosed
	}
	var touched []*tcpPeer
	sent := 0
	for i := range frames {
		if len(frames[i].Data) > TCPMaxFrame {
			for _, p := range touched {
				p.mu.Lock()
				p.flushLocked()
				p.mu.Unlock()
			}
			return sent, ErrFrameTooLarge
		}
		p := t.peerOf(frames[i].Dst.String())
		p.mu.Lock()
		ok := p.writeFrameLocked(frames[i].Data)
		p.mu.Unlock()
		if ok {
			sent++
			seen := false
			for _, q := range touched {
				if q == p {
					seen = true
					break
				}
			}
			if !seen {
				touched = append(touched, p)
			}
		}
	}
	for _, p := range touched {
		p.mu.Lock()
		p.flushLocked()
		p.mu.Unlock()
	}
	if sent > 0 {
		t.observeSendBatch(sent)
	}
	return sent, nil
}

// BatchEnabled implements BatchSender: flush batching is always live on a
// stream transport.
func (t *TCP) BatchEnabled() bool { return true }

// TransportStats implements StatsReporter.
func (t *TCP) TransportStats() (Stats, bool) { return t.snapshot(), true }

// SetReceiver implements Transport.
func (t *TCP) SetReceiver(r Receiver) {
	t.mu.Lock()
	t.recv = r
	t.mu.Unlock()
}

// LocalAddr implements Transport.
func (t *TCP) LocalAddr() Addr { return t.self }

// MaxFrame implements Transport.
func (t *TCP) MaxFrame() int { return TCPMaxFrame }

// Close implements Transport: stop accepting, tear down every stream, and
// wait for the accept, read, and dial loops to exit.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.mu.Unlock()
	err := t.ln.Close()
	t.connsMu.Lock()
	for conn := range t.conns {
		conn.Close()
	}
	t.connsMu.Unlock()
	t.wg.Wait()
	return err
}
