package transport_test

import (
	"testing"

	"fireflyrpc/internal/transport"
	"fireflyrpc/internal/transport/transporttest"
)

// TestConformance runs the shared contract suite against every bundled
// transport: the point of the one-transport-contract invariant is that
// these all behave identically from the protocol layer's seat.
func TestConformance(t *testing.T) {
	transporttest.Run(t, "Exchange", func(t *testing.T) (transport.Transport, transport.Transport) {
		ex := transport.NewExchange()
		a := ex.Port("conf-a")
		b := ex.Port("conf-b")
		t.Cleanup(func() { a.Close(); b.Close() })
		return a, b
	})

	transporttest.Run(t, "UDP", func(t *testing.T) (transport.Transport, transport.Transport) {
		a, err := transport.ListenUDP("127.0.0.1:0")
		if err != nil {
			t.Fatalf("ListenUDP: %v", err)
		}
		t.Cleanup(func() { a.Close() })
		b, err := transport.ListenUDP("127.0.0.1:0")
		if err != nil {
			t.Fatalf("ListenUDP: %v", err)
		}
		t.Cleanup(func() { b.Close() })
		return a, b
	})

	transporttest.Run(t, "UDPBatch", func(t *testing.T) (transport.Transport, transport.Transport) {
		a, err := transport.ListenUDPBatch("127.0.0.1:0", transport.UDPOptions{})
		if err != nil {
			t.Fatalf("ListenUDPBatch: %v", err)
		}
		t.Cleanup(func() { a.Close() })
		b, err := transport.ListenUDPBatch("127.0.0.1:0", transport.UDPOptions{})
		if err != nil {
			t.Fatalf("ListenUDPBatch: %v", err)
		}
		t.Cleanup(func() { b.Close() })
		return a, b
	})

	transporttest.Run(t, "TCP", func(t *testing.T) (transport.Transport, transport.Transport) {
		a, err := transport.ListenTCP("127.0.0.1:0", transport.TCPOptions{})
		if err != nil {
			t.Fatalf("ListenTCP: %v", err)
		}
		t.Cleanup(func() { a.Close() })
		b, err := transport.ListenTCP("127.0.0.1:0", transport.TCPOptions{})
		if err != nil {
			t.Fatalf("ListenTCP: %v", err)
		}
		t.Cleanup(func() { b.Close() })
		return a, b
	})
}
