// Package transport defines the datagram abstraction the real RPC stack
// runs over, with three implementations mirroring the Firefly's bind-time
// transport choice: real UDP sockets (inter-machine), an in-process
// shared-memory exchange (the paper's "local RPC"), and adapters for tests.
//
// A transport carries RPC frames: a 32-byte wire.RPCHeader followed by the
// payload. Ethernet/IP/UDP framing is the kernel's business here, exactly
// as it would have been for a user-space RPC runtime.
package transport

import "errors"

// Addr is an opaque, comparable endpoint address rendered by String.
type Addr interface {
	String() string
	Network() string
}

// Receiver consumes arriving frames. Implementations are called from the
// transport's receive goroutine(s); they must not block for long.
//
// The frame slice is only valid for the duration of the call: every bundled
// transport delivers into a reused receive buffer (the batched UDP engine
// delivers many frames from one recvmmsg vector, the per-frame path from a
// single recycled buffer), so a receiver that needs the bytes afterwards
// must copy them. Retaining the slice corrupts a later frame.
type Receiver func(src Addr, frame []byte)

// Frame is one outgoing frame in a batch: a destination and the bytes to
// send. The Data slice must stay valid until the SendBatch call returns.
type Frame struct {
	Dst  Addr
	Data []byte
}

// BatchSender is the optional batched datapath a Transport may offer. A
// transport that implements it can transmit many frames in one operation —
// the real UDP engine turns a batch into a handful of sendmmsg/GSO
// syscalls — so upper layers that queue frames (the protocol's send queue)
// drain whole bursts through one call instead of one syscall per packet.
//
// SendBatch transmits the frames in order. Frames to the same destination
// are never reordered relative to each other (coalescing and segmentation
// preserve submission order); frames may still be lost or reordered by the
// network itself, as with Send. It returns the number of frames accepted
// and the first local, permanent error.
//
// BatchEnabled reports whether the batched path is actually live: a
// transport may implement the interface but degrade to per-frame semantics
// (the non-Linux fallback, or a wrapper whose inner transport is
// per-frame). Callers should consult it before building batching state.
type BatchSender interface {
	SendBatch(frames []Frame) (int, error)
	BatchEnabled() bool
}

// SupportsBatch reports whether t offers a live batched datapath.
func SupportsBatch(t Transport) bool {
	bs, ok := t.(BatchSender)
	return ok && bs.BatchEnabled()
}

// Stats counts transport-level events: what the socket layer dropped or
// failed before the protocol ever saw a frame, and how well the batched
// datapath is amortizing syscalls. All counters are lock-free atomics on
// the live transport; Stats is the snapshot type.
type Stats struct {
	// OversizeDrops counts received datagrams (or GRO segments) longer than
	// MaxFrame, discarded before delivery.
	OversizeDrops int64 `json:"oversize_drops"`
	// RecvErrors counts transient receive-syscall failures (not shutdown).
	RecvErrors int64 `json:"recv_errors"`
	// SendErrors counts transient send failures.
	SendErrors int64 `json:"send_errors"`
	// RecvBatches counts receive operations (one recvmmsg, or one per-frame
	// read); RecvFrames counts frames delivered. RecvFrames/RecvBatches is
	// the observed receive batch size — frames per syscall.
	RecvBatches int64 `json:"recv_batches"`
	RecvFrames  int64 `json:"recv_frames"`
	// MaxRecvBatch is the largest single receive batch observed.
	MaxRecvBatch int64 `json:"max_recv_batch"`
	// SendBatches counts send operations (one sendmmsg, or one per-frame
	// write); SendFrames counts frames sent through them.
	SendBatches int64 `json:"send_batches"`
	SendFrames  int64 `json:"send_frames"`
	// MaxSendBatch is the largest single send batch observed.
	MaxSendBatch int64 `json:"max_send_batch"`
	// GSOSends counts kernel-segmented super-packets sent (each carrying
	// ≥2 frames); GROSplits counts frames recovered by splitting
	// kernel-coalesced receive buffers.
	GSOSends  int64 `json:"gso_sends"`
	GROSplits int64 `json:"gro_splits"`
}

// StatsReporter is implemented by transports that keep Stats. Wrappers
// (faultnet) forward to the wrapped transport.
type StatsReporter interface {
	TransportStats() (Stats, bool)
}

// Transport is an unreliable datagram channel. Frames may be lost,
// duplicated, or reordered; the protocol layer copes.
type Transport interface {
	// Send transmits one frame to dst. It may drop silently (as UDP does);
	// it returns an error only for local, permanent failures.
	Send(dst Addr, frame []byte) error
	// SetReceiver installs the arrival callback. Must be called before any
	// frame arrives; the frame slice is only valid during the callback.
	SetReceiver(r Receiver)
	// LocalAddr names this endpoint.
	LocalAddr() Addr
	// MaxFrame is the largest frame Send accepts.
	MaxFrame() int
	// Close stops reception and releases resources.
	Close() error
}

// ErrClosed is returned by Send after Close.
var ErrClosed = errors.New("transport: closed")

// ErrFrameTooLarge is returned when a frame exceeds MaxFrame.
var ErrFrameTooLarge = errors.New("transport: frame exceeds maximum size")
