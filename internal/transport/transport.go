// Package transport defines the datagram abstraction the real RPC stack
// runs over, with three implementations mirroring the Firefly's bind-time
// transport choice: real UDP sockets (inter-machine), an in-process
// shared-memory exchange (the paper's "local RPC"), and adapters for tests.
//
// A transport carries RPC frames: a 32-byte wire.RPCHeader followed by the
// payload. Ethernet/IP/UDP framing is the kernel's business here, exactly
// as it would have been for a user-space RPC runtime.
package transport

import "errors"

// Addr is an opaque, comparable endpoint address rendered by String.
type Addr interface {
	String() string
	Network() string
}

// Receiver consumes arriving frames. Implementations are called from the
// transport's receive goroutine; they must not block for long.
type Receiver func(src Addr, frame []byte)

// Transport is an unreliable datagram channel. Frames may be lost,
// duplicated, or reordered; the protocol layer copes.
type Transport interface {
	// Send transmits one frame to dst. It may drop silently (as UDP does);
	// it returns an error only for local, permanent failures.
	Send(dst Addr, frame []byte) error
	// SetReceiver installs the arrival callback. Must be called before any
	// frame arrives; the frame slice is only valid during the callback.
	SetReceiver(r Receiver)
	// LocalAddr names this endpoint.
	LocalAddr() Addr
	// MaxFrame is the largest frame Send accepts.
	MaxFrame() int
	// Close stops reception and releases resources.
	Close() error
}

// ErrClosed is returned by Send after Close.
var ErrClosed = errors.New("transport: closed")

// ErrFrameTooLarge is returned when a frame exceeds MaxFrame.
var ErrFrameTooLarge = errors.New("transport: frame exceeds maximum size")
