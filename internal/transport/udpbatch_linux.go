//go:build linux && (amd64 || arm64)

package transport

import (
	"context"
	"encoding/binary"
	"errors"
	"net"
	"net/netip"
	"runtime"
	"sync"
	"syscall"
	"unsafe"
)

// Kernel constants the stdlib syscall package doesn't export. SOL_UDP-level
// segmentation offload (UDP_SEGMENT/UDP_GRO) landed in Linux 4.18/5.0; both
// are probed at socket setup and the engine degrades per-feature.
const (
	solUDP      = 17  // IPPROTO_UDP as a setsockopt level
	udpSegment  = 103 // UDP_SEGMENT: kernel splits one buffer into packets
	udpGRO      = 104 // UDP_GRO: kernel coalesces packets into one buffer
	soReusePort = 0xf // SO_REUSEPORT

	// maxGSOSegs is the kernel's UDP_MAX_SEGMENTS; one GSO super-packet may
	// also not exceed the UDP payload limit, so 1472-byte frames cap at 44.
	maxGSOSegs    = 64
	maxUDPPayload = 65507
)

// mmsghdr mirrors struct mmsghdr: a Msghdr plus the kernel-written byte
// count, padded to 8-byte alignment (64 bytes total on these arches).
type mmsghdr struct {
	hdr syscall.Msghdr
	len uint32
	_   [4]byte
}

// batchUDP is the Linux batched UDP engine. Socket 0 carries all sends
// (single frames via the netpoller, batches via sendmmsg with per-message
// GSO); receive is sharded across SO_REUSEPORT sockets, each draining a
// recvmmsg vector in its own loop and splitting GRO-coalesced buffers back
// into wire-sized frames before delivery.
type batchUDP struct {
	opts  UDPOptions
	conns []*net.UDPConn
	raws  []syscall.RawConn
	self  *udpAddr
	v6    bool // socket family is AF_INET6
	gso   bool
	gro   bool

	mu     sync.RWMutex
	recv   Receiver
	closed bool
	wg     sync.WaitGroup

	// Send-side address interning for foreign Addr implementations; each
	// receive shard keeps its own unshared map instead.
	peersMu sync.Mutex
	peers   map[netip.AddrPort]*udpAddr

	// sendMu serializes SendBatch so the pooled vector below is reused
	// without allocation; batches come from one flusher goroutine anyway.
	// sendFn is the persistent RawConn.Write callback: it reads sendPos and
	// writes sendN/sendErrno (all guarded by sendMu) so no closure or capture
	// is heap-allocated per syscall.
	sendMu    sync.Mutex
	sv        sendVec
	sendFn    func(fd uintptr) bool
	sendPos   int
	sendN     int
	sendErrno syscall.Errno

	counters
}

func listenUDPBatch(addr string, opts UDPOptions) (Transport, error) {
	lc := net.ListenConfig{Control: func(network, address string, c syscall.RawConn) error {
		var serr error
		cerr := c.Control(func(fd uintptr) {
			serr = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, soReusePort, 1)
		})
		if cerr != nil {
			return cerr
		}
		return serr
	}}
	first, err := lc.ListenPacket(context.Background(), "udp", addr)
	if err != nil {
		return nil, err
	}
	conn0 := first.(*net.UDPConn)
	la := conn0.LocalAddr().(*net.UDPAddr)

	b := &batchUDP{
		opts:  opts,
		conns: []*net.UDPConn{conn0},
		self:  newUDPAddr(la.AddrPort()),
		peers: make(map[netip.AddrPort]*udpAddr),
	}
	ap := la.AddrPort().Addr()
	b.v6 = !ap.Is4() && !ap.Is4In6()
	b.sendFn = func(fd uintptr) bool {
		sv := &b.sv
		r, _, e := syscall.Syscall6(sysSENDMMSG, fd,
			uintptr(unsafe.Pointer(&sv.hdrs[b.sendPos])), uintptr(len(sv.hdrs)-b.sendPos),
			syscall.MSG_DONTWAIT, 0, 0)
		if e == syscall.EAGAIN {
			return false
		}
		b.sendN, b.sendErrno = int(r), e
		return true
	}

	// Remaining shards bind the exact resolved address. If the kernel
	// refuses (no REUSEPORT), run with fewer shards rather than failing.
	for i := 1; i < opts.Shards; i++ {
		c, err := lc.ListenPacket(context.Background(), "udp", la.String())
		if err != nil {
			break
		}
		b.conns = append(b.conns, c.(*net.UDPConn))
	}

	for _, c := range b.conns {
		raw, err := c.SyscallConn()
		if err != nil {
			b.closeConns()
			return nil, err
		}
		b.raws = append(b.raws, raw)
	}

	// Probe GSO on the send socket: setting UDP_SEGMENT to 0 (disabled) is
	// a no-op on supporting kernels and ENOPROTOOPT otherwise.
	if !opts.DisableGSO {
		_ = b.raws[0].Control(func(fd uintptr) {
			b.gso = syscall.SetsockoptInt(int(fd), solUDP, udpSegment, 0) == nil
		})
	}
	// Enable GRO on every receive socket; all must accept for b.gro.
	if !opts.DisableGRO {
		b.gro = true
		for _, raw := range b.raws {
			ok := false
			_ = raw.Control(func(fd uintptr) {
				ok = syscall.SetsockoptInt(int(fd), solUDP, udpGRO, 1) == nil
			})
			if !ok {
				b.gro = false
				break
			}
		}
	}

	b.wg.Add(len(b.conns))
	for i := range b.conns {
		go b.readLoop(i)
	}
	return b, nil
}

func (b *batchUDP) closeConns() {
	for _, c := range b.conns {
		_ = c.Close()
	}
}

func (b *batchUDP) isClosed() bool {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.closed
}

// BatchEnabled implements BatchSender: the mmsg engine is always live on
// Linux (GSO/GRO degrade independently inside it).
func (b *batchUDP) BatchEnabled() bool { return true }

// TransportStats implements StatsReporter.
func (b *batchUDP) TransportStats() (Stats, bool) { return b.snapshot(), true }

// SetReceiver implements Transport.
func (b *batchUDP) SetReceiver(r Receiver) {
	b.mu.Lock()
	b.recv = r
	b.mu.Unlock()
}

// LocalAddr implements Transport.
func (b *batchUDP) LocalAddr() Addr { return b.self }

// MaxFrame implements Transport.
func (b *batchUDP) MaxFrame() int { return UDPMaxFrame }

// Close implements Transport.
func (b *batchUDP) Close() error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil
	}
	b.closed = true
	b.mu.Unlock()
	var first error
	for _, c := range b.conns {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	b.wg.Wait()
	return first
}

// peer interns ap for the send path (shard read loops keep their own maps).
func (b *batchUDP) peer(ap netip.AddrPort) *udpAddr {
	if ap.Addr().Is4In6() {
		ap = netip.AddrPortFrom(ap.Addr().Unmap(), ap.Port())
	}
	b.peersMu.Lock()
	a := b.peers[ap]
	if a == nil {
		a = &udpAddr{ap: ap, str: ap.String()}
		b.peers[ap] = a
	}
	b.peersMu.Unlock()
	return a
}

func (b *batchUDP) destAddrPort(dst Addr) (netip.AddrPort, error) {
	switch a := dst.(type) {
	case *udpAddr:
		return a.ap, nil
	case *net.UDPAddr:
		return a.AddrPort(), nil
	default:
		if ap, err := netip.ParseAddrPort(dst.String()); err == nil {
			return b.peer(ap).ap, nil
		}
		ua, err := net.ResolveUDPAddr("udp", dst.String())
		if err != nil {
			return netip.AddrPort{}, err
		}
		return b.peer(ua.AddrPort()).ap, nil
	}
}

// Send implements Transport: the single-frame path rides the netpoller
// like the per-frame transport, so mixed workloads need no batching at all.
func (b *batchUDP) Send(dst Addr, frame []byte) error {
	if b.isClosed() {
		return ErrClosed
	}
	if len(frame) > UDPMaxFrame {
		return ErrFrameTooLarge
	}
	ap, err := b.destAddrPort(dst)
	if err != nil {
		return err
	}
	if _, err := b.conns[0].WriteToUDPAddrPort(frame, ap); err != nil {
		b.sendErrors.Add(1)
		return err
	}
	b.observeSendBatch(1)
	return nil
}

// ---------------------------------------------------------------------------
// Batched send: sendmmsg with per-message UDP_SEGMENT (GSO)

// msgDesc is one wire message to build: frames[start:end] to one
// destination. nframes > 1 means a GSO super-packet of seg-byte segments
// (the last frame may be shorter).
type msgDesc struct {
	ap         netip.AddrPort
	start, end int
	seg        int
}

// sendVec is the pooled scratch for one SendBatch: every slice is grown to
// need, pointers are captured only after all growth is done.
type sendVec struct {
	msgs  []msgDesc
	hdrs  []mmsghdr
	iovs  []syscall.Iovec
	names []syscall.RawSockaddrInet6
	ctrls [][]byte
}

const gsoCtrlLen = 24 // CmsgSpace(2) on 64-bit: 16-byte header + 2 + pad

// SendBatch implements BatchSender. Frames are grouped into maximal runs of
// consecutive same-destination, same-size frames (one shorter trailing
// frame allowed — the GSO contract), each run becoming one kernel message;
// the whole batch then goes out in as few sendmmsg calls as possible.
// Submission order is preserved exactly, so per-peer ordering holds.
func (b *batchUDP) SendBatch(frames []Frame) (int, error) {
	if len(frames) == 0 {
		return 0, nil
	}
	if b.isClosed() {
		return 0, ErrClosed
	}
	b.sendMu.Lock()
	defer b.sendMu.Unlock()

	// Phase 1: resolve destinations and cut the batch into messages.
	// Stop at the first locally-invalid frame; everything before it sends.
	accepted := len(frames)
	var ferr error
	sv := &b.sv
	sv.msgs = sv.msgs[:0]
	for i := 0; i < accepted; {
		if len(frames[i].Data) > UDPMaxFrame {
			accepted, ferr = i, ErrFrameTooLarge
			break
		}
		ap, err := b.destAddrPort(frames[i].Dst)
		if err != nil {
			accepted, ferr = i, err
			break
		}
		seg := len(frames[i].Data)
		j := i + 1
		if b.gso && seg > 0 {
			lim := maxUDPPayload / seg
			if lim > maxGSOSegs {
				lim = maxGSOSegs
			}
			for j < accepted && j-i < lim {
				f := &frames[j]
				if len(f.Data) > seg || !sameDest(b, f.Dst, ap) {
					break
				}
				j++
				if len(frames[j-1].Data) < seg {
					break // shorter frame must end the super-packet
				}
			}
		}
		sv.msgs = append(sv.msgs, msgDesc{ap: ap, start: i, end: j, seg: seg})
		i = j
	}

	// Phase 2: size the flat arrays, then fill — no growth after this.
	niov := 0
	for _, m := range sv.msgs {
		niov += m.end - m.start
	}
	if cap(sv.hdrs) < len(sv.msgs) {
		sv.hdrs = make([]mmsghdr, len(sv.msgs))
		sv.names = make([]syscall.RawSockaddrInet6, len(sv.msgs))
		sv.ctrls = make([][]byte, len(sv.msgs))
	}
	sv.hdrs = sv.hdrs[:len(sv.msgs)]
	sv.names = sv.names[:len(sv.msgs)]
	sv.ctrls = sv.ctrls[:len(sv.msgs)]
	if cap(sv.iovs) < niov {
		sv.iovs = make([]syscall.Iovec, niov)
	}
	sv.iovs = sv.iovs[:niov]

	iov := 0
	for mi := range sv.msgs {
		m := &sv.msgs[mi]
		hdr := &sv.hdrs[mi]
		*hdr = mmsghdr{}
		namelen := fillName(&sv.names[mi], m.ap, b.v6)
		hdr.hdr.Name = (*byte)(unsafe.Pointer(&sv.names[mi]))
		hdr.hdr.Namelen = namelen
		hdr.hdr.Iov = &sv.iovs[iov]
		hdr.hdr.Iovlen = uint64(m.end - m.start)
		for fi := m.start; fi < m.end; fi++ {
			data := frames[fi].Data
			if len(data) > 0 {
				sv.iovs[iov].Base = &data[0]
			} else {
				sv.iovs[iov].Base = nil
			}
			sv.iovs[iov].SetLen(len(data))
			iov++
		}
		if m.end-m.start > 1 {
			// GSO super-packet: tell the kernel the segment size.
			if sv.ctrls[mi] == nil {
				sv.ctrls[mi] = make([]byte, gsoCtrlLen)
			}
			ctrl := sv.ctrls[mi]
			ch := (*syscall.Cmsghdr)(unsafe.Pointer(&ctrl[0]))
			ch.Level = solUDP
			ch.Type = udpSegment
			ch.SetLen(syscall.CmsgLen(2))
			*(*uint16)(unsafe.Pointer(&ctrl[syscall.CmsgLen(0)])) = uint16(m.seg)
			hdr.hdr.Control = &ctrl[0]
			hdr.hdr.SetControllen(gsoCtrlLen)
		}
	}

	// Phase 3: drain the vector through sendmmsg, parking on the netpoller
	// when the socket buffer is full. Per-message transient errors (ICMP
	// reflections and the like) drop that message — UDP semantics — and
	// keep the batch moving.
	sent := 0
	for sent < len(sv.hdrs) {
		b.sendPos, b.sendN, b.sendErrno = sent, 0, 0
		werr := b.raws[0].Write(b.sendFn)
		n, serr := b.sendN, b.sendErrno
		runtime.KeepAlive(frames)
		if werr != nil {
			return framesIn(sv.msgs[:sent]), werr
		}
		if serr != 0 {
			b.sendErrors.Add(1)
			sent++ // skip the refusing message, count its frames as dropped
			continue
		}
		if n <= 0 {
			b.sendErrors.Add(1)
			sent++
			continue
		}
		sentFrames := framesIn(sv.msgs[sent : sent+n])
		b.observeSendBatch(sentFrames)
		for _, m := range sv.msgs[sent : sent+n] {
			if m.end-m.start > 1 {
				b.gsoSends.Add(1)
			}
		}
		sent += n
	}
	return accepted, ferr
}

func framesIn(msgs []msgDesc) int {
	n := 0
	for _, m := range msgs {
		n += m.end - m.start
	}
	return n
}

// sameDest reports whether dst resolves to ap without erroring; used only
// to extend GSO runs, so a resolution failure just ends the run.
func sameDest(b *batchUDP, dst Addr, ap netip.AddrPort) bool {
	got, err := b.destAddrPort(dst)
	return err == nil && got == ap
}

// ---------------------------------------------------------------------------
// Batched receive: recvmmsg vectors, GRO splitting, spin-then-park

// recvVec owns one shard's receive state: fixed buffers wired into mmsghdrs
// once, with the kernel-rewritten lengths reset before every call.
type recvVec struct {
	hdrs  []mmsghdr
	iovs  []syscall.Iovec
	bufs  [][]byte
	names []syscall.RawSockaddrInet6
	ctrls [][]byte
}

func newRecvVec(n, bufSize int) *recvVec {
	v := &recvVec{
		hdrs:  make([]mmsghdr, n),
		iovs:  make([]syscall.Iovec, n),
		bufs:  make([][]byte, n),
		names: make([]syscall.RawSockaddrInet6, n),
		ctrls: make([][]byte, n),
	}
	for i := range v.hdrs {
		v.bufs[i] = make([]byte, bufSize)
		v.ctrls[i] = make([]byte, 64)
		v.iovs[i].Base = &v.bufs[i][0]
		v.iovs[i].SetLen(bufSize)
		h := &v.hdrs[i].hdr
		h.Name = (*byte)(unsafe.Pointer(&v.names[i]))
		h.Iov = &v.iovs[i]
		h.Iovlen = 1
		h.Control = &v.ctrls[i][0]
	}
	return v
}

// reset restores the fields the kernel rewrites on every recvmmsg.
func (v *recvVec) reset() {
	for i := range v.hdrs {
		h := &v.hdrs[i].hdr
		h.Namelen = uint32(unsafe.Sizeof(v.names[i]))
		h.SetControllen(len(v.ctrls[i]))
		h.Flags = 0
		v.hdrs[i].len = 0
	}
}

func (b *batchUDP) readLoop(shard int) {
	defer b.wg.Done()
	bufSize := UDPMaxFrame + 1
	if b.gro {
		// GRO hands us coalesced buffers up to the UDP payload limit.
		bufSize = 65535
	}
	vec := newRecvVec(b.opts.RecvBatch, bufSize)
	peers := make(map[netip.AddrPort]*udpAddr) // shard-local, no lock
	spinBudget := 0
	if b.opts.RecvMode == RecvModeSpin {
		spinBudget = b.opts.SpinBudget
	}
	raw := b.raws[shard]
	// The callback and the result slots it writes live outside the loop so
	// the closure (and its captures) heap-allocate once per shard, not once
	// per wakeup — the receive path must not charge allocations per batch.
	var n int
	var serr syscall.Errno
	readFn := func(fd uintptr) bool {
		for spins := 0; ; spins++ {
			vec.reset()
			r, _, e := syscall.Syscall6(sysRECVMMSG, fd,
				uintptr(unsafe.Pointer(&vec.hdrs[0])), uintptr(len(vec.hdrs)),
				syscall.MSG_DONTWAIT, 0, 0)
			if e == 0 {
				n, serr = int(r), 0
				return true
			}
			if e != syscall.EAGAIN {
				n, serr = 0, e
				return true
			}
			// While spinning the fd can't be torn down under us (Close
			// blocks on this callback), so poll the closed flag or the
			// spin would never see an error.
			if spins >= spinBudget || b.isClosed() {
				return false
			}
			if spins%64 == 63 {
				runtime.Gosched()
			}
		}
	}
	for {
		n, serr = 0, 0
		rerr := raw.Read(readFn)
		if rerr != nil {
			if errors.Is(rerr, net.ErrClosed) || b.isClosed() {
				return
			}
			b.recvErrors.Add(1)
			continue
		}
		if serr != 0 {
			if serr == syscall.EBADF || b.isClosed() {
				return
			}
			b.recvErrors.Add(1)
			continue
		}
		b.deliver(vec, peers, n)
	}
}

// deliver fans one recvmmsg result out to the receiver, splitting
// GRO-coalesced buffers back into individual ≤ MaxFrame frames so nothing
// above the transport (fault injection included) ever sees a super-packet.
func (b *batchUDP) deliver(vec *recvVec, peers map[netip.AddrPort]*udpAddr, n int) {
	b.mu.RLock()
	recv := b.recv
	b.mu.RUnlock()
	total := 0
	for i := 0; i < n; i++ {
		m := &vec.hdrs[i]
		src, ok := parseName(&vec.names[i], m.hdr.Namelen)
		if !ok {
			b.recvErrors.Add(1)
			continue
		}
		if m.hdr.Flags&syscall.MSG_TRUNC != 0 {
			b.oversizeDrops.Add(1)
			continue
		}
		buf := vec.bufs[i][:m.len]
		seg := len(buf)
		if b.gro && m.hdr.Controllen > 0 {
			ctl := int(m.hdr.Controllen)
			if ctl > len(vec.ctrls[i]) {
				ctl = len(vec.ctrls[i])
			}
			if s := groSegSize(vec.ctrls[i][:ctl]); s > 0 {
				seg = s
			}
		}
		addr := peers[src]
		if addr == nil {
			addr = &udpAddr{ap: src, str: src.String()}
			peers[src] = addr
		}
		if seg > 0 && len(buf) > seg {
			b.groSplits.Add(int64((len(buf) + seg - 1) / seg))
		}
		if len(buf) == 0 {
			if recv != nil {
				recv(addr, buf)
			}
			total++
			continue
		}
		for off := 0; off < len(buf); off += seg {
			end := off + seg
			if end > len(buf) {
				end = len(buf)
			}
			frame := buf[off:end]
			if len(frame) > UDPMaxFrame {
				b.oversizeDrops.Add(1)
				continue
			}
			if recv != nil {
				recv(addr, frame)
			}
			total++
		}
	}
	if total > 0 {
		b.observeRecvBatch(total)
	}
}

// groSegSize extracts the UDP_GRO segment size from a control buffer, or 0.
func groSegSize(ctrl []byte) int {
	msgs, err := syscall.ParseSocketControlMessage(ctrl)
	if err != nil {
		return 0
	}
	for _, m := range msgs {
		if m.Header.Level == solUDP && m.Header.Type == udpGRO && len(m.Data) >= 4 {
			return int(int32(binary.NativeEndian.Uint32(m.Data)))
		}
	}
	return 0
}

// ---------------------------------------------------------------------------
// Raw sockaddr conversion (ports are big-endian on the wire regardless of
// host order, so they go through explicit byte views).

func parseName(sa *syscall.RawSockaddrInet6, namelen uint32) (netip.AddrPort, bool) {
	switch sa.Family {
	case syscall.AF_INET:
		if namelen < syscall.SizeofSockaddrInet4 {
			return netip.AddrPort{}, false
		}
		sa4 := (*syscall.RawSockaddrInet4)(unsafe.Pointer(sa))
		return netip.AddrPortFrom(netip.AddrFrom4(sa4.Addr), sockPort(&sa4.Port)), true
	case syscall.AF_INET6:
		if namelen < syscall.SizeofSockaddrInet6 {
			return netip.AddrPort{}, false
		}
		return netip.AddrPortFrom(netip.AddrFrom16(sa.Addr).Unmap(), sockPort(&sa.Port)), true
	}
	return netip.AddrPort{}, false
}

func fillName(sa *syscall.RawSockaddrInet6, ap netip.AddrPort, v6 bool) uint32 {
	*sa = syscall.RawSockaddrInet6{}
	a := ap.Addr()
	if !v6 {
		sa4 := (*syscall.RawSockaddrInet4)(unsafe.Pointer(sa))
		sa4.Family = syscall.AF_INET
		if a.Is4In6() {
			a = a.Unmap()
		}
		sa4.Addr = a.As4()
		setSockPort(&sa4.Port, ap.Port())
		return syscall.SizeofSockaddrInet4
	}
	sa.Family = syscall.AF_INET6
	sa.Addr = a.As16() // As16 yields the v4-mapped form for IPv4 addrs
	setSockPort(&sa.Port, ap.Port())
	return syscall.SizeofSockaddrInet6
}

func sockPort(p *uint16) uint16 {
	b := (*[2]byte)(unsafe.Pointer(p))
	return uint16(b[0])<<8 | uint16(b[1])
}

func setSockPort(p *uint16, port uint16) {
	b := (*[2]byte)(unsafe.Pointer(p))
	b[0] = byte(port >> 8)
	b[1] = byte(port)
}
