//go:build linux && arm64

package transport

// Raw syscall numbers for the message-vector calls on linux/arm64.
const (
	sysRECVMMSG = 243
	sysSENDMMSG = 269
)
