package stats

import (
	"testing"
	"testing/quick"
	"time"
)

func TestMeanAndPercentiles(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(time.Duration(i) * time.Microsecond)
	}
	if s.N() != 100 {
		t.Fatalf("N = %d", s.N())
	}
	if s.Mean() != 50.5 {
		t.Fatalf("mean = %v, want 50.5", s.Mean())
	}
	if s.Percentile(50) != 50 {
		t.Fatalf("p50 = %v, want 50", s.Percentile(50))
	}
	if s.Min() != 1 || s.Max() != 100 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
	if s.Percentile(99) != 99 {
		t.Fatalf("p99 = %v, want 99", s.Percentile(99))
	}
}

func TestEmptySample(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.Percentile(50) != 0 || s.StdDev() != 0 {
		t.Fatal("empty sample must report zeros")
	}
}

func TestStdDev(t *testing.T) {
	var s Sample
	for _, v := range []int{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(time.Duration(v) * time.Microsecond)
	}
	sd := s.StdDev()
	if sd < 2.13 || sd > 2.15 { // sample stddev = 2.138
		t.Fatalf("stddev = %v, want ~2.14", sd)
	}
}

func TestAddAfterPercentileKeepsOrder(t *testing.T) {
	var s Sample
	s.Add(5 * time.Microsecond)
	_ = s.Percentile(50)
	s.Add(1 * time.Microsecond)
	if s.Min() != 1 {
		t.Fatal("sample not re-sorted after Add")
	}
}

// Property: percentiles are monotone in p and bounded by min/max.
func TestPercentileMonotoneQuick(t *testing.T) {
	f := func(raw []uint16, a, b uint8) bool {
		if len(raw) == 0 {
			return true
		}
		var s Sample
		for _, v := range raw {
			s.Add(time.Duration(v) * time.Microsecond)
		}
		pa, pb := float64(a%101), float64(b%101)
		if pa > pb {
			pa, pb = pb, pa
		}
		va, vb := s.Percentile(pa), s.Percentile(pb)
		return va <= vb && va >= s.Min() && vb <= s.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestThroughputAndRate(t *testing.T) {
	if got := Throughput(1250000, time.Second); got != 10 {
		t.Fatalf("Throughput = %v, want 10 Mb/s", got)
	}
	if got := Rate(500, 2*time.Second); got != 250 {
		t.Fatalf("Rate = %v, want 250", got)
	}
	if Throughput(1, 0) != 0 || Rate(1, 0) != 0 {
		t.Fatal("zero elapsed must yield 0")
	}
}

func TestString(t *testing.T) {
	var s Sample
	s.Add(10 * time.Microsecond)
	if s.String() == "" {
		t.Fatal("empty string")
	}
}
