package stats

import (
	"sync"
	"testing"
	"time"
)

func TestHistBucketBoundaries(t *testing.T) {
	cases := []struct {
		ns     int64
		bucket int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1023, 10}, {1024, 11}, {1 << 40, 41},
	}
	for _, c := range cases {
		if got := histBucket(c.ns); got != c.bucket {
			t.Errorf("histBucket(%d) = %d, want %d", c.ns, got, c.bucket)
		}
		lo, hi := BucketBounds(histBucket(c.ns))
		if d := time.Duration(c.ns); d < lo || d >= hi {
			t.Errorf("%dns outside its own bucket bounds [%d, %d)", c.ns, lo, hi)
		}
	}
	if lo, hi := BucketBounds(0); lo != 0 || hi != 1 {
		t.Errorf("bucket 0 bounds [%d, %d), want [0, 1)", lo, hi)
	}
	if lo, hi := BucketBounds(5); lo != 16 || hi != 32 {
		t.Errorf("bucket 5 bounds [%d, %d), want [16, 32)", lo, hi)
	}
}

func TestHistObserveAndSnapshot(t *testing.T) {
	var h Hist
	h.Observe(-5 * time.Nanosecond) // clamps to zero
	h.Observe(0)
	h.Observe(100 * time.Nanosecond)
	h.Observe(100 * time.Microsecond)
	s := h.Snapshot()
	if s.N != 4 {
		t.Fatalf("N = %d, want 4", s.N)
	}
	if want := int64(100 + 100_000); s.SumNs != want {
		t.Fatalf("SumNs = %d, want %d", s.SumNs, want)
	}
	if s.Counts[0] != 2 {
		t.Errorf("zero bucket holds %d, want 2", s.Counts[0])
	}
	if got := s.Mean(); got != time.Duration((100+100_000)/4) {
		t.Errorf("Mean = %v", got)
	}
	bks := s.Buckets()
	var total int64
	for _, b := range bks {
		total += b.N
	}
	if total != 4 {
		t.Errorf("bucket list accounts for %d of 4 observations", total)
	}
}

func TestHistQuantileInterpolation(t *testing.T) {
	var h Hist
	// 100 observations of 1µs: all land in one bucket, [512, 1024)ns.
	for i := 0; i < 100; i++ {
		h.Observe(time.Microsecond)
	}
	s := h.Snapshot()
	lo, hi := BucketBounds(histBucket(int64(time.Microsecond)))
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		got := s.Quantile(q)
		if got < lo || got > hi {
			t.Errorf("Quantile(%g) = %v, outside bucket [%v, %v]", q, got, lo, hi)
		}
	}
	// Median of a single-bucket distribution interpolates to ~mid-bucket.
	if med := s.Quantile(0.5); med < lo+(hi-lo)/4 || med > hi-(hi-lo)/4 {
		t.Errorf("Quantile(0.5) = %v, want near middle of [%v, %v]", med, lo, hi)
	}

	// Bimodal: 90 fast + 10 slow. p50 must report the fast mode, p99 the slow.
	var b Hist
	for i := 0; i < 90; i++ {
		b.Observe(time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		b.Observe(time.Millisecond)
	}
	bs := b.Snapshot()
	if p50 := bs.Quantile(0.50); p50 > 2*time.Microsecond {
		t.Errorf("bimodal p50 = %v, want ≈1µs", p50)
	}
	if p99 := bs.Quantile(0.99); p99 < 500*time.Microsecond {
		t.Errorf("bimodal p99 = %v, want ≈1ms", p99)
	}
	if bs.Quantile(0) > bs.Quantile(0.5) || bs.Quantile(0.5) > bs.Quantile(1) {
		t.Error("quantiles not monotone")
	}
}

func TestHistQuantileEdgeCases(t *testing.T) {
	var empty HistSnapshot
	if empty.Quantile(0.5) != 0 || empty.Mean() != 0 {
		t.Error("empty snapshot should report zero")
	}
	var h Hist
	h.Observe(42 * time.Nanosecond)
	s := h.Snapshot()
	// Out-of-range q clamps.
	if s.Quantile(-1) != s.Quantile(0) || s.Quantile(2) != s.Quantile(1) {
		t.Error("out-of-range quantiles should clamp")
	}
}

func TestHistMergeShardedAndConcurrent(t *testing.T) {
	// Concurrent observers spread across shards; the snapshot must still
	// account for every observation, and merging per-histogram snapshots
	// must behave like one combined histogram.
	var a, b Hist
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := &a
			if w%2 == 1 {
				h = &b
			}
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(1+i%3) * time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	sa, sb := a.Snapshot(), b.Snapshot()
	if sa.N+sb.N != workers*per {
		t.Fatalf("snapshots hold %d observations, want %d", sa.N+sb.N, workers*per)
	}
	merged := sa
	merged.Merge(&sb)
	if merged.N != workers*per || merged.SumNs != sa.SumNs+sb.SumNs {
		t.Fatalf("merge lost observations: %+v", merged)
	}
	var total int64
	for _, c := range merged.Counts {
		total += c
	}
	if total != merged.N {
		t.Fatalf("merged bucket counts sum to %d, want %d", total, merged.N)
	}
	sum := merged.Summarize()
	if sum.N != int64(workers*per) || sum.P50Us <= 0 {
		t.Fatalf("summary: %+v", sum)
	}
}

// TestQuickMatchesSnapshotQuantile pins Quick to the reference path: on a
// quiescent histogram the two estimators must agree exactly.
func TestQuickMatchesSnapshotQuantile(t *testing.T) {
	h := new(Hist)
	for i := 1; i <= 10000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	snap := h.Snapshot()
	for _, q := range []float64{0, 0.5, 0.95, 0.99, 1} {
		n, est := h.Quick(q)
		if n != snap.N {
			t.Fatalf("Quick(%g) n = %d, snapshot N = %d", q, n, snap.N)
		}
		if want := snap.Quantile(q); est != want {
			t.Fatalf("Quick(%g) = %v, Snapshot().Quantile = %v", q, est, want)
		}
	}
	if n, est := new(Hist).Quick(0.95); n != 0 || est != 0 {
		t.Fatalf("empty Quick = (%d, %v), want (0, 0)", n, est)
	}
}

// TestQuickZeroAllocs pins the balancer hot path's allocation budget: a
// power-of-two-choices pick reads two histograms per call, so Quick must
// not allocate.
func TestQuickZeroAllocs(t *testing.T) {
	h := new(Hist)
	for i := 0; i < 4096; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		h.Quick(0.95)
	})
	if allocs != 0 {
		t.Fatalf("Quick allocates %.1f objects per call, want 0", allocs)
	}
}
