// Package stats provides small measurement helpers used by the benchmark
// harness and examples: online summaries and percentile estimation.
package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Sample accumulates duration observations.
type Sample struct {
	vals   []float64 // microseconds
	sum    float64
	sorted bool
}

// Add records one observation.
func (s *Sample) Add(d time.Duration) {
	v := float64(d) / float64(time.Microsecond)
	s.vals = append(s.vals, v)
	s.sum += v
	s.sorted = false
}

// Merge folds another sample's observations into s. Useful for combining
// per-goroutine samples without sharing a lock on the hot path.
func (s *Sample) Merge(o *Sample) {
	s.vals = append(s.vals, o.vals...)
	s.sum += o.sum
	s.sorted = false
}

// N returns the number of observations.
func (s *Sample) N() int { return len(s.vals) }

// Mean returns the mean in microseconds.
func (s *Sample) Mean() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	return s.sum / float64(len(s.vals))
}

// StdDev returns the sample standard deviation in microseconds.
func (s *Sample) StdDev() float64 {
	n := len(s.vals)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	var ss float64
	for _, v := range s.vals {
		ss += (v - m) * (v - m)
	}
	return math.Sqrt(ss / float64(n-1))
}

func (s *Sample) sortVals() {
	if !s.sorted {
		sort.Float64s(s.vals)
		s.sorted = true
	}
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) in microseconds,
// using nearest-rank on the sorted sample.
func (s *Sample) Percentile(p float64) float64 {
	if len(s.vals) == 0 {
		return 0
	}
	s.sortVals()
	if p <= 0 {
		return s.vals[0]
	}
	if p >= 100 {
		return s.vals[len(s.vals)-1]
	}
	rank := int(math.Ceil(p / 100 * float64(len(s.vals))))
	if rank < 1 {
		rank = 1
	}
	return s.vals[rank-1]
}

// Min and Max return the range in microseconds.
func (s *Sample) Min() float64 { return s.Percentile(0) }

// Max returns the largest observation in microseconds.
func (s *Sample) Max() float64 { return s.Percentile(100) }

// String summarizes the sample.
func (s *Sample) String() string {
	return fmt.Sprintf("n=%d mean=%.1fµs p50=%.1fµs p99=%.1fµs max=%.1fµs",
		s.N(), s.Mean(), s.Percentile(50), s.Percentile(99), s.Max())
}

// Throughput converts a count of payload bytes moved in an elapsed time to
// megabits per second.
func Throughput(bytes int64, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(bytes) * 8 / elapsed.Seconds() / 1e6
}

// Rate converts a count of events in an elapsed time to events per second.
func Rate(n int64, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(n) / elapsed.Seconds()
}
