package stats

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
	"unsafe"
)

// Hist is a log-bucketed latency histogram built for the RPC fast path:
// recording an observation is a handful of atomic adds with no lock and no
// allocation, the same discipline proto's statCounters apply to event
// counts. Bucket b counts durations whose nanosecond value has b significant
// bits, so bucket widths double — 1 ns resolution at the bottom, ~2×
// relative error everywhere, 64 buckets covering any int64 duration.
//
// The counters are sharded so concurrent observers on different CPUs do not
// all contend on one cache line (every Null call lands in the same bucket,
// which would otherwise make that bucket's counter a global hot spot). A
// snapshot merges the shards; Merge folds snapshots from independent
// histograms (e.g. per-peer shards) into one distribution.
//
// The zero value is ready to use.
type Hist struct {
	shards [histShards]histShard
}

const (
	// histBuckets is fixed by the encoding: bits.Len64 of an int64 ns count.
	histBuckets = 64
	// histShards trades memory for contention; 4 is plenty for the caller
	// thread counts the stack targets, and keeps a Hist at ~2 KB.
	histShards = 4
)

type histShard struct {
	counts [histBuckets]atomic.Int64
	n      atomic.Int64
	sum    atomic.Int64 // nanoseconds
	_      [40]byte     // keep neighbouring shards' hot tails apart
}

// histBucket maps a non-negative nanosecond count to its bucket index.
func histBucket(ns int64) int { return bits.Len64(uint64(ns)) }

// BucketBounds returns bucket b's half-open value range [lo, hi).
func BucketBounds(b int) (lo, hi time.Duration) {
	if b <= 0 {
		return 0, 1
	}
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return time.Duration(int64(1) << (b - 1)), time.Duration(int64(1) << b)
}

// Observe records one duration. Negative durations count as zero.
func (h *Hist) Observe(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	// Shard by the address of a stack local: distinct goroutines get
	// distinct stacks, so concurrent observers spread across shards while a
	// single goroutine stays on one (no cache-line ping-pong). This is a
	// distribution hint only — correctness does not depend on it.
	s := &h.shards[(uintptr(unsafe.Pointer(&ns))>>8)%histShards]
	s.counts[histBucket(ns)].Add(1)
	s.n.Add(1)
	s.sum.Add(ns)
}

// Quick estimates the q-th quantile and returns it with the sample count,
// without materializing a HistSnapshot. This is the balancer's hot-path
// read: the shard counters are merged into a stack-local array and the
// quantile located in one pass, so a power-of-two-choices pick costs two
// Quick calls and zero heap allocations (pinned by TestQuickZeroAllocs).
// The estimate matches Snapshot().Quantile(q) up to concurrent updates.
func (h *Hist) Quick(q float64) (n int64, est time.Duration) {
	var counts [histBuckets]int64
	for i := range h.shards {
		s := &h.shards[i]
		for b := range s.counts {
			counts[b] += s.counts[b].Load()
		}
		n += s.n.Load()
	}
	if n == 0 {
		return 0, 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(n-1)
	var cum int64
	for b := 0; b < histBuckets; b++ {
		c := counts[b]
		if c == 0 {
			continue
		}
		if rank < float64(cum+c) {
			lo, hi := BucketBounds(b)
			frac := (rank - float64(cum) + 0.5) / float64(c)
			return n, lo + time.Duration(frac*float64(hi-lo))
		}
		cum += c
	}
	for b := histBuckets - 1; b >= 0; b-- {
		if counts[b] != 0 {
			_, hi := BucketBounds(b)
			return n, hi
		}
	}
	return n, 0
}

// HistSnapshot is a merged, point-in-time view of one or more Hists.
type HistSnapshot struct {
	Counts [histBuckets]int64 `json:"-"`
	N      int64              `json:"n"`
	SumNs  int64              `json:"sum_ns"`
}

// Snapshot merges the shards into one consistent-enough view (each counter
// is read atomically; a snapshot taken during a storm of observations may
// be mid-update by a few counts, which quantile estimation tolerates).
func (h *Hist) Snapshot() HistSnapshot {
	var out HistSnapshot
	for i := range h.shards {
		s := &h.shards[i]
		for b := range s.counts {
			out.Counts[b] += s.counts[b].Load()
		}
		out.N += s.n.Load()
		out.SumNs += s.sum.Load()
	}
	return out
}

// Merge folds another snapshot into s.
func (s *HistSnapshot) Merge(o *HistSnapshot) {
	for b := range s.Counts {
		s.Counts[b] += o.Counts[b]
	}
	s.N += o.N
	s.SumNs += o.SumNs
}

// Mean returns the mean observed duration.
func (s *HistSnapshot) Mean() time.Duration {
	if s.N == 0 {
		return 0
	}
	return time.Duration(s.SumNs / s.N)
}

// Quantile estimates the q-th quantile (0 ≤ q ≤ 1) by locating the bucket
// holding the target rank and interpolating linearly within it, placing the
// bucket's k observations at the midpoints of k equal sub-intervals. The
// estimate is exact at bucket boundaries and within one bucket width (~2×)
// elsewhere — the resolution Table VI-style accounting needs.
func (s *HistSnapshot) Quantile(q float64) time.Duration {
	if s.N == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.N-1) // 0-based fractional rank
	var cum int64
	for b := 0; b < histBuckets; b++ {
		n := s.Counts[b]
		if n == 0 {
			continue
		}
		if rank < float64(cum+n) {
			lo, hi := BucketBounds(b)
			// Position of the target rank among this bucket's n samples.
			frac := (rank - float64(cum) + 0.5) / float64(n)
			return lo + time.Duration(frac*float64(hi-lo))
		}
		cum += n
	}
	// rank beyond the last counted sample (concurrent update): max bucket.
	for b := histBuckets - 1; b >= 0; b-- {
		if s.Counts[b] != 0 {
			_, hi := BucketBounds(b)
			return hi
		}
	}
	return 0
}

// BucketCount is one non-empty bucket, for JSON export.
type BucketCount struct {
	LoNs int64 `json:"lo_ns"`
	HiNs int64 `json:"hi_ns"`
	N    int64 `json:"n"`
}

// Buckets returns the non-empty buckets in ascending order.
func (s *HistSnapshot) Buckets() []BucketCount {
	var out []BucketCount
	for b := 0; b < histBuckets; b++ {
		if s.Counts[b] == 0 {
			continue
		}
		lo, hi := BucketBounds(b)
		out = append(out, BucketCount{LoNs: int64(lo), HiNs: int64(hi), N: s.Counts[b]})
	}
	return out
}

// Summary bundles the quantiles the debug surface and accounting report
// present; all values in microseconds for direct comparison with the
// paper's tables.
type Summary struct {
	N      int64   `json:"n"`
	MeanUs float64 `json:"mean_us"`
	P50Us  float64 `json:"p50_us"`
	P95Us  float64 `json:"p95_us"`
	P99Us  float64 `json:"p99_us"`
	P999Us float64 `json:"p999_us"`
	MaxUs  float64 `json:"max_us"`
}

// Summarize computes the standard quantile summary.
func (s *HistSnapshot) Summarize() Summary {
	us := func(d time.Duration) float64 {
		v := float64(d) / float64(time.Microsecond)
		return math.Round(v*1000) / 1000
	}
	return Summary{
		N:      s.N,
		MeanUs: us(s.Mean()),
		P50Us:  us(s.Quantile(0.50)),
		P95Us:  us(s.Quantile(0.95)),
		P99Us:  us(s.Quantile(0.99)),
		P999Us: us(s.Quantile(0.999)),
		MaxUs:  us(s.Quantile(1)),
	}
}
