// Package kvstore is the cluster layer's flagship application: a
// replicated, versioned key-value store built from the pieces below it —
// Fanout for majority writes, the P2C/hedged Call path for reads, and the
// registry for naming the replica set.
//
// Replication scheme. Every value carries a version; a replica applies a
// write only when its version exceeds the one it holds (higher-version-
// wins). That makes writes idempotent: a write delivered twice — a
// retransmission, a fanout straggler finishing after the quorum, or an
// operator retry — applies at most once, which is what lets the client
// layer retry and cancel freely without a replica ever double-committing
// (DESIGN.md's hedge-never-double-commits invariant; hedging itself is
// reserved for reads anyway). Versions are taken as (majority-read max)+1,
// so a successful Put is ordered after every write a majority had seen.
//
// Consistency. Put fans to all replicas and succeeds on majority ack.
// Get reads a majority and returns the highest-versioned value, so any
// Get observes every majority-acked Put: two majorities intersect. GetAny
// is the fast path — one balanced, optionally hedged read — and may
// return a stale value during partitions; it is for read-heavy callers
// that tolerate bounded staleness, and it is where hedging earns its keep.
package kvstore

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"

	"fireflyrpc/internal/cluster"
	"fireflyrpc/internal/core"
	"fireflyrpc/internal/marshal"
	"fireflyrpc/internal/transport"
)

// Interface identity and procedures.
const (
	IfaceName    = "KV"
	IfaceVersion = 1

	ProcPut  = 1 // key, version, value → applied(bool), holder version
	ProcGet  = 2 // key → found(bool), version, value
	ProcKeys = 3 // () → count, keys (diagnostics)
)

// ErrNotFound reports a Get for a key no quorum member holds.
var ErrNotFound = errors.New("kvstore: key not found")

// entry is one replica-local versioned value.
type entry struct {
	val []byte
	ver uint64
}

// Store is one replica's state machine. All methods are safe for
// concurrent use; Apply is the only mutation and is idempotent.
type Store struct {
	mu sync.RWMutex
	m  map[string]entry

	applies atomic.Int64 // writes that advanced a key
	ignored atomic.Int64 // writes discarded as stale (≤ held version)
}

// NewStore returns an empty replica store.
func NewStore() *Store { return &Store{m: make(map[string]entry)} }

// Apply installs (key, ver, val) iff ver is newer than the held version,
// and reports whether it did. Re-applying the same write is a no-op, so
// duplicate deliveries cannot double-commit.
func (s *Store) Apply(key string, ver uint64, val []byte) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cur, ok := s.m[key]; ok && ver <= cur.ver {
		s.ignored.Add(1)
		return false
	}
	v := make([]byte, len(val))
	copy(v, val)
	s.m[key] = entry{val: v, ver: ver}
	s.applies.Add(1)
	return true
}

// Get returns the held value and version for key.
func (s *Store) Get(key string) (val []byte, ver uint64, ok bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.m[key]
	return e.val, e.ver, ok
}

// Len reports the number of keys held.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.m)
}

// StoreStats counts a replica's write dispositions.
type StoreStats struct {
	Applies int64 `json:"applies"`
	Ignored int64 `json:"ignored"`
}

// Stats snapshots the store's counters.
func (s *Store) Stats() StoreStats {
	return StoreStats{Applies: s.applies.Load(), Ignored: s.ignored.Load()}
}

// Export wires the store's procedures into a core interface for serving.
func (s *Store) Export() *core.Interface {
	return core.NewInterface(IfaceName, IfaceVersion).
		Proc(ProcPut, func(_ transport.Addr, d *marshal.Dec) ([]byte, error) {
			key := d.String()
			ver := d.Uint64()
			val := d.AliasVarBytes()
			if err := d.Err(); err != nil {
				return nil, err
			}
			applied := s.Apply(key, ver, val)
			_, held, _ := s.Get(key)
			return core.Reply(1+8, func(e *marshal.Enc) {
				e.PutBool(applied)
				e.PutUint64(held)
			})
		}).
		Proc(ProcGet, func(_ transport.Addr, d *marshal.Dec) ([]byte, error) {
			key := d.String()
			if err := d.Err(); err != nil {
				return nil, err
			}
			val, ver, ok := s.Get(key)
			return core.Reply(1+8+4+len(val), func(e *marshal.Enc) {
				e.PutBool(ok)
				e.PutUint64(ver)
				e.PutVarBytes(val)
			})
		}).
		Proc(ProcKeys, func(_ transport.Addr, d *marshal.Dec) ([]byte, error) {
			if err := d.Err(); err != nil {
				return nil, err
			}
			s.mu.RLock()
			keys := make([]string, 0, len(s.m))
			size := 4
			for k := range s.m {
				keys = append(keys, k)
				size += 4 + len(k)
			}
			s.mu.RUnlock()
			return core.Reply(size, func(e *marshal.Enc) {
				e.PutUint32(uint32(len(keys)))
				for _, k := range keys {
					e.PutString(k)
				}
			})
		})
}

// KV is the replicated client: a thin protocol on top of cluster.Client.
type KV struct {
	c *cluster.Client
}

// NewKV wraps a cluster client configured for the KV interface.
func NewKV(c *cluster.Client) *KV { return &KV{c: c} }

// Cluster exposes the underlying balancer (stats, debug surface).
func (kv *KV) Cluster() *cluster.Client { return kv.c }

// versionQuorum majority-reads key's version: the max version any quorum
// member holds. Ordered-after semantics for Put derive from this read.
func (kv *KV) versionQuorum(ctx context.Context, key string) (uint64, error) {
	var mu sync.Mutex
	var max uint64
	_, err := kv.c.Fanout(ctx, ProcGet, 4+len(key),
		func(e *marshal.Enc) { e.PutString(key) },
		func(_ string, d *marshal.Dec) error {
			ok := d.Bool()
			ver := d.Uint64()
			d.AliasVarBytes()
			if err := d.Err(); err != nil {
				return err
			}
			if ok {
				mu.Lock()
				if ver > max {
					max = ver
				}
				mu.Unlock()
			}
			return nil
		}, 0)
	return max, err
}

// Put writes key=val to the replica set: version = (majority-read max)+1,
// fanned to every replica, succeeding once a majority acks. Returns the
// version the write committed at.
func (kv *KV) Put(ctx context.Context, key string, val []byte) (uint64, error) {
	cur, err := kv.versionQuorum(ctx, key)
	if err != nil {
		return 0, err
	}
	ver := cur + 1
	_, err = kv.c.Fanout(ctx, ProcPut, 4+len(key)+8+4+len(val),
		func(e *marshal.Enc) {
			e.PutString(key)
			e.PutUint64(ver)
			e.PutVarBytes(val)
		},
		nil, 0)
	if err != nil {
		return 0, err
	}
	return ver, nil
}

// Get majority-reads key and returns the highest-versioned value seen —
// never older than the last majority-acked Put.
func (kv *KV) Get(ctx context.Context, key string) (val []byte, ver uint64, err error) {
	var mu sync.Mutex
	found := false
	_, err = kv.c.Fanout(ctx, ProcGet, 4+len(key),
		func(e *marshal.Enc) { e.PutString(key) },
		func(_ string, d *marshal.Dec) error {
			ok := d.Bool()
			v := d.Uint64()
			b := d.AliasVarBytes()
			if err := d.Err(); err != nil {
				return err
			}
			if ok {
				cp := make([]byte, len(b))
				copy(cp, b)
				mu.Lock()
				if !found || v > ver {
					found, ver, val = true, v, cp
				}
				mu.Unlock()
			}
			return nil
		}, 0)
	if err != nil {
		return nil, 0, err
	}
	if !found {
		return nil, 0, ErrNotFound
	}
	return val, ver, nil
}

// GetAny reads key from one balanced (and, if configured, hedged)
// replica. Fast and tail-tolerant, but a partitioned or lagging replica
// may answer with a stale value — callers choose this trade explicitly.
func (kv *KV) GetAny(ctx context.Context, key string) (val []byte, ver uint64, err error) {
	found := false
	err = kv.c.Call(ctx, ProcGet, 4+len(key),
		func(e *marshal.Enc) { e.PutString(key) },
		func(d *marshal.Dec) {
			found = d.Bool()
			ver = d.Uint64()
			b := d.VarBytes()
			val = b
		})
	if err != nil {
		return nil, 0, err
	}
	if !found {
		return nil, 0, ErrNotFound
	}
	return val, ver, nil
}
