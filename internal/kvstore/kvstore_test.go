package kvstore

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"fireflyrpc/internal/cluster"
	"fireflyrpc/internal/core"
	"fireflyrpc/internal/proto"
	"fireflyrpc/internal/transport"
)

func TestStoreApplyIdempotent(t *testing.T) {
	s := NewStore()
	if !s.Apply("k", 1, []byte("v1")) {
		t.Fatal("first apply refused")
	}
	if s.Apply("k", 1, []byte("v1-again")) {
		t.Fatal("duplicate version applied — double commit")
	}
	if s.Apply("k", 0, []byte("older")) {
		t.Fatal("older version applied")
	}
	if !s.Apply("k", 2, []byte("v2")) {
		t.Fatal("newer version refused")
	}
	val, ver, ok := s.Get("k")
	if !ok || ver != 2 || string(val) != "v2" {
		t.Fatalf("got %q v%d ok=%v", val, ver, ok)
	}
	st := s.Stats()
	if st.Applies != 2 || st.Ignored != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

// gate wraps a transport and, when cut, silently drops everything in both
// directions — one replica's side of a network partition.
type gate struct {
	transport.Transport
	cut atomic.Bool
}

func (g *gate) Send(dst transport.Addr, frame []byte) error {
	if g.cut.Load() {
		return nil
	}
	return g.Transport.Send(dst, frame)
}

func (g *gate) SetReceiver(r transport.Receiver) {
	g.Transport.SetReceiver(func(src transport.Addr, frame []byte) {
		if g.cut.Load() {
			return
		}
		r(src, frame)
	})
}

// kvWorld builds a 3-replica KV service (each replica behind a gate) and
// a client with hedged reads.
func kvWorld(t *testing.T) (kv *KV, stores []*Store, gates []*gate) {
	t.Helper()
	ex := transport.NewExchange()
	cfg := proto.Config{RetransInterval: 20 * time.Millisecond, MaxRetries: 6, Workers: 4}
	var addrs []string
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("kv-%d", i)
		g := &gate{Transport: ex.Port(name)}
		node := core.NewNode(g, cfg)
		st := NewStore()
		node.Export(st.Export())
		stores = append(stores, st)
		gates = append(gates, g)
		addrs = append(addrs, name)
		t.Cleanup(func() { node.Close() })
	}
	caller := core.NewNode(ex.Port("kv-client"), cfg)
	t.Cleanup(func() { caller.Close() })
	c, err := cluster.New(context.Background(), cluster.Config{
		Node:      caller,
		Resolver:  cluster.Static(addrs),
		ParseAddr: func(s string) (transport.Addr, error) { return transport.AddrOf(s), nil },
		Iface:     IfaceName,
		Version:   IfaceVersion,
		Hedge:     cluster.HedgeConfig{Enabled: true, Max: 5 * time.Millisecond},
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return NewKV(c), stores, gates
}

func TestKVEndToEnd(t *testing.T) {
	kv, stores, _ := kvWorld(t)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	ver, err := kv.Put(ctx, "greeting", []byte("hello"))
	if err != nil || ver != 1 {
		t.Fatalf("put: v%d %v", ver, err)
	}
	val, ver, err := kv.Get(ctx, "greeting")
	if err != nil || ver != 1 || string(val) != "hello" {
		t.Fatalf("get: %q v%d %v", val, ver, err)
	}
	if ver2, err := kv.Put(ctx, "greeting", []byte("hi")); err != nil || ver2 != 2 {
		t.Fatalf("second put: v%d %v", ver2, err)
	}
	val, _, err = kv.GetAny(ctx, "greeting")
	if err != nil {
		t.Fatalf("getany: %v", err)
	}
	// GetAny read one replica; it holds either value but never garbage.
	if s := string(val); s != "hi" && s != "hello" {
		t.Fatalf("getany: %q", s)
	}
	if _, _, err := kv.Get(ctx, "absent"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing key: %v", err)
	}
	// A majority holds the committed version. (The straggler may hold an
	// older one: once the quorum acks, its copy of the write is cancelled —
	// that is the point of the wire-level cancel, and idempotent apply
	// makes it safe.)
	n := 0
	for _, st := range stores {
		if _, v, ok := st.Get("greeting"); ok && v == 2 {
			n++
		}
	}
	if n < 2 {
		t.Fatalf("replication incomplete: %d/3 replicas at v2, want a majority", n)
	}
}

// TestKVPartitionHeal is the acceptance scenario, seed-driven and
// deterministic in its operation sequence: writes keep succeeding while a
// minority replica is cut off, majority reads never return a value older
// than the last majority-acked write, and the healed replica converges.
func TestKVPartitionHeal(t *testing.T) {
	kv, stores, gates := kvWorld(t)
	rng := rand.New(rand.NewSource(42))
	model := map[string]string{}   // last acked value per key
	lastVer := map[string]uint64{} // last acked version per key
	keys := []string{"k0", "k1", "k2", "k3", "k4"}

	checkGet := func(phase string) {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		for k, want := range model {
			val, ver, err := kv.Get(ctx, k)
			if err != nil {
				t.Fatalf("[%s] get %s: %v", phase, k, err)
			}
			if ver < lastVer[k] {
				t.Fatalf("[%s] get %s went back in time: v%d < acked v%d", phase, k, ver, lastVer[k])
			}
			if string(val) != want {
				t.Fatalf("[%s] get %s = %q, want last acked %q", phase, k, val, want)
			}
		}
	}
	put := func(phase string, n int) {
		for i := 0; i < n; i++ {
			k := keys[rng.Intn(len(keys))]
			v := fmt.Sprintf("%s-%d", phase, rng.Intn(1000))
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			ver, err := kv.Put(ctx, k, []byte(v))
			cancel()
			if err != nil {
				t.Fatalf("[%s] put %s: %v", phase, k, err)
			}
			if ver <= lastVer[k] {
				t.Fatalf("[%s] put %s: version v%d did not advance past v%d", phase, k, ver, lastVer[k])
			}
			model[k], lastVer[k] = v, ver
		}
	}

	put("pre", 10)
	checkGet("pre")

	// Partition: replica 2 drops off the network. 2-of-3 majority remains.
	gates[2].cut.Store(true)
	put("cut", 10)
	checkGet("cut")

	// Heal and keep writing. Majority semantics must hold again, every key
	// must sit at its committed version on ≥2 replicas, and the healed
	// replica must rejoin the write path (its applies counter moves).
	gates[2].cut.Store(false)
	appliesAtHeal := stores[2].Stats().Applies
	put("healed", 10)
	checkGet("healed")

	for k, want := range model {
		n := 0
		for _, st := range stores {
			if val, v, ok := st.Get(k); ok && v == lastVer[k] && string(val) == want {
				n++
			}
		}
		if n < 2 {
			t.Fatalf("key %s at committed v%d on %d replicas, want a majority", k, lastVer[k], n)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for stores[2].Stats().Applies == appliesAtHeal {
		if time.Now().After(deadline) {
			t.Fatal("healed replica never applied a post-heal write")
		}
		// Each fresh write is a fresh chance for the healed replica to win
		// the apply-before-cancel race.
		put("heal-probe", 1)
	}
	checkGet("final")
}

// TestKVGetAnySurvivesPartition: the hedged single-replica read path must
// keep answering while one replica is cut — the hedge rescues calls whose
// primary is the dead replica.
func TestKVGetAnySurvivesPartition(t *testing.T) {
	kv, stores, gates := kvWorld(t)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	// Seed every replica directly so any single-replica read has the value
	// (a quorum Put may legitimately skip the cancelled straggler).
	for _, st := range stores {
		st.Apply("k", 1, []byte("v"))
	}
	gates[1].cut.Store(true)
	for i := 0; i < 20; i++ {
		val, _, err := kv.GetAny(ctx, "k")
		if err != nil {
			t.Fatalf("getany %d during partition: %v", i, err)
		}
		if !bytes.Equal(val, []byte("v")) {
			t.Fatalf("getany %d: %q", i, val)
		}
	}
	s := kv.Cluster().Stats()
	if s.HedgesFired == 0 {
		t.Fatalf("partition never triggered a hedge: %+v", s)
	}
}
