package simstack

import (
	"fmt"

	"fireflyrpc/internal/buffer"
	"fireflyrpc/internal/firefly"
	"fireflyrpc/internal/wire"
)

// StartServerThreads spawns n server threads that park in the call table
// awaiting call packets, as the fast path requires ("server threads are
// waiting for the call").
func (s *Stack) StartServerThreads(n int) {
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("%s/server%d", s.M.Name, i)
		s.M.Sched.SpawnProc(name, s.serveLoop)
	}
}

// serveLoop is the body of a server thread: register in the call table, wait
// for a call, unmarshal, run the procedure, marshal results into the saved
// call packet(s), send them back, repeat.
func (s *Stack) serveLoop(p *firefly.Proc) {
	cfg := s.Cfg
	for {
		var ic *inboundCall
		w := p.PrepareWait()
		se, pending := s.Table.RegisterServer(w)
		if pending != nil {
			ic = pending // a call was already queued (slow path)
		} else {
			p.Wait(w)
			if se.call == nil {
				return // shut down
			}
			ic = se.call
		}

		// Receiver: inspect the RPC header, up-call the interface stub.
		s.debugf(ic.key.activity, "server thread picked up seq=%d", ic.key.seq)
		p.Compute(cfg.ReceiverRecv())

		// SecureBuffers ablation: arguments are copied across the
		// protection boundary instead of read in place.
		for _, b := range ic.bufs {
			p.Compute(cfg.SecureBufferCopy(b.Len()))
		}

		local := ic.callerEP.IP == s.M.IP
		iface := s.ifaces[ic.iface]
		var spec *ProcSpec
		if iface != nil {
			spec = iface.Procs[ic.proc]
		}
		if spec == nil {
			s.reject(p, ic, local)
			continue
		}

		// Server stub: unmarshal arguments. VAR arguments are passed as
		// addresses into the packet; by-value and Text arguments are copied
		// out (their cost is ServerUnmarshal).
		p.Compute(cfg.ServerStub() / 2)
		p.Compute(spec.ServerUnmarshal)
		args := ic.args
		singleInPlace := spec.ResultBytes <= wire.MaxSinglePacketPayload && len(ic.bufs) == 1
		if spec.ArgBytes > 0 && spec.ResultBytes > 0 && singleInPlace {
			// The in-place result will overwrite the argument region of the
			// saved call packet; give the handler a stable copy.
			args = append([]byte(nil), args...)
		}

		// The server procedure itself.
		p.Compute(spec.Service)

		if singleInPlace {
			s.sendSinglePacketResult(p, ic, spec, args, local)
		} else {
			s.sendFragmentedResult(p, ic, spec, args)
		}
	}
}

// sendSinglePacketResult is the fast path: marshal the results into the
// saved call packet, which becomes the result packet. VAR OUT results are
// written in place by the handler.
func (s *Stack) sendSinglePacketResult(p *firefly.Proc, ic *inboundCall, spec *ProcSpec, args []byte, local bool) {
	cfg := s.Cfg
	cb := ic.bufs[0]
	key := ic.key
	rhdr := wire.RPCHeader{
		Type:      wire.TypeResult,
		Flags:     wire.FlagLastFrag,
		Activity:  key.activity,
		Seq:       key.seq,
		FragCount: 1,
		Interface: ic.iface,
		Proc:      ic.proc,
	}
	frameLen := wire.PacketLen(spec.ResultBytes)
	buf := cb.Cap()[:frameLen]
	if err := wire.BuildPacketHeaders(buf, s.M.Endpoint(), ic.callerEP, rhdr, spec.ResultBytes); err != nil {
		cb.Free()
		return
	}
	resultRegion := buf[wire.HeaderOverhead:]
	for i := range resultRegion {
		resultRegion[i] = 0
	}
	if spec.Handler != nil {
		spec.Handler(args, resultRegion)
	}
	cb.SetLen(frameLen)
	p.Compute(spec.ServerMarshal)
	p.Compute(cfg.ServerStub() / 2)
	p.Compute(cfg.ReceiverSend())
	p.Compute(cfg.SwappedLinesPenalty(s.M.NumCPUs()))
	s.Stats.ResultsSent++

	if local {
		// Shared-memory transport: hand the result straight back.
		p.Compute(cfg.LocalTransportHalf())
		if e := s.Table.LookupCall(key.activity, key.seq); e != nil && e.resPayload == nil {
			e.resCount = 1
			e.resFrags[0] = cb
			e.resPayload = resultRegion
			s.M.Sched.Wakeup(e.waiter)
		} else {
			s.Stats.StaleDrops++
			cb.Free()
		}
		return
	}

	// Ethernet transport: checksum and send; retain the result packet for
	// retransmission until the activity's next call recycles it.
	if cfg.UDPChecksums {
		wire.FinishUDPChecksum(buf)
	}
	st := s.Table.activity(key.activity)
	st.results = []*buffer.Buf{cb}
	st.done = true
	s.debugf(key.activity, "sending result seq=%d", key.seq)
	s.sender(p, cb.Bytes())
}

// sendFragmentedResult streams a large result as back-to-back fragments —
// the §5 streaming strategy ("streamed a large argument or result for a
// single call in multiple packets"): many packets, one wakeup at the far
// end, far fewer thread-to-thread context switches than parallel threads
// moving a packet's worth each.
func (s *Stack) sendFragmentedResult(p *firefly.Proc, ic *inboundCall, spec *ProcSpec, args []byte) {
	cfg := s.Cfg
	key := ic.key

	payload := make([]byte, spec.ResultBytes)
	if spec.Handler != nil {
		spec.Handler(args, payload)
	}
	p.Compute(spec.ServerMarshal)
	p.Compute(cfg.ServerStub() / 2)
	p.Compute(cfg.ReceiverSend())
	p.Compute(cfg.SwappedLinesPenalty(s.M.NumCPUs()))

	bufs, err := s.buildFrags(wire.TypeResult, s.M.Endpoint(), ic.callerEP,
		key.activity, key.seq, ic.iface, ic.proc, payload, ic.bufs)
	if err != nil {
		for _, b := range ic.bufs {
			b.Free()
		}
		return
	}
	s.Stats.ResultsSent++
	st := s.Table.activity(key.activity)
	st.results = bufs
	st.done = true
	s.debugf(key.activity, "streaming result seq=%d frags=%d", key.seq, len(bufs))
	for _, b := range bufs {
		s.senderFrag(p, b.Bytes())
	}
	s.raiseSendIPI()
}

// reject answers a call to an unknown interface or procedure.
func (s *Stack) reject(p *firefly.Proc, ic *inboundCall, local bool) {
	cfg := s.Cfg
	key := ic.key
	cb := ic.bufs[0]
	for _, b := range ic.bufs[1:] {
		b.Free()
	}
	rhdr := wire.RPCHeader{
		Type:      wire.TypeReject,
		Flags:     wire.FlagLastFrag,
		Activity:  key.activity,
		Seq:       key.seq,
		FragCount: 1,
		Interface: ic.iface,
		Proc:      ic.proc,
	}
	frameLen := wire.PacketLen(0)
	buf := cb.Cap()[:frameLen]
	if err := wire.BuildPacketHeaders(buf, s.M.Endpoint(), ic.callerEP, rhdr, 0); err != nil {
		cb.Free()
		return
	}
	cb.SetLen(frameLen)
	p.Compute(cfg.ReceiverSend())
	if local {
		if e := s.Table.LookupCall(key.activity, key.seq); e != nil && e.resPayload == nil {
			e.rejected = true
			e.resCount = 1
			e.resFrags[0] = cb
			e.resPayload = []byte{}
			s.M.Sched.Wakeup(e.waiter)
			return
		}
		cb.Free()
		return
	}
	if cfg.UDPChecksums {
		wire.FinishUDPChecksum(buf)
	}
	st := s.Table.activity(key.activity)
	st.results = []*buffer.Buf{cb}
	st.done = true
	s.sender(p, cb.Bytes())
}
