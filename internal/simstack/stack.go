// Package simstack implements the Firefly RPC fast path on the simulated
// machine: caller and server stubs, the Starter/Transporter/Ender and
// Receiver runtime, the Sender with real UDP checksums, the interprocessor
// interrupt to CPU 0, the Ethernet interrupt routine that demultiplexes RPC
// packets and directly awakens the waiting thread, shared packet-buffer
// recycling, multi-packet calls and results, and retransmission off the
// fast path.
//
// Packets are real bytes built and parsed by the wire package; time is
// charged from the cost model, so the simulated latency decomposes exactly
// into the paper's Table VI and VII steps plus measured contention.
package simstack

import (
	"errors"
	"fmt"

	"fireflyrpc/internal/buffer"
	"fireflyrpc/internal/costmodel"
	"fireflyrpc/internal/firefly"
	"fireflyrpc/internal/wire"
)

// Errors surfaced to callers.
var (
	ErrNoBuffers  = errors.New("simstack: packet buffer pool exhausted")
	ErrCallFailed = errors.New("simstack: call abandoned after retransmission limit")
	ErrUnbound    = errors.New("simstack: unknown interface or procedure")
	ErrTooLong    = errors.New("simstack: argument or result exceeds fragment limit")
)

// maxFragments bounds a simulated multi-packet call or result.
const maxFragments = 64

// Counters aggregates stack-level events for the experiment harness.
type Counters struct {
	CallsSent       int64
	CallsCompleted  int64
	ResultsSent     int64
	FragmentsSent   int64
	Retransmits     int64
	DupCalls        int64
	DupResults      int64
	DupFrags        int64
	StaleDrops      int64
	BadPackets      int64
	ChecksumDrops   int64
	BufferDrops     int64
	UnswappedDrops  int64
	PendingQueued   int64
	ResultRetrans   int64
	InterruptsTaken int64
	DatalinkWakeups int64
}

// DebugActivity, when nonzero, traces one activity's packets through every
// stack: each event is appended to TraceSink (or printed to stdout when the
// sink is nil). Used by fireflybench -trace and test diagnostics.
var (
	DebugActivity uint64
	TraceSink     *[]string
)

func (s *Stack) debugf(act uint64, format string, args ...any) {
	if DebugActivity == 0 || act != DebugActivity {
		return
	}
	line := fmt.Sprintf("[%10.1fµs %-6s] ", s.M.K.Now().Micros(), s.M.Name) +
		fmt.Sprintf(format, args...)
	if TraceSink != nil {
		*TraceSink = append(*TraceSink, line)
		return
	}
	fmt.Println(line)
}

// Stack is one machine's RPC runtime.
type Stack struct {
	M     *firefly.Machine
	Cfg   *costmodel.Config
	Pool  *buffer.Pool
	Table *CallTable

	ifaces map[uint32]*InterfaceSpec

	// TraditionalDemux state: the datalink thread and its work queue.
	dlQueue  []func()
	dlWaiter *firefly.Waiter

	Stats Counters
}

// NewStack attaches an RPC runtime to a machine. bufs bounds the shared
// packet-buffer pool (0 = unbounded).
func NewStack(m *firefly.Machine, bufs int) *Stack {
	s := &Stack{
		M:      m,
		Cfg:    m.Cfg,
		Pool:   buffer.NewPool(bufs),
		Table:  newCallTable(),
		ifaces: make(map[uint32]*InterfaceSpec),
	}
	m.Ctrl.SetReceiveHandler(s.onReceive)
	if s.Cfg.TraditionalDemux {
		m.Sched.SpawnProc(m.Name+"/datalink", s.datalinkLoop)
	}
	return s
}

// Register exports an interface on this machine.
func (s *Stack) Register(iface *InterfaceSpec) {
	s.ifaces[iface.ID] = iface
}

// raiseSendIPI models the send path's tail: the interprocessor interrupt to
// CPU 0, whose handler prods the Ethernet controller, followed by deferred
// kernel bookkeeping that stays off the critical path.
func (s *Stack) raiseSendIPI() {
	cfg := s.Cfg
	s.M.K.After(cfg.IPILatency(), func() {
		s.M.Sched.Interrupt([]firefly.IntrStep{
			{D: cfg.HandleIPI()},
			{D: cfg.ActivateController(), Fn: func() {
				s.M.Ctrl.Prod()
				s.M.Sched.DeferredWork(cfg.NubDeferredSend())
			}},
		})
	})
}

// senderFrag charges one fragment's Sender costs (Table VI's first four
// rows) and queues it; the IPI is raised once per burst by the caller.
func (s *Stack) senderFrag(p *firefly.Proc, frame []byte) {
	cfg := s.Cfg
	p.Compute(cfg.FinishUDPHeader() +
		cfg.ChecksumCost(len(frame)) +
		cfg.HandleTrap() +
		cfg.QueuePacket())
	s.M.Ctrl.QueueTx(frame)
	s.Stats.FragmentsSent++
}

// sender transmits a single-fragment message and raises the IPI.
func (s *Stack) sender(p *firefly.Proc, frame []byte) {
	s.senderFrag(p, frame)
	s.raiseSendIPI()
}

// onReceive is the controller's packet-arrival callback: it builds the
// Ethernet interrupt routine's step chain for CPU 0. All state changes
// happen inside step functions so they take effect at the correct virtual
// time; the commit steps re-validate before acting.
func (s *Stack) onReceive(frame []byte) {
	cfg := s.Cfg
	s.Stats.InterruptsTaken++

	// The pre-fix uniprocessor bug: occasionally a packet is lost on
	// arrival, to be recovered by retransmission 600 ms later (§5).
	if p := cfg.UnswappedUniprocDropProb(s.M.NumCPUs()); p > 0 &&
		s.M.K.RNG().Float64() < p {
		s.Stats.UnswappedDrops++
		return
	}

	prologue := []firefly.IntrStep{
		{D: cfg.GeneralIOInterrupt()},
		{D: cfg.HandleReceivedPacket()},
	}

	pkt, err := wire.ParsePacket(frame, cfg.UDPChecksums)
	if err != nil {
		steps := prologue
		if err == wire.ErrBadUDPChecksum {
			steps = append(steps, firefly.IntrStep{D: cfg.ChecksumCost(len(frame)),
				Fn: func() { s.Stats.ChecksumDrops++ }})
		} else {
			steps = append(steps, firefly.IntrStep{D: 0,
				Fn: func() { s.Stats.BadPackets++ }})
		}
		s.M.Sched.Interrupt(steps)
		return
	}

	// Copy the frame into a pool buffer (the controller DMAs arriving
	// packets into pool buffers from its receive queue; an empty pool means
	// the packet is dropped and recovered by retransmission).
	rb := s.Pool.Get()
	if rb == nil {
		s.Stats.BufferDrops++
		s.M.Sched.Interrupt(prologue)
		return
	}
	rb.CopyFrom(frame)

	steps := append(prologue, firefly.IntrStep{D: cfg.ChecksumCost(len(frame))})
	s.debugf(pkt.RPC.Activity, "rx %s seq=%d frag=%d/%d len=%d",
		pkt.RPC.Type, pkt.RPC.Seq, pkt.RPC.FragIndex, pkt.RPC.FragCount, len(frame))

	var commit func()
	switch pkt.RPC.Type {
	case wire.TypeCall:
		commit = s.callCommit(pkt, rb)
	case wire.TypeResult, wire.TypeReject:
		commit = s.resultCommit(pkt, rb)
	default:
		commit = func() {
			s.Stats.BadPackets++
			rb.Free()
		}
	}

	// Only the final fragment's processing performs (and is charged for) a
	// thread wakeup; intermediate fragments just land in the reassembly
	// state. With TraditionalDemux the interrupt instead wakes the datalink
	// thread, which demultiplexes and performs the second wakeup — two
	// wakeups per packet, the design §3.2 rejects.
	lastFrag := pkt.RPC.Flags&wire.FlagLastFrag != 0
	if cfg.TraditionalDemux {
		steps = append(steps, firefly.IntrStep{D: cfg.WakeupThread(), Fn: func() {
			s.Stats.DatalinkWakeups++
			s.dlQueue = append(s.dlQueue, commit)
			if s.dlWaiter != nil {
				w := s.dlWaiter
				s.dlWaiter = nil
				s.M.Sched.Wakeup(w)
			}
			s.M.Sched.DeferredWork(cfg.NubDeferredWakeup())
		}})
	} else if lastFrag {
		steps = append(steps, firefly.IntrStep{D: cfg.WakeupThread(), Fn: func() {
			commit()
			s.M.Sched.DeferredWork(cfg.NubDeferredWakeup())
		}})
	} else {
		steps = append(steps, firefly.IntrStep{D: 0, Fn: commit})
	}
	s.M.Sched.Interrupt(steps)
}

// datalinkLoop is the TraditionalDemux packet-delivery thread: woken by the
// interrupt handler, it demultiplexes each packet and wakes the RPC thread.
func (s *Stack) datalinkLoop(p *firefly.Proc) {
	cfg := s.Cfg
	for {
		if len(s.dlQueue) == 0 {
			w := p.PrepareWait()
			s.dlWaiter = w
			p.Wait(w)
		}
		for len(s.dlQueue) > 0 {
			commit := s.dlQueue[0]
			copy(s.dlQueue, s.dlQueue[1:])
			s.dlQueue = s.dlQueue[:len(s.dlQueue)-1]
			p.Compute(cfg.DatalinkDemux())
			p.Compute(cfg.WakeupThread()) // the second wakeup, at thread level
			commit()
		}
	}
}

// callCommit returns the state change for an arriving call fragment on the
// server machine, run at the correct virtual time by the interrupt chain.
func (s *Stack) callCommit(pkt wire.PacketInfo, rb *buffer.Buf) func() {
	key := callKey{pkt.RPC.Activity, pkt.RPC.Seq}
	return func() {
		st := s.Table.activity(key.activity)
		switch {
		case key.seq < st.lastSeq:
			s.Stats.DupCalls++
			rb.Free()
			return

		case key.seq == st.lastSeq && st.lastSeq != 0:
			if st.rxFrags != nil {
				// Another fragment of the call being reassembled.
				s.storeCallFrag(st, key, pkt, rb)
				return
			}
			// Duplicate of the current call: if the result was already
			// sent, retransmit the retained result packets.
			s.Stats.DupCalls++
			if st.done && len(st.results) > 0 {
				s.Stats.ResultRetrans++
				for _, b := range st.results {
					s.M.Ctrl.QueueTx(append([]byte(nil), b.Bytes()...))
				}
				s.M.Ctrl.Prod()
			}
			rb.Free()
			return
		}
		// New call: recycle the previous conversation's retained result and
		// begin reassembly.
		st.lastSeq = key.seq
		st.done = false
		st.freeResults()
		st.rxFrags = make(map[uint16]*buffer.Buf)
		st.rxCount = pkt.RPC.FragCount
		st.rxHdr = pkt.RPC
		st.rxEP = wire.Endpoint{MAC: pkt.Eth.Src, IP: pkt.IP.Src, Port: pkt.UDP.SrcPort}
		s.storeCallFrag(st, key, pkt, rb)
	}
}

// storeCallFrag records one fragment; when the call is complete it is
// dispatched to a waiting server thread (or queued on the slow path).
func (s *Stack) storeCallFrag(st *activityState, key callKey, pkt wire.PacketInfo, rb *buffer.Buf) {
	if pkt.RPC.FragCount != st.rxCount {
		s.Stats.BadPackets++
		rb.Free()
		return
	}
	if _, dup := st.rxFrags[pkt.RPC.FragIndex]; dup {
		s.Stats.DupFrags++
		rb.Free()
		return
	}
	st.rxFrags[pkt.RPC.FragIndex] = rb
	if len(st.rxFrags) != int(st.rxCount) {
		return
	}

	// Complete: assemble the inbound call.
	ic := &inboundCall{
		key:      key,
		iface:    st.rxHdr.Interface,
		proc:     st.rxHdr.Proc,
		callerEP: st.rxEP,
	}
	if st.rxCount == 1 {
		b := st.rxFrags[0]
		info, perr := wire.ParsePacket(b.Bytes(), false)
		if perr != nil {
			s.Stats.BadPackets++
			b.Free()
			st.rxFrags = nil
			return
		}
		ic.args = info.Payload
		ic.bufs = []*buffer.Buf{b}
	} else {
		for i := uint16(0); i < st.rxCount; i++ {
			b := st.rxFrags[i]
			info, perr := wire.ParsePacket(b.Bytes(), false)
			if perr == nil {
				ic.args = append(ic.args, info.Payload...)
			}
			ic.bufs = append(ic.bufs, b)
		}
	}
	st.rxFrags = nil

	if e := s.Table.popIdleServer(); e != nil {
		e.call = ic
		s.M.Sched.Wakeup(e.waiter)
		return
	}
	// No thread waiting: queue for the next thread to re-register (the
	// slower path the fast path avoids).
	s.Stats.PendingQueued++
	s.Table.pending = append(s.Table.pending, ic)
}

// resultCommit returns the state change for an arriving result fragment on
// the caller machine.
func (s *Stack) resultCommit(pkt wire.PacketInfo, rb *buffer.Buf) func() {
	return func() {
		e := s.Table.LookupCall(pkt.RPC.Activity, pkt.RPC.Seq)
		if e == nil || e.resPayload != nil {
			s.Stats.DupResults++
			rb.Free()
			return
		}
		if e.resCount == 0 {
			e.resCount = pkt.RPC.FragCount
		}
		if _, dup := e.resFrags[pkt.RPC.FragIndex]; dup || pkt.RPC.FragCount != e.resCount {
			s.Stats.DupFrags++
			rb.Free()
			return
		}
		e.resFrags[pkt.RPC.FragIndex] = rb
		if len(e.resFrags) != int(e.resCount) {
			return
		}

		// Complete: the retained call packets will never need to be
		// retransmitted — recycle them at interrupt level, as the Firefly
		// handler does.
		if e.timer != nil {
			e.timer.Cancel()
		}
		e.freeCallBufs()
		if pkt.RPC.Type == wire.TypeReject {
			e.rejected = true
		}
		if e.resCount == 1 {
			info, err := wire.ParsePacket(rb.Bytes(), false)
			if err == nil {
				e.resPayload = info.Payload
			} else {
				e.resPayload = []byte{}
			}
		} else {
			var payload []byte
			for i := uint16(0); i < e.resCount; i++ {
				info, err := wire.ParsePacket(e.resFrags[i].Bytes(), false)
				if err == nil {
					payload = append(payload, info.Payload...)
				}
			}
			e.resPayload = payload
		}
		s.M.Sched.Wakeup(e.waiter)
	}
}

// scheduleRetransmit arms the retransmission timer for an outstanding call:
// on expiry every call fragment is retransmitted.
func (s *Stack) scheduleRetransmit(e *CallEntry) {
	cfg := s.Cfg
	e.timer = s.M.K.After(cfg.RetransTimeout(), func() {
		if e.resPayload != nil || e.callBufs == nil {
			return // completed or being torn down
		}
		if e.retries >= cfg.MaxRetransmits() {
			e.err = ErrCallFailed
			s.Table.CompleteCall(e)
			e.freeCallBufs()
			s.M.Sched.Wakeup(e.waiter)
			return
		}
		e.retries++
		s.Stats.Retransmits++
		for _, b := range e.callBufs {
			s.M.Ctrl.QueueTx(append([]byte(nil), b.Bytes()...))
		}
		s.M.Ctrl.Prod()
		s.scheduleRetransmit(e)
	})
}
