package simstack

import (
	"bytes"
	"testing"

	"fireflyrpc/internal/costmodel"
	"fireflyrpc/internal/firefly"
	"fireflyrpc/internal/wire"
)

// runOneCall drives a single thread through one call and returns its error.
func runOneCall(w *World, spec *ProcSpec, args, result []byte, local bool) error {
	var err error
	var client *Client
	if local {
		client = w.BindLocal()
	} else {
		client = w.BindTest()
	}
	w.Caller.Sched.SpawnProc("t", func(p *firefly.Proc) {
		if local {
			err = client.LocalCall(p, spec, args, result)
		} else {
			err = client.Call(p, spec, args, result)
		}
		w.K.Stop()
	})
	w.K.Run()
	return err
}

func TestNullLatencyMatchesPaper(t *testing.T) {
	cfg := costmodel.NewConfig()
	w := NewWorld(&cfg, 1)
	r := w.Run(NullSpec(&cfg), 1, 500)
	lat := r.LatencyMicros()
	// Paper Table I: 2661 µs per call with 1 thread (±5% tolerance: the
	// paper's own accounting closed to within 5%).
	if lat < 2530 || lat < 2500 || lat > 2790 {
		t.Fatalf("Null latency = %.0f µs, want 2661 ± 5%%", lat)
	}
	if r.Errors != 0 {
		t.Fatalf("%d call errors", r.Errors)
	}
}

func TestMaxResultLatencyMatchesPaper(t *testing.T) {
	cfg := costmodel.NewConfig()
	w := NewWorld(&cfg, 1)
	r := w.Run(MaxResultSpec(&cfg), 1, 300)
	lat := r.LatencyMicros()
	// Paper Table I: 6347 µs; our model over-accounts by ~5% just as the
	// paper's did (Table VIII over-accounts by 177 µs).
	if lat < 6000 || lat > 7000 {
		t.Fatalf("MaxResult latency = %.0f µs, want 6347 ± 10%%", lat)
	}
}

func TestNullSaturationMatchesPaper(t *testing.T) {
	cfg := costmodel.NewConfig()
	w := NewWorld(&cfg, 1)
	r := w.Run(NullSpec(&cfg), 6, 3000)
	rate := r.CallsPerSecond()
	// Paper Table I: ~680-741 calls/second at 6-7 threads.
	if rate < 640 || rate > 820 {
		t.Fatalf("Null saturation = %.0f calls/s, want ~740 ± 10%%", rate)
	}
}

func TestMaxResultThroughputMatchesPaper(t *testing.T) {
	cfg := costmodel.NewConfig()
	w := NewWorld(&cfg, 1)
	r := w.Run(MaxResultSpec(&cfg), 5, 2500)
	mbps := r.MegabitsPerSecond(wire.MaxSinglePacketPayload)
	// Paper Table I: 4.65-4.70 Mb/s at saturation.
	if mbps < 4.2 || mbps > 5.1 {
		t.Fatalf("MaxResult throughput = %.2f Mb/s, want ~4.65 ± 10%%", mbps)
	}
	// §2.1: about 1.2 CPUs on the caller, slightly less on the server.
	if r.CallerCPU < 0.9 || r.CallerCPU > 1.5 {
		t.Errorf("caller CPU = %.2f, want ~1.2", r.CallerCPU)
	}
	if r.ServerCPU >= r.CallerCPU {
		t.Errorf("server CPU (%.2f) should be below caller CPU (%.2f)", r.ServerCPU, r.CallerCPU)
	}
}

func TestMaxResultPayloadRoundTrip(t *testing.T) {
	cfg := costmodel.NewConfig()
	w := NewWorld(&cfg, 1)
	spec := MaxResultSpec(&cfg)
	result := make([]byte, spec.ResultBytes)
	if err := runOneCall(w, spec, nil, result, false); err != nil {
		t.Fatal(err)
	}
	// The handler writes byte(i) at each position; the caller stub's single
	// copy must deliver exactly that.
	for i, b := range result {
		if b != byte(i) {
			t.Fatalf("result[%d] = %d, want %d", i, b, byte(i))
		}
	}
}

func TestMaxArgPayloadReachesServer(t *testing.T) {
	cfg := costmodel.NewConfig()
	w := NewWorld(&cfg, 1)
	spec := w.Test.Procs[ProcMaxArg] // the instance the server dispatches to
	var got []byte
	spec.Handler = func(args, result []byte) {
		got = append([]byte(nil), args...)
	}
	args := make([]byte, spec.ArgBytes)
	for i := range args {
		args[i] = byte(255 - i%251)
	}
	if err := runOneCall(w, spec, args, nil, false); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, args) {
		t.Fatal("server saw different argument bytes than the caller sent")
	}
}

func TestUnknownProcedureRejected(t *testing.T) {
	cfg := costmodel.NewConfig()
	w := NewWorld(&cfg, 1)
	bogus := &ProcSpec{ID: 99, Name: "Bogus"}
	err := runOneCall(w, bogus, nil, nil, false)
	if err != ErrUnbound {
		t.Fatalf("err = %v, want ErrUnbound", err)
	}
}

func TestRetransmissionRecoversLoss(t *testing.T) {
	cfg := costmodel.NewConfig()
	w := NewWorld(&cfg, 42)
	w.Seg.LossRate = 0.2 // drop a fifth of all frames
	r := w.Run(NullSpec(&cfg), 2, 120)
	if r.Errors != 0 {
		t.Fatalf("%d calls failed despite retransmission", r.Errors)
	}
	if w.CallerStack.Stats.Retransmits == 0 {
		t.Fatal("no retransmissions under 20% loss")
	}
	// Duplicate-suppression: retransmitted calls that raced their results
	// must not re-execute the procedure.
	if w.ServerStack.Stats.ResultsSent > int64(r.Calls)+w.ServerStack.Stats.ResultRetrans+20 {
		t.Fatalf("server executed too many calls: %+v", w.ServerStack.Stats)
	}
}

func TestDuplicateCallGetsRetainedResult(t *testing.T) {
	// Drop only result packets so the caller retransmits and the server
	// must answer from its retained result packet without re-executing.
	cfg := costmodel.NewConfig()
	w := NewWorld(&cfg, 7)
	executions := 0
	spec := w.Test.Procs[ProcNull]
	spec.Handler = func(args, result []byte) { executions++ }

	client := w.BindTest()
	w.Caller.Sched.SpawnProc("t", func(p *firefly.Proc) {
		if err := client.Call(p, spec, nil, nil); err != nil {
			t.Errorf("first call failed: %v", err)
		}
		w.K.Stop()
	})
	// Lose the first result: there is no direct hook, so approximate with
	// high loss during the first exchange only.
	w.Seg.LossRate = 0.5
	w.K.After(1e9, func() { w.Seg.LossRate = 0 }) // heal after 1 virtual second
	w.K.Run()
	if w.ServerStack.Stats.DupCalls > 0 && w.ServerStack.Stats.ResultRetrans == 0 {
		t.Fatal("duplicate call did not trigger result retransmission")
	}
}

func TestCallFailsAfterRetransmitLimit(t *testing.T) {
	cfg := costmodel.NewConfig()
	w := NewWorld(&cfg, 3)
	w.Seg.LossRate = 1.0 // nothing gets through
	err := runOneCall(w, NullSpec(&cfg), nil, nil, false)
	if err != ErrCallFailed {
		t.Fatalf("err = %v, want ErrCallFailed", err)
	}
	if int(w.CallerStack.Stats.Retransmits) != cfg.MaxRetransmits() {
		t.Fatalf("retransmits = %d, want %d", w.CallerStack.Stats.Retransmits, cfg.MaxRetransmits())
	}
}

func TestBufferPoolBalancedAfterRun(t *testing.T) {
	cfg := costmodel.NewConfig()
	w := NewWorld(&cfg, 1)
	r := w.Run(NullSpec(&cfg), 3, 600)
	if r.Errors != 0 {
		t.Fatal("errors during run")
	}
	// All caller-side buffers must be back in the pool: call packets are
	// recycled when results arrive, result packets freed by the Ender.
	cs := w.CallerStack.Pool.Stats()
	if cs.InUse != 0 {
		t.Fatalf("caller pool leaks %d buffers", cs.InUse)
	}
	// The server retains at most one result buffer per activity for
	// retransmission — exactly the paper's scheme.
	ss := w.ServerStack.Pool.Stats()
	if ss.InUse > 3 {
		t.Fatalf("server pool holds %d buffers, want ≤ 3 (one retained result per activity)", ss.InUse)
	}
}

func TestLocalNullLatencyMatchesFootnote(t *testing.T) {
	cfg := costmodel.NewConfig()
	cfg.TimingJitter = 0
	w := NewWorld(&cfg, 1)
	w.RegisterLocal(2)
	client := w.BindLocal()
	var start, end int64
	w.Caller.Sched.SpawnProc("t", func(p *firefly.Proc) {
		// Warm one call, then measure.
		if err := client.LocalCall(p, NullSpec(&cfg), nil, nil); err != nil {
			t.Errorf("local call: %v", err)
		}
		start = int64(p.Now())
		if err := client.LocalCall(p, NullSpec(&cfg), nil, nil); err != nil {
			t.Errorf("local call: %v", err)
		}
		end = int64(p.Now())
		w.K.Stop()
	})
	w.K.Run()
	lat := float64(end-start) / 1000
	// Footnote to §2.2: local RPC to Null() takes 937 µs.
	if lat < 880 || lat > 1000 {
		t.Fatalf("local Null latency = %.0f µs, want ~937", lat)
	}
}

func TestLocalCallPayloadRoundTrip(t *testing.T) {
	cfg := costmodel.NewConfig()
	w := NewWorld(&cfg, 1)
	w.RegisterLocal(2)
	spec := MaxResultSpec(&cfg)
	result := make([]byte, spec.ResultBytes)
	if err := runOneCall(w, spec, nil, result, true); err != nil {
		t.Fatal(err)
	}
	for i, b := range result[:64] {
		if b != byte(i) {
			t.Fatalf("local result[%d] = %d, want %d", i, b, byte(i))
		}
	}
}

func TestExerciserStubsFaster(t *testing.T) {
	std := costmodel.NewConfig()
	ws := NewWorld(&std, 1)
	rs := ws.Run(NullSpec(&std), 1, 400)

	ex := costmodel.NewConfig()
	ex.ExerciserStubs = true
	we := NewWorld(&ex, 1)
	re := we.Run(NullSpec(&ex), 1, 400)

	diff := rs.LatencyMicros() - re.LatencyMicros()
	// §5: hand stubs are 140 µs faster for Null().
	if diff < 100 || diff > 180 {
		t.Fatalf("exerciser stubs save %.0f µs, want ~140", diff)
	}
}

func TestUniprocessorSharplySlower(t *testing.T) {
	multi := costmodel.NewConfig()
	multi.ExerciserStubs = true
	multi.SwappedLines = true
	wm := NewWorld(&multi, 1)
	rm := wm.Run(NullSpec(&multi), 1, 400)

	uni := costmodel.NewConfig()
	uni.CallerCPUs = 1
	uni.ExerciserStubs = true
	uni.SwappedLines = true
	wu := NewWorld(&uni, 1)
	ru := wu.Run(NullSpec(&uni), 1, 400)

	// Table X: 1/5 is ~47% slower than 5/5 (3.96 s vs 2.69 s per 1000).
	ratio := ru.LatencyMicros() / rm.LatencyMicros()
	if ratio < 1.3 || ratio > 1.8 {
		t.Fatalf("uniprocessor caller ratio = %.2f, want ~1.47", ratio)
	}
}

func TestUnswappedUniprocLosesPackets(t *testing.T) {
	cfg := costmodel.NewConfig()
	cfg.CallerCPUs = 1
	cfg.ServerCPUs = 1
	cfg.ExerciserStubs = true
	cfg.SwappedLines = false // the §5 bug present
	w := NewWorld(&cfg, 5)
	r := w.Run(NullSpec(&cfg), 1, 600)
	drops := w.CallerStack.Stats.UnswappedDrops + w.ServerStack.Stats.UnswappedDrops
	if drops == 0 {
		t.Skip("no drops occurred in this seed's 600 calls; statistical")
	}
	// Each drop costs a ~600 ms retransmission: mean latency balloons well
	// beyond the fixed version's ~4.8 ms (the paper saw ~20 ms averages).
	if r.LatencyMicros() < 5400 {
		t.Fatalf("unswapped uniproc latency = %.0f µs; expected >> 4800 with %d drops",
			r.LatencyMicros(), drops)
	}
	if w.CallerStack.Stats.Retransmits == 0 && w.ServerStack.Stats.ResultRetrans == 0 {
		t.Fatal("drops occurred but no retransmissions recovered them")
	}
}

func TestBusyWaitSavesWakeups(t *testing.T) {
	std := costmodel.NewConfig()
	ws := NewWorld(&std, 1)
	rs := ws.Run(NullSpec(&std), 1, 400)

	bw := costmodel.NewConfig()
	bw.BusyWait = true
	wb := NewWorld(&bw, 1)
	rb := wb.Run(NullSpec(&bw), 1, 400)

	saved := rs.LatencyMicros() - rb.LatencyMicros()
	// §4.2.7 estimates ~440 µs saved per RPC (two wakeups).
	if saved < 320 || saved > 520 {
		t.Fatalf("busy wait saves %.0f µs, want ~400-440", saved)
	}
}

func TestInterruptImplSlowdown(t *testing.T) {
	asm := costmodel.NewConfig()
	wa := NewWorld(&asm, 1)
	ra := wa.Run(NullSpec(&asm), 1, 400)

	mod := costmodel.NewConfig()
	mod.Interrupt = costmodel.InterruptOriginalModula
	wm := NewWorld(&mod, 1)
	rm := wm.Run(NullSpec(&mod), 1, 400)

	// Table IX: 758 vs 177 µs per interrupt, two receive interrupts per
	// RPC: expect ~1160 µs slower.
	diff := rm.LatencyMicros() - ra.LatencyMicros()
	if diff < 950 || diff > 1400 {
		t.Fatalf("original Modula-2+ interrupt routine adds %.0f µs, want ~1160", diff)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (float64, Counters) {
		cfg := costmodel.NewConfig()
		w := NewWorld(&cfg, 1234)
		r := w.Run(NullSpec(&cfg), 3, 300)
		return r.LatencyMicros(), w.CallerStack.Stats
	}
	l1, c1 := run()
	l2, c2 := run()
	if l1 != l2 || c1 != c2 {
		t.Fatalf("same seed produced different runs: %v vs %v", l1, l2)
	}
}

func TestIntArgsSpecPayload(t *testing.T) {
	cfg := costmodel.NewConfig()
	for _, n := range []int{1, 2, 4} {
		spec := IntArgsSpec(&cfg, n)
		if spec.ArgBytes != 4*n {
			t.Errorf("IntArgs(%d) payload = %d, want %d", n, spec.ArgBytes, 4*n)
		}
	}
	if TextArgSpec(&cfg, 128, false).ArgBytes != 1+4+128 {
		t.Error("TextArg(128) payload wrong")
	}
	if TextArgSpec(&cfg, 0, true).ArgBytes != 1 {
		t.Error("NIL TextArg payload wrong")
	}
}

func TestInterfaceSpecDuplicatePanics(t *testing.T) {
	cfg := costmodel.NewConfig()
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate proc id did not panic")
		}
	}()
	NewInterface("Dup", 1, NullSpec(&cfg), NullSpec(&cfg))
}

func TestServerThreadShortage(t *testing.T) {
	// With a single server thread and 3 concurrent callers, calls must
	// still complete via the pending queue (the slower path).
	cfg := costmodel.NewConfig()
	cfg.ServerThreads = 1
	w := NewWorld(&cfg, 1)
	r := w.Run(NullSpec(&cfg), 3, 300)
	if r.Errors != 0 {
		t.Fatalf("%d errors with a single server thread", r.Errors)
	}
	if w.ServerStack.Stats.PendingQueued == 0 {
		t.Fatal("expected some calls to take the pending (no-thread-waiting) path")
	}
}

func TestLatencyPercentiles(t *testing.T) {
	cfg := costmodel.NewConfig()
	w := NewWorld(&cfg, 1)
	r := w.Run(NullSpec(&cfg), 3, 600)
	if r.P50Micros <= 0 || r.P95Micros < r.P50Micros || r.MaxMicros < r.P95Micros {
		t.Fatalf("percentiles disordered: p50=%v p95=%v max=%v", r.P50Micros, r.P95Micros, r.MaxMicros)
	}
	// With three threads the median sits above the single-thread latency
	// but within the same order of magnitude.
	if r.P50Micros < 2500 || r.P50Micros > 15000 {
		t.Fatalf("p50 = %v µs out of plausible range", r.P50Micros)
	}
}
