package simstack

import (
	"testing"

	"fireflyrpc/internal/costmodel"
	"fireflyrpc/internal/wire"
)

func TestFragmentedArgsRoundTrip(t *testing.T) {
	cfg := costmodel.NewConfig()
	w := NewWorld(&cfg, 1)
	const n = 5000 // four fragments
	spec := &ProcSpec{
		ID:       77,
		Name:     "BigArgs",
		ArgBytes: n,
		Service:  cfg.NullProc(),
	}
	var got []byte
	spec.Handler = nil
	serverSpec := &ProcSpec{
		ID:       77,
		Name:     "BigArgs",
		ArgBytes: n,
		Service:  cfg.NullProc(),
		Handler:  func(args, result []byte) { got = append([]byte(nil), args...) },
	}
	w.RegisterProc(serverSpec)
	args := make([]byte, n)
	for i := range args {
		args[i] = byte(i * 13)
	}
	if err := runOneCall(w, spec, args, nil, false); err != nil {
		t.Fatal(err)
	}
	// The handler only sees args when ResultBytes==0... it is invoked in
	// sendSinglePacketResult/sendFragmentedResult; ResultBytes==0 means
	// single in-place path with empty result.
	if len(got) != n {
		t.Fatalf("server saw %d arg bytes, want %d", len(got), n)
	}
	for i, b := range got {
		if b != byte(i*13) {
			t.Fatalf("args[%d] = %d, want %d", i, b, byte(i*13))
		}
	}
	if w.CallerStack.Stats.FragmentsSent != 4 {
		t.Fatalf("caller sent %d fragments, want 4", w.CallerStack.Stats.FragmentsSent)
	}
}

func TestStreamedResultRoundTrip(t *testing.T) {
	cfg := costmodel.NewConfig()
	w := NewWorld(&cfg, 1)
	const packets = 8
	spec := StreamResultSpec(&cfg, packets*wire.MaxSinglePacketPayload)
	w.RegisterProc(spec)
	result := make([]byte, spec.ResultBytes)
	if err := runOneCall(w, spec, nil, result, false); err != nil {
		t.Fatal(err)
	}
	for i, b := range result {
		if b != byte(i*7) {
			t.Fatalf("result[%d] = %d, want %d", i, b, byte(i*7))
		}
	}
	// One wakeup at the caller despite 8 result packets: that is the point
	// of streaming. (Wakeups == calls processed + the barrier machinery.)
	if w.ServerStack.Stats.FragmentsSent < packets {
		t.Fatalf("server sent %d fragments, want ≥ %d", w.ServerStack.Stats.FragmentsSent, packets)
	}
}

func TestStreamingBeatsThreadsOnUniprocessor(t *testing.T) {
	const packets = 8
	// Parallel threads on 1/1 processors.
	cfgT := costmodel.NewConfig()
	cfgT.CallerCPUs, cfgT.ServerCPUs = 1, 1
	cfgT.ExerciserStubs = true
	cfgT.SwappedLines = true
	wT := NewWorld(&cfgT, 1)
	rT := wT.Run(MaxResultSpec(&cfgT), 4, 1200)
	threadMbps := rT.MegabitsPerSecond(wire.MaxSinglePacketPayload)

	// Streaming, one thread, same processors.
	cfgS := costmodel.NewConfig()
	cfgS.CallerCPUs, cfgS.ServerCPUs = 1, 1
	cfgS.ExerciserStubs = true
	cfgS.SwappedLines = true
	wS := NewWorld(&cfgS, 1)
	spec := StreamResultSpec(&cfgS, packets*wire.MaxSinglePacketPayload)
	wS.RegisterProc(spec)
	rS := wS.Run(spec, 1, 400)
	streamMbps := rS.MegabitsPerSecond(packets * wire.MaxSinglePacketPayload)

	// §5: streaming needs fewer context switches, so it should win on the
	// uniprocessor by a clear margin.
	if streamMbps < threadMbps*1.2 {
		t.Fatalf("streaming %.2f Mb/s vs threads %.2f Mb/s; expected streaming ≥ 1.2×", streamMbps, threadMbps)
	}
}

func TestFragmentedLossRecovery(t *testing.T) {
	cfg := costmodel.NewConfig()
	w := NewWorld(&cfg, 11)
	w.Seg.LossRate = 0.1
	spec := StreamResultSpec(&cfg, 3*wire.MaxSinglePacketPayload)
	w.RegisterProc(spec)
	r := w.Run(spec, 1, 100)
	if r.Errors != 0 {
		t.Fatalf("%d streamed calls failed under 10%% loss", r.Errors)
	}
	if w.CallerStack.Stats.Retransmits == 0 && w.ServerStack.Stats.ResultRetrans == 0 {
		t.Fatal("loss occurred but no retransmissions")
	}
}

func TestTraditionalDemuxSlower(t *testing.T) {
	base := costmodel.NewConfig()
	wb := NewWorld(&base, 1)
	rb := wb.Run(NullSpec(&base), 1, 400)

	trad := costmodel.NewConfig()
	trad.TraditionalDemux = true
	wt := NewWorld(&trad, 1)
	rt := wt.Run(NullSpec(&trad), 1, 400)

	delta := rt.LatencyMicros() - rb.LatencyMicros()
	// Two extra wakeups (one per packet) plus datalink demux work: the
	// §3.2 "doubles the number of wakeups" penalty, roughly 2×(220+79+100)
	// ≈ 800 µs per call.
	if delta < 500 || delta > 1100 {
		t.Fatalf("traditional demux adds %.0f µs, want ~800", delta)
	}
	if wt.CallerStack.Stats.DatalinkWakeups == 0 {
		t.Fatal("datalink thread never woken")
	}
}

func TestSecureBuffersSlower(t *testing.T) {
	base := costmodel.NewConfig()
	wb := NewWorld(&base, 1)
	rb := wb.Run(MaxResultSpec(&base), 1, 300)

	sec := costmodel.NewConfig()
	sec.SecureBuffers = true
	ws := NewWorld(&sec, 1)
	rs := ws.Run(MaxResultSpec(&sec), 1, 300)

	delta := rs.LatencyMicros() - rb.LatencyMicros()
	// Copies of the 74-byte call at the server and the 1514-byte result at
	// the caller: ~(40+22) + (40+454) ≈ 560 µs.
	if delta < 350 || delta > 800 {
		t.Fatalf("secure buffers add %.0f µs on MaxResult, want ~560", delta)
	}
}

func TestFragmentLimit(t *testing.T) {
	cfg := costmodel.NewConfig()
	w := NewWorld(&cfg, 1)
	spec := &ProcSpec{ID: 99, Name: "Huge", ArgBytes: (maxFragments + 1) * wire.MaxSinglePacketPayload}
	err := runOneCall(w, spec, make([]byte, spec.ArgBytes), nil, false)
	if err != ErrTooLong {
		t.Fatalf("err = %v, want ErrTooLong", err)
	}
}

func TestBufferPoolBalancedAfterStreaming(t *testing.T) {
	cfg := costmodel.NewConfig()
	w := NewWorld(&cfg, 1)
	spec := StreamResultSpec(&cfg, 4*wire.MaxSinglePacketPayload)
	w.RegisterProc(spec)
	r := w.Run(spec, 2, 200)
	if r.Errors != 0 {
		t.Fatal("errors during streamed run")
	}
	if got := w.CallerStack.Pool.Stats().InUse; got != 0 {
		t.Fatalf("caller pool leaks %d buffers after streaming", got)
	}
	// Server retains the last result's fragments per activity (2 clients ×
	// 4 fragments), nothing more.
	if got := w.ServerStack.Pool.Stats().InUse; got > 8 {
		t.Fatalf("server pool holds %d buffers, want ≤ 8 retained", got)
	}
}

func TestBufferExhaustionRecovered(t *testing.T) {
	// A tiny receive pool on the server drops packets when it runs dry —
	// the paper's behavior when the controller's receive queue is empty —
	// and retransmission recovers.
	cfg := costmodel.NewConfig()
	k := NewWorld(&cfg, 21)
	// Replace the server stack's pool with a tight one: barely more than
	// the four retained results the activities pin, so bursts run it dry.
	k.ServerStack.Pool = newTinyPool(6)
	r := k.Run(NullSpec(&cfg), 4, 200)
	if r.Errors != 0 {
		t.Fatalf("%d calls failed despite retransmission", r.Errors)
	}
	if k.ServerStack.Stats.BufferDrops == 0 {
		t.Skip("pool never exhausted in this schedule")
	}
	if k.CallerStack.Stats.Retransmits == 0 {
		t.Fatal("drops occurred but no retransmissions recovered them")
	}
}
