package simstack

import (
	"fireflyrpc/internal/buffer"
	"fireflyrpc/internal/costmodel"
	"fireflyrpc/internal/sim"
	"fireflyrpc/internal/wire"
)

// ProcSpec describes one remote procedure: wire sizes, the marshalling costs
// the generated stubs incur on each side (Tables II–V), the service time of
// the procedure body, and the server-side handler that computes real result
// bytes from real argument bytes.
type ProcSpec struct {
	ID   uint16
	Name string

	// ArgBytes and ResultBytes are the call/result packet payload sizes.
	ArgBytes    int
	ResultBytes int

	// CallerMarshal is charged in the caller stub before sending (copying
	// by-value and VAR IN arguments into the call packet).
	CallerMarshal sim.Duration
	// CallerUnmarshal is charged in the caller stub after the result
	// arrives (the single copy of VAR OUT results into caller variables).
	CallerUnmarshal sim.Duration
	// ServerUnmarshal is charged in the server stub before the procedure
	// (copying by-value arguments to the stack, allocating Texts; zero for
	// VAR arguments, which are passed as addresses into the packet).
	ServerUnmarshal sim.Duration
	// ServerMarshal is charged in the server stub after the procedure
	// (zero for VAR OUT results written in place).
	ServerMarshal sim.Duration
	// Service is the procedure body's execution time.
	Service sim.Duration

	// Handler computes the result payload from the argument payload. args
	// aliases the received call packet (VAR IN semantics); result aliases
	// the result packet under construction (VAR OUT semantics). May be nil
	// for procedures with no results.
	Handler func(args, result []byte)
}

// InterfaceSpec is a remote interface: a named, versioned set of procedures.
type InterfaceSpec struct {
	Name    string
	Version uint32
	ID      uint32
	Procs   map[uint16]*ProcSpec
}

// NewInterface creates an interface spec with its wire identifier.
func NewInterface(name string, version uint32, procs ...*ProcSpec) *InterfaceSpec {
	m := make(map[uint16]*ProcSpec, len(procs))
	for _, p := range procs {
		if _, dup := m[p.ID]; dup {
			panic("simstack: duplicate proc id in interface " + name)
		}
		m[p.ID] = p
	}
	return &InterfaceSpec{
		Name:    name,
		Version: version,
		ID:      wire.InterfaceID(name, version),
		Procs:   m,
	}
}

// Proc IDs of the paper's Test interface.
const (
	ProcNull      = 1
	ProcMaxResult = 2
	ProcMaxArg    = 3
	ProcStream    = 4
)

// TestInterface builds the paper's Test interface for a configuration:
//
//	PROCEDURE Null();
//	PROCEDURE MaxResult(VAR OUT buffer: ARRAY OF CHAR);  -- 1440 bytes
//	PROCEDURE MaxArg(VAR IN buffer: ARRAY OF CHAR);      -- 1440 bytes
func TestInterface(cfg *costmodel.Config) *InterfaceSpec {
	return NewInterface("Test", 1,
		NullSpec(cfg), MaxResultSpec(cfg), MaxArgSpec(cfg))
}

// NullSpec is the no-argument, no-result base-latency probe.
func NullSpec(cfg *costmodel.Config) *ProcSpec {
	return &ProcSpec{
		ID:      ProcNull,
		Name:    "Null",
		Service: cfg.NullProc(),
	}
}

// MaxResultSpec returns a ProcSpec for MaxResult(b): a single 1440-byte VAR
// OUT result. The server writes it directly into the result packet (no
// server-side copy); the single copy is the caller stub's, at 550 µs
// (Table IV).
func MaxResultSpec(cfg *costmodel.Config) *ProcSpec {
	return &ProcSpec{
		ID:              ProcMaxResult,
		Name:            "MaxResult",
		ResultBytes:     wire.MaxSinglePacketPayload,
		CallerUnmarshal: cfg.MarshalVarArray(wire.MaxSinglePacketPayload),
		Service:         cfg.NullProc(),
		Handler: func(args, result []byte) {
			for i := range result {
				result[i] = byte(i)
			}
		},
	}
}

// MaxArgSpec returns a ProcSpec for MaxArg(b): a single 1440-byte VAR IN
// argument, the mirror image of MaxResult.
func MaxArgSpec(cfg *costmodel.Config) *ProcSpec {
	return &ProcSpec{
		ID:            ProcMaxArg,
		Name:          "MaxArg",
		ArgBytes:      wire.MaxSinglePacketPayload,
		CallerMarshal: cfg.MarshalVarArray(wire.MaxSinglePacketPayload),
		Service:       cfg.NullProc(),
	}
}

// StreamResultSpec returns a procedure whose result is n bytes streamed as
// back-to-back fragments — the §5 streaming strategy for bulk transfer: one
// call moves many packets with a single wakeup at each end, instead of many
// threads each moving one packet per call. The server pays one marshalling
// copy into the fragment stream and the caller one copy out of it.
func StreamResultSpec(cfg *costmodel.Config, n int) *ProcSpec {
	return &ProcSpec{
		ID:              ProcStream,
		Name:            "StreamResult",
		ResultBytes:     n,
		ServerMarshal:   cfg.MarshalVarArray(n),
		CallerUnmarshal: cfg.MarshalVarArray(n),
		Service:         cfg.NullProc(),
		Handler: func(args, result []byte) {
			for i := range result {
				result[i] = byte(i * 7)
			}
		},
	}
}

// Marshalling-table probes (Tables II–V): each is Null() plus the indicated
// argument, so its incremental cost over Null is exactly the table's value.

// IntArgsSpec passes n 4-byte integers by value (Table II): copied into the
// call packet by the caller stub and out to the server's stack by the server
// stub, 8 µs per integer in total.
func IntArgsSpec(cfg *costmodel.Config, n int) *ProcSpec {
	total := cfg.MarshalInts(n)
	return &ProcSpec{
		ID:              uint16(16 + n),
		Name:            "IntArgs",
		ArgBytes:        4 * n,
		CallerMarshal:   total / 2,
		ServerUnmarshal: total - total/2,
		Service:         cfg.NullProc(),
	}
}

// FixedArrayOutSpec passes a fixed-length n-byte array VAR OUT (Table III):
// the only copy is the caller stub's on return.
func FixedArrayOutSpec(cfg *costmodel.Config, n int) *ProcSpec {
	return &ProcSpec{
		ID:              uint16(64),
		Name:            "FixedArrayOut",
		ResultBytes:     n,
		CallerUnmarshal: cfg.MarshalFixedArray(n),
		Service:         cfg.NullProc(),
	}
}

// VarArrayOutSpec passes a variable-length n-byte array VAR OUT (Table IV).
func VarArrayOutSpec(cfg *costmodel.Config, n int) *ProcSpec {
	return &ProcSpec{
		ID:              uint16(65),
		Name:            "VarArrayOut",
		ResultBytes:     n,
		CallerUnmarshal: cfg.MarshalVarArray(n),
		Service:         cfg.NullProc(),
	}
}

// TextArgSpec passes a Text.T of n bytes (or NIL) by value (Table V): the
// caller stub copies the string into the call packet; the server stub
// allocates a fresh Text and copies into it.
func TextArgSpec(cfg *costmodel.Config, n int, isNil bool) *ProcSpec {
	total := cfg.MarshalText(n, isNil)
	bytes := 1
	if !isNil {
		bytes = 1 + 4 + n
	}
	return &ProcSpec{
		ID:              uint16(66),
		Name:            "TextArg",
		ArgBytes:        bytes,
		CallerMarshal:   total * 2 / 5, // copy into packet
		ServerUnmarshal: total - total*2/5,
		Service:         cfg.NullProc(),
	}
}

// newTinyPool is a test hook for buffer-exhaustion experiments.
func newTinyPool(n int) *buffer.Pool { return buffer.NewPool(n) }
