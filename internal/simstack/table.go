package simstack

import (
	"fireflyrpc/internal/buffer"
	"fireflyrpc/internal/firefly"
	"fireflyrpc/internal/sim"
	"fireflyrpc/internal/wire"
)

// CallTable is the shared RPC call table: it holds calling threads waiting
// for result packets and server threads waiting for call packets, each entry
// retaining packet buffers for possible retransmission. On the Firefly the
// table lives in memory shared between all user address spaces and the Nub so
// the Ethernet interrupt handler can find and awaken the waiting thread
// directly; here it is a per-machine structure reachable from the simulated
// interrupt chain, which models the same thing.
type CallTable struct {
	calls       map[callKey]*CallEntry
	idleServers []*ServerEntry
	pending     []*inboundCall
	activities  map[uint64]*activityState
}

type callKey struct {
	activity uint64
	seq      uint32
}

// CallEntry is an outstanding call registered by a calling thread.
type CallEntry struct {
	key      callKey
	waiter   *firefly.Waiter
	callBufs []*buffer.Buf // retained call fragments, for retransmission

	resFrags   map[uint16]*buffer.Buf
	resCount   uint16
	resPayload []byte // assembled result payload (aliases for 1 fragment)
	rejected   bool

	err     error
	timer   *sim.Timer
	retries int
}

// freeCallBufs recycles the retained call packets (result arrived or call
// abandoned).
func (e *CallEntry) freeCallBufs() {
	for _, b := range e.callBufs {
		b.Free()
	}
	e.callBufs = nil
}

// freeResultBufs releases the result fragments after unmarshalling.
func (e *CallEntry) freeResultBufs() {
	for _, b := range e.resFrags {
		b.Free()
	}
	e.resFrags = nil
}

// inboundCall is a fully received call ready for a server thread: header
// identity plus the assembled argument bytes and the packet buffers they
// live in.
type inboundCall struct {
	key      callKey
	iface    uint32
	proc     uint16
	callerEP wire.Endpoint
	args     []byte        // aliases bufs[0]'s payload when single-fragment
	bufs     []*buffer.Buf // call packet buffers (reused for the result)
}

// ServerEntry is an idle server thread waiting in the table.
type ServerEntry struct {
	waiter *firefly.Waiter
	call   *inboundCall // attached by the interrupt handler
}

// activityState is the server's per-conversation record: duplicate
// suppression, reassembly of the current call, and the retained last result
// for retransmission.
type activityState struct {
	lastSeq uint32
	done    bool          // result for lastSeq has been sent
	results []*buffer.Buf // retained result packets

	rxFrags map[uint16]*buffer.Buf // current call being reassembled
	rxCount uint16
	rxHdr   wire.RPCHeader
	rxEP    wire.Endpoint
}

func newCallTable() *CallTable {
	return &CallTable{
		calls:      make(map[callKey]*CallEntry),
		activities: make(map[uint64]*activityState),
	}
}

// RegisterCall enters an outstanding call in the table.
func (t *CallTable) RegisterCall(activity uint64, seq uint32, w *firefly.Waiter, callBufs []*buffer.Buf) *CallEntry {
	e := &CallEntry{
		key:      callKey{activity, seq},
		waiter:   w,
		callBufs: callBufs,
		resFrags: make(map[uint16]*buffer.Buf),
	}
	t.calls[e.key] = e
	return e
}

// LookupCall finds an outstanding call.
func (t *CallTable) LookupCall(activity uint64, seq uint32) *CallEntry {
	return t.calls[callKey{activity, seq}]
}

// CompleteCall removes an entry (result attached or call failed).
func (t *CallTable) CompleteCall(e *CallEntry) {
	delete(t.calls, e.key)
}

// RegisterServer parks a server thread in the table; if a call is already
// pending (the slow path), it is returned immediately and the thread should
// not wait.
func (t *CallTable) RegisterServer(w *firefly.Waiter) (*ServerEntry, *inboundCall) {
	if len(t.pending) > 0 {
		ic := t.pending[0]
		copy(t.pending, t.pending[1:])
		t.pending = t.pending[:len(t.pending)-1]
		return nil, ic
	}
	e := &ServerEntry{waiter: w}
	t.idleServers = append(t.idleServers, e)
	return e, nil
}

// popIdleServer removes and returns the longest-idle server thread.
func (t *CallTable) popIdleServer() *ServerEntry {
	if len(t.idleServers) == 0 {
		return nil
	}
	e := t.idleServers[0]
	copy(t.idleServers, t.idleServers[1:])
	t.idleServers = t.idleServers[:len(t.idleServers)-1]
	return e
}

// activity returns (creating if needed) the server-side conversation state.
func (t *CallTable) activity(id uint64) *activityState {
	st := t.activities[id]
	if st == nil {
		st = &activityState{}
		t.activities[id] = st
	}
	return st
}

// freeResults recycles the retained result packets (next call arrived).
func (st *activityState) freeResults() {
	for _, b := range st.results {
		b.Free()
	}
	st.results = nil
}

// IdleServers reports how many server threads are waiting.
func (t *CallTable) IdleServers() int { return len(t.idleServers) }

// Outstanding reports how many calls are registered.
func (t *CallTable) Outstanding() int { return len(t.calls) }
