package simstack

import (
	"sort"

	"fireflyrpc/internal/costmodel"
	"fireflyrpc/internal/ether"
	"fireflyrpc/internal/firefly"
	"fireflyrpc/internal/sim"
)

// World is the measured testbed: two Fireflies on a private Ethernet, one
// running caller threads, the other a multithreaded server exporting the
// Test interface.
type World struct {
	K      *sim.Kernel
	Cfg    *costmodel.Config
	Seg    *ether.Segment
	Caller *firefly.Machine
	Server *firefly.Machine

	CallerStack *Stack
	ServerStack *Stack

	Test *InterfaceSpec
}

// NewWorld builds the testbed for a configuration. The cost model's CPU
// counts, stub variant, and §4.2 toggles all take effect here.
func NewWorld(cfg *costmodel.Config, seed uint64) *World {
	k := sim.NewKernel(seed)
	seg := ether.NewSegment(k)
	caller := firefly.New(k, "caller", cfg, seg, 1, cfg.CallerCPUs)
	server := firefly.New(k, "server", cfg, seg, 2, cfg.ServerCPUs)
	if cfg.CallerCPUs == 1 {
		caller.UniprocExtra = cfg.UniprocCallerExtra()
	}
	if cfg.ServerCPUs == 1 {
		server.UniprocExtra = cfg.UniprocServerExtra()
	}

	w := &World{
		K: k, Cfg: cfg, Seg: seg,
		Caller: caller, Server: server,
		CallerStack: NewStack(caller, 0),
		ServerStack: NewStack(server, 0),
		Test:        TestInterface(cfg),
	}
	w.ServerStack.Register(w.Test)
	w.ServerStack.StartServerThreads(cfg.ServerThreads)

	// The standard background threads: ~0.15 CPUs on an idling machine.
	caller.StartBackgroundLoad(2, cfg.IdleLoadFraction(), sim.Micros(1000))
	server.StartBackgroundLoad(2, cfg.IdleLoadFraction(), sim.Micros(1000))
	return w
}

// BindTest binds a new caller activity to the server's Test interface.
func (w *World) BindTest() *Client {
	return w.CallerStack.Bind(w.Server.Endpoint(), w.Test)
}

// RegisterLocal exports the Test interface on the caller machine and starts
// local server threads, for same-machine (shared memory) RPC measurements.
func (w *World) RegisterLocal(threads int) {
	w.CallerStack.Register(w.Test)
	w.CallerStack.StartServerThreads(threads)
}

// BindLocal binds a caller activity to the Test interface on its own machine.
func (w *World) BindLocal() *Client {
	return w.CallerStack.Bind(w.Caller.Endpoint(), w.Test)
}

// RunResult summarizes a timed run.
type RunResult struct {
	Calls     int
	Elapsed   sim.Duration
	Errors    int
	CallerCPU float64 // mean busy CPUs on the caller machine during the run
	ServerCPU float64

	// Latency distribution over the measured calls, in microseconds.
	P50Micros float64
	P95Micros float64
	MaxMicros float64
}

// CallsPerSecond returns the completed-call rate.
func (r RunResult) CallsPerSecond() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Calls) / (float64(r.Elapsed) / 1e9)
}

// SecondsPer returns the elapsed virtual seconds for n calls at this run's
// rate — the form Table I reports ("seconds for 10000 RPCs").
func (r RunResult) SecondsPer(n int) float64 {
	if r.Calls == 0 {
		return 0
	}
	return float64(r.Elapsed) / 1e9 * float64(n) / float64(r.Calls)
}

// MegabitsPerSecond returns payload throughput for a per-call payload size.
func (r RunResult) MegabitsPerSecond(payloadBytes int) float64 {
	return r.CallsPerSecond() * float64(payloadBytes) * 8 / 1e6
}

// LatencyMicros returns mean per-call latency in µs for single-threaded runs.
func (r RunResult) LatencyMicros() float64 {
	if r.Calls == 0 {
		return 0
	}
	return float64(r.Elapsed) / float64(r.Calls) / 1e3
}

// RegisterProc adds a procedure to the Test interface (both ends), for
// probes beyond the paper's three standard procedures (Tables II–V).
func (w *World) RegisterProc(spec *ProcSpec) {
	w.Test.Procs[spec.ID] = spec
}

// Run drives threads caller threads through totalCalls calls of spec
// (divided evenly) and reports the elapsed virtual time. Warmup calls
// (totalCalls/20, at least 1 per thread) precede the measured window so the
// fast path's "server threads are waiting" assumption holds, as in the
// paper's steady-state measurements.
func (w *World) Run(spec *ProcSpec, threads, totalCalls int) RunResult {
	return w.run(spec, threads, totalCalls, false)
}

// RunLocal is Run over the same-machine shared-memory transport. The caller
// machine must have local service registered (RegisterLocal).
func (w *World) RunLocal(spec *ProcSpec, threads, totalCalls int) RunResult {
	return w.run(spec, threads, totalCalls, true)
}

func (w *World) run(spec *ProcSpec, threads, totalCalls int, local bool) RunResult {
	perThread := totalCalls / threads
	warmup := perThread / 20
	if warmup < 1 {
		warmup = 1
	}

	var (
		started      int
		startTime    sim.Time
		callerBusy0  sim.Duration
		serverBusy0  sim.Duration
		finished     int
		result       RunResult
		latencies    []float64
		startBarrier = make([]func(), 0, threads)
	)

	args := make([]byte, spec.ArgBytes)
	res := make([]byte, spec.ResultBytes)

	for i := 0; i < threads; i++ {
		var client *Client
		if local {
			client = w.BindLocal()
		} else {
			client = w.BindTest()
		}
		call := func(p *firefly.Proc) error {
			if local {
				return client.LocalCall(p, spec, args, res)
			}
			return client.Call(p, spec, args, res)
		}
		w.Caller.Sched.SpawnProc("callerT", func(p *firefly.Proc) {
			// Warmup outside the measured window.
			for j := 0; j < warmup; j++ {
				if err := call(p); err != nil {
					result.Errors++
				}
			}
			// Barrier: all threads warm before timing starts.
			started++
			if started == threads {
				startTime = w.K.Now()
				callerBusy0 = w.Caller.BusySnapshot()
				serverBusy0 = w.Server.BusySnapshot()
				for _, release := range startBarrier {
					release()
				}
				startBarrier = nil
			} else {
				waiter := p.PrepareWait()
				startBarrier = append(startBarrier, func() { w.Caller.Sched.Wakeup(waiter) })
				p.Wait(waiter)
			}
			for j := 0; j < perThread; j++ {
				t0 := p.Now()
				if err := call(p); err != nil {
					result.Errors++
				}
				latencies = append(latencies, p.Now().Sub(t0).Seconds()*1e6)
				result.Calls++
				p.Compute(w.Cfg.CallerLoop())
			}
			finished++
			if finished == threads {
				result.Elapsed = w.K.Now().Sub(startTime)
				result.CallerCPU = w.Caller.MeanBusyCPUs(startTime, callerBusy0)
				result.ServerCPU = w.Server.MeanBusyCPUs(startTime, serverBusy0)
				sort.Float64s(latencies)
				if n := len(latencies); n > 0 {
					result.P50Micros = latencies[n/2]
					result.P95Micros = latencies[n*95/100]
					result.MaxMicros = latencies[n-1]
				}
				w.K.Stop()
			}
		})
	}
	w.K.Run()
	return result
}
