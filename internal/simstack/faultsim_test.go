package simstack

import (
	"testing"
	"time"

	"fireflyrpc/internal/costmodel"
	"fireflyrpc/internal/faultnet"
)

// stressProfile is a representative impairment mix: loss, duplication, and
// added wire latency. The exact same Profile type drives the real stack
// (faultnet.Wrap) and, here, the simulator's Ethernet segment.
func stressProfile() faultnet.Profile {
	return faultnet.Profile{
		Name: "sim-stress",
		Out: faultnet.Impair{
			Drop:   0.1,
			Dup:    0.05,
			Delay:  faultnet.Duration(30 * time.Microsecond),
			Jitter: faultnet.Duration(20 * time.Microsecond),
		},
	}
}

func runImpaired(t *testing.T, worldSeed, faultSeed uint64) (RunResult, faultnet.Stats) {
	t.Helper()
	cfg := costmodel.NewConfig()
	w := NewWorld(&cfg, worldSeed)
	sf := stressProfile().SimFaulter(faultSeed, w.K)
	w.Seg.SetFaulter(sf)
	r := w.Run(NullSpec(&cfg), 2, 150)
	if r.Errors != 0 {
		t.Fatalf("%d calls failed despite retransmission", r.Errors)
	}
	return r, sf.Impairer().Stats(faultnet.DirOut)
}

// The determinism invariant on the model side: an impaired simulation is a
// pure function of (world seed, profile, fault seed). Two runs agree on
// every measured number and on every impairment decision.
func TestImpairedSimDeterministic(t *testing.T) {
	r1, s1 := runImpaired(t, 42, 7)
	r2, s2 := runImpaired(t, 42, 7)
	if r1 != r2 {
		t.Fatalf("same seeds, different runs:\n  %+v\n  %+v", r1, r2)
	}
	if s1 != s2 {
		t.Fatalf("same seeds, different impairment schedules:\n  %+v\n  %+v", s1, s2)
	}
	if s1.Drops == 0 || s1.Dups == 0 {
		t.Fatalf("profile applied no impairments: %+v", s1)
	}
	_, s3 := runImpaired(t, 42, 8)
	if s3 == s1 {
		t.Fatal("different fault seed produced an identical impairment schedule")
	}
}

// The simulated protocol survives the impairment: retransmissions recover
// every lost frame and duplicate suppression holds.
func TestImpairedSimRecovers(t *testing.T) {
	cfg := costmodel.NewConfig()
	w := NewWorld(&cfg, 1)
	sf := stressProfile().SimFaulter(3, w.K)
	w.Seg.SetFaulter(sf)
	r := w.Run(NullSpec(&cfg), 2, 120)
	if r.Errors != 0 {
		t.Fatalf("%d calls failed", r.Errors)
	}
	if w.CallerStack.Stats.Retransmits == 0 {
		t.Fatal("no retransmissions under 10% loss")
	}
}
