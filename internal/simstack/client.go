package simstack

import (
	"fireflyrpc/internal/buffer"
	"fireflyrpc/internal/firefly"
	"fireflyrpc/internal/wire"
)

// Client is a binding from a calling thread's conversation (an activity in
// Birrell–Nelson terms) to a remote instance of an interface.
type Client struct {
	s        *Stack
	remote   wire.Endpoint
	iface    *InterfaceSpec
	activity uint64
	seq      uint32
}

// Activity returns the client's conversation identifier (for tracing).
func (c *Client) Activity() uint64 { return c.activity }

var nextActivity uint64

// Bind creates a binding to iface exported at remote. Each caller thread
// should use its own Client, mirroring one activity per thread.
func (s *Stack) Bind(remote wire.Endpoint, iface *InterfaceSpec) *Client {
	nextActivity++
	return &Client{s: s, remote: remote, iface: iface, activity: nextActivity}
}

// fragSizes splits a payload into single-packet fragment sizes.
func fragSizes(total int) []int {
	if total <= wire.MaxSinglePacketPayload {
		return []int{total}
	}
	var out []int
	for total > 0 {
		n := total
		if n > wire.MaxSinglePacketPayload {
			n = wire.MaxSinglePacketPayload
		}
		out = append(out, n)
		total -= n
	}
	return out
}

// buildFrags marshals payload into packet buffers, one per fragment.
func (s *Stack) buildFrags(t wire.PacketType, src, dst wire.Endpoint,
	activity uint64, seq uint32, iface uint32, proc uint16,
	payload []byte, reuse []*buffer.Buf) ([]*buffer.Buf, error) {

	sizes := fragSizes(len(payload))
	if len(sizes) > maxFragments {
		return nil, ErrTooLong
	}
	bufs := make([]*buffer.Buf, 0, len(sizes))
	off := 0
	for i, n := range sizes {
		var b *buffer.Buf
		if i < len(reuse) {
			b = reuse[i]
		} else {
			b = s.Pool.Get()
			if b == nil {
				for j := len(reuse); j < len(bufs); j++ {
					bufs[j].Free()
				}
				return nil, ErrNoBuffers
			}
		}
		hdr := wire.RPCHeader{
			Type:      t,
			Activity:  activity,
			Seq:       seq,
			FragIndex: uint16(i),
			FragCount: uint16(len(sizes)),
			Interface: iface,
			Proc:      proc,
		}
		if i == len(sizes)-1 {
			hdr.Flags |= wire.FlagLastFrag
		}
		frameLen := wire.PacketLen(n)
		if err := wire.BuildPacketInto(b.Cap()[:frameLen], src, dst, hdr,
			payload[off:off+n], s.Cfg.UDPChecksums); err != nil {
			if i >= len(reuse) {
				b.Free()
			}
			return nil, err
		}
		b.SetLen(frameLen)
		bufs = append(bufs, b)
		off += n
	}
	// Free any reuse buffers beyond what the message needed.
	for j := len(sizes); j < len(reuse); j++ {
		reuse[j].Free()
	}
	return bufs, nil
}

// Call performs one remote procedure call from thread p. args must be
// spec.ArgBytes long (nil for zero); if result is non-nil the result payload
// is copied into it (the caller stub's single VAR OUT copy). Arguments and
// results larger than one packet travel as back-to-back fragments. Call
// blocks the thread for the full round trip of virtual time.
func (c *Client) Call(p *firefly.Proc, spec *ProcSpec, args, result []byte) error {
	s := c.s
	cfg := s.Cfg
	if len(args) != spec.ArgBytes {
		args = append(args, make([]byte, spec.ArgBytes-len(args))...)
	}

	// Caller stub entry, then the Starter obtains and prepares the call
	// packet buffer(s).
	p.Compute(cfg.CallingStub() / 2)
	p.Compute(cfg.Starter())

	// Marshal arguments into the call packet(s).
	p.Compute(spec.CallerMarshal)
	c.seq++
	seq := c.seq
	bufs, err := s.buildFrags(wire.TypeCall, s.M.Endpoint(), c.remote,
		c.activity, seq, c.iface.ID, spec.ID, args, nil)
	if err != nil {
		return err
	}

	// The §5 statement reordering costs ~50 µs here on a multiprocessor.
	p.Compute(cfg.SwappedLinesPenalty(s.M.NumCPUs()))

	// Register the call, then the Sender transmits each fragment; the
	// Transporter's registration bookkeeping overlaps the transmission.
	w := p.PrepareWait()
	e := s.Table.RegisterCall(c.activity, seq, w, bufs)
	s.Stats.CallsSent++
	s.debugf(c.activity, "sending call seq=%d frags=%d", seq, len(bufs))
	for _, b := range bufs {
		s.senderFrag(p, b.Bytes())
	}
	s.raiseSendIPI()
	s.scheduleRetransmit(e)
	p.Compute(cfg.TransporterSend())
	s.debugf(c.activity, "waiting seq=%d", seq)
	p.Wait(w)
	s.debugf(c.activity, "woke seq=%d", seq)

	// Result attached (or the call failed).
	s.Table.CompleteCall(e)
	if e.err != nil {
		e.freeResultBufs()
		return e.err
	}
	p.Compute(cfg.TransporterRecv())

	// SecureBuffers ablation: the result must be copied across the
	// protection boundary before the stub can unmarshal it.
	for i := uint16(0); i < e.resCount; i++ {
		if b := e.resFrags[i]; b != nil {
			p.Compute(cfg.SecureBufferCopy(b.Len()))
		}
	}

	// Unmarshal: the single copy of VAR OUT results into caller variables.
	p.Compute(spec.CallerUnmarshal)
	rejected := e.rejected
	if result != nil && !rejected {
		copy(result, e.resPayload)
	}

	// Ender frees the result packet(s); stub returns to the caller.
	p.Compute(cfg.Ender())
	e.freeResultBufs()
	p.Compute(cfg.CallingStub() / 2)
	if rejected {
		return ErrUnbound
	}
	s.Stats.CallsCompleted++
	return nil
}

// LocalCall performs a same-machine RPC through the shared-memory transport:
// identical stubs and marshalling, but the transport is a direct handoff
// through the call table with no Ethernet, checksums, or controller. The
// packet buffers are the same pool used for Ethernet transport, so local
// transport time is independent of packet size (footnote to §2.2: a local
// Null() takes 937 µs).
func (c *Client) LocalCall(p *firefly.Proc, spec *ProcSpec, args, result []byte) error {
	s := c.s
	cfg := s.Cfg
	if len(args) != spec.ArgBytes {
		args = append(args, make([]byte, spec.ArgBytes-len(args))...)
	}
	if spec.ArgBytes > wire.MaxSinglePacketPayload || spec.ResultBytes > wire.MaxSinglePacketPayload {
		return ErrTooLong // local transport carries single packets
	}

	p.Compute(cfg.CallingStub() / 2)
	p.Compute(cfg.Starter())
	cb := s.Pool.Get()
	if cb == nil {
		return ErrNoBuffers
	}
	p.Compute(spec.CallerMarshal)
	c.seq++
	hdr := wire.RPCHeader{
		Type: wire.TypeCall, Flags: wire.FlagLastFrag,
		Activity: c.activity, Seq: c.seq, FragCount: 1,
		Interface: c.iface.ID, Proc: spec.ID,
	}
	frameLen := wire.PacketLen(spec.ArgBytes)
	if err := wire.BuildPacketInto(cb.Cap()[:frameLen], s.M.Endpoint(), s.M.Endpoint(),
		hdr, args, false); err != nil {
		cb.Free()
		return err
	}
	cb.SetLen(frameLen)

	// Local transport: hand the packet to a waiting server thread.
	w := p.PrepareWait()
	e := s.Table.RegisterCall(c.activity, c.seq, w, nil)
	p.Compute(cfg.TransporterSend() + cfg.LocalTransportHalf())
	ic := &inboundCall{
		key:      callKey{c.activity, c.seq},
		iface:    c.iface.ID,
		proc:     spec.ID,
		callerEP: s.M.Endpoint(),
		args:     args,
		bufs:     []*buffer.Buf{cb},
	}
	if se := s.Table.popIdleServer(); se != nil {
		se.call = ic
		s.M.Sched.Wakeup(se.waiter)
	} else {
		s.Stats.PendingQueued++
		s.Table.pending = append(s.Table.pending, ic)
	}
	p.Wait(w)

	s.Table.CompleteCall(e)
	if e.err != nil {
		e.freeResultBufs()
		return e.err
	}
	p.Compute(cfg.TransporterRecv())
	p.Compute(spec.CallerUnmarshal)
	rejected := e.rejected
	if result != nil && !rejected {
		copy(result, e.resPayload)
	}
	p.Compute(cfg.Ender())
	e.freeResultBufs()
	p.Compute(cfg.CallingStub() / 2)
	if rejected {
		return ErrUnbound
	}
	s.Stats.CallsCompleted++
	return nil
}
