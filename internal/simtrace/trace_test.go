package simtrace_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"fireflyrpc/internal/costmodel"
	"fireflyrpc/internal/sim"
	"fireflyrpc/internal/simstack"
	"fireflyrpc/internal/simtrace"
)

// runTraced drives a small two-machine workload with a builder attached and
// returns the rendered trace plus the run result.
func runTraced(seed uint64) ([]byte, simstack.RunResult) {
	cfg := costmodel.NewConfig()
	w := simstack.NewWorld(&cfg, seed)
	b := simtrace.AttachWorld(w)
	r := w.Run(simstack.MaxResultSpec(&cfg), 2, 40)
	return b.JSON(), r
}

// TestTraceDeterminism demands byte-identical JSON from two same-seed runs.
func TestTraceDeterminism(t *testing.T) {
	a, _ := runTraced(7)
	b, _ := runTraced(7)
	if !bytes.Equal(a, b) {
		for i := range a {
			if i >= len(b) || a[i] != b[i] {
				lo := i - 60
				if lo < 0 {
					lo = 0
				}
				t.Fatalf("traces diverge at byte %d:\n  a: …%s\n  b: …%s",
					i, a[lo:min(i+60, len(a))], b[lo:min(i+60, len(b))])
			}
		}
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
}

// TestTracerDoesNotPerturbRun compares a traced and an untraced same-seed
// run: the virtual results must be identical.
func TestTracerDoesNotPerturbRun(t *testing.T) {
	cfg := costmodel.NewConfig()
	w := simstack.NewWorld(&cfg, 7)
	plain := w.Run(simstack.MaxResultSpec(&cfg), 2, 40)
	_, traced := runTraced(7)
	if plain.Elapsed != traced.Elapsed || plain.Calls != traced.Calls ||
		plain.P95Micros != traced.P95Micros {
		t.Errorf("traced run diverged: elapsed %v vs %v, calls %d vs %d, p95 %v vs %v",
			plain.Elapsed, traced.Elapsed, plain.Calls, traced.Calls,
			plain.P95Micros, traced.P95Micros)
	}
}

// TestTraceStructure validates the document shape Perfetto's importer
// relies on: every event carries a phase and pid, slice begins/ends balance
// per track, complete events have non-negative durations, flow ends only
// reference started flows, and all the expected track families are present.
func TestTraceStructure(t *testing.T) {
	raw, _ := runTraced(3)
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) < 100 {
		t.Fatalf("suspiciously small trace: %d events", len(doc.TraceEvents))
	}

	phases := map[string]int{}
	depth := map[string]int{}
	flows := map[float64]bool{}
	procs := map[string]bool{}
	for i, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		if ph == "" {
			t.Fatalf("event %d has no phase: %v", i, ev)
		}
		phases[ph]++
		if _, ok := ev["pid"].(float64); !ok {
			t.Fatalf("event %d has no pid: %v", i, ev)
		}
		if ph != "M" {
			ts, ok := ev["ts"].(float64)
			if !ok || ts < 0 {
				t.Fatalf("event %d has bad ts: %v", i, ev)
			}
		}
		track := fmt.Sprintf("%v/%v", ev["pid"], ev["tid"])
		switch ph {
		case "M":
			if name, _ := ev["name"].(string); name == "process_name" {
				args := ev["args"].(map[string]any)
				procs[args["name"].(string)] = true
			}
		case "B":
			depth[track]++
		case "E":
			depth[track]--
			if depth[track] < 0 {
				t.Fatalf("event %d: slice end without begin on track %s", i, track)
			}
		case "X":
			dur, ok := ev["dur"].(float64)
			if !ok || dur < 0 {
				t.Fatalf("event %d: complete event with bad dur: %v", i, ev)
			}
		case "s":
			flows[ev["id"].(float64)] = true
		case "f":
			if !flows[ev["id"].(float64)] {
				t.Fatalf("event %d: flow end for unstarted flow %v", i, ev["id"])
			}
		}
	}
	for _, ph := range []string{"M", "B", "E", "X", "C", "s", "f"} {
		if phases[ph] == 0 {
			t.Errorf("no %q events in trace (saw %v)", ph, phases)
		}
	}
	for track, d := range depth {
		if d != 0 {
			t.Errorf("track %s finished with %d unclosed slices", track, d)
		}
	}
	for _, want := range []string{"caller", "server", "ethernet", "sim threads", "resources"} {
		if !procs[want] {
			t.Errorf("missing process %q (have %v)", want, procs)
		}
	}
}

// TestResourceReport exercises the snapshot and the rendered table.
func TestResourceReport(t *testing.T) {
	cfg := costmodel.NewConfig()
	w := simstack.NewWorld(&cfg, 5)
	w.Run(simstack.MaxResultSpec(&cfg), 2, 30)
	stats := simtrace.ResourceReport(w.K)
	if len(stats) == 0 {
		t.Fatal("no resources registered")
	}
	var ether *sim.ResourceStats
	for i := range stats {
		if stats[i].Name == "ethernet" {
			ether = &stats[i]
		}
	}
	if ether == nil {
		t.Fatalf("no ethernet resource in report: %+v", stats)
	}
	if ether.Served < 60 { // ≥ one data + one result frame per call
		t.Errorf("ethernet served %d frames, want >= 60", ether.Served)
	}
	if ether.Utilization <= 0 || ether.Utilization > 1 {
		t.Errorf("ethernet utilization out of range: %v", ether.Utilization)
	}
	table := simtrace.RenderResourceTable(stats)
	if !bytes.Contains([]byte(table), []byte("ethernet")) {
		t.Errorf("rendered table missing ethernet row:\n%s", table)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
