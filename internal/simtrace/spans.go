package simtrace

import "fmt"

// The shared span schema: one shape for "a call happened from StartNs to
// EndNs on this process/track, inside this trace tree" that both domains
// render through — the real stack's distributed-trace spans (assembled from
// proto stage records) and simulation-side summaries. Both funnel through
// AddSpans into the same Chrome trace-event JSON, so a multi-node run over
// real transports and a fireflysim runbook run load into the same Perfetto
// viewer, side by side or merged into one document.
//
// The package deliberately does not import the real stack (proto imports
// nothing simulation-side and vice versa); callers that hold proto spans
// convert them to this schema (see debughttp and cmd/fireflybench).

// Span is one renderable span: identity for tree linkage, placement for the
// viewer, and ordered args for determinism (maps would iterate randomly and
// break byte-identical output).
type Span struct {
	Trace   uint64 // trace tree id (0: standalone)
	ID      uint64 // unique within the document; flow arrows key on it
	Parent  uint64 // parent span's ID (0: root)
	Process string // Perfetto process row
	Track   string // track within the process
	Name    string // slice label
	StartNs int64
	EndNs   int64
	Args    [][2]string // ordered key/value pairs rendered into the slice's args
}

// NewSpanDoc creates a builder for a spans-only document: the same emitter
// NewBuilder wires into a simulation kernel, minus the kernel. Use it to
// render real-stack spans (or any external span set) standalone; to merge
// spans into a simulation trace, call AddSpans on the run's Builder instead.
func NewSpanDoc() *Builder {
	return &Builder{
		pids:       make(map[string]int),
		nextPid:    1,
		tids:       make(map[string]int),
		nextTid:    make(map[int]int),
		threadName: make(map[int]string),
		openRun:    make(map[int]bool),
		stations:   make(map[string]string),
		pendingRx:  make(map[string][]uint64),
	}
}

// AddSpans renders spans as complete (X) slices, with a packet-flow arrow
// from each parent slice to its child's start when both ends are present in
// this batch. Callers pass spans in a deterministic order (the real stack's
// AssembleSpans sorts by start time); pids/tids allocate in first-use order,
// so the same span set always yields byte-identical JSON.
func (b *Builder) AddSpans(spans []Span) {
	type loc struct {
		pid, tid   int
		start, end int64
	}
	byID := make(map[uint64]loc, len(spans))
	// Pre-register every span's track first so metadata order depends only
	// on span order, not on the parent/child arrow pattern.
	for i := range spans {
		s := &spans[i]
		pid := b.pid(s.Process)
		tid := b.tid(pid, s.Track)
		if s.ID != 0 {
			byID[s.ID] = loc{pid, tid, s.StartNs, s.EndNs}
		}
	}
	for i := range spans {
		s := &spans[i]
		pid := b.pid(s.Process)
		tid := b.tid(pid, s.Track)
		dur := s.EndNs - s.StartNs
		if dur < 0 {
			dur = 0
		}
		b.open()
		fmt.Fprintf(&b.buf, `{"name":"%s","cat":"span","ph":"X","pid":%d,"tid":%d,`, esc(s.Name), pid, tid)
		ts(&b.buf, s.StartNs)
		fmt.Fprintf(&b.buf, `,"dur":%d.%03d,"args":{`, dur/1000, dur%1000)
		if s.Trace != 0 {
			fmt.Fprintf(&b.buf, `"trace":"%016x","span":"%016x"`, s.Trace, s.ID)
			if s.Parent != 0 {
				fmt.Fprintf(&b.buf, `,"parent":"%016x"`, s.Parent)
			}
			for _, kv := range s.Args {
				fmt.Fprintf(&b.buf, `,"%s":"%s"`, esc(kv[0]), esc(kv[1]))
			}
		} else {
			for j, kv := range s.Args {
				if j > 0 {
					b.buf.WriteByte(',')
				}
				fmt.Fprintf(&b.buf, `"%s":"%s"`, esc(kv[0]), esc(kv[1]))
			}
		}
		b.buf.WriteString("}}")

		if s.Parent == 0 || s.ID == 0 {
			continue
		}
		pl, ok := byID[s.Parent]
		if !ok {
			continue
		}
		// The arrow leaves the parent slice at the child's start, clamped
		// into the parent's bounds (Perfetto binds an "s" event to the slice
		// enclosing its timestamp).
		at := s.StartNs
		if at < pl.start {
			at = pl.start
		}
		if at > pl.end {
			at = pl.end
		}
		b.open()
		fmt.Fprintf(&b.buf, `{"name":"call","cat":"span","ph":"s","id":%d,"pid":%d,"tid":%d,`, s.ID, pl.pid, pl.tid)
		ts(&b.buf, at)
		b.buf.WriteByte('}')
		b.open()
		fmt.Fprintf(&b.buf, `{"name":"call","cat":"span","ph":"f","bp":"e","id":%d,"pid":%d,"tid":%d,`, s.ID, pid, tid)
		ts(&b.buf, s.StartNs)
		b.buf.WriteByte('}')
	}
}
