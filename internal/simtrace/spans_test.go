package simtrace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func sampleSpans() []Span {
	return []Span{
		{
			Trace: 0xabc, ID: 1, Process: "rpc", Track: "act 1", Name: "client→A",
			StartNs: 1000, EndNs: 9000,
			Args: [][2]string{{"iface", "calc"}, {"proc", "2"}},
		},
		{
			Trace: 0xabc, ID: 2, Parent: 1, Process: "rpc", Track: "act 2", Name: "A→B",
			StartNs: 3000, EndNs: 7000,
		},
		{
			ID: 3, Process: "rpc", Track: "act 3", Name: "standalone",
			StartNs: 500, EndNs: 600,
			Args: [][2]string{{"note", "no trace id"}},
		},
	}
}

// TestAddSpansDocument checks the rendered document is valid JSON carrying
// the slices, the parent/child flow arrow, and the trace identity args.
func TestAddSpansDocument(t *testing.T) {
	b := NewSpanDoc()
	b.AddSpans(sampleSpans())
	out := b.JSON()

	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(out, &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out)
	}
	var slices, starts, finishes int
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "X":
			slices++
		case "s":
			starts++
		case "f":
			finishes++
		}
	}
	if slices != 3 {
		t.Errorf("got %d X slices, want 3", slices)
	}
	if starts != 1 || finishes != 1 {
		t.Errorf("got %d/%d flow start/finish events, want 1/1", starts, finishes)
	}
	s := string(out)
	for _, want := range []string{
		`"trace":"0000000000000abc"`,
		`"parent":"0000000000000001"`,
		`"iface":"calc"`,
		`"client→A"`,
	} {
		if !strings.Contains(s, want) {
			t.Errorf("document missing %s", want)
		}
	}
}

// TestAddSpansDeterministic: the same span set renders byte-identically.
func TestAddSpansDeterministic(t *testing.T) {
	render := func() []byte {
		b := NewSpanDoc()
		b.AddSpans(sampleSpans())
		return b.JSON()
	}
	a, b := render(), render()
	if !bytes.Equal(a, b) {
		t.Fatal("two renders of the same spans differ")
	}
}

// TestAddSpansOnSimBuilder: spans merge into a kernel-attached builder's
// document alongside simulation events (the real+sim merged-viewer path).
func TestAddSpansMerge(t *testing.T) {
	b := NewSpanDoc()
	// Simulate prior sim content by pre-registering a process.
	b.pid("machine0")
	b.AddSpans(sampleSpans())
	out := b.JSON()
	if !json.Valid(out) {
		t.Fatalf("merged document is not valid JSON:\n%s", out)
	}
	if !strings.Contains(string(out), `"name":"rpc"`) {
		t.Error("span process metadata missing from merged document")
	}
}
