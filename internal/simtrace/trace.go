// Package simtrace renders a simulation run as Chrome trace-event JSON,
// loadable in Perfetto (ui.perfetto.dev) or chrome://tracing. One process per
// machine with a track per CPU and one for the DEQNA controller, a process
// for the Ethernet segment's wire, a process of per-thread lifelines, and
// counter tracks sampling every sim.Resource's busy/queued state. Packet-flow
// arrows connect a frame's wire occupancy to the receiving controller's QBus
// write.
//
// The builder emits only integer-derived text (timestamps are formatted from
// nanosecond integers, never floats), and pids/tids are assigned in
// first-use order, so two same-seed runs produce byte-identical JSON.
package simtrace

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"fireflyrpc/internal/ether"
	"fireflyrpc/internal/firefly"
	"fireflyrpc/internal/sim"
)

// Builder accumulates trace events from the sim kernel, machine model, and
// Ethernet segment. It implements sim.Tracer, firefly.Tracer, and
// ether.Tracer; install it with Attach* (or simstack-level helpers) before
// the run. Builders are not safe for concurrent use — like the simulation
// itself, they assume the kernel's single-stepping discipline.
type Builder struct {
	k   *sim.Kernel
	buf bytes.Buffer
	n   int // events emitted

	pids    map[string]int // process name -> pid
	pidSeq  []string       // emission order, for metadata determinism checks
	nextPid int
	tids    map[string]int // "pid/track" -> tid
	nextTid map[int]int    // per-pid tid allocator

	threadName map[int]string // sim thread id -> name
	openRun    map[int]bool   // sim thread id -> has an open "run" slice

	stations  map[string]string   // MAC -> machine name
	pendingRx map[string][]uint64 // machine -> frame ids delivered, awaiting qbus-rx
	segment   string              // process name of the attached segment

	// counters (not rendered per-event; see Counts)
	evScheduled, evFired int64
}

// Counts reports hook-invocation totals that are tracked but intentionally
// not rendered as individual events (event schedule/fire volume would dwarf
// the useful tracks).
type Counts struct {
	Events    int   // trace events rendered
	Scheduled int64 // kernel events scheduled
	Fired     int64 // kernel events fired
}

// NewBuilder creates a builder over k and installs itself as the kernel's
// tracer.
func NewBuilder(k *sim.Kernel) *Builder {
	b := &Builder{
		k:          k,
		pids:       make(map[string]int),
		nextPid:    1,
		tids:       make(map[string]int),
		nextTid:    make(map[int]int),
		threadName: make(map[int]string),
		openRun:    make(map[int]bool),
		stations:   make(map[string]string),
		pendingRx:  make(map[string][]uint64),
	}
	k.SetTracer(b)
	return b
}

// AttachMachine installs the builder as m's timeline tracer and records its
// MAC so packet deliveries can be routed to its controller track.
func (b *Builder) AttachMachine(m *firefly.Machine) {
	m.SetTracer(b)
	b.stations[m.MAC.String()] = m.Name
	// Pre-register tracks in a stable order: cpu0..cpuN-1, then the DEQNA.
	pid := b.pid(m.Name)
	for i := 0; i < m.NumCPUs(); i++ {
		b.tid(pid, fmt.Sprintf("cpu%d", i))
	}
	b.tid(pid, "DEQNA")
}

// AttachSegment installs the builder as the segment's packet tracer. name
// labels its process (e.g. "ethernet").
func (b *Builder) AttachSegment(s *ether.Segment, name string) {
	s.SetTracer(b)
	b.segment = name
	pid := b.pid(name)
	b.tid(pid, "wire")
}

// Counts returns hook totals.
func (b *Builder) Counts() Counts {
	return Counts{Events: b.n, Scheduled: b.evScheduled, Fired: b.evFired}
}

// pid returns (allocating on first use) the process id for name, emitting
// process_name metadata on allocation.
func (b *Builder) pid(name string) int {
	if p, ok := b.pids[name]; ok {
		return p
	}
	p := b.nextPid
	b.nextPid++
	b.pids[name] = p
	b.pidSeq = append(b.pidSeq, name)
	b.open()
	fmt.Fprintf(&b.buf, `{"name":"process_name","ph":"M","pid":%d,"args":{"name":"%s"}}`, p, esc(name))
	b.open()
	fmt.Fprintf(&b.buf, `{"name":"process_sort_index","ph":"M","pid":%d,"args":{"sort_index":%d}}`, p, p)
	return p
}

// tid returns (allocating on first use) the thread id for a named track
// within pid, emitting thread_name metadata on allocation.
func (b *Builder) tid(pid int, track string) int {
	key := fmt.Sprintf("%d/%s", pid, track)
	if t, ok := b.tids[key]; ok {
		return t
	}
	t := b.nextTid[pid]
	b.nextTid[pid]++
	b.tids[key] = t
	b.open()
	fmt.Fprintf(&b.buf, `{"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":"%s"}}`, pid, t, esc(track))
	return t
}

// open starts a new event object, writing the separating comma if needed.
func (b *Builder) open() {
	if b.n > 0 {
		b.buf.WriteByte(',')
		b.buf.WriteByte('\n')
	}
	b.n++
}

// ts writes a `"ts":<micros>` field from integer nanoseconds — no float
// formatting, so output is bit-stable across platforms.
func ts(buf *bytes.Buffer, ns int64) {
	if ns < 0 {
		ns = 0
	}
	fmt.Fprintf(buf, `"ts":%d.%03d`, ns/1000, ns%1000)
}

// esc escapes s for embedding in a JSON string literal.
func esc(s string) string {
	for i := 0; i < len(s); i++ {
		if c := s[i]; c == '"' || c == '\\' || c < 0x20 || c >= 0x80 {
			q, _ := json.Marshal(s)
			return string(q[1 : len(q)-1])
		}
	}
	return s
}

// --- sim.Tracer ---

const threadProc = "sim threads"

// ThreadSpawn names the thread's lifeline track.
func (b *Builder) ThreadSpawn(at sim.Time, id int, name string) {
	b.threadName[id] = name
	pid := b.pid(threadProc)
	b.open()
	fmt.Fprintf(&b.buf, `{"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":"%s"}}`, pid, id, esc(name))
}

// ThreadState renders run slices on the thread's lifeline: Run opens a
// slice, Blocked closes it (recording the park reason), Exit closes any open
// slice.
func (b *Builder) ThreadState(at sim.Time, id int, state sim.ThreadState, reason string) {
	pid := b.pid(threadProc)
	switch state {
	case sim.ThreadRun:
		if b.openRun[id] {
			return
		}
		b.openRun[id] = true
		b.open()
		fmt.Fprintf(&b.buf, `{"name":"%s","cat":"thread","ph":"B","pid":%d,"tid":%d,`, esc(b.threadName[id]), pid, id)
		ts(&b.buf, int64(at))
		b.buf.WriteByte('}')
	case sim.ThreadBlocked, sim.ThreadExit:
		if !b.openRun[id] {
			return
		}
		b.openRun[id] = false
		b.open()
		fmt.Fprintf(&b.buf, `{"ph":"E","pid":%d,"tid":%d,`, pid, id)
		ts(&b.buf, int64(at))
		if reason != "" {
			fmt.Fprintf(&b.buf, `,"args":{"block":"%s"}`, esc(reason))
		}
		b.buf.WriteByte('}')
	}
}

// EventScheduled is counted but not rendered (volume).
func (b *Builder) EventScheduled(at, fire sim.Time, seq uint64) { b.evScheduled++ }

// EventFired is counted but not rendered (volume).
func (b *Builder) EventFired(at sim.Time, seq uint64) { b.evFired++ }

// resourceCounter samples r's busy/queued state as a counter event.
func (b *Builder) resourceCounter(at sim.Time, r *sim.Resource) {
	pid := b.pid("resources")
	b.open()
	fmt.Fprintf(&b.buf, `{"name":"%s","cat":"resource","ph":"C","pid":%d,`, esc(r.Name()), pid)
	ts(&b.buf, int64(at))
	fmt.Fprintf(&b.buf, `,"args":{"busy":%d,"queued":%d}}`, r.Busy(), r.QueueLen())
}

// ResourceQueued samples the resource counter track.
func (b *Builder) ResourceQueued(at sim.Time, r *sim.Resource) { b.resourceCounter(at, r) }

// ResourceAcquire samples the resource counter track.
func (b *Builder) ResourceAcquire(at sim.Time, r *sim.Resource, wait sim.Duration) {
	b.resourceCounter(at, r)
}

// ResourceRelease samples the resource counter track.
func (b *Builder) ResourceRelease(at sim.Time, r *sim.Resource) { b.resourceCounter(at, r) }

// --- firefly.Tracer ---

// CPUSpanBegin opens a slice on the machine's per-CPU track.
func (b *Builder) CPUSpanBegin(at sim.Time, machine string, cpu int, kind, name string) {
	pid := b.pid(machine)
	tid := b.tid(pid, fmt.Sprintf("cpu%d", cpu))
	label := name
	if label == "" {
		label = kind
	}
	b.open()
	fmt.Fprintf(&b.buf, `{"name":"%s","cat":"%s","ph":"B","pid":%d,"tid":%d,`, esc(label), esc(kind), pid, tid)
	ts(&b.buf, int64(at))
	b.buf.WriteByte('}')
}

// CPUSpanEnd closes the most recent open slice on the CPU track.
func (b *Builder) CPUSpanEnd(at sim.Time, machine string, cpu int) {
	pid := b.pid(machine)
	tid := b.tid(pid, fmt.Sprintf("cpu%d", cpu))
	b.open()
	fmt.Fprintf(&b.buf, `{"ph":"E","pid":%d,"tid":%d,`, pid, tid)
	ts(&b.buf, int64(at))
	b.buf.WriteByte('}')
}

// CtlOp renders a completed controller operation as a complete (X) slice on
// the machine's DEQNA track, and — for QBus receive writes — terminates the
// pending packet-flow arrow from the wire.
func (b *Builder) CtlOp(at sim.Time, machine string, op string, bytes int, d sim.Duration) {
	pid := b.pid(machine)
	tid := b.tid(pid, "DEQNA")
	start := int64(at) - int64(d)
	b.open()
	fmt.Fprintf(&b.buf, `{"name":"%s","cat":"ctl","ph":"X","pid":%d,"tid":%d,`, esc(op), pid, tid)
	ts(&b.buf, start)
	fmt.Fprintf(&b.buf, `,"dur":%d.%03d,"args":{"bytes":%d}}`, int64(d)/1000, int64(d)%1000, bytes)
	if op == "qbus-rx" {
		if ids := b.pendingRx[machine]; len(ids) > 0 {
			id := ids[0]
			b.pendingRx[machine] = ids[1:]
			b.open()
			fmt.Fprintf(&b.buf, `{"name":"frame","cat":"frame","ph":"f","bp":"e","id":%d,"pid":%d,"tid":%d,`, id, pid, tid)
			ts(&b.buf, start)
			b.buf.WriteByte('}')
		}
	}
}

// --- ether.Tracer ---

// FrameOnWire renders the frame's wire occupancy as a complete slice on the
// segment's wire track and opens its packet-flow arrow.
func (b *Builder) FrameOnWire(at sim.Time, id uint64, src, dst string, n int, txTime sim.Duration, lost bool) {
	b.frameOnWire(b.segName(), at, id, src, dst, n, txTime, lost)
}

func (b *Builder) frameOnWire(seg string, at sim.Time, id uint64, src, dst string, n int, txTime sim.Duration, lost bool) {
	pid := b.pid(seg)
	tid := b.tid(pid, "wire")
	start := int64(at) - int64(txTime)
	name := fmt.Sprintf("frame %d", id)
	if lost {
		name = fmt.Sprintf("frame %d (lost)", id)
	}
	b.open()
	fmt.Fprintf(&b.buf, `{"name":"%s","cat":"frame","ph":"X","pid":%d,"tid":%d,`, esc(name), pid, tid)
	ts(&b.buf, start)
	fmt.Fprintf(&b.buf, `,"dur":%d.%03d,"args":{"src":"%s","dst":"%s","bytes":%d,"lost":%t}}`,
		int64(txTime)/1000, int64(txTime)%1000, esc(src), esc(dst), n, lost)
	if !lost {
		b.open()
		fmt.Fprintf(&b.buf, `{"name":"frame","cat":"frame","ph":"s","id":%d,"pid":%d,"tid":%d,`, id, pid, tid)
		ts(&b.buf, start)
		b.buf.WriteByte('}')
	}
}

// FrameDelivered queues the frame id for the destination machine's next
// qbus-rx slice (controller ops are FIFO, so order matches).
func (b *Builder) FrameDelivered(at sim.Time, id uint64, dst string, n int) {
	machine, ok := b.stations[dst]
	if !ok {
		return
	}
	b.pendingRx[machine] = append(b.pendingRx[machine], id)
}

// segName returns the attached segment's process name.
func (b *Builder) segName() string {
	if b.segment != "" {
		return b.segment
	}
	return "ethernet"
}

// SegmentTracer returns an ether.Tracer that attributes frames to their own
// named wire process, for fabrics where one builder watches many segments
// (AttachSegment assumes exactly one). Each segment numbers frames from
// zero, so idBase must be distinct per segment to keep packet-flow arrow ids
// unambiguous — the runbook executor uses segmentIndex<<32. The returned
// tracer must still be installed with Segment.SetTracer.
func (b *Builder) SegmentTracer(name string, idBase uint64) ether.Tracer {
	pid := b.pid(name)
	b.tid(pid, "wire")
	return &segTracer{b: b, name: name, base: idBase}
}

type segTracer struct {
	b    *Builder
	name string
	base uint64
}

func (t *segTracer) FrameOnWire(at sim.Time, id uint64, src, dst string, n int, txTime sim.Duration, lost bool) {
	t.b.frameOnWire(t.name, at, t.base+id, src, dst, n, txTime, lost)
}

func (t *segTracer) FrameDelivered(at sim.Time, id uint64, dst string, n int) {
	t.b.FrameDelivered(at, t.base+id, dst, n)
}

// WriteTo writes the complete trace JSON document.
func (b *Builder) WriteTo(w io.Writer) (int64, error) {
	var total int64
	n, err := io.WriteString(w, "{\"traceEvents\":[\n")
	total += int64(n)
	if err != nil {
		return total, err
	}
	m, err := b.buf.WriteTo(w)
	total += m
	if err != nil {
		return total, err
	}
	n, err = io.WriteString(w, "\n],\"displayTimeUnit\":\"ms\"}\n")
	total += int64(n)
	return total, err
}

// JSON renders the complete trace document as a byte slice. The builder's
// internal buffer is consumed by WriteTo, so JSON (or WriteTo) may be called
// once, after the run.
func (b *Builder) JSON() []byte {
	var out bytes.Buffer
	b.WriteTo(&out)
	return out.Bytes()
}
