package simtrace

import (
	"fmt"
	"strings"

	"fireflyrpc/internal/sim"
	"fireflyrpc/internal/simstack"
)

// AttachWorld wires a builder into every traced layer of a simstack testbed:
// the kernel (thread lifelines, resource counters), both machines (CPU
// spans, controller ops), and the Ethernet segment (wire slices, packet
// flows). Call before the run.
func AttachWorld(w *simstack.World) *Builder {
	b := NewBuilder(w.K)
	b.AttachMachine(w.Caller)
	b.AttachMachine(w.Server)
	b.AttachSegment(w.Seg, "ethernet")
	return b
}

// ResourceReport snapshots every resource registered on the kernel, in
// creation order. Call from the driving goroutine after the run (or under
// Kernel.Inspect while one is in progress).
func ResourceReport(k *sim.Kernel) []sim.ResourceStats {
	rs := k.Resources()
	out := make([]sim.ResourceStats, len(rs))
	for i, r := range rs {
		out[i] = r.Stats()
	}
	return out
}

// RenderResourceTable formats the utilization/queueing report as an aligned
// text table: busy fraction, time-averaged and peak queue depth, and wait
// quantiles per resource.
func RenderResourceTable(stats []sim.ResourceStats) string {
	var sb strings.Builder
	sb.WriteString("resource              srv   util%   mean-q   max-q     served   wait-p50µs   wait-p95µs\n")
	for _, st := range stats {
		fmt.Fprintf(&sb, "%-20s  %3d  %6.1f  %7.3f  %6d  %9d  %11.1f  %11.1f\n",
			st.Name, st.Servers, 100*st.Utilization,
			st.MeanQueueDepth, st.MaxQueueDepth, st.Served,
			st.Wait.P50Us, st.Wait.P95Us)
	}
	return sb.String()
}
