package proto

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Per-call stage tracing: the real-stack analogue of the paper's Tables
// VI–VIII. The paper's core claim is not the headline latency but the
// accounting — per-step costs that sum to the measured end-to-end time
// within a few percent. This file captures the equivalent stamps on the
// real stack: nanosecond timestamps at each stage of a call's life,
// written into a fixed ring of pooled records, sampled 1-in-N so the
// fast path's budgets survive, and compiled into a stage breakdown whose
// telescoping sum is checked against the measured end-to-end latency.
//
// Cost discipline: with tracing disabled the only fast-path work is one
// atomic load per call (sampleN == 0). Enabled, a non-sampled call pays
// one extra atomic add; a sampled call pays ~10 time stamps across both
// endpoints, each an atomic store into a pre-allocated ring slot — no
// per-call allocation either way, preserving the 1 alloc/call budget.

// Stage identifies one stamp point on a traced call's path. Client-side
// stages are stamped into the caller Conn's ring; server-side stages
// (Srv*) into the serving Conn's ring, triggered by wire.FlagTraced on the
// call packet. Account joins the two by (activity, seq).
type Stage uint8

const (
	// StageStart: StartCall entry — arguments marshalled, nothing sent.
	StageStart Stage = iota
	// StageSent: the final call fragment handed to the transport.
	StageSent
	// StageRetransmit: the most recent retransmission of the call.
	StageRetransmit
	// StageSrvRecv: final call fragment arrived at the server (reassembly
	// complete, call ready to execute).
	StageSrvRecv
	// StageSrvQueued: call handed to the server's dispatch queue.
	StageSrvQueued
	// StageSrvDispatch: a worker picked the call up (queue wait ends).
	StageSrvDispatch
	// StageSrvDone: the handler returned.
	StageSrvDone
	// StageSrvResultSent: the final result fragment handed to the transport.
	StageSrvResultSent
	// StageResultRecv: the completing result fragment arrived at the caller.
	StageResultRecv
	// StageWakeup: Await returned control to the calling goroutine.
	StageWakeup

	stageCount
)

var stageNames = [stageCount]string{
	"start", "sent", "retransmit", "srv-recv", "srv-queued",
	"srv-dispatch", "srv-done", "srv-result-sent", "result-recv", "wakeup",
}

// String names the stage.
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return fmt.Sprintf("stage(%d)", uint8(s))
}

// traceBase anchors every stamp to one process-wide monotonic origin, so
// records from a caller Conn and a server Conn in the same process (the
// exchange transport, UDP loopback) subtract cleanly.
var traceBase = time.Now()

// traceNow returns nanoseconds since traceBase, always ≥ 1 so a zero
// timestamp unambiguously means "stage not reached".
func traceNow() int64 {
	ns := int64(time.Since(traceBase))
	if ns < 1 {
		ns = 1
	}
	return ns
}

// traceRec is one in-ring record. Every field is atomic: the ring wraps,
// so a straggling call may stamp a slot a newer call has reclaimed — the
// generation check in snapshot turns that into a dropped record instead of
// a torn read or a data race.
type traceRec struct {
	gen      atomic.Uint64 // bumped on claim; re-checked by snapshot
	activity atomic.Uint64
	seq      atomic.Uint32
	retries  atomic.Int32
	// Distributed-trace identity (tracectx.go): the trace this call belongs
	// to, the span both endpoints share for it, and the caller's ambient
	// parent span. Zero on records from peers that never sent a context.
	traceID atomic.Uint64
	spanID  atomic.Uint64
	parent  atomic.Uint64
	iface   atomic.Uint32
	proc    atomic.Uint32
	ts      [stageCount]atomic.Int64
}

func (r *traceRec) claim(activity uint64, seq uint32) {
	r.gen.Add(1)
	r.activity.Store(activity)
	r.seq.Store(seq)
	r.retries.Store(0)
	r.traceID.Store(0)
	r.spanID.Store(0)
	r.parent.Store(0)
	r.iface.Store(0)
	r.proc.Store(0)
	for i := range r.ts {
		r.ts[i].Store(0)
	}
}

func (r *traceRec) setSpan(traceID, spanID, parent uint64) {
	r.traceID.Store(traceID)
	r.spanID.Store(spanID)
	r.parent.Store(parent)
}

func (r *traceRec) setMethod(iface uint32, proc uint16) {
	r.iface.Store(iface)
	r.proc.Store(uint32(proc))
}

func (r *traceRec) stamp(s Stage)             { r.ts[s].Store(traceNow()) }
func (r *traceRec) stampAt(s Stage, ns int64) { r.ts[s].Store(ns) }

// TraceRecord is the exported snapshot of one sampled call: timestamps in
// nanoseconds since a process-wide origin, zero meaning the stage was not
// reached (or belongs to the other endpoint's ring). TraceID/SpanID/Parent
// carry the distributed-trace identity when the call ran with a trace
// context; records from a caller and a server stamp the same SpanID, which
// is how AssembleSpans joins them into one span.
type TraceRecord struct {
	Activity  uint64
	Seq       uint32
	Retries   int32
	TraceID   uint64
	SpanID    uint64
	Parent    uint64
	Interface uint32
	Proc      uint16
	TS        [stageCount]int64
}

// Stamped reports whether stage s was recorded.
func (r *TraceRecord) Stamped(s Stage) bool { return r.TS[s] != 0 }

// tracer is the per-Conn sampling state plus the record ring. The ring is
// allocated once at enable time; records are pooled by wraparound.
type tracer struct {
	sampleN atomic.Int64 // 0 = disabled; N = sample one call in N
	ctr     atomic.Uint64
	next    atomic.Uint64
	ring    atomic.Pointer[[]traceRec]
	mu      sync.Mutex // serializes SetTracing
}

// DefaultTraceRing is the ring size SetTracing uses when given ringSize ≤ 0.
const DefaultTraceRing = 1024

// sample returns a claimed ring record for this call if tracing is enabled
// and the 1-in-N sampler selects it, else nil, plus whether tracing is
// enabled at all (so the call path learns both from the one atomic load it
// is budgeted). The sampler is a plain modulo counter, so a single
// sequential caller sees deterministic selection (calls N, 2N, 3N, …).
func (t *tracer) sample() (*traceRec, bool) {
	n := t.sampleN.Load()
	if n == 0 {
		return nil, false
	}
	if t.ctr.Add(1)%uint64(n) != 0 {
		return nil, true
	}
	return t.claimSlot(), true
}

// claimFlagged claims a record for a call another endpoint sampled (the
// FlagTraced bit), bypassing the local sampler; nil if tracing is off here.
func (t *tracer) claimFlagged() *traceRec {
	if t.sampleN.Load() == 0 {
		return nil
	}
	return t.claimSlot()
}

func (t *tracer) claimSlot() *traceRec {
	ringp := t.ring.Load()
	if ringp == nil {
		return nil
	}
	ring := *ringp
	i := t.next.Add(1) - 1
	return &ring[i%uint64(len(ring))]
}

// SetTracing enables (sampleN ≥ 1) or disables (sampleN ≤ 0) stage tracing
// and latency histograms on this endpoint. sampleN is the sampling stride:
// 1 traces every call, 64 one call in 64. ringSize bounds the record ring
// (≤ 0 selects DefaultTraceRing); the ring is allocated here, never on the
// call path. Server-side stages are only recorded while tracing is enabled
// on the serving Conn too.
func (c *Conn) SetTracing(sampleN, ringSize int) {
	t := &c.trace
	t.mu.Lock()
	defer t.mu.Unlock()
	if sampleN <= 0 {
		t.sampleN.Store(0)
		return
	}
	if ringSize <= 0 {
		ringSize = DefaultTraceRing
	}
	if cur := t.ring.Load(); cur == nil || len(*cur) != ringSize {
		ring := make([]traceRec, ringSize)
		t.ring.Store(&ring)
		t.next.Store(0)
	}
	t.sampleN.Store(int64(sampleN))
}

// TracingEnabled reports whether stage tracing is on.
func (c *Conn) TracingEnabled() bool { return c.trace.sampleN.Load() != 0 }

// TraceRecords snapshots the ring's current records, oldest-surviving
// first. Records claimed mid-snapshot are dropped (generation re-check)
// rather than returned torn.
func (c *Conn) TraceRecords() []TraceRecord {
	ringp := c.trace.ring.Load()
	if ringp == nil {
		return nil
	}
	ring := *ringp
	n := c.trace.next.Load()
	count := uint64(len(ring))
	if n < count {
		count = n
	}
	out := make([]TraceRecord, 0, count)
	// Oldest surviving slot is next % len when the ring has wrapped.
	start := uint64(0)
	if n > uint64(len(ring)) {
		start = n % uint64(len(ring))
	}
	for i := uint64(0); i < count; i++ {
		r := &ring[(start+i)%uint64(len(ring))]
		gen := r.gen.Load()
		var rec TraceRecord
		rec.Activity = r.activity.Load()
		rec.Seq = r.seq.Load()
		rec.Retries = r.retries.Load()
		rec.TraceID = r.traceID.Load()
		rec.SpanID = r.spanID.Load()
		rec.Parent = r.parent.Load()
		rec.Interface = r.iface.Load()
		rec.Proc = uint16(r.proc.Load())
		for s := range rec.TS {
			rec.TS[s] = r.ts[s].Load()
		}
		if r.gen.Load() != gen || rec.Activity == 0 && rec.Seq == 0 {
			continue // reclaimed mid-read, or never claimed
		}
		out = append(out, rec)
	}
	return out
}

// ---------------------------------------------------------------------------
// Accounting: compile trace records into a Table VI/VII-style breakdown.
// ---------------------------------------------------------------------------

// stageSpan is one row of the breakdown: the interval between two stamps.
// The spans telescope from StageStart to StageWakeup, so their sum over a
// fully-stamped call equals its end-to-end latency exactly — the report's
// tolerance check guards the joining and stamping logic, the way Table
// VIII checks the model against the measurement.
type stageSpan struct {
	name     string
	from, to Stage
}

var accountingSpans = []stageSpan{
	{"caller: build + send call", StageStart, StageSent},
	{"wire + recv demux (→ server)", StageSent, StageSrvRecv},
	{"server: enqueue", StageSrvRecv, StageSrvQueued},
	{"server: dispatch-queue wait", StageSrvQueued, StageSrvDispatch},
	{"server: execute handler", StageSrvDispatch, StageSrvDone},
	{"server: build + send result", StageSrvDone, StageSrvResultSent},
	{"wire + recv demux (→ caller)", StageSrvResultSent, StageResultRecv},
	{"caller: wakeup", StageResultRecv, StageWakeup},
}

// StageStat is one accounted stage across the joined records.
type StageStat struct {
	Name   string  `json:"name"`
	MeanUs float64 `json:"mean_us"`
}

// AccountingReport is the compiled breakdown. Calls counts only records
// with every stage stamped on both sides; StageSumUs is the sum of stage
// means and E2EUs the mean measured wakeup−start time, which must agree
// within the caller's tolerance for the accounting to be trusted.
type AccountingReport struct {
	Calls       int         `json:"calls"`
	Retransmits int         `json:"retransmits"`
	Stages      []StageStat `json:"stages"`
	StageSumUs  float64     `json:"stage_sum_us"`
	E2EUs       float64     `json:"e2e_us"`
}

// Account joins trace records from one or more rings (typically the caller
// Conn's and the server Conn's) by call identity and compiles the stage
// breakdown over every call that was fully stamped on both sides.
func Account(recordSets ...[]TraceRecord) AccountingReport {
	type key struct {
		activity uint64
		seq      uint32
	}
	merged := make(map[key]*TraceRecord)
	var order []key
	for _, set := range recordSets {
		for i := range set {
			r := &set[i]
			k := key{r.Activity, r.Seq}
			m := merged[k]
			if m == nil {
				cp := *r
				merged[k] = &cp
				order = append(order, k)
				continue
			}
			mergeTraceRecord(m, r)
		}
	}
	rep := AccountingReport{Stages: make([]StageStat, len(accountingSpans))}
	for i, sp := range accountingSpans {
		rep.Stages[i].Name = sp.name
	}
	sums := make([]float64, len(accountingSpans))
	var e2eSum float64
	for _, k := range order {
		m := merged[k]
		complete := true
		for _, sp := range accountingSpans {
			if m.TS[sp.from] == 0 || m.TS[sp.to] == 0 || m.TS[sp.to] < m.TS[sp.from] {
				complete = false
				break
			}
		}
		if !complete {
			continue
		}
		rep.Calls++
		rep.Retransmits += int(m.Retries)
		for i, sp := range accountingSpans {
			sums[i] += float64(m.TS[sp.to] - m.TS[sp.from])
		}
		e2eSum += float64(m.TS[StageWakeup] - m.TS[StageStart])
	}
	if rep.Calls > 0 {
		n := float64(rep.Calls)
		for i := range sums {
			rep.Stages[i].MeanUs = sums[i] / n / 1e3
			rep.StageSumUs += rep.Stages[i].MeanUs
		}
		rep.E2EUs = e2eSum / n / 1e3
	}
	return rep
}

// mergeTraceRecord folds r's stamps and identity into m (both halves of
// one call, joined by (activity, seq)): zero timestamps fill in from the
// other endpoint's record, and the distributed-trace identity keeps
// whichever side carries it.
func mergeTraceRecord(m, r *TraceRecord) {
	for s := range m.TS {
		if m.TS[s] == 0 {
			m.TS[s] = r.TS[s]
		}
	}
	if r.Retries > m.Retries {
		m.Retries = r.Retries
	}
	if m.TraceID == 0 {
		m.TraceID = r.TraceID
	}
	if m.SpanID == 0 {
		m.SpanID = r.SpanID
	}
	if m.Parent == 0 {
		m.Parent = r.Parent
	}
	if m.Interface == 0 && m.Proc == 0 {
		m.Interface, m.Proc = r.Interface, r.Proc
	}
}

// Accounting compiles this Conn's own ring. A full-path breakdown joins
// both endpoints' rings: proto.Account(caller.TraceRecords(),
// server.TraceRecords()).
func (c *Conn) Accounting() AccountingReport {
	return Account(c.TraceRecords())
}

// Unaccounted returns the fraction of measured end-to-end latency the
// stage sum fails to explain (signed; near zero when the accounting
// holds).
func (r *AccountingReport) Unaccounted() float64 {
	if r.E2EUs == 0 {
		return 0
	}
	return (r.E2EUs - r.StageSumUs) / r.E2EUs
}

// Format renders the breakdown as a Table VI/VII-style text table.
func (r *AccountingReport) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-34s %10s %8s\n", "stage", "mean µs", "% e2e")
	for _, st := range r.Stages {
		pct := 0.0
		if r.E2EUs > 0 {
			pct = 100 * st.MeanUs / r.E2EUs
		}
		fmt.Fprintf(&b, "%-34s %10.3f %7.1f%%\n", st.Name, st.MeanUs, pct)
	}
	fmt.Fprintf(&b, "%-34s %10.3f\n", "stage sum", r.StageSumUs)
	fmt.Fprintf(&b, "%-34s %10.3f  (unaccounted %+.2f%%)\n",
		"measured end-to-end", r.E2EUs, 100*r.Unaccounted())
	fmt.Fprintf(&b, "calls accounted: %d   retransmissions: %d\n",
		r.Calls, r.Retransmits)
	return b.String()
}
