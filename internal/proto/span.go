package proto

import "sort"

// Span assembly: join stage-trace records from any number of rings into
// per-call spans carrying the distributed-trace identity. A call's caller
// half and server half stamp the same SpanID (the caller generates it and
// ships it in the wire.TraceCtx prefix), so the join by (activity, seq)
// yields one span per call with both sides' stamps; Parent links a chained
// call's span to the handler span that issued it. The result renders as a
// Perfetto timeline via internal/simtrace's shared span schema — the same
// viewer a fireflysim runbook trace loads into.

// Span is one call assembled across both endpoints' trace rings.
type Span struct {
	TraceID   uint64            `json:"trace"`
	SpanID    uint64            `json:"span"`
	Parent    uint64            `json:"parent,omitempty"`
	Activity  uint64            `json:"activity"`
	Seq       uint32            `json:"seq"`
	Interface uint32            `json:"interface"`
	Proc      uint16            `json:"proc"`
	Retries   int32             `json:"retries,omitempty"`
	TS        [stageCount]int64 `json:"ts"`
}

// StartNs is the span's earliest stamp: the caller's start when the caller
// ring was joined, else the server's receive (a legacy peer's server-only
// record still renders, just without the wire time).
func (s *Span) StartNs() int64 {
	for _, st := range []Stage{StageStart, StageSent, StageSrvRecv, StageSrvQueued, StageSrvDispatch} {
		if s.TS[st] != 0 {
			return s.TS[st]
		}
	}
	return 0
}

// EndNs is the span's latest completion stamp.
func (s *Span) EndNs() int64 {
	for _, st := range []Stage{StageWakeup, StageResultRecv, StageSrvResultSent, StageSrvDone} {
		if s.TS[st] != 0 {
			return s.TS[st]
		}
	}
	return s.StartNs()
}

// AssembleSpans joins trace records from one or more rings (typically every
// Conn that participated in a scenario) into spans, ordered by start time.
// Records without a distributed-trace identity — calls sampled before
// FeatTrace negotiation, or stamped for a legacy FlagTraced peer — carry no
// SpanID and are skipped; Account still covers them.
func AssembleSpans(recordSets ...[]TraceRecord) []Span {
	type key struct {
		activity uint64
		seq      uint32
	}
	merged := make(map[key]*TraceRecord)
	var order []key
	for _, set := range recordSets {
		for i := range set {
			r := &set[i]
			k := key{r.Activity, r.Seq}
			m := merged[k]
			if m == nil {
				cp := *r
				merged[k] = &cp
				order = append(order, k)
				continue
			}
			mergeTraceRecord(m, r)
		}
	}
	spans := make([]Span, 0, len(order))
	for _, k := range order {
		m := merged[k]
		if m.SpanID == 0 {
			continue
		}
		spans = append(spans, Span{
			TraceID:   m.TraceID,
			SpanID:    m.SpanID,
			Parent:    m.Parent,
			Activity:  m.Activity,
			Seq:       m.Seq,
			Interface: m.Interface,
			Proc:      m.Proc,
			Retries:   m.Retries,
			TS:        m.TS,
		})
	}
	sort.Slice(spans, func(i, j int) bool {
		si, sj := spans[i].StartNs(), spans[j].StartNs()
		if si != sj {
			return si < sj
		}
		return spans[i].SpanID < spans[j].SpanID
	})
	return spans
}

// Spans assembles this Conn's own ring; a multi-node view passes every
// participating ring to AssembleSpans.
func (c *Conn) Spans() []Span {
	return AssembleSpans(c.TraceRecords())
}
