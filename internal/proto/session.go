package proto

import (
	"time"

	"fireflyrpc/internal/transport"
	"fireflyrpc/internal/wire"
)

// Session negotiation: the capability layer between the call path and the
// transports. On first contact with a peer the connection sends a
// wire.TypeHello advertising its session version range and feature bitset;
// the peer answers with the agreed version and the feature intersection,
// which is cached on the peer's channel. A peer that never answers — an old
// binary drops hellos as bad frames — leaves the channel on the implicit
// legacy session after a few retries, which behaves exactly as the
// pre-hello protocol did (budget hints and cancel packets on, since v0 sent
// both unconditionally). The call path consults the cached set instead of
// hard-coding wire flags; once the state leaves "unknown" that consultation
// is a single atomic load, so negotiation adds nothing to the steady-state
// fast path.
//
// The state machine lives in one packed atomic word per channel (see
// packSess), driven from three places that never block each other: the
// first StartCall to a peer (CAS unknown→pending + hello send), the receive
// path (hello → answer + negotiate, hello-ack → negotiate or reject), and a
// retry timer (resend, then pending→legacy after the attempts run out).
// Simultaneous negotiation in both directions is fine: whichever of the
// peer's hello or hello-ack arrives first installs the same intersection,
// and the loser's transition is a no-op.

// Session states, packed into the top bits of channel.sess.
const (
	sessUnknown    = iota // no contact yet; next call starts a hello
	sessPending           // hello in flight, awaiting ack or timeout
	sessNegotiated        // hello-ack agreed on a version + feature set
	sessLegacy            // peer never answered (or no common version): v0
)

// legacyFeatures is the implicit v0 session: before hello existed, budget
// hints and cancel packets were sent unconditionally, so the legacy
// fallback (and the pending window before negotiation concludes) keeps
// exactly that behavior. Batch stays off the wire either way — it only
// gates future coalesced frames.
const legacyFeatures = wire.FeatBudget | wire.FeatCancel

// defaultFeatures is what a connection advertises unless
// Config.AdvertiseFeatures narrows it. FeatTrace is safe to advertise
// unconditionally: the trace-context prefix is only emitted once the peer
// has agreed to it, and never on the legacy session.
const defaultFeatures = wire.FeatBudget | wire.FeatCancel | wire.FeatBatch | wire.FeatTrace

// sessFeatMask bounds the feature bits stored in the packed word. Known
// bits live far below it, and negotiation intersects with our own
// advertisement first, so the truncation is lossless.
const sessFeatMask = 1<<48 - 1

// packSess packs (state, version, features) into one atomic word:
// state in bits 62..63, version in bits 48..61, features in bits 0..47.
func packSess(state int, version uint16, features uint64) uint64 {
	return uint64(state)<<62 | uint64(version&0x3fff)<<48 | features&sessFeatMask
}

func sessStateOf(w uint64) int       { return int(w >> 62) }
func sessVersionOf(w uint64) uint16  { return uint16(w>>48) & 0x3fff }
func sessFeaturesOf(w uint64) uint64 { return w & sessFeatMask }

// sessStateName renders a session state for the debug surface.
func sessStateName(s int) string {
	switch s {
	case sessPending:
		return "pending"
	case sessNegotiated:
		return "negotiated"
	case sessLegacy:
		return "legacy"
	default:
		return "unknown"
	}
}

// features returns the capability set the call path may rely on for this
// peer right now: the negotiated intersection once the hello concluded,
// the legacy v0-implicit set otherwise (unknown, pending, legacy). One
// atomic load.
func (ch *channel) features() uint64 {
	w := ch.sess.Load()
	if sessStateOf(w) == sessNegotiated {
		return sessFeaturesOf(w)
	}
	return legacyFeatures
}

// casSess moves the session word from fromState to the packed word `to`,
// retrying only against concurrent writers in the same state. It reports
// whether this call performed the transition.
func (ch *channel) casSess(fromState int, to uint64) bool {
	for {
		cur := ch.sess.Load()
		if sessStateOf(cur) != fromState {
			return false
		}
		if ch.sess.CompareAndSwap(cur, to) {
			return true
		}
	}
}

// setNegotiated installs a negotiated session from any state, reporting
// whether the channel newly became negotiated (false when it already held
// the same agreement — retransmitted hellos are idempotent — or when only
// the agreement's content changed, e.g. a peer restarted with different
// features).
func (ch *channel) setNegotiated(version uint16, features uint64) bool {
	to := packSess(sessNegotiated, version, features)
	for {
		cur := ch.sess.Load()
		if cur == to {
			return false
		}
		if ch.sess.CompareAndSwap(cur, to) {
			return sessStateOf(cur) != sessNegotiated
		}
	}
}

// defaultHelloAttempts is how many hellos are sent before concluding the
// peer will never answer and falling back to the legacy session.
const defaultHelloAttempts = 3

func (c *Conn) helloTimeout() time.Duration {
	if c.cfg.HelloTimeout > 0 {
		return c.cfg.HelloTimeout
	}
	return c.cfg.RetransInterval
}

// ensureSession is the call path's hook: on the first call to a peer it
// kicks off hello negotiation and returns without waiting (the call
// proceeds under legacy-implied capabilities until the ack lands). Steady
// state — any state but unknown — is one atomic load and a branch.
func (c *Conn) ensureSession(ch *channel) {
	if sessStateOf(ch.sess.Load()) != sessUnknown {
		return
	}
	if c.cfg.DisableHello {
		// This endpoint behaves as a pre-hello binary: it never negotiates
		// and speaks the implicit v0 session with everyone.
		ch.casSess(sessUnknown, packSess(sessLegacy, 0, legacyFeatures))
		return
	}
	if !ch.casSess(sessUnknown, packSess(sessPending, 0, 0)) {
		return // another caller (or an inbound hello) won the race
	}
	c.sendHello(ch, 1)
}

// sendHello transmits one hello attempt and arms its retry/fallback timer.
// The nonce (carried in the header's Seq) binds the eventual ack to the
// newest attempt, so a stale ack or timer can never conclude negotiation.
func (c *Conn) sendHello(ch *channel, attempt int) {
	nonce := c.helloNonce.Add(1)
	ch.helloNonce.Store(nonce)
	c.stats.hellosSent.Add(1)
	body := wire.Hello{Version: c.helloVersion, MinVersion: c.helloMinVersion, Features: c.localFeatures}
	var buf [wire.HelloLen]byte
	body.MarshalTo(buf[:])
	h := wire.RPCHeader{Type: wire.TypeHello, Seq: nonce, FragCount: 1}
	_ = c.sendFrame(ch.peer, h, buf[:])
	time.AfterFunc(c.helloTimeout(), func() { c.helloExpire(ch, nonce, attempt) })
}

// helloExpire is the retry timer: still pending on the same nonce means the
// hello (or its ack) was lost — resend, or after the last attempt conclude
// the peer is an old binary and fall back to the legacy session.
func (c *Conn) helloExpire(ch *channel, nonce uint32, attempt int) {
	if sessStateOf(ch.sess.Load()) != sessPending || ch.helloNonce.Load() != nonce {
		return // negotiation concluded, or a newer attempt owns the channel
	}
	if attempt < defaultHelloAttempts && !c.closed.Load() {
		c.sendHello(ch, attempt+1)
		return
	}
	if ch.casSess(sessPending, packSess(sessLegacy, 0, legacyFeatures)) {
		c.stats.sessionsLegacy.Add(1)
		c.flight.record(FlightSessionFallback, 0, 0, int64(attempt))
	}
}

// onHello answers a peer's hello: agree on min(version maxima) and the
// feature intersection, cache the agreement on our side of the channel
// (negotiation is symmetric — the responder learns the same set the
// initiator does), and ack with the result. No common version is answered
// with version 0, leaving both sides on the legacy session.
func (c *Conn) onHello(src transport.Addr, hdr wire.RPCHeader, payload []byte) {
	if c.cfg.DisableHello {
		// A pre-hello binary would not recognize the packet type at all.
		c.stats.badFrames.Add(1)
		return
	}
	body, err := wire.UnmarshalHello(payload)
	if err != nil {
		c.stats.badFrames.Add(1)
		return
	}
	ch := c.channelOf(src)
	ch.touch(time.Now())
	ack := wire.Hello{MinVersion: c.helloMinVersion}
	if body.MinVersion > c.helloVersion || body.Version < c.helloMinVersion {
		c.stats.helloRejects.Add(1)
		if ch.casSess(sessUnknown, packSess(sessLegacy, 0, legacyFeatures)) {
			c.stats.sessionsLegacy.Add(1)
		}
	} else {
		v := c.helloVersion
		if body.Version < v {
			v = body.Version
		}
		feats := c.localFeatures & body.Features
		ack.Version = v
		ack.Features = feats
		if ch.setNegotiated(v, feats) {
			c.stats.sessionsNegotiated.Add(1)
		}
	}
	var buf [wire.HelloLen]byte
	ack.MarshalTo(buf[:])
	h := wire.RPCHeader{Type: wire.TypeHelloAck, Seq: hdr.Seq, FragCount: 1}
	_ = c.sendFrame(src, h, buf[:])
}

// onHelloAck concludes the negotiation this side initiated. Acks that do
// not match the pending nonce — stale retransmissions, or answers to an
// attempt that already timed out — are ignored; an ack carrying version 0
// (or one outside our range) means no agreement, so the channel falls back
// to legacy rather than guessing.
func (c *Conn) onHelloAck(src transport.Addr, hdr wire.RPCHeader, payload []byte) {
	if c.cfg.DisableHello {
		c.stats.badFrames.Add(1)
		return
	}
	body, err := wire.UnmarshalHello(payload)
	if err != nil {
		c.stats.badFrames.Add(1)
		return
	}
	ch := c.lookupChannel(src)
	if ch == nil {
		return
	}
	if sessStateOf(ch.sess.Load()) != sessPending || ch.helloNonce.Load() != hdr.Seq {
		return
	}
	if body.Version < c.helloMinVersion || body.Version > c.helloVersion {
		c.stats.helloRejects.Add(1)
		if ch.casSess(sessPending, packSess(sessLegacy, 0, legacyFeatures)) {
			c.stats.sessionsLegacy.Add(1)
		}
		return
	}
	if ch.setNegotiated(body.Version, body.Features&c.localFeatures) {
		c.stats.sessionsNegotiated.Add(1)
	}
}
