package proto

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"fireflyrpc/internal/transport"
)

// TestConcurrentActivitiesStress drives one caller Conn from 8 concurrent
// activities (the Firefly's threads-sharing-one-machine shape), mixing
// single-packet and fragmented calls with Pings and Stats reads. Under
// -race this is the regression test for the sharded locks (callsMu /
// actsMu / pingsMu), the pooled outCall and frame reuse, and the atomic
// stat counters.
func TestConcurrentActivitiesStress(t *testing.T) {
	ex := transport.NewExchange()
	cfg := DefaultConfig()
	cfg.Workers = 16
	server := NewConn(ex.Port("server"), cfg, func(_ transport.Addr, _ uint32, _ uint16, args []byte) ([]byte, error) {
		out := make([]byte, len(args))
		copy(out, args)
		return out, nil
	})
	defer server.Close()
	caller := NewConn(ex.Port("caller"), cfg, nil)
	defer caller.Close()
	dst := server.LocalAddr()

	const clients = 8
	calls := 200
	if testing.Short() {
		calls = 40
	}
	big := bytes.Repeat([]byte("frag"), 2000) // ~8 KiB: forces fragmentation

	var wg sync.WaitGroup
	errs := make(chan error, clients+2)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			activity := caller.NewActivity()
			var resBuf []byte
			for seq := uint32(1); seq <= uint32(calls); seq++ {
				args := []byte{byte(id), byte(seq), byte(seq >> 8)}
				if seq%17 == 0 {
					args = big // occasionally exercise the fragment path
				}
				res, err := caller.CallBuf(dst, activity, seq, 1, 1, args, resBuf)
				if err != nil {
					errs <- fmt.Errorf("client %d seq %d: %w", id, seq, err)
					return
				}
				if !bytes.Equal(res, args) {
					errs <- fmt.Errorf("client %d seq %d: echo mismatch (%d vs %d bytes)", id, seq, len(res), len(args))
					return
				}
				resBuf = res[:0] // reuse the result buffer, as core.Client does
			}
		}(i)
	}
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 25; i++ {
			if err := caller.Ping(dst, time.Second); err != nil {
				errs <- fmt.Errorf("ping: %w", err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			caller.Stats()
			server.Stats()
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := server.Stats()
	if st.CallsServed < int64(clients*calls) {
		t.Fatalf("served %d calls, want >= %d", st.CallsServed, clients*calls)
	}
}
