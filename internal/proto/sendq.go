package proto

import (
	"sync"

	"fireflyrpc/internal/buffer"
	"fireflyrpc/internal/transport"
)

// sendQueue is the protocol's opportunistic batching layer, engaged only
// when the transport offers a live SendBatch (transport.SupportsBatch). All
// outgoing frames — calls, results, acks, retransmissions — funnel through
// one FIFO drained by a single flusher goroutine, so whatever accumulates
// between flusher wakeups leaves in one SendBatch: a 64-outstanding async
// fan-out becomes a handful of sendmmsg/GSO syscalls instead of 64.
//
// Frames are copied into pooled buffers at enqueue time. That copy is what
// makes batching safe against the protocol's retained-frame mutation (the
// retransmission engine flips header flags in place and recycles retained
// buffers on completion); a ~1.4 KB memcpy is noise next to the syscall it
// amortizes away. A single FIFO trivially preserves per-peer submission
// order, the DESIGN invariant batching must keep.
type sendQueue struct {
	c    *Conn
	bs   transport.BatchSender
	kick chan struct{}
	done chan struct{}

	mu     sync.Mutex
	q      []sendEntry
	closed bool

	// Flusher-owned double buffer and the scratch vector handed to
	// SendBatch; both reach a steady-state capacity and stop allocating.
	back    []sendEntry
	scratch []transport.Frame
}

type sendEntry struct {
	dst transport.Addr
	f   *buffer.Frame
}

func newSendQueue(c *Conn, bs transport.BatchSender) *sendQueue {
	sq := &sendQueue{
		c:    c,
		bs:   bs,
		kick: make(chan struct{}, 1),
		done: make(chan struct{}),
	}
	go sq.loop()
	return sq
}

// enqueue copies frame into a pooled buffer and queues it. The caller keeps
// ownership of frame (exactly Send's contract). Errors are limited to local
// permanent conditions; transmission itself is asynchronous and best-effort,
// which is all an unreliable datagram transport promised anyway.
func (sq *sendQueue) enqueue(dst transport.Addr, frame []byte) error {
	if len(frame) > sq.c.tr.MaxFrame() {
		return transport.ErrFrameTooLarge
	}
	f := sq.c.frames.Get()
	f.CopyFrom(frame)
	sq.mu.Lock()
	if sq.closed {
		sq.mu.Unlock()
		f.Release()
		return transport.ErrClosed
	}
	sq.q = append(sq.q, sendEntry{dst: dst, f: f})
	sq.mu.Unlock()
	select {
	case sq.kick <- struct{}{}:
	default:
	}
	return nil
}

// loop drains the queue: swap out everything queued, hand it to SendBatch,
// release the buffers, repeat until empty, then park on the kick channel.
// Everything enqueued while a flush is in flight rides the next swap, which
// is where the batching win comes from.
func (sq *sendQueue) loop() {
	defer close(sq.done)
	for {
		select {
		case <-sq.kick:
		case <-sq.c.workQuit:
			sq.drainRelease()
			return
		}
		for {
			sq.mu.Lock()
			batch := sq.q
			sq.q = sq.back[:0]
			sq.mu.Unlock()
			sq.back = batch[:0]
			if len(batch) == 0 {
				break
			}
			sq.scratch = sq.scratch[:0]
			for i := range batch {
				sq.scratch = append(sq.scratch, transport.Frame{Dst: batch[i].dst, Data: batch[i].f.Bytes()})
			}
			// Losses and transport shutdown surface as dropped frames; the
			// retransmission engine is the recovery story, as for any drop.
			_, _ = sq.bs.SendBatch(sq.scratch)
			for i := range batch {
				batch[i].f.Release()
				batch[i] = sendEntry{}
			}
		}
	}
}

// drainRelease rejects future enqueues and releases anything still queued
// (the connection is closing; outstanding calls fail with ErrClosed).
func (sq *sendQueue) drainRelease() {
	sq.mu.Lock()
	sq.closed = true
	batch := sq.q
	sq.q = nil
	sq.mu.Unlock()
	for i := range batch {
		batch[i].f.Release()
	}
}

// wait blocks until the flusher has exited and released every queued frame
// (Conn.Close, after the transport is closed so a blocked flush unwinds).
func (sq *sendQueue) wait() { <-sq.done }
