package proto

import (
	"math"
	"sync"
	"testing"

	"fireflyrpc/internal/transport"
)

// nilHandler serves every call with an empty result: the proto-level Null
// procedure, used by the tracing tests so handler work never muddies the
// stage or allocation measurements.
func nilHandler(transport.Addr, uint32, uint16, []byte) ([]byte, error) {
	return nil, nil
}

func TestTraceSamplingDeterminism(t *testing.T) {
	ex := transport.NewExchange()
	caller, _, sa := pair(t, ex, fastCfg(), nilHandler)
	caller.SetTracing(4, 64)
	act := caller.NewActivity()
	for i := 0; i < 16; i++ {
		if _, err := caller.Call(sa, act, uint32(i+1), 1, 1, nil); err != nil {
			t.Fatal(err)
		}
	}
	recs := caller.TraceRecords()
	if len(recs) != 4 {
		t.Fatalf("sampled %d of 16 calls at 1-in-4, want 4", len(recs))
	}
	// The modulo sampler picks calls 4, 8, 12, 16 for a sequential caller.
	for i, r := range recs {
		if want := uint32((i + 1) * 4); r.Seq != want {
			t.Errorf("record %d: seq %d, want %d", i, r.Seq, want)
		}
		if !r.Stamped(StageStart) || !r.Stamped(StageSent) ||
			!r.Stamped(StageResultRecv) || !r.Stamped(StageWakeup) {
			t.Errorf("record %d missing caller-side stamps: %+v", i, r.TS)
		}
		if r.Stamped(StageSrvRecv) {
			t.Errorf("record %d has server stamps with server tracing off", i)
		}
	}
}

func TestTraceRingWraparound(t *testing.T) {
	ex := transport.NewExchange()
	caller, _, sa := pair(t, ex, fastCfg(), nilHandler)
	caller.SetTracing(1, 4)
	act := caller.NewActivity()
	for i := 0; i < 10; i++ {
		if _, err := caller.Call(sa, act, uint32(i+1), 1, 1, nil); err != nil {
			t.Fatal(err)
		}
	}
	recs := caller.TraceRecords()
	if len(recs) != 4 {
		t.Fatalf("ring of 4 returned %d records after 10 calls", len(recs))
	}
	// Oldest-surviving-first: the last four calls, in order.
	for i, r := range recs {
		if want := uint32(7 + i); r.Seq != want {
			t.Errorf("record %d: seq %d, want %d (oldest-first)", i, r.Seq, want)
		}
	}
}

func TestTraceConcurrentWriters(t *testing.T) {
	ex := transport.NewExchange()
	caller, server, sa := pair(t, ex, fastCfg(), nilHandler)
	caller.SetTracing(1, 32)
	server.SetTracing(1, 32)
	const workers, perWorker = 8, 25
	var wg, snapWg sync.WaitGroup
	stop := make(chan struct{})
	snapWg.Add(1)
	go func() {
		// Snapshot continuously while the ring wraps under the writers.
		defer snapWg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, r := range caller.TraceRecords() {
				if r.Activity == 0 && r.Seq == 0 {
					t.Error("snapshot returned an unclaimed record")
					return
				}
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			act := caller.NewActivity()
			for i := 0; i < perWorker; i++ {
				if _, err := caller.Call(sa, act, uint32(i+1), 1, 1, nil); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	snapWg.Wait()
	if got := len(caller.TraceRecords()); got != 32 {
		t.Fatalf("full ring snapshot returned %d records, want 32", got)
	}
}

func TestAccountingSums(t *testing.T) {
	ex := transport.NewExchange()
	caller, server, sa := pair(t, ex, fastCfg(), nilHandler)
	caller.SetTracing(1, 256)
	server.SetTracing(1, 256)
	act := caller.NewActivity()
	const calls = 50
	for i := 0; i < calls; i++ {
		if _, err := caller.Call(sa, act, uint32(i+1), 1, 1, nil); err != nil {
			t.Fatal(err)
		}
	}
	rep := Account(caller.TraceRecords(), server.TraceRecords())
	// A record is dropped only when the send-side stamp races the delivery
	// goroutine's arrival stamp; nearly every call must survive the join.
	if rep.Calls < calls*9/10 {
		t.Fatalf("accounted %d of %d calls", rep.Calls, calls)
	}
	if rep.E2EUs <= 0 {
		t.Fatalf("non-positive e2e: %+v", rep)
	}
	for _, st := range rep.Stages {
		if st.MeanUs < 0 {
			t.Errorf("negative stage mean: %+v", st)
		}
	}
	// The spans telescope, so the stage sum must equal the measured
	// end-to-end latency up to float rounding — this is the identity the
	// paper's Table VIII checks against its model.
	if un := rep.Unaccounted(); math.Abs(un) > 1e-6 {
		t.Fatalf("stage sum %.3fµs vs e2e %.3fµs: unaccounted %+.4f%%",
			rep.StageSumUs, rep.E2EUs, 100*un)
	}
}

func TestHistogramsRecorded(t *testing.T) {
	ex := transport.NewExchange()
	caller, _, sa := pair(t, ex, fastCfg(), nilHandler)
	caller.SetTracing(64, 64) // histograms record every call, sampled or not
	act := caller.NewActivity()
	const perMethod = 20
	for i := 0; i < perMethod; i++ {
		if _, err := caller.Call(sa, act, uint32(2*i+1), 1, 1, nil); err != nil {
			t.Fatal(err)
		}
		if _, err := caller.Call(sa, act, uint32(2*i+2), 1, 2, nil); err != nil {
			t.Fatal(err)
		}
	}
	peers := caller.PeerHistograms()
	if len(peers) != 1 {
		t.Fatalf("peer histograms: %d entries, want 1", len(peers))
	}
	if peers[0].Hist.N != 2*perMethod {
		t.Errorf("peer histogram N=%d, want %d", peers[0].Hist.N, 2*perMethod)
	}
	sum := peers[0].Hist.Summarize()
	if sum.P50Us <= 0 || sum.P99Us < sum.P50Us || sum.MaxUs < sum.P99Us {
		t.Errorf("implausible summary: %+v", sum)
	}
	methods := caller.MethodHistograms()
	if len(methods) != 2 {
		t.Fatalf("method histograms: %d entries, want 2", len(methods))
	}
	for _, m := range methods {
		if m.Interface != 1 || (m.Proc != 1 && m.Proc != 2) {
			t.Errorf("unexpected method entry: %+v", m)
		}
		if m.Hist.N != perMethod {
			t.Errorf("method (%d,%d) N=%d, want %d", m.Interface, m.Proc, m.Hist.N, perMethod)
		}
	}
}

// TestTraceDisabledAllocBudget asserts the observability machinery costs the
// disabled fast path nothing: allocations per call after tracing has been
// enabled and disabled again must not exceed the never-enabled baseline.
func TestTraceDisabledAllocBudget(t *testing.T) {
	ex := transport.NewExchange()
	caller, server, sa := pair(t, ex, fastCfg(), nilHandler)
	act := caller.NewActivity()
	seq := uint32(0)
	call := func() {
		seq++
		if _, err := caller.Call(sa, act, seq, 1, 1, nil); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		call() // warm pools
	}
	baseline := testing.AllocsPerRun(200, call)

	caller.SetTracing(64, 256)
	server.SetTracing(64, 256)
	for i := 0; i < 128; i++ {
		call() // exercise sampling + install the lazy histograms
	}
	caller.SetTracing(0, 0)
	server.SetTracing(0, 0)

	after := testing.AllocsPerRun(200, call)
	if after > baseline+0.05 {
		t.Fatalf("tracing-off path allocates %.2f objects/call, baseline %.2f", after, baseline)
	}
	t.Logf("allocs/call: baseline %.2f, after enable/disable %.2f", baseline, after)
}
