package proto

import (
	"sync"
	"sync/atomic"
	"time"

	"fireflyrpc/internal/stats"
	"fireflyrpc/internal/transport"
)

// channel is the per-peer half of the connection state: everything the
// protocol knows about one remote endpoint lives here rather than in
// Conn-global maps. Each peer gets its own call-table shard, its own
// server-activity table, and its own round-trip estimator, so a storm of
// traffic to or from one peer never contends with another peer's calls —
// the per-session state that lets a general RPC stack scale to many peers.
//
// Locks: callsMu guards calls; actsMu guards acts, evicted, and every
// serverAct's mutable fields; rttMu guards rtt. No code path holds two
// channel locks at once, and none is held across a transport send on the
// fast path.
type channel struct {
	key  string         // canonical peer name (Addr.String())
	peer transport.Addr // a canonical Addr for this peer

	callsMu sync.Mutex
	calls   map[callKey]*outCall // outgoing calls awaiting results

	actsMu  sync.Mutex
	acts    map[uint64]*serverAct // incoming activities (duplicate state)
	evicted bool                  // set once removed from the peer map

	rttMu sync.Mutex
	rtt   rttState

	// lastUsed is the unix-nano time of the channel's last send or receive;
	// the idle sweeper evicts channels that have been quiet too long.
	lastUsed atomic.Int64
	// executing counts in-flight server handler executions for this peer;
	// a busy channel is never evicted.
	executing atomic.Int64

	// hist is this peer's call-latency histogram, installed lazily on the
	// first completed call while observability is enabled (metrics.go).
	hist atomic.Pointer[stats.Hist]

	// sess is the packed session-negotiation word — state, agreed version,
	// and negotiated feature bits (see session.go). The call path reads it
	// with one atomic load; the hello state machine advances it by CAS.
	// helloNonce is the newest hello attempt's nonce, binding ack and
	// retry-timer processing to that attempt.
	sess       atomic.Uint64
	helloNonce atomic.Uint32
}

func (ch *channel) touch(now time.Time) { ch.lastUsed.Store(now.UnixNano()) }

// rttObserve folds one un-retransmitted round trip into the peer estimate.
func (ch *channel) rttObserve(sample time.Duration) {
	ch.rttMu.Lock()
	ch.rtt.observe(sample)
	ch.rttMu.Unlock()
}

// rttInterval returns the peer-adaptive initial retransmission interval,
// clamped to [floor, ceiling]; the ceiling doubles as the cold-start value.
func (ch *channel) rttInterval(floor, ceiling time.Duration) time.Duration {
	ch.rttMu.Lock()
	iv := ch.rtt.interval(floor, ceiling)
	ch.rttMu.Unlock()
	return iv
}

// peerShards is the fan-out of the peer map. Shards keep channel creation
// and lookup for unrelated peers from serializing on one lock; within a
// shard the critical section is a single map operation.
const peerShards = 16

type peerShard struct {
	mu    sync.Mutex
	peers map[string]*channel
}

// peerMap is the sharded peer directory: canonical address string → channel.
// Both bundled transports answer Addr.String() from a cached string, so the
// per-frame lookup does not allocate.
type peerMap struct {
	shards [peerShards]peerShard
}

func (m *peerMap) shard(key string) *peerShard {
	return &m.shards[hashString(key)%peerShards]
}

// channelOf returns the channel for addr, creating it on first contact.
func (c *Conn) channelOf(addr transport.Addr) *channel {
	key := addr.String()
	s := c.peers.shard(key)
	s.mu.Lock()
	ch := s.peers[key]
	if ch == nil {
		ch = &channel{
			key:   key,
			peer:  addr,
			calls: make(map[callKey]*outCall),
			acts:  make(map[uint64]*serverAct),
		}
		s.peers[key] = ch
	}
	s.mu.Unlock()
	return ch
}

// lookupChannel returns the channel for addr if one exists. Receive paths
// that only complete existing state (results, acks, rejects, cancels) use
// this so stray packets from unknown peers do not populate the peer map.
func (c *Conn) lookupChannel(addr transport.Addr) *channel {
	key := addr.String()
	s := c.peers.shard(key)
	s.mu.Lock()
	ch := s.peers[key]
	s.mu.Unlock()
	return ch
}

// forEachChannel visits every live channel (used by Close and tests).
func (c *Conn) forEachChannel(f func(*channel)) {
	for i := range c.peers.shards {
		s := &c.peers.shards[i]
		s.mu.Lock()
		chans := make([]*channel, 0, len(s.peers))
		for _, ch := range s.peers {
			chans = append(chans, ch)
		}
		s.mu.Unlock()
		for _, ch := range chans {
			f(ch)
		}
	}
}

// sweepIdle evicts channels that have been idle past the configured
// timeout: no outstanding calls, no executing handlers, no recent traffic.
// Eviction releases the retained result frames (the per-peer state the 1989
// design kept forever) and marks the channel so any straggling reference —
// a worker that looked a serverAct up just before eviction — releases
// rather than retains. It is called from the retransmission engine's
// goroutine, so no extra janitor thread exists.
func (c *Conn) sweepIdle(now time.Time) {
	idle := c.cfg.PeerIdleTimeout
	if idle <= 0 {
		return
	}
	cutoff := now.Add(-idle).UnixNano()
	for i := range c.peers.shards {
		s := &c.peers.shards[i]
		s.mu.Lock()
		var victims []*channel
		for key, ch := range s.peers {
			if ch.lastUsed.Load() > cutoff || ch.executing.Load() > 0 {
				continue
			}
			ch.callsMu.Lock()
			busy := len(ch.calls) > 0
			ch.callsMu.Unlock()
			if busy {
				continue
			}
			delete(s.peers, key)
			victims = append(victims, ch)
		}
		s.mu.Unlock()
		for _, ch := range victims {
			c.evictChannel(ch)
		}
	}
}

// evictChannel releases a channel's retained server state. The channel is
// already out of the peer map; the evicted flag makes any stale serverAct
// reference release future frames instead of parking them where nobody
// will ever recycle them.
func (c *Conn) evictChannel(ch *channel) {
	ch.actsMu.Lock()
	ch.evicted = true
	for _, act := range ch.acts {
		if act.lastResultFrame != nil {
			act.lastResultFrame.Release()
			act.lastResultFrame = nil
		}
		act.frags = nil
		act.argBuf = nil
	}
	ch.acts = make(map[uint64]*serverAct)
	ch.actsMu.Unlock()
	c.stats.peersEvicted.Add(1)
}

// outstandingCalls counts in-flight outgoing calls across all channels;
// leak tests assert it returns to zero.
func (c *Conn) outstandingCalls() int {
	n := 0
	c.forEachChannel(func(ch *channel) {
		ch.callsMu.Lock()
		n += len(ch.calls)
		ch.callsMu.Unlock()
	})
	return n
}

// numPeers counts live channels.
func (c *Conn) numPeers() int {
	n := 0
	for i := range c.peers.shards {
		s := &c.peers.shards[i]
		s.mu.Lock()
		n += len(s.peers)
		s.mu.Unlock()
	}
	return n
}
