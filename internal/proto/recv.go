package proto

import (
	"time"

	"fireflyrpc/internal/transport"
	"fireflyrpc/internal/wire"
)

// onFrame is the transport's receive callback — the real-stack analogue of
// the Firefly's Ethernet interrupt routine: validate, demultiplex against
// the call table, and hand the packet to the waiting party directly.
func (c *Conn) onFrame(src transport.Addr, frame []byte) {
	hdr, payload, err := wire.UnmarshalRPC(frame)
	if err != nil {
		c.count(func(s *Stats) { s.BadFrames++ })
		return
	}
	switch hdr.Type {
	case wire.TypeCall:
		c.onCallFrag(src, hdr, payload)
	case wire.TypeResult:
		c.onResultFrag(src, hdr, payload)
	case wire.TypeAck:
		c.onAck(src, hdr)
	case wire.TypeReject:
		c.onReject(hdr)
	case wire.TypeProbe:
		c.count(func(s *Stats) { s.Probes++ })
		reply := wire.RPCHeader{Type: wire.TypeProbeReply, Seq: hdr.Seq, FragCount: 1}
		_ = c.tr.Send(src, buildFrame(reply, nil))
	case wire.TypeProbeReply:
		c.mu.Lock()
		ch := c.pings[hdr.Seq]
		delete(c.pings, hdr.Seq)
		c.mu.Unlock()
		if ch != nil {
			close(ch)
		}
	default:
		c.count(func(s *Stats) { s.BadFrames++ })
	}
}

// sendAck acknowledges a fragment.
func (c *Conn) sendAck(dst transport.Addr, activity uint64, seq uint32, frag uint16, ofResult bool) {
	h := wire.RPCHeader{
		Type:      wire.TypeAck,
		Activity:  activity,
		Seq:       seq,
		FragIndex: frag,
		FragCount: 1,
	}
	if ofResult {
		h.Flags |= flagAckResult
	}
	c.count(func(s *Stats) { s.AcksSent++ })
	_ = c.tr.Send(dst, buildFrame(h, nil))
}

// onCallFrag handles an arriving call fragment on the server side.
func (c *Conn) onCallFrag(src transport.Addr, hdr wire.RPCHeader, payload []byte) {
	c.mu.Lock()
	if c.handler == nil || c.closed {
		c.mu.Unlock()
		c.count(func(s *Stats) { s.Rejects++ })
		rej := wire.RPCHeader{
			Type: wire.TypeReject, Activity: hdr.Activity, Seq: hdr.Seq, FragCount: 1,
		}
		_ = c.tr.Send(src, buildFrame(rej, nil))
		return
	}
	key := actKey{src.String(), hdr.Activity}
	act := c.acts[key]
	if act == nil {
		act = &serverAct{key: key, src: src}
		c.acts[key] = act
	}

	switch {
	case hdr.Seq < act.lastSeq:
		// A fragment of a superseded call: drop.
		c.mu.Unlock()
		c.count(func(s *Stats) { s.StaleDrops++ })
		return

	case hdr.Seq == act.lastSeq && act.lastSeq != 0:
		switch act.phase {
		case phaseReceiving:
			c.storeFragLocked(act, src, hdr, payload)
			c.mu.Unlock()
			return
		case phaseExecuting:
			c.mu.Unlock()
			c.count(func(s *Stats) { s.DupCalls++; s.InProgressAcks++ })
			c.sendAck(src, hdr.Activity, hdr.Seq, ackInProgress, false)
			return
		default: // phaseDone: retransmit the retained final result frame
			retained := act.lastResultFrame
			c.mu.Unlock()
			c.count(func(s *Stats) { s.DupCalls++ })
			if retained != nil {
				c.count(func(s *Stats) { s.ResultRetrans++ })
				_ = c.tr.Send(src, retained)
			}
			return
		}

	default: // a new call: implicitly acknowledges the previous result
		act.lastSeq = hdr.Seq
		act.phase = phaseReceiving
		act.frags = make(map[uint16][]byte)
		act.count = hdr.FragCount
		act.hdr = hdr
		act.ackCh = make(chan uint16, maxFragments)
		act.lastResultFrame = nil // recycle the retained result
		c.storeFragLocked(act, src, hdr, payload)
		c.mu.Unlock()
		return
	}
}

// storeFragLocked records a call fragment (c.mu held) and starts execution
// when the call is complete. Acks non-final fragments that ask for it.
func (c *Conn) storeFragLocked(act *serverAct, src transport.Addr, hdr wire.RPCHeader, payload []byte) {
	if hdr.FragCount != act.count {
		// Inconsistent fragmentation: treat as garbage.
		c.count(func(s *Stats) { s.BadFrames++ })
		return
	}
	if _, dup := act.frags[hdr.FragIndex]; dup {
		c.count(func(s *Stats) { s.DupFrags++ })
	} else {
		act.frags[hdr.FragIndex] = append([]byte(nil), payload...)
	}
	if hdr.Flags&wire.FlagPleaseAck != 0 && hdr.Flags&wire.FlagLastFrag == 0 {
		go c.sendAck(src, hdr.Activity, hdr.Seq, hdr.FragIndex, false)
	}
	if len(act.frags) == int(act.count) {
		act.phase = phaseExecuting
		go c.execute(act, hdr)
	}
}

// execute runs the handler (bounded by the worker pool) and sends the result.
func (c *Conn) execute(act *serverAct, hdr wire.RPCHeader) {
	c.sem <- struct{}{}
	defer func() { <-c.sem }()

	c.mu.Lock()
	args := make([]byte, 0)
	for i := uint16(0); i < act.count; i++ {
		args = append(args, act.frags[i]...)
	}
	act.frags = nil
	src := act.src
	c.mu.Unlock()

	result, err := c.handler(src, hdr.Interface, hdr.Proc, args)
	c.count(func(s *Stats) { s.CallsServed++ })
	if err != nil {
		c.count(func(s *Stats) { s.Rejects++ })
		rej := wire.RPCHeader{
			Type: wire.TypeReject, Activity: hdr.Activity, Seq: hdr.Seq,
			FragCount: 1, Interface: hdr.Interface, Proc: hdr.Proc,
		}
		frame := buildFrame(rej, nil)
		c.mu.Lock()
		act.phase = phaseDone
		act.lastResultFrame = frame
		c.mu.Unlock()
		_ = c.tr.Send(src, frame)
		return
	}
	c.sendResult(act, hdr, result)
}

// sendResult transmits the result fragments: stop-and-wait acks on all but
// the last, whose receipt is acknowledged implicitly by the next call. The
// final frame is retained for retransmission.
func (c *Conn) sendResult(act *serverAct, call wire.RPCHeader, result []byte) {
	frags := fragment(result, c.maxPayload())
	if len(frags) > maxFragments {
		// Result too large to ship: reject so the caller fails cleanly.
		rej := wire.RPCHeader{
			Type: wire.TypeReject, Activity: call.Activity, Seq: call.Seq, FragCount: 1,
		}
		_ = c.tr.Send(act.src, buildFrame(rej, nil))
		return
	}
	hdr := wire.RPCHeader{
		Type:      wire.TypeResult,
		Activity:  call.Activity,
		Seq:       call.Seq,
		FragCount: uint16(len(frags)),
		Interface: call.Interface,
		Proc:      call.Proc,
	}
	for i := 0; i < len(frags)-1; i++ {
		h := hdr
		h.FragIndex = uint16(i)
		h.Flags = wire.FlagPleaseAck
		if !c.sendResultFragWithAck(act, buildFrame(h, frags[i]), uint16(i)) {
			return // gave up; caller will retransmit and find phaseDone unset
		}
	}
	last := hdr
	last.FragIndex = uint16(len(frags) - 1)
	last.Flags = wire.FlagLastFrag
	frame := buildFrame(last, frags[len(frags)-1])
	c.mu.Lock()
	act.phase = phaseDone
	act.lastResultFrame = frame
	c.mu.Unlock()
	_ = c.tr.Send(act.src, frame)
}

// sendResultFragWithAck is the server-side stop-and-wait sender.
func (c *Conn) sendResultFragWithAck(act *serverAct, frame []byte, idx uint16) bool {
	if err := c.tr.Send(act.src, frame); err != nil {
		return false
	}
	interval := c.cfg.RetransInterval
	retries := 0
	timer := time.NewTimer(interval)
	defer timer.Stop()
	for {
		select {
		case got := <-act.ackCh:
			if got == idx {
				return true
			}
		case <-timer.C:
			retries++
			if retries > c.cfg.MaxRetries {
				return false
			}
			c.count(func(s *Stats) { s.Retransmits++ })
			if err := c.tr.Send(act.src, frame); err != nil {
				return false
			}
			if interval < 8*c.cfg.RetransInterval {
				interval *= 2
			}
			timer.Reset(interval)
		}
	}
}

// onResultFrag handles an arriving result fragment on the caller side.
func (c *Conn) onResultFrag(src transport.Addr, hdr wire.RPCHeader, payload []byte) {
	c.mu.Lock()
	oc := c.calls[callKey{hdr.Activity, hdr.Seq}]
	c.mu.Unlock()
	if oc == nil {
		// Late duplicate of a completed call. Re-ack non-final fragments
		// so a stuck server-side stop-and-wait can finish.
		c.count(func(s *Stats) { s.StaleDrops++ })
		if hdr.Flags&wire.FlagPleaseAck != 0 && hdr.Flags&wire.FlagLastFrag == 0 {
			c.sendAck(src, hdr.Activity, hdr.Seq, hdr.FragIndex, true)
		}
		return
	}

	oc.mu.Lock()
	if oc.finished {
		oc.mu.Unlock()
		return
	}
	if oc.resCount == 0 {
		oc.resCount = hdr.FragCount
	}
	if _, dup := oc.resFrags[hdr.FragIndex]; dup {
		c.count(func(s *Stats) { s.DupFrags++ })
	} else {
		oc.resFrags[hdr.FragIndex] = append([]byte(nil), payload...)
	}
	complete := len(oc.resFrags) == int(oc.resCount) && hdr.FragCount == oc.resCount
	var result []byte
	if complete {
		for i := uint16(0); i < oc.resCount; i++ {
			result = append(result, oc.resFrags[i]...)
		}
	}
	oc.mu.Unlock()

	if hdr.Flags&wire.FlagPleaseAck != 0 && hdr.Flags&wire.FlagLastFrag == 0 {
		c.sendAck(src, hdr.Activity, hdr.Seq, hdr.FragIndex, true)
	}
	if complete {
		oc.finish(result, nil)
	}
}

// onAck routes an acknowledgement to the waiting sender.
func (c *Conn) onAck(src transport.Addr, hdr wire.RPCHeader) {
	if hdr.Flags&flagAckResult != 0 {
		// Caller acking our result fragment.
		c.mu.Lock()
		act := c.acts[actKey{src.String(), hdr.Activity}]
		var ch chan uint16
		if act != nil && act.lastSeq == hdr.Seq {
			ch = act.ackCh
		}
		c.mu.Unlock()
		if ch != nil {
			select {
			case ch <- hdr.FragIndex:
			default:
			}
		}
		return
	}
	// Server acking our call fragment, or telling us it is executing.
	c.mu.Lock()
	oc := c.calls[callKey{hdr.Activity, hdr.Seq}]
	c.mu.Unlock()
	if oc == nil {
		return
	}
	if hdr.FragIndex == ackInProgress {
		select {
		case oc.progress <- struct{}{}:
		default:
		}
		return
	}
	select {
	case oc.ackCh <- hdr.FragIndex:
	default:
	}
}

// onReject completes an outstanding call with ErrRejected.
func (c *Conn) onReject(hdr wire.RPCHeader) {
	c.mu.Lock()
	oc := c.calls[callKey{hdr.Activity, hdr.Seq}]
	c.mu.Unlock()
	if oc != nil {
		oc.finish(nil, ErrRejected)
	}
}
