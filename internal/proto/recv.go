package proto

import (
	"time"

	"fireflyrpc/internal/buffer"
	"fireflyrpc/internal/transport"
	"fireflyrpc/internal/wire"
)

// onFrame is the transport's receive callback — the real-stack analogue of
// the Firefly's Ethernet interrupt routine: validate, demultiplex to the
// peer's channel, and hand the packet to the waiting party directly. The
// payload slice is only valid for the duration of the call; anything kept
// longer is copied into recycled per-call buffers.
func (c *Conn) onFrame(src transport.Addr, frame []byte) {
	hdr, payload, err := wire.UnmarshalRPC(frame)
	if err != nil {
		c.stats.badFrames.Add(1)
		return
	}
	switch hdr.Type {
	case wire.TypeCall:
		c.onCallFrag(src, hdr, payload)
	case wire.TypeResult:
		c.onResultFrag(src, hdr, payload)
	case wire.TypeAck:
		c.onAck(src, hdr)
	case wire.TypeReject:
		c.onReject(src, hdr)
	case wire.TypeCancel:
		c.onCancel(src, hdr)
	case wire.TypeHello:
		c.onHello(src, hdr, payload)
	case wire.TypeHelloAck:
		c.onHelloAck(src, hdr, payload)
	case wire.TypeProbe:
		c.stats.probes.Add(1)
		reply := wire.RPCHeader{Type: wire.TypeProbeReply, Seq: hdr.Seq, FragCount: 1}
		_ = c.sendFrame(src, reply, nil)
	case wire.TypeProbeReply:
		c.pingsMu.Lock()
		ch := c.pings[hdr.Seq]
		delete(c.pings, hdr.Seq)
		c.pingsMu.Unlock()
		if ch != nil {
			close(ch)
		}
	default:
		c.stats.badFrames.Add(1)
	}
}

// lookupCall finds the outstanding call k in src's channel, if both exist.
// Receive paths that only complete existing state use lookupChannel, so
// stray packets from unknown peers never populate the peer map.
func (c *Conn) lookupCall(src transport.Addr, k callKey) (*channel, *outCall) {
	ch := c.lookupChannel(src)
	if ch == nil {
		return nil, nil
	}
	ch.callsMu.Lock()
	oc := ch.calls[k]
	ch.callsMu.Unlock()
	return ch, oc
}

// sendAck acknowledges a fragment. Acks are sent inline from whatever
// goroutine noticed the need (never holding a channel lock): they are one
// bounded transport send, and spawning a goroutine per ack — as the
// multi-fragment path once did — costs an allocation and a scheduler trip
// per packet.
func (c *Conn) sendAck(dst transport.Addr, activity uint64, seq uint32, frag uint16, ofResult bool) {
	h := wire.RPCHeader{
		Type:      wire.TypeAck,
		Activity:  activity,
		Seq:       seq,
		FragIndex: frag,
		FragCount: 1,
	}
	if ofResult {
		h.Flags |= flagAckResult
	}
	c.stats.acksSent.Add(1)
	_ = c.sendFrame(dst, h, nil)
}

// traceServerRecv claims a server-side stage record for a traced call —
// legacy FlagTraced or a sampled wire.TraceCtx prefix — that has just become
// ready to execute, stamping its arrival (recvNs, captured at frame entry)
// and its hand-off to the dispatch queue. With a trace context, the record
// adopts the caller's trace and span ids, so both halves of the call join
// into one span. The record rides the execReq to the worker for the
// remaining stages.
func (c *Conn) traceServerRecv(req *execReq, recvNs int64) {
	if req.hdr.Flags&wire.FlagTraced == 0 && !req.tc.Sampled() {
		return
	}
	rec := c.trace.claimFlagged()
	if rec == nil {
		return
	}
	rec.claim(req.hdr.Activity, req.hdr.Seq)
	rec.setSpan(req.tc.TraceID, req.tc.SpanID, 0)
	rec.setMethod(req.hdr.Interface, req.hdr.Proc)
	rec.stampAt(StageSrvRecv, recvNs)
	rec.stamp(StageSrvQueued)
	req.trace = rec
}

// onCallFrag handles an arriving call fragment on the server side. All the
// duplicate-suppression state lives in the calling peer's channel.
func (c *Conn) onCallFrag(src transport.Addr, hdr wire.RPCHeader, payload []byte) {
	// Traced calls stamp their arrival before any locking; untraced calls
	// pay one branch on an already-loaded header byte.
	var recvNs int64
	if hdr.Flags&(wire.FlagTraced|wire.FlagTraceCtx) != 0 {
		recvNs = traceNow()
	}
	if (c.handler == nil && c.thandler == nil) || c.closed.Load() {
		c.stats.rejects.Add(1)
		rej := wire.RPCHeader{
			Type: wire.TypeReject, Activity: hdr.Activity, Seq: hdr.Seq, FragCount: 1,
		}
		_ = c.sendFrame(src, rej, nil)
		return
	}
	if hdr.FragCount == 0 || hdr.FragCount > maxFragments {
		c.stats.badFrames.Add(1)
		return
	}
	// A FeatTrace peer ships the distributed trace context as a message
	// prefix riding in fragment 0; strip it before the payload joins
	// reassembly.
	var tc wire.TraceCtx
	if hdr.Flags&wire.FlagTraceCtx != 0 && hdr.FragIndex == 0 {
		parsed, perr := wire.UnmarshalTraceCtx(payload)
		if perr != nil {
			c.stats.badFrames.Add(1)
			return
		}
		tc = parsed
		payload = payload[wire.TraceCtxLen:]
	}
	ch := c.channelOf(src)
	ch.touch(time.Now())
	ch.actsMu.Lock()
	act := ch.acts[hdr.Activity]
	if act == nil {
		act = &serverAct{activity: hdr.Activity, src: src, ch: ch}
		ch.acts[hdr.Activity] = act
	}

	switch {
	case hdr.Seq < act.lastSeq:
		// A fragment of a superseded call: drop.
		ch.actsMu.Unlock()
		c.stats.staleDrops.Add(1)
		return

	case hdr.Seq == act.lastSeq && act.lastSeq != 0:
		switch act.phase {
		case phaseReceiving:
			if tc.Valid() {
				act.tc = tc
			}
			needAck, req, run := c.storeFragLocked(act, hdr, payload)
			if run {
				ch.executing.Add(1)
			}
			ch.actsMu.Unlock()
			if needAck {
				c.sendAck(src, hdr.Activity, hdr.Seq, hdr.FragIndex, false)
			}
			if run {
				if recvNs != 0 {
					c.traceServerRecv(&req, recvNs)
				}
				c.enqueueExec(req)
			}
			return
		case phaseExecuting:
			ch.actsMu.Unlock()
			c.stats.dupCalls.Add(1)
			c.stats.inProgressAcks.Add(1)
			c.sendAck(src, hdr.Activity, hdr.Seq, ackInProgress, false)
			return
		default: // phaseDone: retransmit the retained final result frame.
			// The send happens under actsMu: the retained frame lives in a
			// pooled buffer that the activity's next call releases, so it
			// must not be recycled mid-transmission. Duplicates are rare;
			// the fast path never reaches here.
			c.stats.dupCalls.Add(1)
			if act.lastResultFrame != nil {
				c.stats.resultRetrans.Add(1)
				_ = c.send(src, act.lastResultFrame.Bytes())
			}
			ch.actsMu.Unlock()
			return
		}

	default: // a new call: implicitly acknowledges the previous result
		act.lastSeq = hdr.Seq
		act.phase = phaseReceiving
		act.abandoned = false
		act.count = hdr.FragCount
		act.hdr = hdr
		act.tc = tc // resets any stale context from the previous call
		if act.lastResultFrame != nil {
			// Recycle the retained result buffer — the paper's on-the-fly
			// replacement: the arrival of the next call frees the packet.
			act.lastResultFrame.Release()
			act.lastResultFrame = nil
		}
		if hdr.FragCount > 1 {
			// Fragment reassembly state is built only off the fast path.
			act.frags = make(map[uint16][]byte, hdr.FragCount)
		} else {
			act.frags = nil
		}
		needAck, req, run := c.storeFragLocked(act, hdr, payload)
		if run {
			ch.executing.Add(1)
		}
		ch.actsMu.Unlock()
		if needAck {
			c.sendAck(src, hdr.Activity, hdr.Seq, hdr.FragIndex, false)
		}
		if run {
			if recvNs != 0 {
				c.traceServerRecv(&req, recvNs)
			}
			c.enqueueExec(req)
		}
		return
	}
}

// storeFragLocked records a call fragment (the channel's actsMu held) and,
// when the call is complete, snapshots the argument data into an execReq so
// the worker never touches shared state. It reports whether the fragment
// wants an explicit ack and whether the call is ready to execute; the
// caller performs both actions after releasing the lock (and bumps the
// channel's executing count under it when run is true).
func (c *Conn) storeFragLocked(act *serverAct, hdr wire.RPCHeader, payload []byte) (needAck bool, req execReq, run bool) {
	if hdr.FragCount != act.count {
		// Inconsistent fragmentation: treat as garbage.
		c.stats.badFrames.Add(1)
		return false, execReq{}, false
	}
	if act.count == 1 {
		// Single-packet fast path: no fragment map, no ack, and the
		// argument buffer is recycled from the activity's previous call.
		// (A duplicate cannot reach here: the first packet moves the
		// activity to phaseExecuting under this same lock.)
		buf := act.argBuf
		act.argBuf = nil // the worker owns it until execution finishes
		act.phase = phaseExecuting
		return false, execReq{act: act, hdr: hdr, tc: act.tc, args: append(buf[:0], payload...), budgetNs: callBudgetNs(hdr)}, true
	}
	if _, dup := act.frags[hdr.FragIndex]; dup {
		c.stats.dupFrags.Add(1)
	} else {
		act.frags[hdr.FragIndex] = append([]byte(nil), payload...)
	}
	needAck = hdr.Flags&wire.FlagPleaseAck != 0 && hdr.Flags&wire.FlagLastFrag == 0
	if len(act.frags) == int(act.count) {
		act.phase = phaseExecuting
		frags := act.frags
		act.frags = nil
		return needAck, execReq{act: act, hdr: hdr, tc: act.tc, frags: frags, budgetNs: callBudgetNs(hdr)}, true
	}
	return needAck, execReq{}, false
}

// callBudgetNs reads the caller's remaining deadline budget from a call
// header, if it advertised one.
func callBudgetNs(hdr wire.RPCHeader) int64 {
	if hdr.Flags&wire.FlagBudget == 0 {
		return 0
	}
	return int64(hdr.Hint) * int64(time.Millisecond)
}

// execute runs one complete call on a worker goroutine and sends the
// result. All argument data arrives snapshotted in the request, so the
// fragment join happens without holding any channel lock.
func (c *Conn) execute(req execReq) {
	act, hdr := req.act, req.hdr
	ch := act.ch
	defer ch.executing.Add(-1)
	if req.trace != nil {
		req.trace.stamp(StageSrvDispatch)
	}
	args := req.args
	if req.frags != nil {
		total := 0
		for _, f := range req.frags {
			total += len(f)
		}
		args = make([]byte, 0, total)
		for i := uint16(0); i < hdr.FragCount; i++ {
			args = append(args, req.frags[i]...)
		}
	}

	var result []byte
	var err error
	if c.thandler != nil {
		// Trace-aware dispatch: the handler sees the caller's trace context
		// (zero for untraced or legacy calls) so it can re-emit it on calls
		// it makes in turn.
		result, err = c.thandler(act.src, req.tc, hdr.Interface, hdr.Proc, args)
	} else {
		result, err = c.handler(act.src, hdr.Interface, hdr.Proc, args)
	}
	c.stats.callsServed.Add(1)
	if req.trace != nil {
		req.trace.stamp(StageSrvDone)
	}
	// No touch here: every inbound frame (including the retransmissions a
	// waiting caller sends during a long handler) already stamps the
	// channel in onCallFrag, and the executing counter blocks eviction
	// while the handler runs.
	ch.actsMu.Lock()
	abandoned := act.abandoned && act.lastSeq == hdr.Seq
	ch.actsMu.Unlock()
	switch {
	case abandoned:
		// The caller cancelled this call while it executed: nobody is
		// waiting, so skip the result send entirely and leave nothing
		// retained. A new call on the activity resets the state.
		ch.actsMu.Lock()
		if act.lastSeq == hdr.Seq && act.phase == phaseExecuting {
			act.phase = phaseDone
		}
		ch.actsMu.Unlock()
	case err != nil:
		c.stats.rejects.Add(1)
		rej := wire.RPCHeader{
			Type: wire.TypeReject, Activity: hdr.Activity, Seq: hdr.Seq,
			FragCount: 1, Interface: hdr.Interface, Proc: hdr.Proc,
		}
		f := c.newFrame(rej, nil)
		_ = c.send(act.src, f.Bytes())
		c.retainResult(act, hdr.Seq, f)
	default:
		c.sendResult(act, hdr, result)
	}
	if req.trace != nil {
		req.trace.stamp(StageSrvResultSent)
	}

	// Return the single-packet argument buffer for the next call's reuse.
	// If a newer call already allocated its own (an overlap only a
	// timed-out caller can produce), the older buffer is simply dropped.
	if req.args != nil {
		ch.actsMu.Lock()
		if act.argBuf == nil && !ch.evicted {
			act.argBuf = req.args[:0]
		}
		ch.actsMu.Unlock()
	}
}

// retainResult parks the final result frame in the activity's call-table
// slot for retransmission, releasing its predecessor. If a newer call has
// superseded seq, the caller abandoned the call, or the channel was evicted
// while the handler ran, the frame is released instead: nobody may (or
// will) retransmit it.
func (c *Conn) retainResult(act *serverAct, seq uint32, f *buffer.Frame) {
	ch := act.ch
	ch.actsMu.Lock()
	if act.lastSeq == seq && !act.abandoned && !ch.evicted {
		act.phase = phaseDone
		if act.lastResultFrame != nil {
			act.lastResultFrame.Release()
		}
		act.lastResultFrame = f
	} else {
		if act.lastSeq == seq && act.phase == phaseExecuting {
			act.phase = phaseDone
		}
		f.Release()
	}
	ch.actsMu.Unlock()
}

// sendResult transmits the result fragments: stop-and-wait acks on all but
// the last, whose receipt is acknowledged implicitly by the next call. The
// final frame is retained for retransmission.
func (c *Conn) sendResult(act *serverAct, call wire.RPCHeader, result []byte) {
	ch := act.ch
	maxP := c.maxPayload()
	nfrags := 1
	var frags [][]byte
	if len(result) > maxP {
		frags = fragment(result, maxP)
		if len(frags) > maxFragments {
			// Result too large to ship: reject so the caller fails cleanly.
			rej := wire.RPCHeader{
				Type: wire.TypeReject, Activity: call.Activity, Seq: call.Seq, FragCount: 1,
			}
			_ = c.sendFrame(act.src, rej, nil)
			return
		}
		nfrags = len(frags)
	}
	hdr := wire.RPCHeader{
		Type:      wire.TypeResult,
		Activity:  call.Activity,
		Seq:       call.Seq,
		FragCount: uint16(nfrags),
		Interface: call.Interface,
		Proc:      call.Proc,
	}
	if nfrags > 1 {
		// Multi-fragment results need the explicit-ack channel; create it
		// lazily and flush stale entries from a previous call.
		ch.actsMu.Lock()
		if act.ackCh == nil {
			act.ackCh = make(chan fragAck, maxFragments)
		}
		for {
			select {
			case <-act.ackCh:
				continue
			default:
			}
			break
		}
		ch.actsMu.Unlock()
		for i := 0; i < nfrags-1; i++ {
			h := hdr
			h.FragIndex = uint16(i)
			h.Flags = wire.FlagPleaseAck
			f := c.newFrame(h, frags[i])
			ok := c.sendResultFragWithAck(act, call, f, uint16(i))
			f.Release()
			if !ok {
				return // gave up; caller will retransmit and find phaseDone unset
			}
		}
	}
	last := hdr
	last.FragIndex = uint16(nfrags - 1)
	last.Flags = wire.FlagLastFrag
	lastPayload := result
	if frags != nil {
		lastPayload = frags[nfrags-1]
	}
	f := c.newFrame(last, lastPayload)
	_ = c.send(act.src, f.Bytes())
	c.retainResult(act, call.Seq, f)
}

// sendResultFragWithAck is the server-side stop-and-wait sender. It gives
// up early when the caller abandons the call mid-stream.
func (c *Conn) sendResultFragWithAck(act *serverAct, call wire.RPCHeader, frame *buffer.Frame, idx uint16) bool {
	if err := c.send(act.src, frame.Bytes()); err != nil {
		return false
	}
	ch := act.ch
	interval := c.cfg.RetransInterval
	retries := 0
	timer := time.NewTimer(interval)
	defer timer.Stop()
	for {
		select {
		case got := <-act.ackCh:
			if got.activity == call.Activity && got.seq == call.Seq && got.idx == idx {
				return true
			}
		case <-timer.C:
			ch.actsMu.Lock()
			gone := act.abandoned || act.lastSeq != call.Seq || ch.evicted
			ch.actsMu.Unlock()
			if gone {
				return false
			}
			retries++
			if retries > c.cfg.MaxRetries {
				return false
			}
			c.stats.retransmits.Add(1)
			c.noteRetransmit(callKey{call.Activity, call.Seq}, retries, int64(interval), false)
			if err := c.send(act.src, frame.Bytes()); err != nil {
				return false
			}
			if interval < 8*c.cfg.RetransInterval {
				interval *= 2
			}
			timer.Reset(interval)
		}
	}
}

// onResultFrag handles an arriving result fragment on the caller side.
func (c *Conn) onResultFrag(src transport.Addr, hdr wire.RPCHeader, payload []byte) {
	k := callKey{hdr.Activity, hdr.Seq}
	_, oc := c.lookupCall(src, k)
	needAck := hdr.Flags&wire.FlagPleaseAck != 0 && hdr.Flags&wire.FlagLastFrag == 0
	if oc == nil {
		// Late duplicate of a completed call. Re-ack non-final fragments
		// so a stuck server-side stop-and-wait can finish.
		c.stats.staleDrops.Add(1)
		if needAck {
			c.sendAck(src, hdr.Activity, hdr.Seq, hdr.FragIndex, true)
		}
		return
	}
	// No touch here: StartCall stamped the channel when this call left, and
	// a registered call blocks eviction regardless of the stamp's age.

	var result []byte
	complete := false
	oc.mu.Lock()
	if oc.finished || oc.key != k {
		oc.mu.Unlock()
		return
	}
	if hdr.FragCount == 1 && hdr.Flags&wire.FlagLastFrag != 0 {
		// Single-packet result fast path: no reassembly map; the payload
		// lands directly in the caller-supplied buffer (or an exact-size
		// allocation when none was given).
		result = append(oc.resBuf[:0], payload...)
		complete = true
	} else {
		if oc.resCount == 0 {
			oc.resCount = hdr.FragCount
		}
		if oc.resFrags == nil {
			oc.resFrags = make(map[uint16][]byte, hdr.FragCount)
		}
		if _, dup := oc.resFrags[hdr.FragIndex]; dup {
			c.stats.dupFrags.Add(1)
		} else {
			oc.resFrags[hdr.FragIndex] = append([]byte(nil), payload...)
		}
		complete = len(oc.resFrags) == int(oc.resCount) && hdr.FragCount == oc.resCount
		if complete {
			result = oc.resBuf[:0]
			for i := uint16(0); i < oc.resCount; i++ {
				result = append(result, oc.resFrags[i]...)
			}
		}
	}
	if complete && oc.trace != nil {
		oc.trace.stamp(StageResultRecv)
	}
	// Completion must happen before mu is released: an impaired transport
	// can deliver a duplicate of this result frame from another goroutine,
	// and finishing outside the lock would let that duplicate pass the
	// finished check above and rebuild the result buffer while the
	// awakened caller reads it (and double-count the completion).
	if complete {
		oc.finishLocked(k, result, nil)
	}
	oc.mu.Unlock()

	if needAck {
		c.sendAck(src, hdr.Activity, hdr.Seq, hdr.FragIndex, true)
	}
}

// onAck routes an acknowledgement to the waiting sender.
func (c *Conn) onAck(src transport.Addr, hdr wire.RPCHeader) {
	if hdr.Flags&flagAckResult != 0 {
		// Caller acking our result fragment.
		ch := c.lookupChannel(src)
		if ch == nil {
			return
		}
		ch.actsMu.Lock()
		act := ch.acts[hdr.Activity]
		var ackCh chan fragAck
		if act != nil && act.lastSeq == hdr.Seq {
			ackCh = act.ackCh
		}
		ch.actsMu.Unlock()
		if ackCh != nil {
			select {
			case ackCh <- fragAck{hdr.Activity, hdr.Seq, hdr.FragIndex}:
			default:
			}
		}
		return
	}
	// Server acking our call fragment, or telling us it is executing.
	k := callKey{hdr.Activity, hdr.Seq}
	_, oc := c.lookupCall(src, k)
	if oc == nil {
		return
	}
	if hdr.FragIndex == ackInProgress {
		// Server says it is still executing: reset patience. The engine
		// sees the pushed-out nextAt when this entry fires and re-arms
		// without retransmitting.
		oc.mu.Lock()
		if !oc.finished && oc.key == k {
			oc.retries = 0
			if oc.interval > 0 {
				oc.nextAt = time.Now().Add(oc.interval)
			}
		}
		oc.mu.Unlock()
		return
	}
	select {
	case oc.ackCh <- fragAck{hdr.Activity, hdr.Seq, hdr.FragIndex}:
	default:
	}
}

// onReject completes an outstanding call with ErrRejected, or with
// ErrOverloaded when the server's admission control shed it — the fail-fast
// signal that stops the caller from burning its retry budget against a
// saturated server.
func (c *Conn) onReject(src transport.Addr, hdr wire.RPCHeader) {
	k := callKey{hdr.Activity, hdr.Seq}
	_, oc := c.lookupCall(src, k)
	if oc == nil {
		return
	}
	err := ErrRejected
	if hdr.Hint == wire.RejectOverload {
		c.stats.overloads.Add(1)
		c.noteOverloadRecv(hdr.Activity, hdr.Seq)
		err = ErrOverloaded
	} else {
		c.flight.record(FlightReject, hdr.Activity, hdr.Seq, 0)
	}
	oc.finish(k, nil, err)
}

// onCancel handles a caller's best-effort abandonment notice: drop any
// reassembly state for the cancelled call and mark the activity so the
// executing handler's result is neither sent nor retained. A later call on
// the activity clears the mark.
func (c *Conn) onCancel(src transport.Addr, hdr wire.RPCHeader) {
	ch := c.lookupChannel(src)
	if ch == nil {
		return
	}
	c.stats.cancels.Add(1)
	c.flight.record(FlightCancelRecv, hdr.Activity, hdr.Seq, 0)
	ch.actsMu.Lock()
	act := ch.acts[hdr.Activity]
	if act != nil && act.lastSeq == hdr.Seq && act.phase != phaseDone {
		act.abandoned = true
		if act.phase == phaseReceiving {
			// Mid-reassembly: free the partial fragments now; stray
			// retransmitted fragments of this seq will be dropped because
			// the activity is parked in phaseDone with nothing retained.
			act.frags = nil
			act.phase = phaseDone
		}
	}
	ch.actsMu.Unlock()
}
