package proto

import (
	"sync/atomic"
	"time"

	"fireflyrpc/internal/stats"
	"fireflyrpc/internal/wire"
)

// Latency histograms: while observability is enabled (SetTracing), every
// completed call's end-to-end latency is folded into two log-bucketed
// histograms — one per peer (on the peer's channel) and one per method
// (interface, proc). Recording is lock-free (stats.Hist is atomic adds,
// sharded) and allocation-free after the first call per peer/method: the
// histograms themselves are installed lazily by CAS so a Conn that never
// enables observability carries only a pointer per slot.

// methodSlots bounds the per-method table. Methods beyond the limit are
// silently unrecorded (the per-peer histogram still sees their calls); 64
// distinct procedures is far beyond any interface in the repo.
const methodSlots = 64

// methodHist is one open-addressed slot: key is (iface<<16 | proc) + 1 so
// zero means empty, claimed by CAS; the histogram is installed lazily.
type methodHist struct {
	key  atomic.Uint64
	hist atomic.Pointer[stats.Hist]
}

type methodTable struct {
	slots [methodSlots]methodHist
}

// get finds or claims the histogram for (iface, proc); nil if the table is
// full. Lock-free: a lost key CAS just re-examines the slot.
func (t *methodTable) get(iface uint32, proc uint16) *stats.Hist {
	key := (uint64(iface)<<16 | uint64(proc)) + 1
	i := (key * 0x9E3779B97F4A7C15) % methodSlots
	for probes := 0; probes < methodSlots; probes++ {
		s := &t.slots[i]
		switch k := s.key.Load(); k {
		case key:
			return lazyHist(&s.hist)
		case 0:
			if s.key.CompareAndSwap(0, key) {
				return lazyHist(&s.hist)
			}
			// Lost the race: re-examine the same slot.
			probes--
		default:
			i = (i + 1) % methodSlots
		}
	}
	return nil
}

// lazyHist installs a histogram behind p on first use.
func lazyHist(p *atomic.Pointer[stats.Hist]) *stats.Hist {
	if h := p.Load(); h != nil {
		return h
	}
	h := new(stats.Hist)
	if p.CompareAndSwap(nil, h) {
		return h
	}
	return p.Load()
}

// observeLatency folds one completed call into the per-peer and per-method
// histograms. Called from Await only while observability is enabled.
func (c *Conn) observeLatency(ch *channel, iface uint32, proc uint16, d time.Duration) {
	lazyHist(&ch.hist).Observe(d)
	if h := c.methods.get(iface, proc); h != nil {
		h.Observe(d)
	}
}

// PeerHist is one peer's latency distribution snapshot.
type PeerHist struct {
	Peer string             `json:"peer"`
	Hist stats.HistSnapshot `json:"hist"`
}

// PeerHistograms snapshots every peer's call-latency histogram (peers with
// no recorded calls are omitted).
func (c *Conn) PeerHistograms() []PeerHist {
	var out []PeerHist
	c.forEachChannel(func(ch *channel) {
		h := ch.hist.Load()
		if h == nil {
			return
		}
		snap := h.Snapshot()
		if snap.N == 0 {
			return
		}
		out = append(out, PeerHist{Peer: ch.key, Hist: snap})
	})
	return out
}

// MethodHist is one method's latency distribution snapshot.
type MethodHist struct {
	Interface uint32             `json:"interface"`
	Proc      uint16             `json:"proc"`
	Hist      stats.HistSnapshot `json:"hist"`
}

// MethodHistograms snapshots every recorded method's latency histogram.
func (c *Conn) MethodHistograms() []MethodHist {
	var out []MethodHist
	for i := range c.methods.slots {
		s := &c.methods.slots[i]
		key := s.key.Load()
		if key == 0 {
			continue
		}
		h := s.hist.Load()
		if h == nil {
			continue
		}
		snap := h.Snapshot()
		if snap.N == 0 {
			continue
		}
		key--
		out = append(out, MethodHist{
			Interface: uint32(key >> 16),
			Proc:      uint16(key & 0xffff),
			Hist:      snap,
		})
	}
	return out
}

// PeerInfo is a point-in-time view of one peer channel, for the debug
// surface: the real-stack analogue of reading the Firefly's call table.
type PeerInfo struct {
	Addr             string        `json:"addr"`
	OutstandingCalls int           `json:"outstanding_calls"`
	Activities       int           `json:"activities"`
	Executing        int64         `json:"executing"`
	IdleFor          time.Duration `json:"idle_ns"`
	RTT              time.Duration `json:"rtt_ns"` // 0 = no estimate

	// Session negotiation state (session.go): unknown/pending/negotiated/
	// legacy, the agreed session version (0 until negotiated), the raw
	// negotiated feature bits, and their names for human readers.
	Session         string   `json:"session"`
	SessionVersion  uint16   `json:"session_version"`
	SessionFeatures uint64   `json:"session_features"`
	FeatureNames    []string `json:"feature_names,omitempty"`
}

// Peers snapshots the live peer table.
func (c *Conn) Peers() []PeerInfo {
	now := time.Now().UnixNano()
	var out []PeerInfo
	c.forEachChannel(func(ch *channel) {
		ch.callsMu.Lock()
		calls := len(ch.calls)
		ch.callsMu.Unlock()
		ch.actsMu.Lock()
		acts := len(ch.acts)
		ch.actsMu.Unlock()
		ch.rttMu.Lock()
		var rtt time.Duration
		if ch.rtt.valid {
			rtt = ch.rtt.srtt
		}
		ch.rttMu.Unlock()
		idle := time.Duration(0)
		if last := ch.lastUsed.Load(); last > 0 && now > last {
			idle = time.Duration(now - last)
		}
		sess := ch.sess.Load()
		var feats uint64
		var version uint16
		if sessStateOf(sess) == sessNegotiated {
			version = sessVersionOf(sess)
			feats = sessFeaturesOf(sess)
		}
		out = append(out, PeerInfo{
			Addr:             ch.key,
			OutstandingCalls: calls,
			Activities:       acts,
			Executing:        ch.executing.Load(),
			IdleFor:          idle,
			RTT:              rtt,
			Session:          sessStateName(sessStateOf(sess)),
			SessionVersion:   version,
			SessionFeatures:  feats,
			FeatureNames:     wire.FeatureNames(feats),
		})
	})
	return out
}
