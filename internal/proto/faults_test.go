package proto

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"fireflyrpc/internal/faultnet"
	"fireflyrpc/internal/overload"
	"fireflyrpc/internal/transport"
)

// Regression test for a duplicate-delivery race: a result frame duplicated
// by the network arrives on a second goroutine while the first copy is
// completing the call. The completion must happen under the call's lock
// (finishLocked) — finishing outside it let the duplicate slip past the
// finished check, rebuild the result buffer while the caller was reading
// it, and double-count completion stats. Run under -race; the faultnet
// wrapper deliberately delivers every inbound duplicate on a scheduler
// goroutine that races the inline original.
func TestDuplicatedResultFramesCompleteOnce(t *testing.T) {
	ex := transport.NewExchange()
	prof := faultnet.Profile{In: faultnet.Impair{Dup: 1}} // duplicate every inbound frame
	caller, server, sa, _ := faultyPair(t, ex, fastCfg(), echoHandler, prof, 21)

	const calls = 200
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			act := caller.NewActivity()
			for seq := uint32(1); seq <= calls/4; seq++ {
				res, err := caller.Call(sa, act, seq, 1, 1, []byte{byte(seq)})
				if err != nil {
					t.Errorf("seq %d: %v", seq, err)
					return
				}
				if len(res) != 2 || res[0] != byte(seq) || res[1] != 0xEE {
					t.Errorf("seq %d: corrupted result %v", seq, res)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := caller.Stats().CallsCompleted; got != calls {
		t.Fatalf("CallsCompleted = %d, want exactly %d (duplicates double-counted?)", got, calls)
	}
	if got := server.Stats().CallsServed; got != calls {
		t.Fatalf("CallsServed = %d, want exactly %d", got, calls)
	}
	if n := caller.outstandingCalls(); n != 0 {
		t.Fatalf("%d call-table entries leaked", n)
	}
}

// Karn's rule: a retransmitted call's round trip is ambiguous (which
// transmission did the result answer?) and must not feed the RTT
// estimator; and the adaptive retransmission interval never drops below
// the floor even when the estimate is tiny.
func TestKarnRuleAndRTOFloor(t *testing.T) {
	ex := transport.NewExchange()
	cfg := Config{RetransInterval: 40 * time.Millisecond, MaxRetries: 20, Workers: 2}
	caller, _, sa, ft := faultyPair(t, ex, cfg, echoHandler, faultnet.Loss(1), 22)

	// Heal the link mid-call: the first call completes only after at least
	// one retransmission.
	go func() {
		time.Sleep(60 * time.Millisecond)
		ft.Impairer().SetProfile(faultnet.Profile{})
	}()
	act := caller.NewActivity()
	if _, err := caller.Call(sa, act, 1, 1, 1, []byte("retried")); err != nil {
		t.Fatal(err)
	}
	if caller.Stats().Retransmits == 0 {
		t.Fatal("call did not retransmit; the test exercised nothing")
	}
	if rtt, ok := caller.RTT(sa); ok {
		t.Fatalf("retransmitted sample fed the estimator (srtt=%v); Karn's rule violated", rtt)
	}

	// Clean calls over the healed link produce an estimate...
	for seq := uint32(2); seq <= 6; seq++ {
		if _, err := caller.Call(sa, act, seq, 1, 1, nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := caller.RTT(sa); !ok {
		t.Fatal("clean calls produced no RTT estimate")
	}
	// ...and however fast the path (sub-ms on the in-memory exchange), the
	// retransmission interval respects the floor.
	floor := cfg.RetransInterval / 8
	ch := caller.channelOf(sa)
	if iv := ch.rttInterval(floor, cfg.RetransInterval); iv < floor {
		t.Fatalf("rttInterval = %v, below the %v floor", iv, floor)
	}
}

// Admission control end to end: a saturated server sheds with a wire-level
// rejection and the caller fails fast with ErrOverloaded instead of
// burning its retry budget.
func TestOverloadShedFailsFast(t *testing.T) {
	ex := transport.NewExchange()
	release := make(chan struct{})
	entered := make(chan struct{}, 8)
	cfg := Config{RetransInterval: 50 * time.Millisecond, MaxRetries: 8, Workers: 1}
	cfg.Admission = overload.Config{Policy: overload.FIFO, Capacity: 1}
	caller, server, sa := pair(t, ex, cfg,
		func(transport.Addr, uint32, uint16, []byte) ([]byte, error) {
			entered <- struct{}{}
			<-release
			return []byte("ok"), nil
		})
	defer close(release)

	// Call 1 occupies the single worker; call 2 fills the queue.
	p1, err := caller.Go(context.Background(), sa, caller.NewActivity(), 1, 1, 1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	<-entered
	p2, err := caller.Go(context.Background(), sa, caller.NewActivity(), 1, 1, 1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	waitCondition(t, 2*time.Second, func() error {
		if s, _ := server.AdmissionStats(); s.Depth != 1 {
			return errors.New("queue not yet full")
		}
		return nil
	})

	// Call 3 must be shed — and the error must arrive well before the
	// retry budget (8 × 50ms) would have expired.
	start := time.Now()
	_, err = caller.Call(sa, caller.NewActivity(), 1, 1, 1, nil)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Fatalf("overload rejection took %v; caller did not fail fast", elapsed)
	}

	if got := server.Stats().CallsShed; got != 1 {
		t.Fatalf("CallsShed = %d, want 1", got)
	}
	if got := caller.Stats().Overloads; got != 1 {
		t.Fatalf("Overloads = %d, want 1", got)
	}

	// The admitted calls still complete once the worker frees up.
	release <- struct{}{}
	if _, err := p1.Await(context.Background()); err != nil {
		t.Fatalf("call 1: %v", err)
	}
	release <- struct{}{}
	<-entered
	if _, err := p2.Await(context.Background()); err != nil {
		t.Fatalf("call 2: %v", err)
	}
	if n := caller.outstandingCalls(); n != 0 {
		t.Fatalf("%d call-table entries leaked", n)
	}
}

// A retransmission of a shed call is answered from the retained rejection
// (duplicate suppression applies to rejects exactly as to results).
func TestShedCallRetransmitAnsweredFromRetainedReject(t *testing.T) {
	ex := transport.NewExchange()
	release := make(chan struct{})
	entered := make(chan struct{}, 8)
	cfg := Config{RetransInterval: 30 * time.Millisecond, MaxRetries: 10, Workers: 1}
	cfg.Admission = overload.Config{Policy: overload.FIFO, Capacity: 1}
	caller, server, sa := pair(t, ex, cfg,
		func(transport.Addr, uint32, uint16, []byte) ([]byte, error) {
			entered <- struct{}{}
			<-release
			return nil, nil
		})
	defer close(release)

	p1, err := caller.Go(context.Background(), sa, caller.NewActivity(), 1, 1, 1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	<-entered
	p2, err := caller.Go(context.Background(), sa, caller.NewActivity(), 1, 1, 1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	waitCondition(t, 2*time.Second, func() error {
		if s, _ := server.AdmissionStats(); s.Depth != 1 {
			return errors.New("queue not yet full")
		}
		return nil
	})

	// Shed call, then spoof a retransmission of it from the same activity
	// and sequence: the server must answer from the retained reject, not
	// re-run admission (CallsShed stays 1).
	shedAct := caller.NewActivity()
	_, err = caller.Call(sa, shedAct, 7, 1, 1, []byte("shed me"))
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	if got := server.Stats().CallsShed; got != 1 {
		t.Fatalf("CallsShed = %d, want 1", got)
	}
	// A second identical call (same activity+seq, as a retransmission
	// would be) is answered without a second shed.
	_, err = caller.Call(sa, shedAct, 7, 1, 1, []byte("shed me"))
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("retransmitted shed call: err = %v, want ErrOverloaded", err)
	}
	if got := server.Stats().CallsShed; got != 1 {
		t.Fatalf("CallsShed = %d after retransmission, want still 1 (retained reject)", got)
	}

	release <- struct{}{}
	p1.Await(context.Background())
	release <- struct{}{}
	<-entered
	p2.Await(context.Background())
}

// The stage-accounting identity (stage sum == measured end-to-end) must
// survive loss: a retransmission stretches the affected span rather than
// opening an unaccounted gap, and calls whose stamps were scrambled by
// a lost-and-resent frame are excluded from the join rather than skewing
// it. The acceptance gate is ±10% with retransmissions present.
func TestAccountingHoldsUnderLoss(t *testing.T) {
	ex := transport.NewExchange()
	cfg := Config{RetransInterval: 5 * time.Millisecond, MaxRetries: 20, Workers: 4}
	caller, server, sa, _ := faultyPair(t, ex, cfg, echoHandler, faultnet.Loss(0.05), 23)
	caller.SetTracing(1, 1024)
	server.SetTracing(1, 1024)
	act := caller.NewActivity()
	const calls = 400
	for i := 0; i < calls; i++ {
		if _, err := caller.Call(sa, act, uint32(i+1), 1, 1, nil); err != nil {
			t.Fatal(err)
		}
	}
	rep := Account(caller.TraceRecords(), server.TraceRecords())
	if rep.Retransmits == 0 {
		t.Fatal("no retransmissions in the accounted set; the test exercised nothing")
	}
	if rep.Calls < calls/2 {
		t.Fatalf("only %d of %d calls accounted", rep.Calls, calls)
	}
	if un := math.Abs(rep.Unaccounted()); un > 0.10 {
		t.Fatalf("stage sum %.1fµs vs e2e %.1fµs: unaccounted %.1f%%, gate 10%%",
			rep.StageSumUs, rep.E2EUs, 100*un)
	}
}
