package proto

import (
	"time"

	"fireflyrpc/internal/transport"
)

// rttState is a Jacobson/Karels smoothed round-trip estimate for one peer,
// embedded in that peer's channel so retransmission timers adapt to the
// path instead of waiting a full worst-case interval: on a fast LAN the
// first retransmission fires within a few round trips, while the
// configured interval remains the ceiling (and the cold-start value for
// peers we have never heard from).
//
// The state lives inside the channel (guarded by channel.rttMu), so there
// is no global estimator map and no cross-peer contention: looking up the
// estimate is part of looking up the channel, which the call path does
// anyway.
type rttState struct {
	srtt   time.Duration
	rttvar time.Duration
	valid  bool
}

// observe folds a completed call's round trip into the estimate. Samples
// from retransmitted calls must not be fed in (Karn's rule); the caller
// enforces that.
func (st *rttState) observe(sample time.Duration) {
	if sample <= 0 {
		return
	}
	if !st.valid {
		st.srtt = sample
		st.rttvar = sample / 2
		st.valid = true
		return
	}
	diff := st.srtt - sample
	if diff < 0 {
		diff = -diff
	}
	st.rttvar = (3*st.rttvar + diff) / 4
	st.srtt = (7*st.srtt + sample) / 8
}

// interval returns the initial retransmission interval: the adaptive
// srtt + 4·rttvar estimate clamped to [floor, ceiling], or the ceiling
// when no estimate exists yet.
func (st *rttState) interval(floor, ceiling time.Duration) time.Duration {
	if !st.valid {
		return ceiling
	}
	est := st.srtt + 4*st.rttvar
	if est < floor {
		return floor
	}
	if est > ceiling {
		return ceiling
	}
	return est
}

// RTT reports the smoothed round-trip estimate for dst, if one exists.
func (c *Conn) RTT(dst transport.Addr) (time.Duration, bool) {
	ch := c.lookupChannel(dst)
	if ch == nil {
		return 0, false
	}
	ch.rttMu.Lock()
	defer ch.rttMu.Unlock()
	if !ch.rtt.valid {
		return 0, false
	}
	return ch.rtt.srtt, true
}
