package proto

import (
	"sync"
	"time"

	"fireflyrpc/internal/transport"
)

// rttTracker keeps a Jacobson/Karels smoothed round-trip estimate per peer,
// so retransmission timers adapt to the path instead of waiting a full
// worst-case interval: on a fast LAN the first retransmission fires within
// a few round trips, while the configured interval remains the ceiling (and
// the starting point for peers we have never heard from).
//
// Peers are keyed by the Addr value itself rather than Addr.String(), so
// the per-call lookup does not allocate. Both bundled transports hand out
// canonical addresses (memAddr is a comparable string value; the UDP
// transport interns one *udpAddr per peer), so equal peers compare equal.
// A caller that constructs a fresh Addr per call merely gets an independent
// estimate, which only costs adaptivity, never correctness.
type rttTracker struct {
	mu    sync.Mutex
	peers map[transport.Addr]*rttState
}

type rttState struct {
	srtt   time.Duration
	rttvar time.Duration
	valid  bool
}

func newRTTTracker() *rttTracker {
	return &rttTracker{peers: make(map[transport.Addr]*rttState)}
}

// observe folds a completed call's round trip into the estimate. Samples
// from retransmitted calls must not be fed in (Karn's rule); the caller
// enforces that.
func (t *rttTracker) observe(dst transport.Addr, sample time.Duration) {
	if sample <= 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.peers[dst]
	if st == nil {
		st = &rttState{}
		t.peers[dst] = st
	}
	if !st.valid {
		st.srtt = sample
		st.rttvar = sample / 2
		st.valid = true
		return
	}
	diff := st.srtt - sample
	if diff < 0 {
		diff = -diff
	}
	st.rttvar = (3*st.rttvar + diff) / 4
	st.srtt = (7*st.srtt + sample) / 8
}

// interval returns the initial retransmission interval for dst: the
// adaptive srtt + 4·rttvar estimate clamped to [floor, ceiling], or the
// ceiling when no estimate exists yet.
func (t *rttTracker) interval(dst transport.Addr, floor, ceiling time.Duration) time.Duration {
	t.mu.Lock()
	st := t.peers[dst]
	var est time.Duration
	valid := false
	if st != nil && st.valid {
		est = st.srtt + 4*st.rttvar
		valid = true
	}
	t.mu.Unlock()
	if !valid {
		return ceiling
	}
	if est < floor {
		return floor
	}
	if est > ceiling {
		return ceiling
	}
	return est
}

// RTT reports the smoothed round-trip estimate for dst, if one exists.
func (c *Conn) RTT(dst transport.Addr) (time.Duration, bool) {
	c.rtt.mu.Lock()
	defer c.rtt.mu.Unlock()
	st := c.rtt.peers[dst]
	if st == nil || !st.valid {
		return 0, false
	}
	return st.srtt, true
}
